open Dgr_graph

type t = {
  g : Graph.t;
  counts : (Vid.t, int) Hashtbl.t;
  mutable reclaimed : int;
  mutable messages : int;
  mutable on_free : Vid.t -> unit;
}

let count t v = Option.value ~default:0 (Hashtbl.find_opt t.counts v)

let set t v n = Hashtbl.replace t.counts v n

let create g =
  let t =
    { g; counts = Hashtbl.create 256; reclaimed = 0; messages = 0; on_free = ignore }
  in
  (* Adopt edges that existed before the collector was attached (the
     initial program graph). *)
  Graph.iter_live
    (fun v -> List.iter (fun c -> set t c (count t c + 1)) (Vertex.args v))
    g;
  t

let set_on_free t f = t.on_free <- f

let tally_message t parent child =
  if
    Graph.mem t.g parent && Graph.mem t.g child
    && (Vertex.pe (Graph.vertex t.g parent)) <> (Vertex.pe (Graph.vertex t.g child))
  then t.messages <- t.messages + 1

let on_connect t parent child =
  tally_message t parent child;
  set t child (count t child + 1)

let is_root t v = Graph.has_root t.g && Vid.equal (Graph.root t.g) v

let rec release t v =
  let vx = Graph.vertex t.g v in
  if not (Vertex.free vx) then begin
    let children = Vertex.args vx in
    t.reclaimed <- t.reclaimed + 1;
    t.on_free v;
    Graph.release t.g v;
    Hashtbl.remove t.counts v;
    List.iter
      (fun c ->
        tally_message t v c;
        decrement t c)
      children
  end

and decrement t v =
  let n = count t v - 1 in
  if n < 0 then ()
  else begin
    set t v n;
    if n = 0 && not (is_root t v) then release t v
  end

let on_disconnect t parent child =
  tally_message t parent child;
  decrement t child

let pin t v = set t v (count t v + 1)

let unpin t v = decrement t v

let reclaimed t = t.reclaimed

let messages t = t.messages

let leaked t =
  let snap = Snapshot.take t.g in
  let reachable =
    if Graph.has_root t.g then Dgr_analysis.Reach.reachable_from snap [ Graph.root t.g ]
    else Vid.Set.empty
  in
  Graph.fold_live
    (fun acc v ->
      if (not (Vid.Set.mem (Vertex.id v) reachable)) && count t (Vertex.id v) > 0 then
        (Vertex.id v) :: acc
      else acc)
    [] t.g
  |> List.rev
