open Dgr_graph
open Dgr_task

type report = { marked : int; reclaimed : int; purged_tasks : int; work : int }

let collect g ~purge_tasks =
  let snap = Snapshot.take g in
  let reachable =
    if Graph.has_root g then Dgr_analysis.Reach.reachable_from snap [ Graph.root g ]
    else Vid.Set.empty
  in
  let garbage =
    Graph.fold_live
      (fun acc v -> if Vid.Set.mem (Vertex.id v) reachable then acc else (Vertex.id v) :: acc)
      [] g
  in
  let gar_set = Vid.Set.of_list garbage in
  let purged =
    purge_tasks (fun task ->
        match task with
        | Task.Reduction r ->
          List.exists (fun v -> Vid.Set.mem v gar_set) (Task.reduction_endpoints r)
        | Task.Marking _ -> false)
  in
  (* Dangling requester entries, as in the concurrent restructure. *)
  Graph.iter_live
    (fun v ->
      if Vid.Set.mem (Vertex.id v) reachable then
        Vertex.retain_requesters v (fun r -> not (Vid.Set.mem r gar_set)))
    g;
  List.iter (Graph.release g) garbage;
  let marked = Vid.Set.cardinal reachable in
  {
    marked;
    reclaimed = List.length garbage;
    purged_tasks = purged;
    work = marked + Graph.vertex_count g;
  }
