(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that runs are reproducible from a single seed, and
    independent streams can be split off for sub-components without
    perturbing each other. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t] once. *)

val stream : seed:int -> int -> t
(** [stream ~seed i] is the [i]-th generator of the family rooted at
    [seed] — a stateless derivation, so stream [i] is a pure function of
    [(seed, i)] and never of any other stream's draws. The engine gives
    each PE its own stream, which is what makes per-PE scheduling
    randomness independent of how work is sharded across domains. *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. O(n). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success in
    Bernoulli(p) trials; mean (1-p)/p. Raises if [p] outside (0, 1]. *)
