(* Parallel-array binary heap: priorities and FIFO ranks live in int
   arrays (unboxed), values in a third array, so [add] allocates nothing
   once capacity is reached — the previous entry-record representation
   cost one 4-word block per insertion, and pools/networks insert on
   every task send. Comparison semantics are unchanged: ascending
   priority, FIFO (insertion rank) among ties.

   A fourth int array carries an opaque per-entry tag that travels with
   the value through every swap and compaction. Task pools thread their
   lineage tickets through it; plain [add]/[pop] users pay one extra
   store and see tag -1. *)

type 'a t = {
  mutable prio : int array;
  mutable rank : int array;
  mutable tag : int array;
  mutable vals : 'a array;
  mutable len : int;
  mutable next_rank : int;
}

let create () =
  { prio = [||]; rank = [||]; tag = [||]; vals = [||]; len = 0; next_rank = 0 }

let length q = q.len

let is_empty q = q.len = 0

(* [x] seeds the new value array's filler, keeping the representation
   correct for any 'a (including float). *)
let grow q x =
  let cap = Array.length q.vals in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let prio' = Array.make cap' 0 in
  let rank' = Array.make cap' 0 in
  let tag' = Array.make cap' (-1) in
  let vals' = Array.make cap' x in
  Array.blit q.prio 0 prio' 0 q.len;
  Array.blit q.rank 0 rank' 0 q.len;
  Array.blit q.tag 0 tag' 0 q.len;
  Array.blit q.vals 0 vals' 0 q.len;
  q.prio <- prio';
  q.rank <- rank';
  q.tag <- tag';
  q.vals <- vals'

let less q i j =
  let pi = q.prio.(i) and pj = q.prio.(j) in
  pi < pj || (pi = pj && q.rank.(i) < q.rank.(j))

let swap q i j =
  let p = q.prio.(i) in
  q.prio.(i) <- q.prio.(j);
  q.prio.(j) <- p;
  let r = q.rank.(i) in
  q.rank.(i) <- q.rank.(j);
  q.rank.(j) <- r;
  let g = q.tag.(i) in
  q.tag.(i) <- q.tag.(j);
  q.tag.(j) <- g;
  let v = q.vals.(i) in
  q.vals.(i) <- q.vals.(j);
  q.vals.(j) <- v

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let n = q.len in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && less q l !smallest then smallest := l;
  if r < n && less q r !smallest then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let add_tagged q prio ~tag value =
  if q.len = Array.length q.vals then grow q value;
  let i = q.len in
  q.prio.(i) <- prio;
  q.rank.(i) <- q.next_rank;
  q.tag.(i) <- tag;
  q.vals.(i) <- value;
  q.next_rank <- q.next_rank + 1;
  q.len <- i + 1;
  sift_up q i

let add q prio value = add_tagged q prio ~tag:(-1) value

let pop_tagged q =
  if q.len = 0 then None
  else begin
    let p = q.prio.(0) and g = q.tag.(0) and v = q.vals.(0) in
    let n = q.len - 1 in
    q.len <- n;
    if n > 0 then begin
      q.prio.(0) <- q.prio.(n);
      q.rank.(0) <- q.rank.(n);
      q.tag.(0) <- q.tag.(n);
      q.vals.(0) <- q.vals.(n);
      sift_down q 0
    end;
    Some (p, g, v)
  end

let pop q =
  match pop_tagged q with None -> None | Some (p, _, v) -> Some (p, v)

(* Callback form of [pop_tagged] for per-pop hot loops: no option or
   tuple is built. The heap invariant is restored before [f] runs, so
   [f] may re-enter [add_tagged]. *)
let pop_tagged_with q f =
  if q.len = 0 then false
  else begin
    let g = q.tag.(0) and v = q.vals.(0) in
    let n = q.len - 1 in
    q.len <- n;
    if n > 0 then begin
      q.prio.(0) <- q.prio.(n);
      q.rank.(0) <- q.rank.(n);
      q.tag.(0) <- q.tag.(n);
      q.vals.(0) <- q.vals.(n);
      sift_down q 0
    end;
    f v g;
    true
  end

let peek q = if q.len = 0 then None else Some (q.prio.(0), q.vals.(0))

(* Unboxed peek at the minimum priority for hot drain loops that only
   need to compare it against a threshold before committing to a pop. *)
let min_prio q ~default = if q.len = 0 then default else q.prio.(0)

let clear q = q.len <- 0

let iter f q =
  for i = 0 to q.len - 1 do
    f q.prio.(i) q.vals.(i)
  done

let to_sorted_list q =
  let idx = Array.init q.len (fun i -> i) in
  Array.sort
    (fun a b ->
      match Int.compare q.prio.(a) q.prio.(b) with
      | 0 -> Int.compare q.rank.(a) q.rank.(b)
      | c -> c)
    idx;
  Array.fold_right (fun i acc -> (q.prio.(i), q.vals.(i)) :: acc) idx []

let heapify q =
  for i = (q.len / 2) - 1 downto 0 do
    sift_down q i
  done

let filter_tagged_in_place p q =
  let j = ref 0 in
  for i = 0 to q.len - 1 do
    if p q.prio.(i) q.tag.(i) q.vals.(i) then begin
      if !j <> i then begin
        q.prio.(!j) <- q.prio.(i);
        q.rank.(!j) <- q.rank.(i);
        q.tag.(!j) <- q.tag.(i);
        q.vals.(!j) <- q.vals.(i)
      end;
      incr j
    end
  done;
  q.len <- !j;
  heapify q

let filter_in_place p q = filter_tagged_in_place (fun prio _ v -> p prio v) q

let map_priorities f q =
  for i = 0 to q.len - 1 do
    q.prio.(i) <- f q.prio.(i) q.vals.(i)
  done;
  heapify q
