type 'a entry = { prio : int; rank : int; value : 'a }

type 'a t = { heap : 'a entry Vec.t; mutable next_rank : int }

let create () = { heap = Vec.create (); next_rank = 0 }

let length q = Vec.length q.heap

let is_empty q = Vec.is_empty q.heap

let less a b = a.prio < b.prio || (a.prio = b.prio && a.rank < b.rank)

let swap h i j =
  let tmp = Vec.get h i in
  Vec.set h i (Vec.get h j);
  Vec.set h j tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (Vec.get h i) (Vec.get h parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = Vec.length h in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && less (Vec.get h l) (Vec.get h !smallest) then smallest := l;
  if r < n && less (Vec.get h r) (Vec.get h !smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add q prio value =
  let e = { prio; rank = q.next_rank; value } in
  q.next_rank <- q.next_rank + 1;
  Vec.push q.heap e;
  sift_up q.heap (Vec.length q.heap - 1)

let pop q =
  if Vec.is_empty q.heap then None
  else begin
    let top = Vec.get q.heap 0 in
    let last = Vec.pop q.heap in
    (match last with
    | Some e when Vec.length q.heap > 0 ->
      Vec.set q.heap 0 e;
      sift_down q.heap 0
    | _ -> ());
    Some (top.prio, top.value)
  end

let peek q = if Vec.is_empty q.heap then None else
    let e = Vec.get q.heap 0 in
    Some (e.prio, e.value)

let clear q = Vec.clear q.heap

let iter f q = Vec.iter (fun e -> f e.prio e.value) q.heap

let to_list q = Vec.fold_left (fun acc e -> (e.prio, e.value) :: acc) [] q.heap

let to_sorted_list q =
  let entries = Vec.fold_left (fun acc e -> e :: acc) [] q.heap in
  List.map
    (fun e -> (e.prio, e.value))
    (List.sort
       (fun a b ->
         match Int.compare a.prio b.prio with 0 -> Int.compare a.rank b.rank | c -> c)
       entries)

let rebuild q entries =
  Vec.clear q.heap;
  List.iter (fun e -> Vec.push q.heap e) entries;
  let n = Vec.length q.heap in
  for i = (n / 2) - 1 downto 0 do
    sift_down q.heap i
  done

let filter_in_place p q =
  let entries =
    Vec.fold_left (fun acc e -> if p e.prio e.value then e :: acc else acc) [] q.heap
  in
  rebuild q entries

let map_priorities f q =
  let entries =
    Vec.fold_left (fun acc e -> { e with prio = f e.prio e.value } :: acc) [] q.heap
  in
  rebuild q entries
