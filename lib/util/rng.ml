type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_state t =
  t.state <- Int64.add t.state golden;
  t.state

(* splitmix64 finalizer: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators" (OOPSLA 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t = { state = int64 t }

(* A keyed stream: the [i]-th generator of the family rooted at [seed].
   Unlike [split], the derivation is stateless — stream i is a pure
   function of (seed, i), never of how many numbers any other stream has
   drawn. The sharded engine hands stream i to PE i so that a PE's
   scheduling randomness depends only on its own history. *)
let stream ~seed i =
  let z = mix (Int64.add (Int64.mul (Int64.of_int seed) golden) (Int64.of_int i)) in
  { state = mix (Int64.logxor z (Int64.of_int i)) }

let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (int64 t) mask) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 significant bits, scaled to [0,1). *)
  x *. (v /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u = 0.0 then epsilon_float else u in
    int_of_float (Float.floor (Float.log u /. Float.log (1.0 -. p)))
