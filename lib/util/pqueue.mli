(** Mutable min-priority queue (binary heap) with integer priorities.

    Used for PE task pools (lower priority value = served first) and the
    simulator's event ordering. Ties are broken by insertion order (FIFO),
    which keeps simulator runs deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> int -> 'a -> unit
(** [add q prio x] inserts [x] with priority [prio] (and tag [-1]). *)

val add_tagged : 'a t -> int -> tag:int -> 'a -> unit
(** [add_tagged q prio ~tag x] additionally attaches an opaque integer
    [tag] that travels with [x] and comes back out of {!pop_tagged}.
    Task pools use it to carry lineage tickets without boxing. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum-priority element (FIFO among ties). *)

val pop_tagged : 'a t -> (int * int * 'a) option
(** Like {!pop} but also returns the entry's tag:
    [(prio, tag, value)]. *)

val pop_tagged_with : 'a t -> ('a -> int -> unit) -> bool
(** [pop_tagged_with q f] pops the minimum entry and calls [f value tag];
    false (and no call) when empty. Allocates nothing — the hot-loop form
    of {!pop_tagged}. The heap invariant is restored before [f] runs, so
    [f] may re-enter {!add_tagged}. *)

val peek : 'a t -> (int * 'a) option

val min_prio : 'a t -> default:int -> int
(** The minimum priority in the queue, or [default] when empty — the
    allocation-free form of [peek] for threshold checks (e.g. "is the
    next arrival due?"). *)

val clear : 'a t -> unit

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Iteration order is unspecified. *)

val to_sorted_list : 'a t -> (int * 'a) list
(** Pop order without popping: ascending priority, FIFO among ties.
    O(n log n) — for deterministic external views (traces, debugging). *)

val filter_in_place : (int -> 'a -> bool) -> 'a t -> unit
(** Keep only entries satisfying the predicate. O(n log n). *)

val filter_tagged_in_place : (int -> int -> 'a -> bool) -> 'a t -> unit
(** Like {!filter_in_place} but the predicate also sees each entry's
    tag ([prio tag value]) — so callers can release per-entry resources
    (lineage tickets) for the entries being discarded. *)

val map_priorities : (int -> 'a -> int) -> 'a t -> unit
(** Recompute every entry's priority (rebuilds the heap; preserves FIFO
    ranks so equal-priority entries keep their relative order). *)
