(** Growable arrays.

    A minimal dynamic-array implementation (OCaml 5.1 predates the stdlib
    [Dynarray]); used as the backing store for the vertex table and for
    metric series. All operations are amortized O(1) unless noted. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] raises [Invalid_argument] if [i] is out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** [push v x] appends [x] at index [length v]. *)

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, or [None] if empty. *)

val clear : 'a t -> unit
(** [clear v] sets the length to zero (does not shrink storage). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val to_array : 'a t -> 'a array

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** [filter_in_place p v] keeps only elements satisfying [p], preserving
    order. O(n). *)

val truncate : 'a t -> int -> unit
(** [truncate v n] shortens [v] to its first [n] elements in O(1);
    raises [Invalid_argument] if [n] exceeds the current length. Used to
    compact parallel vectors in lock-step. *)

val swap_remove : 'a t -> int -> 'a
(** [swap_remove v i] removes the element at [i] in O(1) by moving the last
    element into its place. Does not preserve order. *)

val unsafe_data : 'a t -> 'a array
(** The backing array, for bulk loops that cannot afford a bounds check
    or closure per element. Only indices below [length v] hold live
    elements; the array is invalidated by any growing [push]. *)
