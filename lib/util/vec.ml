type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length v = v.len

let is_empty v = v.len = 0

let check v i op =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0,%d)" op i v.len)

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let to_array v = Array.sub v.data 0 v.len

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = v.data.(i) in
    if p x then begin
      v.data.(!j) <- x;
      incr j
    end
  done;
  v.len <- !j

let truncate v n =
  if n < 0 || n > v.len then
    invalid_arg (Printf.sprintf "Vec.truncate: length %d out of bounds [0,%d]" n v.len);
  v.len <- n

let swap_remove v i =
  check v i "swap_remove";
  let x = v.data.(i) in
  v.len <- v.len - 1;
  v.data.(i) <- v.data.(v.len);
  x

let unsafe_data v = v.data
