open Dgr_graph
open Dgr_task

(** Per-PE task pools (§5.2's [taskpool(i)]) with dynamic prioritization.

    A pool is a priority queue (FIFO among equals, so execution stays
    deterministic). The policy decides how much of the paper's §3.2 the
    scheduler uses:

    - [Flat]: no priorities (everything FIFO) — the ablation baseline;
    - [By_demand]: vital requests before eager ones, statically;
    - [Dynamic]: additionally refined by the destination vertex's
      [sched_prior] — the global priority the last completed M_R cycle
      assigned (3 vital / 2 eager / 1 reserve), so an eager subtree that
      became vital is boosted and one that became reserve is demoted. *)

type policy = Flat | By_demand | Dynamic

val policy_to_string : policy -> string

type t

val create :
  ?recorder:Dgr_obs.Recorder.t ->
  ?lineage:Dgr_obs.Lineage.t ->
  ?pe:int ->
  policy ->
  Graph.t ->
  t
(** [pe] (default 0) is the owning PE's index, used only to stamp trace
    events; with a recorder, {!purge} emits a [Purge] event per non-empty
    sweep. With a [lineage] store, {!purge} releases the tickets of the
    tasks it expunges (stamps ride queue tags; see {!push}). *)

val push : ?stamp:int -> t -> Task.t -> unit
(** [stamp] (default [-1]) is the task's lineage ticket; it rides the
    queue untouched and comes back out of {!pop_stamped}. *)

val pop : t -> Task.t option
(** Highest-priority reduction task, falling back to marking work when no
    reduction is queued (an idle PE lends its slot to the collector). *)

val pop_stamped : t -> (Task.t * int) option
(** {!pop}, also returning the task's lineage stamp ([-1] untracked). *)

val pop_marking : t -> Task.t option
(** Highest-priority queued marking task, if any — marking and reduction
    live in separate queues so the engine can budget them separately. *)

val pop_marking_stamped : t -> (Task.t * int) option
(** {!pop_marking} with the task's lineage stamp. *)

val drain : t -> budget:int -> (Task.t -> int -> unit) -> unit
(** Pop and apply [f task stamp] up to [budget] times in {!pop_stamped}
    order (reduction first, then marking), stopping early when both
    queues run dry. Allocates nothing — the engine's budget-loop form. *)

val drain_marking : t -> budget:int -> (Task.t -> int -> unit) -> unit
(** {!drain} over the marking queue only ({!pop_marking_stamped} order). *)

val length : t -> int

val is_empty : t -> bool

val tasks : t -> Task.t list
(** Queue order (ascending priority, FIFO among ties) — deterministic, so
    external views built from pool contents are stable. *)

val iter_tasks : t -> (Task.t -> unit) -> unit
(** Apply [f] to every pooled task in {e unspecified} order, without
    sorting or allocating — for callers folding into order-insensitive
    structures (e.g. the M_T seed set). *)

val purge : t -> (Task.t -> bool) -> int
(** Remove all tasks matching the predicate; returns how many. *)

val reprioritize : t -> int
(** Recompute priorities under the current graph state ([sched_prior] may
    have changed after a cycle); returns the number of entries whose
    priority changed. *)

val priority_of : policy -> Graph.t -> Task.t -> int
(** Exposed for tests. Marking = 0; cancels = 1. Under [Dynamic], a
    request's global class is its destination's [sched_prior] when
    classified, else inherited from its source capped by the relative
    demand (a task spawned from an eager region stays eager, §3.2);
    responses ride their requester's class. Classes map to bands: vital
    responses (1), vital requests (2), eager responses (3), eager
    requests (4), reserve (5). *)
