open Dgr_util

type spec = {
  drop : float;
  duplicate : float;
  delay : float;
  stall : float;
  stall_max : int;
  crash : float;
  crash_down_max : int;
  fault_seed : int;
}

let none =
  {
    drop = 0.0;
    duplicate = 0.0;
    delay = 0.0;
    stall = 0.0;
    stall_max = 8;
    crash = 0.0;
    crash_down_max = 32;
    fault_seed = 0;
  }

let active s =
  s.drop > 0.0 || s.duplicate > 0.0 || s.delay > 0.0 || s.stall > 0.0 || s.crash > 0.0

type t = {
  spec : spec;
  net_rng : Rng.t;
  stall_rng : Rng.t;
  crash_rng : Rng.t;
  mutable drops : int;
  mutable dups : int;
  mutable delays : int;
  mutable retransmits : int;
  mutable dup_suppressed : int;
  mutable stalls : int;
  mutable stall_steps : int;
}

let create spec =
  let base = Rng.create (spec.fault_seed lxor 0x5eed) in
  (* The crash stream hangs off its own base so that adding it leaves the
     net/stall streams (and every pre-crash golden fixture) byte-identical:
     record fields evaluate in unspecified order, so a third [split] of the
     shared base could permute which stream each field receives. *)
  let crash_base = Rng.create (spec.fault_seed lxor 0xc4a54) in
  {
    spec;
    net_rng = Rng.split base;
    stall_rng = Rng.split base;
    crash_rng = Rng.split crash_base;
    drops = 0;
    dups = 0;
    delays = 0;
    retransmits = 0;
    dup_suppressed = 0;
    stalls = 0;
    stall_steps = 0;
  }

let roll rng p = p > 0.0 && Rng.float rng 1.0 < p

let drops_frame t =
  let hit = roll t.net_rng t.spec.drop in
  if hit then t.drops <- t.drops + 1;
  hit

let duplicates_frame t =
  let hit = roll t.net_rng t.spec.duplicate in
  if hit then t.dups <- t.dups + 1;
  hit

let extra_delay t ~latency =
  if roll t.net_rng t.spec.delay then begin
    t.delays <- t.delays + 1;
    1 + Rng.int t.net_rng (Int.max 1 latency)
  end
  else 0

let stall_begins t ~pe:_ = roll t.stall_rng t.spec.stall

let stall_length t = 1 + Rng.int t.stall_rng (Int.max 1 t.spec.stall_max)

let crash_begins t ~pe:_ = roll t.crash_rng t.spec.crash

let down_length t = 1 + Rng.int t.crash_rng (Int.max 1 t.spec.crash_down_max)
