open Dgr_util
open Dgr_task

(* Two regimes share this module, and both now speak in *batches*: every
   task staged on the same (src, dst) link for the same arrival step
   rides in one frame. Staging happens at [send]; the staged batches are
   flushed into the channel at the next [deliver_into] (the network's
   clock tick), which is also when the fault plane rolls its dice — one
   roll per frame, not per task.

   Without a fault plane the flushed batches sit in an arrival-keyed
   queue and drain exactly once in flush order among equals, preserving
   the paper's idealized-channel semantics at task granularity: a task's
   arrival step is unchanged, only its grouping into frames is new.

   With a fault plane, batches ride in [Data] frames over an
   at-most-once channel (Faults may drop, duplicate or delay any
   physical transmission; a dropped batch is retransmitted as a unit).
   Reliability is re-earned end to end with per-(src, dst) sequence
   numbers and *cumulative* acks: the receiver tracks the highest
   contiguous sequence per link and acks that watermark — piggybacked on
   a reverse-direction data frame when one is already going out this
   step, as a standalone [Ack] frame otherwise — so the reliable layer
   no longer generates one ack frame per data frame. Retransmission on
   timeout with exponential backoff and receiver-side dedup keyed on
   (src, dst, fseq) give the layer above every task exactly once, in a
   deterministic order for a fixed fault seed.

   On top of batching, the staging step *coalesces* mark waves: an
   identical mark task (same constructor, vertex, parent, priority)
   already staged in the batch absorbs the newcomer. The newcomer is
   never transmitted; instead [on_coalesce] fires so the engine can
   settle the mark/return accounting (synthesize the [Return] the
   dropped twin would have produced, or credit the flood counters). *)

(* Scalar fields are mutable so delivered frames can be recycled through
   a free list (lossless channel only — see [recycle_batch]): a storm
   step stages tens of frames, and re-initializing a dead record beats
   allocating record + two vectors + (eventually) an index table. *)
type batch = {
  mutable b_src : int;
  mutable b_dst : int;
  mutable b_arrival : int;  (* fault-free arrival step, the stable sort key *)
  mutable b_delay : int;  (* base link delay at stage time (incl. jitter) *)
  mutable b_uid : int;  (* global stage order; ties in in_flight/entries *)
  b_tasks : Task.t Vec.t;  (* shared with every queued copy of the frame *)
  b_stamps : int Vec.t;
      (* lineage tickets, parallel to [b_tasks] ([-1]: untracked); pruned
         in lock-step by [purge] so the pairing survives in-flight edits *)
  mutable b_marks : (Task.mark, unit) Hashtbl.t option;
      (* membership index over the staged coalescible marks, built only
         once the batch outgrows [mark_scan_limit]: typical batches stay
         small and scan linearly with zero extra allocation, while a
         mark wave piling hundreds of tasks onto one link in one step
         still gets an O(1) coalescing test instead of O(batch) *)
  mutable b_pack : bool;  (* claimed to carry the reverse link's cum ack *)
}

let mark_scan_limit = 16

type frame =
  | Data of { fseq : int; pack : int; credit : (int * int * int) option; batch : batch }
      (** [pack] piggybacks a cumulative ack for the reverse data link
          (batch.b_dst, batch.b_src); [min_int] when none is carried.
          [credit] piggybacks the sender's termination credit
          (epoch, sent, executed) — see {!set_credit_of}. *)
  | Ack of { a_src : int; a_dst : int; cum : int; credit : (int * int * int) option }
      (** cumulative ack for data link (a_src, a_dst): every fseq up to
          and including [cum] has been received; travels a_dst→a_src and
          carries a_dst's termination credit when one is due *)

type pending = {
  p_batch : batch;
  p_fseq : int;
  mutable p_attempts : int;
  mutable p_rto : int;
  mutable p_delivered : bool;  (* receiver got a copy; awaiting ack *)
}

type snd_link = {
  mutable snd_next : int;  (* next fseq to assign *)
  mutable snd_una : int;  (* lowest fseq not yet cumulatively acked *)
}

type rcv_link = {
  mutable rcv_next : int;  (* next fseq expected in order; cum = rcv_next - 1 *)
  ooo : (int, unit) Hashtbl.t;  (* received out of order, above rcv_next *)
}

type t = {
  q : batch Pqueue.t;  (* ideal channel (faults = None) *)
  fq : frame Pqueue.t;  (* lossy channel, arrival-keyed *)
  cq : (int * int * int * int) Pqueue.t;
      (* standalone termination credits (pe, epoch, sent, executed),
         arrival-keyed: the heartbeat path for PEs with no data or ack
         traffic to piggyback on. Loss-free by design — credits are
         idempotent advisories, and the heartbeat is the liveness
         backstop the lossy piggyback paths lean on *)
  recorder : Dgr_obs.Recorder.t option;
  lineage : Dgr_obs.Lineage.t option;
      (* when present, every reduction task sent gets a latency ticket:
         opened here (sends always run serially — inline or at the
         mailbox flush), marked delivered in [deliver_into], dropped by
         [purge] *)
  faults : Faults.t option;
  batching : bool;  (* false: one task per frame, no coalescing *)
  staged : batch Vec.t;  (* batches forming since the last flush *)
  (* Delivered frames awaiting reuse, segregated by destination
     (idealized channel only: under faults a frame outlives delivery in
     [pending] until its cumulative ack lands, so those are never
     recycled). Per-destination pools exist for the sharded barrier
     flush: each destination shard recycles frames for its own PEs
     without sharing a free list across domains. *)
  mutable sf_free : batch Vec.t array;
  (* Destination-sharded flush plan (see [flush_shard_plan] and
     friends): forming proto-batches and a last-batch cache per
     destination — written by at most one shard each — plus a flat
     per-entry verdict, indexed by [sf_offs.(src) + i] for mailbox
     entry [i] of PE [src]. [sf_dummy] is the "no batch" sentinel, so
     the hot paths never box an option. *)
  sf_dummy : batch;
  mutable sf_batches : batch Vec.t array;  (* forming frames, by dst *)
  mutable sf_last : batch array;  (* per-dst last-batch cache *)
  mutable sf_offs : int array;  (* per-src entry offset into the plan *)
  mutable sf_vbatch : batch array;  (* per-entry: target proto-batch *)
  mutable sf_vidx : int array;  (* per-entry: slot in batch; -1 = coalesced *)
  snd : (int * int, snd_link) Hashtbl.t;  (* (src, dst) -> sender state *)
  rcv : (int * int, rcv_link) Hashtbl.t;  (* (src, dst) -> receiver state *)
  pending : (int * int * int, pending) Hashtbl.t;  (* unacked sends *)
  timers : (int * int * int) Pqueue.t;  (* fire step -> frame key *)
  owed : (int * int, int) Hashtbl.t;  (* data link -> ack base delay *)
  owed_order : (int * int) Vec.t;  (* links in first-owed order *)
  mutable last_batch : batch option;
      (* the batch the previous send staged into: sends cluster by link,
         so most lookups hit here without scanning [staged] *)
  mutable on_coalesce : pe:int -> Task.mark -> unit;
  mutable credit_of : int -> (int * int * int) option;
      (* the sending PE's current termination credit, sampled at each
         physical transmission (flush and retransmit alike, so a
         retransmitted frame carries *fresher* counters than the
         original — harmless, [Termination.learn] is monotone) *)
  mutable on_credit : pe:int -> epoch:int -> sent:int -> executed:int -> unit;
  mutable next_uid : int;
  mutable undelivered : int;  (* staged + in-channel task count *)
  mutable clock : int;  (* last [deliver ~now]; send-time reference *)
  (* transport counters, synced into Metrics by the engine each step *)
  mutable frames_sent : int;  (* initial data-frame flushes (both regimes) *)
  mutable acks_sent : int;  (* standalone cumulative-ack frames *)
  mutable acks_piggybacked : int;  (* cum acks carried on reverse data *)
  mutable tasks_sent : int;  (* tasks staged for transmission *)
  mutable marks_coalesced : int;  (* mark tasks absorbed before transmit *)
}

let dummy_batch () =
  {
    b_src = min_int;
    b_dst = min_int;
    b_arrival = min_int;
    b_delay = 0;
    b_uid = -1;
    b_tasks = Vec.create ();
    b_stamps = Vec.create ();
    b_marks = None;
    b_pack = false;
  }

let create ?recorder ?lineage ?faults ?(batch = true) () =
  let sf_dummy = dummy_batch () in
  {
    q = Pqueue.create ();
    fq = Pqueue.create ();
    cq = Pqueue.create ();
    recorder;
    lineage;
    faults;
    batching = batch;
    staged = Vec.create ();
    sf_free = [||];
    sf_dummy;
    sf_batches = [||];
    sf_last = [||];
    sf_offs = [||];
    sf_vbatch = [||];
    sf_vidx = [||];
    snd = Hashtbl.create 16;
    rcv = Hashtbl.create 16;
    pending = Hashtbl.create 64;
    timers = Pqueue.create ();
    owed = Hashtbl.create 16;
    owed_order = Vec.create ();
    last_batch = None;
    on_coalesce = (fun ~pe:_ _ -> ());
    credit_of = (fun _ -> None);
    on_credit = (fun ~pe:_ ~epoch:_ ~sent:_ ~executed:_ -> ());
    next_uid = 0;
    undelivered = 0;
    clock = 0;
    frames_sent = 0;
    acks_sent = 0;
    acks_piggybacked = 0;
    tasks_sent = 0;
    marks_coalesced = 0;
  }

let set_on_coalesce t f = t.on_coalesce <- f
let set_credit_of t f = t.credit_of <- f
let set_on_credit t f = t.on_credit <- f

let post_credit t ~arrival ~pe ~epoch ~sent ~executed =
  Pqueue.add t.cq arrival (pe, epoch, sent, executed)

let apply_credit t ~pe credit =
  match credit with
  | Some (epoch, sent, executed) -> t.on_credit ~pe ~epoch ~sent ~executed
  | None -> ()

let frames_sent t = t.frames_sent
let acks_sent t = t.acks_sent
let acks_piggybacked t = t.acks_piggybacked
let tasks_sent t = t.tasks_sent
let marks_coalesced t = t.marks_coalesced
let unacked t = Hashtbl.length t.pending

let emit t kind =
  match t.recorder with None -> () | Some r -> Dgr_obs.Recorder.emit r kind

let obs_of task =
  (Task.obs_kind task, match Task.exec_vertex task with Some v -> v | None -> -1)

(* Drop/Dup/Retransmit events describe a whole frame via its head task —
   batches are never empty in the channel (fully-purged batches are
   removed outright), so [Vec.get 0] is safe. *)
let head_obs b = obs_of (Vec.get b.b_tasks 0)

let rto_cap = 1024

(* The sequence space is per-link and never wraps: links live as long as
   the machine, so at [seq_guard] sends on one link we fail loudly
   rather than let cumulative acks silently go backwards. *)
let seq_guard = max_int / 2

let snd_link_for t key =
  match Hashtbl.find_opt t.snd key with
  | Some l -> l
  | None ->
    let l = { snd_next = 0; snd_una = 0 } in
    Hashtbl.add t.snd key l;
    l

let rcv_link_for t key =
  match Hashtbl.find_opt t.rcv key with
  | Some l -> l
  | None ->
    let l = { rcv_next = 0; ooo = Hashtbl.create 8 } in
    Hashtbl.add t.rcv key l;
    l

(* Record fseq as received on (src, dst), advancing the contiguous
   watermark through any out-of-order backlog it unlocks. *)
let mark_received t ~src ~dst fseq =
  let rl = rcv_link_for t (src, dst) in
  if fseq >= rl.rcv_next then
    if fseq = rl.rcv_next then begin
      rl.rcv_next <- rl.rcv_next + 1;
      while Hashtbl.mem rl.ooo rl.rcv_next do
        Hashtbl.remove rl.ooo rl.rcv_next;
        rl.rcv_next <- rl.rcv_next + 1
      done
    end
    else Hashtbl.replace rl.ooo fseq ()

let already_received t ~src ~dst fseq =
  match Hashtbl.find_opt t.rcv (src, dst) with
  | None -> false
  | Some rl -> fseq < rl.rcv_next || Hashtbl.mem rl.ooo fseq

let cum_for t ~src ~dst =
  match Hashtbl.find_opt t.rcv (src, dst) with
  | None -> -1
  | Some rl -> rl.rcv_next - 1

(* A cumulative ack for link (src, dst): forget every pending send up to
   [cum]. Idempotent — older acks and already-forgotten (purged) seqs
   are no-ops. *)
let apply_cum t ~src ~dst cum =
  match Hashtbl.find_opt t.snd (src, dst) with
  | None -> ()
  | Some sl ->
    while sl.snd_una <= cum do
      Hashtbl.remove t.pending (src, dst, sl.snd_una);
      sl.snd_una <- sl.snd_una + 1
    done

(* The receiver owes the sender a cumulative ack: remember the link (and
   the triggering frame's base delay, for the ack's travel time). Every
   owed link is settled at the next flush — piggybacked or standalone —
   so [owed]/[owed_order] never carry across more than one step. *)
let owe_ack t ~src ~dst ~delay =
  if not (Hashtbl.mem t.owed (src, dst)) then Vec.push t.owed_order (src, dst);
  Hashtbl.replace t.owed (src, dst) delay

(* One physical transmission of a data frame through the fault plane:
   roll duplicate (two independent copies on a hit), then every copy
   rolls drop and extra delay. [arrival] is the fault-free arrival step;
   [base] the link delay that scales the fault plane's extra delay. *)
let transmit_data t f ~arrival ~base ~fseq ~pack b =
  let credit = t.credit_of b.b_src in
  let copies =
    if Faults.duplicates_frame f then begin
      let kind, vid = head_obs b in
      emit t (Dgr_obs.Event.Dup { kind; pe = b.b_dst; vid });
      2
    end
    else 1
  in
  for _ = 1 to copies do
    if Faults.drops_frame f then begin
      let kind, vid = head_obs b in
      emit t (Dgr_obs.Event.Drop { kind; pe = b.b_dst; vid })
    end
    else
      Pqueue.add t.fq
        (arrival + Faults.extra_delay f ~latency:base)
        (Data { fseq; pack; credit; batch = b })
  done

(* Acks roll drop and delay only — duplicating an ack is a no-op, and
   keeping it out of the stream keeps the dup counter equal to the
   number of Dup events. *)
let transmit_ack t f ~arrival ~base frame =
  if not (Faults.drops_frame f) then
    Pqueue.add t.fq (arrival + Faults.extra_delay f ~latency:base) frame

(* Flush the batches staged since the last tick into the channel, then
   (under faults) settle every owed cumulative ack. Fault-plane dice are
   rolled here, once per frame, in stage order. *)
let flush t f ~now =
  (* Piggyback claim, newest staged batch first: the *last* reverse
     frame of the step carries the ack, so it covers everything the
     receiver saw before this flush. Claiming removes the debt, which
     also stops earlier batches on the same link from claiming it. *)
  for i = Vec.length t.staged - 1 downto 0 do
    let b = Vec.get t.staged i in
    let reverse = (b.b_dst, b.b_src) in
    if Hashtbl.mem t.owed reverse then begin
      Hashtbl.remove t.owed reverse;
      b.b_pack <- true
    end
  done;
  Vec.iter
    (fun b ->
      let link = (b.b_src, b.b_dst) in
      let sl = snd_link_for t link in
      if sl.snd_next >= seq_guard then
        invalid_arg "Network.send: per-link sequence space exhausted";
      let fseq = sl.snd_next in
      sl.snd_next <- fseq + 1;
      let p =
        { p_batch = b; p_fseq = fseq; p_attempts = 1; p_rto = (2 * b.b_delay) + 2;
          p_delivered = false }
      in
      Hashtbl.replace t.pending (b.b_src, b.b_dst, fseq) p;
      Pqueue.add t.timers (now + p.p_rto) (b.b_src, b.b_dst, fseq);
      t.frames_sent <- t.frames_sent + 1;
      emit t
        (Dgr_obs.Event.Batch
           { src = b.b_src; dst = b.b_dst; count = Vec.length b.b_tasks });
      let pack =
        if b.b_pack then begin
          let cum = cum_for t ~src:b.b_dst ~dst:b.b_src in
          t.acks_piggybacked <- t.acks_piggybacked + 1;
          emit t
            (Dgr_obs.Event.Cum_ack
               { src = b.b_dst; dst = b.b_src; upto = cum; piggyback = true });
          cum
        end
        else min_int
      in
      transmit_data t f ~arrival:b.b_arrival ~base:b.b_delay ~fseq ~pack b)
    t.staged;
  Vec.clear t.staged;
  t.last_batch <- None;
  (* Standalone acks for links no reverse data frame covered. *)
  Vec.iter
    (fun (src, dst) ->
      match Hashtbl.find_opt t.owed (src, dst) with
      | None -> () (* piggybacked above *)
      | Some delay ->
        Hashtbl.remove t.owed (src, dst);
        let cum = cum_for t ~src ~dst in
        t.acks_sent <- t.acks_sent + 1;
        emit t (Dgr_obs.Event.Cum_ack { src; dst; upto = cum; piggyback = false });
        transmit_ack t f ~arrival:(now + delay) ~base:delay
          (Ack { a_src = src; a_dst = dst; cum; credit = t.credit_of dst }))
    t.owed_order;
  Vec.clear t.owed_order

(* Fault-free flush: batches go straight onto the ideal arrival-keyed
   queue. Stage order among equal arrivals is preserved by the queue's
   FIFO tie-breaking, so delivery order is deterministic. *)
let flush_ideal t =
  Vec.iter
    (fun b ->
      t.frames_sent <- t.frames_sent + 1;
      (match t.recorder with
      | None -> ()
      | Some r ->
        Dgr_obs.Recorder.emit r
          (Dgr_obs.Event.Batch
             { src = b.b_src; dst = b.b_dst; count = Vec.length b.b_tasks }));
      Pqueue.add t.q b.b_arrival b)
    t.staged;
  Vec.clear t.staged;
  t.last_batch <- None

(* Find the forming batch for (src, dst, arrival). Sends cluster by
   link (a PE drains its pool, a mark wave fans out), so the previous
   send's batch is checked first; otherwise a backward linear scan over
   the staged set — one forming batch per active (link, arrival), so it
   stays short. *)
let find_staged t ~src ~dst ~arrival =
  let matches b = b.b_src = src && b.b_dst = dst && b.b_arrival = arrival in
  match t.last_batch with
  | Some b when matches b -> Some b
  | _ ->
    let rec scan i =
      if i < 0 then None
      else
        let b = Vec.get t.staged i in
        if matches b then Some b else scan (i - 1)
    in
    scan (Vec.length t.staged - 1)

(* Is an identical coalescible mark already staged in this batch? Short
   batches scan the task vector directly; batches past [mark_scan_limit]
   are answered by their [b_marks] index. *)
let mark_staged b m =
  match b.b_marks with
  | Some tbl -> Hashtbl.mem tbl m
  | None ->
    Vec.exists
      (fun task ->
        match task with Task.Marking m' -> m' = m | Task.Reduction _ -> false)
      b.b_tasks

(* Called just before pushing mark [m]: once the push will take the
   batch past the scan limit, build the index over everything staged so
   far (a one-time O(batch) catch-up) and keep it current from then on. *)
let index_mark b m =
  match b.b_marks with
  | Some tbl -> Hashtbl.replace tbl m ()
  | None ->
    if Vec.length b.b_tasks >= mark_scan_limit then begin
      let tbl = Hashtbl.create (2 * mark_scan_limit) in
      Vec.iter
        (fun task ->
          match task with
          | Task.Marking (Task.Return _) | Task.Reduction _ -> ()
          | Task.Marking m' -> Hashtbl.replace tbl m' ())
        b.b_tasks;
      Hashtbl.replace tbl m ();
      b.b_marks <- Some tbl
    end

(* The free pool for frames bound for [dst], grown on demand (serial
   contexts only; the sharded grouping pass never resizes, it relies on
   [flush_shard_plan] having sized the array first). *)
let free_list_for t dst =
  let n = Array.length t.sf_free in
  if dst >= n then begin
    let a = Array.init (dst + 1) (fun i -> if i < n then t.sf_free.(i) else Vec.create ()) in
    t.sf_free <- a
  end;
  t.sf_free.(dst)

(* Pop a recycled frame from [fl], or allocate one. The caller fills the
   scalar header; vectors keep their storage and a retained (emptied)
   [b_marks] index answers membership exactly like a fresh scan over the
   empty batch. *)
let batch_for fl =
  let n_free = Vec.length fl in
  if n_free > 0 then begin
    let b = Vec.get fl (n_free - 1) in
    Vec.truncate fl (n_free - 1);
    b
  end
  else dummy_batch ()

let send ?(src = -1) ?(lin = -1) ?(depth = 0) t ~arrival ~pe task =
  let b =
    match if t.batching then find_staged t ~src ~dst:pe ~arrival else None with
    | Some b -> b
    | None ->
      let b = batch_for (free_list_for t pe) in
      b.b_src <- src;
      b.b_dst <- pe;
      b.b_arrival <- arrival;
      b.b_delay <- Int.max 1 (arrival - t.clock);
      b.b_uid <- t.next_uid;
      b.b_pack <- false;
      t.next_uid <- t.next_uid + 1;
      Vec.push t.staged b;
      b
  in
  (if t.batching then
     match t.last_batch with
     | Some lb when lb == b -> ()
     | _ -> t.last_batch <- Some b);
  (* Marks are flat scalar records, so the structural hashing and
     equality behind [b_marks] are exact; Returns never coalesce (each
     one carries a distinct mt-cnt credit) and reduction tasks are never
     compared (closures, and no two are semantically identical). *)
  match task with
  | Task.Marking m
    when (match m with Task.Return _ -> false | _ -> t.batching)
         && mark_staged b m ->
    t.marks_coalesced <- t.marks_coalesced + 1;
    (match t.recorder with
    | None -> ()
    | Some r ->
      Dgr_obs.Recorder.emit r
        (Dgr_obs.Event.Coalesce
           { pe; vid = (match Task.exec_vertex task with Some v -> v | None -> -1) }));
    (* state is consistent here: the callback may re-enter [send] (the
       engine stages the Return the dropped twin would have produced;
       Returns never coalesce, so recursion is depth 1) *)
    t.on_coalesce ~pe m
  | task ->
    (match task with
    | Task.Marking (Task.Return _) | Task.Reduction _ -> ()
    | Task.Marking m -> if t.batching then index_mark b m);
    (* Only reduction tasks are ticketed: marks may be coalesced away
       above (a leaked ticket would never close), and the latency story
       the histograms tell is about demand propagation, not the wave. *)
    let stamp =
      match (t.lineage, task) with
      | Some l, Task.Reduction _ ->
        Dgr_obs.Lineage.open_ticket l ~lin ~depth ~sent:t.clock ~arrival
      | _ -> -1
    in
    Vec.push b.b_tasks task;
    Vec.push b.b_stamps stamp;
    t.undelivered <- t.undelivered + 1;
    t.tasks_sent <- t.tasks_sent + 1

(* Delivery hands each due task to [push] as its batch pops — the
   engine's pools consume directly, with no intermediate list. [push]
   also receives the task's lineage stamp ([-1]: untracked), which the
   pool carries through residence. Pops emit [Deliver] per task in pop
   order and [push] emits nothing, so interleaving push with pop keeps
   the trace deterministic. *)
let deliver_batch t b ~now ~push =
  t.undelivered <- t.undelivered - Vec.length b.b_tasks;
  for i = 0 to Vec.length b.b_tasks - 1 do
    let task = Vec.get b.b_tasks i in
    let stamp = Vec.get b.b_stamps i in
    let lin =
      match t.lineage with
      | Some l when stamp >= 0 ->
        Dgr_obs.Lineage.deliver l stamp ~now;
        Dgr_obs.Lineage.lin_of l stamp
      | _ -> -1
    in
    (match t.recorder with
    | None -> ()
    | Some r ->
      Dgr_obs.Recorder.emit r
        (Dgr_obs.Event.Deliver
           {
             kind = Task.obs_kind task;
             pe = b.b_dst;
             vid = (match Task.exec_vertex task with Some v -> v | None -> -1);
             lin;
           }));
    push b.b_dst stamp task
  done

(* Return a delivered frame to its destination's free pool. Only the
   idealized channel may call this: after its pop the batch is
   referenced nowhere (staged was flushed, [last_batch] was reset by
   that flush), whereas the fault path keeps frames in [pending] until
   cumulatively acked. The mark index is emptied but kept allocated —
   [mark_staged] on an empty table is exactly the empty-batch scan. Each
   pool is capped so a burst does not pin its high-water mark of vectors
   forever. *)
let free_batches_cap = 32

let recycle_batch t b =
  let fl = free_list_for t b.b_dst in
  if Vec.length fl < free_batches_cap then begin
    Vec.clear b.b_tasks;
    Vec.clear b.b_stamps;
    (match b.b_marks with Some tbl -> Hashtbl.reset tbl | None -> ());
    Vec.push fl b
  end

(* Standalone credits drain in arrival order (FIFO among equals) in both
   regimes; [learn] is idempotent and order-insensitive anyway, so this
   order only matters for trace determinism. *)
let drain_credits t ~now =
  while
    Pqueue.min_prio t.cq ~default:max_int <= now
    && Pqueue.pop_tagged_with t.cq (fun (pe, epoch, sent, executed) _stamp ->
           t.on_credit ~pe ~epoch ~sent ~executed)
  do
    ()
  done

let deliver_into t ~now ~push =
  t.clock <- now;
  drain_credits t ~now;
  match t.faults with
  | None ->
    flush_ideal t;
    (* Fast path: the idealized channel is a single peek/pop loop with
       no frame bookkeeping — the unboxed [min_prio]/[pop_tagged_with]
       pair pops due frames without building options or tuples — and
       [Deliver] event records are only constructed when a recorder is
       attached. *)
    while
      Pqueue.min_prio t.q ~default:max_int <= now
      && Pqueue.pop_tagged_with t.q (fun b _stamp ->
             deliver_batch t b ~now ~push;
             recycle_batch t b)
    do
      ()
    done
  | Some f ->
    flush t f ~now;
    let rec drain () =
      match Pqueue.peek t.fq with
      | Some (arrival, _) when arrival <= now ->
        (match Pqueue.pop t.fq with
        | Some (_, Data { fseq; pack; credit; batch = b }) ->
          let src = b.b_src and dst = b.b_dst in
          (* a piggybacked cum ack settles the reverse data link *)
          if pack > min_int then apply_cum t ~src:dst ~dst:src pack;
          (* credits apply even on duplicate frames — idempotent *)
          apply_credit t ~pe:src credit;
          if already_received t ~src ~dst fseq then
            (* redelivery of a frame already seen (or whose batch was
               purged): suppress — this is the exactly-once edge *)
            f.Faults.dup_suppressed <- f.Faults.dup_suppressed + 1
          else begin
            mark_received t ~src ~dst fseq;
            (match Hashtbl.find_opt t.pending (src, dst, fseq) with
            | Some p -> p.p_delivered <- true
            | None -> ());
            deliver_batch t b ~now ~push
          end;
          (* always owe an ack, even for duplicates: the previous
             cumulative ack may have been lost *)
          owe_ack t ~src ~dst ~delay:b.b_delay;
          drain ()
        | Some (_, Ack { a_src; a_dst; cum; credit }) ->
          apply_cum t ~src:a_src ~dst:a_dst cum;
          apply_credit t ~pe:a_dst credit;
          drain ()
        | None -> ())
      | Some _ | None -> ()
    in
    drain ();
    let rec service_timers () =
      match Pqueue.peek t.timers with
      | Some (at, _) when at <= now ->
        (match Pqueue.pop t.timers with
        | Some (_, key) -> (
          match Hashtbl.find_opt t.pending key with
          | None -> () (* acked or purged; timer lazily deleted *)
          | Some p ->
            let b = p.p_batch in
            p.p_attempts <- p.p_attempts + 1;
            f.Faults.retransmits <- f.Faults.retransmits + 1;
            let kind, vid = head_obs b in
            emit t
              (Dgr_obs.Event.Retransmit
                 { kind; pe = b.b_dst; vid; attempt = p.p_attempts });
            (* the whole batch retransmits as a unit, without a
               piggybacked ack (the ack path has its own redundancy:
               every receipt re-owes the watermark) *)
            transmit_data t f ~arrival:(now + b.b_delay) ~base:b.b_delay
              ~fseq:p.p_fseq ~pack:min_int b;
            p.p_rto <- Int.min (p.p_rto * 2) rto_cap;
            Pqueue.add t.timers (now + p.p_rto) key)
        | None -> ());
        service_timers ()
      | Some _ | None -> ()
    in
    service_timers ()

let deliver t ~now =
  let acc = ref [] in
  deliver_into t ~now ~push:(fun pe _stamp task -> acc := (pe, task) :: !acc);
  List.rev !acc

(* Undelivered batches in fault-free arrival order, stage order among
   equals — deterministic regardless of hash-table or heap layout.
   Staged batches (sent this step, flushing next tick) are included:
   between ticks they are exactly as in-flight as queued ones. *)
let sorted_batches t =
  let acc = ref [] in
  (match t.faults with
  | None -> Pqueue.iter (fun _ b -> acc := b :: !acc) t.q
  | Some _ ->
    Hashtbl.iter (fun _ p -> if not p.p_delivered then acc := p.p_batch :: !acc) t.pending);
  Vec.iter (fun b -> acc := b :: !acc) t.staged;
  List.sort
    (fun a b ->
      match compare a.b_arrival b.b_arrival with 0 -> compare a.b_uid b.b_uid | c -> c)
    !acc

let in_flight t =
  List.concat_map (fun b -> Vec.to_list b.b_tasks) (sorted_batches t)

let iter_in_flight t f =
  let visit b = Vec.iter f b.b_tasks in
  (match t.faults with
  | None -> Pqueue.iter (fun _ b -> visit b) t.q
  | Some _ -> Hashtbl.iter (fun _ p -> if not p.p_delivered then visit p.p_batch) t.pending);
  Vec.iter visit t.staged

let iter_in_flight_dst t f =
  let visit b = Vec.iter (fun task -> f ~dst:b.b_dst task) b.b_tasks in
  (match t.faults with
  | None -> Pqueue.iter (fun _ b -> visit b) t.q
  | Some _ -> Hashtbl.iter (fun _ p -> if not p.p_delivered then visit p.p_batch) t.pending);
  Vec.iter visit t.staged

let entries t =
  List.concat_map
    (fun b -> List.map (fun task -> (b.b_arrival, task)) (Vec.to_list b.b_tasks))
    (sorted_batches t)

let emit_purges t counts =
  List.iter
    (fun (pe, n) -> emit t (Dgr_obs.Event.Purge { pe; count = n }))
    (List.sort compare counts)

let counts_of_tbl tbl = Hashtbl.fold (fun pe n acc -> (pe, !n) :: acc) tbl []

let bump tbl pe =
  match Hashtbl.find_opt tbl pe with
  | Some n -> incr n
  | None -> Hashtbl.add tbl pe (ref 1)

(* Purge filters tasks *inside* batches. Queued frame copies share the
   batch's task vector, so pruning a pending batch prunes every copy in
   the channel at once. A batch emptied before it ever flushed simply
   disappears; one emptied while in the channel leaves a sequence hole,
   which the receiver is told to treat as received — cumulative acks
   then skip over it and its queued copies are discarded, so survivors
   on the link are neither blocked nor double-acked. *)
let purge t pred =
  let per_pe = Hashtbl.create 8 in
  let removed = ref 0 in
  let prune b =
    let before = Vec.length b.b_tasks in
    let j = ref 0 in
    for i = 0 to before - 1 do
      let task = Vec.get b.b_tasks i in
      let stamp = Vec.get b.b_stamps i in
      if pred task then begin
        bump per_pe b.b_dst;
        (* a still-staged batch may yet coalesce: the purged mark must
           not absorb a later identical send as a ghost *)
        (match (task, b.b_marks) with
        | (Task.Marking (Task.Return _) | Task.Reduction _), _ | _, None -> ()
        | Task.Marking m, Some tbl -> Hashtbl.remove tbl m);
        match t.lineage with
        | Some l when stamp >= 0 -> Dgr_obs.Lineage.drop l stamp
        | _ -> ()
      end
      else begin
        if !j <> i then begin
          Vec.set b.b_tasks !j task;
          Vec.set b.b_stamps !j stamp
        end;
        incr j
      end
    done;
    Vec.truncate b.b_tasks !j;
    Vec.truncate b.b_stamps !j;
    let n = before - !j in
    removed := !removed + n;
    t.undelivered <- t.undelivered - n;
    !j = 0
  in
  Vec.filter_in_place (fun b -> not (prune b)) t.staged;
  (match t.faults with
  | None -> Pqueue.filter_in_place (fun _ b -> not (prune b)) t.q
  | Some _ ->
    let victims =
      Hashtbl.fold
        (fun key p acc -> if not p.p_delivered then (key, p) :: acc else acc)
        t.pending []
    in
    let holes = Hashtbl.create 8 in
    List.iter
      (fun ((src, dst, fseq) as key, p) ->
        if prune p.p_batch then begin
          Hashtbl.remove t.pending key;
          Hashtbl.replace holes key ();
          mark_received t ~src ~dst fseq
        end)
      victims;
    (* discard queued copies of emptied batches too, so they are
       neither delivered nor miscounted as duplicates when they arrive *)
    if Hashtbl.length holes > 0 then
      Pqueue.filter_in_place
        (fun _ frame ->
          match frame with
          | Data { fseq; batch = b; _ } ->
            not (Hashtbl.mem holes (b.b_src, b.b_dst, fseq))
          | Ack _ -> true)
        t.fq);
  if !removed > 0 then emit_purges t (counts_of_tbl per_pe);
  !removed

let size t = t.undelivered

(* Test hook: fast-forward a link's sender sequence to exercise the
   wraparound guard without billions of sends. *)
let set_link_seq t ~src ~dst n =
  let sl = snd_link_for t (src, dst) in
  sl.snd_next <- n;
  sl.snd_una <- n

(* A PE crash severs every link touching [pe], both directions, all at
   once: staged batches, unacked sends, queued frame copies, retransmit
   timers, owed acks, and — crucially — the per-link seq state on both
   ends, so the link restarts at fseq 0 when traffic resumes. Resetting
   seqs without dedup false-positives is only sound because every frame
   that could carry an old seq dies in the same call: there is nothing
   left in the channel to collide with the reused numbers, and stale
   timers are filtered rather than lazily dropped so a fresh send's
   (src, dst, 0) key cannot be retransmitted by a dead PE's timer.
   Returns the number of undelivered tasks lost; their lineage tickets
   are dropped. Delivered-but-unacked batches lose only their ack state
   (the receiver already has the tasks). *)
let crash_pe t ~pe =
  let lost = ref 0 in
  let touches b = b.b_src = pe || b.b_dst = pe in
  let forget_batch b =
    let n = Vec.length b.b_tasks in
    lost := !lost + n;
    t.undelivered <- t.undelivered - n;
    match t.lineage with
    | None -> ()
    | Some l ->
      Vec.iter (fun stamp -> if stamp >= 0 then Dgr_obs.Lineage.drop l stamp) b.b_stamps
  in
  Vec.filter_in_place
    (fun b ->
      if touches b then begin
        forget_batch b;
        false
      end
      else true)
    t.staged;
  (match t.last_batch with
  | Some b when touches b -> t.last_batch <- None
  | Some _ | None -> ());
  (match t.faults with
  | None ->
    (* ideal channel (a crash injected without a fault plane) *)
    Pqueue.filter_in_place
      (fun _ b ->
        if touches b then begin
          forget_batch b;
          false
        end
        else true)
      t.q
  | Some _ ->
    let victims =
      Hashtbl.fold
        (fun ((s, d, _) as key) p acc ->
          if s = pe || d = pe then (key, p) :: acc else acc)
        t.pending []
    in
    List.iter
      (fun (key, p) ->
        Hashtbl.remove t.pending key;
        if not p.p_delivered then forget_batch p.p_batch)
      victims;
    Pqueue.filter_in_place
      (fun _ frame ->
        match frame with
        | Data { batch = b; _ } -> not (touches b)
        | Ack { a_src; a_dst; _ } -> a_src <> pe && a_dst <> pe)
      t.fq;
    Pqueue.filter_in_place (fun _ (s, d, _) -> s <> pe && d <> pe) t.timers);
  (* in-flight heartbeat credits from the dead PE die with it *)
  Pqueue.filter_in_place (fun _ (p, _, _, _) -> p <> pe) t.cq;
  let purge_links tbl =
    let doomed =
      Hashtbl.fold (fun ((s, d) as k) _ acc -> if s = pe || d = pe then k :: acc else acc) tbl []
    in
    List.iter (Hashtbl.remove tbl) doomed
  in
  purge_links t.snd;
  purge_links t.rcv;
  purge_links t.owed;
  Vec.filter_in_place (fun (s, d) -> s <> pe && d <> pe) t.owed_order;
  !lost

(* Per-PE outgoing buffer for the sharded engine. A PE executing on a
   worker domain never touches the shared staging area directly: it
   posts into its private mailbox, and the engine flushes all mailboxes
   into the network at the step barrier in ascending PE order. Flushing
   preserves each mailbox's post order, and staging groups tasks by
   (src, dst, arrival) irrespective of post interleaving, so the merged
   batches equal the serial engine's — independent of which domain ran
   which PE when. *)
module Mailbox = struct
  type entry = {
    e_src : int;
    e_arrival : int;
    e_pe : int;
    e_lin : int;
    e_depth : int;
    e_task : Task.t;
  }

  type mb = entry Vec.t

  let create () : mb = Vec.create ()

  let post (mb : mb) ?(lin = -1) ?(depth = 0) ~src ~arrival ~pe task =
    Vec.push mb
      { e_src = src; e_arrival = arrival; e_pe = pe; e_lin = lin; e_depth = depth;
        e_task = task }

  let length (mb : mb) = Vec.length mb

  let flush (mb : mb) net =
    Vec.iter
      (fun e ->
        send ~src:e.e_src ~lin:e.e_lin ~depth:e.e_depth net ~arrival:e.e_arrival
          ~pe:e.e_pe e.e_task)
      mb;
    Vec.clear mb

  type t = mb
end

(* ---- Destination-sharded mailbox flush --------------------------------
   The barrier flush split in two, so the grouping half can run on the
   worker pool.

   Everything [send] computes per mailbox entry falls into two classes:

   - {e per-destination} state: which (src, arrival) frame the task
     joins, whether an identical mark is already staged there (the
     coalescing test), the frame's mark index and task/stamp vectors.
     Frames are keyed by destination, so this state is disjoint across
     destinations — [flush_shard_group] partitions the destination space
     and lets each shard group its own PEs' inbound entries in parallel.
     Each shard scans every mailbox in ascending src order and takes
     post order within one, so the entries of one destination are
     visited in exactly the order the serial flush would visit them
     (the global order is src-major; restricting a src-major order to
     one destination preserves it), making each shard's grouping a pure
     function of the mailboxes. Coalescing is decidable in this pass
     because a secondary send fired by [on_coalesce] carries src = -1
     and can never join a mailbox entry's (src >= 0) frame.

   - {e globally ordered} state: frame uids and their [staged] order,
     lineage ticket slots, the [on_coalesce] callbacks (whose synthetic
     Returns draw the controller's jitter stream), and the send
     counters. [flush_shard_finalize] replays the verdicts in the
     serial flush's exact global order and performs only this part, so
     uids, ticket slots, rng draws, events and counters are
     byte-identical to the serial flush — at every domain count, the
     sharded flush and [Mailbox.flush] over the same mailboxes leave
     the network in the same state. *)

(* Size the plan for [mbs] and publish the per-src offsets. Returns
   [false] when the staged area is not empty — then a forming frame
   could already match a mailbox entry's key, only the serial flush
   handles that (the engine's barrier always runs on an empty staged
   area; external callers get the fallback). *)
let flush_shard_plan t (mbs : Mailbox.mb array) =
  if Vec.length t.staged > 0 then false
  else begin
    let n = Array.length mbs in
    ignore (free_list_for t (n - 1));
    if Array.length t.sf_batches < n then begin
      let old_b = t.sf_batches and old_l = t.sf_last in
      let nb = Array.length old_b in
      t.sf_batches <-
        Array.init n (fun i -> if i < nb then old_b.(i) else Vec.create ());
      t.sf_last <- Array.init n (fun i -> if i < nb then old_l.(i) else t.sf_dummy)
    end;
    if Array.length t.sf_offs < n + 1 then t.sf_offs <- Array.make (n + 1) 0;
    let total = ref 0 in
    for src = 0 to n - 1 do
      t.sf_offs.(src) <- !total;
      total := !total + Mailbox.length mbs.(src)
    done;
    t.sf_offs.(n) <- !total;
    if Array.length t.sf_vidx < !total then begin
      let cap = Stdlib.max 64 (2 * !total) in
      t.sf_vidx <- Array.make cap 0;
      t.sf_vbatch <- Array.make cap t.sf_dummy
    end;
    true
  end

(* The forming frame for (src, arrival) bound for [dst], or [sf_dummy].
   Same lookup as [find_staged] restricted to one destination: the
   last-batch cache first, then a backward scan — the dummy's negative
   header fields can never match a real (src >= 0) key. *)
let sf_find t ~dst ~src ~arrival =
  let last = t.sf_last.(dst) in
  if last.b_src = src && last.b_arrival = arrival then last
  else begin
    let bs = t.sf_batches.(dst) in
    let rec scan i =
      if i < 0 then t.sf_dummy
      else
        let b = Vec.get bs i in
        if b.b_src = src && b.b_arrival = arrival then b else scan (i - 1)
    in
    scan (Vec.length bs - 1)
  end

(* Group the mailbox entries bound for destinations [lo, hi) into
   proto-frames, and record each entry's verdict: the (frame, slot) it
   joined, or coalesced. Touches only per-destination state of its own
   range, so shards over disjoint ranges run concurrently; run over the
   full range it is the serial grouping. Frame uids, [staged], tickets
   and counters are untouched — that is [flush_shard_finalize]'s. *)
let flush_shard_group t (mbs : Mailbox.mb array) ~lo ~hi =
  for src = 0 to Array.length mbs - 1 do
    let mb = mbs.(src) in
    let data = Vec.unsafe_data mb in
    let base = t.sf_offs.(src) in
    for i = 0 to Mailbox.length mb - 1 do
      let e = data.(i) in
      let dst = e.Mailbox.e_pe in
      if dst >= lo && dst < hi then begin
        let arrival = e.Mailbox.e_arrival in
        let b =
          if not t.batching then t.sf_dummy else sf_find t ~dst ~src ~arrival
        in
        let b =
          if b != t.sf_dummy then b
          else begin
            let b = batch_for t.sf_free.(dst) in
            b.b_src <- src;
            b.b_dst <- dst;
            b.b_arrival <- arrival;
            b.b_delay <- Int.max 1 (arrival - t.clock);
            b.b_uid <- -1;  (* staged (and numbered) at finalize *)
            b.b_pack <- false;
            Vec.push t.sf_batches.(dst) b;
            if t.batching then t.sf_last.(dst) <- b;
            b
          end
        in
        match e.Mailbox.e_task with
        | Task.Marking m
          when (match m with Task.Return _ -> false | _ -> t.batching)
               && mark_staged b m ->
          t.sf_vidx.(base + i) <- -1
        | task ->
          (match task with
          | Task.Marking (Task.Return _) | Task.Reduction _ -> ()
          | Task.Marking m -> if t.batching then index_mark b m);
          t.sf_vbatch.(base + i) <- b;
          t.sf_vidx.(base + i) <- Vec.length b.b_tasks;
          Vec.push b.b_tasks task;
          Vec.push b.b_stamps (-1)
      end
    done
  done

(* Replay the verdicts in the serial flush's global order (ascending
   src, post order within a mailbox): number and stage each frame at its
   first kept entry — a frame's first entry is always kept (there is
   nothing in a fresh frame to coalesce against), so staging order
   equals the serial flush's creation order — open lineage tickets in
   slot-allocation order, fire [on_coalesce] (whose synthetic sends
   stage and draw jitter exactly where the serial flush would), and
   settle the counters. Clears the mailboxes and the plan. *)
let flush_shard_finalize t (mbs : Mailbox.mb array) =
  let n = Array.length mbs in
  for src = 0 to n - 1 do
    let mb = mbs.(src) in
    let data = Vec.unsafe_data mb in
    let base = t.sf_offs.(src) in
    for i = 0 to Mailbox.length mb - 1 do
      let e = data.(i) in
      if t.sf_vidx.(base + i) < 0 then begin
        t.marks_coalesced <- t.marks_coalesced + 1;
        (match t.recorder with
        | None -> ()
        | Some r ->
          Dgr_obs.Recorder.emit r
            (Dgr_obs.Event.Coalesce
               {
                 pe = e.Mailbox.e_pe;
                 vid =
                   (match Task.exec_vertex e.Mailbox.e_task with
                   | Some v -> v
                   | None -> -1);
               }));
        match e.Mailbox.e_task with
        | Task.Marking m -> t.on_coalesce ~pe:e.Mailbox.e_pe m
        | Task.Reduction _ -> assert false (* only marks coalesce *)
      end
      else begin
        let idx = t.sf_vidx.(base + i) in
        let b = t.sf_vbatch.(base + i) in
        t.sf_vbatch.(base + i) <- t.sf_dummy;
        if b.b_uid < 0 then begin
          b.b_uid <- t.next_uid;
          t.next_uid <- t.next_uid + 1;
          Vec.push t.staged b
        end;
        (match (t.lineage, e.Mailbox.e_task) with
        | Some l, Task.Reduction _ ->
          Vec.set b.b_stamps idx
            (Dgr_obs.Lineage.open_ticket l ~lin:e.Mailbox.e_lin
               ~depth:e.Mailbox.e_depth ~sent:t.clock ~arrival:e.Mailbox.e_arrival)
        | _ -> ());
        t.undelivered <- t.undelivered + 1;
        t.tasks_sent <- t.tasks_sent + 1
      end
    done;
    Vec.clear mb
  done;
  for dst = 0 to n - 1 do
    Vec.clear t.sf_batches.(dst);
    t.sf_last.(dst) <- t.sf_dummy
  done
