open Dgr_util
open Dgr_task

type t = { q : (int * Task.t) Pqueue.t; recorder : Dgr_obs.Recorder.t option }

let create ?recorder () = { q = Pqueue.create (); recorder }

let send t ~arrival ~pe task = Pqueue.add t.q arrival (pe, task)

let deliver t ~now =
  let rec loop acc =
    match Pqueue.peek t.q with
    | Some (arrival, _) when arrival <= now -> (
      match Pqueue.pop t.q with
      | Some (_, entry) -> loop (entry :: acc)
      | None -> acc)
    | Some _ | None -> acc
  in
  let delivered = List.rev (loop []) in
  (match t.recorder with
  | None -> ()
  | Some r ->
    List.iter
      (fun (pe, task) ->
        Dgr_obs.Recorder.emit r
          (Dgr_obs.Event.Deliver
             {
               kind = Task.obs_kind task;
               pe;
               vid = (match Task.exec_vertex task with Some v -> v | None -> -1);
             }))
      delivered);
  delivered

let in_flight t = List.map (fun (_, (_, task)) -> task) (Pqueue.to_sorted_list t.q)

let purge t pred =
  let before = Pqueue.length t.q in
  Pqueue.filter_in_place (fun _ (_, task) -> not (pred task)) t.q;
  let n = before - Pqueue.length t.q in
  (match t.recorder with
  | Some r when n > 0 -> Dgr_obs.Recorder.emit r (Dgr_obs.Event.Purge { pe = -1; count = n })
  | Some _ | None -> ());
  n

let size t = Pqueue.length t.q

let entries t = List.map (fun (arr, (_, task)) -> (arr, task)) (Pqueue.to_sorted_list t.q)
