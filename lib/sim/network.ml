open Dgr_util
open Dgr_task

(* Two regimes share this module.

   Without a fault plane the network is the idealized channel of the
   paper: an arrival-keyed queue of (pe, task), delivered exactly once in
   send order among equals. This path is byte-identical to the original
   implementation so fault-free traces never change.

   With a fault plane, tasks ride in [Data] frames over an at-most-once
   channel (Faults may drop, duplicate or delay any physical
   transmission). Reliability is re-earned end to end: per-(src, dst)
   sequence numbers, an individual [Ack] per data frame, retransmission
   on timeout with exponential backoff, and receiver-side dedup keyed on
   (src, dst, fseq) — so the layer above still sees every task exactly
   once, in a deterministic order for a fixed fault seed. *)

type frame =
  | Data of { src : int; dst : int; fseq : int; delay : int; task : Task.t }
  | Ack of { src : int; dst : int; fseq : int }
      (** identifies the data frame being acknowledged; travels dst→src *)

type pending = {
  p_src : int;
  p_dst : int;
  p_fseq : int;
  p_task : Task.t;
  p_delay : int;  (* base link delay of the original send (incl. jitter) *)
  p_uid : int;  (* global send order; ties in in_flight/entries *)
  p_arrival : int;  (* fault-free arrival step, the stable sort key *)
  mutable p_attempts : int;
  mutable p_rto : int;
  mutable p_delivered : bool;  (* receiver got a copy; awaiting ack *)
}

type t = {
  q : (int * Task.t) Pqueue.t;  (* ideal channel (faults = None) *)
  fq : frame Pqueue.t;  (* lossy channel, arrival-keyed *)
  recorder : Dgr_obs.Recorder.t option;
  faults : Faults.t option;
  link_seq : (int * int, int) Hashtbl.t;  (* (src, dst) -> next fseq *)
  pending : (int * int * int, pending) Hashtbl.t;  (* unacked sends *)
  timers : (int * int * int) Pqueue.t;  (* fire step -> frame key *)
  mutable next_uid : int;
  mutable undelivered : int;  (* data frames the receiver hasn't seen *)
  mutable clock : int;  (* last [deliver ~now]; send-time reference *)
}

let create ?recorder ?faults () =
  {
    q = Pqueue.create ();
    fq = Pqueue.create ();
    recorder;
    faults;
    link_seq = Hashtbl.create 16;
    pending = Hashtbl.create 64;
    timers = Pqueue.create ();
    next_uid = 0;
    undelivered = 0;
    clock = 0;
  }

let emit t kind =
  match t.recorder with None -> () | Some r -> Dgr_obs.Recorder.emit r kind

let obs_of task =
  (Task.obs_kind task, match Task.exec_vertex task with Some v -> v | None -> -1)

let rto_cap = 1024

(* One logical transmission through the fault plane: data frames roll
   duplicate (two independent copies on a hit), then every copy rolls
   drop and extra delay. Acks roll drop and delay only — duplicating an
   ack is a no-op, and keeping it out of the stream keeps the dup
   counter equal to the number of Dup events. *)
let transmit t f ~now ~base frame =
  let data =
    match frame with Data { dst; task; _ } -> Some (dst, task) | Ack _ -> None
  in
  let copies =
    match data with
    | Some (dst, task) when Faults.duplicates_frame f ->
      let kind, vid = obs_of task in
      emit t (Dgr_obs.Event.Dup { kind; pe = dst; vid });
      2
    | Some _ | None -> 1
  in
  for _ = 1 to copies do
    if Faults.drops_frame f then (
      match data with
      | Some (dst, task) ->
        let kind, vid = obs_of task in
        emit t (Dgr_obs.Event.Drop { kind; pe = dst; vid })
      | None -> ())
    else begin
      let arrival = now + base + Faults.extra_delay f ~latency:base in
      Pqueue.add t.fq arrival frame
    end
  done

let send ?(src = -1) t ~arrival ~pe task =
  match t.faults with
  | None -> Pqueue.add t.q arrival (pe, task)
  | Some f ->
    let base = Int.max 1 (arrival - t.clock) in
    let fseq =
      match Hashtbl.find_opt t.link_seq (src, pe) with Some n -> n | None -> 0
    in
    Hashtbl.replace t.link_seq (src, pe) (fseq + 1);
    let p =
      {
        p_src = src;
        p_dst = pe;
        p_fseq = fseq;
        p_task = task;
        p_delay = base;
        p_uid = t.next_uid;
        p_arrival = arrival;
        p_attempts = 1;
        p_rto = (2 * base) + 2;
        p_delivered = false;
      }
    in
    t.next_uid <- t.next_uid + 1;
    Hashtbl.replace t.pending (src, pe, fseq) p;
    t.undelivered <- t.undelivered + 1;
    Pqueue.add t.timers (t.clock + p.p_rto) (src, pe, fseq);
    transmit t f ~now:t.clock ~base (Data { src; dst = pe; fseq; delay = base; task })

(* Delivery hands each due message to [push] as it pops — the engine's
   pools consume directly, with no intermediate list. The event stream is
   unchanged from the list-returning days: pops emit [Deliver] in pop
   order and [push] emits nothing, so interleaving push with pop leaves
   the trace bytes identical. *)
let deliver_into t ~now ~push =
  t.clock <- now;
  match t.faults with
  | None ->
    (* Fast path: the idealized channel is a single peek/pop loop with
       no frame bookkeeping, and the [Deliver] event record is only
       constructed when a recorder is attached. *)
    let continue = ref true in
    while !continue do
      match Pqueue.peek t.q with
      | Some (arrival, _) when arrival <= now -> (
        match Pqueue.pop t.q with
        | Some (_, (pe, task)) ->
          (match t.recorder with
          | None -> ()
          | Some r ->
            Dgr_obs.Recorder.emit r
              (Dgr_obs.Event.Deliver
                 {
                   kind = Task.obs_kind task;
                   pe;
                   vid = (match Task.exec_vertex task with Some v -> v | None -> -1);
                 }));
          push pe task
        | None -> continue := false)
      | Some _ | None -> continue := false
    done
  | Some f ->
    let rec drain () =
      match Pqueue.peek t.fq with
      | Some (arrival, _) when arrival <= now ->
        (match Pqueue.pop t.fq with
        | Some (_, Data { src; dst; fseq; delay; task }) ->
          let key = (src, dst, fseq) in
          (match Hashtbl.find_opt t.pending key with
          | Some p when not p.p_delivered ->
            p.p_delivered <- true;
            t.undelivered <- t.undelivered - 1;
            let kind, vid = obs_of task in
            emit t (Dgr_obs.Event.Deliver { kind; pe = dst; vid });
            push dst task
          | Some _ | None ->
            (* redelivery of a frame already seen (or since acked and
               forgotten): suppress — this is the exactly-once edge *)
            f.Faults.dup_suppressed <- f.Faults.dup_suppressed + 1);
          (* always ack, even duplicates: the previous ack may be lost *)
          transmit t f ~now ~base:delay (Ack { src; dst; fseq })
        | Some (_, Ack { src; dst; fseq }) -> Hashtbl.remove t.pending (src, dst, fseq)
        | None -> ());
        drain ()
      | Some _ | None -> ()
    in
    drain ();
    let rec service_timers () =
      match Pqueue.peek t.timers with
      | Some (at, _) when at <= now ->
        (match Pqueue.pop t.timers with
        | Some (_, key) -> (
          match Hashtbl.find_opt t.pending key with
          | None -> () (* acked or purged; timer lazily deleted *)
          | Some p ->
            p.p_attempts <- p.p_attempts + 1;
            f.Faults.retransmits <- f.Faults.retransmits + 1;
            let kind, vid = obs_of p.p_task in
            emit t
              (Dgr_obs.Event.Retransmit { kind; pe = p.p_dst; vid; attempt = p.p_attempts });
            transmit t f ~now ~base:p.p_delay
              (Data
                 {
                   src = p.p_src;
                   dst = p.p_dst;
                   fseq = p.p_fseq;
                   delay = p.p_delay;
                   task = p.p_task;
                 });
            p.p_rto <- Int.min (p.p_rto * 2) rto_cap;
            Pqueue.add t.timers (now + p.p_rto) key)
        | None -> ());
        service_timers ()
      | Some _ | None -> ()
    in
    service_timers ()

let deliver t ~now =
  let acc = ref [] in
  deliver_into t ~now ~push:(fun pe task -> acc := (pe, task) :: !acc);
  List.rev !acc

(* Undelivered sends in fault-free arrival order, send order among
   equals — deterministic regardless of hash-table layout. *)
let pending_sorted t =
  let undelivered =
    Hashtbl.fold (fun _ p acc -> if p.p_delivered then acc else p :: acc) t.pending []
  in
  List.sort
    (fun a b ->
      match compare a.p_arrival b.p_arrival with 0 -> compare a.p_uid b.p_uid | c -> c)
    undelivered

let in_flight t =
  match t.faults with
  | None -> List.map (fun (_, (_, task)) -> task) (Pqueue.to_sorted_list t.q)
  | Some _ -> List.map (fun p -> p.p_task) (pending_sorted t)

let iter_in_flight t f =
  match t.faults with
  | None -> Pqueue.iter (fun _ (_, task) -> f task) t.q
  | Some _ -> Hashtbl.iter (fun _ p -> if not p.p_delivered then f p.p_task) t.pending

let emit_purges t counts =
  List.iter
    (fun (pe, n) -> emit t (Dgr_obs.Event.Purge { pe; count = n }))
    (List.sort compare counts)

let counts_of_tbl tbl = Hashtbl.fold (fun pe n acc -> (pe, !n) :: acc) tbl []

let bump tbl pe =
  match Hashtbl.find_opt tbl pe with
  | Some n -> incr n
  | None -> Hashtbl.add tbl pe (ref 1)

let purge t pred =
  match t.faults with
  | None ->
    let per_pe = Hashtbl.create 8 in
    let before = Pqueue.length t.q in
    Pqueue.filter_in_place
      (fun _ (pe, task) ->
        if pred task then begin
          bump per_pe pe;
          false
        end
        else true)
      t.q;
    let n = before - Pqueue.length t.q in
    if n > 0 then emit_purges t (counts_of_tbl per_pe);
    n
  | Some _ ->
    let victims =
      Hashtbl.fold
        (fun key p acc ->
          if (not p.p_delivered) && pred p.p_task then (key, p) :: acc else acc)
        t.pending []
    in
    let keys = Hashtbl.create 8 in
    let per_pe = Hashtbl.create 8 in
    List.iter
      (fun (key, p) ->
        Hashtbl.remove t.pending key;
        Hashtbl.replace keys key ();
        bump per_pe p.p_dst;
        t.undelivered <- t.undelivered - 1)
      victims;
    (* discard queued copies too, so they are neither re-acked nor
       miscounted as duplicates when they arrive *)
    if victims <> [] then
      Pqueue.filter_in_place
        (fun _ frame ->
          match frame with
          | Data { src; dst; fseq; _ } -> not (Hashtbl.mem keys (src, dst, fseq))
          | Ack _ -> true)
        t.fq;
    let n = List.length victims in
    if n > 0 then emit_purges t (counts_of_tbl per_pe);
    n

let size t =
  match t.faults with None -> Pqueue.length t.q | Some _ -> t.undelivered

let entries t =
  match t.faults with
  | None -> List.map (fun (arr, (_, task)) -> (arr, task)) (Pqueue.to_sorted_list t.q)
  | Some _ -> List.map (fun p -> (p.p_arrival, p.p_task)) (pending_sorted t)

(* Per-PE outgoing buffer for the sharded engine. A PE executing on a
   worker domain never touches the shared queue directly: it posts into
   its private mailbox, and the engine flushes all mailboxes into the
   network at the step barrier in ascending PE order. Flushing preserves
   each mailbox's post order, and the arrival-keyed queue is FIFO among
   equal arrivals, so the merged delivery order equals the serial
   engine's — independent of which domain ran which PE when. *)
module Mailbox = struct
  type entry = { e_src : int; e_arrival : int; e_pe : int; e_task : Task.t }

  type mb = entry Vec.t

  let create () : mb = Vec.create ()

  let post (mb : mb) ~src ~arrival ~pe task =
    Vec.push mb { e_src = src; e_arrival = arrival; e_pe = pe; e_task = task }

  let length (mb : mb) = Vec.length mb

  let flush (mb : mb) net =
    Vec.iter
      (fun e -> send ~src:e.e_src net ~arrival:e.e_arrival ~pe:e.e_pe e.e_task)
      mb;
    Vec.clear mb

  type t = mb
end
