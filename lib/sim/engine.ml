open Dgr_util
open Dgr_graph
open Dgr_task
open Task
module Marker = Dgr_core.Marker
module Mutator = Dgr_core.Mutator
module Cycle = Dgr_core.Cycle
module Run = Dgr_core.Run
module Flood = Dgr_core.Flood
module Invariants = Dgr_core.Invariants
module Reducer = Dgr_reduction.Reducer
module Refcount = Dgr_baseline.Refcount
module Stw = Dgr_baseline.Stw

type gc_mode =
  | No_gc
  | Concurrent of { deadlock_every : int; idle_gap : int }
  | Stop_the_world of { every : int }
  | Refcount

module Config = struct
  type machine = {
    num_pes : int;
    tasks_per_step : int;
    marking_per_step : int;
    pool_policy : Pool.policy;
    speculate_if : bool;
    seed : int;
    domains : int;
  }

  type gc = {
    mode : gc_mode;
    heap_size : int option;
    gc_work_factor : int;
    marking : Cycle.scheme;
    recover_deadlock : bool;
  }

  type network = { latency : int; jitter : float; faults : Faults.spec; batch : bool }

  type t = { machine : machine; gc : gc; network : network }

  let make ?(num_pes = 4) ?(latency = 4) ?(tasks_per_step = 2) ?(marking_per_step = 8)
      ?(gc_work_factor = 8) ?(heap_size = Some 50_000) ?(pool_policy = Pool.Dynamic)
      ?(speculate_if = true) ?(gc = Concurrent { deadlock_every = 1; idle_gap = 50 })
      ?(marking = Cycle.Tree) ?(recover_deadlock = false) ?(jitter = 0.0) ?(seed = 0)
      ?(faults = Faults.none) ?(domains = 1) ?(batch = true) () =
    {
      machine =
        { num_pes; tasks_per_step; marking_per_step; pool_policy; speculate_if; seed; domains };
      gc = { mode = gc; heap_size; gc_work_factor; marking; recover_deadlock };
      network = { latency; jitter; faults; batch };
    }

  let default = make ()

  let num_pes t = t.machine.num_pes
  let latency t = t.network.latency
  let tasks_per_step t = t.machine.tasks_per_step
  let marking_per_step t = t.machine.marking_per_step
  let gc_work_factor t = t.gc.gc_work_factor
  let heap_size t = t.gc.heap_size
  let pool_policy t = t.machine.pool_policy
  let speculate_if t = t.machine.speculate_if
  let gc t = t.gc.mode
  let marking t = t.gc.marking
  let recover_deadlock t = t.gc.recover_deadlock
  let jitter t = t.network.jitter
  let seed t = t.machine.seed
  let faults t = t.network.faults
  let domains t = t.machine.domains
  let batch t = t.network.batch

  let with_num_pes v t = { t with machine = { t.machine with num_pes = v } }
  let with_latency v t = { t with network = { t.network with latency = v } }
  let with_tasks_per_step v t = { t with machine = { t.machine with tasks_per_step = v } }

  let with_marking_per_step v t =
    { t with machine = { t.machine with marking_per_step = v } }

  let with_gc_work_factor v t = { t with gc = { t.gc with gc_work_factor = v } }
  let with_heap_size v t = { t with gc = { t.gc with heap_size = v } }
  let with_pool_policy v t = { t with machine = { t.machine with pool_policy = v } }
  let with_speculate_if v t = { t with machine = { t.machine with speculate_if = v } }
  let with_gc v t = { t with gc = { t.gc with mode = v } }
  let with_marking v t = { t with gc = { t.gc with marking = v } }
  let with_recover_deadlock v t = { t with gc = { t.gc with recover_deadlock = v } }
  let with_jitter v t = { t with network = { t.network with jitter = v } }
  let with_seed v t = { t with machine = { t.machine with seed = v } }
  let with_faults v t = { t with network = { t.network with faults = v } }
  let with_domains v t = { t with machine = { t.machine with domains = v } }
  let with_batch v t = { t with network = { t.network with batch = v } }
end

type config = Config.t

(* Per-PE execution context for buffered steps. Everything a PE's budget
   touches during a buffered step lives here (or in graph/pool state only
   its owner mutates), so shards on different domains share no mutable
   state until the step barrier merges them in ascending PE order. *)
type pe_ctx = {
  cpe : int;
  crng : Rng.t;  (** scheduling stream [Rng.stream ~seed cpe] *)
  mbox : Network.Mailbox.mb;  (** outgoing sends, flushed at the barrier *)
  ctrl : Task.t Vec.t;  (** controller-addressed tasks, replayed at the barrier *)
  pred : Reducer.t;  (** private reducer: own counters/park list, shared graph *)
  pm : Metrics.t;  (** private counters, absorbed at the barrier *)
  sub : Dgr_obs.Recorder.t option;  (** private event buffer, drained at the barrier *)
  mutable clin : int;  (** lineage of the task this PE is executing; -1 outside *)
  mutable cdepth : int;  (** causal depth its children inherit *)
  cdone : int Vec.t;  (** tickets of executed tasks, closed at the barrier *)
  mutable cmark_ns : float;  (** profiler: this shard's marking-budget time *)
  mutable cred_ns : float;  (** profiler: this shard's reduction-budget time *)
  mutable cexec : (Task.t -> int -> unit) option;
      (** pre-bound [execute_one_buffered] — built on first use, reused by
          every budget drain so the inner loop allocates no closures *)
  ccoop : Mutator.coop_event Vec.t;
      (** cooperation events this PE's reductions deferred; replayed at
          the barrier in ascending PE order *)
  mutable cemit : (Task.mark -> unit) option;
      (** pre-bound buffered mark emit ([pe_send] of a [Marking]) — built
          on first use so the marking inner loop allocates no closures *)
}

(* The worker pool: [domains - 1] long-lived domains driven by a
   generation barrier. The main domain publishes a job and a new
   generation, runs shard 0 itself, then waits for every worker to check
   in. Workers are spawned lazily on the first parallel step (the OCaml
   runtime caps total domains) and joined by [dispose]. *)
type workers = {
  mutable doms : unit Domain.t array;
  mu : Mutex.t;
  cv : Condition.t;
  mutable job : (int -> unit) option;
  mutable gen : int;
  mutable done_count : int;
  mutable stop : bool;
}

type t = {
  cfg : config;
  (* Hot knobs, denormalized out of [cfg] so the step loop never chases
     three records per field. *)
  num_pes : int;
  latency : int;
  tasks_per_step : int;
  marking_per_step : int;
  gc_work_factor : int;
  jitter : float;
  gc_mode : gc_mode;
  domains : int;  (** shard count, clamped to [1, num_pes] *)
  g : Graph.t;
  pools : Pool.t array;
  net : Network.t;
  mut : Mutator.t;
  mutable red : Reducer.t;
  mutable cyc : Cycle.t option;
  rc : Refcount.t option;
  recorder : Dgr_obs.Recorder.t option;
  obs_on : bool;  (** [recorder <> None]; avoids building event records when off *)
  m : Metrics.t;
  lin : Dgr_obs.Lineage.t;  (** causal lineage tickets, one per pooled reduction *)
  prof : Profile.t;  (** wall-clock step-phase attribution *)
  mutable now : int;
  mutable current_pe : int;  (** PE whose task is executing; -1 = controller *)
  mutable current_lin : int;  (** lineage of the executing task; -1 = none *)
  mutable current_depth : int;  (** causal depth the executing task's sends carry *)
  mutable paused_until : int;
  mutable next_cycle_at : int;
  mutable next_stw_at : int;
  pe_rngs : Rng.t array;  (** per-PE scheduling streams, [Rng.stream ~seed pe] *)
  ctrl_rng : Rng.t;  (** the controller's stream, [Rng.stream ~seed (-1)] *)
  flt : Faults.t option;
  stall_until : int array;  (** per PE: first step it executes again *)
  (* Crash plane. [ckpts] is built lazily on the first step that can
     crash (so fault-free machines allocate nothing); [down_since] is -1
     for a PE that is up. All of it is serial state: any config with
     [crash > 0] keeps [buffered_ok] false via [flt], and the buffered
     path only ever {e reads} [down_since] (after an injected crash on an
     otherwise fault-free machine). *)
  mutable ckpts : Checkpoint.t array;  (** per-PE segment checkpoints *)
  down_until : int array;  (** per PE: first step it may recover *)
  down_since : int array;  (** per PE: step it crashed; -1 = up *)
  mutable crash_used : bool;
      (** crashes possible (spec or injection): run the crash tick *)
  mutable rc_freed_batch : Vid.Set.t;
      (** vertices RC reclaimed since the last batch purge *)
  mutable ctxs : pe_ctx array;
  mutable mboxes : Network.Mailbox.mb array;
      (** [ctxs]' mailboxes in PE order, for the sharded barrier flush *)
  mutable workers : workers option;
  (* Health watchdogs: window-based progress monitors, re-armed on any
     progress and fired at most once per stall episode (resp. window). *)
  mutable wd_mark_last : int;  (** [marking_executed] at last mark progress *)
  mutable wd_mark_since : int;  (** step of last mark progress *)
  mutable wd_mark_fired : bool;
  mutable wd_exec_last : int;  (** total executed at last progress *)
  mutable wd_exec_since : int;
  mutable wd_exec_fired : bool;
  mutable wd_retx_last : int;  (** [retransmits] at the last window boundary *)
  mutable wd_retx_at : int;  (** next retransmit-window boundary *)
  mutable emit_mark : Task.mark -> unit;
      (** [send] wrapped for the marker/flood spawn callbacks — allocated
          once so the marking inner loop builds no closures. *)
  mutable budget_pe : int;
      (** the PE whose serial budget is draining — read by [exec_cb] *)
  mutable exec_cb : (Task.t -> int -> unit) option;
      (** pre-bound [execute_one] over [budget_pe]; built on first use so
          the serial budget drains allocate no closures *)
  mutable mark_only : bool;
      (** buffered budgets drain marking only — set while the machine is
          paused for restructure but the next wave's marks may flow *)
  mutable coop_sink : Mutator.coop_event -> unit;
      (** routes a deferred cooperation event to the executing PE's
          context; installed on the mutator around buffered execution *)
}

(* Forward reference: restructure's sharded home passes ride the worker
   pool, whose machinery lives below [create]; engines bind [each_home]
   through this cell (assigned once, next to [run_parallel]). *)
let each_home_cell : (t -> (int -> unit) -> unit) ref = ref (fun _ _ -> ())

let throughput t = Int.max 1 (t.num_pes * t.tasks_per_step)

let obs t kind =
  match t.recorder with None -> () | Some r -> Dgr_obs.Recorder.emit r kind

(* Destination PE of a task, or [-1] for controller-addressed tasks.
   Unboxed (no option) — this runs once per send. *)
let pe_of t task =
  let v = Task.exec_vid task in
  if v < 0 then -1 else Vertex.pe (Graph.vertex t.g v)

(* The PE a mutation is charged to for the ownership checker: the
   domain-local executing PE during buffered steps (the engine never
   touches [current_pe] from a worker), else the serial [current_pe]. *)
let dls_pe : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

(* A PE's scheduling randomness is its own splitmix stream derived from
   the config seed, so the jitter draws a PE sees depend only on its own
   send history — not on how the other PEs' sends interleave, and not on
   how many domains the machine is sharded across. The controller (and
   deadlock-recovery responses, injections, …) draws from stream -1. *)
let rng_for t =
  if t.current_pe >= 0 && t.current_pe < Array.length t.pe_rngs then
    t.pe_rngs.(t.current_pe)
  else t.ctrl_rng

(* The flood handler of the phase in progress, if any — the source of
   truth for what epoch termination credits should speak. *)
let active_flood t =
  match t.cyc with
  | None -> None
  | Some c -> (
    let plane =
      match Cycle.phase c with
      | Cycle.Idle -> None
      | Cycle.Mark_tasks -> Some Plane.MT
      | Cycle.Mark_root -> Some Plane.MR
    in
    match plane with
    | None -> None
    | Some p -> (
      match Cycle.handler_for_plane c p with
      | Some (Cycle.Flood_run fl) -> Some fl
      | Some (Cycle.Tree_run _) | None -> None))

let delay_of t ~rng ~src task pe =
  if pe = src then 1
  else begin
    (* Marking messages are tiny and bounded (§6) and ride a fast
       path: if they paid full data latency, a mutator expanding a
       deep structure could outrun the marking wavefront forever and
       the cycle would never terminate. *)
    let base =
      match task with
      | Marking _ -> Int.max 1 (t.latency / 4)
      | Reduction _ -> Int.max 1 t.latency
    in
    (* Seeded delivery jitter: occasionally a message takes longer,
       reordering arrivals — the interleaving adversary for the full
       machine. Deterministic for a given config seed. *)
    if t.jitter > 0.0 && Rng.float rng 1.0 < t.jitter then
      base + 1 + Rng.int rng (Int.max 1 t.latency)
    else base
  end

(* Execute controller-addressed tasks immediately: the final response of
   the computation, and marking returns to the dummy rootpar. A mark
   whose epoch is not the handler's wave is debris from a superseded
   wave (a crash restart, or the previous cycle's tail still draining
   while this one marks): it is dropped here, at dispatch, so stale
   tasks never touch a plane or credit a counter. *)
let rec execute_marking t ~pe m =
  match t.cyc with
  | None -> ()
  | Some c -> (
    match Cycle.handler_for_plane c (Task.plane_of_mark m) with
    | Some (Cycle.Tree_run run) ->
      if Task.mark_ep m <> run.Run.wave then
        t.m.Metrics.stale_marks_dropped <- t.m.Metrics.stale_marks_dropped + 1
      else Marker.execute run ~pe ~emit:t.emit_mark m
    | Some (Cycle.Flood_run fl) ->
      if Task.mark_ep m <> fl.Flood.wave then
        t.m.Metrics.stale_marks_dropped <- t.m.Metrics.stale_marks_dropped + 1
      else Flood.execute fl ~pe ~emit:t.emit_mark m
    | None -> () (* stray task from a finished run: drop *))

and execute_at_controller t task =
  match task with
  | Reduction r -> Reducer.execute t.red r
  | Marking m -> execute_marking t ~pe:0 m

and send t task =
  let pe = pe_of t task in
  if pe < 0 then execute_at_controller t task
  else begin
    (if pe <> t.current_pe && t.current_pe >= 0 then
       t.m.Metrics.remote_messages <- t.m.Metrics.remote_messages + 1);
    let delay = delay_of t ~rng:(rng_for t) ~src:t.current_pe task pe in
    if pe = t.current_pe then t.m.Metrics.local_messages <- t.m.Metrics.local_messages + 1;
    if t.obs_on then
      obs t
        (Dgr_obs.Event.Send
           {
             kind = Task.obs_kind task;
             pe;
             vid = Task.exec_vid task;
             arrival = t.now + delay;
             remote = pe <> t.current_pe;
             lin = t.current_lin;
           });
    Network.send ~src:t.current_pe ~lin:t.current_lin ~depth:t.current_depth t.net
      ~arrival:(t.now + delay) ~pe task
  end

(* The buffered counterpart of [send], used while PE budgets run inside a
   buffered step (possibly on a worker domain): controller tasks are
   deferred to the barrier, network sends are posted to the PE's private
   mailbox, and all bookkeeping lands in the context — nothing shared is
   touched. The delay computation and jitter stream are exactly [send]'s,
   so a PE's arrival schedule is identical whichever path carried it. *)
let pe_send t ctx task =
  let pe = pe_of t task in
  if pe < 0 then Vec.push ctx.ctrl task
  else begin
    (if pe <> ctx.cpe then
       ctx.pm.Metrics.remote_messages <- ctx.pm.Metrics.remote_messages + 1);
    let delay = delay_of t ~rng:ctx.crng ~src:ctx.cpe task pe in
    if pe = ctx.cpe then ctx.pm.Metrics.local_messages <- ctx.pm.Metrics.local_messages + 1;
    (match ctx.sub with
    | None -> ()
    | Some r ->
      Dgr_obs.Recorder.emit r
        (Dgr_obs.Event.Send
           {
             kind = Task.obs_kind task;
             pe;
             vid = Task.exec_vid task;
             arrival = t.now + delay;
             remote = pe <> ctx.cpe;
             lin = ctx.clin;
           }));
    Network.Mailbox.post ctx.mbox ~lin:ctx.clin ~depth:ctx.cdepth ~src:ctx.cpe
      ~arrival:(t.now + delay) ~pe task
  end

let purge_everywhere t pred =
  Array.fold_left (fun acc pool -> acc + Pool.purge pool pred) 0 t.pools
  + Network.purge t.net pred
  + Reducer.purge_parked t.red (fun r -> pred (Reduction r))

let purge_for_baseline t pred =
  let n = purge_everywhere t pred in
  t.m.Metrics.tasks_purged <- t.m.Metrics.tasks_purged + n;
  n

let create ?recorder ?(config = Config.default) g templates =
  (match config.Config.gc.Config.heap_size with
  | Some c -> Graph.set_capacity g (Some (Int.max c (Graph.vertex_count g)))
  | None -> Graph.set_capacity g None);
  let num_pes = Config.num_pes config in
  (* Hand the graph to the PEs: per-home free lists and striped fresh
     vids, so buffered allocation never shares a structure across PEs. *)
  if not (Graph.partitioned g) then Graph.partition g ~pes:num_pes;
  let mut = Mutator.create ?recorder ~spawn:(fun _ -> ()) g in
  let speculate_if = Config.speculate_if config in
  let red =
    Reducer.create ~speculate_if ?recorder ~graph:g ~mut ~templates ~send:(fun _ -> ()) ()
  in
  let rc =
    match Config.gc config with
    | Refcount -> Some (Refcount.create g)
    | No_gc | Concurrent _ | Stop_the_world _ -> None
  in
  let flt =
    let faults = Config.faults config in
    if Faults.active faults then Some (Faults.create faults) else None
  in
  let seed = Config.seed config in
  (* One ticket store for the whole machine. Tickets are opened inside
     [Network.send] — always on the main domain (inline sends, or the
     barrier mailbox flush) — so slot allocation is serial and its order
     a pure function of machine state, independent of [domains]. *)
  let lineage = Dgr_obs.Lineage.create () in
  let t =
    {
      cfg = config;
      num_pes;
      latency = Config.latency config;
      tasks_per_step = Config.tasks_per_step config;
      marking_per_step = Config.marking_per_step config;
      gc_work_factor = Config.gc_work_factor config;
      jitter = Config.jitter config;
      gc_mode = Config.gc config;
      domains = Int.max 1 (Int.min (Config.domains config) num_pes);
      g;
      pools =
        Array.init num_pes (fun pe ->
            Pool.create ?recorder ~lineage ~pe (Config.pool_policy config) g);
      net = Network.create ?recorder ~lineage ?faults:flt ~batch:(Config.batch config) ();
      mut;
      red;
      cyc = None;
      rc;
      recorder;
      obs_on = recorder <> None;
      m = Metrics.create ();
      lin = lineage;
      prof = Profile.create ();
      now = 0;
      current_pe = -1;
      current_lin = -1;
      current_depth = 0;
      paused_until = 0;
      next_cycle_at = 0;
      next_stw_at = (match Config.gc config with Stop_the_world { every } -> every | _ -> 0);
      pe_rngs = Array.init num_pes (fun pe -> Rng.stream ~seed pe);
      ctrl_rng = Rng.stream ~seed (-1);
      flt;
      stall_until = Array.make (Int.max 1 num_pes) 0;
      ckpts = [||];
      down_until = Array.make (Int.max 1 num_pes) 0;
      down_since = Array.make (Int.max 1 num_pes) (-1);
      crash_used = (Config.faults config).Faults.crash > 0.0;
      rc_freed_batch = Vid.Set.empty;
      ctxs = [||];
      mboxes = [||];
      workers = None;
      wd_mark_last = 0;
      wd_mark_since = 0;
      wd_mark_fired = false;
      wd_exec_last = 0;
      wd_exec_since = 0;
      wd_exec_fired = false;
      wd_retx_last = 0;
      wd_retx_at = 64;
      emit_mark = ignore;
      budget_pe = -1;
      exec_cb = None;
      mark_only = false;
      coop_sink = ignore;
    }
  in
  t.emit_mark <- (fun mark -> send t (Marking mark));
  mut.Mutator.spawn <- t.emit_mark;
  mut.Mutator.coop_pe <- (fun () -> Int.max 0 t.current_pe);
  (* A mark the transport coalesced away still owes its parent a return
     credit (tree) or an executed count (flood): synthesize it here, as
     if the absorbed twin had executed and immediately returned. The
     surviving twin keeps the wave's progress honest — a subtree is
     never considered marked before a mark actually traverses it.
     Coalescing happens wherever the physical send does — inline on the
     serial path, at the barrier mailbox flush on buffered steps — and
     both are fixed, domain-count-free orders. Two marks can only
     coalesce when every field matches, epoch included; a stale pair
     still coalesces in the network, but owes its dead wave nothing the
     dispatch-time epoch drop won't discard, so only current-wave marks
     synthesize credit here. *)
  Network.set_on_coalesce t.net (fun ~pe mark ->
      match t.cyc with
      | None -> ()
      | Some c -> (
        match Cycle.handler_for_plane c (Task.plane_of_mark mark) with
        | Some (Cycle.Tree_run run) -> (
          match mark with
          | Mark1 { par; _ } | Mark2 { par; _ } | Mark3 { par; _ } ->
            if Task.mark_ep mark = run.Run.wave then
              send t
                (Marking
                   (Return
                      { plane = Task.plane_of_mark mark; par; ep = Task.mark_ep mark }))
          | Return _ -> () (* returns never coalesce *))
        | Some (Cycle.Flood_run fl) ->
          if Task.mark_ep mark = fl.Flood.wave then Flood.count_coalesced fl ~pe
        | None -> () (* stray mark from a finished run: nothing owed *)));
  (* The reserve is per-home now that parking consults the executing
     vertex's partition ({!Graph.headroom_for}): a quarter of the heap
     globally, i.e. a quarter of each home's share. *)
  let speculation_reserve =
    match Config.heap_size config with Some c -> c / 4 / Int.max 1 num_pes | None -> 0
  in
  (* Rebuild the reducer with the real send, preserving the mutator. *)
  t.red <-
    Reducer.create ~speculate_if ~speculation_reserve ?recorder ~graph:g ~mut ~templates
      ~send:(fun task -> send t task)
      ();
  t.ctxs <-
    Array.init num_pes (fun pe ->
        let sub =
          match recorder with
          | None -> None
          | Some _ ->
            (* Sized for one step's events of one PE; [drain_into] raises
               if it ever wraps, so overflow is loud, not silent. *)
            Some (Dgr_obs.Recorder.create ~capacity:(1 lsl 14) ~sample_every:0 ~num_pes ())
        in
        let cell = ref None in
        let pred =
          Reducer.create ~speculate_if ~speculation_reserve ?recorder:sub ~graph:g ~mut
            ~templates
            ~send:(fun task ->
              match !cell with Some ctx -> pe_send t ctx task | None -> assert false)
            ()
        in
        let ctx =
          {
            cpe = pe;
            crng = t.pe_rngs.(pe);
            mbox = Network.Mailbox.create ();
            ctrl = Vec.create ();
            pred;
            pm = Metrics.create ();
            sub;
            clin = -1;
            cdepth = 0;
            cdone = Vec.create ();
            cmark_ns = 0.0;
            cred_ns = 0.0;
            cexec = None;
            ccoop = Vec.create ();
            cemit = None;
          }
        in
        cell := Some ctx;
        ctx);
  t.mboxes <- Array.map (fun ctx -> ctx.mbox) t.ctxs;
  t.coop_sink <-
    (fun ev ->
      let pe = Domain.DLS.get dls_pe in
      Vec.push t.ctxs.(if pe >= 0 then pe else 0).ccoop ev);
  (match rc with
  | Some rc ->
    mut.Mutator.on_connect <- Refcount.on_connect rc;
    mut.Mutator.on_disconnect <- Refcount.on_disconnect rc;
    (* A reclaimed slot may be recycled by the free list: tasks still
       addressing dead vertices are expunged in one batch per step (see
       [flush_rc_purge]) before any slot can be handed out again. *)
    Refcount.set_on_free rc (fun v -> t.rc_freed_batch <- Vid.Set.add v t.rc_freed_batch);
    if Graph.has_root g then Refcount.pin rc (Graph.root g)
  | None -> ());
  (match Config.gc config with
  | Concurrent { deadlock_every; idle_gap } ->
    let purge_tasks pred = purge_for_baseline t pred in
    (* taskroot_i from per-PE local knowledge: each PE enumerates the
       endpoint vids of the pending reduction tasks it can see — its own
       pool, parked expansions homed on it, and the in-flight frames
       bound for it. The transport's frames are bucketed by destination
       in one sweep on PE 0's turn (the cycle visits PEs in ascending
       order) and served per PE after; no global snapshot or set is
       assembled — cross-PE duplicates die on the vertex seed stamp. *)
    let net_scratch = Array.init num_pes (fun _ -> Vec.create ()) in
    let iter_pe_endpoints pe f =
      if pe = 0 then begin
        Array.iter Vec.clear net_scratch;
        Network.iter_in_flight_dst t.net (fun ~dst task ->
            match task with
            | Reduction r ->
              if dst >= 0 && dst < num_pes then
                Task.iter_reduction_endpoints (fun v -> Vec.push net_scratch.(dst) v) r
            | Marking _ -> ())
      end;
      Pool.iter_tasks t.pools.(pe) (fun task ->
          match task with
          | Reduction r -> Task.iter_reduction_endpoints f r
          | Marking _ -> ());
      Vec.iter f net_scratch.(pe);
      Reducer.iter_parked t.red (fun r ->
          let home = pe_of t (Reduction r) in
          if home = pe || (home < 0 && pe = 0) then Task.iter_reduction_endpoints f r)
    in
    let reprioritize () =
      Array.fold_left (fun acc pool -> acc + Pool.reprioritize pool) 0 t.pools
    in
    let env =
      {
        Cycle.spawn_mark = (fun mark -> send t (Marking mark));
        pes = num_pes;
        iter_pe_endpoints;
        purge_tasks;
        reprioritize;
        each_home = (fun f -> !each_home_cell t f);
        now = (fun () -> t.now);
      }
    in
    t.cyc <-
      Some
        (Cycle.create ~deadlock_every ~scheme:(Config.marking config)
           ~detection_window:(2 * Int.max 1 (Config.latency config))
           ?recorder g mut env);
    (* Termination credits (flood scheme): every physical transmission
       samples the sending PE's counters via [credit_of]; arriving
       credits — piggybacked or standalone heartbeats — flow into the
       cycle's detector, which discards wrong-epoch noise itself. *)
    Network.set_credit_of t.net (fun pe ->
        match active_flood t with
        | Some fl when pe >= 0 && pe < num_pes ->
          let sent, executed = Flood.credit fl ~pe in
          Some (fl.Flood.wave, sent, executed)
        | _ -> None);
    Network.set_on_credit t.net (fun ~pe ~epoch ~sent ~executed ->
        match t.cyc with
        | Some c -> Cycle.learn_credit c ~pe ~epoch ~sent ~executed
        | None -> ());
    t.next_cycle_at <- idle_gap
  | No_gc | Stop_the_world _ | Refcount -> ());
  t

let config t = t.cfg

let recorder t = t.recorder

let graph t = t.g

let reducer t = t.red

let mutator t = t.mut

let cycle t = t.cyc

let refcount t = t.rc

let metrics t = t.m

let lineage t = t.lin

let profile t = t.prof

let faults t = t.flt

let now t = t.now

let enable_ownership_checks t =
  let current_pe () =
    let d = Domain.DLS.get dls_pe in
    if d >= 0 then d else t.current_pe
  in
  t.mut.Mutator.guard <- (fun v -> Invariants.ownership_guard t.g ~current_pe v)

(* Injection mints a fresh lineage id: every task the machine executes on
   behalf of this one — transitively, through every send — carries it. *)
let inject t task =
  t.current_pe <- -1;
  t.current_lin <- Dgr_obs.Lineage.new_lineage t.lin ~now:t.now;
  t.current_depth <- 0;
  send t task;
  t.current_lin <- -1

let inject_root_demand t = inject t (Reducer.initial_task t.red)

let pending_tasks t =
  let pooled =
    Array.fold_left (fun acc pool -> List.rev_append (Pool.tasks pool) acc) [] t.pools
  in
  List.map (fun r -> Reduction r) (Reducer.parked t.red)
  @ List.rev_append (Network.in_flight t.net) pooled

let locate_task t pred =
  let acc = ref [] in
  Array.iteri
    (fun pe pool ->
      List.iter
        (fun task ->
          if pred task then
            acc := Printf.sprintf "pool[pe=%d] %s" pe (Task.to_string task) :: !acc)
        (Pool.tasks pool))
    t.pools;
  List.iter
    (fun task ->
      if pred task then acc := Printf.sprintf "network %s" (Task.to_string task) :: !acc)
    (Network.in_flight t.net);
  !acc

let pending_reduction_tasks t =
  List.filter_map (function Reduction r -> Some r | Marking _ -> None) (pending_tasks t)

let quiescent t =
  Array.for_all Pool.is_empty t.pools
  && Network.size t.net = 0
  && Reducer.parked_count t.red = 0
  && match t.cyc with None -> true | Some c -> Cycle.phase c = Cycle.Idle

(* Batch-expunge tasks addressing RC-reclaimed vertices; must run before
   any allocation can recycle the slots, i.e. before task execution. *)
let flush_rc_purge t =
  if not (Vid.Set.is_empty t.rc_freed_batch) then begin
    let dead = t.rc_freed_batch in
    t.rc_freed_batch <- Vid.Set.empty;
    ignore
      (purge_for_baseline t (fun task ->
           match task with
           | Reduction r ->
             Task.reduction_endpoint_exists (fun v -> Vid.Set.mem v dead) r
           | Marking _ -> false))
  end

(* Decompose a ticketed task's latency at the moment it executes: network
   transit (send → fault-free arrival), retransmit delay (arrival →
   actual delivery), queue wait (delivery → execution) and end-to-end
   (send → execution, counting the execution step itself). *)
let note_latency m l stamp ~now =
  let sent = Dgr_obs.Lineage.sent_of l stamp in
  let arrival = Dgr_obs.Lineage.arrival_of l stamp in
  let delivered = Dgr_obs.Lineage.delivered_of l stamp in
  Dgr_obs.Hist.add m.Metrics.lat_net (arrival - sent);
  Dgr_obs.Hist.add m.Metrics.lat_retx (delivered - arrival);
  Dgr_obs.Hist.add m.Metrics.lat_queue (now - delivered);
  Dgr_obs.Hist.add m.Metrics.lat_e2e (now - sent + 1)

let execute_one t pe task stamp =
  t.current_pe <- pe;
  (* If the previous task's RC cascade reclaimed vertices, expunge tasks
     addressing them before this task can allocate (and recycle) a slot. *)
  flush_rc_purge t;
  if stamp >= 0 then begin
    note_latency t.m t.lin stamp ~now:t.now;
    t.current_lin <- Dgr_obs.Lineage.lin_of t.lin stamp;
    t.current_depth <- Dgr_obs.Lineage.depth_of t.lin stamp + 1
  end
  else begin
    t.current_lin <- -1;
    t.current_depth <- 0
  end;
  if t.obs_on then
    obs t
      (Dgr_obs.Event.Execute
         {
           kind = Task.obs_kind task;
           pe;
           vid = Task.exec_vid task;
           lin = t.current_lin;
         });
  (match task with
  | Reduction r ->
    t.m.Metrics.reduction_executed <- t.m.Metrics.reduction_executed + 1;
    Reducer.execute t.red r
  | Marking mark ->
    t.m.Metrics.marking_executed <- t.m.Metrics.marking_executed + 1;
    execute_marking t ~pe mark);
  if stamp >= 0 then Dgr_obs.Lineage.close t.lin stamp ~now:t.now;
  t.current_pe <- -1;
  t.current_lin <- -1;
  t.current_depth <- 0

(* Buffered marking dispatch. Everything a mark handler touches is
   either owned by the executing PE (the target vertex's plane state —
   marks are delivered to the vertex's home) or a per-PE counter slot
   (run/flood tallies), so marking shards exactly like reduction. Emits
   ride the PE's mailbox; returns to the dummy rootpar are
   controller-addressed and replay serially at the barrier. The handler
   table itself ([Cycle.handler_for_plane]) only changes at serial
   points, published to workers by the step barrier. *)
let cemit_for t ctx =
  match ctx.cemit with
  | Some f -> f
  | None ->
    let f mark = pe_send t ctx (Marking mark) in
    ctx.cemit <- Some f;
    f

let execute_marking_buffered t ctx m =
  match t.cyc with
  | None -> ()
  | Some c -> (
    match Cycle.handler_for_plane c (Task.plane_of_mark m) with
    | Some (Cycle.Tree_run run) ->
      if Task.mark_ep m <> run.Run.wave then
        ctx.pm.Metrics.stale_marks_dropped <- ctx.pm.Metrics.stale_marks_dropped + 1
      else Marker.execute run ~pe:ctx.cpe ~emit:(cemit_for t ctx) m
    | Some (Cycle.Flood_run fl) ->
      if Task.mark_ep m <> fl.Flood.wave then
        ctx.pm.Metrics.stale_marks_dropped <- ctx.pm.Metrics.stale_marks_dropped + 1
      else Flood.execute fl ~pe:ctx.cpe ~emit:(cemit_for t ctx) m
    | None -> () (* stray task from a finished run: drop *))

(* The buffered counterpart of [execute_one]: no RC purge (buffered steps
   require [rc = None]). Latency lands in the context's private sink
   (histogram absorption is associative, so the merged totals match a
   serial execution); ticket closes are deferred to the barrier, where
   they run in ascending PE order — again a fixed, domain-count-free
   order. Ticket reads are safe off the main domain: between barriers the
   store is never mutated. *)
let execute_one_buffered t ctx task stamp =
  if stamp >= 0 then begin
    note_latency ctx.pm t.lin stamp ~now:t.now;
    ctx.clin <- Dgr_obs.Lineage.lin_of t.lin stamp;
    ctx.cdepth <- Dgr_obs.Lineage.depth_of t.lin stamp + 1
  end
  else begin
    ctx.clin <- -1;
    ctx.cdepth <- 0
  end;
  (match ctx.sub with
  | None -> ()
  | Some r ->
    Dgr_obs.Recorder.emit r
      (Dgr_obs.Event.Execute
         {
           kind = Task.obs_kind task;
           pe = ctx.cpe;
           vid = Task.exec_vid task;
           lin = ctx.clin;
         }));
  (match task with
  | Reduction r ->
    ctx.pm.Metrics.reduction_executed <- ctx.pm.Metrics.reduction_executed + 1;
    Reducer.execute ctx.pred r
  | Marking m ->
    ctx.pm.Metrics.marking_executed <- ctx.pm.Metrics.marking_executed + 1;
    execute_marking_buffered t ctx m);
  if stamp >= 0 then Vec.push ctx.cdone stamp;
  ctx.clin <- -1;
  ctx.cdepth <- 0

(* GC work (tracing a vertex, sweeping a slot) is much lighter than
   executing a task; [gc_work_factor] work units fit in one task slot. *)
let pause t ~reason work =
  let per_step = throughput t * Int.max 1 t.gc_work_factor in
  let steps = (work + per_step - 1) / per_step in
  Metrics.record_pause t.m steps;
  obs t (Dgr_obs.Event.Pause { steps; reason });
  t.paused_until <- Int.max t.paused_until (t.now + steps)

(* ⊥-recovery (the paper's footnote 5): a deadlocked region never harms
   anyone, but in a multi-user machine its requesters should not wait
   forever. Rewrite each deadlocked operator vertex to an error value and
   answer its requesters — the error then propagates through strict
   operators like any other value. Vertices that already hold values are
   left alone (they are in the formal DL set only because their consumer
   is stuck). *)
let recover_deadlocks t report =
  List.iter
    (fun v ->
      let vx = Graph.vertex t.g v in
      if (not (Vertex.free vx)) && not (Label.is_whnf (Vertex.label vx)) then begin
        Vertex.set_label vx @@ Label.Err "deadlock";
        t.m.Metrics.deadlocks_recovered <- t.m.Metrics.deadlocks_recovered + 1;
        let entries = (Vertex.requested vx) in
        List.iter
          (fun (e : Vertex.request_entry) ->
            send t
              (Reduction
                 (Respond
                    {
                      src = v;
                      dst = e.Vertex.who;
                      value = Label.V_err "deadlock";
                      key = e.Vertex.key;
                      demand = e.Vertex.demand;
                    })))
          entries;
        Vertex.clear_requesters vx;
        List.iter (fun c -> Mutator.delete_reference t.mut ~a:v ~b:c) (Vertex.args vx);
        Vertex.clear_reduction_state vx
      end)
    report.Dgr_core.Restructure.deadlocked

(* Memory pressure: collect early when the allocatable reserve runs low
   (an eighth of the heap, at least 64 slots). *)
let under_pressure t =
  match Graph.capacity t.g with
  | None -> false
  | Some c -> Graph.headroom t.g < Int.max 64 (c / 8)

(* Re-inject allocation-stalled expansions once the free list has a
   chance of supplying them. *)
let unpark t =
  match Reducer.drain_parked t.red with
  | [] -> ()
  | tasks ->
    List.iter
      (fun r ->
        let pe = pe_of t (Reduction r) in
        if pe >= 0 then Network.send ~src:(-1) t.net ~arrival:(t.now + 1) ~pe (Reduction r))
      tasks

let gc_control t =
  match t.gc_mode with
  | No_gc | Refcount ->
    (* Re-inject stalled expansions only when the free list has actually
       recovered; under persistent pressure they stay parked (and a
       collector-less machine simply quiesces). *)
    if t.now land 63 = 0 && not (under_pressure t) then unpark t
  | Stop_the_world { every } ->
    (* Memory pressure pulls the schedule in, but never below a quarter
       of the period — a full collection per step would thrash. *)
    if
      every > 0
      && (t.now >= t.next_stw_at
         || (under_pressure t && t.now >= t.next_stw_at - (3 * every / 4)))
    then begin
      if t.now < t.next_stw_at then obs t (Dgr_obs.Event.Heap_pressure { headroom = Graph.headroom t.g });
      let report = Stw.collect t.g ~purge_tasks:(purge_for_baseline t) in
      t.m.Metrics.stw_collections <- t.m.Metrics.stw_collections + 1;
      pause t ~reason:Dgr_obs.Event.Stw_pause report.Stw.work;
      t.next_stw_at <- Int.max t.paused_until t.now + every;
      unpark t
    end
    else if t.now land 63 = 0 && not (under_pressure t) then unpark t
  | Concurrent { idle_gap; _ } -> (
    match t.cyc with
    | None -> ()
    | Some c -> (
      (match Cycle.poll c with
      | Some report ->
        t.m.Metrics.cycles_completed <- t.m.Metrics.cycles_completed + 1;
        (* Restructure is the concurrent scheme's only stop: a sweep over
           the live vertices plus the slots being reclaimed. *)
        pause t ~reason:Dgr_obs.Event.Restructure_pause
          (Graph.live_count t.g + List.length report.Dgr_core.Restructure.garbage);
        if Config.recover_deadlock t.cfg then recover_deadlocks t report;
        (* Decentralized initiation: the next cycle's mark wave may open
           while this cycle's restructure pause is still draining — the
           wave is epoch-tagged and the mutator is the only thing the
           pause actually stops. *)
        t.next_cycle_at <- t.now + idle_gap;
        unpark t
      | None -> if t.now land 63 = 0 && not (under_pressure t) then unpark t);
      if Cycle.phase c = Cycle.Idle && (t.now >= t.next_cycle_at || under_pressure t) then begin
        if t.now < t.next_cycle_at then
          obs t (Dgr_obs.Event.Heap_pressure { headroom = Graph.headroom t.g });
        Cycle.start_cycle c
      end))

(* One PE's execution budget for one step: the marking budget first, then
   the reduction budget (which lends idle slots to marking — see
   [Pool.pop]). Plain loops: this is the innermost simulator code. *)
let execute_budgets t pe pool =
  let t0 = Profile.now () in
  let f =
    match t.exec_cb with
    | Some f -> f
    | None ->
      let f task stamp = execute_one t t.budget_pe task stamp in
      t.exec_cb <- Some f;
      f
  in
  t.budget_pe <- pe;
  Pool.drain_marking pool ~budget:t.marking_per_step f;
  let t1 = Profile.now () in
  t.prof.Profile.mark_ns <- t.prof.Profile.mark_ns +. (t1 -. t0);
  Pool.drain pool ~budget:t.tasks_per_step f;
  t.prof.Profile.red_ns <- t.prof.Profile.red_ns +. (Profile.now () -. t1)

let execute_budgets_buffered t ctx pool =
  let t0 = Profile.now () in
  let f =
    match ctx.cexec with
    | Some f -> f
    | None ->
      let f task stamp = execute_one_buffered t ctx task stamp in
      ctx.cexec <- Some f;
      f
  in
  Pool.drain_marking pool ~budget:t.marking_per_step f;
  let t1 = Profile.now () in
  ctx.cmark_ns <- ctx.cmark_ns +. (t1 -. t0);
  (* During a restructure pause only the marking budget runs: the
     mutator is stopped, the next wave's marks are not. *)
  if not t.mark_only then begin
    Pool.drain pool ~budget:t.tasks_per_step f;
    ctx.cred_ns <- ctx.cred_ns +. (Profile.now () -. t1)
  end

(* A step is {e buffered} when nothing serial-only is in play: no
   refcounting (immediate purges and free-slot recycling) and no fault
   plane (stalls and the reliable-delivery clock). An active marking
   cycle no longer forces the serial path: mark handlers shard by the
   target vertex's home, run/flood tallies are per-PE slots, and the
   mutator's cooperation bodies are deferred to the barrier
   ({!Mutator.set_defer}) — so the wave executes buffered alongside
   reduction. The predicate depends only on machine state — never on
   [domains] — so whether a step is buffered is identical at every shard
   count; [domains] only decides whether the buffered budgets run on
   worker domains or inline. *)
let buffered_ok t = t.rc = None && t.flt = None

(* Shard [d] owns the PE range [d*n/domains, (d+1)*n/domains). *)
let run_shard t d =
  let lo = d * t.num_pes / t.domains and hi = (d + 1) * t.num_pes / t.domains in
  for pe = lo to hi - 1 do
    (* The down check only ever fires after an injected crash on an
       otherwise fault-free machine (any crash {e rate} forces the serial
       path via [flt]); it reads serial state the barrier published. *)
    if t.down_since.(pe) < 0 then begin
      Domain.DLS.set dls_pe pe;
      execute_budgets_buffered t t.ctxs.(pe) t.pools.(pe)
    end
  done;
  Domain.DLS.set dls_pe (-1)

let spawn_workers t =
  let w =
    {
      doms = [||];
      mu = Mutex.create ();
      cv = Condition.create ();
      job = None;
      gen = 0;
      done_count = 0;
      stop = false;
    }
  in
  let worker i () =
    let my_gen = ref 0 in
    let continue = ref true in
    while !continue do
      Mutex.lock w.mu;
      while (not w.stop) && w.gen = !my_gen do
        Condition.wait w.cv w.mu
      done;
      if w.stop then begin
        Mutex.unlock w.mu;
        continue := false
      end
      else begin
        let g = w.gen and job = w.job in
        Mutex.unlock w.mu;
        (match job with Some f -> f (i + 1) | None -> ());
        my_gen := g;
        Mutex.lock w.mu;
        w.done_count <- w.done_count + 1;
        Condition.broadcast w.cv;
        Mutex.unlock w.mu
      end
    done
  in
  w.doms <- Array.init (t.domains - 1) (fun i -> Domain.spawn (worker i));
  w

(* One parallel phase: publish [job], run shard 0 on the main domain,
   wait for the workers. The mutex pair on each side doubles as the
   memory barrier that publishes every shard's writes to the merge.
   [job d] must touch only shard [d]'s state — the execution budgets and
   restructure's home passes both qualify. *)
let run_parallel t job =
  let w =
    match t.workers with
    | Some w -> w
    | None ->
      let w = spawn_workers t in
      t.workers <- Some w;
      w
  in
  Mutex.lock w.mu;
  w.job <- Some job;
  w.gen <- w.gen + 1;
  w.done_count <- 0;
  Condition.broadcast w.cv;
  Mutex.unlock w.mu;
  job 0;
  Mutex.lock w.mu;
  while w.done_count < Array.length w.doms do
    Condition.wait w.cv w.mu
  done;
  w.job <- None;
  Mutex.unlock w.mu

(* Restructure's sharded passes: run [f] over every home PE, sharded
   across the domains exactly like the execution budgets. The span is
   attributed to the profiler's parallel(izable) restructure bucket. *)
let each_home_run t f =
  let r0 = Profile.now () in
  let job d =
    let lo = d * t.num_pes / t.domains and hi = (d + 1) * t.num_pes / t.domains in
    for pe = lo to hi - 1 do
      f pe
    done
  in
  if t.domains > 1 then run_parallel t job else job 0;
  t.prof.Profile.restr_ns <- t.prof.Profile.restr_ns +. (Profile.now () -. r0)

let () = each_home_cell := each_home_run

(* The barrier mailbox flush, destination-sharded (see the
   [flush_shard_*] trio in {!Network}): grouping tasks into frames is
   per-destination work, so it runs on the worker pool sharded by the
   same PE ranges as the execution budgets, and only the globally
   ordered finalization (uids, tickets, coalesce callbacks, counters)
   stays serial. At [domains = 1] the same two passes run inline — the
   code path, and therefore the merged network state, is identical at
   every domain count. Grouping is also kept inline on hosts without a
   second core ([Domain.recommended_domain_count]): the shard jobs are
   data-disjoint either way, so where they run never shows in the
   bytes, and an oversubscribed host skips a worker-pool round-trip
   per step. The grouping span counts as parallelizable in the
   profiler ([pflush_ns]); the finalization as serial. *)
let flush_on_workers = Domain.recommended_domain_count () > 1

let flush_mailboxes t =
  let f0 = Profile.now () in
  if Network.flush_shard_plan t.net t.mboxes then begin
    let job d =
      let lo = d * t.num_pes / t.domains and hi = (d + 1) * t.num_pes / t.domains in
      Network.flush_shard_group t.net t.mboxes ~lo ~hi
    in
    if t.domains > 1 && flush_on_workers then run_parallel t job
    else
      for d = 0 to t.domains - 1 do
        job d
      done;
    let f1 = Profile.now () in
    t.prof.Profile.pflush_ns <- t.prof.Profile.pflush_ns +. (f1 -. f0);
    Network.flush_shard_finalize t.net t.mboxes;
    t.prof.Profile.flush_ns <- t.prof.Profile.flush_ns +. (Profile.now () -. f1)
  end
  else begin
    (* Staged frames already forming (a send outside the step loop):
       only the serial flush merges into those correctly. *)
    Array.iter (fun ctx -> Network.Mailbox.flush ctx.mbox t.net) t.ctxs;
    t.prof.Profile.flush_ns <- t.prof.Profile.flush_ns +. (Profile.now () -. f0)
  end

let dispose t =
  match t.workers with
  | None -> ()
  | Some w ->
    Mutex.lock w.mu;
    w.stop <- true;
    Condition.broadcast w.cv;
    Mutex.unlock w.mu;
    Array.iter Domain.join w.doms;
    t.workers <- None

(* The step barrier: merge every context back into the shared machine, in
   ascending PE order throughout, so the merged state is a pure function
   of the per-PE buffers — independent of domain count and scheduling.
   Order within the merge: events first (so traces read
   execute-then-control), then counters, then network sends (the queue is
   FIFO-stable among equal arrivals, so PE-ordered flushing reproduces
   what a serial PE-ordered execution would have enqueued), then the
   deferred cooperation events (whose mark spawns are charged to the
   deferring PE and draw its jitter stream), then the deferred controller
   tasks (whose own sends go straight to the network, after every
   buffered send — again a fixed order). *)
let merge_buffered t =
  t.current_pe <- -1;
  Mutator.set_defer t.mut None;
  let m0 = Profile.now () in
  (match t.recorder with
  | None -> ()
  | Some r ->
    Array.iter
      (fun ctx ->
        match ctx.sub with
        | Some s -> Dgr_obs.Recorder.absorb_chunks ~src:s ~dst:r
        | None -> ())
      t.ctxs);
  let m1 = Profile.now () in
  t.prof.Profile.drain_ns <- t.prof.Profile.drain_ns +. (m1 -. m0);
  Array.iter
    (fun ctx ->
      Reducer.absorb t.red ctx.pred;
      Metrics.absorb t.m ctx.pm;
      t.prof.Profile.mark_ns <- t.prof.Profile.mark_ns +. ctx.cmark_ns;
      ctx.cmark_ns <- 0.0;
      t.prof.Profile.red_ns <- t.prof.Profile.red_ns +. ctx.cred_ns;
      ctx.cred_ns <- 0.0)
    t.ctxs;
  let m2 = Profile.now () in
  t.prof.Profile.absorb_ns <- t.prof.Profile.absorb_ns +. (m2 -. m1);
  (* Close the executed tasks' tickets before flushing the mailboxes: the
     freed slots are recycled by the flush's opens, in ascending PE order
     both times, so slot allocation stays a pure function of the step's
     buffers. *)
  Array.iter
    (fun ctx ->
      Dgr_obs.Lineage.close_many t.lin (Vec.unsafe_data ctx.cdone)
        ~len:(Vec.length ctx.cdone) ~now:t.now;
      Vec.clear ctx.cdone)
    t.ctxs;
  let m3 = Profile.now () in
  t.prof.Profile.close_ns <- t.prof.Profile.close_ns +. (m3 -. m2);
  flush_mailboxes t;
  let m4 = Profile.now () in
  Array.iter
    (fun ctx ->
      if Vec.length ctx.ccoop > 0 then begin
        t.current_pe <- ctx.cpe;
        Vec.iter (fun ev -> Mutator.replay t.mut ev) ctx.ccoop;
        Vec.clear ctx.ccoop
      end)
    t.ctxs;
  t.current_pe <- -1;
  Array.iter
    (fun ctx ->
      Vec.iter (fun task -> execute_at_controller t task) ctx.ctrl;
      Vec.clear ctx.ctrl)
    t.ctxs;
  t.prof.Profile.replay_ns <- t.prof.Profile.replay_ns +. (Profile.now () -. m4)

(* Health watchdogs. Window-based: each monitor re-arms on any progress
   (or while the machine is legitimately paused) and fires at most once
   per stall episode, so a long outage reads as one event, not a siren.
   All inputs are deterministic machine state — the events land in traces
   and must be identical at every domain count. *)
let wd_window t = Int.max 32 (8 * t.latency)

let health_check t =
  let now = t.now in
  let paused = now < t.paused_until in
  (* Mark wave: a cycle is running but no marking task has executed for a
     full window — the wave is stuck behind a stalled PE or lost marks. *)
  let cycle_active =
    match t.cyc with Some c -> Cycle.phase c <> Cycle.Idle | None -> false
  in
  if cycle_active && not paused then begin
    if t.m.Metrics.marking_executed > t.wd_mark_last then begin
      t.wd_mark_last <- t.m.Metrics.marking_executed;
      t.wd_mark_since <- now;
      t.wd_mark_fired <- false
    end
    else if (not t.wd_mark_fired) && now - t.wd_mark_since >= wd_window t then begin
      t.wd_mark_fired <- true;
      t.m.Metrics.health_mark_stalls <- t.m.Metrics.health_mark_stalls + 1;
      obs t
        (Dgr_obs.Event.Health
           { health = Dgr_obs.Event.Mark_wave_stall; value = now - t.wd_mark_since })
    end
  end
  else begin
    t.wd_mark_last <- t.m.Metrics.marking_executed;
    t.wd_mark_since <- now;
    t.wd_mark_fired <- false
  end;
  (* Quiescence: work is waiting (pooled or in flight) but nothing has
     executed for several windows — livelock, or frames stuck behind
     repeated losses. The window is 4× the mark watchdog's so a healthy
     exponential-backoff retransmit never trips it. *)
  let executed = t.m.Metrics.reduction_executed + t.m.Metrics.marking_executed in
  let work_waiting =
    (not (Array.for_all Pool.is_empty t.pools)) || Network.size t.net > 0
  in
  if
    executed > t.wd_exec_last || paused || (not work_waiting)
    || t.m.Metrics.completion_step <> None
  then begin
    t.wd_exec_last <- executed;
    t.wd_exec_since <- now;
    t.wd_exec_fired <- false
  end
  else if (not t.wd_exec_fired) && now - t.wd_exec_since >= 4 * wd_window t then begin
    t.wd_exec_fired <- true;
    t.m.Metrics.health_quiescence_stalls <- t.m.Metrics.health_quiescence_stalls + 1;
    obs t
      (Dgr_obs.Event.Health
         { health = Dgr_obs.Event.Quiescence_stall; value = now - t.wd_exec_since })
  end;
  (* Retransmit storm: the windowed retransmit rate exceeds ~4 per PE per
     64 steps — the delivery timers are thrashing, not recovering. *)
  if now >= t.wd_retx_at then begin
    let delta = t.m.Metrics.retransmits - t.wd_retx_last in
    if delta >= 4 * t.num_pes then begin
      t.m.Metrics.health_retx_storms <- t.m.Metrics.health_retx_storms + 1;
      obs t
        (Dgr_obs.Event.Health
           { health = Dgr_obs.Event.Retransmit_storm; value = delta })
    end;
    t.wd_retx_last <- t.m.Metrics.retransmits;
    t.wd_retx_at <- now + 64
  end

(* ---- PE crashes (fail-stop with checkpointed re-homing) ---------------
   A crash loses a PE's volatile state wholesale: its task pool, every
   frame in flight on its links (both directions, including batched
   frames), and whatever its striped graph segment drifted to since the
   last checkpoint. Because the crash tick syncs every PE's checkpoint at
   the top of the very step the crash dice roll, the restored segment is
   exact — no acknowledged state ever rolls back — and re-homing the
   crashed PE's live vertices onto survivors preserves the reachable
   graph byte-for-byte. What is honestly lost is in-flight and pooled
   work ([crash_lost_tasks]); an interrupted marking phase is restarted
   ({!Cycle.restart_phase}) so no partial mark can masquerade as a
   finished wave. All of this is serial-path state, so verdicts and
   digests stay bit-identical at every [domains] value. *)

let is_down t pe = t.down_since.(pe) >= 0

let up_count t =
  let n = ref 0 in
  for pe = 0 to t.num_pes - 1 do
    if not (is_down t pe) then incr n
  done;
  !n

let sync_ckpts t =
  if Array.length t.ckpts = 0 then
    t.ckpts <- Array.init t.num_pes (fun pe -> Checkpoint.create t.g ~pe);
  Array.iter (fun ck -> ignore (Checkpoint.sync ck ~now:t.now)) t.ckpts

(* The crash itself. Caller guarantees [pe] is up, at least one other PE
   is up, and [t.ckpts.(pe)] was synced this step. *)
let crash_now t ~pe ~down =
  let lost_pool = Pool.purge t.pools.(pe) (fun _ -> true) in
  let lost_net = Network.crash_pe t.net ~pe in
  Checkpoint.restore t.ckpts.(pe);
  t.down_since.(pe) <- t.now;
  t.down_until.(pe) <- t.now + down;
  (* Re-home every live vertex stranded on a down PE (the whole-graph
     scan also catches vertices still pointing at an earlier crash's PE,
     e.g. two crashes in one step) onto the up PEs, round-robin by vid —
     deterministic, and balanced regardless of which PE died. *)
  let survivors = Array.make (up_count t) 0 in
  let k = ref 0 in
  for p = 0 to t.num_pes - 1 do
    if not (is_down t p) then begin
      survivors.(!k) <- p;
      incr k
    end
  done;
  let ns = Array.length survivors in
  let rehomed = ref 0 in
  Graph.iter_live
    (fun vx ->
      let home = (Vertex.pe vx) in
      if home >= 0 && home < t.num_pes && is_down t home then begin
        Vertex.set_pe vx @@ survivors.((((Vertex.id vx) mod ns) + ns) mod ns);
        incr rehomed
      end)
    t.g;
  (* A marking wave the crash interrupted can never complete (marks bound
     for the dead PE are gone) and must not be trusted (its partial marks
     include state the restore rewound). Restart the phase on a fresh
     wave — no machine-wide purge: the dead wave's surviving tasks carry
     the old epoch and die at dispatch ([stale_marks_dropped]), its
     credits die at the detector, and the settled plane's verdict from
     the previous phase is untouched. *)
  (match t.cyc with
  | Some c when Cycle.phase c <> Cycle.Idle -> Cycle.restart_phase c
  | _ -> ());
  t.m.Metrics.crashes <- t.m.Metrics.crashes + 1;
  t.m.Metrics.crash_lost_tasks <- t.m.Metrics.crash_lost_tasks + lost_pool + lost_net;
  t.m.Metrics.crash_rehomed <- t.m.Metrics.crash_rehomed + !rehomed;
  obs t (Dgr_obs.Event.Pe_crash { pe; lost = lost_pool + lost_net; down })

(* The per-step crash tick: sync checkpoints, recover PEs whose downtime
   elapsed (they execute again this very step, empty-handed), then roll
   the crash dice in ascending PE order. A crash that would leave no
   survivor is suppressed — the fail-stop model assumes a majority of
   the machine outlives any fault (see {!Faults}). *)
let crash_tick t =
  sync_ckpts t;
  for pe = 0 to t.num_pes - 1 do
    if is_down t pe && t.now >= t.down_until.(pe) then begin
      let downtime = t.now - t.down_since.(pe) in
      t.down_since.(pe) <- -1;
      t.m.Metrics.recoveries <- t.m.Metrics.recoveries + 1;
      Dgr_obs.Hist.add t.m.Metrics.lat_recovery downtime;
      obs t (Dgr_obs.Event.Pe_recover { pe; down = downtime })
    end
  done;
  match t.flt with
  | Some f when f.Faults.spec.Faults.crash > 0.0 ->
    for pe = 0 to t.num_pes - 1 do
      if (not (is_down t pe)) && Faults.crash_begins f ~pe && up_count t >= 2 then begin
        let down = Faults.down_length f in
        crash_now t ~pe ~down
      end
    done
  | _ -> ()

let inject_crash t ~pe ~down =
  if t.num_pes < 2 then invalid_arg "Engine.inject_crash: need at least 2 PEs";
  if pe < 0 || pe >= t.num_pes then invalid_arg "Engine.inject_crash: no such PE";
  if is_down t pe then invalid_arg "Engine.inject_crash: PE already down";
  if up_count t < 2 then invalid_arg "Engine.inject_crash: would leave no survivor";
  if down < 1 then invalid_arg "Engine.inject_crash: downtime must be >= 1";
  t.crash_used <- true;
  sync_ckpts t;
  crash_now t ~pe ~down

let pe_down t pe = pe >= 0 && pe < t.num_pes && is_down t pe

let step t =
  let p0 = Profile.now () in
  let w0 = Profile.words () in
  (match t.recorder with Some r -> Dgr_obs.Recorder.set_now r t.now | None -> ());
  (* Every vertex allocated from here on is this step's: the ownership
     checker exempts same-step births (a PE wires up its own fresh
     template vertices before they are published to anyone). *)
  Graph.bump_epoch t.g;
  (* 0. The crash plane: checkpoint sync, recoveries, then crash dice —
     before delivery, so frames arriving at a PE that crashes this step
     die with it. Never entered by a machine that cannot crash, keeping
     fault-free runs byte-identical to builds without the plane. *)
  if t.crash_used then crash_tick t;
  (* 1. Deliver the network, straight into the destination pools (the
     delivered task's lineage ticket rides along as its pool stamp). *)
  Network.deliver_into t.net ~now:t.now ~push:(fun pe stamp task ->
      Pool.push ~stamp t.pools.(pe) task);
  flush_rc_purge t;
  let p1 = Profile.now () in
  let w1 = Profile.words () in
  t.prof.Profile.transport_ns <- t.prof.Profile.transport_ns +. (p1 -. p0);
  t.prof.Profile.transport_mw <- t.prof.Profile.transport_mw +. (w1 -. w0);
  (* 2. Execute, unless the machine is paused by a collection. Marking
     tasks are lightweight (§6: "bounded amount of time once the required
     vertices are accessed") and get their own per-step budget so GC
     neither starves nor is starved by the reduction process. *)
  let buffered_exec () =
    (* Buffered: every PE runs against its private context; with one
       shard that is a plain loop on this domain, with more the same
       loop bodies run on the worker pool — same buffers either way.
       Cooperation bodies are deferred for the barrier replay. *)
    Mutator.set_defer t.mut (Some t.coop_sink);
    if t.domains > 1 then run_parallel t (fun d -> run_shard t d) else run_shard t 0;
    let p2 = Profile.now () in
    let w2 = Profile.words () in
    t.prof.Profile.execute_ns <- t.prof.Profile.execute_ns +. (p2 -. p1);
    t.prof.Profile.execute_mw <- t.prof.Profile.execute_mw +. (w2 -. w1);
    merge_buffered t;
    t.prof.Profile.merge_ns <- t.prof.Profile.merge_ns +. (Profile.now () -. p2);
    t.prof.Profile.merge_mw <- t.prof.Profile.merge_mw +. (Profile.words () -. w2)
  in
  if t.now >= t.paused_until then begin
    if buffered_ok t then buffered_exec ()
    else begin
      for pe = 0 to t.num_pes - 1 do
        (* A crashed PE executes nothing (and rolls no stall dice) until
           its downtime elapses. Transient PE stall (crash-restart with
           memory preserved): the PE skips its execution budget; its
           pool, heap and in-flight messages survive. The marking plane
           must tolerate this — a stalled PE delays but never loses its
           share of the cycle. *)
        let stalled =
          t.down_since.(pe) >= 0
          ||
          match t.flt with
          | None -> false
          | Some f ->
            if t.now < t.stall_until.(pe) then begin
              f.Faults.stall_steps <- f.Faults.stall_steps + 1;
              true
            end
            else if Faults.stall_begins f ~pe then begin
              let steps = Faults.stall_length f in
              f.Faults.stalls <- f.Faults.stalls + 1;
              f.Faults.stall_steps <- f.Faults.stall_steps + 1;
              t.stall_until.(pe) <- t.now + steps;
              obs t (Dgr_obs.Event.Stall { pe; steps });
              true
            end
            else false
        in
        if not stalled then execute_budgets t pe t.pools.(pe)
      done;
      (* Serial-only execution (faults / RC): counted apart from the
         buffered span — this time is serial by construction and
         sharding cannot touch it. *)
      t.prof.Profile.sexec_ns <- t.prof.Profile.sexec_ns +. (Profile.now () -. p1);
      t.prof.Profile.sexec_mw <- t.prof.Profile.sexec_mw +. (Profile.words () -. w1)
    end
  end
  else if
    buffered_ok t
    && match t.cyc with Some c -> Cycle.phase c <> Cycle.Idle | None -> false
  then begin
    (* Epoch overlap: the machine is paused for cycle N's restructure,
       but cycle N+1's mark wave has already opened — its tasks carry the
       new epoch and touch nothing the pause protects, so the marking
       budgets keep draining while reduction stays stopped. *)
    t.mark_only <- true;
    buffered_exec ();
    t.mark_only <- false
  end;
  (* 3. Memory management. *)
  let p3 = Profile.now () in
  let w3 = Profile.words () in
  flush_rc_purge t;
  gc_control t;
  (* Flood termination heartbeats: while a flood phase is in progress
     every up PE periodically posts its (epoch, sent, executed) credit
     as a standalone loss-free control message, so the detector hears
     from PEs the data traffic never visits. Deterministic: driven by
     [t.now] and machine state only. *)
  (match active_flood t with
  | Some fl ->
    let ht = Int.max 1 (t.latency / 4) in
    if t.now mod ht = 0 then
      for pe = 0 to t.num_pes - 1 do
        if t.down_since.(pe) < 0 then begin
          let sent, executed = Flood.credit fl ~pe in
          Network.post_credit t.net ~arrival:(t.now + ht) ~pe ~epoch:fl.Flood.wave ~sent
            ~executed
        end
      done
  | None -> ());
  let p4 = Profile.now () in
  let w4 = Profile.words () in
  t.prof.Profile.gc_ns <- t.prof.Profile.gc_ns +. (p4 -. p3);
  t.prof.Profile.gc_mw <- t.prof.Profile.gc_mw +. (w4 -. w3);
  (* 4. Bookkeeping. *)
  (match (Reducer.finished t.red, t.m.Metrics.completion_step) with
  | true, None ->
    t.m.Metrics.completion_step <- Some t.now;
    obs t Dgr_obs.Event.Finished
  | _ -> ());
  let depth = ref 0 in
  for pe = 0 to t.num_pes - 1 do
    depth := !depth + Pool.length t.pools.(pe)
  done;
  Dgr_util.Stats.add t.m.Metrics.pool_depth (float_of_int !depth);
  t.m.Metrics.peak_live <- Int.max t.m.Metrics.peak_live (Graph.live_count t.g);
  (match t.flt with
  | None -> ()
  | Some f ->
    t.m.Metrics.msgs_dropped <- f.Faults.drops;
    t.m.Metrics.msgs_duplicated <- f.Faults.dups;
    t.m.Metrics.msgs_delayed <- f.Faults.delays;
    t.m.Metrics.retransmits <- f.Faults.retransmits;
    t.m.Metrics.dup_suppressed <- f.Faults.dup_suppressed;
    t.m.Metrics.stalls <- f.Faults.stalls;
    t.m.Metrics.stall_steps <- f.Faults.stall_steps);
  t.m.Metrics.frames_sent <- Network.frames_sent t.net;
  t.m.Metrics.acks_sent <- Network.acks_sent t.net;
  t.m.Metrics.acks_piggybacked <- Network.acks_piggybacked t.net;
  t.m.Metrics.tasks_sent <- Network.tasks_sent t.net;
  t.m.Metrics.marks_coalesced <- Network.marks_coalesced t.net;
  health_check t;
  (match t.recorder with
  | None -> ()
  | Some r ->
    Dgr_obs.Recorder.tick r ~live:(Graph.live_count t.g) ~in_flight:(Network.size t.net)
      ~headroom:(match Graph.capacity t.g with None -> -1 | Some _ -> Graph.headroom t.g)
      ~pool_depth:(Array.map Pool.length t.pools));
  t.now <- t.now + 1;
  t.m.Metrics.steps <- t.m.Metrics.steps + 1;
  let p5 = Profile.now () in
  let w5 = Profile.words () in
  t.prof.Profile.book_ns <- t.prof.Profile.book_ns +. (p5 -. p4);
  t.prof.Profile.book_mw <- t.prof.Profile.book_mw +. (w5 -. w4);
  t.prof.Profile.total_ns <- t.prof.Profile.total_ns +. (p5 -. p0);
  t.prof.Profile.total_mw <- t.prof.Profile.total_mw +. (w5 -. w0);
  t.prof.Profile.steps <- t.prof.Profile.steps + 1

let result t = t.red.Reducer.result

let finished t = Reducer.finished t.red

let run ?(max_steps = 1_000_000) ?stop t =
  let start = t.now in
  (* Under the concurrent collector the mark/restructure cycle "is
     repeated endlessly" (§4) — a task-quiescent machine is not done (a
     deadlocked computation stays quiescent forever, and detecting that is
     the point), so only the stop condition or the step budget end the
     run. The default stop condition is program completion; an explicit
     [stop] replaces it (e.g. to keep collecting after the result). *)
  let stop = match stop with Some f -> f | None -> finished in
  let gc_cycles_forever = match t.gc_mode with Concurrent _ -> true | _ -> false in
  let continue = ref true in
  while !continue do
    if stop t || t.now - start >= max_steps then continue := false
    else if (not gc_cycles_forever) && quiescent t && t.now >= t.paused_until then
      continue := false
    else step t
  done;
  t.now - start

let network_entries t = Network.entries t.net
