open Dgr_task

(** The message network: tasks in transit between PEs, batched per link.

    Transport is frame-batched in both regimes: every task {!send}-ed to
    the same (src, dst) link for the same arrival step rides in one
    frame, staged until the next {!deliver_into} tick flushes it into
    the channel. Batching is a refinement of the paper's
    one-task-per-message model below task granularity — each task keeps
    its fault-free arrival step and per-link FIFO order; only the
    grouping into physical frames (and hence per-frame bookkeeping:
    arrival events, pending entries, retransmit timers, acks) changes.

    Without a fault plane, delivery is the paper's idealized channel:
    batches become available at their arrival step and drain in stage
    order among equals, exactly once.

    With a fault plane ({!Faults.t}), batches ride in data frames over
    an at-most-once channel — any physical transmission may be dropped,
    duplicated or delayed, and a dropped batch retransmits as a unit. A
    reliable-delivery layer re-earns the exactly-once effect the marking
    and reduction planes assume: per-(sender, destination) sequence
    numbers, {e cumulative} acks (the highest contiguous sequence per
    link, piggybacked on a reverse-direction data frame when one is
    already flushing, standalone otherwise), retransmission on timeout
    with exponential backoff (initial RTO [2·delay + 2], doubling per
    attempt, capped), and receiver-side dedup on (src, dst, seq).
    Everything is driven by the fault plane's own seeded streams, so a
    (config, seed, fault-spec) triple replays byte-identically.

    Staging also {e coalesces} mark waves (unless created with
    [~batch:false]): a mark task structurally identical to one already
    staged in its batch is absorbed rather than transmitted, and the
    [on_coalesce] hook fires so the engine can settle the mark/return
    accounting the dropped twin owed. [Return] marks and reduction
    tasks never coalesce.

    The cycle controller reads {!in_flight} when seeding M_T — the
    visibility of in-transit tasks the paper defers to [5]. That means
    undelivered sends, staged or in-channel: a dropped frame is still in
    flight in the sense that matters, since its retransmission will
    eventually deliver it. *)

type t

val create :
  ?recorder:Dgr_obs.Recorder.t ->
  ?lineage:Dgr_obs.Lineage.t ->
  ?faults:Faults.t ->
  ?batch:bool ->
  unit ->
  t
(** With a recorder, flushes emit a [Batch] event per frame and
    {!deliver_into} a [Deliver] event per task handed up; {!purge} emits
    a [Purge] event per destination PE swept. Under faults,
    [Drop]/[Dup]/[Retransmit] events trace the channel per frame and
    [Cum_ack] events trace the acknowledgement watermarks. [batch]
    (default true) controls multi-task frames and mark coalescing;
    [~batch:false] restores one task per frame for A/B runs (the
    cumulative-ack layer is shared by both modes).

    With a [lineage] store, {!send} opens a latency ticket per reduction
    task (marking tasks travel unticketed — they may coalesce away),
    {!deliver_into} records the delivery step and hands the ticket to
    [push], and {!purge} drops tickets of expunged tasks. Sends always
    run serially (inline, or at the barrier's mailbox flush), so ticket
    ids are deterministic at any domain count. *)

val send : ?src:int -> ?lin:int -> ?depth:int -> t -> arrival:int -> pe:int -> Task.t -> unit
(** Stage a task on link (src, dst = pe) for [arrival]. [src] (default
    [-1], the controller) names the sending PE; it keys the batch and
    the per-link sequence-number space under faults. [lin] (default
    [-1], untracked) and [depth] (default [0]) seed the task's lineage
    ticket when a lineage store is attached. [arrival] is the
    fault-free arrival step; the link's base delay is recovered as
    [arrival - now of last deliver]. Tasks staged for the same (src,
    pe, arrival) join one batch; an identical already-staged mark
    absorbs the newcomer (see {!set_on_coalesce}). *)

val set_on_coalesce : t -> (pe:int -> Task.mark -> unit) -> unit
(** Install the mark-coalescing callback: fired from {!send} when a
    staged identical mark absorbs the task being sent, with [pe] the
    destination PE. The callback may re-enter {!send} (e.g. to stage
    the [Return] the absorbed mark would have produced); recursion is
    bounded because [Return] tasks never coalesce. Default: ignore. *)

(** {2 Termination credits}

    Transport for the flood scheme's distributed termination detector
    (see [Dgr_core.Termination]): per-PE [(epoch, sent, executed)]
    credits ride on data frames and cumulative acks under faults, and on
    a loss-free standalone queue (the heartbeat path) in both regimes.
    Credits are idempotent advisories — the detector max-merges them —
    so no delivery discipline is required. *)

val set_credit_of : t -> (int -> (int * int * int) option) -> unit
(** Install the credit sampler: [credit_of pe] is the PE's current
    [(epoch, sent, executed)] credit, or [None] when no mark wave is
    active. Sampled at every physical transmission — flush {e and}
    retransmit — of a data frame (from its source PE) and at every
    standalone ack (from the ack's sender). Default: no credits. *)

val set_on_credit : t -> (pe:int -> epoch:int -> sent:int -> executed:int -> unit) -> unit
(** Install the credit sink, fired at each receipt of a credit-carrying
    frame (duplicates included — credits are idempotent) and at each
    standalone credit's arrival. Default: ignore. *)

val post_credit : t -> arrival:int -> pe:int -> epoch:int -> sent:int -> executed:int -> unit
(** Enqueue a standalone heartbeat credit from [pe], handed to the
    credit sink at [arrival]. Loss-free even under faults: heartbeats
    are the liveness backstop for PEs with no traffic to piggyback on. *)

val deliver_into : t -> now:int -> push:(int -> int -> Task.t -> unit) -> unit
(** The network's clock tick: flush the batches staged since the last
    tick into the channel, then hand every task due by [now] to
    [push pe stamp task] — [stamp] its lineage ticket, [-1] when
    untracked — in delivery order, without building a list. Under
    faults this also settles owed cumulative acks (piggybacked or
    standalone), suppresses duplicate frames, and fires expired
    retransmission timers. Call once per step. *)

val deliver : t -> now:int -> (int * Task.t) list
(** {!deliver_into} collected into a list, in delivery order (tests and
    debugging; the engine consumes via [deliver_into]). *)

val in_flight : t -> Task.t list
(** Tasks sent but not yet delivered — staged batches included — ordered
    by fault-free arrival step, then batch stage order, then in-batch
    post order. Delivered-but-unacked frames are excluded: their effect
    already happened. *)

val iter_in_flight : t -> (Task.t -> unit) -> unit
(** Apply [f] to every undelivered task in {e unspecified} order, without
    sorting or allocating — for order-insensitive folds (M_T seeding). *)

val iter_in_flight_dst : t -> (dst:int -> Task.t -> unit) -> unit
(** Like {!iter_in_flight}, with each task's destination PE: the
    receiver is the PE whose "local knowledge" an in-flight task counts
    as when the cycle builds taskroot from per-PE enumerations. *)

val purge : t -> (Task.t -> bool) -> int
(** Remove matching undelivered tasks; returns the count. Tasks are
    filtered inside their batches (queued frame copies share the batch,
    so every copy is pruned at once); a batch emptied entirely is
    withdrawn — its retransmission stops, late copies are not delivered,
    and under faults its sequence number is treated as received so
    cumulative acks flow past the hole without re-acking survivors.
    Emits one [Purge] event per affected destination PE, ascending. *)

val size : t -> int
(** Undelivered task count, staged batches included. [0] means no task
    will ever be handed up again (outstanding acks and timers for
    already-delivered frames do not count), so quiescence detection is
    unaffected by ack traffic. *)

val entries : t -> (int * Task.t) list
(** [(arrival, task)] pairs for undelivered sends, sorted by fault-free
    arrival step then send order — deterministic under [jitter > 0] and
    under faults, so trace output and M_T seeding never depend on heap
    or hash layout. *)

(** {2 Transport counters}

    Monotonic totals since [create], synced into {!Metrics} by the
    engine each step. *)

val frames_sent : t -> int
(** Data frames flushed into the channel (initial transmissions only,
    both regimes; retransmissions are counted by the fault plane). *)

val acks_sent : t -> int
(** Standalone cumulative-ack frames transmitted. *)

val acks_piggybacked : t -> int
(** Cumulative acks carried on reverse-direction data frames. *)

val tasks_sent : t -> int
(** Tasks staged for transmission (coalesced marks excluded). *)

val marks_coalesced : t -> int
(** Mark tasks absorbed by a staged identical twin before transmission. *)

val unacked : t -> int
(** Pending table size under faults: frames sent but not yet covered by
    a cumulative ack, delivered or not (tests). *)

val set_link_seq : t -> src:int -> dst:int -> int -> unit
(** Test hook: fast-forward link (src, dst)'s sender sequence number to
    exercise the wraparound guard. Not for production use. *)

val crash_pe : t -> pe:int -> int
(** A PE crash, as the network sees it: discard every frame in flight on
    links touching [pe] in either direction — staged batches, unacked
    sends, queued copies (retransmitted duplicates included), standalone
    acks — cancel their retransmit timers and owed acks, and reset the
    per-link sequence state on both endpoints of every severed link, so
    traffic after recovery restarts at seq 0. The reset cannot produce
    dedup false-positives: every frame that could carry an old sequence
    number on those links is removed in the same call, and stale timers
    are filtered eagerly so a reused (src, dst, fseq) key is never fired
    by a pre-crash timer. Returns the number of undelivered tasks lost
    (their lineage tickets are dropped); delivered-but-unacked batches
    lose only their ack bookkeeping. *)

(** Per-PE outgoing buffer for the sharded engine: a worker-domain PE
    posts its sends here instead of staging directly; the engine flushes
    every mailbox at the step barrier in ascending PE order. Staging
    groups tasks by (src, dst, arrival) regardless of post interleaving,
    so the merged batches equal the serial engine's exactly. *)
module Mailbox : sig
  type mb

  val create : unit -> mb

  val post :
    mb -> ?lin:int -> ?depth:int -> src:int -> arrival:int -> pe:int -> Task.t -> unit

  val length : mb -> int

  val flush : mb -> t -> unit
  (** Issue every buffered send into the network in post order, then
      clear the mailbox. *)

  type t = mb
end

(** {2 Destination-sharded flush}

    The barrier mailbox flush split into a parallelizable grouping pass
    and a serial finalization, together byte-equivalent to flushing
    every mailbox through {!Mailbox.flush} in ascending PE order.
    Frames are keyed by destination, so grouping tasks into frames and
    deciding mark coalescing touch per-destination state only: shards
    over disjoint destination ranges may run {!flush_shard_group}
    concurrently. Everything globally ordered — frame uids and staging
    order, lineage ticket slots, [on_coalesce] callbacks and their rng
    draws, counters, events — happens in {!flush_shard_finalize}, which
    replays the per-entry verdicts in the serial flush's exact order. *)

val flush_shard_plan : t -> Mailbox.mb array -> bool
(** Size the plan for one barrier ([mbs.(src)] is PE [src]'s mailbox)
    and publish per-src offsets. Serial. Returns [false] if the staged
    area is non-empty — a forming frame could match a mailbox entry's
    key, so the caller must fall back to {!Mailbox.flush}. *)

val flush_shard_group : t -> Mailbox.mb array -> lo:int -> hi:int -> unit
(** Group entries bound for destinations [lo, hi) into forming frames
    and record per-entry verdicts. Safe to run concurrently with other
    disjoint ranges after {!flush_shard_plan}; deterministic per range
    (ascending src, post order within a mailbox). *)

val flush_shard_finalize : t -> Mailbox.mb array -> unit
(** Stage the grouped frames and settle tickets, coalesce callbacks and
    counters, in the serial flush's global order; clears the mailboxes
    and the plan. Serial, after every {!flush_shard_group} returned. *)
