open Dgr_task

(** The message network: tasks in transit between PEs.

    Delivery is deterministic: messages become available at their arrival
    step and drain in send order among equals. The cycle controller reads
    {!in_flight} when seeding M_T — the visibility of in-transit tasks the
    paper defers to [5]. *)

type t

val create : ?recorder:Dgr_obs.Recorder.t -> unit -> t
(** With a recorder, {!deliver} emits a [Deliver] event per message and
    {!purge} a [Purge] event (pe [-1]) per non-empty sweep. *)

val send : t -> arrival:int -> pe:int -> Task.t -> unit

val deliver : t -> now:int -> (int * Task.t) list
(** Pop every message with [arrival <= now] as [(pe, task)], in order. *)

val in_flight : t -> Task.t list
(** In-transit tasks, ordered by arrival step then send order. *)

val purge : t -> (Task.t -> bool) -> int

val size : t -> int

val entries : t -> (int * Task.t) list
(** [(arrival, task)] pairs, sorted by arrival step then send order —
    deterministic under [jitter > 0], so trace output and M_T seeding
    never depend on heap layout. *)
