open Dgr_task

(** The message network: tasks in transit between PEs.

    Without a fault plane, delivery is the paper's idealized channel:
    messages become available at their arrival step and drain in send
    order among equals, exactly once. This path is byte-identical to the
    pre-fault implementation, so fault-free traces are unchanged.

    With a fault plane ({!Faults.t}), each task rides in a data frame
    over an at-most-once channel — any physical transmission may be
    dropped, duplicated or delayed. A reliable-delivery layer re-earns
    the exactly-once effect the marking and reduction planes assume:
    per-(sender, destination) sequence numbers, an individual ack per
    data frame, retransmission on timeout with exponential backoff
    (initial RTO [2·delay + 2], doubling per attempt, capped), and
    receiver-side dedup on (src, dst, seq). Everything is driven by the
    fault plane's own seeded streams, so a (config, seed, fault-spec)
    triple replays byte-identically.

    The cycle controller reads {!in_flight} when seeding M_T — the
    visibility of in-transit tasks the paper defers to [5]. Under
    faults, that means undelivered sends (frames the receiver has not
    yet seen), whether or not copies currently sit in the lossy queue:
    a dropped frame is still in flight in the sense that matters, since
    its retransmission will eventually deliver it. *)

type t

val create : ?recorder:Dgr_obs.Recorder.t -> ?faults:Faults.t -> unit -> t
(** With a recorder, {!deliver} emits a [Deliver] event per message
    handed up and {!purge} a [Purge] event per destination PE swept.
    Under faults, [Drop]/[Dup]/[Retransmit] events trace the channel. *)

val send : ?src:int -> t -> arrival:int -> pe:int -> Task.t -> unit
(** [src] (default [-1], the controller) names the sending PE; it keys
    the per-link sequence-number space under faults and is otherwise
    ignored. [arrival] is the fault-free arrival step; under faults the
    link's base delay is recovered as [arrival - now of last deliver]. *)

val deliver_into : t -> now:int -> push:(int -> Task.t -> unit) -> unit
(** Hand every message due by [now] to [push pe task], in delivery
    order, without building a list. Under faults this is also the
    network's clock tick: acks go out for every data frame received
    (duplicates included — the previous ack may have been lost),
    duplicate deliveries are suppressed, and expired retransmission
    timers fire. Call once per step. *)

val deliver : t -> now:int -> (int * Task.t) list
(** {!deliver_into} collected into a list, in delivery order (tests and
    debugging; the engine consumes via [deliver_into]). *)

val in_flight : t -> Task.t list
(** Tasks sent but not yet delivered, ordered by fault-free arrival step
    then send order. Delivered-but-unacked frames are excluded: their
    effect already happened. *)

val iter_in_flight : t -> (Task.t -> unit) -> unit
(** Apply [f] to every undelivered task in {e unspecified} order, without
    sorting or allocating — for order-insensitive folds (M_T seeding). *)

val purge : t -> (Task.t -> bool) -> int
(** Remove matching undelivered tasks; returns the count. Retransmission
    of purged frames stops and late copies are not delivered. Emits one
    [Purge] event per affected destination PE, ascending. *)

val size : t -> int
(** Undelivered task count. [0] means no task will ever be handed up
    again (outstanding acks and timers for already-delivered frames do
    not count), so quiescence detection is unaffected by ack traffic. *)

val entries : t -> (int * Task.t) list
(** [(arrival, task)] pairs for undelivered sends, sorted by fault-free
    arrival step then send order — deterministic under [jitter > 0] and
    under faults, so trace output and M_T seeding never depend on heap
    or hash layout. *)

(** Per-PE outgoing buffer for the sharded engine: a worker-domain PE
    posts its sends here instead of into the shared queue; the engine
    flushes every mailbox at the step barrier in ascending PE order,
    which (with FIFO tie-breaking among equal arrivals) reproduces the
    serial engine's delivery order exactly. *)
module Mailbox : sig
  type mb

  val create : unit -> mb

  val post : mb -> src:int -> arrival:int -> pe:int -> Task.t -> unit

  val length : mb -> int

  val flush : mb -> t -> unit
  (** Issue every buffered send into the network in post order, then
      clear the mailbox. *)

  type t = mb
end
