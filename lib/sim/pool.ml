open Dgr_util
open Dgr_graph
open Dgr_task

type policy = Flat | By_demand | Dynamic

let policy_to_string = function
  | Flat -> "flat"
  | By_demand -> "by-demand"
  | Dynamic -> "dynamic"

(* Marking and reduction tasks occupy separate queues: the engine gives
   each its own per-step budget, so GC and computation cannot starve one
   another by queue position alone. *)
type t = {
  marking : Task.t Pqueue.t;
  reduction : Task.t Pqueue.t;
  policy : policy;
  g : Graph.t;
  pe : int;
  recorder : Dgr_obs.Recorder.t option;
  lineage : Dgr_obs.Lineage.t option;
      (* release tickets of purged tasks; pops return the stamp to the
         engine, which closes it at execution *)
}

(* The global class of a vertex: the priority the last completed M_R
   cycle assigned (3 vital / 2 eager / 1 reserve), 0 when not yet
   classified. *)
let class_of g v = if Graph.mem g v then (Vertex.sched_prior (Graph.vertex g v)) else 0

(* Effective global class of a request <s,d>: the destination's class if
   known; otherwise inherit from the source, capped by the request's own
   (relative) demand — a task spawned from an eager region stays eager no
   matter how "vital" it is locally (§3.2). Fresh regions with no
   classified source fall back to the relative demand. *)
let request_class g ~src ~dst ~demand =
  match demand with
  | Demand.Vital ->
    (* A vital-flagged task is vital no matter what an older cycle said:
       demand upgrades (§3.2 item 2) travel by task between cycles. *)
    3
  | Demand.Eager -> (
    match class_of g dst with
    | 0 -> (
      match src with
      | Some s when class_of g s > 0 -> Int.min (class_of g s) 2
      | Some _ | None -> 2)
    | c -> c)

let priority_of policy g task =
  match task with
  | Task.Marking _ -> 0
  | Task.Reduction (Task.Cancel _) -> 1 (* cheap, and it shrinks future work *)
  | Task.Reduction (Task.Respond { src; dst; demand; _ }) -> (
    match policy with
    | Flat -> 2
    | By_demand -> ( match demand with Demand.Vital -> 1 | Demand.Eager -> 3)
    | Dynamic -> (
      let cls =
        match dst with
        | None -> 3
        | Some d -> request_class g ~src:(Some src) ~dst:d ~demand
      in
      match cls with 3 -> 1 | 2 -> 3 | _ -> 5))
  | Task.Reduction (Task.Request { src; dst; demand; _ }) -> (
    match policy with
    | Flat -> 2
    | By_demand -> ( match demand with Demand.Vital -> 2 | Demand.Eager -> 4)
    | Dynamic -> (
      match request_class g ~src ~dst ~demand with 3 -> 2 | 2 -> 4 | _ -> 5))

let create ?recorder ?lineage ?(pe = 0) policy g =
  {
    marking = Pqueue.create ();
    reduction = Pqueue.create ();
    policy;
    g;
    pe;
    recorder;
    lineage;
  }

let push ?(stamp = -1) t task =
  let q = match task with Task.Marking _ -> t.marking | Task.Reduction _ -> t.reduction in
  Pqueue.add_tagged q (priority_of t.policy t.g task) ~tag:stamp task

let pop_stamped t =
  match Pqueue.pop_tagged t.reduction with
  | Some (_, stamp, task) -> Some (task, stamp)
  | None -> (
    match Pqueue.pop_tagged t.marking with
    | Some (_, stamp, task) -> Some (task, stamp)
    | None -> None)

let pop t = Option.map fst (pop_stamped t)

let pop_marking_stamped t =
  match Pqueue.pop_tagged t.marking with
  | Some (_, stamp, task) -> Some (task, stamp)
  | None -> None

let pop_marking t = Option.map fst (pop_marking_stamped t)

(* Budgeted callback drains — the no-box counterparts of the
   [pop_*_stamped] forms, for the engine's per-step budget loops. Pop
   order is identical: [drain] serves the reduction queue first and falls
   back to marking, like [pop_stamped]. *)
let drain_marking t ~budget f =
  let n = ref 0 in
  while !n < budget && Pqueue.pop_tagged_with t.marking f do
    incr n
  done

let drain t ~budget f =
  let n = ref 0 in
  let continue = ref true in
  while !n < budget && !continue do
    if Pqueue.pop_tagged_with t.reduction f then incr n
    else if Pqueue.pop_tagged_with t.marking f then incr n
    else continue := false
  done

let length t = Pqueue.length t.marking + Pqueue.length t.reduction

let is_empty t = Pqueue.is_empty t.marking && Pqueue.is_empty t.reduction

let tasks t =
  List.map snd (Pqueue.to_sorted_list t.marking)
  @ List.map snd (Pqueue.to_sorted_list t.reduction)

let iter_tasks t f =
  Pqueue.iter (fun _ task -> f task) t.marking;
  Pqueue.iter (fun _ task -> f task) t.reduction

let purge t pred =
  let before = length t in
  let keep _prio stamp task =
    if pred task then begin
      (match t.lineage with
      | Some l when stamp >= 0 -> Dgr_obs.Lineage.drop l stamp
      | _ -> ());
      false
    end
    else true
  in
  Pqueue.filter_tagged_in_place keep t.marking;
  Pqueue.filter_tagged_in_place keep t.reduction;
  let n = before - length t in
  (match t.recorder with
  | Some r when n > 0 ->
    Dgr_obs.Recorder.emit r (Dgr_obs.Event.Purge { pe = t.pe; count = n })
  | Some _ | None -> ());
  n

let reprioritize t =
  let changed = ref 0 in
  Pqueue.map_priorities
    (fun old task ->
      let p = priority_of t.policy t.g task in
      if p <> old then incr changed;
      p)
    t.reduction;
  !changed
