open Dgr_util

(** Run metrics collected by the engine, reported by the harness. *)

type t = {
  mutable steps : int;
  mutable reduction_executed : int;
  mutable marking_executed : int;
  mutable stale_marks_dropped : int;
      (** marks from a superseded wave dropped at dispatch (epoch tag) *)
  mutable remote_messages : int;  (** tasks sent across PE boundaries *)
  mutable local_messages : int;
  mutable tasks_purged : int;  (** irrelevant/stale tasks expunged by GC *)
  mutable cycles_completed : int;
  mutable stw_collections : int;
  pauses : Stats.t;  (** mutator pause lengths, in steps *)
  mutable total_pause_steps : int;
  mutable completion_step : int option;  (** when the root's value arrived *)
  pool_depth : Stats.t;  (** sampled every step, aggregated over PEs *)
  mutable peak_live : int;  (** max live vertices observed *)
  mutable deadlocks_recovered : int;
      (** vertices rewritten to an error value by ⊥-recovery *)
  mutable msgs_dropped : int;  (** frames (data and ack) lost by the fault plane *)
  mutable msgs_duplicated : int;  (** data frames duplicated in transit *)
  mutable msgs_delayed : int;  (** frames given extra, reordering delay *)
  mutable retransmits : int;  (** timeouts that resent an unacked frame *)
  mutable dup_suppressed : int;  (** redeliveries swallowed by dedup *)
  mutable stalls : int;  (** transient PE stalls begun *)
  mutable stall_steps : int;  (** execution steps lost to stalls *)
  mutable crashes : int;  (** whole-PE crashes (pool/segment/links lost) *)
  mutable recoveries : int;  (** crashed PEs that came back up *)
  mutable crash_rehomed : int;  (** live vertices moved off crashed PEs *)
  mutable crash_lost_tasks : int;
      (** tasks destroyed by crashes (pool + undelivered in-flight) *)
  mutable frames_sent : int;  (** data frames flushed (initial sends) *)
  mutable acks_sent : int;  (** standalone cumulative-ack frames *)
  mutable acks_piggybacked : int;  (** cum acks riding reverse data frames *)
  mutable tasks_sent : int;  (** tasks staged for transmission *)
  mutable marks_coalesced : int;  (** marks absorbed by a staged twin *)
  lat_e2e : Dgr_obs.Hist.t;
      (** send → execute, in steps (reduction tasks with lineage tickets) *)
  lat_queue : Dgr_obs.Hist.t;  (** delivery → execute: pool residence *)
  lat_net : Dgr_obs.Hist.t;  (** send → fault-free arrival: link transit *)
  lat_retx : Dgr_obs.Hist.t;
      (** fault-free arrival → actual delivery: retransmit delay *)
  lat_recovery : Dgr_obs.Hist.t;
      (** crash → recover downtime per episode, in steps *)
  mutable health_mark_stalls : int;  (** mark-wave watchdog firings *)
  mutable health_quiescence_stalls : int;  (** progress watchdog firings *)
  mutable health_retx_storms : int;  (** retransmit-storm windows *)
}

val create : unit -> t

val record_pause : t -> int -> unit

val absorb : t -> t -> unit
(** [absorb t src] adds [src]'s execution counters (reduction/marking
    executed, messages, purges, recoveries) and latency histograms into
    [t] and zeroes them in [src]. Used by the sharded engine to merge
    per-PE sinks at the step barrier; the serially-recorded fields
    (pauses, pool depth, completion, faults, health) are untouched. *)

val schema_version : int
(** Version of the {!to_json} layout; bumped whenever a field is added,
    removed or reinterpreted, so downstream readers of [--stats-json]
    files can tell what they are looking at. *)

val to_json : t -> string
(** Machine-readable metrics (one JSON object, fixed field order and
    float precision — byte-deterministic for equal metrics), carrying
    [schema_version] as its first field. The bench harness and
    [--stats-json] consume this instead of scraping {!pp_summary}
    text. *)

val pp_summary : Format.formatter -> t -> unit
