(** Step-phase profiler: where the engine's wall-clock time goes.

    The engine brackets each step into transport / execution / barrier
    merge / GC control / bookkeeping phases, and the execution budget
    loops split their span into marking vs reduction work. Execution is
    the only phase the sharded engine runs in parallel, so the measured
    Amdahl serial fraction is [(total - execute) / total] — the direct
    yardstick for ROADMAP item 1's "shrink the serial controller".

    All readings are wall-clock and therefore non-deterministic; they
    never feed traces, metrics JSON or golden fixtures. Deterministic
    outputs ([dgr report --deterministic], deterministic bench rows)
    zero them. *)

type t = {
  mutable steps : int;
  mutable total_ns : float;
  mutable transport_ns : float;
  mutable execute_ns : float;
  mutable sexec_ns : float;
  mutable merge_ns : float;
  mutable gc_ns : float;
  mutable book_ns : float;
  mutable mark_ns : float;
  mutable red_ns : float;
}

val create : unit -> t

(** Monotonic-enough wall clock in nanoseconds (the engine only ever
    differences readings taken microseconds apart). *)
val now : unit -> float

(** Fraction of total step time spent outside the parallelizable
    execution span, in [0, 1]; [0.0] before any step ran. *)
val serial_fraction : t -> float

(** Best-case speedup at [domains] workers under Amdahl's law with the
    measured serial fraction. *)
val amdahl_speedup : t -> domains:int -> float

(** Phase shares and the serial fraction as a JSON object. Wall-clock
    derived — not byte-deterministic. *)
val to_json : t -> string
