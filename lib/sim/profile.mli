(** Step-phase profiler: where the engine's wall-clock time — and its
    minor-heap allocation — goes.

    The engine brackets each step into transport / execution / barrier
    merge / GC control / bookkeeping phases, and the execution budget
    loops split their span into marking vs reduction work. The merge
    span is further split into its barrier stages (event drain, metric
    absorption, lineage closes, mailbox flush, deferred replay). The
    sharded engine runs three spans in parallel — execution,
    restructure's per-home passes, and the destination-sharded half of
    the mailbox flush — so the measured Amdahl serial fraction is
    [(total - execute - restructure - sharded_flush) / total], the
    direct yardstick for ROADMAP item 1's "shrink the serial
    controller".

    The same brackets also accumulate [Gc.minor_words] deltas, so the
    bench's [minor_words_per_step] budget can be attributed to a phase
    when it regresses. On the sharded engine only the coordinating
    domain's words are attributed (workers count on their own heaps).

    Wall-clock readings are non-deterministic; they never feed traces,
    metrics JSON or golden fixtures. Deterministic outputs
    ([dgr report --deterministic], deterministic bench rows) zero the
    whole profile. *)

type t = {
  mutable steps : int;
  mutable total_ns : float;
  mutable transport_ns : float;
  mutable execute_ns : float;
  mutable sexec_ns : float;
  mutable merge_ns : float;
  mutable drain_ns : float;
  mutable absorb_ns : float;
  mutable close_ns : float;
  mutable pflush_ns : float;
  mutable flush_ns : float;
  mutable replay_ns : float;
  mutable gc_ns : float;
  mutable book_ns : float;
  mutable restr_ns : float;
  mutable mark_ns : float;
  mutable red_ns : float;
  mutable total_mw : float;
  mutable transport_mw : float;
  mutable execute_mw : float;
  mutable sexec_mw : float;
  mutable merge_mw : float;
  mutable gc_mw : float;
  mutable book_mw : float;
}

val create : unit -> t

(** Monotonic-enough wall clock in nanoseconds (the engine only ever
    differences readings taken microseconds apart). *)
val now : unit -> float

(** This domain's cumulative minor-heap allocation in words
    ([Gc.minor_words]) — differenced at the same points as {!now}. *)
val words : unit -> float

(** Fraction of total step time spent outside the parallelizable spans
    (execution, sharded restructure, and the sharded flush-grouping
    pass), in [0, 1]; [0.0] before any step ran. *)
val serial_fraction : t -> float

(** Best-case speedup at [domains] workers under Amdahl's law with the
    measured serial fraction. *)
val amdahl_speedup : t -> domains:int -> float

(** Phase shares, the serial fraction, and per-phase minor words per
    step as a JSON object. Wall-clock derived — not byte-deterministic. *)
val to_json : t -> string
