(* Step-phase profiler: wall-clock and allocation attribution of engine
   time.

   Each engine step is bracketed into phases — transport (network flush
   and delivery), execution (the per-PE budget loops, the only span the
   sharded engine runs in parallel), barrier merge (sub-recorder drain,
   metric absorption, mailbox flush, controller replay), GC control,
   and bookkeeping (counter sync, watchdogs, sampling). Within the
   execution span the budget loops further split their time into
   marking and reduction work.

   Alongside each wall-clock span the same brackets accumulate
   [Gc.minor_words] deltas, attributing the engine's minor-heap traffic
   to phases — the working measure for the allocation-free inner-loop
   budget ([minor_words_per_step] in the bench): when the bench gate
   trips, the per-phase words say which span regressed.

   The measured Amdahl serial fraction falls out directly:
   everything outside the sharded spans — the execution span and
   restructure's per-home passes — is serial by construction, so

     serial_fraction = (total - execute - restructure) / total

   is the ceiling on what domain-sharding can ever win — the yardstick
   for ROADMAP item 1. At [--domains 1] the sharded spans still count
   as parallelizable: the figure then reads "what fraction of this run
   a perfectly parallel machine could compress".

   Wall-clock readings never feed deterministic artifacts (traces,
   metrics JSON, golden lines); [dgr report --deterministic] and the
   deterministic bench rows zero them. Minor-word readings are exact
   counts, but the sharded engine's worker domains keep their own
   counters, so per-phase words are only attributed on the coordinating
   domain. *)

type t = {
  mutable steps : int;
  mutable total_ns : float;
  mutable transport_ns : float;
  mutable execute_ns : float;  (* parallel(izable) buffered execution span *)
  mutable sexec_ns : float;  (* serial-only execution span (faults/RC/cycle) *)
  mutable merge_ns : float;
  (* Inside merge, where the barrier's time goes — the attack surface of
     the pay-as-you-go merge. [pflush_ns] is the destination-sharded
     grouping pass: per-destination state is disjoint, so that span runs
     on the worker pool and counts as parallelizable alongside execute
     and restructure. *)
  mutable drain_ns : float;  (* inside merge: sub-recorder event drain *)
  mutable absorb_ns : float;  (* inside merge: metrics/reducer absorption *)
  mutable close_ns : float;  (* inside merge: batched lineage closes *)
  mutable pflush_ns : float;  (* inside merge: sharded flush grouping (parallelizable) *)
  mutable flush_ns : float;  (* inside merge: serial flush finalization *)
  mutable replay_ns : float;  (* inside merge: coop + controller replay *)
  mutable gc_ns : float;
  mutable book_ns : float;
  mutable restr_ns : float;  (* inside gc: restructure's sharded home passes *)
  mutable mark_ns : float;  (* inside execute: marking budget loops *)
  mutable red_ns : float;  (* inside execute: reduction budget loops *)
  mutable total_mw : float;  (* minor words, same brackets as the ns spans *)
  mutable transport_mw : float;
  mutable execute_mw : float;
  mutable sexec_mw : float;
  mutable merge_mw : float;
  mutable gc_mw : float;
  mutable book_mw : float;
}

let create () =
  {
    steps = 0;
    total_ns = 0.0;
    transport_ns = 0.0;
    execute_ns = 0.0;
    sexec_ns = 0.0;
    merge_ns = 0.0;
    drain_ns = 0.0;
    absorb_ns = 0.0;
    close_ns = 0.0;
    pflush_ns = 0.0;
    flush_ns = 0.0;
    replay_ns = 0.0;
    gc_ns = 0.0;
    book_ns = 0.0;
    restr_ns = 0.0;
    mark_ns = 0.0;
    red_ns = 0.0;
    total_mw = 0.0;
    transport_mw = 0.0;
    execute_mw = 0.0;
    sexec_mw = 0.0;
    merge_mw = 0.0;
    gc_mw = 0.0;
    book_mw = 0.0;
  }

let now () = Unix.gettimeofday () *. 1e9

let words () = Gc.minor_words ()

let serial_fraction t =
  if t.total_ns <= 0.0 then 0.0
  else
    Float.max 0.0
      ((t.total_ns -. t.execute_ns -. t.restr_ns -. t.pflush_ns) /. t.total_ns)

(* Amdahl: the best speedup [domains] workers can extract when only the
   execution span parallelizes. *)
let amdahl_speedup t ~domains =
  let s = serial_fraction t in
  1.0 /. (s +. ((1.0 -. s) /. float_of_int (Stdlib.max 1 domains)))

let share t part = if t.total_ns <= 0.0 then 0.0 else part /. t.total_ns

let per_step t part = if t.steps <= 0 then 0.0 else part /. float_of_int t.steps

let to_json t =
  Printf.sprintf
    "{\"steps\":%d,\"total_ms\":%.3f,\"transport\":%.4f,\"execute\":%.4f,\"execute_serial\":%.4f,\"merge\":%.4f,\"merge_breakdown\":{\"drain\":%.4f,\"absorb\":%.4f,\"close\":%.4f,\"flush_sharded\":%.4f,\"flush_serial\":%.4f,\"replay\":%.4f},\"gc\":%.4f,\"bookkeeping\":%.4f,\"restructure\":%.4f,\"marking\":%.4f,\"reduction\":%.4f,\"serial_fraction\":%.4f,\"mw_per_step\":{\"transport\":%.1f,\"execute\":%.1f,\"execute_serial\":%.1f,\"merge\":%.1f,\"gc\":%.1f,\"bookkeeping\":%.1f}}"
    t.steps (t.total_ns /. 1e6) (share t t.transport_ns) (share t t.execute_ns)
    (share t t.sexec_ns) (share t t.merge_ns) (share t t.drain_ns)
    (share t t.absorb_ns) (share t t.close_ns) (share t t.pflush_ns)
    (share t t.flush_ns) (share t t.replay_ns) (share t t.gc_ns) (share t t.book_ns)
    (share t t.restr_ns) (share t t.mark_ns) (share t t.red_ns) (serial_fraction t)
    (per_step t t.transport_mw) (per_step t t.execute_mw) (per_step t t.sexec_mw)
    (per_step t t.merge_mw) (per_step t t.gc_mw) (per_step t t.book_mw)
