(* Step-phase profiler: wall-clock attribution of engine time.

   Each engine step is bracketed into phases — transport (network flush
   and delivery), execution (the per-PE budget loops, the only span the
   sharded engine runs in parallel), barrier merge (sub-recorder drain,
   metric absorption, mailbox flush, controller replay), GC control,
   and bookkeeping (counter sync, watchdogs, sampling). Within the
   execution span the budget loops further split their time into
   marking and reduction work.

   The measured Amdahl serial fraction falls out directly:
   everything outside the execution span is serial by construction, so

     serial_fraction = (total - execute) / total

   is the ceiling on what domain-sharding can ever win — the yardstick
   for ROADMAP item 1. At [--domains 1] the execution span still counts
   as parallelizable: the figure then reads "what fraction of this run
   a perfectly parallel machine could compress".

   Wall-clock readings never feed deterministic artifacts (traces,
   metrics JSON, golden lines); [dgr report --deterministic] and the
   deterministic bench rows zero them. *)

type t = {
  mutable steps : int;
  mutable total_ns : float;
  mutable transport_ns : float;
  mutable execute_ns : float;  (* parallel(izable) buffered execution span *)
  mutable sexec_ns : float;  (* serial-only execution span (faults/RC/cycle) *)
  mutable merge_ns : float;
  mutable gc_ns : float;
  mutable book_ns : float;
  mutable mark_ns : float;  (* inside execute: marking budget loops *)
  mutable red_ns : float;  (* inside execute: reduction budget loops *)
}

let create () =
  {
    steps = 0;
    total_ns = 0.0;
    transport_ns = 0.0;
    execute_ns = 0.0;
    sexec_ns = 0.0;
    merge_ns = 0.0;
    gc_ns = 0.0;
    book_ns = 0.0;
    mark_ns = 0.0;
    red_ns = 0.0;
  }

let now () = Unix.gettimeofday () *. 1e9

let serial_fraction t =
  if t.total_ns <= 0.0 then 0.0
  else Float.max 0.0 ((t.total_ns -. t.execute_ns) /. t.total_ns)

(* Amdahl: the best speedup [domains] workers can extract when only the
   execution span parallelizes. *)
let amdahl_speedup t ~domains =
  let s = serial_fraction t in
  1.0 /. (s +. ((1.0 -. s) /. float_of_int (Stdlib.max 1 domains)))

let share t part = if t.total_ns <= 0.0 then 0.0 else part /. t.total_ns

let to_json t =
  Printf.sprintf
    "{\"steps\":%d,\"total_ms\":%.3f,\"transport\":%.4f,\"execute\":%.4f,\"execute_serial\":%.4f,\"merge\":%.4f,\"gc\":%.4f,\"bookkeeping\":%.4f,\"marking\":%.4f,\"reduction\":%.4f,\"serial_fraction\":%.4f}"
    t.steps (t.total_ns /. 1e6) (share t t.transport_ns) (share t t.execute_ns)
    (share t t.sexec_ns) (share t t.merge_ns) (share t t.gc_ns) (share t t.book_ns)
    (share t t.mark_ns) (share t t.red_ns) (serial_fraction t)
