open Dgr_graph
open Dgr_task

(** The distributed machine: n autonomous PEs with local task pools, a
    message network, the reduction process, and one of four memory-
    management regimes. Execution is a deterministic discrete-step
    simulation — each step every PE executes up to [tasks_per_step] tasks
    from its pool, spawned tasks travel [1] step locally or [latency]
    steps across PE boundaries.

    Regimes:
    - [No_gc]: the graph only grows (control runs, and the workload
      generator for E7's "unbounded irrelevant work" ablation);
    - [Concurrent _]: the paper's system — endless M_T/M_R cycles running
      {e while reduction mutates the graph}, restructure charged as the
      only pause;
    - [Stop_the_world _]: halt everything and trace (§4's strawman);
    - [Refcount]: distributed reference counting (§4's other strawman).

    Pauses are modeled by converting synchronous work (STW trace+sweep,
    concurrent restructure sweep) into skipped execution steps at the
    machine's aggregate throughput. *)

type gc_mode =
  | No_gc
  | Concurrent of { deadlock_every : int; idle_gap : int }
      (** [deadlock_every]: run M_T every k-th cycle (0 = never);
          [idle_gap]: steps between a cycle's end and the next start *)
  | Stop_the_world of { every : int }
  | Refcount

type config = {
  num_pes : int;
  latency : int;  (** cross-PE message delay, in steps (local = 1) *)
  tasks_per_step : int;  (** per-PE execution bandwidth *)
  marking_per_step : int;
      (** extra per-PE budget for marking tasks, which are much lighter
          than reduction tasks (§6) *)
  gc_work_factor : int;
      (** GC work units (trace/sweep one vertex) per task slot, used when
          converting synchronous collection work into pause steps *)
  heap_size : int option;
      (** bound on the vertex table — §2.2's finite V. Template expansion
          stalls when the free list cannot supply it, which is what makes
          eager evaluation "resources permitting" (§3.2); collections are
          additionally triggered by memory pressure. [None] = unbounded. *)
  pool_policy : Pool.policy;
  speculate_if : bool;
  gc : gc_mode;
  marking : Dgr_core.Cycle.scheme;
      (** [Tree] (Figs 4-1/5-1/5-3, the default) or [Flood_counters]
          (the §6 space optimization: counters instead of a marking
          tree). *)
  recover_deadlock : bool;
      (** footnote 5's [is-bottom] pseudo-function: rewrite detected
          deadlocked operators to an error value and answer their
          requesters, so one deadlocked computation cannot hang the
          machine (default false — detection only). *)
  jitter : float;
      (** probability that a remote message takes extra (seeded-random)
          delay, reordering deliveries; 0.0 = fixed latency *)
  seed : int;  (** seed for all of the machine's randomness *)
  faults : Faults.spec;
      (** the fault plane: seeded message drop/duplication/delay and
          transient PE stalls, with reliable delivery layered on the
          network (see {!Faults} and {!Network}). [Faults.none] (the
          default) leaves every fault path byte-identical to a machine
          without the plane. Fault randomness rides [fault_seed]'s own
          streams, never [seed]'s. *)
}

val default_config : config
(** 4 PEs, latency 4, 2 tasks/step (+8 marking), [Dynamic] pools,
    speculation on, concurrent GC with M_T every cycle and idle gap 50. *)

type t

val create :
  ?recorder:Dgr_obs.Recorder.t ->
  ?config:config ->
  Graph.t ->
  Dgr_reduction.Template.registry ->
  t
(** [recorder] (default none) turns on structured event tracing: it is
    threaded through the network, pools, mutator, reducer and marking
    controller, receives every task send/deliver/execute, purge, phase
    transition, pause, heap-pressure and verdict event, and samples the
    per-PE time series once per [sample_every] steps (see
    {!Dgr_obs.Recorder}). With no recorder the instrumented paths cost a
    single branch. *)

val recorder : t -> Dgr_obs.Recorder.t option

val config : t -> config

val graph : t -> Graph.t

val reducer : t -> Dgr_reduction.Reducer.t

val mutator : t -> Dgr_core.Mutator.t

val cycle : t -> Dgr_core.Cycle.t option
(** The GC controller, in [Concurrent] mode. *)

val refcount : t -> Dgr_baseline.Refcount.t option

val metrics : t -> Metrics.t

val faults : t -> Faults.t option
(** The live fault plane, when [config.faults] is active: its counters
    (drops, dups, retransmits, suppressed redeliveries, stalls) are the
    ground truth the per-step metrics sync from. *)

val now : t -> int

val inject_root_demand : t -> unit
(** Send the distinguished initial task [<-,root>]. *)

val inject : t -> Task.t -> unit
(** Route an arbitrary task (tests and scenario builders). *)

val step : t -> unit

val run : ?max_steps:int -> ?stop:(t -> bool) -> t -> int
(** Step until the stop condition holds or the budget is exhausted;
    returns steps executed this call. The default stop condition is
    {!finished}; passing [stop] {e replaces} it (e.g. to keep the
    collector cycling after the result, or to wait for a deadlock
    verdict). Without a concurrent collector the machine also stops once
    fully quiescent. [max_steps] defaults to 1_000_000. *)

val result : t -> Label.value option

val finished : t -> bool

val quiescent : t -> bool
(** No tasks pooled or in flight and no marking cycle mid-phase. *)

val pending_tasks : t -> Task.t list
(** Everything pooled + in flight (reduction and marking). *)

val pending_reduction_tasks : t -> Task.reduction list

val locate_task : t -> (Task.t -> bool) -> string list
(** Where matching pending tasks currently sit ("pool[pe=N] …" or
    "network …"); a debugging aid. *)

val network_entries : t -> (int * Task.t) list
(** [(arrival, task)] for every in-flight message (debugging aid). *)
