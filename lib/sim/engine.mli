open Dgr_graph
open Dgr_task

(** The distributed machine: n autonomous PEs with local task pools, a
    message network, the reduction process, and one of four memory-
    management regimes. Execution is a deterministic discrete-step
    simulation — each step every PE executes up to [tasks_per_step] tasks
    from its pool, spawned tasks travel [1] step locally or [latency]
    steps across PE boundaries.

    Regimes:
    - [No_gc]: the graph only grows (control runs, and the workload
      generator for E7's "unbounded irrelevant work" ablation);
    - [Concurrent _]: the paper's system — endless M_T/M_R cycles running
      {e while reduction mutates the graph}, restructure charged as the
      only pause;
    - [Stop_the_world _]: halt everything and trace (§4's strawman);
    - [Refcount]: distributed reference counting (§4's other strawman).

    Pauses are modeled by converting synchronous work (STW trace+sweep,
    concurrent restructure sweep) into skipped execution steps at the
    machine's aggregate throughput. *)

type gc_mode =
  | No_gc
  | Concurrent of { deadlock_every : int; idle_gap : int }
      (** [deadlock_every]: run M_T every k-th cycle (0 = never);
          [idle_gap]: steps between a cycle's end and the next start *)
  | Stop_the_world of { every : int }
  | Refcount

(** Machine configuration, grouped by concern: [machine] (the PEs and
    their scheduling), [gc] (the memory-management regime), [network]
    (the interconnect and its fault plane). Build one with {!Config.make}
    — named optional arguments with the historical defaults — and derive
    variants with the [with_*] updaters, so adding a knob never breaks a
    caller:

    {[
      let cfg = Engine.Config.make ~num_pes:8 ~gc:Engine.Refcount () in
      let faster = Engine.Config.with_latency 1 cfg
    ]} *)
module Config : sig
  type machine = {
    num_pes : int;
    tasks_per_step : int;  (** per-PE execution bandwidth *)
    marking_per_step : int;
        (** extra per-PE budget for marking tasks, which are much lighter
            than reduction tasks (§6) *)
    pool_policy : Pool.policy;
    speculate_if : bool;
    seed : int;  (** seed for all of the machine's scheduling randomness *)
    domains : int;
        (** OS-level shards: the PEs are split into [domains] contiguous
            ranges, each stepped on its own OCaml domain between step
            barriers. Purely an execution knob — live sets, verdicts and
            digests for a (config, seed) pair are identical at every
            shard count, and [1] (the default) runs everything on the
            calling domain. Clamped to [[1, num_pes]]. *)
  }

  type gc = {
    mode : gc_mode;
    heap_size : int option;
        (** bound on the vertex table — §2.2's finite V. Template
            expansion stalls when the free list cannot supply it, which
            is what makes eager evaluation "resources permitting" (§3.2);
            collections are additionally triggered by memory pressure.
            [None] = unbounded. *)
    gc_work_factor : int;
        (** GC work units (trace/sweep one vertex) per task slot, used
            when converting synchronous collection work into pause
            steps *)
    marking : Dgr_core.Cycle.scheme;
        (** [Tree] (Figs 4-1/5-1/5-3, the default) or [Flood_counters]
            (the §6 space optimization: counters instead of a marking
            tree). *)
    recover_deadlock : bool;
        (** footnote 5's [is-bottom] pseudo-function: rewrite detected
            deadlocked operators to an error value and answer their
            requesters, so one deadlocked computation cannot hang the
            machine (default false — detection only). *)
  }

  type network = {
    latency : int;  (** cross-PE message delay, in steps (local = 1) *)
    jitter : float;
        (** probability that a remote message takes extra (seeded-random)
            delay, reordering deliveries; 0.0 = fixed latency *)
    faults : Faults.spec;
        (** the fault plane: seeded message drop/duplication/delay,
            transient PE stalls, and whole-PE crashes with checkpointed
            recovery ([crash] / [crash_down_max]; see {!inject_crash}
            for the crash semantics), with reliable delivery layered on
            the network (see {!Faults} and {!Network}). [Faults.none]
            (the default) leaves every fault path byte-identical to a
            machine without the plane. Fault randomness rides
            [fault_seed]'s own streams, never [seed]'s. *)
    batch : bool;
        (** frame batching (default true): tasks staged on the same
            (src, dst) link for the same arrival step ride one data
            frame, and identical marks within a batch coalesce (see
            {!Network}). [false] restores one task per frame — the
            paper's literal one-task-per-message transport — for A/B
            measurement; task-level arrival steps and per-link order
            are identical either way. *)
  }

  type t = { machine : machine; gc : gc; network : network }

  val make :
    ?num_pes:int ->
    ?latency:int ->
    ?tasks_per_step:int ->
    ?marking_per_step:int ->
    ?gc_work_factor:int ->
    ?heap_size:int option ->
    ?pool_policy:Pool.policy ->
    ?speculate_if:bool ->
    ?gc:gc_mode ->
    ?marking:Dgr_core.Cycle.scheme ->
    ?recover_deadlock:bool ->
    ?jitter:float ->
    ?seed:int ->
    ?faults:Faults.spec ->
    ?domains:int ->
    ?batch:bool ->
    unit ->
    t
  (** Smart constructor; every omitted knob takes the historical default:
      4 PEs, latency 4, 2 tasks/step (+8 marking), heap 50k, [Dynamic]
      pools, speculation on, concurrent GC with M_T every cycle and idle
      gap 50, [Tree] marking, no jitter, no faults, seed 0, 1 domain,
      batching on. *)

  val default : t
  (** [make ()]. *)

  (** {2 Flat accessors} *)

  val num_pes : t -> int
  val latency : t -> int
  val tasks_per_step : t -> int
  val marking_per_step : t -> int
  val gc_work_factor : t -> int
  val heap_size : t -> int option
  val pool_policy : t -> Pool.policy
  val speculate_if : t -> bool
  val gc : t -> gc_mode
  val marking : t -> Dgr_core.Cycle.scheme
  val recover_deadlock : t -> bool
  val jitter : t -> float
  val seed : t -> int
  val faults : t -> Faults.spec
  val domains : t -> int
  val batch : t -> bool

  (** {2 Updaters}

      [with_x v cfg] is [cfg] with knob [x] set to [v]; composes with
      [|>]. *)

  val with_num_pes : int -> t -> t
  val with_latency : int -> t -> t
  val with_tasks_per_step : int -> t -> t
  val with_marking_per_step : int -> t -> t
  val with_gc_work_factor : int -> t -> t
  val with_heap_size : int option -> t -> t
  val with_pool_policy : Pool.policy -> t -> t
  val with_speculate_if : bool -> t -> t
  val with_gc : gc_mode -> t -> t
  val with_marking : Dgr_core.Cycle.scheme -> t -> t
  val with_recover_deadlock : bool -> t -> t
  val with_jitter : float -> t -> t
  val with_seed : int -> t -> t
  val with_faults : Faults.spec -> t -> t
  val with_domains : int -> t -> t
  val with_batch : bool -> t -> t
end

type config = Config.t

type t

val create :
  ?recorder:Dgr_obs.Recorder.t ->
  ?config:config ->
  Graph.t ->
  Dgr_reduction.Template.registry ->
  t
(** [recorder] (default none) turns on structured event tracing: it is
    threaded through the network, pools, mutator, reducer and marking
    controller, receives every task send/deliver/execute, purge, phase
    transition, pause, heap-pressure and verdict event, and samples the
    per-PE time series once per [sample_every] steps (see
    {!Dgr_obs.Recorder}). With no recorder the instrumented paths cost a
    single branch. *)

val recorder : t -> Dgr_obs.Recorder.t option

val config : t -> config

val graph : t -> Graph.t

val reducer : t -> Dgr_reduction.Reducer.t

val mutator : t -> Dgr_core.Mutator.t

val cycle : t -> Dgr_core.Cycle.t option
(** The GC controller, in [Concurrent] mode. *)

val refcount : t -> Dgr_baseline.Refcount.t option

val metrics : t -> Metrics.t

val lineage : t -> Dgr_obs.Lineage.t
(** The machine's causal-lineage ticket store. {!inject} mints a fresh
    lineage id; every reduction task the machine pools on behalf of that
    injection — transitively, through every send — carries it, and its
    per-hop latency decomposition (network transit, retransmit delay,
    queue wait) is folded into {!metrics}' histograms at execution.
    Ticket allocation is serial and deterministic, so per-lineage
    aggregates are identical at every [domains] value. *)

val profile : t -> Profile.t
(** Wall-clock step-phase attribution (transport / execute / merge / GC /
    bookkeeping) and the measured Amdahl serial fraction. Always on —
    the readings are two [gettimeofday] calls per phase — but never part
    of deterministic artifacts. *)

val faults : t -> Faults.t option
(** The live fault plane, when [config.faults] is active: its counters
    (drops, dups, retransmits, suppressed redeliveries, stalls) are the
    ground truth the per-step metrics sync from. *)

val now : t -> int

val inject_root_demand : t -> unit
(** Send the distinguished initial task [<-,root>]. *)

val inject : t -> Task.t -> unit
(** Route an arbitrary task (tests and scenario builders). *)

val inject_crash : t -> pe:int -> down:int -> unit
(** Crash [pe] immediately (tests and scenario builders): its pool,
    in-flight frames on both link directions and striped graph segment
    are lost; the segment is restored from a checkpoint synced at the
    moment of the call (so the restore is exact), its live vertices are
    re-homed onto the surviving PEs, and an interrupted marking phase is
    restarted. The PE executes nothing for [down] steps, then comes back
    up empty-handed. Works on machines with or without a fault plane.
    Raises [Invalid_argument] if [pe] is out of range or already down,
    if [down < 1], or if the crash would leave fewer than one survivor.
    Crashes driven by {!Config}'s [faults.crash] rate follow exactly this
    path, scheduled by seeded dice at the top of each step. *)

val pe_down : t -> int -> bool
(** Whether a PE is currently crashed (always false out of range). *)

val step : t -> unit
(** One discrete step. A step with no serial-only machinery in play (no
    refcounting, no fault plane, marking controller idle) is {e buffered}:
    each PE's budget runs against a private context — its own splitmix
    scheduling stream, outgoing-message mailbox, metrics, reducer
    counters and event buffer — and the contexts are merged into the
    shared machine at a step barrier in ascending PE order. When
    [Config.domains > 1] the buffered budgets run on a pool of OCaml
    domains (spawned lazily on the first parallel step; see {!dispose});
    because the merge order is fixed and whether a step buffers never
    depends on the shard count, results are bit-identical at every
    [domains] value. *)

val dispose : t -> unit
(** Stop and join the worker domains, if any were spawned. Idempotent;
    an engine is usable (serially) after disposal, but call this before
    dropping any engine run with [domains > 1] — the runtime caps the
    number of live domains. *)

val enable_ownership_checks : t -> unit
(** Install {!Dgr_core.Invariants.ownership_guard} on the mutator: every
    edge-set mutation then verifies that the executing PE owns the vertex
    it mutates (vertices born this step are exempt — a PE wires up its
    own fresh template vertices before publishing them). This is the
    discipline that makes buffered steps race-free; the guard makes
    violations fail loudly in tests instead of corrupting a run. *)

val run : ?max_steps:int -> ?stop:(t -> bool) -> t -> int
(** Step until the stop condition holds or the budget is exhausted;
    returns steps executed this call. The default stop condition is
    {!finished}; passing [stop] {e replaces} it (e.g. to keep the
    collector cycling after the result, or to wait for a deadlock
    verdict). Without a concurrent collector the machine also stops once
    fully quiescent. [max_steps] defaults to 1_000_000. *)

val result : t -> Label.value option

val finished : t -> bool

val quiescent : t -> bool
(** No tasks pooled or in flight and no marking cycle mid-phase. *)

val pending_tasks : t -> Task.t list
(** Everything pooled + in flight (reduction and marking). *)

val pending_reduction_tasks : t -> Task.reduction list

val locate_task : t -> (Task.t -> bool) -> string list
(** Where matching pending tasks currently sit ("pool[pe=N] …" or
    "network …"); a debugging aid. *)

val network_entries : t -> (int * Task.t) list
(** [(arrival, task)] for every in-flight message (debugging aid). *)
