open Dgr_util

type t = {
  mutable steps : int;
  mutable reduction_executed : int;
  mutable marking_executed : int;
  mutable stale_marks_dropped : int;
  mutable remote_messages : int;
  mutable local_messages : int;
  mutable tasks_purged : int;
  mutable cycles_completed : int;
  mutable stw_collections : int;
  pauses : Stats.t;
  mutable total_pause_steps : int;
  mutable completion_step : int option;
  pool_depth : Stats.t;
  mutable peak_live : int;
  mutable deadlocks_recovered : int;
  mutable msgs_dropped : int;
  mutable msgs_duplicated : int;
  mutable msgs_delayed : int;
  mutable retransmits : int;
  mutable dup_suppressed : int;
  mutable stalls : int;
  mutable stall_steps : int;
  (* crash plane (serial-only; never absorbed) *)
  mutable crashes : int;
  mutable recoveries : int;
  mutable crash_rehomed : int;
  mutable crash_lost_tasks : int;
  mutable frames_sent : int;
  mutable acks_sent : int;
  mutable acks_piggybacked : int;
  mutable tasks_sent : int;
  mutable marks_coalesced : int;
  (* per-task latency decomposition, recorded at execution from the
     task's lineage ticket: end-to-end = network + retransmit + queue +
     1 (the execution step itself) *)
  lat_e2e : Dgr_obs.Hist.t;
  lat_queue : Dgr_obs.Hist.t;
  lat_net : Dgr_obs.Hist.t;
  lat_retx : Dgr_obs.Hist.t;
  (* downtime per crash→recover episode (serial-only; never absorbed) *)
  lat_recovery : Dgr_obs.Hist.t;
  (* watchdog verdicts (serial-only; never absorbed) *)
  mutable health_mark_stalls : int;
  mutable health_quiescence_stalls : int;
  mutable health_retx_storms : int;
}

let create () =
  {
    steps = 0;
    reduction_executed = 0;
    marking_executed = 0;
    stale_marks_dropped = 0;
    remote_messages = 0;
    local_messages = 0;
    tasks_purged = 0;
    cycles_completed = 0;
    stw_collections = 0;
    pauses = Stats.create ();
    total_pause_steps = 0;
    completion_step = None;
    pool_depth = Stats.create ();
    peak_live = 0;
    deadlocks_recovered = 0;
    msgs_dropped = 0;
    msgs_duplicated = 0;
    msgs_delayed = 0;
    retransmits = 0;
    dup_suppressed = 0;
    stalls = 0;
    stall_steps = 0;
    crashes = 0;
    recoveries = 0;
    crash_rehomed = 0;
    crash_lost_tasks = 0;
    frames_sent = 0;
    acks_sent = 0;
    acks_piggybacked = 0;
    tasks_sent = 0;
    marks_coalesced = 0;
    lat_e2e = Dgr_obs.Hist.create ();
    lat_queue = Dgr_obs.Hist.create ();
    lat_net = Dgr_obs.Hist.create ();
    lat_retx = Dgr_obs.Hist.create ();
    lat_recovery = Dgr_obs.Hist.create ();
    health_mark_stalls = 0;
    health_quiescence_stalls = 0;
    health_retx_storms = 0;
  }

let record_pause t steps =
  Stats.add t.pauses (float_of_int steps);
  t.total_pause_steps <- t.total_pause_steps + steps

(* Fold a per-PE metrics sink into [t] and zero it. Only the counters a
   PE can touch while executing its budget are merged — pauses, pool
   depth, completion and the fault/GC counters are recorded serially by
   the engine and never live in a per-PE sink. The whole fold is gated
   on the sink being dirty at all, so a PE that executed nothing this
   step costs the barrier one branch (the counters are non-negative, so
   a zero sum means every one is zero); the histogram absorbs below are
   themselves O(buckets touched). *)
let absorb t src =
  if
    src.reduction_executed + src.marking_executed + src.stale_marks_dropped
    + src.remote_messages + src.local_messages + src.tasks_purged
    + src.deadlocks_recovered <> 0
    || Dgr_obs.Hist.count src.lat_e2e > 0
  then begin
    t.reduction_executed <- t.reduction_executed + src.reduction_executed;
    src.reduction_executed <- 0;
    t.marking_executed <- t.marking_executed + src.marking_executed;
    src.marking_executed <- 0;
    t.stale_marks_dropped <- t.stale_marks_dropped + src.stale_marks_dropped;
    src.stale_marks_dropped <- 0;
    t.remote_messages <- t.remote_messages + src.remote_messages;
    src.remote_messages <- 0;
    t.local_messages <- t.local_messages + src.local_messages;
    src.local_messages <- 0;
    t.tasks_purged <- t.tasks_purged + src.tasks_purged;
    src.tasks_purged <- 0;
    t.deadlocks_recovered <- t.deadlocks_recovered + src.deadlocks_recovered;
    src.deadlocks_recovered <- 0;
    (* histogram merge is associative and order-independent, so per-PE
       latency sinks absorb to the same totals at any domain count *)
    Dgr_obs.Hist.absorb ~into:t.lat_e2e src.lat_e2e;
    Dgr_obs.Hist.absorb ~into:t.lat_queue src.lat_queue;
    Dgr_obs.Hist.absorb ~into:t.lat_net src.lat_net;
    Dgr_obs.Hist.absorb ~into:t.lat_retx src.lat_retx
  end

(* Machine-readable run metrics. All scalar counters plus fixed summary
   statistics for the sampled series; field order is fixed and floats are
   printed with a fixed precision, so equal metrics serialize to equal
   bytes (the bench trajectories diff these files). *)
(* v4: crash counters (crashes/recoveries/crash_rehomed/crash_lost_tasks)
   and the "recovery" latency histogram.
   v5: stale_marks_dropped (epoch-tagged marking — debris from a
   superseded wave dropped at dispatch). *)
let schema_version = 5

let to_json t =
  let b = Buffer.create 512 in
  let stats name (s : Stats.t) =
    if Stats.count s = 0 then
      Printf.sprintf "\"%s\":{\"count\":0,\"total\":0,\"mean\":0.00,\"max\":0}" name
    else
      Printf.sprintf "\"%s\":{\"count\":%d,\"total\":%.0f,\"mean\":%.2f,\"max\":%.0f}" name
        (Stats.count s) (Stats.total s) (Stats.mean s) (Stats.max_value s)
  in
  Printf.bprintf b "{\"schema_version\":%d," schema_version;
  Printf.bprintf b
    "\"steps\":%d,\"reduction_executed\":%d,\"marking_executed\":%d,\"stale_marks_dropped\":%d,\"remote_messages\":%d,\"local_messages\":%d,\"tasks_purged\":%d,\"cycles_completed\":%d,\"stw_collections\":%d,\"total_pause_steps\":%d,%s,\"completion_step\":%s,%s,\"peak_live\":%d,\"deadlocks_recovered\":%d,\"msgs_dropped\":%d,\"msgs_duplicated\":%d,\"msgs_delayed\":%d,\"retransmits\":%d,\"dup_suppressed\":%d,\"stalls\":%d,\"stall_steps\":%d"
    t.steps t.reduction_executed t.marking_executed t.stale_marks_dropped t.remote_messages t.local_messages
    t.tasks_purged t.cycles_completed t.stw_collections t.total_pause_steps
    (stats "pauses" t.pauses)
    (match t.completion_step with Some s -> string_of_int s | None -> "null")
    (stats "pool_depth" t.pool_depth)
    t.peak_live t.deadlocks_recovered t.msgs_dropped t.msgs_duplicated t.msgs_delayed
    t.retransmits t.dup_suppressed t.stalls t.stall_steps;
  Printf.bprintf b
    ",\"crashes\":%d,\"recoveries\":%d,\"crash_rehomed\":%d,\"crash_lost_tasks\":%d"
    t.crashes t.recoveries t.crash_rehomed t.crash_lost_tasks;
  Printf.bprintf b
    ",\"frames_sent\":%d,\"acks_sent\":%d,\"acks_piggybacked\":%d,\"tasks_sent\":%d,\"marks_coalesced\":%d,\"tasks_per_frame\":%.2f"
    t.frames_sent t.acks_sent t.acks_piggybacked t.tasks_sent t.marks_coalesced
    (if t.frames_sent = 0 then 0.0
     else float_of_int t.tasks_sent /. float_of_int t.frames_sent);
  Printf.bprintf b
    ",\"latency\":{\"e2e\":%s,\"queue\":%s,\"net\":%s,\"retx\":%s,\"recovery\":%s}"
    (Dgr_obs.Hist.to_json t.lat_e2e)
    (Dgr_obs.Hist.to_json t.lat_queue)
    (Dgr_obs.Hist.to_json t.lat_net)
    (Dgr_obs.Hist.to_json t.lat_retx)
    (Dgr_obs.Hist.to_json t.lat_recovery);
  Printf.bprintf b
    ",\"health\":{\"mark_wave_stalls\":%d,\"quiescence_stalls\":%d,\"retransmit_storms\":%d}}"
    t.health_mark_stalls t.health_quiescence_stalls t.health_retx_storms;
  Buffer.contents b

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>steps=%d reduction=%d marking=%d msgs(remote/local)=%d/%d purged=%d cycles=%d \
     stw=%d pause(total/max)=%d/%.0f completion=%s peak_live=%d@]"
    t.steps t.reduction_executed t.marking_executed t.remote_messages t.local_messages
    t.tasks_purged t.cycles_completed t.stw_collections t.total_pause_steps
    (if Stats.count t.pauses = 0 then 0.0 else Stats.max_value t.pauses)
    (match t.completion_step with Some s -> string_of_int s | None -> "-")
    t.peak_live;
  if
    t.msgs_dropped > 0 || t.msgs_duplicated > 0 || t.msgs_delayed > 0 || t.retransmits > 0
    || t.stalls > 0
  then
    Format.fprintf fmt
      "@ @[faults: dropped=%d duplicated=%d delayed=%d retransmits=%d dup_suppressed=%d \
       stalls=%d stall_steps=%d@]"
      t.msgs_dropped t.msgs_duplicated t.msgs_delayed t.retransmits t.dup_suppressed
      t.stalls t.stall_steps;
  if t.frames_sent > 0 then
    Format.fprintf fmt
      "@ @[transport: frames=%d tasks=%d tasks/frame=%.2f acks=%d(+%d piggybacked) \
       coalesced=%d@]"
      t.frames_sent t.tasks_sent
      (float_of_int t.tasks_sent /. float_of_int t.frames_sent)
      t.acks_sent t.acks_piggybacked t.marks_coalesced;
  if Dgr_obs.Hist.count t.lat_e2e > 0 then
    Format.fprintf fmt
      "@ @[latency(e2e steps): p50=%d p90=%d p99=%d p999=%d max=%d over %d tasks@]"
      (Dgr_obs.Hist.percentile t.lat_e2e 50.0)
      (Dgr_obs.Hist.percentile t.lat_e2e 90.0)
      (Dgr_obs.Hist.percentile t.lat_e2e 99.0)
      (Dgr_obs.Hist.percentile t.lat_e2e 99.9)
      (Dgr_obs.Hist.max_value t.lat_e2e)
      (Dgr_obs.Hist.count t.lat_e2e);
  if t.crashes > 0 || t.recoveries > 0 then
    Format.fprintf fmt
      "@ @[crashes: crashed=%d recovered=%d rehomed=%d lost_tasks=%d@]"
      t.crashes t.recoveries t.crash_rehomed t.crash_lost_tasks;
  if t.health_mark_stalls > 0 || t.health_quiescence_stalls > 0
     || t.health_retx_storms > 0 then
    Format.fprintf fmt
      "@ @[health: mark_wave_stalls=%d quiescence_stalls=%d retransmit_storms=%d@]"
      t.health_mark_stalls t.health_quiescence_stalls t.health_retx_storms
