open Dgr_util

(** The fault plane: seeded injection of network and PE faults.

    The paper argues the marking algorithm correct over an idealized
    network — every task eventually delivered, exactly once (§2.1). This
    module is the adversary that breaks that assumption in controlled,
    reproducible ways: message frames are dropped, duplicated or delayed
    as they transit {!Network}, and PEs transiently stall (crash-restart
    with memory preserved — the PE stops executing for a while; its pool
    and heap survive). The reliable-delivery layer in {!Network} must
    then re-earn the exactly-once-effect guarantee the marking and
    reduction planes rely on.

    Beyond stalls, a PE can {e crash}: its task pool, its striped vertex
    segment and every frame in flight on links touching it (both
    directions) are lost, and the PE stays down for a seeded number of
    steps before recovering empty-handed. The engine owns the recovery
    machinery (per-PE incremental checkpoints, vid re-homing to the
    survivors, mark-wave restart — see {!Dgr_sim.Engine}); this module
    only rolls the dice and carries the knobs. Crash assumptions: at
    least one PE always survives (a crash that would down the last
    standing PE is suppressed), crashed memory is fail-stop (never
    corrupt, simply gone), and the checkpoint a PE recovers from is the
    one synced at the top of the crash step, so no acknowledged graph
    state is ever rolled back.

    All randomness comes from [fault_seed], on streams separate from the
    engine's scheduling seed, so a (config, seed, fault-spec) triple
    replays byte-identically and fault rates can vary without perturbing
    the fault-free schedule. *)

type spec = {
  drop : float;  (** P(a frame in transit is lost) *)
  duplicate : float;  (** P(a frame is delivered twice) *)
  delay : float;  (** P(a frame takes extra, seeded delay — reordering) *)
  stall : float;  (** per-PE, per-step P(a transient stall begins) *)
  stall_max : int;  (** longest stall, in steps (min 1) *)
  crash : float;  (** per-PE, per-step P(a whole-PE crash begins) *)
  crash_down_max : int;  (** longest downtime after a crash, in steps (min 1) *)
  fault_seed : int;
}

val none : spec
(** All probabilities zero: the idealized network. *)

val active : spec -> bool
(** Whether any fault probability is positive. *)

type t = {
  spec : spec;
  net_rng : Rng.t;  (** rolls for frame faults, in transmission order *)
  stall_rng : Rng.t;  (** rolls for PE stalls, one per (step, pe) *)
  crash_rng : Rng.t;
      (** rolls for PE crashes, one per (step, up PE); an independent
          stream so crash rates never perturb the net/stall schedules *)
  mutable drops : int;
  mutable dups : int;
  mutable delays : int;
  mutable retransmits : int;  (** counted by {!Network} *)
  mutable dup_suppressed : int;  (** redeliveries swallowed by dedup *)
  mutable stalls : int;
  mutable stall_steps : int;  (** execution steps lost to stalls *)
}

val create : spec -> t

val drops_frame : t -> bool
(** Roll the drop fault for one frame transmission; counts on hit. *)

val duplicates_frame : t -> bool

val extra_delay : t -> latency:int -> int
(** [0] on a miss; [1 + uniform latency] extra steps on a hit (counted). *)

val stall_begins : t -> pe:int -> bool
(** Roll the stall fault for one (step, PE); counting is the caller's
    job (it knows the drawn length). [pe] is accepted for clarity only —
    the roll order (engine iterates PEs in order) is what keeps the
    stream deterministic. *)

val stall_length : t -> int
(** [1 + uniform stall_max] steps. *)

val crash_begins : t -> pe:int -> bool
(** Roll the crash fault for one (step, up PE). As with stalls, [pe] is
    documentation — the engine's ascending-PE roll order is what keeps
    the stream deterministic at every domain count. *)

val down_length : t -> int
(** [1 + uniform crash_down_max] steps of downtime. *)
