open Dgr_graph

(** Function-body templates.

    A template is the static description of the subgraph spliced in by the
    paper's [expand-node] primitive when an [Apply] vertex is reduced: "an
    arbitrary subgraph (obtained from the free-list)" whose vertices may
    reference the applied vertex's original children (the actuals).

    Templates are straight-line slot programs: slot [i] allocates one
    vertex with a label and operands that are either formal parameters
    (replaced by the actual argument vertices at instantiation) or
    earlier slots (enabling shared subexpressions inside a body). The
    {e entry} slot is the body's root. *)

type operand =
  | Param of int  (** 0-based formal parameter *)
  | Slot of int  (** an earlier slot of this template *)

type instr = { label : Label.t; operands : operand list }

type t = { name : string; arity : int; slots : instr array; entry : int }

val make : name:string -> arity:int -> instr list -> t
(** [entry] is the last slot. Validates that operands reference only
    earlier slots and in-range parameters; raises [Invalid_argument]
    otherwise. *)

val instantiate : ?from:int -> t -> Graph.t -> Dgr_core.Mutator.t -> actuals:Vid.t list -> Vid.t
(** Allocate one vertex per slot from the free list, wire operands with
    [Mutator.connect_fresh] (the subgraph is unreachable until the caller
    splices it), substitute actuals for parameters, and return the entry
    vertex. [from] is forwarded to [Graph.alloc] so a partitioned graph
    draws the slots from the expanding PE's local store. Raises
    [Invalid_argument] on an arity mismatch. *)

val size : t -> int
(** Number of vertices an instantiation allocates. *)

(** {1 Registry} *)

type registry

val create_registry : unit -> registry

val define : registry -> t -> unit
(** Raises [Invalid_argument] on duplicate names. *)

val find : registry -> string -> t option

val names : registry -> string list
