open Dgr_graph

type operand = Param of int | Slot of int

type instr = { label : Label.t; operands : operand list }

type t = { name : string; arity : int; slots : instr array; entry : int }

let make ~name ~arity instrs =
  let slots = Array.of_list instrs in
  if Array.length slots = 0 then invalid_arg "Template.make: empty body";
  Array.iteri
    (fun i instr ->
      List.iter
        (function
          | Param p ->
            if p < 0 || p >= arity then
              invalid_arg
                (Printf.sprintf "Template.make(%s): slot %d references parameter %d/%d" name i
                   p arity)
          | Slot s ->
            if s < 0 || s >= i then
              invalid_arg
                (Printf.sprintf
                   "Template.make(%s): slot %d references slot %d (must be earlier)" name i s))
        instr.operands)
    slots;
  { name; arity; slots; entry = Array.length slots - 1 }

let instantiate ?from t g mut ~actuals =
  if List.length actuals <> t.arity then
    invalid_arg
      (Printf.sprintf "Template.instantiate(%s): expected %d actuals, got %d" t.name t.arity
         (List.length actuals));
  let actuals = Array.of_list actuals in
  let vids = Array.make (Array.length t.slots) (-1) in
  Array.iteri
    (fun i instr ->
      let v = Graph.alloc ?from g instr.label in
      vids.(i) <- (Vertex.id v);
      List.iter
        (fun operand ->
          let child = match operand with Param p -> actuals.(p) | Slot s -> vids.(s) in
          Dgr_core.Mutator.connect_fresh mut ~parent:(Vertex.id v) ~child)
        instr.operands)
    t.slots;
  vids.(t.entry)

let size t = Array.length t.slots

type registry = (string, t) Hashtbl.t

let create_registry () : registry = Hashtbl.create 16

let define reg t =
  if Hashtbl.mem reg t.name then
    invalid_arg (Printf.sprintf "Template.define: duplicate template %s" t.name);
  Hashtbl.replace reg t.name t

let find reg name = Hashtbl.find_opt reg name

let names reg = Hashtbl.fold (fun k _ acc -> k :: acc) reg [] |> List.sort String.compare
