open Dgr_graph
open Dgr_task
open Task
module Mutator = Dgr_core.Mutator

type reduction_task_vec = Task.reduction Dgr_util.Vec.t

let src = Logs.Src.create "dgr.reducer" ~doc:"distributed graph reduction"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  graph : Graph.t;
  mut : Mutator.t;
  templates : Template.registry;
  send : Task.t -> unit;
  speculate_if : bool;
  speculation_reserve : int;
  recorder : Dgr_obs.Recorder.t option;
  parked : reduction_task_vec;
  mutable result : Label.value option;
  mutable requests_executed : int;
  mutable responds_executed : int;
  mutable cancels_executed : int;
  mutable expansions : int;
  mutable rewrites : int;
  mutable stale_dropped : int;
  mutable alloc_stalls : int;
  mutable stuck : (Vid.t * string) list;
  mutable rq_scratch : int array;
      (* reusable snapshot of one vertex's raw request rows (stride 3:
         who|-1, demand code, key) — lets the rewrite hot paths walk
         [requested] without building the entry list *)
}

let create ?(speculate_if = true) ?(speculation_reserve = 0) ?recorder ~graph ~mut
    ~templates ~send () =
  {
    graph;
    mut;
    templates;
    send;
    speculate_if;
    speculation_reserve;
    recorder;
    parked = Dgr_util.Vec.create ();
    result = None;
    requests_executed = 0;
    responds_executed = 0;
    cancels_executed = 0;
    expansions = 0;
    rewrites = 0;
    stale_dropped = 0;
    alloc_stalls = 0;
    stuck = [];
    rq_scratch = Array.make 24 0;
  }

let obs t kind =
  match t.recorder with None -> () | Some r -> Dgr_obs.Recorder.emit r kind

let initial_task t =
  let root = Graph.root t.graph in
  Task.request root Demand.Vital

let finished t = t.result <> None

let stale t = t.stale_dropped <- t.stale_dropped + 1

let mark_stuck t v reason =
  if not (List.mem_assoc v t.stuck) then begin
    t.stuck <- (v, reason) :: t.stuck;
    Log.warn (fun m -> m "v%d stuck: %s (behaves as ⊥)" v reason)
  end

let distinct vids =
  let rec loop seen = function
    | [] -> List.rev seen
    | v :: rest -> if List.exists (Vid.equal v) seen then loop seen rest else loop (v :: seen) rest
  in
  loop [] vids

let send_request t ~src:s ~dst ~demand ~key =
  t.send (Reduction (Request { src = s; dst; demand; key }))

let send_respond t ~src:s ~dst ~value ~key ~demand =
  t.send (Reduction (Respond { src = s; dst; value; key; demand }))

(* Demand all strict arguments (first-demand path of Prim). The graph
   records the {e relative} request type (strict args are vitally
   requested, §3.2/Fig 5-1); the spawned tasks carry the {e global} class
   [ctx] — a task spawned on behalf of an eager computation is itself
   eager ("an initially eager task may expand into a highly parallel
   workload of many other tasks"). *)
let demand_own_args t v vx ~ctx =
  let n = Vertex.arg_count vx in
  for i = 0 to n - 1 do
    let c = Vertex.arg vx i in
    let dup = ref false in
    for j = 0 to i - 1 do
      if Vid.equal (Vertex.arg vx j) c then dup := true
    done;
    if not !dup then begin
      Mutator.request_child t.mut ~v ~c ~demand:Demand.Vital;
      send_request t ~src:(Some v) ~dst:c ~demand:ctx ~key:c
    end
  done

(* True when an existing requester already makes [v] globally vital. *)
let has_vital_requester vx = Vertex.has_vital_requester vx

let rq_snapshot t vx =
  let n = Vertex.requested_count vx in
  if 3 * n > Array.length t.rq_scratch then t.rq_scratch <- Array.make (6 * (n + 1)) 0;
  Vertex.blit_requests vx t.rq_scratch

(* Answer every requester of [v] with [value] and forget them. The rows
   are snapshotted into the scratch buffer and walked newest-first,
   matching the order of the old [requested] list view. *)
let answer_all t v value =
  let vx = Graph.vertex t.graph v in
  let k = rq_snapshot t vx in
  let scratch = t.rq_scratch in
  for i = k - 1 downto 0 do
    let w = scratch.(3 * i) in
    let dst = if w < 0 then None else Some w in
    let demand = if scratch.((3 * i) + 1) = 0 then Demand.Eager else Demand.Vital in
    send_respond t ~src:v ~dst ~value ~key:scratch.((3 * i) + 2) ~demand
  done;
  (* [answer] removes all entries of a requester at once; answer each
     distinct requester exactly once, at its last row — the same order
     the old fold-and-prepend dedup produced. *)
  for i = 0 to k - 1 do
    let w = scratch.(3 * i) in
    let last = ref true in
    for j = i + 1 to k - 1 do
      if scratch.(3 * j) = w then last := false
    done;
    if !last then Mutator.answer t.mut ~at:v ~requester:(if w < 0 then None else Some w)
  done

(* Forward every pending requester of the indirection [v] to [target].
   The forwarded demand is also recorded on the edge v→target itself
   (request-type, Fig 5-1): demand has really propagated through [v], and
   M_R must see the path as requested or it would classify everything
   below an indirection as reserve. *)
let forward_requesters t v target =
  let vx = Graph.vertex t.graph v in
  if Vertex.requested_count vx > 0 then begin
    let demand = if has_vital_requester vx then Demand.Vital else Demand.Eager in
    Mutator.request_child t.mut ~v ~c:target ~demand
  end;
  let k = rq_snapshot t vx in
  let scratch = t.rq_scratch in
  for i = k - 1 downto 0 do
    let w = scratch.(3 * i) in
    let src = if w < 0 then None else Some w in
    let demand = if scratch.((3 * i) + 1) = 0 then Demand.Eager else Demand.Vital in
    send_request t ~src ~dst:target ~demand ~key:scratch.((3 * i) + 2)
  done;
  Vertex.clear_requesters vx

(* Rewrite [v] to a scalar/WHNF label: answer requesters, drop argument
   references (the contraction that creates garbage), clear state. *)
let finish_value t v label =
  let vx = Graph.vertex t.graph v in
  Vertex.set_label vx @@ label;
  t.rewrites <- t.rewrites + 1;
  (match Label.value_of_whnf ~self:v label with
  | Some value -> answer_all t v value
  | None -> assert false);
  (* [delete_reference] removes the first occurrence, so draining from the
     front deletes the children in the same order the old list walk did. *)
  while Vertex.arg_count vx > 0 do
    Mutator.delete_reference t.mut ~a:v ~b:(Vertex.arg vx 0)
  done;
  Vertex.clear_reduction_state vx

(* Rewrite [v] to an indirection onto its (sole remaining) child [target],
   forwarding all pending demand. *)
let become_indirection t v target =
  let vx = Graph.vertex t.graph v in
  Vertex.set_label vx @@ Label.Ind;
  t.rewrites <- t.rewrites + 1;
  forward_requesters t v target;
  Vertex.clear_reduction_state vx

let truthy = function
  | Label.V_bool b -> b
  | Label.V_int n -> n <> 0
  | Label.V_nil | Label.V_ref _ | Label.V_err _ -> false

(* --- primitive evaluation ------------------------------------------- *)

let eval_scalar p values =
  let int_of = function Label.V_int n -> Some n | _ -> None in
  let bool_of = function Label.V_bool b -> Some b | _ -> None in
  let module L = Label in
  let err = Error (Printf.sprintf "type error in %s" (L.prim_name p)) in
  (* ⊥-recovery values are contagious through strict operators
     (footnote 5): the requester learns its input was undefined. *)
  let first_err =
    List.find_opt (function L.V_err _ -> true | _ -> false) values
  in
  match first_err with
  | Some (L.V_err msg) -> Ok (L.Err msg)
  | _ ->
  match (p, values) with
  | L.Add, [ a; b ] | L.Sub, [ a; b ] | L.Mul, [ a; b ] | L.Div, [ a; b ] | L.Mod, [ a; b ]
    -> (
    match (int_of a, int_of b) with
    | Some x, Some y -> (
      match p with
      | L.Add -> Ok (L.Int (x + y))
      | L.Sub -> Ok (L.Int (x - y))
      | L.Mul -> Ok (L.Int (x * y))
      | L.Div -> if y = 0 then Error "division by zero" else Ok (L.Int (x / y))
      | L.Mod -> if y = 0 then Error "modulo by zero" else Ok (L.Int (x mod y))
      | _ -> assert false)
    | _ -> err)
  | L.Lt, [ a; b ] | L.Leq, [ a; b ] -> (
    match (int_of a, int_of b) with
    | Some x, Some y -> Ok (L.Bool (if p = L.Lt then x < y else x <= y))
    | _ -> err)
  | L.Eq, [ a; b ] -> Ok (L.Bool (L.equal_value a b))
  | L.And, [ a; b ] | L.Or, [ a; b ] -> (
    match (bool_of a, bool_of b) with
    | Some x, Some y -> Ok (L.Bool (if p = L.And then x && y else x || y))
    | _ -> err)
  | L.Not, [ a ] -> (
    match bool_of a with Some x -> Ok (L.Bool (not x)) | None -> err)
  | L.Neg, [ a ] -> ( match int_of a with Some x -> Ok (L.Int (-x)) | None -> err)
  | L.Is_nil, [ a ] -> Ok (L.Bool (a = L.V_nil))
  | (L.Head | L.Tail), _ -> assert false (* handled structurally *)
  | _, _ -> Error (Printf.sprintf "arity error in %s" (L.prim_name p))

(* --- task execution -------------------------------------------------- *)

let rec exec_request t ~src:s ~dst:v ~demand ~key =
  t.requests_executed <- t.requests_executed + 1;
  let vx = Graph.vertex t.graph v in
  if (Vertex.free vx) then stale t
  else
    match (Vertex.label vx) with
    | (Label.Int _ | Label.Bool _ | Label.Nil | Label.Cons | Label.Err _) as l ->
      let value = Option.get (Label.value_of_whnf ~self:v l) in
      send_respond t ~src:v ~dst:s ~value ~key ~demand
    | Label.Ind ->
      if Vertex.arg_count vx > 0 then begin
        let target = Vertex.arg vx 0 in
        (* Record the forwarded demand on the edge so the marking process
           sees the path as requested (never downgrades). *)
        Mutator.request_child t.mut ~v ~c:target ~demand;
        send_request t ~src:s ~dst:target ~demand ~key
      end
      else begin
        mark_stuck t v "dangling indirection";
        Mutator.record_request t.mut ~at:v ~requester:s ~demand ~key
      end
    | Label.Bottom -> Mutator.record_request t.mut ~at:v ~requester:s ~demand ~key
    | Label.Param _ | Label.Freed ->
      mark_stuck t v "request on template parameter or freed vertex";
      stale t
    | Label.Prim p ->
      let first = Vertex.req_count vx = 0 in
      let was_vital = has_vital_requester vx in
      Mutator.record_request t.mut ~at:v ~requester:s ~demand ~key;
      if first then begin
        if Vertex.arg_count vx <> Label.prim_arity p then
          mark_stuck t v
            (Printf.sprintf "%s applied to %d args (arity %d)" (Label.prim_name p)
               (Vertex.arg_count vx) (Label.prim_arity p))
        else demand_own_args t v vx ~ctx:demand
      end
      else if Demand.equal demand Demand.Vital && not was_vital then
        (* Eager → vital upgrade (§3.2 item 2): re-demand the pending
           arguments vitally so the whole speculative subcomputation is
           promoted. *)
        List.iter
          (fun c ->
            if Vertex.value_from vx c = None then
              send_request t ~src:(Some v) ~dst:c ~demand:Demand.Vital ~key:c)
          (distinct (Vertex.req_args vx))
    | Label.If ->
      let was_vital = has_vital_requester vx in
      Mutator.record_request t.mut ~at:v ~requester:s ~demand ~key;
      let n = Vertex.arg_count vx in
      if n = 3 && Vertex.req_count vx = 0 then begin
        let p = Vertex.arg vx 0 and th = Vertex.arg vx 1 and el = Vertex.arg vx 2 in
        Mutator.request_child t.mut ~v ~c:p ~demand:Demand.Vital;
        send_request t ~src:(Some v) ~dst:p ~demand ~key:p;
        if t.speculate_if then begin
          Mutator.request_child t.mut ~v ~c:th ~demand:Demand.Eager;
          send_request t ~src:(Some v) ~dst:th ~demand:Demand.Eager ~key:th;
          Mutator.request_child t.mut ~v ~c:el ~demand:Demand.Eager;
          send_request t ~src:(Some v) ~dst:el ~demand:Demand.Eager ~key:el
        end
      end
      else if n = 3 || n = 1 then begin
        if Demand.equal demand Demand.Vital && not was_vital then
          (* Upgrade: re-demand whatever we are still waiting on. *)
          List.iter
            (fun c ->
              if Vertex.value_from vx c = None then
                send_request t ~src:(Some v) ~dst:c ~demand:Demand.Vital ~key:c)
            (distinct (Vertex.req_args vx))
        (* else: demand already in flight *)
      end
      else mark_stuck t v "malformed if"
    | Label.Apply f -> (
      Mutator.record_request t.mut ~at:v ~requester:s ~demand ~key;
      match Template.find t.templates f with
      | None -> mark_stuck t v (Printf.sprintf "unknown function %s" f)
      | Some tpl ->
        if Vertex.arg_count vx <> tpl.Template.arity then
          mark_stuck t v
            (Printf.sprintf "%s applied to %d args (arity %d)" f (Vertex.arg_count vx)
               tpl.Template.arity)
        else if
          (* V is finite (§2.2): expansion draws vertices from F, and
             eager work is "resources permitting" (§3.2) — a non-vital
             expansion must leave [speculation_reserve] slots free so
             speculation can never starve the vital computation of
             memory. Class = destination's global priority when a cycle
             has classified it, else the source's, else the relative
             demand. *)
          let cls =
            match demand with
            | Demand.Vital ->
              (* A vital-flagged task is never blocked by a stale lower
                 verdict — upgrades travel by task between cycles. *)
              3
            | Demand.Eager -> (
              match (Vertex.sched_prior vx) with
              | 0 -> (
                match s with
                | Some src_v when (Vertex.sched_prior (Graph.vertex t.graph src_v)) > 0 ->
                  Int.min (Vertex.sched_prior (Graph.vertex t.graph src_v)) 2
                | Some _ | None -> 2)
              | c -> c)
          in
          let need =
            Template.size tpl + if cls >= 3 then 0 else t.speculation_reserve
          in
          Graph.headroom_for t.graph ~pe:(Vertex.pe vx) < need
        then begin
          t.alloc_stalls <- t.alloc_stalls + 1;
          obs t (Dgr_obs.Event.Alloc_stall { vid = v });
          Dgr_util.Vec.push t.parked (Request { src = s; dst = v; demand; key })
        end
        else begin
          let entry =
            Template.instantiate ~from:(Vertex.pe vx) tpl t.graph t.mut
              ~actuals:(Vertex.args vx)
          in
          Mutator.expand_node t.mut ~a:v ~entry;
          Vertex.set_label vx @@ Label.Ind;
          t.expansions <- t.expansions + 1;
          obs t (Dgr_obs.Event.Expand { vid = v; entry });
          forward_requesters t v entry;
          Vertex.clear_reduction_state vx
        end)

and exec_respond t ~src:responder ~dst ~value ~key =
  t.responds_executed <- t.responds_executed + 1;
  match dst with
  | None -> t.result <- Some value
  | Some r -> (
    let vx = Graph.vertex t.graph r in
    if (Vertex.free vx) then stale t
    else if not (Vertex.is_req_arg vx key) then stale t
    else begin
      Vertex.record_value vx ~from:key value;
      match (Vertex.label vx) with
      | Label.Prim p -> try_reduce_prim t r p
      | Label.If -> progress_if t r ~key ~value
      | Label.Int _ | Label.Bool _ | Label.Nil | Label.Cons | Label.Ind | Label.Apply _
      | Label.Bottom | Label.Err _ | Label.Param _ | Label.Freed ->
        stale t
    end);
  ignore responder

and try_reduce_prim t v p =
  let vx = Graph.vertex t.graph v in
  let ready = ref true in
  for i = 0 to Vertex.arg_count vx - 1 do
    if not (Vertex.has_value vx (Vertex.arg vx i)) then ready := false
  done;
  if !ready then begin
    match p with
    | Label.Head | Label.Tail -> (
      match List.map (fun c -> Option.get (Vertex.value_from vx c)) (Vertex.args vx) with
      | [ Label.V_ref cell ] -> reduce_projection t v p cell
      | [ _ ] -> mark_stuck t v (Label.prim_name p ^ " of a non-list value")
      | _ -> mark_stuck t v (Label.prim_name p ^ " arity error"))
    | _ -> (
      let values = List.map (fun c -> Option.get (Vertex.value_from vx c)) (Vertex.args vx) in
      match eval_scalar p values with
      | Ok label -> finish_value t v label
      | Error reason -> mark_stuck t v reason)
  end

and reduce_projection t v p cell =
  let cx = Graph.vertex t.graph cell in
  match ((Vertex.label cx), Vertex.args cx) with
  | Label.Cons, [ hd; tl ] ->
    let target = match p with Label.Head -> hd | _ -> tl in
    let vx = Graph.vertex t.graph v in
    (* Rewire v → target. If the cons cell is v's direct child the paper's
       witnessed add-reference applies; otherwise the general edge. *)
    if Vertex.has_arg vx cell then
      Mutator.add_reference t.mut ~a:v ~b:cell ~c:target
    else Mutator.add_edge t.mut ~a:v ~c:target;
    (* Drop every old argument, keeping exactly the one new occurrence of
       [target] appended by the rewiring above. *)
    let va = Vertex.args vx in
    let olds = List.filteri (fun i _ -> i < List.length va - 1) va in
    List.iter (fun c -> Mutator.delete_reference t.mut ~a:v ~b:c) olds;
    become_indirection t v target
  | Label.Cons, _ -> mark_stuck t v "malformed cons cell"
  | _ -> mark_stuck t v (Label.prim_name p ^ " of a non-cons vertex")

and progress_if t v ~key ~value =
  let vx = Graph.vertex t.graph v in
  let n = Vertex.arg_count vx in
  if n = 3 then begin
    let p = Vertex.arg vx 0 and th = Vertex.arg vx 1 and el = Vertex.arg vx 2 in
    if Vid.equal key p then begin
      match value with
      | Label.V_err msg ->
        (* an undefined predicate poisons the conditional: cancel both
           branches and propagate the error *)
        if Vertex.is_req_arg vx th then t.send (Reduction (Cancel { src = v; dst = th }));
        if Vertex.is_req_arg vx el then t.send (Reduction (Cancel { src = v; dst = el }));
        finish_value t v (Label.Err msg)
      | _ ->
        let chosen, other = if truthy value then (th, el) else (el, th) in
        (* Dereference the losing branch (§3.2): drop our reference and
           tell it to forget us. Irrelevant tasks under it keep running
           until a marking cycle expunges them. *)
        let other_requested = Vertex.is_req_arg vx other in
        Mutator.delete_reference t.mut ~a:v ~b:other;
        if other_requested && not (Vid.equal other chosen) then
          t.send (Reduction (Cancel { src = v; dst = other }));
        Mutator.delete_reference t.mut ~a:v ~b:p;
        (match Vertex.value_from vx chosen with
        | Some cv -> resolve_if t v chosen cv
        | None ->
          (* The winner is now strictly needed relative to v; globally it
             is vital only if v itself is vitally awaited. *)
          Mutator.request_child t.mut ~v ~c:chosen ~demand:Demand.Vital;
          let ctx = if has_vital_requester vx then Demand.Vital else Demand.Eager in
          send_request t ~src:(Some v) ~dst:chosen ~demand:ctx ~key:chosen)
    end
    (* else: speculative branch value arrived first; cached *)
  end
  else if n = 1 && Vid.equal key (Vertex.arg vx 0) then resolve_if t v key value
  else stale t

and resolve_if t v chosen value =
  match value with
  | Label.V_int n -> finish_value t v (Label.Int n)
  | Label.V_bool b -> finish_value t v (Label.Bool b)
  | Label.V_nil -> finish_value t v Label.Nil
  | Label.V_err msg -> finish_value t v (Label.Err msg)
  | Label.V_ref _ -> become_indirection t v chosen

and exec_cancel t ~src:s ~dst:v =
  t.cancels_executed <- t.cancels_executed + 1;
  let vx = Graph.vertex t.graph v in
  if (Vertex.free vx) then stale t
  else begin
    Mutator.answer t.mut ~at:v ~requester:(Some s);
    match (Vertex.label vx) with
    | Label.Ind when Vertex.arg_count vx > 0 ->
      t.send (Reduction (Cancel { src = s; dst = Vertex.arg vx 0 }))
    | _ -> ()
  end

let execute t task =
  Log.debug (fun m -> m "exec %a" Task.pp_reduction task);
  match task with
  | Request { src = s; dst; demand; key } -> exec_request t ~src:s ~dst ~demand ~key
  | Respond { src = s; dst; value; key; demand = _ } -> exec_respond t ~src:s ~dst ~value ~key
  | Cancel { src = s; dst } -> exec_cancel t ~src:s ~dst


let parked t = Dgr_util.Vec.to_list t.parked

let iter_parked t f = Dgr_util.Vec.iter f t.parked

let parked_count t = Dgr_util.Vec.length t.parked

let drain_parked t =
  let tasks = Dgr_util.Vec.to_list t.parked in
  Dgr_util.Vec.clear t.parked;
  tasks

let purge_parked t pred =
  let before = Dgr_util.Vec.length t.parked in
  Dgr_util.Vec.filter_in_place (fun task -> not (pred task)) t.parked;
  before - Dgr_util.Vec.length t.parked

(* Fold a per-PE reducer's step-local effects into [t] and zero them.
   The sharded engine calls this at the barrier in ascending PE order, so
   the merged parked list and stuck set are independent of which domain
   ran which PE. Gated on the shard having done anything at all — the
   counters are non-negative, so one summed branch skips the whole fold
   for a PE that executed no reduction this step. *)
let absorb_dirty t src =
  t.requests_executed <- t.requests_executed + src.requests_executed;
  src.requests_executed <- 0;
  t.responds_executed <- t.responds_executed + src.responds_executed;
  src.responds_executed <- 0;
  t.cancels_executed <- t.cancels_executed + src.cancels_executed;
  src.cancels_executed <- 0;
  t.expansions <- t.expansions + src.expansions;
  src.expansions <- 0;
  t.rewrites <- t.rewrites + src.rewrites;
  src.rewrites <- 0;
  t.stale_dropped <- t.stale_dropped + src.stale_dropped;
  src.stale_dropped <- 0;
  t.alloc_stalls <- t.alloc_stalls + src.alloc_stalls;
  src.alloc_stalls <- 0;
  (match t.result with None -> t.result <- src.result | Some _ -> ());
  src.result <- None;
  Dgr_util.Vec.iter (fun task -> Dgr_util.Vec.push t.parked task) src.parked;
  Dgr_util.Vec.clear src.parked;
  List.iter
    (fun (v, reason) ->
      if not (List.mem_assoc v t.stuck) then t.stuck <- (v, reason) :: t.stuck)
    (List.rev src.stuck);
  src.stuck <- []

let absorb t src =
  if
    src.requests_executed + src.responds_executed + src.cancels_executed
    + src.expansions + src.rewrites + src.stale_dropped + src.alloc_stalls <> 0
    || src.result <> None
    || not (Dgr_util.Vec.is_empty src.parked)
    || src.stuck <> []
  then absorb_dirty t src
