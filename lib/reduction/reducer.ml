open Dgr_graph
open Dgr_task
open Task
module Mutator = Dgr_core.Mutator

type reduction_task_vec = Task.reduction Dgr_util.Vec.t

let src = Logs.Src.create "dgr.reducer" ~doc:"distributed graph reduction"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  graph : Graph.t;
  mut : Mutator.t;
  templates : Template.registry;
  send : Task.t -> unit;
  speculate_if : bool;
  speculation_reserve : int;
  recorder : Dgr_obs.Recorder.t option;
  parked : reduction_task_vec;
  mutable result : Label.value option;
  mutable requests_executed : int;
  mutable responds_executed : int;
  mutable cancels_executed : int;
  mutable expansions : int;
  mutable rewrites : int;
  mutable stale_dropped : int;
  mutable alloc_stalls : int;
  mutable stuck : (Vid.t * string) list;
}

let create ?(speculate_if = true) ?(speculation_reserve = 0) ?recorder ~graph ~mut
    ~templates ~send () =
  {
    graph;
    mut;
    templates;
    send;
    speculate_if;
    speculation_reserve;
    recorder;
    parked = Dgr_util.Vec.create ();
    result = None;
    requests_executed = 0;
    responds_executed = 0;
    cancels_executed = 0;
    expansions = 0;
    rewrites = 0;
    stale_dropped = 0;
    alloc_stalls = 0;
    stuck = [];
  }

let obs t kind =
  match t.recorder with None -> () | Some r -> Dgr_obs.Recorder.emit r kind

let initial_task t =
  let root = Graph.root t.graph in
  Task.request root Demand.Vital

let finished t = t.result <> None

let stale t = t.stale_dropped <- t.stale_dropped + 1

let mark_stuck t v reason =
  if not (List.mem_assoc v t.stuck) then begin
    t.stuck <- (v, reason) :: t.stuck;
    Log.warn (fun m -> m "v%d stuck: %s (behaves as ⊥)" v reason)
  end

let distinct vids =
  let rec loop seen = function
    | [] -> List.rev seen
    | v :: rest -> if List.exists (Vid.equal v) seen then loop seen rest else loop (v :: seen) rest
  in
  loop [] vids

let send_request t ~src:s ~dst ~demand ~key =
  t.send (Reduction (Request { src = s; dst; demand; key }))

let send_respond t ~src:s ~dst ~value ~key ~demand =
  t.send (Reduction (Respond { src = s; dst; value; key; demand }))

(* Demand all strict arguments (first-demand path of Prim). The graph
   records the {e relative} request type (strict args are vitally
   requested, §3.2/Fig 5-1); the spawned tasks carry the {e global} class
   [ctx] — a task spawned on behalf of an eager computation is itself
   eager ("an initially eager task may expand into a highly parallel
   workload of many other tasks"). *)
let demand_args t v args ~ctx =
  List.iter
    (fun c ->
      Mutator.request_child t.mut ~v ~c ~demand:Demand.Vital;
      send_request t ~src:(Some v) ~dst:c ~demand:ctx ~key:c)
    (distinct args)

(* True when an existing requester already makes [v] globally vital. *)
let has_vital_requester vx =
  List.exists
    (fun (e : Vertex.request_entry) -> Demand.equal e.Vertex.demand Demand.Vital)
    vx.Vertex.requested

(* Answer every requester of [v] with [value] and forget them. *)
let answer_all t v value =
  let vx = Graph.vertex t.graph v in
  let entries = vx.Vertex.requested in
  List.iter
    (fun (e : Vertex.request_entry) ->
      send_respond t ~src:v ~dst:e.Vertex.who ~value ~key:e.Vertex.key ~demand:e.Vertex.demand)
    entries;
  (* [answer] removes all entries of a requester at once; deduplicate. *)
  let whos =
    List.fold_left
      (fun acc (e : Vertex.request_entry) ->
        if List.mem e.Vertex.who acc then acc else e.Vertex.who :: acc)
      [] entries
  in
  List.iter (fun who -> Mutator.answer t.mut ~at:v ~requester:who) whos

(* Forward every pending requester of the indirection [v] to [target].
   The forwarded demand is also recorded on the edge v→target itself
   (request-type, Fig 5-1): demand has really propagated through [v], and
   M_R must see the path as requested or it would classify everything
   below an indirection as reserve. *)
let forward_requesters t v target =
  let vx = Graph.vertex t.graph v in
  let entries = vx.Vertex.requested in
  (match entries with
  | [] -> ()
  | _ ->
    let demand =
      if
        List.exists
          (fun (e : Vertex.request_entry) -> Demand.equal e.Vertex.demand Demand.Vital)
          entries
      then Demand.Vital
      else Demand.Eager
    in
    Mutator.request_child t.mut ~v ~c:target ~demand);
  List.iter
    (fun (e : Vertex.request_entry) ->
      send_request t ~src:e.Vertex.who ~dst:target ~demand:e.Vertex.demand ~key:e.Vertex.key)
    entries;
  vx.Vertex.requested <- []

(* Rewrite [v] to a scalar/WHNF label: answer requesters, drop argument
   references (the contraction that creates garbage), clear state. *)
let finish_value t v label =
  let vx = Graph.vertex t.graph v in
  vx.Vertex.label <- label;
  t.rewrites <- t.rewrites + 1;
  (match Label.value_of_whnf ~self:v label with
  | Some value -> answer_all t v value
  | None -> assert false);
  List.iter (fun c -> Mutator.delete_reference t.mut ~a:v ~b:c) (Vertex.args vx);
  Vertex.clear_reduction_state vx

(* Rewrite [v] to an indirection onto its (sole remaining) child [target],
   forwarding all pending demand. *)
let become_indirection t v target =
  let vx = Graph.vertex t.graph v in
  vx.Vertex.label <- Label.Ind;
  t.rewrites <- t.rewrites + 1;
  forward_requesters t v target;
  Vertex.clear_reduction_state vx

let truthy = function
  | Label.V_bool b -> b
  | Label.V_int n -> n <> 0
  | Label.V_nil | Label.V_ref _ | Label.V_err _ -> false

(* --- primitive evaluation ------------------------------------------- *)

let eval_scalar p values =
  let int_of = function Label.V_int n -> Some n | _ -> None in
  let bool_of = function Label.V_bool b -> Some b | _ -> None in
  let module L = Label in
  let err = Error (Printf.sprintf "type error in %s" (L.prim_name p)) in
  (* ⊥-recovery values are contagious through strict operators
     (footnote 5): the requester learns its input was undefined. *)
  let first_err =
    List.find_opt (function L.V_err _ -> true | _ -> false) values
  in
  match first_err with
  | Some (L.V_err msg) -> Ok (L.Err msg)
  | _ ->
  match (p, values) with
  | L.Add, [ a; b ] | L.Sub, [ a; b ] | L.Mul, [ a; b ] | L.Div, [ a; b ] | L.Mod, [ a; b ]
    -> (
    match (int_of a, int_of b) with
    | Some x, Some y -> (
      match p with
      | L.Add -> Ok (L.Int (x + y))
      | L.Sub -> Ok (L.Int (x - y))
      | L.Mul -> Ok (L.Int (x * y))
      | L.Div -> if y = 0 then Error "division by zero" else Ok (L.Int (x / y))
      | L.Mod -> if y = 0 then Error "modulo by zero" else Ok (L.Int (x mod y))
      | _ -> assert false)
    | _ -> err)
  | L.Lt, [ a; b ] | L.Leq, [ a; b ] -> (
    match (int_of a, int_of b) with
    | Some x, Some y -> Ok (L.Bool (if p = L.Lt then x < y else x <= y))
    | _ -> err)
  | L.Eq, [ a; b ] -> Ok (L.Bool (L.equal_value a b))
  | L.And, [ a; b ] | L.Or, [ a; b ] -> (
    match (bool_of a, bool_of b) with
    | Some x, Some y -> Ok (L.Bool (if p = L.And then x && y else x || y))
    | _ -> err)
  | L.Not, [ a ] -> (
    match bool_of a with Some x -> Ok (L.Bool (not x)) | None -> err)
  | L.Neg, [ a ] -> ( match int_of a with Some x -> Ok (L.Int (-x)) | None -> err)
  | L.Is_nil, [ a ] -> Ok (L.Bool (a = L.V_nil))
  | (L.Head | L.Tail), _ -> assert false (* handled structurally *)
  | _, _ -> Error (Printf.sprintf "arity error in %s" (L.prim_name p))

(* --- task execution -------------------------------------------------- *)

let rec exec_request t ~src:s ~dst:v ~demand ~key =
  t.requests_executed <- t.requests_executed + 1;
  let vx = Graph.vertex t.graph v in
  if vx.Vertex.free then stale t
  else
    match vx.Vertex.label with
    | (Label.Int _ | Label.Bool _ | Label.Nil | Label.Cons | Label.Err _) as l ->
      let value = Option.get (Label.value_of_whnf ~self:v l) in
      send_respond t ~src:v ~dst:s ~value ~key ~demand
    | Label.Ind -> (
      match Vertex.args vx with
      | target :: _ ->
        (* Record the forwarded demand on the edge so the marking process
           sees the path as requested (never downgrades). *)
        Mutator.request_child t.mut ~v ~c:target ~demand;
        send_request t ~src:s ~dst:target ~demand ~key
      | [] ->
        mark_stuck t v "dangling indirection";
        Mutator.record_request t.mut ~at:v ~requester:s ~demand ~key)
    | Label.Bottom -> Mutator.record_request t.mut ~at:v ~requester:s ~demand ~key
    | Label.Param _ | Label.Freed ->
      mark_stuck t v "request on template parameter or freed vertex";
      stale t
    | Label.Prim p ->
      let first = Vertex.req_args vx = [] in
      let was_vital = has_vital_requester vx in
      Mutator.record_request t.mut ~at:v ~requester:s ~demand ~key;
      if first then begin
        if Vertex.arg_count vx <> Label.prim_arity p then
          mark_stuck t v
            (Printf.sprintf "%s applied to %d args (arity %d)" (Label.prim_name p)
               (Vertex.arg_count vx) (Label.prim_arity p))
        else demand_args t v (Vertex.args vx) ~ctx:demand
      end
      else if Demand.equal demand Demand.Vital && not was_vital then
        (* Eager → vital upgrade (§3.2 item 2): re-demand the pending
           arguments vitally so the whole speculative subcomputation is
           promoted. *)
        List.iter
          (fun c ->
            if Vertex.value_from vx c = None then
              send_request t ~src:(Some v) ~dst:c ~demand:Demand.Vital ~key:c)
          (distinct (Vertex.req_args vx))
    | Label.If -> (
      let was_vital = has_vital_requester vx in
      Mutator.record_request t.mut ~at:v ~requester:s ~demand ~key;
      match Vertex.args vx with
      | [ p; th; el ] when Vertex.req_args vx = [] ->
        Mutator.request_child t.mut ~v ~c:p ~demand:Demand.Vital;
        send_request t ~src:(Some v) ~dst:p ~demand ~key:p;
        if t.speculate_if then begin
          Mutator.request_child t.mut ~v ~c:th ~demand:Demand.Eager;
          send_request t ~src:(Some v) ~dst:th ~demand:Demand.Eager ~key:th;
          Mutator.request_child t.mut ~v ~c:el ~demand:Demand.Eager;
          send_request t ~src:(Some v) ~dst:el ~demand:Demand.Eager ~key:el
        end
      | ([ _; _; _ ] | [ _ ]) when Demand.equal demand Demand.Vital && not was_vital ->
        (* Upgrade: re-demand whatever we are still waiting on. *)
        List.iter
          (fun c ->
            if Vertex.value_from vx c = None then
              send_request t ~src:(Some v) ~dst:c ~demand:Demand.Vital ~key:c)
          (distinct (Vertex.req_args vx))
      | [ _; _; _ ] | [ _ ] -> () (* demand already in flight *)
      | _ -> mark_stuck t v "malformed if")
    | Label.Apply f -> (
      Mutator.record_request t.mut ~at:v ~requester:s ~demand ~key;
      match Template.find t.templates f with
      | None -> mark_stuck t v (Printf.sprintf "unknown function %s" f)
      | Some tpl ->
        if Vertex.arg_count vx <> tpl.Template.arity then
          mark_stuck t v
            (Printf.sprintf "%s applied to %d args (arity %d)" f (Vertex.arg_count vx)
               tpl.Template.arity)
        else if
          (* V is finite (§2.2): expansion draws vertices from F, and
             eager work is "resources permitting" (§3.2) — a non-vital
             expansion must leave [speculation_reserve] slots free so
             speculation can never starve the vital computation of
             memory. Class = destination's global priority when a cycle
             has classified it, else the source's, else the relative
             demand. *)
          let cls =
            match demand with
            | Demand.Vital ->
              (* A vital-flagged task is never blocked by a stale lower
                 verdict — upgrades travel by task between cycles. *)
              3
            | Demand.Eager -> (
              match vx.Vertex.sched_prior with
              | 0 -> (
                match s with
                | Some src_v when (Graph.vertex t.graph src_v).Vertex.sched_prior > 0 ->
                  Int.min (Graph.vertex t.graph src_v).Vertex.sched_prior 2
                | Some _ | None -> 2)
              | c -> c)
          in
          let need =
            Template.size tpl + if cls >= 3 then 0 else t.speculation_reserve
          in
          Graph.headroom_for t.graph ~pe:vx.Vertex.pe < need
        then begin
          t.alloc_stalls <- t.alloc_stalls + 1;
          obs t (Dgr_obs.Event.Alloc_stall { vid = v });
          Dgr_util.Vec.push t.parked (Request { src = s; dst = v; demand; key })
        end
        else begin
          let entry =
            Template.instantiate ~from:vx.Vertex.pe tpl t.graph t.mut
              ~actuals:(Vertex.args vx)
          in
          Mutator.expand_node t.mut ~a:v ~entry;
          vx.Vertex.label <- Label.Ind;
          t.expansions <- t.expansions + 1;
          obs t (Dgr_obs.Event.Expand { vid = v; entry });
          forward_requesters t v entry;
          Vertex.clear_reduction_state vx
        end)

and exec_respond t ~src:responder ~dst ~value ~key =
  t.responds_executed <- t.responds_executed + 1;
  match dst with
  | None -> t.result <- Some value
  | Some r -> (
    let vx = Graph.vertex t.graph r in
    if vx.Vertex.free then stale t
    else if not (List.exists (Vid.equal key) (Vertex.req_args vx)) then stale t
    else begin
      Vertex.record_value vx ~from:key value;
      match vx.Vertex.label with
      | Label.Prim p -> try_reduce_prim t r p
      | Label.If -> progress_if t r ~key ~value
      | Label.Int _ | Label.Bool _ | Label.Nil | Label.Cons | Label.Ind | Label.Apply _
      | Label.Bottom | Label.Err _ | Label.Param _ | Label.Freed ->
        stale t
    end);
  ignore responder

and try_reduce_prim t v p =
  let vx = Graph.vertex t.graph v in
  let needed = distinct (Vertex.args vx) in
  if List.for_all (fun c -> Vertex.value_from vx c <> None) needed then begin
    match p with
    | Label.Head | Label.Tail -> (
      match List.map (fun c -> Option.get (Vertex.value_from vx c)) (Vertex.args vx) with
      | [ Label.V_ref cell ] -> reduce_projection t v p cell
      | [ _ ] -> mark_stuck t v (Label.prim_name p ^ " of a non-list value")
      | _ -> mark_stuck t v (Label.prim_name p ^ " arity error"))
    | _ -> (
      let values = List.map (fun c -> Option.get (Vertex.value_from vx c)) (Vertex.args vx) in
      match eval_scalar p values with
      | Ok label -> finish_value t v label
      | Error reason -> mark_stuck t v reason)
  end

and reduce_projection t v p cell =
  let cx = Graph.vertex t.graph cell in
  match (cx.Vertex.label, Vertex.args cx) with
  | Label.Cons, [ hd; tl ] ->
    let target = match p with Label.Head -> hd | _ -> tl in
    let vx = Graph.vertex t.graph v in
    (* Rewire v → target. If the cons cell is v's direct child the paper's
       witnessed add-reference applies; otherwise the general edge. *)
    if Vertex.has_arg vx cell then
      Mutator.add_reference t.mut ~a:v ~b:cell ~c:target
    else Mutator.add_edge t.mut ~a:v ~c:target;
    (* Drop every old argument, keeping exactly the one new occurrence of
       [target] appended by the rewiring above. *)
    let va = Vertex.args vx in
    let olds = List.filteri (fun i _ -> i < List.length va - 1) va in
    List.iter (fun c -> Mutator.delete_reference t.mut ~a:v ~b:c) olds;
    become_indirection t v target
  | Label.Cons, _ -> mark_stuck t v "malformed cons cell"
  | _ -> mark_stuck t v (Label.prim_name p ^ " of a non-cons vertex")

and progress_if t v ~key ~value =
  let vx = Graph.vertex t.graph v in
  match Vertex.args vx with
  | [ p; th; el ] when Vid.equal key p && (match value with Label.V_err _ -> true | _ -> false)
    ->
    (* an undefined predicate poisons the conditional: cancel both
       branches and propagate the error *)
    let msg = match value with Label.V_err m -> m | _ -> assert false in
    List.iter
      (fun b ->
        if List.exists (Vid.equal b) (Vertex.req_args vx) then
          t.send (Reduction (Cancel { src = v; dst = b })))
      [ th; el ];
    finish_value t v (Label.Err msg)
  | [ p; th; el ] when Vid.equal key p ->
    let chosen, other = if truthy value then (th, el) else (el, th) in
    (* Dereference the losing branch (§3.2): drop our reference and tell
       it to forget us. Irrelevant tasks under it keep running until a
       marking cycle expunges them. *)
    let other_requested = List.exists (Vid.equal other) (Vertex.req_args vx) in
    Mutator.delete_reference t.mut ~a:v ~b:other;
    if other_requested && not (Vid.equal other chosen) then
      t.send (Reduction (Cancel { src = v; dst = other }));
    Mutator.delete_reference t.mut ~a:v ~b:p;
    (match Vertex.value_from vx chosen with
    | Some cv -> resolve_if t v chosen cv
    | None ->
      (* The winner is now strictly needed relative to v; globally it is
         vital only if v itself is vitally awaited. *)
      Mutator.request_child t.mut ~v ~c:chosen ~demand:Demand.Vital;
      let ctx = if has_vital_requester vx then Demand.Vital else Demand.Eager in
      send_request t ~src:(Some v) ~dst:chosen ~demand:ctx ~key:chosen)
  | [ _; _; _ ] -> () (* speculative branch value arrived first; cached *)
  | [ chosen ] when Vid.equal key chosen ->
    resolve_if t v chosen value
  | _ -> stale t

and resolve_if t v chosen value =
  match value with
  | Label.V_int n -> finish_value t v (Label.Int n)
  | Label.V_bool b -> finish_value t v (Label.Bool b)
  | Label.V_nil -> finish_value t v Label.Nil
  | Label.V_err msg -> finish_value t v (Label.Err msg)
  | Label.V_ref _ -> become_indirection t v chosen

and exec_cancel t ~src:s ~dst:v =
  t.cancels_executed <- t.cancels_executed + 1;
  let vx = Graph.vertex t.graph v in
  if vx.Vertex.free then stale t
  else begin
    Mutator.answer t.mut ~at:v ~requester:(Some s);
    match (vx.Vertex.label, Vertex.args vx) with
    | Label.Ind, target :: _ -> t.send (Reduction (Cancel { src = s; dst = target }))
    | _ -> ()
  end

let execute t task =
  Log.debug (fun m -> m "exec %a" Task.pp_reduction task);
  match task with
  | Request { src = s; dst; demand; key } -> exec_request t ~src:s ~dst ~demand ~key
  | Respond { src = s; dst; value; key; demand = _ } -> exec_respond t ~src:s ~dst ~value ~key
  | Cancel { src = s; dst } -> exec_cancel t ~src:s ~dst


let parked t = Dgr_util.Vec.to_list t.parked

let iter_parked t f = Dgr_util.Vec.iter f t.parked

let parked_count t = Dgr_util.Vec.length t.parked

let drain_parked t =
  let tasks = Dgr_util.Vec.to_list t.parked in
  Dgr_util.Vec.clear t.parked;
  tasks

let purge_parked t pred =
  let before = Dgr_util.Vec.length t.parked in
  Dgr_util.Vec.filter_in_place (fun task -> not (pred task)) t.parked;
  before - Dgr_util.Vec.length t.parked

(* Fold a per-PE reducer's step-local effects into [t] and zero them.
   The sharded engine calls this at the barrier in ascending PE order, so
   the merged parked list and stuck set are independent of which domain
   ran which PE. *)
let absorb t src =
  t.requests_executed <- t.requests_executed + src.requests_executed;
  src.requests_executed <- 0;
  t.responds_executed <- t.responds_executed + src.responds_executed;
  src.responds_executed <- 0;
  t.cancels_executed <- t.cancels_executed + src.cancels_executed;
  src.cancels_executed <- 0;
  t.expansions <- t.expansions + src.expansions;
  src.expansions <- 0;
  t.rewrites <- t.rewrites + src.rewrites;
  src.rewrites <- 0;
  t.stale_dropped <- t.stale_dropped + src.stale_dropped;
  src.stale_dropped <- 0;
  t.alloc_stalls <- t.alloc_stalls + src.alloc_stalls;
  src.alloc_stalls <- 0;
  (match t.result with None -> t.result <- src.result | Some _ -> ());
  src.result <- None;
  Dgr_util.Vec.iter (fun task -> Dgr_util.Vec.push t.parked task) src.parked;
  Dgr_util.Vec.clear src.parked;
  List.iter
    (fun (v, reason) ->
      if not (List.mem_assoc v t.stuck) then t.stuck <- (v, reason) :: t.stuck)
    (List.rev src.stuck);
  src.stuck <- []
