open Dgr_graph
open Dgr_task

(** The reduction process (§2.1) — demand-driven task semantics.

    Each reduction task executes atomically at its destination vertex:

    - a [Request <s,v>] on a WHNF vertex answers immediately; on an
      operator vertex it records [s ∈ requested(v)] and (on first demand)
      spawns requests on the operator's arguments — vitally for strict
      positions, eagerly for the speculated branches of [If] (§3.2);
    - an [Apply] vertex is reduced by instantiating the function's
      template from the free list and splicing it in with the paper's
      [expand-node] primitive, after which the vertex forwards demand as
      an indirection;
    - a [Respond] carrying the predicate's value resolves an [If]: the
      losing branch is dereferenced — [delete-reference] plus a [Cancel]
      task — which is precisely how irrelevant tasks and garbage arise;
    - when a strict operator has all argument values it rewrites its
      vertex to the result value, answers every requester, and drops its
      argument references (the graph "contracts", §2).

    Type errors, arity mismatches, division by zero, [head nil] and
    [Bottom] all behave as ⊥: the vertex never answers. Such vertices are
    exactly what M_T ∘ M_R later reports as deadlocked (Property 2'),
    which the tests exercise.

    All mutations go through the {!Dgr_core.Mutator} cooperation layer so
    reduction can run concurrently with marking. *)

type t = {
  graph : Graph.t;
  mut : Dgr_core.Mutator.t;
  templates : Template.registry;
  send : Task.t -> unit;
  speculate_if : bool;
  speculation_reserve : int;
  recorder : Dgr_obs.Recorder.t option;
      (** trace sink for allocation stalls and expansions *)
  parked : Task.reduction Dgr_util.Vec.t;
      (** allocation-stalled expansions awaiting free-list replenishment;
          still part of "the set of all tasks" for M_T and purging *)
  mutable result : Label.value option;  (** the root's value, once delivered *)
  mutable requests_executed : int;
  mutable responds_executed : int;
  mutable cancels_executed : int;
  mutable expansions : int;  (** Apply reductions performed *)
  mutable rewrites : int;  (** vertices rewritten to values / indirections *)
  mutable stale_dropped : int;  (** tasks dropped as stale/irrelevant *)
  mutable alloc_stalls : int;
      (** expansions deferred because the free list could not supply the
          template (V is finite, §2.2; the task is retried) *)
  mutable stuck : (Vid.t * string) list;  (** runtime errors turned into ⊥ *)
  mutable rq_scratch : int array;
      (** reusable raw snapshot of one vertex's request rows (see
          [Vertex.blit_requests]) — keeps the rewrite paths allocation-free *)
}

val create :
  ?speculate_if:bool ->
  ?speculation_reserve:int ->
  ?recorder:Dgr_obs.Recorder.t ->
  graph:Graph.t ->
  mut:Dgr_core.Mutator.t ->
  templates:Template.registry ->
  send:(Task.t -> unit) ->
  unit ->
  t
(** [speculate_if] (default true) controls eager evaluation of both [If]
    branches — the paper's source of eager/irrelevant/reserve tasks.
    With it off, evaluation is purely demand-driven (lazy).
    [speculation_reserve] (default 0) is the number of heap slots an
    eager/reserve-class expansion must leave free, so speculation cannot
    allocate the vital computation out of memory. *)

val execute : t -> Task.reduction -> unit

val initial_task : t -> Task.t
(** The distinguished initial task [<-,root>] (§2.2). *)

val finished : t -> bool
(** The overall result has been delivered. *)

val parked : t -> Task.reduction list

val iter_parked : t -> (Task.reduction -> unit) -> unit
(** Apply [f] to every parked task without building a list (M_T seed
    assembly). *)

val parked_count : t -> int

val drain_parked : t -> Task.reduction list
(** Remove and return every parked task (the engine re-injects them once
    the free list has been replenished). *)

val purge_parked : t -> (Task.reduction -> bool) -> int
(** Expunge matching parked tasks (restructure's irrelevant-task
    deletion must see parked tasks too). *)

val absorb : t -> t -> unit
(** [absorb t src] folds a per-PE reducer's step-local effects into [t]
    and zeroes [src]: counters are summed, parked tasks appended, stuck
    vertices merged (first report wins), and a pending [result] adopted.
    The sharded engine calls this at each barrier in ascending PE order
    so the merge is independent of domain scheduling. *)
