open Dgr_graph

(** The per-plane traced-children relation.

    M_R traces the data-dependence relation [→] through [args(v)] (§5.1);
    M_T traces the task-propagation relation [↦] through
    [requested(v) ∪ (args(v) − req-args(v))] (§5.2). Each cooperating
    mutation only needs to cooperate with the plane(s) whose traced
    relation it changes (§5.3). *)

val children : Graph.t -> Plane.id -> Vid.t -> Vid.t list
(** Traced children of a vertex under a plane's relation, as a fresh
    list — cold paths only. Free vertices have no traced children.
    External requesters ([None] entries of [requested]) contribute
    nothing. *)

val iter_children : Graph.t -> Plane.id -> Vid.t -> (Vid.t -> unit) -> unit
(** Visit the traced children in {!children} order. Does not allocate. *)

val child_priority : Graph.t -> Vid.t -> int -> Vid.t -> int
(** [child_priority g v prior c] is the priority a [mark2] task spawned
    from [v] (being marked at [prior]) onto [c] must carry:
    [min prior (request-type c v)] (Fig 5-1). *)
