open Dgr_task

(** Checker for the marking invariants of §5.4.1.

    Given a marking run and the set of its currently-pending (spawned but
    unexecuted) mark tasks, verifies over all live vertices:

    + transient(v) ⇒ every traced child of v is transient/marked or has a
      pending mark task addressed to it;
    + marked(v) ⇒ no traced child of v is unmarked without a pending mark
      task addressed to it;
    + mt-cnt(v) equals the number of unreturned mark tasks spawned from v
      (= pending mark/return tasks crediting v, plus transient children
      whose mt-par is v — their return has not been spawned yet).

    Invariant 2 is stated here in the refined form the system actually
    maintains: the paper says "a marked vertex may never point to an
    unmarked vertex", but its own [add-reference] (Fig 4-2) transiently
    violates that reading — when both [a] and [b] are transient, the new
    edge [a→c] is justified by the mark task [b] has already spawned on
    [c] (invariant 1), and [a] may finish marking before that task
    executes. What the liveness proof (Lemma 2) actually needs is the
    disjunction "child marked ∨ transient ∨ pending mark task", which is
    what we check.

    Used by the property-based tests after every adversarial interleaving
    step. *)

val check : Run.t -> pending:Task.mark list -> string list
(** Empty when all three invariants hold. *)

val check_exn : Run.t -> pending:Task.mark list -> unit
(** Raises [Failure] with the concatenated violations. *)

val ownership_guard :
  Dgr_graph.Graph.t -> current_pe:(unit -> int) -> Dgr_graph.Vid.t -> unit
(** A {!Mutator.t} guard asserting the ownership discipline the sharded
    engine relies on: a task executing at PE [p] (as reported by
    [current_pe ()]) only mutates vertices with [Vertex.pe = p].
    Controller execution ([current_pe () < 0]) and vertices born in the
    current {!Dgr_graph.Graph.epoch} (template slots the executing PE
    just allocated) are exempt. Raises [Failure] on a violation.
    Installed by [Engine.enable_ownership_checks]. *)
