open Dgr_graph
open Dgr_task
open Task

let check run ~pending =
  let g = run.Run.graph in
  let plane_id = run.Run.plane in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Only this run's tasks are relevant: same plane, same wave (a
     stale-wave task is dead at dispatch and credits nothing). *)
  let pending =
    List.filter
      (fun m -> Task.plane_of_mark m = plane_id && Task.mark_ep m = run.Run.wave)
      pending
  in
  let pending_mark_on c =
    List.exists
      (function
        | Mark1 { v; _ } | Mark2 { v; _ } | Mark3 { v; _ } -> Vid.equal v c
        | Return _ -> false)
      pending
  in
  let credits v =
    List.length
      (List.filter
         (function
           | Mark1 { par; _ } | Mark2 { par; _ } | Mark3 { par; _ } | Return { par; _ } ->
             par = Plane.Parent v)
         pending)
  in
  let transient_children_of v =
    Graph.fold_live
      (fun acc c ->
        let p = Vertex.plane c plane_id in
        if Plane.transient p && (Plane.par p) = Plane.Parent v then acc + 1 else acc)
      0 g
  in
  Graph.iter_live
    (fun vx ->
      let v = (Vertex.id vx) in
      let p = Vertex.plane vx plane_id in
      let children = Trace.children g plane_id v in
      if Plane.transient p then
        List.iter
          (fun c ->
            let cp = Vertex.plane (Graph.vertex g c) plane_id in
            if Plane.unmarked cp && not (pending_mark_on c) then
              err "invariant 1: transient v%d has unmarked child v%d with no pending mark" v c)
          children;
      if Plane.marked p then
        List.iter
          (fun c ->
            let cv = Graph.vertex g c in
            if
              (not (Vertex.free cv))
              && Plane.unmarked (Vertex.plane cv plane_id)
              && not (pending_mark_on c)
            then err "invariant 2: marked v%d points to unmarked v%d with no pending mark" v c)
          children;
      let expected = credits v + transient_children_of v in
      if (Plane.cnt p) <> expected then
        err "invariant 3: v%d has mt-cnt=%d but %d unreturned tasks" v (Plane.cnt p) expected)
    g;
  List.rev !errors

let check_exn run ~pending =
  match check run ~pending with
  | [] -> ()
  | errs -> failwith ("Invariants.check failed:\n" ^ String.concat "\n" errs)

(* Ownership discipline: a task executing at PE p mutates only vertices
   homed at p — the locality property (§2: PEs interact only by sending
   tasks) that lets the sharded engine run PEs on different domains
   without locking the graph. Exempt are the controller (pe < 0, serial
   by construction) and vertices born in the current allocation epoch:
   a template instantiated this step is wired up by its allocating PE
   before any other PE can learn the fresh vids. *)
let ownership_guard g ~current_pe v =
  let pe = current_pe () in
  if pe >= 0 then begin
    let vx = Graph.vertex g v in
    if
      (not (Vertex.free vx))
      && (Vertex.birth vx) < Graph.epoch g
      && (Vertex.pe vx) <> pe
    then
      failwith
        (Printf.sprintf
           "Invariants.ownership: task at PE %d mutated v%d owned by PE %d" pe v
           (Vertex.pe vx))
  end
