open Dgr_graph
open Dgr_task

type env = {
  spawn_mark : Task.mark -> unit;
  pes : int;
  iter_pe_endpoints : int -> (Vid.t -> unit) -> unit;
  purge_tasks : (Task.t -> bool) -> int;
  reprioritize : unit -> int;
  each_home : (int -> unit) -> unit;
  now : unit -> int;
}

type phase = Idle | Mark_tasks | Mark_root

type scheme = Tree | Flood_counters

type handler = Tree_run of Run.t | Flood_run of Flood.t

type t = {
  g : Graph.t;
  mut : Mutator.t;
  env : env;
  recorder : Dgr_obs.Recorder.t option;
  deadlock_every : int;
  cycle_scheme : scheme;
  detection_window : int;
  mutable phase : phase;
  mutable phase_started_at : int;  (* [env.now] at the last phase transition *)
  mutable mr_run : Run.t option;
  mutable mt_run : Run.t option;
  mutable mr_flood : Flood.t option;
  mutable mt_flood : Flood.t option;
  mutable mr_h : handler option;  (* cached boxed handlers: the dispatch *)
  mutable mt_h : handler option;  (* runs per marking task, so no re-boxing *)
  mutable detector : Termination.t;
  mutable mt_ran_this_cycle : bool;
  mutable cycles : int;
  mutable last_report : Restructure.report option;
  mutable deadlocked_ever : Vid.Set.t;
  mutable total_garbage : int;
  mutable mr_marks : int;
  mutable mt_marks : int;
}

let create ?(deadlock_every = 1) ?(scheme = Tree) ?(detection_window = 8) ?recorder g mut
    env =
  {
    g;
    mut;
    env;
    recorder;
    deadlock_every;
    cycle_scheme = scheme;
    detection_window;
    phase = Idle;
    phase_started_at = 0;
    mr_run = None;
    mt_run = None;
    mr_flood = None;
    mt_flood = None;
    mr_h = None;
    mt_h = None;
    (* placeholder; replaced at each flood phase start with the phase's
       epoch — never consulted while Idle *)
    detector = Termination.create ~window:detection_window ~epoch:(-1) ~pes:1;
    mt_ran_this_cycle = false;
    cycles = 0;
    last_report = None;
    deadlocked_ever = Vid.Set.empty;
    total_garbage = 0;
    mr_marks = 0;
    mt_marks = 0;
  }

let obs t kind =
  match t.recorder with None -> () | Some r -> Dgr_obs.Recorder.emit r kind

let scheme t = t.cycle_scheme

let phase t = t.phase

let phase_started_at t = t.phase_started_at

let graph t = t.g

let seed run env v =
  Run.seed_added run;
  env.spawn_mark (Marker.seed_for run v)

let flood_seed fl env v =
  Flood.count_seed fl ~pe:0;
  env.spawn_mark (Flood.seed_for fl v)

(* Build taskroot_i from per-PE local knowledge: each PE enumerates the
   reduction endpoints it knows (its pool, its mailbox, its shard of the
   in-flight set), visited in fixed PE order. Duplicates across PEs (a
   task in flight is known to sender and receiver) are dropped in O(1)
   by stamping the vertex with the current wave — no global set is
   built. First PE to name a vertex seeds it. *)
let seed_endpoints t ~seed_one =
  let wave = Graph.wave t.g in
  for pe = 0 to t.env.pes - 1 do
    t.env.iter_pe_endpoints pe (fun v ->
        let vx = Graph.vertex t.g v in
        if (not (Vertex.free vx)) && Vertex.seed_stamp vx <> wave then begin
          Vertex.set_seed_stamp vx wave;
          seed_one v
        end)
  done

let phase_obs t phase =
  obs t (Dgr_obs.Event.Phase { phase; cycle = t.cycles; wave = Graph.wave t.g })

let start_mark_root t =
  Graph.reset_plane t.g Plane.MR;
  t.phase <- Mark_root;
  t.phase_started_at <- t.env.now ();
  phase_obs t Dgr_obs.Event.Mark_root;
  match t.cycle_scheme with
  | Tree ->
    let run = Run.create t.g Run.Priority in
    t.mr_run <- Some run;
    t.mr_h <- Some (Tree_run run);
    Mutator.set_active t.mut [ run ];
    if Graph.has_root t.g then begin
      let root = Graph.root t.g in
      if not (Vertex.free (Graph.vertex t.g root)) then seed run t.env root
    end;
    Run.check_trivially_finished run
  | Flood_counters ->
    let fl = Flood.create t.g Run.Priority in
    t.mr_flood <- Some fl;
    t.mr_h <- Some (Flood_run fl);
    t.detector <-
      Termination.create ~window:t.detection_window ~epoch:fl.Flood.wave ~pes:t.env.pes;
    Mutator.set_active_flood t.mut [ fl ];
    if Graph.has_root t.g then begin
      let root = Graph.root t.g in
      if not (Vertex.free (Graph.vertex t.g root)) then flood_seed fl t.env root
    end

let start_mark_tasks t =
  Graph.reset_plane t.g Plane.MT;
  t.mt_ran_this_cycle <- true;
  t.phase <- Mark_tasks;
  t.phase_started_at <- t.env.now ();
  phase_obs t Dgr_obs.Event.Mark_tasks;
  match t.cycle_scheme with
  | Tree ->
    let run = Run.create t.g Run.Tasks in
    t.mt_run <- Some run;
    t.mt_h <- Some (Tree_run run);
    Mutator.set_active t.mut [ run ];
    seed_endpoints t ~seed_one:(fun v -> seed run t.env v);
    Run.check_trivially_finished run
  | Flood_counters ->
    let fl = Flood.create t.g Run.Tasks in
    t.mt_flood <- Some fl;
    t.mt_h <- Some (Flood_run fl);
    t.detector <-
      Termination.create ~window:t.detection_window ~epoch:fl.Flood.wave ~pes:t.env.pes;
    Mutator.set_active_flood t.mut [ fl ];
    seed_endpoints t ~seed_one:(fun v -> flood_seed fl t.env v)

(* Crash recovery: a PE loss invalidates the wave in progress — marks it
   left half-propagated, returns and counter credits it lost in flight —
   so the engine calls this to re-derive the phase from scratch.
   Restarting re-resets the phase's plane, which opens a {e new} wave:
   the dead wave's surviving in-flight tasks and credits carry the old
   epoch and are dropped at dispatch / by the detector, so no
   machine-wide purge is needed. A fresh run (tree) or flood counters +
   termination detector (flood) is created under the new epoch and
   re-seeded; the {e other} plane's finished result is untouched — its
   marks were settled before this phase began and remain a valid
   (conservative) input to the cycle's verdict. The aborted run's
   executed-mark tally is folded into the totals first. *)
let restart_phase t =
  match t.phase with
  | Idle -> ()
  | Mark_tasks ->
    (match t.mt_run with
    | Some r -> t.mt_marks <- t.mt_marks + Run.marks_total r
    | None -> ());
    (match t.mt_flood with
    | Some f -> t.mt_marks <- t.mt_marks + Flood.marks_executed_total f
    | None -> ());
    start_mark_tasks t
  | Mark_root ->
    (match t.mr_run with
    | Some r -> t.mr_marks <- t.mr_marks + Run.marks_total r
    | None -> ());
    (match t.mr_flood with
    | Some f -> t.mr_marks <- t.mr_marks + Flood.marks_executed_total f
    | None -> ());
    start_mark_root t

let start_cycle t =
  if t.phase <> Idle then invalid_arg "Cycle.start_cycle: cycle already in progress";
  t.mt_ran_this_cycle <- false;
  let with_deadlock = t.deadlock_every > 0 && t.cycles mod t.deadlock_every = 0 in
  if with_deadlock then start_mark_tasks t else start_mark_root t

let finish_cycle t =
  Mutator.set_active t.mut [];
  Mutator.set_active_flood t.mut [];
  (match t.mr_run with Some r -> t.mr_marks <- t.mr_marks + Run.marks_total r | None -> ());
  (match t.mt_run with Some r -> t.mt_marks <- t.mt_marks + Run.marks_total r | None -> ());
  (match t.mr_flood with
  | Some f -> t.mr_marks <- t.mr_marks + Flood.marks_executed_total f
  | None -> ());
  (match t.mt_flood with
  | Some f -> t.mt_marks <- t.mt_marks + Flood.marks_executed_total f
  | None -> ());
  phase_obs t Dgr_obs.Event.Restructure;
  let report =
    Restructure.run ~graph:t.g ~deadlock_checked:t.mt_ran_this_cycle
      ~purge_tasks:t.env.purge_tasks ~reprioritize:t.env.reprioritize
      ~each_home:t.env.each_home ()
  in
  (match report.Restructure.deadlocked with
  | [] -> ()
  | vids -> obs t (Dgr_obs.Event.Deadlock { vids }));
  if report.Restructure.irrelevant_purged > 0 then
    obs t (Dgr_obs.Event.Irrelevant { purged = report.Restructure.irrelevant_purged });
  obs t
    (Dgr_obs.Event.Cycle_done
       { cycle = t.cycles; garbage = List.length report.Restructure.garbage });
  phase_obs t Dgr_obs.Event.Idle;
  t.phase <- Idle;
  t.phase_started_at <- t.env.now ();
  t.cycles <- t.cycles + 1;
  t.last_report <- Some report;
  t.deadlocked_ever <-
    List.fold_left (fun acc v -> Vid.Set.add v acc) t.deadlocked_ever report.deadlocked;
  t.total_garbage <- t.total_garbage + List.length report.Restructure.garbage;
  t.mr_run <- None;
  t.mt_run <- None;
  t.mr_flood <- None;
  t.mt_flood <- None;
  t.mr_h <- None;
  t.mt_h <- None;
  report

(* Credits flow in from the transport (piggybacked on data frames and
   cumulative acks, or standalone heartbeats); the detector max-merges
   them and drops wrong-epoch noise itself. *)
let learn_credit t ~pe ~epoch ~sent ~executed =
  Termination.learn t.detector ~pe ~epoch ~sent ~executed

(* Flood-scheme completion: every PE's learned credits balance and stay
   balanced (same sent total) across the detection window. *)
let flood_finished t _fl =
  Termination.observe t.detector ~now:(t.env.now ());
  Termination.terminated t.detector

let phase_finished t =
  match (t.phase, t.cycle_scheme) with
  | Idle, _ -> false
  | Mark_tasks, Tree -> (
    match t.mt_run with Some run -> run.Run.finished | None -> false)
  | Mark_root, Tree -> (
    match t.mr_run with Some run -> run.Run.finished | None -> false)
  | Mark_tasks, Flood_counters -> (
    match t.mt_flood with Some fl -> flood_finished t fl | None -> false)
  | Mark_root, Flood_counters -> (
    match t.mr_flood with Some fl -> flood_finished t fl | None -> false)

let poll t =
  match t.phase with
  | Idle -> None
  | Mark_tasks ->
    if phase_finished t then start_mark_root t;
    None
  | Mark_root -> if phase_finished t then Some (finish_cycle t) else None

let run_for_plane t = function Plane.MR -> t.mr_run | Plane.MT -> t.mt_run

let handler_for_plane t plane =
  match plane with Plane.MR -> t.mr_h | Plane.MT -> t.mt_h

let cycles_completed t = t.cycles

let last_report t = t.last_report

let deadlocked_ever t = t.deadlocked_ever

let total_garbage_collected t = t.total_garbage

let mr_marks_total t = t.mr_marks

let mt_marks_total t = t.mt_marks
