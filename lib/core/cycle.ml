open Dgr_graph
open Dgr_task

type env = {
  spawn_mark : Task.mark -> unit;
  iter_reduction_endpoints : (Vid.t -> unit) -> unit;
  purge_tasks : (Task.t -> bool) -> int;
  reprioritize : unit -> int;
  now : unit -> int;
}

type phase = Idle | Mark_tasks | Mark_root

type scheme = Tree | Flood_counters

type handler = Tree_run of Run.t | Flood_run of Flood.t

type t = {
  g : Graph.t;
  mut : Mutator.t;
  env : env;
  recorder : Dgr_obs.Recorder.t option;
  deadlock_every : int;
  cycle_scheme : scheme;
  detection_window : int;
  mutable phase : phase;
  mutable phase_started_at : int;  (* [env.now] at the last phase transition *)
  mutable mr_run : Run.t option;
  mutable mt_run : Run.t option;
  mutable mr_flood : Flood.t option;
  mutable mt_flood : Flood.t option;
  mutable mr_h : handler option;  (* cached boxed handlers: the dispatch *)
  mutable mt_h : handler option;  (* runs per marking task, so no re-boxing *)
  mutable detector : Termination.t;
  mutable mt_ran_this_cycle : bool;
  mutable cycles : int;
  mutable last_report : Restructure.report option;
  mutable deadlocked_ever : Vid.Set.t;
  mutable total_garbage : int;
  mutable mr_marks : int;
  mutable mt_marks : int;
}

let create ?(deadlock_every = 1) ?(scheme = Tree) ?(detection_window = 8) ?recorder g mut
    env =
  {
    g;
    mut;
    env;
    recorder;
    deadlock_every;
    cycle_scheme = scheme;
    detection_window;
    phase = Idle;
    phase_started_at = 0;
    mr_run = None;
    mt_run = None;
    mr_flood = None;
    mt_flood = None;
    mr_h = None;
    mt_h = None;
    detector = Termination.create ~window:detection_window;
    mt_ran_this_cycle = false;
    cycles = 0;
    last_report = None;
    deadlocked_ever = Vid.Set.empty;
    total_garbage = 0;
    mr_marks = 0;
    mt_marks = 0;
  }

let obs t kind =
  match t.recorder with None -> () | Some r -> Dgr_obs.Recorder.emit r kind

let scheme t = t.cycle_scheme

let phase t = t.phase

let phase_started_at t = t.phase_started_at

let graph t = t.g

let seed run env v =
  Run.seed_added run;
  env.spawn_mark (Marker.seed_for run v)

let flood_seed fl env v =
  Flood.count_seed fl ~pe:0;
  env.spawn_mark (Flood.seed_for fl v)

let mt_seed_set t =
  let acc = ref Vid.Set.empty in
  t.env.iter_reduction_endpoints (fun v -> acc := Vid.Set.add v !acc);
  !acc

let start_mark_root t =
  Graph.reset_plane t.g Plane.MR;
  t.phase <- Mark_root;
  t.phase_started_at <- t.env.now ();
  obs t (Dgr_obs.Event.Phase { phase = Dgr_obs.Event.Mark_root; cycle = t.cycles });
  match t.cycle_scheme with
  | Tree ->
    let run = Run.create t.g Run.Priority in
    t.mr_run <- Some run;
    t.mr_h <- Some (Tree_run run);
    Mutator.set_active t.mut [ run ];
    if Graph.has_root t.g then begin
      let root = Graph.root t.g in
      if not (Vertex.free (Graph.vertex t.g root)) then seed run t.env root
    end;
    Run.check_trivially_finished run
  | Flood_counters ->
    let fl = Flood.create t.g Run.Priority in
    t.mr_flood <- Some fl;
    t.mr_h <- Some (Flood_run fl);
    t.detector <- Termination.create ~window:t.detection_window;
    Mutator.set_active_flood t.mut [ fl ];
    if Graph.has_root t.g then begin
      let root = Graph.root t.g in
      if not (Vertex.free (Graph.vertex t.g root)) then flood_seed fl t.env root
    end

let start_mark_tasks t =
  Graph.reset_plane t.g Plane.MT;
  t.mt_ran_this_cycle <- true;
  t.phase <- Mark_tasks;
  t.phase_started_at <- t.env.now ();
  obs t (Dgr_obs.Event.Phase { phase = Dgr_obs.Event.Mark_tasks; cycle = t.cycles });
  let seeds = mt_seed_set t in
  match t.cycle_scheme with
  | Tree ->
    let run = Run.create t.g Run.Tasks in
    t.mt_run <- Some run;
    t.mt_h <- Some (Tree_run run);
    Mutator.set_active t.mut [ run ];
    Vid.Set.iter
      (fun v -> if not (Vertex.free (Graph.vertex t.g v)) then seed run t.env v)
      seeds;
    Run.check_trivially_finished run
  | Flood_counters ->
    let fl = Flood.create t.g Run.Tasks in
    t.mt_flood <- Some fl;
    t.mt_h <- Some (Flood_run fl);
    t.detector <- Termination.create ~window:t.detection_window;
    Mutator.set_active_flood t.mut [ fl ];
    Vid.Set.iter
      (fun v -> if not (Vertex.free (Graph.vertex t.g v)) then flood_seed fl t.env v)
      seeds

(* Crash recovery: a PE loss invalidates the wave in progress — marks it
   left half-propagated, returns and counter credits it lost in flight —
   so the engine purges every marking task machine-wide and calls this to
   re-derive the phase from scratch. Restarting re-resets the phase's
   plane, creates a fresh run (tree) or flood counters + termination
   detector (flood), and re-seeds; the *other* plane's finished result is
   untouched — its marks were settled before this phase began and remain
   a valid (conservative) input to the cycle's verdict. The aborted run's
   executed-mark tally is folded into the totals first. *)
let restart_phase t =
  match t.phase with
  | Idle -> ()
  | Mark_tasks ->
    (match t.mt_run with
    | Some r -> t.mt_marks <- t.mt_marks + r.Run.marks_executed
    | None -> ());
    (match t.mt_flood with
    | Some f -> t.mt_marks <- t.mt_marks + f.Flood.marks_executed
    | None -> ());
    start_mark_tasks t
  | Mark_root ->
    (match t.mr_run with
    | Some r -> t.mr_marks <- t.mr_marks + r.Run.marks_executed
    | None -> ());
    (match t.mr_flood with
    | Some f -> t.mr_marks <- t.mr_marks + f.Flood.marks_executed
    | None -> ());
    start_mark_root t

let start_cycle t =
  if t.phase <> Idle then invalid_arg "Cycle.start_cycle: cycle already in progress";
  t.mt_ran_this_cycle <- false;
  let with_deadlock = t.deadlock_every > 0 && t.cycles mod t.deadlock_every = 0 in
  if with_deadlock then start_mark_tasks t else start_mark_root t

let finish_cycle t =
  Mutator.set_active t.mut [];
  Mutator.set_active_flood t.mut [];
  (match t.mr_run with Some r -> t.mr_marks <- t.mr_marks + r.Run.marks_executed | None -> ());
  (match t.mt_run with Some r -> t.mt_marks <- t.mt_marks + r.Run.marks_executed | None -> ());
  (match t.mr_flood with
  | Some f -> t.mr_marks <- t.mr_marks + f.Flood.marks_executed
  | None -> ());
  (match t.mt_flood with
  | Some f -> t.mt_marks <- t.mt_marks + f.Flood.marks_executed
  | None -> ());
  obs t (Dgr_obs.Event.Phase { phase = Dgr_obs.Event.Restructure; cycle = t.cycles });
  let report =
    Restructure.run ~graph:t.g ~deadlock_checked:t.mt_ran_this_cycle
      ~purge_tasks:t.env.purge_tasks ~reprioritize:t.env.reprioritize ()
  in
  (match report.Restructure.deadlocked with
  | [] -> ()
  | vids -> obs t (Dgr_obs.Event.Deadlock { vids }));
  if report.Restructure.irrelevant_purged > 0 then
    obs t (Dgr_obs.Event.Irrelevant { purged = report.Restructure.irrelevant_purged });
  obs t
    (Dgr_obs.Event.Cycle_done
       { cycle = t.cycles; garbage = List.length report.Restructure.garbage });
  obs t (Dgr_obs.Event.Phase { phase = Dgr_obs.Event.Idle; cycle = t.cycles });
  t.phase <- Idle;
  t.phase_started_at <- t.env.now ();
  t.cycles <- t.cycles + 1;
  t.last_report <- Some report;
  t.deadlocked_ever <-
    List.fold_left (fun acc v -> Vid.Set.add v acc) t.deadlocked_ever report.deadlocked;
  t.total_garbage <- t.total_garbage + List.length report.Restructure.garbage;
  t.mr_run <- None;
  t.mt_run <- None;
  t.mr_flood <- None;
  t.mt_flood <- None;
  t.mr_h <- None;
  t.mt_h <- None;
  report

(* Flood-scheme completion: the per-PE counters balance and stay balanced
   across the detection window. *)
let flood_finished t fl =
  Termination.observe t.detector ~now:(t.env.now ())
    ~sent:(Flood.sent_total fl) ~executed:(Flood.executed_total fl);
  Termination.terminated t.detector

let phase_finished t =
  match (t.phase, t.cycle_scheme) with
  | Idle, _ -> false
  | Mark_tasks, Tree -> (
    match t.mt_run with Some run -> run.Run.finished | None -> false)
  | Mark_root, Tree -> (
    match t.mr_run with Some run -> run.Run.finished | None -> false)
  | Mark_tasks, Flood_counters -> (
    match t.mt_flood with Some fl -> flood_finished t fl | None -> false)
  | Mark_root, Flood_counters -> (
    match t.mr_flood with Some fl -> flood_finished t fl | None -> false)

let poll t =
  match t.phase with
  | Idle -> None
  | Mark_tasks ->
    if phase_finished t then start_mark_root t;
    None
  | Mark_root -> if phase_finished t then Some (finish_cycle t) else None

let run_for_plane t = function Plane.MR -> t.mr_run | Plane.MT -> t.mt_run

let handler_for_plane t plane =
  match plane with Plane.MR -> t.mr_h | Plane.MT -> t.mt_h

let cycles_completed t = t.cycles

let last_report t = t.last_report

let deadlocked_ever t = t.deadlocked_ever

let total_garbage_collected t = t.total_garbage

let mr_marks_total t = t.mr_marks

let mt_marks_total t = t.mt_marks
