open Dgr_graph
open Dgr_task

(** The endless mark/restructure cycle (§4, §5), decentralized.

    A [Cycle.t] is the controller state machine driving garbage collection
    concurrently with the reduction process:

    {v Idle → [Mark_tasks (M_T)] → Mark_root (M_R) → restructure → Idle v}

    M_T runs {e before} M_R within a cycle (required by Theorem 2) and only
    on every [deadlock_every]-th cycle (§6: "our approach is to execute
    M_T only occasionally"). The controller is polled by the engine at
    step barriers; phase transitions are detected by run completion.

    {b Epochs.} Every phase start resets its plane, which opens a fresh
    {e wave} ({!Dgr_graph.Graph.wave}) — a globally-unique epoch stamped
    into every mark task the wave spawns and every per-slot mark the
    wave writes. Stale tasks (a crash-abandoned wave's survivors still
    in flight when the phase restarts) are dropped at dispatch by their
    epoch; stale plane slots read as pristine. Nothing is ever purged
    machine-wide, and a new wave can start while an old wave's debris
    drains — marking no longer serializes the step loop.

    {b Seeding.} M_T's seeds ([troot]/[taskroot_i], §5.2) are built from
    per-PE local knowledge: each PE enumerates the reduction-task
    endpoints it knows (its pool, its outgoing mailbox, its shard of the
    in-flight set) via [iter_pe_endpoints], visited in fixed PE order;
    cross-PE duplicates are dropped in O(1) by stamping each vertex with
    the current wave. No global task snapshot is taken.

    {b Completion.} The tree scheme completes structurally (the [Return]
    chain drains to [Rootpar]). The flood scheme completes by the
    distributed credit protocol: per-PE (sent, executed) counters ride
    the transport as epoch-tagged credits ({!learn_credit}), and a
    {!Termination} detector pinned to the wave's epoch declares
    quiescence after two balanced observations a detection window apart.
    The paper's §2.1 exactly-once channel assumption still underpins the
    counters; under injected faults the network's reliable-delivery
    layer ([Dgr_sim.Network]) re-earns it, and "in flight" above means
    {e undelivered sends} — a dropped frame still seeds M_T, since its
    retransmission will eventually deliver it.

    {b Restructure} is sharded by home partition (see {!Restructure}):
    verdict collection and survivor bookkeeping fan out across domains
    through [env.each_home] and merge in fixed PE order. *)

type env = {
  spawn_mark : Task.mark -> unit;  (** route into the owning PE's pool *)
  pes : int;  (** home-partition count — one endpoint source per PE *)
  iter_pe_endpoints : int -> (Vid.t -> unit) -> unit;
      (** [iter_pe_endpoints pe f]: apply [f] to the endpoint vertices of
          every pending or in-flight reduction task that PE [pe] knows
          locally — its pool, its outgoing sends, its shard of parked
          work. Repeats (within or across PEs) are fine: the controller
          dedups by wave stamp. Called serially, in ascending PE order. *)
  purge_tasks : (Task.t -> bool) -> int;
  reprioritize : unit -> int;
  each_home : (int -> unit) -> unit;
      (** run a per-home restructure pass for every home PE, possibly in
          parallel (the engine's domain fan-out); must call its argument
          exactly once per PE *)
  now : unit -> int;
      (** simulation clock, for flood-scheme termination detection *)
}

type phase = Idle | Mark_tasks | Mark_root

type scheme = Tree | Flood_counters
(** [Tree]: the marking-tree algorithm of Figs 4-1/5-1/5-3 (per-vertex
    mt-cnt/mt-par, return tasks, [done] via rootpar). [Flood_counters]:
    the §6 space optimization — no returns, two counter words per PE,
    termination by credit counting (see {!Flood} and {!Termination}). *)

type handler = Tree_run of Run.t | Flood_run of Flood.t
(** What the engine must hand a marking task to. *)

type t

val create :
  ?deadlock_every:int -> ?scheme:scheme -> ?detection_window:int ->
  ?recorder:Dgr_obs.Recorder.t -> Graph.t -> Mutator.t -> env -> t
(** [deadlock_every = k]: every k-th cycle also runs M_T (default 1 =
    every cycle; 0 = never detect deadlock). [scheme] defaults to [Tree];
    [detection_window] (default 8) is the flood scheme's credit
    round trip in steps. [recorder] receives phase transitions (wave-
    tagged) and cycle verdicts as trace events. The mutator's active
    lists are managed by this controller from here on. *)

val scheme : t -> scheme

val phase : t -> phase

val phase_started_at : t -> int
(** The step at which the current phase was entered ([env.now] at the
    last transition; [0] before the first cycle). The engine's mark-wave
    watchdog and the report tool use this to age a phase. *)

val graph : t -> Graph.t

val start_cycle : t -> unit
(** Begin marking from [Idle]. Raises [Invalid_argument] if a cycle is
    already in progress. No-op graphs (no root) still cycle: an absent
    root means everything live is garbage. *)

val poll : t -> Restructure.report option
(** Advance the state machine if the current run has finished; returns the
    cycle report when a cycle completes (restructure just ran). *)

val learn_credit : t -> pe:int -> epoch:int -> sent:int -> executed:int -> unit
(** Feed one termination credit to the current flood detector (the
    engine wires the network's credit sink here). Wrong-epoch credits —
    debris of an abandoned wave, or latecomers after a phase flip — are
    dropped by the detector; calling while Idle or under the tree scheme
    is harmless for the same reason. *)

val restart_phase : t -> unit
(** Crash recovery: abandon the marking wave in progress and re-derive
    the current phase from scratch — reset its plane ({e opening a new
    wave}), create a fresh run (tree) or flood counters plus a fresh
    termination detector pinned to the new epoch (flood: quiescence is
    re-derived, never resumed), and re-seed. No machine-wide purge is
    required: the dead wave's surviving marks, returns and credits carry
    the old epoch and are dropped at dispatch (engine) or by the
    detector — they cannot corrupt the fresh run's accounting. The other
    plane's settled result and the cycle counter are untouched. No-op
    when [Idle]. *)

val run_for_plane : t -> Plane.id -> Run.t option
(** The tree run whose tasks the engine should hand to [Marker.execute]
    ([None] under the flood scheme — use {!handler_for_plane}). *)

val handler_for_plane : t -> Plane.id -> handler option
(** Scheme-agnostic dispatch for the engine. *)

val cycles_completed : t -> int

val last_report : t -> Restructure.report option

val deadlocked_ever : t -> Vid.Set.t
(** Union of all deadlock reports so far. *)

val total_garbage_collected : t -> int

val mr_marks_total : t -> int
(** Cumulative mark-task executions across completed M_R runs. *)

val mt_marks_total : t -> int
