open Dgr_graph
open Dgr_task

(** The endless mark/restructure cycle (§4, §5).

    A [Cycle.t] is the controller state machine driving garbage collection
    concurrently with the reduction process:

    {v Idle → [Mark_tasks (M_T)] → Mark_root (M_R) → restructure → Idle v}

    M_T runs {e before} M_R within a cycle (required by Theorem 2) and only
    on every [deadlock_every]-th cycle (§6: "our approach is to execute
    M_T only occasionally"). The controller is polled by the engine after
    every simulation step; phase transitions are detected by run
    completion. The restructuring phase executes atomically inside one
    poll — its cost is what the engine reports as "pause" in E4.

    M_T's seeds are the endpoints of every reduction task currently in a
    pool or in flight — the [troot]/[taskroot_i] construction of §5.2
    flattened, with in-transit tasks made visible by the environment
    snapshot (the paper defers that mechanism to [5]).

    Everything here assumes §2.1's idealized channel: every spawned mark
    task arrives, exactly once. A lost mark leaves its parent's count
    forever positive (tree scheme) or the PE counters forever unbalanced
    (flood scheme) — the cycle simply never completes; a duplicated
    return corrupts the counts outright. When the simulator injects
    faults, the network's reliable-delivery layer ([Dgr_sim.Network])
    restores that exactly-once effect, and "in flight" above means
    {e undelivered sends} — a dropped frame still seeds M_T, since its
    retransmission will eventually deliver it. *)

type env = {
  spawn_mark : Task.mark -> unit;  (** route into the owning PE's pool *)
  iter_reduction_endpoints : (Vid.t -> unit) -> unit;
      (** apply a function to the endpoint vertices of every pending or
          in-flight reduction task (pools + network + parked), in no
          particular order and possibly with repeats — the controller
          folds them into the M_T seed set *)
  purge_tasks : (Task.t -> bool) -> int;
  reprioritize : unit -> int;
  now : unit -> int;
      (** simulation clock, for flood-scheme termination detection *)
}

type phase = Idle | Mark_tasks | Mark_root

type scheme = Tree | Flood_counters
(** [Tree]: the marking-tree algorithm of Figs 4-1/5-1/5-3 (per-vertex
    mt-cnt/mt-par, return tasks, [done] via rootpar). [Flood_counters]:
    the §6 space optimization — no returns, two counter words per PE,
    termination by counting (see {!Flood} and {!Termination}). *)

type handler = Tree_run of Run.t | Flood_run of Flood.t
(** What the engine must hand a marking task to. *)

type t

val create :
  ?deadlock_every:int -> ?scheme:scheme -> ?detection_window:int ->
  ?recorder:Dgr_obs.Recorder.t -> Graph.t -> Mutator.t -> env -> t
(** [deadlock_every = k]: every k-th cycle also runs M_T (default 1 =
    every cycle; 0 = never detect deadlock). [scheme] defaults to [Tree];
    [detection_window] (default 8) is the flood scheme's termination-wave
    round trip in steps. [recorder] receives phase transitions and cycle
    verdicts as trace events. The mutator's active lists are managed by
    this controller from here on. *)

val scheme : t -> scheme

val phase : t -> phase

val phase_started_at : t -> int
(** The step at which the current phase was entered ([env.now] at the
    last transition; [0] before the first cycle). The engine's mark-wave
    watchdog and the report tool use this to age a phase. *)

val graph : t -> Graph.t

val start_cycle : t -> unit
(** Begin marking from [Idle]. Raises [Invalid_argument] if a cycle is
    already in progress. No-op graphs (no root) still cycle: an absent
    root means everything live is garbage. *)

val poll : t -> Restructure.report option
(** Advance the state machine if the current run has finished; returns the
    cycle report when a cycle completes (restructure just ran). *)

val restart_phase : t -> unit
(** Crash recovery: abandon the marking wave in progress and re-derive the
    current phase from scratch — reset its plane, create a fresh run
    (tree) or flood counters plus a fresh termination detector (flood:
    quiescence is re-derived, never resumed), and re-seed. The caller
    must first purge every marking task machine-wide (pools, network,
    crashed and surviving PEs alike): a stale mark or return credited to
    the fresh run would corrupt its accounting exactly the way §2.1's
    channel assumptions forbid. The other plane's settled result and the
    cycle counter are untouched. No-op when [Idle]. *)

val run_for_plane : t -> Plane.id -> Run.t option
(** The tree run whose tasks the engine should hand to [Marker.execute]
    ([None] under the flood scheme — use {!handler_for_plane}). *)

val handler_for_plane : t -> Plane.id -> handler option
(** Scheme-agnostic dispatch for the engine. *)

val cycles_completed : t -> int

val last_report : t -> Restructure.report option

val deadlocked_ever : t -> Vid.Set.t
(** Union of all deadlock reports so far. *)

val total_garbage_collected : t -> int

val mr_marks_total : t -> int
(** Cumulative mark-task executions across completed M_R runs. *)

val mt_marks_total : t -> int
