open Dgr_graph
open Dgr_task

type report = {
  garbage : Vid.t list;
  deadlocked : Vid.t list;
  deadlock_checked : bool;
  irrelevant_purged : int;
  reprioritized : int;
}

(* The verdict pass for one home partition: read-only over the planes,
   touching only [pe]'s slots, so every home can run concurrently.
   Lists are built by prepending over the ascending-vid slot walk —
   deterministic per home, and the caller concatenates homes in fixed PE
   order, so the merged verdict is identical at every domain count. *)
let collect_home g ~deadlock_checked ~pe =
  let gar = ref [] and dl = ref [] in
  Graph.iter_home g ~pe (fun v ->
      if not (Vertex.free v) then begin
        let mr = Vertex.mr v in
        if Plane.unmarked mr then gar := Vertex.id v :: !gar
        else if
          deadlock_checked && Plane.marked mr
          && Plane.prior mr = 3
          && not (Plane.marked (Vertex.mt v))
        then dl := Vertex.id v :: !dl
      end);
  (!gar, !dl)

(* Owner-local bookkeeping on one home's survivors: requester sets and
   scheduling priorities live on the vertex itself, so this pass is also
   safe per home. *)
let persist_home g ~in_gar ~pe =
  Graph.iter_home g ~pe (fun v ->
      if (not (Vertex.free v)) && not (in_gar (Vertex.id v)) then begin
        Vertex.retain_requesters v (fun r -> not (in_gar r));
        (* Persist the cycle's priority verdict for pool scheduling. *)
        if Plane.marked (Vertex.mr v) then Vertex.set_sched_prior v @@ Plane.prior (Vertex.mr v)
      end)

let serial_each_home g f =
  for pe = 0 to Graph.num_pes g - 1 do
    f pe
  done

let run ~graph:g ~deadlock_checked ~purge_tasks ~reprioritize ?each_home () =
  let each_home = match each_home with Some f -> f | None -> serial_each_home g in
  let pes = Graph.num_pes g in
  let gar_by = Array.make pes [] and dl_by = Array.make pes [] in
  each_home (fun pe ->
      let gar, dl = collect_home g ~deadlock_checked ~pe in
      gar_by.(pe) <- gar;
      dl_by.(pe) <- dl);
  let gar = List.concat (Array.to_list gar_by) in
  let dl = List.concat (Array.to_list dl_by) in
  let gar_set = Vid.Set.of_list gar in
  let in_gar v = Vid.Set.mem v gar_set in
  (* Expunge tasks touching garbage before the slots are recycled.
     Requests into GAR are Property 6's irrelevant tasks. The network is
     shared, so this stays serial between the two sharded passes. *)
  let purged =
    purge_tasks (fun task ->
        match task with
        | Task.Reduction r -> List.exists in_gar (Task.reduction_endpoints r)
        | Task.Marking _ -> false)
  in
  each_home (fun pe -> persist_home g ~in_gar ~pe);
  List.iter (Graph.release g) gar;
  let moved = reprioritize () in
  Graph.reset_plane g Plane.MR;
  Graph.reset_plane g Plane.MT;
  {
    garbage = gar;
    deadlocked = dl;
    deadlock_checked;
    irrelevant_purged = purged;
    reprioritized = moved;
  }

let pp_report fmt r =
  Format.fprintf fmt "garbage=%d deadlocked=%d%s purged=%d reprioritized=%d"
    (List.length r.garbage) (List.length r.deadlocked)
    (if r.deadlock_checked then "" else " (unchecked)")
    r.irrelevant_purged r.reprioritized
