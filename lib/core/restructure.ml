open Dgr_graph
open Dgr_task

type report = {
  garbage : Vid.t list;
  deadlocked : Vid.t list;
  deadlock_checked : bool;
  irrelevant_purged : int;
  reprioritized : int;
}

let collect_sets g ~deadlock_checked =
  Graph.fold_live
    (fun (gar, dl) v ->
      let mr = (Vertex.mr v) in
      if Plane.unmarked mr then ((Vertex.id v) :: gar, dl)
      else begin
        let dl =
          if
            deadlock_checked && Plane.marked mr
            && (Plane.prior mr) = 3
            && not (Plane.marked (Vertex.mt v))
          then (Vertex.id v) :: dl
          else dl
        in
        (gar, dl)
      end)
    ([], []) g

let run ~graph:g ~deadlock_checked ~purge_tasks ~reprioritize () =
  let gar, dl = collect_sets g ~deadlock_checked in
  let gar_set = Vid.Set.of_list gar in
  let in_gar v = Vid.Set.mem v gar_set in
  (* Expunge tasks touching garbage before the slots are recycled.
     Requests into GAR are Property 6's irrelevant tasks. *)
  let purged =
    purge_tasks (fun task ->
        match task with
        | Task.Reduction r -> List.exists in_gar (Task.reduction_endpoints r)
        | Task.Marking _ -> false)
  in
  (* Dangling bookkeeping on surviving vertices. *)
  Graph.iter_live
    (fun v ->
      if not (in_gar (Vertex.id v)) then begin
        Vertex.retain_requesters v (fun r -> not (in_gar r));
        (* Persist the cycle's priority verdict for pool scheduling. *)
        if Plane.marked (Vertex.mr v) then Vertex.set_sched_prior v @@ Plane.prior (Vertex.mr v)
      end)
    g;
  List.iter (Graph.release g) gar;
  let moved = reprioritize () in
  Graph.reset_plane g Plane.MR;
  Graph.reset_plane g Plane.MT;
  {
    garbage = gar;
    deadlocked = dl;
    deadlock_checked;
    irrelevant_purged = purged;
    reprioritized = moved;
  }

let pp_report fmt r =
  Format.fprintf fmt "garbage=%d deadlocked=%d%s purged=%d reprioritized=%d"
    (List.length r.garbage) (List.length r.deadlocked)
    (if r.deadlock_checked then "" else " (unchecked)")
    r.irrelevant_purged r.reprioritized
