(** Distributed termination detection for the flood scheme's mark waves.

    The tree scheme detects completion structurally — the chain of
    [Return] tasks drains back to [Rootpar] (§2.1's exactly-once
    counting). The flood scheme has no tree, so each PE instead keeps
    two words per wave: mark tasks {e sent} from that PE and mark tasks
    {e executed} on it (§6). This detector assembles a sound global
    verdict from those per-PE counters without ever snapshotting the
    machine.

    {2 The credit protocol}

    A detector is pinned to one {e epoch} — the {!Dgr_graph.Graph.wave}
    opened when the phase's plane was reset. PEs report {e credits}:
    [(pe, epoch, sent, executed)] quadruples piggybacked on ordinary
    transport frames (data batches and their cumulative acks) plus a
    low-rate heartbeat for otherwise-silent PEs. Because the counters
    are cumulative within a wave, credits need no ordering or
    exactly-once discipline — {!learn} takes a componentwise max, so
    stale, duplicated, or reordered credits are harmless, and credits
    from another epoch are dropped outright.

    Counting alone is not sufficient: the sums can balance transiently
    while a mark task is in flight between a PE that already reported
    and one that has not (the classic counting-detector race, cf.
    Mattern's four-counter method). {!observe} therefore applies a
    two-observation rule: termination is declared only after the learned
    sums have been balanced {e with the same [sent] total} across two
    observations at least [window] steps apart, where [window] covers
    the maximum credit latency. Any imbalance restarts the wait.

    The counters themselves are only honest if a counted send executes
    exactly once. The physical channel promises at-most-once under the
    fault plane; the network's reliable-delivery layer (acks,
    retransmission, dedup — see [Dgr_sim.Network]) upgrades that, and
    [executed] is counted at first delivery only.

    {2 Crashes}

    A detector never survives a crash. When a PE crashes mid-wave the
    cycle controller restarts the phase under a {e new} wave
    ([Graph.reset_plane] bumps the graph wave); in-flight mark tasks and
    credits from the dead wave carry the old epoch and are dropped at
    dispatch (tasks) or by {!learn} (credits) — no machine-wide purge is
    needed, and a detector that kept pre-crash history cannot latch a
    false quiescence because the restarted phase's fresh detector is
    pinned to the new epoch, its counters starting at zero on every
    PE. *)

type t

val create : window:int -> epoch:int -> pes:int -> t
(** A detector for one mark wave: [epoch] is the wave tag credits must
    match, [pes] the number of per-PE counter cells, [window] the
    minimum separation (in steps) of the two quiet observations —
    at least the worst-case credit latency. *)

val epoch : t -> int

val learn : t -> pe:int -> epoch:int -> sent:int -> executed:int -> unit
(** Absorb one credit. Componentwise max per PE; idempotent; ignores
    credits whose [epoch] differs from the detector's or whose [pe] is
    out of range. *)

val observe : t -> now:int -> unit
(** One observation at step [now]: if every PE has reported and the
    learned sums balance, arm (or check) the two-observation window;
    otherwise disarm it. *)

val terminated : t -> bool
(** Latched true once two qualifying observations [window] apart agree.
    Sound provided [window] is at least the maximum credit delay and
    counters only grow within the epoch. *)

val learned_sent : t -> int
(** Sum of the learned per-PE sent counters (diagnostics). *)

val learned_executed : t -> int
