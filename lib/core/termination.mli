(** Distributed termination detection for counter-based marking.

    The compact marking scheme of §6 replaces the marking tree's
    per-vertex [mt-cnt]/[mt-par] with two counters per PE — mark tasks
    sent and mark tasks executed. Marking has terminated when the sums
    are equal {e and stay equal across a detection wave}: a single
    instantaneous reading can race with a task in flight, so we use the
    classic two-wave rule (Mattern's four-counter method): two
    observations at least [window] steps apart with [sent = executed] and
    the same [sent] total. [window] models the wave's round-trip across
    the machine.

    Counting assumes exactly-once effect: a counted send must execute
    exactly once, or the sums never balance (a lost mark task) or
    over-balance (a duplicated one). The physical channel only promises
    at-most-once under the fault plane; the network's reliable-delivery
    layer (acks, retransmission, dedup — see [Dgr_sim.Network]) is what
    makes the counters honest, and [executed] must be counted at first
    delivery only.

    A PE {e crash} breaks the accounting beyond repair: counted sends
    die undelivered in severed links and the crashed PE's own counter
    contributions vanish, so the sums can never be trusted to balance
    again — a detector that kept its history could even latch a false
    quiescence from pre-crash readings. Recovery therefore never resumes
    a detector across a crash: the engine purges all marking tasks,
    restarts the phase ([Dgr_core.Cycle.restart_phase]), and re-derives
    quiescence with a {e fresh} detector over the fresh run's counters,
    which start at zero on both sides. *)

type t

val create : window:int -> t

val observe : t -> now:int -> sent:int -> executed:int -> unit
(** Feed one reading of the global counter sums. *)

val terminated : t -> bool
(** True once two consistent quiescent observations [window] apart have
    been seen. Latches; [reset] to reuse. *)

val reset : t -> unit
