open Dgr_graph

(** State of one marking process (an instance of M_R or M_T).

    The paper detects termination with a dummy [rootpar] vertex and a
    [done] flag; we generalize the flag to a count of outstanding seeds so
    that M_T can be started from every task endpoint at once (the paper's
    [troot] / [taskroot_i] construction collapses to "one seed per
    endpoint, all crediting rootpar").

    A run is pinned to the wave ([Graph.wave]) that was current when it
    was created; every task it spawns carries that wave, and tasks from
    another wave must never be credited to it (the executor drops them).
    The execution counters are per-PE cells so that PEs sharded across
    domains can count their own executions without contention; only the
    totals are meaningful. The seed count and [finished] flag are still
    scalar — they are only touched at the step barrier (returns to
    [Rootpar] are controller tasks). *)

type variant = Basic | Priority | Tasks
(** Which mark task drives this run: [Basic] = mark1 (Fig 4-1),
    [Priority] = mark2 / M_R (Fig 5-1), [Tasks] = mark3 / M_T (Fig 5-3). *)

type t = {
  graph : Graph.t;
  plane : Plane.id;
  variant : variant;
  wave : int;  (** the [Graph.wave] this run marks under *)
  mutable outstanding_seeds : int;
  mutable finished : bool;
  marks_executed : int array;  (** per-PE; read via {!marks_total} *)
  returns_executed : int array;  (** per-PE; read via {!returns_total} *)
  mutable coop_spawns : int;  (** mark tasks spawned by cooperating mutators *)
  mutable coop_closure : int;  (** vertices marked synchronously by closure cooperation *)
}

val create : Graph.t -> variant -> t
(** A run with no seeds; [finished] is false until seeds are added and all
    have returned. The plane is implied by the variant ([Tasks] -> M_T,
    others -> M_R); the wave is captured from the graph, so create the
    run right after [Graph.reset_plane] opened its wave. *)

val plane_of_variant : variant -> Plane.id

val count_mark : t -> pe:int -> unit
(** Count one mark-task execution on [pe]'s cell (out-of-range PEs — the
    controller replays as [-1] — account to slot 0). *)

val count_return : t -> pe:int -> unit

val marks_total : t -> int

val returns_total : t -> int

val seed_added : t -> unit
(** Record that a seed mark task (with parent [Rootpar]) was spawned. *)

val seed_returned : t -> unit
(** A [Return] reached [Rootpar]; the run finishes when the count drops to
    zero. *)

val check_trivially_finished : t -> unit
(** A run seeded with zero seeds is immediately finished. *)

val pp : Format.formatter -> t -> unit
