open Dgr_graph
open Dgr_task

(** Atomic execution of marking tasks (Figs 4-1, 5-1, 5-3).

    [execute run ~emit task] runs one marking task to completion against
    the run's plane, handing each spawned mark task to [emit] as it is
    created — no intermediate list is built, so the marking inner loop
    does not allocate. Task execution is atomic with respect to the
    vertex it manipulates (§2.1); in the simulator [emit] sends the task
    through the network, in the synchronous engine it queues locally. A
    mark task addressed to a free vertex degenerates to an immediate
    return (its target was reclaimed by an earlier cycle's restructuring;
    the next cycle will see the truth). *)

val execute : Run.t -> pe:int -> emit:(Task.mark -> unit) -> Task.mark -> unit
(** Raises [Invalid_argument] if the task does not belong to the run
    (wrong plane / variant / wave — stale-wave tasks must be dropped by
    the caller before dispatch). [pe] is the executing PE, used only to
    pick the run's per-PE execution counter cell; pass [-1] from the
    controller. *)

val seed_for : Run.t -> Vid.t -> Task.mark
(** The seed task of the run's variant for a given vertex, with parent
    [Rootpar] and (for M_R) initial priority 3 — "we assume that the value
    of the root is essential to the overall computation" (§5.1). *)
