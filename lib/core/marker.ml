open Dgr_graph
open Dgr_task
open Task

let bad_task run task =
  invalid_arg
    (Format.asprintf "Marker.execute: task %a does not belong to run %a" Task.pp_mark task Run.pp
       run)

(* Shared by mark1/mark3 (the non-priority variants): trace [children],
   building the marking tree. Spawned tasks are handed to [emit] in the
   order the children are traced; if no child charged the count, the
   vertex is fully marked and owes its parent a return. Every spawned
   task carries the run's wave. *)
let mark_simple run ~v ~par ~emit =
  let g = run.Run.graph in
  let ep = run.Run.wave in
  let vx = Graph.vertex g v in
  let plane = Vertex.plane vx run.Run.plane in
  if (Vertex.free vx) || not (Plane.unmarked plane) then
    emit (Return { plane = run.Run.plane; par; ep })
  else begin
    Plane.touch plane;
    Plane.set_par plane @@ par;
    Trace.iter_children g run.Run.plane v (fun c ->
        Plane.set_cnt plane @@ (Plane.cnt plane) + 1;
        emit
          (match run.Run.variant with
          | Run.Tasks -> Mark3 { v = c; par = Plane.Parent v; ep }
          | Run.Basic | Run.Priority -> Mark1 { v = c; par = Plane.Parent v; ep }));
    if (Plane.cnt plane) = 0 then begin
      Plane.mark plane;
      emit (Return { plane = run.Run.plane; par; ep })
    end
  end

(* Fig 5-1: the body of [modify(v,par,prior)]. *)
let modify run ~v ~par ~prior ~emit =
  let g = run.Run.graph in
  let ep = run.Run.wave in
  let vx = Graph.vertex g v in
  let plane = Vertex.plane vx run.Run.plane in
  Plane.touch plane;
  Plane.set_par plane @@ par;
  Plane.set_prior plane @@ prior;
  Vertex.iter_args vx (fun c ->
      Plane.set_cnt plane @@ (Plane.cnt plane) + 1;
      emit
        (Mark2 { v = c; par = Plane.Parent v; prior = Trace.child_priority g v prior c; ep }));
  if (Plane.cnt plane) = 0 then begin
    Plane.mark plane;
    emit (Return { plane = run.Run.plane; par; ep })
  end

(* Fig 5-1: mark2. *)
let mark_priority run ~v ~par ~prior ~emit =
  let g = run.Run.graph in
  let ep = run.Run.wave in
  let vx = Graph.vertex g v in
  let plane = Vertex.plane vx run.Run.plane in
  if (Vertex.free vx) then emit (Return { plane = run.Run.plane; par; ep })
  else if Plane.unmarked plane then modify run ~v ~par ~prior ~emit
  else if prior <= (Plane.prior plane) then emit (Return { plane = run.Run.plane; par; ep })
  else begin
    (* Re-mark at a higher priority. If the vertex is mid-marking
       (transient), release its current parent first: the new [modify]
       re-points mt-par at the new parent, and the outstanding children
       from the previous visit still credit this vertex's count. *)
    if Plane.transient plane then
      emit (Return { plane = run.Run.plane; par = (Plane.par plane); ep });
    modify run ~v ~par ~prior ~emit
  end

(* Fig 4-1: return1. *)
let return_task run ~par ~emit =
  match par with
  | Plane.Rootpar -> Run.seed_returned run
  | Plane.Parent v ->
    let g = run.Run.graph in
    let vx = Graph.vertex g v in
    let plane = Vertex.plane vx run.Run.plane in
    if (Plane.cnt plane) <= 0 then
      invalid_arg (Format.asprintf "Marker: return to %a with mt-cnt=0" Vid.pp v);
    Plane.set_cnt plane @@ (Plane.cnt plane) - 1;
    if (Plane.cnt plane) = 0 then begin
      Plane.mark plane;
      emit (Return { plane = run.Run.plane; par = (Plane.par plane); ep = run.Run.wave })
    end

let execute run ~pe ~emit task =
  (match task with
  | Return _ -> ()
  | Mark1 _ | Mark2 _ | Mark3 _ ->
    if Task.plane_of_mark task <> run.Run.plane then bad_task run task);
  if Task.mark_ep task <> run.Run.wave then bad_task run task;
  match (task, run.Run.variant) with
  | Mark1 { v; par; _ }, Run.Basic ->
    Run.count_mark run ~pe;
    mark_simple run ~v ~par ~emit
  | Mark1 { v; par; _ }, Run.Priority ->
    (* mark1 inside an M_R run happens only via legacy callers; treat it
       as a priority-less mark2 at the lowest priority. *)
    Run.count_mark run ~pe;
    mark_priority run ~v ~par ~prior:1 ~emit
  | Mark2 { v; par; prior; _ }, Run.Priority ->
    Run.count_mark run ~pe;
    mark_priority run ~v ~par ~prior ~emit
  | Mark3 { v; par; _ }, Run.Tasks ->
    Run.count_mark run ~pe;
    mark_simple run ~v ~par ~emit
  | Return { plane; par; _ }, _ ->
    if plane <> run.Run.plane then bad_task run task;
    Run.count_return run ~pe;
    return_task run ~par ~emit
  | (Mark1 _ | Mark2 _ | Mark3 _), _ -> bad_task run task

let seed_for run v =
  let ep = run.Run.wave in
  match run.Run.variant with
  | Run.Basic -> Mark1 { v; par = Plane.Rootpar; ep }
  | Run.Priority -> Mark2 { v; par = Plane.Rootpar; prior = 3; ep }
  | Run.Tasks -> Mark3 { v; par = Plane.Rootpar; ep }
