open Dgr_graph
open Dgr_task
open Task

let bad_task run task =
  invalid_arg
    (Format.asprintf "Marker.execute: task %a does not belong to run %a" Task.pp_mark task Run.pp
       run)

(* Shared by mark1/mark3 (the non-priority variants): trace [children],
   building the marking tree. Returns the spawned tasks. *)
let mark_simple run ~v ~par ~children =
  let g = run.Run.graph in
  let vx = Graph.vertex g v in
  let plane = Vertex.plane vx run.Run.plane in
  if vx.Vertex.free || not (Plane.unmarked plane) then
    [ Return { plane = run.Run.plane; par } ]
  else begin
    Plane.touch plane;
    plane.Plane.par <- par;
    let spawned =
      List.map
        (fun c ->
          plane.Plane.cnt <- plane.Plane.cnt + 1;
          match run.Run.variant with
          | Run.Tasks -> Mark3 { v = c; par = Plane.Parent v }
          | Run.Basic | Run.Priority -> Mark1 { v = c; par = Plane.Parent v })
        children
    in
    if plane.Plane.cnt = 0 then begin
      Plane.mark plane;
      [ Return { plane = run.Run.plane; par } ]
    end
    else spawned
  end

(* Fig 5-1: the body of [modify(v,par,prior)]. *)
let modify run ~v ~par ~prior =
  let g = run.Run.graph in
  let vx = Graph.vertex g v in
  let plane = Vertex.plane vx run.Run.plane in
  Plane.touch plane;
  plane.Plane.par <- par;
  plane.Plane.prior <- prior;
  let spawned =
    List.map
      (fun c ->
        plane.Plane.cnt <- plane.Plane.cnt + 1;
        Mark2 { v = c; par = Plane.Parent v; prior = Trace.child_priority g v prior c })
      (Vertex.args vx)
  in
  if plane.Plane.cnt = 0 then begin
    Plane.mark plane;
    [ Return { plane = run.Run.plane; par } ]
  end
  else spawned

(* Fig 5-1: mark2. *)
let mark_priority run ~v ~par ~prior =
  let g = run.Run.graph in
  let vx = Graph.vertex g v in
  let plane = Vertex.plane vx run.Run.plane in
  if vx.Vertex.free then [ Return { plane = run.Run.plane; par } ]
  else if Plane.unmarked plane then modify run ~v ~par ~prior
  else if prior <= plane.Plane.prior then [ Return { plane = run.Run.plane; par } ]
  else begin
    (* Re-mark at a higher priority. If the vertex is mid-marking
       (transient), release its current parent first: the new [modify]
       re-points mt-par at the new parent, and the outstanding children
       from the previous visit still credit this vertex's count. *)
    let release =
      if Plane.transient plane then [ Return { plane = run.Run.plane; par = plane.Plane.par } ]
      else []
    in
    release @ modify run ~v ~par ~prior
  end

(* Fig 4-1: return1. *)
let return_task run ~par =
  match par with
  | Plane.Rootpar ->
    Run.seed_returned run;
    []
  | Plane.Parent v ->
    let g = run.Run.graph in
    let vx = Graph.vertex g v in
    let plane = Vertex.plane vx run.Run.plane in
    if plane.Plane.cnt <= 0 then
      invalid_arg (Format.asprintf "Marker: return to %a with mt-cnt=0" Vid.pp v);
    plane.Plane.cnt <- plane.Plane.cnt - 1;
    if plane.Plane.cnt = 0 then begin
      Plane.mark plane;
      [ Return { plane = run.Run.plane; par = plane.Plane.par } ]
    end
    else []

let execute run task =
  (match task with
  | Return _ -> ()
  | Mark1 _ | Mark2 _ | Mark3 _ ->
    if Task.plane_of_mark task <> run.Run.plane then bad_task run task);
  match (task, run.Run.variant) with
  | Mark1 { v; par }, Run.Basic ->
    run.Run.marks_executed <- run.Run.marks_executed + 1;
    mark_simple run ~v ~par ~children:(Trace.children run.Run.graph Plane.MR v)
  | Mark1 { v; par }, Run.Priority ->
    (* mark1 inside an M_R run happens only via legacy callers; treat it
       as a priority-less mark2 at the lowest priority. *)
    run.Run.marks_executed <- run.Run.marks_executed + 1;
    mark_priority run ~v ~par ~prior:1
  | Mark2 { v; par; prior }, Run.Priority ->
    run.Run.marks_executed <- run.Run.marks_executed + 1;
    mark_priority run ~v ~par ~prior
  | Mark3 { v; par }, Run.Tasks ->
    run.Run.marks_executed <- run.Run.marks_executed + 1;
    mark_simple run ~v ~par ~children:(Trace.children run.Run.graph Plane.MT v)
  | Return { plane; par }, _ ->
    if plane <> run.Run.plane then bad_task run task;
    run.Run.returns_executed <- run.Run.returns_executed + 1;
    return_task run ~par
  | (Mark1 _ | Mark2 _ | Mark3 _), _ -> bad_task run task

let seed_for run v =
  match run.Run.variant with
  | Run.Basic -> Mark1 { v; par = Plane.Rootpar }
  | Run.Priority -> Mark2 { v; par = Plane.Rootpar; prior = 3 }
  | Run.Tasks -> Mark3 { v; par = Plane.Rootpar }
