open Dgr_graph

type variant = Basic | Priority | Tasks

type t = {
  graph : Graph.t;
  plane : Plane.id;
  variant : variant;
  wave : int;
  mutable outstanding_seeds : int;
  mutable finished : bool;
  marks_executed : int array;
  returns_executed : int array;
  mutable coop_spawns : int;
  mutable coop_closure : int;
}

let plane_of_variant = function Basic | Priority -> Plane.MR | Tasks -> Plane.MT

let create graph variant =
  {
    graph;
    plane = plane_of_variant variant;
    variant;
    wave = Graph.wave graph;
    outstanding_seeds = 0;
    finished = false;
    marks_executed = Array.make (Int.max 1 (Graph.num_pes graph)) 0;
    returns_executed = Array.make (Int.max 1 (Graph.num_pes graph)) 0;
    coop_spawns = 0;
    coop_closure = 0;
  }

(* Out-of-range executors (the controller replays barrier tasks as PE
   [-1]) account to slot 0; only the totals are ever read. *)
let pe_slot t pe = if pe < 0 || pe >= Array.length t.marks_executed then 0 else pe

let count_mark t ~pe =
  let s = pe_slot t pe in
  t.marks_executed.(s) <- t.marks_executed.(s) + 1

let count_return t ~pe =
  let s = pe_slot t pe in
  t.returns_executed.(s) <- t.returns_executed.(s) + 1

let marks_total t = Array.fold_left ( + ) 0 t.marks_executed

let returns_total t = Array.fold_left ( + ) 0 t.returns_executed

let seed_added t = t.outstanding_seeds <- t.outstanding_seeds + 1

let seed_returned t =
  if t.outstanding_seeds <= 0 then invalid_arg "Run.seed_returned: no outstanding seeds";
  t.outstanding_seeds <- t.outstanding_seeds - 1;
  if t.outstanding_seeds = 0 then t.finished <- true

let check_trivially_finished t = if t.outstanding_seeds = 0 then t.finished <- true

let pp fmt t =
  let variant =
    match t.variant with Basic -> "basic" | Priority -> "M_R" | Tasks -> "M_T"
  in
  Format.fprintf fmt "%s[%a] w%d seeds=%d finished=%b marks=%d returns=%d" variant
    Plane.pp_id t.plane t.wave t.outstanding_seeds t.finished (marks_total t)
    (returns_total t)
