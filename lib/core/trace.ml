open Dgr_graph

let children g plane v =
  let vx = Graph.vertex g v in
  if vx.Vertex.free then []
  else
    match plane with
    | Plane.MR -> Vertex.args vx
    | Plane.MT ->
      let requesters =
        List.filter_map (fun (e : Vertex.request_entry) -> e.Vertex.who) vx.Vertex.requested
      in
      requesters @ Vertex.unrequested_args vx

let child_priority g v prior c =
  let vx = Graph.vertex g v in
  Int.min prior (Vertex.request_type vx c)
