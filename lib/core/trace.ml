open Dgr_graph

let children g plane v =
  let vx = Graph.vertex g v in
  if (Vertex.free vx) then []
  else
    match plane with
    | Plane.MR -> Vertex.args vx
    | Plane.MT ->
      let requesters =
        List.filter_map (fun (e : Vertex.request_entry) -> e.Vertex.who) (Vertex.requested vx)
      in
      requesters @ Vertex.unrequested_args vx

let iter_children g plane v f =
  let vx = Graph.vertex g v in
  if not (Vertex.free vx) then
    match plane with
    | Plane.MR -> Vertex.iter_args vx f
    | Plane.MT ->
      Vertex.iter_requesters vx f;
      Vertex.iter_unrequested_args vx f

let child_priority g v prior c =
  let vx = Graph.vertex g v in
  Int.min prior (Vertex.request_type vx c)
