open Dgr_graph
open Dgr_task
open Task

type coop_event =
  | Ev_tree_edge of { run : Run.t; parent : Vid.t; child : Vid.t }
  | Ev_witness of { run : Run.t; a : Vid.t; b : Vid.t; c : Vid.t }
  | Ev_flood_edge of { fl : Flood.t; parent : Vid.t; child : Vid.t }

type t = {
  graph : Graph.t;
  mutable active : Run.t list;
  mutable active_flood : Flood.t list;
  mutable spawn : Task.mark -> unit;
  mutable coop_pe : unit -> int;
  mutable defer : (coop_event -> unit) option;
  mutable on_connect : Vid.t -> Vid.t -> unit;
  mutable on_disconnect : Vid.t -> Vid.t -> unit;
  mutable recorder : Dgr_obs.Recorder.t option;
  mutable guard : Vid.t -> unit;
  mutable total_coop_spawned : int;
  mutable total_coop_closure : int;
  (* Scratch stack for the synchronous marking closures, (vid, prior)
     pairs interleaved. Reused across calls — the closures never nest —
     so the traversal allocates nothing once the stack has grown. *)
  mutable stk : int array;
  mutable stk_n : int;
}

let nop2 _ _ = ()

let create ?(on_connect = nop2) ?(on_disconnect = nop2) ?recorder ~spawn graph =
  {
    graph;
    active = [];
    active_flood = [];
    spawn;
    coop_pe = (fun () -> 0);
    defer = None;
    on_connect;
    on_disconnect;
    recorder;
    guard = ignore;
    total_coop_spawned = 0;
    total_coop_closure = 0;
    stk = Array.make 32 0;
    stk_n = 0;
  }

let stk_push t v prior =
  let n = t.stk_n in
  if 2 * (n + 1) > Array.length t.stk then begin
    let a = Array.make (4 * (n + 1)) 0 in
    Array.blit t.stk 0 a 0 (2 * n);
    t.stk <- a
  end;
  t.stk.(2 * n) <- v;
  t.stk.((2 * n) + 1) <- prior;
  t.stk_n <- n + 1

let obs t kind =
  match t.recorder with None -> () | Some r -> Dgr_obs.Recorder.emit r kind

let obs_closure t ~from ~marked =
  if marked > 0 then
    obs t (Dgr_obs.Event.Coop_closure { pe = t.coop_pe (); from_ = from; marked })

let set_active t runs = t.active <- runs

let set_active_flood t floods = t.active_flood <- floods

let set_defer t sink = t.defer <- sink

(* Flood-scheme cooperation: a marked vertex that gains a traced child
   marks the child's unmarked component synchronously (the same closure
   the tree scheme uses for non-witnessed edges). Spawning counted tasks
   here instead would be correct for the marked sets but unsound for
   termination: a mutator that keeps editing marked regions (e.g. a
   divergent speculative frontier) would feed the counters forever and
   the detection wave would never see them balance. The closure adds no
   bookkeeping, so the two-words-per-PE claim stands. *)
let flood_cooperate_edge t (fl : Flood.t) ~parent ~child =
  let g = t.graph in
  let pplane = Vertex.plane (Graph.vertex g parent) fl.Flood.plane in
  if Plane.marked pplane then begin
    t.stk_n <- 0;
    stk_push t child (Trace.child_priority g parent (Int.max 1 (Plane.prior pplane)) child);
    let marked_here = ref 0 in
    while t.stk_n > 0 do
      t.stk_n <- t.stk_n - 1;
      let v = t.stk.(2 * t.stk_n) and prior = t.stk.((2 * t.stk_n) + 1) in
      let vx = Graph.vertex g v in
      let plane = Vertex.plane vx fl.Flood.plane in
      if
        (not (Vertex.free vx))
        && ((not (Plane.marked plane)) || prior > (Plane.prior plane))
      then begin
        Plane.mark plane;
        Plane.set_prior plane @@ prior;
        t.total_coop_closure <- t.total_coop_closure + 1;
        incr marked_here;
        Trace.iter_children g fl.Flood.plane v (fun c ->
            stk_push t c (Trace.child_priority g v prior c))
      end
    done;
    obs_closure t ~from:child ~marked:!marked_here
  end

(* Deferral: in the sharded engine's buffered steps, cooperation may not
   run inline — its closures mark vertices on other PEs' shards. The
   engine installs a sink; the graph edit itself (always owner-local)
   proceeds immediately, and the cooperation body is replayed serially
   at the step barrier, in deferring-PE order, against the plane state
   as of the barrier. Evaluating the marked/transient dispatch late is
   sound: the invariants are only consumed at barriers (verdict,
   restructure, invariant checks), and a parent that advanced
   unmarked→transient→marked in the meantime only strengthens what the
   replayed cooperation does. *)
let coop_flood t fl ~parent ~child =
  match t.defer with
  | Some sink -> sink (Ev_flood_edge { fl; parent; child })
  | None -> flood_cooperate_edge t fl ~parent ~child

let flood_edge_all t ~parent ~child ~mt_only =
  List.iter
    (fun fl ->
      if (not mt_only) || fl.Flood.plane = Plane.MT then coop_flood t fl ~parent ~child)
    t.active_flood

let mark_task_for run ~v ~par ~prior =
  let ep = run.Run.wave in
  match run.Run.variant with
  | Run.Basic -> Mark1 { v; par; ep }
  | Run.Priority -> Mark2 { v; par; prior; ep }
  | Run.Tasks -> Mark3 { v; par; ep }

(* Spawn a mark task on [child] charged to the transient [parent]
   (invariant 1 lets a transient vertex carry new outstanding tasks). *)
let charge_and_spawn t run ~parent ~child ~prior =
  let plane = Vertex.plane (Graph.vertex t.graph parent) run.Run.plane in
  Plane.set_cnt plane @@ (Plane.cnt plane) + 1;
  run.Run.coop_spawns <- run.Run.coop_spawns + 1;
  t.total_coop_spawned <- t.total_coop_spawned + 1;
  obs t (Dgr_obs.Event.Coop_spawn { pe = t.coop_pe (); parent; child });
  t.spawn (mark_task_for run ~v:child ~par:(Plane.Parent parent) ~prior)

(* Synchronously mark the unmarked component reachable from [v] through
   the run's traced relation. Invariants: only unmarked vertices are
   touched; they are set directly to Marked with no outstanding counts, so
   no returns are owed; transient vertices are left to their own marking
   subtree. Priorities propagate with min(prior, request-type). *)
let closure t run ~from ~prior =
  let g = t.graph in
  t.stk_n <- 0;
  stk_push t from prior;
  let marked_here = ref 0 in
  while t.stk_n > 0 do
    t.stk_n <- t.stk_n - 1;
    let v = t.stk.(2 * t.stk_n) and prior = t.stk.((2 * t.stk_n) + 1) in
    let vx = Graph.vertex g v in
    let plane = Vertex.plane vx run.Run.plane in
    if (not (Vertex.free vx)) && Plane.unmarked plane then begin
      Plane.mark plane;
      Plane.set_prior plane @@ prior;
      run.Run.coop_closure <- run.Run.coop_closure + 1;
      t.total_coop_closure <- t.total_coop_closure + 1;
      incr marked_here;
      Trace.iter_children g run.Run.plane v (fun c ->
          stk_push t c (Trace.child_priority g v prior c))
    end
  done;
  obs_closure t ~from ~marked:!marked_here

(* Generic cooperation for a new traced edge parent→child. *)
let cooperate_edge t run ~parent ~child =
  let g = t.graph in
  let pplane = Vertex.plane (Graph.vertex g parent) run.Run.plane in
  if Plane.transient pplane then begin
    let prior = Trace.child_priority g parent (Int.max 1 (Plane.prior pplane)) child in
    charge_and_spawn t run ~parent ~child ~prior
  end
  else if Plane.marked pplane then begin
    let prior = Trace.child_priority g parent (Int.max 1 (Plane.prior pplane)) child in
    closure t run ~from:child ~prior
  end

let coop_tree t run ~parent ~child =
  match t.defer with
  | Some sink -> sink (Ev_tree_edge { run; parent; child })
  | None -> cooperate_edge t run ~parent ~child

let connect t a c =
  t.guard a;
  Vertex.connect (Graph.vertex t.graph a) c;
  t.on_connect a c

let disconnect t a b =
  t.guard a;
  Vertex.disconnect (Graph.vertex t.graph a) b;
  t.on_disconnect a b

let delete_reference t ~a ~b = disconnect t a b

(* Fig 4-2 witness protocol, for a plane whose traced relation contains
   plain args edges (M_R). [b] witnesses that [c] was already traceable. *)
let witness_cooperate t run ~a ~b ~c =
  let g = t.graph in
  let pa = Vertex.plane (Graph.vertex g a) run.Run.plane in
  let pb = Vertex.plane (Graph.vertex g b) run.Run.plane in
  if Plane.transient pa && Plane.unmarked pb then begin
    let prior = Trace.child_priority g a (Int.max 1 (Plane.prior pa)) c in
    charge_and_spawn t run ~parent:a ~child:c ~prior
  end
  else if Plane.marked pa && Plane.transient pb then begin
    (* execute mark(c,b) synchronously, charged to the transient b. *)
    Plane.set_cnt pb @@ (Plane.cnt pb) + 1;
    run.Run.coop_spawns <- run.Run.coop_spawns + 1;
    t.total_coop_spawned <- t.total_coop_spawned + 1;
    obs t (Dgr_obs.Event.Coop_spawn { pe = t.coop_pe (); parent = b; child = c });
    let prior = Trace.child_priority g b (Int.max 1 (Plane.prior pb)) c in
    Marker.execute run ~pe:(t.coop_pe ()) ~emit:t.spawn
      (mark_task_for run ~v:c ~par:(Plane.Parent b) ~prior)
  end
  (* marked a / marked b: c is at least transient by invariant 2;
     unmarked a, or transient a with non-unmarked b: covered by b. *)

let coop_witness t run ~a ~b ~c =
  match t.defer with
  | Some sink -> sink (Ev_witness { run; a; b; c })
  | None -> witness_cooperate t run ~a ~b ~c

(* Replay one deferred cooperation event against the current plane
   state. The engine calls this serially at the barrier, in deferring-PE
   order, with [coop_pe] answering the event's PE so flood counters and
   trace events charge where the mutation ran. *)
let replay t ev =
  match ev with
  | Ev_tree_edge { run; parent; child } -> cooperate_edge t run ~parent ~child
  | Ev_witness { run; a; b; c } -> witness_cooperate t run ~a ~b ~c
  | Ev_flood_edge { fl; parent; child } -> flood_cooperate_edge t fl ~parent ~child

let add_reference t ~a ~b ~c =
  let g = t.graph in
  let va = Graph.vertex g a and vb = Graph.vertex g b in
  if not (Vertex.has_arg va b) then
    invalid_arg
      (Printf.sprintf "Mutator.add_reference: witness v%d is not a child of v%d" b a);
  if not (Vertex.has_arg vb c) then
    invalid_arg
      (Printf.sprintf "Mutator.add_reference: v%d is not a child of witness v%d" c b);
  List.iter
    (fun run ->
      match run.Run.plane with
      | Plane.MR -> coop_witness t run ~a ~b ~c
      | Plane.MT ->
        (* The witness argument needs c ∈ traced-children(b), which does
           not hold for M_T in general (b may have requested c). Use the
           generic protocol. *)
        coop_tree t run ~parent:a ~child:c)
    t.active;
  flood_edge_all t ~parent:a ~child:c ~mt_only:false;
  connect t a c

let expand_node t ~a ~entry =
  (* The new edge a→entry starts unrequested, so the trace priority is
     min(prior(a), request-type) = 1 (Fig 5-1); if the caller records
     demand on the spliced edge afterwards, the upgrade waits for the
     next cycle (§5.3's "simply wait" option). The dispatch on [a]'s
     state is exactly [cooperate_edge]'s, so the generic (deferrable)
     path serves here too. *)
  List.iter (fun run -> coop_tree t run ~parent:a ~child:entry) t.active;
  flood_edge_all t ~parent:a ~child:entry ~mt_only:false;
  let va = Graph.vertex t.graph a in
  List.iter (fun old -> disconnect t a old) (Vertex.args va);
  connect t a entry

let connect_fresh t ~parent ~child = connect t parent child

let add_edge ?demand t ~a ~c =
  (match demand with
  | Some d -> Vertex.request_arg (Graph.vertex t.graph a) c d
  | None -> ());
  connect t a c;
  List.iter
    (fun run ->
      match run.Run.plane with
      | Plane.MR -> coop_tree t run ~parent:a ~child:c
      | Plane.MT ->
        (* a→c is in M_T's relation only if c is not requested by a. *)
        if demand = None then coop_tree t run ~parent:a ~child:c)
    t.active;
  List.iter
    (fun fl ->
      if fl.Flood.plane = Plane.MR || demand = None then coop_flood t fl ~parent:a ~child:c)
    t.active_flood

let record_request t ~at ~requester ~demand ~key =
  t.guard at;
  let vx = Graph.vertex t.graph at in
  let fresh = not (Vertex.has_request_entry vx requester key) in
  Vertex.add_requester vx requester ~demand ~key;
  match requester with
  | None -> ()
  | Some r ->
    (* Cooperate only when the traced edge is actually new — re-recording
       an existing request (e.g. a retried task) must not charge the
       marking tree again or M_T would never terminate. *)
    if fresh then begin
      List.iter
        (fun run -> if run.Run.plane = Plane.MT then coop_tree t run ~parent:at ~child:r)
        t.active;
      flood_edge_all t ~parent:at ~child:r ~mt_only:true
    end

let answer t ~at ~requester =
  t.guard at;
  Vertex.remove_requester (Graph.vertex t.graph at) requester

let request_child t ~v ~c ~demand =
  t.guard v;
  Vertex.request_arg (Graph.vertex t.graph v) c demand

let drop_request_child t ~v ~c =
  t.guard v;
  let vx = Graph.vertex t.graph v in
  Vertex.drop_request vx c;
  if Vertex.has_arg vx c then begin
    List.iter
      (fun run -> if run.Run.plane = Plane.MT then coop_tree t run ~parent:v ~child:c)
      t.active;
    flood_edge_all t ~parent:v ~child:c ~mt_only:true
  end

let coop_spawned t = t.total_coop_spawned

let coop_closure_marked t = t.total_coop_closure
