open Dgr_util
open Dgr_graph
open Dgr_task

type order = Fifo | Lifo | Random of Rng.t

type t = {
  g : Graph.t;
  tasks : Task.mark Vec.t;
  order : order;
  mutable head : int;  (** Fifo consumption index into [tasks] *)
  mutable mr : Run.t option;
  mutable mt : Run.t option;
  mut : Mutator.t;
  mutable executed : int;
}

let create ?(order = Fifo) g =
  let mut = Mutator.create ~spawn:(fun _ -> ()) g in
  let t =
    { g; tasks = Vec.create (); order; head = 0; mr = None; mt = None; mut; executed = 0 }
  in
  mut.Mutator.spawn <- (fun task -> Vec.push t.tasks task);
  t

let graph t = t.g

let mutator t = t.mut

let run_for t plane =
  match (plane, t.mr, t.mt) with
  | Plane.MR, Some r, _ -> r
  | Plane.MT, _, Some r -> r
  | (Plane.MR | Plane.MT), _, _ ->
    invalid_arg "Sync_engine: task for a run that was never started"

let active_runs t = List.filter_map Fun.id [ t.mr; t.mt ]

let start t variant ~seeds =
  let run = Run.create t.g variant in
  (match run.Run.plane with
  | Plane.MR -> t.mr <- Some run
  | Plane.MT -> t.mt <- Some run);
  Mutator.set_active t.mut (active_runs t);
  List.iter
    (fun v ->
      Run.seed_added run;
      Vec.push t.tasks (Marker.seed_for run v))
    seeds;
  Run.check_trivially_finished run;
  run

(* Queue compaction for the Fifo case: consumed entries are skipped via
   [head] and physically dropped when they dominate the buffer. *)
let compact t =
  if t.head > 64 && t.head * 2 > Vec.length t.tasks then begin
    let remaining = ref [] in
    for i = Vec.length t.tasks - 1 downto t.head do
      remaining := Vec.get t.tasks i :: !remaining
    done;
    Vec.clear t.tasks;
    List.iter (Vec.push t.tasks) !remaining;
    t.head <- 0
  end

let take t =
  if t.head >= Vec.length t.tasks then None
  else
    match t.order with
    | Fifo ->
      let task = Vec.get t.tasks t.head in
      t.head <- t.head + 1;
      compact t;
      Some task
    | Lifo -> Vec.pop t.tasks
    | Random rng ->
      let i = t.head + Rng.int rng (Vec.length t.tasks - t.head) in
      Some (Vec.swap_remove t.tasks i)

let pending t =
  let acc = ref [] in
  for i = Vec.length t.tasks - 1 downto t.head do
    acc := Vec.get t.tasks i :: !acc
  done;
  !acc

let step t =
  match take t with
  | None -> false
  | Some task ->
    t.executed <- t.executed + 1;
    let run = run_for t (Task.plane_of_mark task) in
    Marker.execute run ~pe:0 ~emit:t.mut.Mutator.spawn task;
    true

let drain ?interleave ?(max_steps = 10_000_000) t =
  let start = t.executed in
  let continue = ref true in
  while !continue do
    (match interleave with Some f -> f t.executed | None -> ());
    if not (step t) then continue := false
    else if t.executed - start > max_steps then begin
      let run_state =
        match active_runs t with
        | [] -> "no active run"
        | runs ->
          String.concat "; "
            (List.map (fun r -> Format.asprintf "%a" Run.pp r) runs)
      in
      failwith
        (Printf.sprintf
           "Sync_engine.drain: exceeded max_steps=%d after %d steps with %d \
            tasks queued (%s) — marking diverged?"
           max_steps (t.executed - start)
           (Vec.length t.tasks - t.head)
           run_state)
    end
  done;
  t.executed - start

let mark ?order g variant ~seeds =
  let t = create ?order g in
  let run = start t variant ~seeds in
  let (_ : int) = drain t in
  run
