open Dgr_graph
open Dgr_task

(** Compact ("flood") marking — the space optimization of §6.

    "The algorithms as presented incur a high space overhead, in that
    each vertex requires space for mt-cnt, mt-par, and marking bits …
    it is possible to combine all of the mt-cnt's and mt-par's into just
    two words on each PE."

    This variant builds no marking tree and sends no return tasks:
    a mark task on an unmarked vertex marks it {e immediately} and
    spawns mark tasks on its traced children; a mark task on a marked
    vertex dies. The per-vertex bookkeeping collapses to the colour (and
    priority, for M_R); completion is detected by counting — each PE
    keeps two words, mark tasks sent and mark tasks executed
    ({!Termination} turns the counter sums into a sound verdict).

    Cooperation is simpler than the tree scheme's (no counts to keep
    consistent): whenever a mutation gives a {e marked} vertex a new
    traced child, spawn a (counted) mark task on the child. The tree
    scheme's three-state invariants degenerate to: marked ⇒ every traced
    child is marked or has a pending mark task.

    Trade-off measured in experiment E9: 2 words per PE instead of 2 per
    vertex and no return tasks at all, against redundant mark deliveries
    on shared vertices (every parent spawns; only the first marks) and a
    termination-detection delay at the end of each phase. *)

type t = {
  graph : Graph.t;
  plane : Plane.id;
  variant : Run.variant;
  wave : int;  (** the [Graph.wave] this flood marks under *)
  sent : int array;  (** per-PE: mark tasks spawned from this PE *)
  executed : int array;  (** per-PE: mark tasks executed on this PE *)
  marked : int array;  (** per-PE: marking work actually run (≤ executed) *)
}

val create : Graph.t -> Run.variant -> t
(** The plane is implied by the variant, as in {!Run}; the wave is
    captured from the graph, so create the flood right after
    [Graph.reset_plane] opened its wave. *)

val execute : t -> pe:int -> emit:(Task.mark -> unit) -> Task.mark -> unit
(** Execute one mark task on PE [pe]; each spawned task is handed to
    [emit] as it is created (already counted as sent by [pe]) — no list
    is built. [Return] tasks are rejected — this scheme never creates
    them. *)

val seed_for : t -> Vid.t -> Task.mark

val mark_task : t -> v:Vid.t -> prior:int -> Task.mark
(** The mark task a cooperating mutation should spawn on a new traced
    child (the caller counts it with {!count_coop_spawn}). *)

val count_seed : t -> pe:int -> unit
(** Account for a seed task injected by the controller (counted as sent
    by [pe]; use the controller's home PE, conventionally 0). *)

val count_coop_spawn : t -> pe:int -> unit
(** Account for a mark task spawned by a cooperating mutation executing
    on PE [pe]. *)

val count_coalesced : t -> pe:int -> unit
(** Account for a mark task bound for PE [pe] that the transport
    coalesced into an identical staged twin: it counts as executed (its
    spawner already counted it sent, and it will never arrive) but not
    as marking work — the surviving twin marks the vertex. *)

val credit : t -> pe:int -> int * int
(** [pe]'s local [(sent, executed)] counter pair — what the PE reports
    to the distributed termination detector (piggybacked on transport
    frames; see {!Termination}). *)

val sent_total : t -> int

val executed_total : t -> int

val marks_executed_total : t -> int
(** Marking work actually run (coalesced tasks excluded). *)

val outstanding : t -> int
(** [sent_total - executed_total] — mark tasks pooled or in flight. *)

val bookkeeping_words : t -> int
(** The §6 claim made measurable: words of marking bookkeeping this
    scheme needs (2 per PE), to set against the tree scheme's 2 per
    vertex. *)
