open Dgr_graph
open Dgr_task

(** The restructuring phase (§4).

    Runs after a marking cycle completes (M_T, if scheduled, then M_R) and
    performs the "appropriate action" for each identified set:

    - vertices in GAR' = V − R' − F are returned to the free list
      (Theorem 1 guarantees GAR(t_b) ⊆ GAR' ⊆ GAR(t_c));
    - tasks whose endpoints lie in GAR' are expunged — these are exactly
      the irrelevant tasks of Property 6 (plus stale responses/cancels
      to/from reclaimed vertices, which would otherwise dangle once vertex
      slots are recycled);
    - dangling [requested] entries naming reclaimed vertices are dropped;
    - deadlocked vertices DL'_v = R'_v − T' are reported (only when M_T ran
      this cycle; Theorem 2);
    - every live marked vertex's M_R priority is copied to its persistent
      [sched_prior] so PE pools can re-prioritize queued tasks (§3.2), and
      the pools are asked to re-sort;
    - both marking planes are reset for the next cycle.

    The paper leaves this phase "to be tailored to a particular system";
    this is the obvious instantiation for ours (see DESIGN.md §1).

    The phase is {e sharded by home partition}: the verdict collection
    and the survivor-bookkeeping passes each touch only one home PE's
    slots, so the engine can fan them out across domains ([each_home]),
    with per-home results merged in fixed PE order — bit-identical at
    every domain count. Only the task purge, the free-list releases, the
    pool re-sort, and the plane resets remain serial. *)

type report = {
  garbage : Vid.t list;  (** vertices reclaimed this cycle *)
  deadlocked : Vid.t list;  (** DL'_v; empty when M_T did not run *)
  deadlock_checked : bool;
  irrelevant_purged : int;  (** reduction tasks expunged *)
  reprioritized : int;  (** pool tasks whose priority changed *)
}

val run :
  graph:Graph.t ->
  deadlock_checked:bool ->
  purge_tasks:((Task.t -> bool) -> int) ->
  reprioritize:(unit -> int) ->
  ?each_home:((int -> unit) -> unit) ->
  unit ->
  report
(** [purge_tasks pred] must delete every pending/in-flight task satisfying
    [pred] from pools and network and return how many were deleted;
    [reprioritize ()] re-sorts pool entries by current priorities and
    returns how many moved. Both are provided by the engine driving the
    system. [each_home f] must call [f pe] exactly once for every home
    PE, with the [f] calls free to run concurrently (each touches only
    its home's slots plus its own cell of a results array); default is a
    serial ascending loop. *)

val collect_home : Graph.t -> deadlock_checked:bool -> pe:int -> Vid.t list * Vid.t list
(** One home's [(garbage, deadlocked)] verdict, read-only (tests). *)

val pp_report : Format.formatter -> report -> unit
