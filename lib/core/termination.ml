type t = {
  window : int;
  epoch : int;
  sent : int array;
  executed : int array;
  reported : bool array;
  mutable first : (int * int) option;  (** (step, sent) of the first quiet wave *)
  mutable terminated : bool;
}

let create ~window ~epoch ~pes =
  {
    window;
    epoch;
    sent = Array.make (Int.max 1 pes) 0;
    executed = Array.make (Int.max 1 pes) 0;
    reported = Array.make (Int.max 1 pes) false;
    first = None;
    terminated = false;
  }

let epoch t = t.epoch

(* Counters are cumulative within a wave, so a reordered or duplicated
   credit can only report a stale (smaller) value: componentwise max
   makes [learn] idempotent and order-insensitive, which is what lets
   credits ride every transport frame without any delivery discipline of
   their own. A credit from another wave is noise and is dropped. *)
let learn t ~pe ~epoch ~sent ~executed =
  if epoch = t.epoch && pe >= 0 && pe < Array.length t.sent then begin
    t.reported.(pe) <- true;
    if sent > t.sent.(pe) then t.sent.(pe) <- sent;
    if executed > t.executed.(pe) then t.executed.(pe) <- executed
  end

let all_reported t =
  let n = Array.length t.reported in
  let rec go i = i >= n || (t.reported.(i) && go (i + 1)) in
  go 0

let learned_sent t = Array.fold_left ( + ) 0 t.sent

let learned_executed t = Array.fold_left ( + ) 0 t.executed

(* The two-wave rule on the learned vectors: balanced sums with the same
   [sent] total at two observations at least [window] apart. Requiring
   every PE to have reported at least once keeps the empty prefix honest
   — before any credits arrive both sums are 0 and would look quiet. *)
let observe t ~now =
  if not t.terminated then begin
    let sent = learned_sent t and executed = learned_executed t in
    if (not (all_reported t)) || sent <> executed then t.first <- None
    else
      match t.first with
      | None -> t.first <- Some (now, sent)
      | Some (step, sent0) ->
        if sent <> sent0 then t.first <- Some (now, sent)
        else if now - step >= t.window then t.terminated <- true
  end

let terminated t = t.terminated
