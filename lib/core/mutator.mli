open Dgr_graph
open Dgr_task

(** Cooperating mutator primitives (Fig 4-2 and §5.3).

    Every connectivity mutation performed by the reduction process goes
    through this module so that the marking invariants (§5.4.1) are
    preserved while marking is in progress:

    + for each transient vertex, there is at least one mark task spawned
      on each of its (traced) children, and mt-cnt reflects this;
    + a marked vertex never points to an unmarked (traced) child;
    + mt-cnt(v) counts exactly the unreturned mark tasks spawned from v.

    Cooperation is {e plane-relative} (§5.3): a mutation cooperates only
    with the marking runs whose traced relation it changes. Mutations of
    [args] concern M_R (and usually M_T, since an un-requested arg is in
    M_T's relation); mutations of [requested] and of the req-args sets
    concern only M_T.

    Two cooperation mechanisms are used:

    - the {b witness} protocol of Fig 4-2 (for [add-reference], whose new
      edge [a→c] is covered by the adjacent witness [b]); and
    - a {b generic} protocol for non-adjacent new edges ([add_edge],
      [record_request], …): if the edge's parent is transient, spawn a
      mark task on the child charged to the parent (valid by invariant 1);
      if the parent is already marked, synchronously mark the child's
      unmarked component (a bounded form of the paper's [mark(g)] in
      [expand-node]) so invariant 2 is never violated.

    A mutator with no active runs degenerates to plain graph edits.

    {b Deferred cooperation} (sharded engine): cooperation closures mark
    vertices anywhere in the graph, which a worker domain must not do
    while other shards run. With a defer sink installed
    ({!set_defer}), the owner-local graph edit proceeds immediately but
    the cooperation body is captured as a {!coop_event} instead of run;
    the engine replays the events serially at the step barrier, in
    deferring-PE order, via {!replay}. Late evaluation is sound because
    the marking invariants are only consumed at barriers and a parent's
    plane state only advances (unmarked → transient → marked) within a
    step. *)

type coop_event =
  | Ev_tree_edge of { run : Run.t; parent : Vid.t; child : Vid.t }
      (** generic cooperation for new traced edge parent→child *)
  | Ev_witness of { run : Run.t; a : Vid.t; b : Vid.t; c : Vid.t }
      (** Fig 4-2 witness protocol for add-reference on M_R *)
  | Ev_flood_edge of { fl : Flood.t; parent : Vid.t; child : Vid.t }
      (** flood-scheme cooperation for new traced edge parent→child *)

type t = {
  graph : Graph.t;
  mutable active : Run.t list;  (** tree-scheme runs in their mark phase *)
  mutable active_flood : Flood.t list;  (** flood-scheme runs in flight *)
  mutable spawn : Task.mark -> unit;  (** asynchronous task injection *)
  mutable coop_pe : unit -> int;
      (** the PE a cooperation spawn is charged to (flood counters) *)
  mutable defer : (coop_event -> unit) option;
      (** when set, cooperation bodies are captured instead of run *)
  mutable on_connect : Vid.t -> Vid.t -> unit;  (** parent, child — RC hook *)
  mutable on_disconnect : Vid.t -> Vid.t -> unit;
  mutable recorder : Dgr_obs.Recorder.t option;
      (** trace sink for cooperation events ([Coop_spawn]/[Coop_closure]);
          [None] (the default) records nothing *)
  mutable guard : Vid.t -> unit;
      (** called with the vertex about to be mutated, before every
          edge-set mutation ([connect]/[disconnect]/request bookkeeping).
          Default [ignore]; {!Dgr_core.Invariants.ownership_guard}
          installs the debug ownership-discipline check here. *)
  mutable total_coop_spawned : int;
  mutable total_coop_closure : int;
  mutable stk : int array;
      (** scratch stack for the synchronous marking closures — (vid,
          prior) pairs interleaved, reused across calls *)
  mutable stk_n : int;
}

val create :
  ?on_connect:(Vid.t -> Vid.t -> unit) ->
  ?on_disconnect:(Vid.t -> Vid.t -> unit) ->
  ?recorder:Dgr_obs.Recorder.t ->
  spawn:(Task.mark -> unit) ->
  Graph.t ->
  t

val set_active : t -> Run.t list -> unit

val set_active_flood : t -> Flood.t list -> unit

val set_defer : t -> (coop_event -> unit) option -> unit
(** Install (or clear) the deferral sink. While set, every cooperation
    a mutation would run is handed to the sink instead. *)

val replay : t -> coop_event -> unit
(** Run one deferred cooperation body against the {e current} plane
    state. Call serially, in deferring-PE order, with {!field-coop_pe}
    answering the deferring PE. *)

(** {1 The paper's three primitives (Fig 4-2)} *)

val delete_reference : t -> a:Vid.t -> b:Vid.t -> unit
(** Remove [b] from [children(a)]. Never requires cooperation. *)

val add_reference : t -> a:Vid.t -> b:Vid.t -> c:Vid.t -> unit
(** Add [c] to [children(a)], where [b ∈ children(a)] and
    [c ∈ children(b)] (checked). Witness cooperation for M_R runs, generic
    cooperation for M_T runs. *)

val expand_node : t -> a:Vid.t -> entry:Vid.t -> unit
(** Splice a freshly-built subgraph rooted at [entry] below [a]: [a]'s
    current args are disconnected (the subgraph is expected to reference
    the ones it needs — wire it with [connect_fresh] {e before} calling
    this) and replaced by the single child [entry]. Cooperation follows
    Fig 4-2: if [a] is marked the subgraph is marked (by closure), if
    transient a mark task is spawned on the new child. *)

(** {1 Generalized mutations used by the reduction process} *)

val connect_fresh : t -> parent:Vid.t -> child:Vid.t -> unit
(** Wire an edge inside a not-yet-reachable subgraph under construction.
    The caller asserts [parent] is unmarked in every active plane (it was
    just taken from the free list); no cooperation is performed. *)

val add_edge : ?demand:Demand.t -> t -> a:Vid.t -> c:Vid.t -> unit
(** Add the (possibly non-adjacent) edge [a→c], optionally recording it as
    a vital/eager request by [a]; generic cooperation on all active
    planes. *)

val record_request :
  t -> at:Vid.t -> requester:Vertex.requester -> demand:Demand.t -> key:Vid.t -> unit
(** Add a requester to [requested(at)] — a new M_T edge [at→requester];
    generic cooperation on active M_T runs. *)

val answer : t -> at:Vid.t -> requester:Vertex.requester -> unit
(** Remove a requester from [requested(at)] (edge deletion — no
    cooperation). *)

val request_child : t -> v:Vid.t -> c:Vid.t -> demand:Demand.t -> unit
(** Record [c ∈ req-args(v)] (removes [v→c] from M_T's relation — no
    cooperation). *)

val drop_request_child : t -> v:Vid.t -> c:Vid.t -> unit
(** Dereference: remove [c] from [req-args(v)] while keeping the arg —
    [v→c] re-enters M_T's relation, so M_T cooperation applies. *)

(** {1 Introspection} *)

val coop_spawned : t -> int
(** Total mark tasks spawned by cooperation across all runs ever active. *)

val coop_closure_marked : t -> int
(** Total vertices marked synchronously by closure cooperation. *)
