open Dgr_graph
open Dgr_task
open Task

type t = {
  graph : Graph.t;
  plane : Plane.id;
  variant : Run.variant;
  wave : int;
  sent : int array;
  executed : int array;
  marked : int array;
}

let create graph variant =
  let n = Graph.num_pes graph in
  {
    graph;
    plane = Run.plane_of_variant variant;
    variant;
    wave = Graph.wave graph;
    sent = Array.make n 0;
    executed = Array.make n 0;
    marked = Array.make n 0;
  }

let pe_slot t pe = if pe >= 0 && pe < Array.length t.sent then pe else 0

let count_seed t ~pe = t.sent.(pe_slot t pe) <- t.sent.(pe_slot t pe) + 1

let count_coop_spawn t ~pe = count_seed t ~pe

let count_executed t ~pe =
  let s = pe_slot t pe in
  t.executed.(s) <- t.executed.(s) + 1;
  t.marked.(s) <- t.marked.(s) + 1

(* A mark coalesced in transit was already counted sent by its spawner;
   crediting executed here keeps sent − executed = outstanding honest
   without inflating marks_executed — no marking work actually ran, the
   surviving twin will do it. *)
let count_coalesced t ~pe =
  t.executed.(pe_slot t pe) <- t.executed.(pe_slot t pe) + 1

let credit t ~pe =
  let s = pe_slot t pe in
  (t.sent.(s), t.executed.(s))

let mark_task_for t ~v ~prior =
  let ep = t.wave in
  match t.variant with
  | Run.Basic -> Mark1 { v; par = Plane.Rootpar; ep }
  | Run.Priority -> Mark2 { v; par = Plane.Rootpar; prior; ep }
  | Run.Tasks -> Mark3 { v; par = Plane.Rootpar; ep }

(* The flood never uses mt-par; seeds and spawned tasks alike carry the
   dummy Rootpar so a task printout distinguishes the schemes. *)
let seed_for t v = mark_task_for t ~v ~prior:3

let mark_task t ~v ~prior = mark_task_for t ~v ~prior

let spawn_children t ~pe ~v ~prior ~emit =
  let g = t.graph in
  Trace.iter_children g t.plane v (fun c ->
      count_seed t ~pe;
      emit (mark_task_for t ~v:c ~prior:(Trace.child_priority g v prior c)))

let execute t ~pe ~emit task =
  (match task with
  | Return _ -> invalid_arg "Flood.execute: this scheme has no return tasks"
  | Mark1 _ | Mark2 _ | Mark3 _ ->
    if Task.plane_of_mark task <> t.plane then
      invalid_arg "Flood.execute: task for the wrong plane");
  if Task.mark_ep task <> t.wave then
    invalid_arg "Flood.execute: stale-wave task (drop before dispatch)";
  count_executed t ~pe;
  match task with
  | Return _ -> assert false
  | Mark1 { v; _ } | Mark3 { v; _ } ->
    let vx = Graph.vertex t.graph v in
    let plane = Vertex.plane vx t.plane in
    if (Vertex.free vx) || Plane.marked plane then ()
    else begin
      Plane.mark plane;
      spawn_children t ~pe ~v ~prior:3 ~emit
    end
  | Mark2 { v; prior; _ } ->
    let vx = Graph.vertex t.graph v in
    let plane = Vertex.plane vx t.plane in
    if (Vertex.free vx) then ()
    else if Plane.marked plane && prior <= (Plane.prior plane) then ()
    else begin
      (* first visit, or a strictly higher priority: (re-)flood *)
      Plane.mark plane;
      Plane.set_prior plane @@ prior;
      spawn_children t ~pe ~v ~prior ~emit
    end

let sent_total t = Array.fold_left ( + ) 0 t.sent

let executed_total t = Array.fold_left ( + ) 0 t.executed

let marks_executed_total t = Array.fold_left ( + ) 0 t.marked

let outstanding t = sent_total t - executed_total t

let bookkeeping_words t = 2 * Array.length t.sent
