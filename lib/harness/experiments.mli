open Dgr_util

(** The experiment suite (see DESIGN.md §3 and EXPERIMENTS.md).

    The paper (PODC 1983) has no quantitative evaluation section; its
    "evaluation" is two worked figures and a set of claims argued in
    prose. Each experiment here regenerates one of those artifacts as a
    table:

    - E1 — Fig 3-1 / Theorem 2: deadlock detection on [x = x + 1];
    - E2 — Fig 3-2 / Properties 3-6: the four task types classified both
      by the oracle and by the decentralized marking;
    - E3 — Fig 3-3: Venn-region sizes on random mutating graphs, with the
      structural containments checked;
    - E4 — §4: concurrent marking vs stop-the-world vs reference counting
      (pause times and completion);
    - E5 — §1/§4: scaling of the decentralized marking with PE count;
    - E6 — §4: cyclic garbage — tracing reclaims it, RC leaks it;
    - E7 — §3.2 item 3 / Property 6: irrelevant-task deletion bounds the
      speculative explosion;
    - E8 — §3.2 items 1-2: dynamic task priorities (ablation of the pool
      policy);
    - E9 — §6: the space optimization — marking-tree bookkeeping
      (2 words/vertex, return tasks) vs flood counters (2 words/PE,
      termination by counting);
    - E10 — §2.2: V is finite — the smallest heap each collector can run
      the same program in;
    - E11 — §2.1's idealized network, revoked: message drop rate vs
      marking-cycle length with reliable delivery (acks, retransmission,
      dedup) re-earning exactly-once effect over a lossy channel;
    - E12 — the step-phase profiler's measured Amdahl serial fraction vs
      domain count on a storm workload (the ROADMAP item 1 yardstick).

    Each run function is deterministic for a given seed — except E12's
    serial-fraction and Amdahl-ceiling columns, which are wall-clock
    measurements (its latency percentile columns stay deterministic). *)

type result = Table.t list

val e1_deadlock : ?seed:int -> unit -> result

val e2_task_types : unit -> result

val e3_venn : ?seed:int -> unit -> result

val e4_gc_comparison : ?seed:int -> unit -> result

val e5_scaling : ?seed:int -> unit -> result

val e6_cyclic_garbage : ?seed:int -> unit -> result

val e7_irrelevant_tasks : ?seed:int -> unit -> result

val e8_priorities : ?seed:int -> unit -> result

val e9_marking_schemes : ?seed:int -> unit -> result

val e10_heap_sweep : ?seed:int -> unit -> result

val e11_fault_sweep : ?seed:int -> unit -> result

val e12_serial_fraction : unit -> result

type info = {
  title : string;  (** one-line description *)
  paper_ref : string;  (** the figure/section of the paper it regenerates *)
}

val all : (string * info * (unit -> result)) list
(** [(id, info, run)] for every experiment, in order — the single
    registry every front end ([dgr experiment], [bench/main.ml])
    enumerates. Adding an experiment touches only this list. *)

val ids : string list
(** The registered ids, in order. *)

val describe : string -> info option

val run : ?trace_dir:string -> string -> unit
(** Run one experiment by id ("e1".."e12" or "all") and print its tables.
    With [trace_dir] (created if missing), every simulated run made
    through the shared program-runner additionally records a structured
    event trace and writes it as Chrome trace-event JSON, numbered per
    experiment: [DIR/e4-01.json], [DIR/e4-02.json], ... (E4/E5/E7-E10;
    the figure-replay experiments E1-E3, E6 drive the engine directly and
    are not traced). Raises [Invalid_argument] on an unknown id. *)
