(** Macro benchmarks: seeded end-to-end machine scenarios.

    Where {!Experiments} regenerates the paper's figures and claims, this
    module measures the simulator itself — whole runs of the distributed
    machine (reduction + marking + network) on fixed workloads, reported
    as throughput. Results are written as versioned [BENCH.json] so runs
    can be diffed across commits ({!schema_version}).

    Every scenario is seeded and deterministic: for a fixed (config,
    seed) the simulation fields of a row — steps, tasks, messages,
    cycles, live set, completion, digest — are byte-identical across
    runs and machines. Only the wall-clock fields (and the rates derived
    from them) vary; [~deterministic:true] zeroes those, making the whole
    file byte-reproducible (the determinism test diffs two such runs).

    The smoke subset ([~smoke:true]) is a {e subset} of the full suite —
    the same scenarios at the same sizes, not scaled-down variants — so
    smoke numbers are directly comparable against a committed
    [BENCH_baseline.json] produced by a full run. *)

val schema_version : int
(** Version of the [BENCH.json] layout (and of the digest recipe). *)

type row = {
  name : string;
  seed : int;
  domains : int;  (** shard count the scenario ran at (see {!Engine.dispose}) *)
  steps : int;  (** simulation steps executed *)
  tasks : int;  (** reduction + marking tasks executed *)
  messages : int;  (** remote + local task sends *)
  cycles : int;  (** marking cycles completed *)
  avg_cycle_len : float;  (** steps per completed cycle; 0 when none *)
  live : int;  (** live vertices at the end *)
  completed : bool;  (** the program delivered its result *)
  frames_sent : int;  (** data frames flushed by the transport *)
  acks_sent : int;  (** standalone cumulative-ack frames *)
  marks_coalesced : int;  (** marks absorbed by a staged twin *)
  crashes : int;  (** whole-PE crashes begun (zero outside crash scenarios) *)
  recoveries : int;  (** crashed PEs that came back up *)
  crash_rehomed : int;  (** live vertices moved off crashed PEs *)
  tasks_per_frame : float;
      (** tasks carried / frames sent — the frame-count reduction
          batching bought over one-task-per-frame transport; [0.0]
          when no frames were sent (fault-free ideal channel) *)
  lat_p50 : int;
      (** end-to-end task latency percentiles in steps, from the lineage
          histograms ({!Dgr_sim.Metrics}) — deterministic, present in
          deterministic rows too *)
  lat_p90 : int;
  lat_p99 : int;
  lat_p999 : int;
  serial_fraction : float;
      (** measured Amdahl serial fraction ({!Dgr_sim.Profile});
          wall-clock derived, [0.0] in deterministic mode *)
  digest : string;
      (** MD5 over the run's deterministic signature: final live set,
          deadlock verdicts, result, and the task/message/GC counters.
          Equal digests mean semantically identical runs. *)
  wall_ns : int64;  (** host wall clock; 0 in deterministic mode *)
  minor_words : float;  (** minor heap allocated; 0 in deterministic mode *)
  speedup_vs_seq : float;
      (** steps/sec relative to the same scenario at [domains = 1];
          [0.0] until filled by {!with_speedups} (and always [0.0] in
          deterministic mode, where no rates exist) *)
}

val scenario_names : smoke:bool -> string list
(** The suite in run order ([dgr bench --list]). *)

val run_suite :
  ?domains:int ->
  ?batch:bool ->
  ?only:string list ->
  smoke:bool ->
  deterministic:bool ->
  unit ->
  row list
(** Run the suite (or the [only] subset of it, by name) and return one
    row per scenario. [deterministic] skips the clock and allocation
    meters. [domains] (default 1) shards each engine across that many
    OCaml domains — the simulation fields and digest are identical at
    every value; only the wall-clock fields move. [batch] (default
    [true]) toggles the transport's frame batching ([dgr bench
    --no-batch] measures the one-task-per-frame floor). Raises
    [Invalid_argument] on an unknown name in [only]. *)

val run_for_report :
  ?domains:int -> ?batch:bool -> string -> Dgr_sim.Engine.t
(** Build, prime and run one named suite scenario, returning the engine
    itself so a post-run analyzer ({!Report}, [dgr report --scenario])
    can walk its lineage store, latency histograms and step-phase
    profile. The caller owns the engine — {!Dgr_sim.Engine.dispose} it.
    Raises [Invalid_argument] on an unknown name. *)

val steps_per_sec : row -> float
(** [0.0] for deterministic rows. *)

val with_speedups : seq:row list -> row list -> row list
(** Fill each row's [speedup_vs_seq] from the matching (same name,
    {e same digest}) row of a sequential run; rows without a comparable
    sequential twin pass through unchanged. *)

val speedup_table : seq:row list -> par:row list -> (string * float * float * bool) list
(** [(name, seq_sps, par_sps, digests_agree)] for every parallel row with
    a sequential twin — the sequential-vs-parallel comparison [dgr bench
    --domains N] prints. [digests_agree = false] flags a determinism
    violation, which is worth more than any speedup. *)

val to_json : ?batch:bool -> mode:string -> deterministic:bool -> row list -> string
(** The [BENCH.json] document: fixed field order and float precision, so
    equal rows serialize to equal bytes. [mode] is recorded verbatim
    ("full" or "smoke"); [batch] (default [true]) records whether frame
    batching was on for the run. *)

val scenario_rates : string -> (string * float) list
(** [(name, steps_per_sec)] per scenario parsed back out of a
    {!to_json}-formatted document (the committed baseline). Tolerant of
    unknown fields; raises [Failure] if the document does not look like
    a BENCH.json at all. *)

val regressions :
  threshold:float -> baseline:string -> row list -> (string * float * float) list
(** [(name, baseline_sps, current_sps)] for every scenario present in
    both the baseline document and the fresh rows whose steps/sec fell
    below [(1 - threshold) * baseline] — e.g. [~threshold:0.2] flags
    >20% regressions. Scenarios with a non-positive baseline rate (a
    deterministic baseline) are skipped. *)

val compare_table : baseline:string -> candidate:string -> string
(** An A/B diff of two {!to_json}-formatted documents, one row per
    scenario: steps/sec with the relative delta, serial fraction, minor
    words per step with the relative delta, and the end-to-end latency
    percentiles (printed as [pN=v] when unchanged, [pN=a->b] when
    shifted). Scenarios present in only one document are flagged.
    Raises [Failure] if either document is not a dgr-macro
    [BENCH.json]. *)

val scenario_alloc_budgets : string -> (string * float) list
(** [(name, budget_minor_words_per_step)] parsed out of a committed
    allocation-budget document ([BENCH_alloc_budget.json]). Raises
    [Failure] if the document is not a ["dgr-alloc-budget"] file. *)

val alloc_regressions :
  budgets:(string * float) list -> row list -> (string * float * float) list
(** [(name, budget, current_mw_per_step)] for every fresh row whose
    minor words per step exceed its committed budget. Allocation per
    step is near-deterministic (unlike wall-clock rates), so the budget
    is an absolute ceiling, not a noise-tolerant ratio. Rows from
    deterministic runs (zeroed meters) and scenarios without a positive
    budget are skipped. *)

val golden_lines : ?domains:int -> unit -> string list
(** The 20-scenario differential fixture: workloads × collectors ×
    machine shapes × fault planes, each summarized as one line capturing
    the end state (live-set digest, deadlock verdicts, result, metrics)
    and the MD5 of the full event trace. [test/golden_engine.txt] holds
    the committed lines; the differential test regenerates them — at
    [domains] ∈ {1, 2, 4} — and diffs byte-for-byte, pinning the sharded
    engine to bit-identical semantics at every shard count. *)
