open Dgr_graph
open Dgr_task
open Task

type fig_3_1 = { graph : Graph.t; x : Vid.t; one : Vid.t }

let fig_3_1 ?(num_pes = 2) () =
  let g = Graph.create ~num_pes () in
  let one = Builder.add g (Label.Int 1) [] in
  let x = Graph.alloc g (Label.Prim Label.Add) in
  Vertex.connect x (Vertex.id x);
  Vertex.connect x one;
  let root = Builder.add_root g Label.Ind [ (Vertex.id x) ] in
  ignore root;
  { graph = g; x = (Vertex.id x); one }

type fig_3_2 = {
  graph : Graph.t;
  if0 : Vid.t;
  if1 : Vid.t;
  a1 : Vid.t;
  d : Vid.t;
  c : Vid.t;
  abc : Vid.t;
  tasks : Task.reduction list;
}

let fig_3_2 ?(num_pes = 2) () =
  let g = Graph.create ~num_pes () in
  let vital = Demand.Vital and eager = Demand.Eager in
  (* leaves *)
  let a = Builder.add g (Label.Int 10) [] in
  let b = Builder.add g (Label.Int 20) [] in
  let one = Builder.add g (Label.Int 1) [] in
  let tt = Builder.add g (Label.Bool true) [] in
  let d = Builder.add g (Label.Int 30) [] in
  let c = Builder.add g (Label.Int 40) [] in
  (* a+1, vitally requested by the resolved inner conditional *)
  let a1 = Builder.add g (Label.Prim Label.Add) [ a; one ] in
  (* a+b+c, already dereferenced *and* disconnected from if1: garbage *)
  let ab = Builder.add g (Label.Prim Label.Add) [ a; b ] in
  let abc = Builder.add g (Label.Prim Label.Add) [ ab; c ] in
  (* the predicate if1 = if true then a1 else abc, frozen just after its
     own predicate resolved: abc dereferenced and dropped, a1 upgraded *)
  let if1 = Builder.add g Label.If [ tt; a1 ] in
  let vif1 = Graph.vertex g if1 in
  Vertex.request_arg vif1 a1 vital;
  (* the outer conditional if0 = if p then d else c: p vital, branches
     speculated; c has since been dereferenced (but stays an argument of
     if0 — reserve territory) *)
  let if0 = Builder.add_root g Label.If [ if1; d; c ] in
  let vif0 = Graph.vertex g if0 in
  Vertex.request_arg vif0 if1 vital;
  Vertex.request_arg vif0 d eager;
  (* the external initial task has demanded the root *)
  Vertex.add_requester vif0 None ~demand:vital ~key:if0;
  (* requested-entries mirroring the outstanding requests *)
  Vertex.add_requester vif1 (Some if0) ~demand:vital ~key:if1;
  Vertex.add_requester (Graph.vertex g a1) (Some if1) ~demand:vital ~key:a1;
  Vertex.add_requester (Graph.vertex g d) (Some if0) ~demand:eager ~key:d;
  (* the four tasks of Fig 3-2, one per destination of interest *)
  let tasks =
    [
      Request { src = Some if1; dst = a1; demand = vital; key = a1 };
      Request { src = Some if0; dst = d; demand = eager; key = d };
      Request { src = Some if0; dst = c; demand = eager; key = c };
      Request { src = Some if1; dst = abc; demand = eager; key = abc };
    ]
  in
  { graph = g; if0; if1; a1; d; c; abc; tasks }
