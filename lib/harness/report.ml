(* Post-run analyzer: the [dgr report] text. Everything here is derived
   from a finished engine's lineage store, latency histograms, health
   counters and (optionally) its step-phase profile — no re-running, no
   trace files. The deterministic sections are byte-identical for a
   (config, seed) pair at every domain count; [~deterministic:true]
   omits the wall-clock profile section so the whole report is. *)

open Dgr_sim

let pct h p = Dgr_obs.Hist.percentile h p

let hist_row b name h =
  if Dgr_obs.Hist.count h = 0 then
    Printf.bprintf b "  %-8s %8s\n" name "-"
  else
    Printf.bprintf b "  %-8s %8d %8.2f %6d %6d %6d %6d %6d\n" name
      (Dgr_obs.Hist.count h) (Dgr_obs.Hist.mean h) (pct h 50.0) (pct h 90.0)
      (pct h 99.0) (pct h 99.9)
      (Dgr_obs.Hist.max_value h)

(* Top [n] lineages by end-to-end span (injection → last execution):
   the run's critical paths. Selection sort into a small array — the
   store can hold thousands of lineages and we keep five. *)
let critical_paths lineage n =
  let top = ref [] in
  Dgr_obs.Lineage.iter_lineages lineage
    (fun ~lin ~injected ~last ~tasks ~depth ->
      if tasks > 0 then begin
        let span = last - injected + 1 in
        top := (span, lin, injected, last, tasks, depth) :: !top
      end);
  let all =
    List.sort
      (fun (s1, l1, _, _, _, _) (s2, l2, _, _, _, _) ->
        if s2 <> s1 then compare s2 s1 else compare l1 l2)
      !top
  in
  List.filteri (fun i _ -> i < n) all

let render ?(deterministic = false) e =
  let b = Buffer.create 2048 in
  let m = Engine.metrics e in
  let lineage = Engine.lineage e in
  Printf.bprintf b "== dgr report ==\n";
  Printf.bprintf b
    "steps=%d reduction=%d marking=%d completion=%s cycles=%d\n"
    m.Metrics.steps m.Metrics.reduction_executed m.Metrics.marking_executed
    (match m.Metrics.completion_step with Some s -> string_of_int s | None -> "-")
    m.Metrics.cycles_completed;
  Printf.bprintf b
    "lineages=%d tickets: closed=%d purged=%d in_flight=%d\n\n"
    (Dgr_obs.Lineage.lineages lineage)
    (Dgr_obs.Lineage.closed lineage)
    (Dgr_obs.Lineage.dropped lineage)
    (Dgr_obs.Lineage.in_flight lineage);
  (* Latency: the four components, each its own histogram. *)
  Printf.bprintf b "-- task latency (steps) --\n";
  Printf.bprintf b "  %-8s %8s %8s %6s %6s %6s %6s %6s\n" "" "count" "mean"
    "p50" "p90" "p99" "p999" "max";
  hist_row b "e2e" m.Metrics.lat_e2e;
  hist_row b "queue" m.Metrics.lat_queue;
  hist_row b "network" m.Metrics.lat_net;
  hist_row b "retx" m.Metrics.lat_retx;
  (* Mean decomposition: e2e = network + retx + queue + 1 (execution). *)
  if Dgr_obs.Hist.count m.Metrics.lat_e2e > 0 then begin
    let e2e = Dgr_obs.Hist.mean m.Metrics.lat_e2e in
    let part name h =
      let v = Dgr_obs.Hist.mean h in
      Printf.bprintf b "  %-8s %6.2f steps  %5.1f%%\n" name v
        (if e2e <= 0.0 then 0.0 else 100.0 *. v /. e2e)
    in
    Printf.bprintf b "\n-- mean end-to-end decomposition --\n";
    part "network" m.Metrics.lat_net;
    part "retx" m.Metrics.lat_retx;
    part "queue" m.Metrics.lat_queue;
    Printf.bprintf b "  %-8s %6.2f steps  %5.1f%%\n" "execute" 1.0
      (if e2e <= 0.0 then 0.0 else 100.0 /. e2e);
    Printf.bprintf b "  %-8s %6.2f steps\n" "e2e" e2e
  end;
  (* Critical path: the injections whose causal trees ran longest. *)
  (match critical_paths lineage 5 with
  | [] -> ()
  | paths ->
    Printf.bprintf b "\n-- critical paths (top %d lineages by span) --\n"
      (List.length paths);
    Printf.bprintf b "  %-8s %8s %8s %8s %8s %6s\n" "lineage" "injected"
      "last" "span" "tasks" "depth";
    List.iter
      (fun (span, lin, injected, last, tasks, depth) ->
        Printf.bprintf b "  %-8d %8d %8d %8d %8d %6d\n" lin injected last span
          tasks depth)
      paths);
  (* Health verdicts — zero lines are worth printing: "no stalls" is the
     statement the watchdogs exist to make. *)
  Printf.bprintf b "\n-- health --\n";
  Printf.bprintf b
    "  mark_wave_stalls=%d quiescence_stalls=%d retransmit_storms=%d\n"
    m.Metrics.health_mark_stalls m.Metrics.health_quiescence_stalls
    m.Metrics.health_retx_storms;
  (* Crash recovery — only when the run could actually crash, so
     fault-free reports stay byte-identical to pre-crash-plane builds. *)
  if m.Metrics.crashes > 0 || m.Metrics.recoveries > 0 then begin
    Printf.bprintf b "\n-- crash recovery --\n";
    Printf.bprintf b "  crashes=%d recoveries=%d rehomed=%d lost_tasks=%d\n"
      m.Metrics.crashes m.Metrics.recoveries m.Metrics.crash_rehomed
      m.Metrics.crash_lost_tasks;
    Printf.bprintf b "  %-8s %8s %8s %6s %6s %6s %6s %6s\n" "" "count" "mean"
      "p50" "p90" "p99" "p999" "max";
    hist_row b "downtime" m.Metrics.lat_recovery
  end;
  if m.Metrics.frames_sent > 0 then begin
    Printf.bprintf b "\n-- transport --\n";
    Printf.bprintf b
      "  frames=%d tasks=%d tasks/frame=%.2f acks=%d(+%d piggybacked) coalesced=%d\n"
      m.Metrics.frames_sent m.Metrics.tasks_sent
      (float_of_int m.Metrics.tasks_sent /. float_of_int m.Metrics.frames_sent)
      m.Metrics.acks_sent m.Metrics.acks_piggybacked m.Metrics.marks_coalesced
  end;
  (* Step phases: wall-clock, so omitted from deterministic reports. *)
  if not deterministic then begin
    let p = Engine.profile e in
    let domains = Engine.Config.domains (Engine.config e) in
    let share part =
      if p.Profile.total_ns <= 0.0 then 0.0
      else 100.0 *. part /. p.Profile.total_ns
    in
    Printf.bprintf b "\n-- step phases (wall clock) --\n";
    Printf.bprintf b "  total=%.1fms over %d steps at domains=%d\n"
      (p.Profile.total_ns /. 1e6) p.Profile.steps domains;
    Printf.bprintf b
      "  transport=%.1f%% execute=%.1f%% execute_serial=%.1f%% merge=%.1f%% \
       gc=%.1f%% bookkeeping=%.1f%%\n"
      (share p.Profile.transport_ns) (share p.Profile.execute_ns)
      (share p.Profile.sexec_ns) (share p.Profile.merge_ns)
      (share p.Profile.gc_ns) (share p.Profile.book_ns);
    Printf.bprintf b "  within execute: marking=%.1f%% reduction=%.1f%%\n"
      (share p.Profile.mark_ns) (share p.Profile.red_ns);
    let steps = float_of_int (Stdlib.max 1 p.Profile.steps) in
    Printf.bprintf b
      "  minor words/step: transport=%.0f execute=%.0f execute_serial=%.0f \
       merge=%.0f gc=%.0f bookkeeping=%.0f\n"
      (p.Profile.transport_mw /. steps)
      (p.Profile.execute_mw /. steps)
      (p.Profile.sexec_mw /. steps)
      (p.Profile.merge_mw /. steps)
      (p.Profile.gc_mw /. steps)
      (p.Profile.book_mw /. steps);
    Printf.bprintf b
      "  serial_fraction=%.3f (Amdahl ceiling: x%.2f at 2 domains, x%.2f at \
       4, x%.2f at 8)\n"
      (Profile.serial_fraction p)
      (Profile.amdahl_speedup p ~domains:2)
      (Profile.amdahl_speedup p ~domains:4)
      (Profile.amdahl_speedup p ~domains:8);
    (* The step-barrier bill: what merging the per-PE buffers costs, and
       where inside the merge the time goes. [flush sharded] is the
       parallelizable destination-grouping pass; everything else on this
       line runs serially at the barrier. *)
    if p.Profile.merge_ns > 0.0 then begin
      let mshare part =
        if p.Profile.merge_ns <= 0.0 then 0.0
        else 100.0 *. part /. p.Profile.merge_ns
      in
      Printf.bprintf b "\n-- merge cost (step barrier) --\n";
      Printf.bprintf b
        "  merge=%.1f%% of step, %.1fus/step, %.0f minor words/merge\n"
        (share p.Profile.merge_ns)
        (p.Profile.merge_ns /. 1e3 /. steps)
        (p.Profile.merge_mw /. steps);
      Printf.bprintf b
        "  within merge: drain=%.1f%% absorb=%.1f%% close=%.1f%% flush \
         sharded=%.1f%% serial=%.1f%% replay=%.1f%%\n"
        (mshare p.Profile.drain_ns) (mshare p.Profile.absorb_ns)
        (mshare p.Profile.close_ns)
        (mshare p.Profile.pflush_ns)
        (mshare p.Profile.flush_ns)
        (mshare p.Profile.replay_ns)
    end
  end;
  Buffer.contents b
