open Dgr_util
open Dgr_graph
open Dgr_sim
open Dgr_lang
module Cycle = Dgr_core.Cycle
module Reducer = Dgr_reduction.Reducer
module Template = Dgr_reduction.Template
module Reach = Dgr_analysis.Reach
module Classify = Dgr_analysis.Classify

type result = Table.t list

let empty_registry = Template.create_registry ()

(* --- optional trace sink -------------------------------------------- *)

(* When [run ~trace_dir] is given, every engine built through
   [run_program] gets a recorder and writes a Chrome trace on completion,
   numbered per experiment: DIR/e4-01.json, DIR/e4-02.json, ... *)
let trace_dir : string option ref = ref None
let trace_label = ref "exp"
let trace_counter = ref 0

let maybe_recorder (config : Engine.config) =
  match !trace_dir with
  | None -> None
  | Some _ ->
    Some
      (Dgr_obs.Recorder.create ~capacity:262_144 ~sample_every:20
         ~num_pes:(Engine.Config.num_pes config) ())

let write_trace e =
  match (!trace_dir, Engine.recorder e) with
  | Some dir, Some r ->
    incr trace_counter;
    let path = Filename.concat dir (Printf.sprintf "%s-%02d.json" !trace_label !trace_counter) in
    Dgr_obs.Export.write_file path (Dgr_obs.Export.chrome_trace r)
  | _ -> ()

let concurrent ?(deadlock_every = 1) ?(idle_gap = 50) () =
  Engine.Concurrent { deadlock_every; idle_gap }

let value_to_string = function
  | Some v -> Format.asprintf "%a" Label.pp_value v
  | None -> "-"

(* ------------------------------------------------------------------ *)
(* E1: Fig 3-1 — deadlock detection on x = x + 1.                      *)
(* ------------------------------------------------------------------ *)

let e1_deadlock ?seed:(_ = 1) () =
  let table =
    Table.create ~title:"E1 (Fig 3-1): deadlock detection on x = x + 1"
      ~columns:
        [
          ("PEs", Table.Right);
          ("steps to detect", Table.Right);
          ("cycles", Table.Right);
          ("x deadlocked", Table.Left);
          ("matches oracle", Table.Left);
          ("result", Table.Left);
        ]
  in
  List.iter
    (fun num_pes ->
      let scenario = Scenarios.fig_3_1 ~num_pes () in
      let g = scenario.Scenarios.graph in
      let config = Engine.Config.make ~num_pes ~gc:(concurrent ~idle_gap:10 ()) () in
      let e = Engine.create ~config g empty_registry in
      Engine.inject_root_demand e;
      let detected t =
        match Engine.cycle t with
        | Some c -> not (Vid.Set.is_empty (Cycle.deadlocked_ever c))
        | None -> false
      in
      let (_ : int) = Engine.run ~max_steps:20_000 ~stop:detected e in
      let first_detect = Engine.now e in
      (* Let a couple more cycles run: a stray in-flight response can keep
         a vertex task-reachable for one cycle. *)
      let (_ : int) = Engine.run ~max_steps:500 e in
      let c = Option.get (Engine.cycle e) in
      let dl = Cycle.deadlocked_ever c in
      let steps_to_detect = first_detect in
      (* Oracle verdict on the quiesced graph. *)
      let snap = Snapshot.take g in
      let sets = Classify.compute snap ~tasks:(Engine.pending_reduction_tasks e) in
      let oracle = sets.Classify.deadlocked in
      Table.add_row table
        [
          Table.cell_i num_pes;
          Table.cell_i steps_to_detect;
          Table.cell_i (Cycle.cycles_completed c);
          string_of_bool (Vid.Set.mem scenario.Scenarios.x dl);
          string_of_bool (Vid.Set.subset dl oracle && Vid.Set.mem scenario.Scenarios.x oracle);
          value_to_string (Engine.result e);
        ])
    [ 1; 2; 4; 8 ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* E2: Fig 3-2 — the four task types.                                  *)
(* ------------------------------------------------------------------ *)

let e2_task_types () =
  let scenario = Scenarios.fig_3_2 () in
  let g = scenario.Scenarios.graph in
  (* Decentralized verdict: one M_T pass then one M_R pass (Sync engine —
     the graph is frozen at the figure's instant). *)
  let sync = Dgr_core.Sync_engine.create g in
  let mt_seeds =
    List.concat_map Dgr_task.Task.reduction_endpoints scenario.Scenarios.tasks
    |> List.sort_uniq compare
  in
  let (_ : Dgr_core.Run.t) = Dgr_core.Sync_engine.start sync Dgr_core.Run.Tasks ~seeds:mt_seeds in
  let (_ : int) = Dgr_core.Sync_engine.drain sync in
  let (_ : Dgr_core.Run.t) =
    Dgr_core.Sync_engine.start sync Dgr_core.Run.Priority ~seeds:[ Graph.root g ]
  in
  let (_ : int) = Dgr_core.Sync_engine.drain sync in
  (* Oracle verdict. *)
  let snap = Snapshot.take g in
  let sets = Classify.compute snap ~tasks:scenario.Scenarios.tasks in
  let decentralized_kind dst =
    let vx = Graph.vertex g dst in
    if Plane.unmarked (Vertex.mr vx) then "irrelevant"
    else
      match Plane.prior (Vertex.mr vx) with
      | 3 -> "vital"
      | 2 -> "eager"
      | 1 -> "reserve"
      | _ -> "?"
  in
  let table =
    Table.create ~title:"E2 (Fig 3-2): vital / eager / reserve / irrelevant tasks"
      ~columns:
        [
          ("task <s,d>", Table.Left);
          ("destination", Table.Left);
          ("expected", Table.Left);
          ("oracle", Table.Left);
          ("marking", Table.Left);
        ]
  in
  let name_of =
    [
      (scenario.Scenarios.a1, "a+1");
      (scenario.Scenarios.d, "d");
      (scenario.Scenarios.c, "c");
      (scenario.Scenarios.abc, "a+b+c");
    ]
  in
  List.iter2
    (fun task expected ->
      let dst =
        match task with
        | Dgr_task.Task.Request { dst; _ } -> dst
        | Dgr_task.Task.Respond _ | Dgr_task.Task.Cancel _ -> assert false
      in
      Table.add_row table
        [
          Format.asprintf "%a" Dgr_task.Task.pp_reduction task;
          List.assoc dst name_of;
          expected;
          Classify.task_kind_to_string (Classify.classify_task sets task);
          decentralized_kind dst;
        ])
    scenario.Scenarios.tasks
    [ "vital"; "eager"; "reserve"; "irrelevant" ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* E3: Fig 3-3 — Venn structure on random graphs.                      *)
(* ------------------------------------------------------------------ *)

(* Synthesize an in-flight task per (sampled) requested-entry, as the
   taskpools would hold. *)
let tasks_of_requests rng g =
  Graph.fold_live
    (fun acc v ->
      List.fold_left
        (fun acc (e : Vertex.request_entry) ->
          if Rng.int rng 3 = 0 then
            Dgr_task.Task.Request
              { src = e.Vertex.who; dst = (Vertex.id v); demand = e.Vertex.demand;
                key = e.Vertex.key }
            :: acc
          else acc)
        acc (Vertex.requested v))
    [] g

let e3_venn ?(seed = 7) () =
  let table =
    Table.create ~title:"E3 (Fig 3-3): reachability regions on random request graphs"
      ~columns:
        [
          ("seed", Table.Right);
          ("|V|", Table.Right);
          ("R_v", Table.Right);
          ("R_e", Table.Right);
          ("R_r", Table.Right);
          ("T\\R", Table.Right);
          ("GAR", Table.Right);
          ("GAR∩T", Table.Right);
          ("DL_v", Table.Right);
          ("F", Table.Right);
          ("laws hold", Table.Left);
        ]
  in
  for i = 0 to 9 do
    let rng = Rng.create (seed + (1000 * i)) in
    let spec =
      {
        Builder.live = 60 + Rng.int rng 120;
        garbage = 10 + Rng.int rng 50;
        free_pool = 10;
        avg_degree = 1.5 +. Rng.float rng 1.5;
        cycle_bias = Rng.float rng 0.4;
      }
    in
    let g = Builder.random_with_requests (Rng.split rng) spec in
    let tasks = tasks_of_requests (Rng.split rng) g in
    let snap = Snapshot.take g in
    let sets = Classify.compute snap ~tasks in
    let venn = Classify.venn snap sets in
    let r = sets.Classify.reach in
    (* Structural laws of Fig 3-3. *)
    let union_rs =
      Vid.Set.union r.Reach.r_v (Vid.Set.union r.Reach.r_e r.Reach.r_r)
    in
    let laws =
      Vid.Set.equal union_rs r.Reach.root_reachable
      && Vid.Set.subset sets.Classify.deadlocked r.Reach.r_v
      && Vid.Set.is_empty (Vid.Set.inter sets.Classify.garbage r.Reach.root_reachable)
      && Vid.Set.is_empty (Vid.Set.inter sets.Classify.garbage sets.Classify.free)
    in
    Table.add_row table
      [
        Table.cell_i (seed + (1000 * i));
        Table.cell_i (Snapshot.size snap);
        Table.cell_i venn.Classify.n_vital;
        Table.cell_i venn.Classify.n_eager;
        Table.cell_i venn.Classify.n_reserve;
        Table.cell_i venn.Classify.n_task_only;
        Table.cell_i venn.Classify.n_garbage;
        Table.cell_i venn.Classify.n_garbage_task;
        Table.cell_i venn.Classify.n_deadlocked;
        Table.cell_i venn.Classify.n_free;
        string_of_bool laws;
      ]
  done;
  [ table ]

(* ------------------------------------------------------------------ *)
(* Shared program-running helper for E4/E5/E7/E8.                      *)
(* ------------------------------------------------------------------ *)

type run_stats = {
  completed : bool;
  steps : int;
  total_pause : int;
  max_pause : float;
  cycles : int;
  stw_collections : int;
  reclaimed : int;
  peak_live : int;
  reduction_executed : int;
  purged : int;
}

let run_program ?(max_steps = 600_000) ~config source =
  let g, templates =
    Compile.load_string ~num_pes:(Engine.Config.num_pes config) source
  in
  let e = Engine.create ?recorder:(maybe_recorder config) ~config g templates in
  Engine.inject_root_demand e;
  let (_ : int) = Engine.run ~max_steps e in
  write_trace e;
  let m = Engine.metrics e in
  let reclaimed =
    match (Engine.cycle e, Engine.refcount e) with
    | Some c, _ -> Cycle.total_garbage_collected c
    | None, Some rc -> Dgr_baseline.Refcount.reclaimed rc
    | None, None -> Graph.releases g
  in
  ( {
      completed = Engine.finished e;
      steps = (match m.Metrics.completion_step with Some s -> s | None -> Engine.now e);
      total_pause = m.Metrics.total_pause_steps;
      max_pause =
        (if Stats.count m.Metrics.pauses = 0 then 0.0 else Stats.max_value m.Metrics.pauses);
      cycles = m.Metrics.cycles_completed;
      stw_collections = m.Metrics.stw_collections;
      reclaimed;
      peak_live = m.Metrics.peak_live;
      reduction_executed = m.Metrics.reduction_executed;
      purged = m.Metrics.tasks_purged;
    },
    e )

let fmt_steps (s : run_stats) =
  if s.completed then Table.cell_i s.steps else "DNF"

(* ------------------------------------------------------------------ *)
(* E4: concurrent vs stop-the-world vs RC vs none.                     *)
(* ------------------------------------------------------------------ *)

let e4_gc_comparison ?seed:(_ = 1) () =
  let table =
    Table.create
      ~title:
        "E4 (§4): memory management under reduction — completion and mutator pauses (steps)"
      ~columns:
        [
          ("workload", Table.Left);
          ("collector", Table.Left);
          ("completion", Table.Right);
          ("total pause", Table.Right);
          ("max pause", Table.Right);
          ("collections", Table.Right);
          ("reclaimed", Table.Right);
          ("peak live", Table.Right);
        ]
  in
  let heap = Some 12_000 in
  let modes =
    [
      ("none (unbounded)", Engine.No_gc, None);
      ("none (12k heap)", Engine.No_gc, heap);
      ("concurrent (paper)", concurrent ~deadlock_every:0 ~idle_gap:20 (), heap);
      ("stop-the-world", Engine.Stop_the_world { every = 400 }, heap);
      ("refcount", Engine.Refcount, heap);
    ]
  in
  List.iter
    (fun (wname, source) ->
      List.iter
        (fun (mname, gc, heap) ->
          let config = Engine.Config.make ~gc ~heap_size:heap () in
          let stats, e = run_program ~max_steps:300_000 ~config source in
          let collections =
            match gc with
            | Engine.Concurrent _ -> stats.cycles
            | Engine.Stop_the_world _ -> stats.stw_collections
            | Engine.No_gc | Engine.Refcount -> 0
          in
          ignore e;
          Table.add_row table
            [
              wname;
              mname;
              fmt_steps stats;
              Table.cell_i stats.total_pause;
              Printf.sprintf "%.0f" stats.max_pause;
              Table.cell_i collections;
              Table.cell_i stats.reclaimed;
              Table.cell_i stats.peak_live;
            ])
        modes)
    [
      ("fib 14", Prelude.fib 14);
      ("sum∘map∘range 25", Prelude.sum_range 25);
      ("deep speculation", Prelude.speculative_deep 1200 13);
    ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* E5: scaling with the number of PEs.                                 *)
(* ------------------------------------------------------------------ *)

let e5_scaling ?seed:(_ = 1) () =
  let table =
    Table.create ~title:"E5 (§1,§4): decentralized marking scale-out (fib 11, concurrent GC)"
      ~columns:
        [
          ("PEs", Table.Right);
          ("completion", Table.Right);
          ("speedup", Table.Right);
          ("cycles", Table.Right);
          ("marking tasks", Table.Right);
          ("avg cycle span", Table.Right);
          ("remote msgs", Table.Right);
        ]
  in
  let base = ref None in
  List.iter
    (fun num_pes ->
      let config =
        Engine.Config.make ~num_pes ~gc:(concurrent ~deadlock_every:0 ~idle_gap:20 ()) ()
      in
      let stats, e = run_program ~config (Prelude.fib 11) in
      let m = Engine.metrics e in
      (if !base = None && stats.completed then base := Some (float_of_int stats.steps));
      let speedup =
        match !base with
        | Some b when stats.completed -> Table.cell_ratio (b /. float_of_int stats.steps)
        | _ -> "-"
      in
      let span =
        if stats.cycles = 0 then "-"
        else Table.cell_f (float_of_int stats.steps /. float_of_int stats.cycles)
      in
      Table.add_row table
        [
          Table.cell_i num_pes;
          fmt_steps stats;
          speedup;
          Table.cell_i stats.cycles;
          Table.cell_i m.Metrics.marking_executed;
          span;
          Table.cell_i m.Metrics.remote_messages;
        ])
    [ 1; 2; 4; 8; 16; 32 ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* E6: cyclic garbage — tracing vs reference counting.                 *)
(* ------------------------------------------------------------------ *)

let build_clusters rng g hub ~clusters ~cluster_size =
  (* Half the clusters are chains (acyclic), half are rings (cyclic);
     each hangs off the hub by one edge. Returns (acyclic, cyclic) entry
     lists. *)
  let acyclic = ref [] and cyclic = ref [] in
  for i = 0 to clusters - 1 do
    let entry =
      if i mod 2 = 0 then begin
        let e = Builder.chain g cluster_size in
        acyclic := e :: !acyclic;
        e
      end
      else begin
        let e = Builder.cycle g cluster_size in
        cyclic := e :: !cyclic;
        e
      end
    in
    Vertex.connect (Graph.vertex g hub) entry
  done;
  ignore rng;
  (!acyclic, !cyclic)

let e6_cyclic_garbage ?(seed = 3) () =
  let table =
    Table.create
      ~title:"E6 (§4): reclaiming self-referencing structures — tracing vs reference counts"
      ~columns:
        [
          ("collector", Table.Left);
          ("dropped vertices", Table.Right);
          ("reclaimed", Table.Right);
          ("leaked (cyclic)", Table.Right);
          ("RC messages", Table.Right);
        ]
  in
  let clusters = 40 and cluster_size = 12 in
  let run_mode mname gc =
    let rng = Rng.create seed in
    let g = Graph.create ~num_pes:4 () in
    let hub = Builder.add g Label.If [] in
    let root = Builder.add_root g Label.Ind [ hub ] in
    ignore root;
    let acyclic, cyclic = build_clusters rng g hub ~clusters ~cluster_size in
    let config = Engine.Config.make ~gc ~heap_size:None () in
    let e = Engine.create ~config g empty_registry in
    (* Warm-up: everything reachable, nothing to collect. *)
    let (_ : int) = Engine.run ~max_steps:200 ~stop:(fun _ -> true) e in
    for _ = 1 to 150 do
      Engine.step e
    done;
    let before = Graph.live_count g in
    (* Drop every cluster. *)
    let mut = Engine.mutator e in
    List.iter
      (fun entry -> Dgr_core.Mutator.delete_reference mut ~a:hub ~b:entry)
      (acyclic @ cyclic);
    for _ = 1 to 2_000 do
      Engine.step e
    done;
    let after = Graph.live_count g in
    let reclaimed = before - after in
    let leaked =
      match Engine.refcount e with
      | Some rc -> List.length (Dgr_baseline.Refcount.leaked rc)
      | None ->
        (* For tracing modes, leaked = unreachable-but-live. *)
        let snap = Snapshot.take g in
        let reach = Reach.reachable_from snap [ Graph.root g ] in
        Graph.fold_live
          (fun acc v -> if Vid.Set.mem (Vertex.id v) reach then acc else acc + 1)
          0 g
    in
    let messages =
      match Engine.refcount e with
      | Some rc -> Table.cell_i (Dgr_baseline.Refcount.messages rc)
      | None -> "-"
    in
    Table.add_row table
      [
        mname;
        Table.cell_i (clusters * cluster_size);
        Table.cell_i reclaimed;
        Table.cell_i leaked;
        messages;
      ]
  in
  run_mode "concurrent marking" (concurrent ~deadlock_every:0 ~idle_gap:20 ());
  run_mode "stop-the-world" (Engine.Stop_the_world { every = 300 });
  run_mode "refcount" Engine.Refcount;
  [ table ]

(* ------------------------------------------------------------------ *)
(* E7: irrelevant-task deletion.                                       *)
(* ------------------------------------------------------------------ *)

let e7_irrelevant_tasks ?seed:(_ = 1) () =
  let table =
    Table.create
      ~title:
        "E7 (§3.2, Property 6): containing the irrelevant-task explosion (speculation on)"
      ~columns:
        [
          ("workload", Table.Left);
          ("collector", Table.Left);
          ("completion", Table.Right);
          ("tasks executed", Table.Right);
          ("tasks purged", Table.Right);
          ("peak live", Table.Right);
        ]
  in
  let modes =
    [
      ("concurrent + deletion", concurrent ~deadlock_every:0 ~idle_gap:20 (), Some 16_000);
      ("none (16k heap)", Engine.No_gc, Some 16_000);
      ("none (unbounded)", Engine.No_gc, None);
      ("refcount", Engine.Refcount, Some 16_000);
    ]
  in
  List.iter
    (fun (wname, source) ->
      List.iter
        (fun (mname, gc, heap) ->
          let config = Engine.Config.make ~gc ~heap_size:heap () in
          let stats, _ = run_program ~max_steps:300_000 ~config source in
          Table.add_row table
            [
              wname;
              mname;
              fmt_steps stats;
              Table.cell_i stats.reduction_executed;
              Table.cell_i stats.purged;
              Table.cell_i stats.peak_live;
            ])
        modes)
    [
      ("divergent losing branch", Prelude.divergent_speculation);
      ("expensive losing branch", Prelude.speculative 60);
      ("deep vital side", Prelude.speculative_deep 2500 14);
    ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* E8: dynamic prioritization ablation.                                *)
(* ------------------------------------------------------------------ *)

let e8_priorities ?seed:(_ = 1) () =
  let table =
    Table.create
      ~title:"E8 (§3.2): task-pool policy ablation — time for the vital result (steps)"
      ~columns:
        [
          ("workload", Table.Left);
          ("flat", Table.Right);
          ("by-demand", Table.Right);
          ("dynamic (marking)", Table.Right);
        ]
  in
  let policies = [ Pool.Flat; Pool.By_demand; Pool.Dynamic ] in
  List.iter
    (fun (wname, source) ->
      let cells =
        List.map
          (fun policy ->
            let config =
              Engine.Config.make ~pool_policy:policy
                ~gc:(concurrent ~deadlock_every:0 ~idle_gap:20 ())
                ~heap_size:(Some 20_000) ()
            in
            let stats, _ = run_program ~max_steps:150_000 ~config source in
            fmt_steps stats)
          policies
      in
      Table.add_row table (wname :: cells))
    [
      ("speculative(40)", Prelude.speculative 40);
      ("divergent speculation", Prelude.divergent_speculation);
      ("fib 11", Prelude.fib 11);
    ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* E9: the §6 space optimization — marking tree vs per-PE counters.     *)
(* ------------------------------------------------------------------ *)

let e9_marking_schemes ?seed:(_ = 1) () =
  let table =
    Table.create
      ~title:
        "E9 (§6): marking-tree vs flood-counter bookkeeping (concurrent GC, 4 PEs)"
      ~columns:
        [
          ("workload", Table.Left);
          ("scheme", Table.Left);
          ("completion", Table.Right);
          ("cycles", Table.Right);
          ("marking tasks", Table.Right);
          ("bookkeeping", Table.Left);
          ("reclaimed", Table.Right);
        ]
  in
  List.iter
    (fun (wname, source) ->
      List.iter
        (fun (sname, scheme) ->
          let config =
            Engine.Config.make
              ~gc:(concurrent ~deadlock_every:2 ~idle_gap:20 ())
              ~marking:scheme ()
          in
          let stats, e = run_program ~max_steps:300_000 ~config source in
          (* the cycle "is repeated endlessly": let at least two finish
             after the result so reclamation is comparable *)
          (match Engine.cycle e with
          | Some c when stats.completed ->
            let target = Cycle.cycles_completed c + 2 in
            ignore
              (Engine.run ~max_steps:20_000
                 ~stop:(fun _ -> Cycle.cycles_completed c >= target)
                 e)
          | Some _ | None -> ());
          let reclaimed =
            match Engine.cycle e with
            | Some c -> Cycle.total_garbage_collected c
            | None -> stats.reclaimed
          in
          let cycles =
            match Engine.cycle e with
            | Some c -> Cycle.cycles_completed c
            | None -> stats.cycles
          in
          let m = Engine.metrics e in
          let words =
            match scheme with
            | Dgr_core.Cycle.Tree ->
              Printf.sprintf "2 x |V| = %d" (2 * Graph.vertex_count (Engine.graph e))
            | Dgr_core.Cycle.Flood_counters ->
              Printf.sprintf "2 x PEs = %d" (2 * Engine.Config.num_pes config)
          in
          Table.add_row table
            [
              wname;
              sname;
              fmt_steps stats;
              Table.cell_i cycles;
              Table.cell_i m.Metrics.marking_executed;
              words;
              Table.cell_i reclaimed;
            ])
        [ ("tree (Fig 4-1/5-1)", Dgr_core.Cycle.Tree);
          ("flood counters (§6)", Dgr_core.Cycle.Flood_counters) ])
    [
      ("fib 12", Prelude.fib 12);
      ("sum∘map∘range 20", Prelude.sum_range 20);
      ("speculative(40)", Prelude.speculative 40);
    ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* E10: memory sensitivity — how small a heap can each collector run    *)
(* the same program in? (finite V, §2.2)                                *)
(* ------------------------------------------------------------------ *)

let e10_heap_sweep ?seed:(_ = 1) () =
  let table =
    Table.create
      ~title:"E10 (§2.2): completion (steps) vs heap bound — fib 13, 4 PEs"
      ~columns:
        ([ ("collector", Table.Left) ]
        @ List.map (fun h -> (h, Table.Right)) [ "4k"; "6k"; "9k"; "14k"; "unbounded" ])
  in
  let heaps = [ Some 4_000; Some 6_000; Some 9_000; Some 14_000; None ] in
  List.iter
    (fun (mname, gc) ->
      let cells =
        List.map
          (fun heap ->
            let config = Engine.Config.make ~gc ~heap_size:heap () in
            let stats, _ = run_program ~max_steps:60_000 ~config (Prelude.fib 13) in
            fmt_steps stats)
          heaps
      in
      Table.add_row table (mname :: cells))
    [
      ("none", Engine.No_gc);
      ("concurrent (paper)", concurrent ~deadlock_every:0 ~idle_gap:20 ());
      ("stop-the-world", Engine.Stop_the_world { every = 400 });
      ("refcount", Engine.Refcount);
    ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* E11: fault sweep — marking-cycle length and channel overhead vs      *)
(* message drop rate, reliable delivery over a lossy network.           *)
(* ------------------------------------------------------------------ *)

let e11_fault_sweep ?(seed = 1) () =
  let table =
    Table.create
      ~title:
        "E11: drop rate vs marking-cycle length — fib 11, 4 PEs, concurrent GC, \
         reliable delivery over a lossy channel"
      ~columns:
        [
          ("drop", Table.Left);
          ("completion", Table.Right);
          ("cycles", Table.Right);
          ("avg cycle len", Table.Right);
          ("retransmits", Table.Right);
          ("dropped", Table.Right);
          ("dup-suppressed", Table.Right);
          ("stalls", Table.Right);
          ("result", Table.Left);
        ]
  in
  List.iter
    (fun drop ->
      (* duplicate rides at half the drop rate, plus a little reordering
         and a rare transient PE stall — the full adversary, scaled by
         the sweep variable. drop = 0.0 is the fault-free control. *)
      let faults =
        if drop = 0.0 then Faults.none
        else
          {
            Faults.none with
            Faults.drop;
            duplicate = drop /. 2.0;
            delay = 0.1;
            stall = 0.02;
            fault_seed = seed;
          }
      in
      let config =
        Engine.Config.make ~gc:(concurrent ~deadlock_every:1 ~idle_gap:20 ()) ~faults ()
      in
      let stats, e = run_program ~max_steps:300_000 ~config (Prelude.fib 11) in
      let m = Engine.metrics e in
      Table.add_row table
        [
          Printf.sprintf "%.2f" drop;
          fmt_steps stats;
          Table.cell_i stats.cycles;
          (if stats.cycles = 0 then "-" else Table.cell_i (stats.steps / stats.cycles));
          Table.cell_i m.Metrics.retransmits;
          Table.cell_i m.Metrics.msgs_dropped;
          Table.cell_i m.Metrics.dup_suppressed;
          Table.cell_i m.Metrics.stalls;
          value_to_string (Engine.result e);
        ])
    [ 0.0; 0.05; 0.1; 0.2; 0.3 ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* E12: measured Amdahl serial fraction and speedup vs domain count —    *)
(* the step-phase profiler on the sharding-relevant storm workload. The  *)
(* latency percentiles are deterministic (and must agree across rows —   *)
(* the same simulation runs at every shard count); the steps/sec,        *)
(* speedup, serial-fraction and ceiling columns are wall-clock           *)
(* measurements and vary run to run, the one documented exception to     *)
(* the experiments' determinism claim.                                   *)
(* ------------------------------------------------------------------ *)

let e12_serial_fraction () =
  let table =
    Table.create
      ~title:
        "E12: serial fraction and speedup vs domains — storm-tree-8k, \
         step-phase profiler (steps/sec, speedup, serial-fraction and \
         ceiling columns are wall-clock, non-deterministic)"
      ~columns:
        [
          ("domains", Table.Right);
          ("steps", Table.Right);
          ("lat p50", Table.Right);
          ("lat p99", Table.Right);
          ("steps/sec", Table.Right);
          ("speedup", Table.Right);
          ("execute share", Table.Right);
          ("serial fraction", Table.Right);
          ("amdahl ceiling @8", Table.Right);
        ]
  in
  let base_rate = ref 0.0 in
  List.iter
    (fun domains ->
      let e = Bench.run_for_report ~domains "storm-tree-8k" in
      let m = Engine.metrics e in
      let p = Engine.profile e in
      let share part =
        if p.Profile.total_ns <= 0.0 then 0.0 else part /. p.Profile.total_ns
      in
      let rate =
        if p.Profile.total_ns <= 0.0 then 0.0
        else float_of_int m.Metrics.steps /. (p.Profile.total_ns /. 1e9)
      in
      if domains = 1 then base_rate := rate;
      Table.add_row table
        [
          Table.cell_i domains;
          Table.cell_i m.Metrics.steps;
          Table.cell_i (Dgr_obs.Hist.percentile m.Metrics.lat_e2e 50.0);
          Table.cell_i (Dgr_obs.Hist.percentile m.Metrics.lat_e2e 99.0);
          Printf.sprintf "%.0f" rate;
          (if !base_rate <= 0.0 then "-"
           else Printf.sprintf "x%.2f" (rate /. !base_rate));
          Printf.sprintf "%.1f%%" (100.0 *. share p.Profile.execute_ns);
          Printf.sprintf "%.3f" (Profile.serial_fraction p);
          Printf.sprintf "x%.2f" (Profile.amdahl_speedup p ~domains:8);
        ];
      Engine.dispose e)
    [ 1; 2; 4; 8 ];
  [ table ]

(* ------------------------------------------------------------------ *)
(* E13: crash sweep — whole-PE crashes with checkpointed re-homing.      *)
(* The machine survives any crash schedule that leaves a survivor: the   *)
(* crashed PE's segment is restored from its per-step checkpoint and its *)
(* vertices re-home, but pooled and in-flight tasks die with the PE, so  *)
(* completion is not expected at higher rates — the table reads           *)
(* recovery latency and re-homing volume against the crash rate.          *)
(* ------------------------------------------------------------------ *)

let e13_crash_sweep ?(seed = 5) () =
  let table =
    Table.create
      ~title:
        "E13: crash rate vs recovery latency — fib 11, 4 PEs, concurrent GC, \
         checkpointed re-homing (downtime uniform in [1,40])"
      ~columns:
        [
          ("crash", Table.Left);
          ("completion", Table.Right);
          ("crashes", Table.Right);
          ("recoveries", Table.Right);
          ("downtime p50", Table.Right);
          ("downtime max", Table.Right);
          ("rehomed", Table.Right);
          ("lost tasks", Table.Right);
          ("cycles", Table.Right);
        ]
  in
  List.iter
    (fun crash ->
      let faults =
        if crash = 0.0 then Faults.none
        else
          {
            Faults.none with
            Faults.drop = 0.02;
            delay = 0.05;
            crash;
            crash_down_max = 40;
            fault_seed = seed;
          }
      in
      let config =
        Engine.Config.make ~gc:(concurrent ~deadlock_every:1 ~idle_gap:20 ()) ~faults ()
      in
      let stats, e = run_program ~max_steps:40_000 ~config (Prelude.fib 11) in
      let m = Engine.metrics e in
      Table.add_row table
        [
          Printf.sprintf "%.3f" crash;
          fmt_steps stats;
          Table.cell_i m.Metrics.crashes;
          Table.cell_i m.Metrics.recoveries;
          (if Dgr_obs.Hist.count m.Metrics.lat_recovery = 0 then "-"
           else Table.cell_i (Dgr_obs.Hist.percentile m.Metrics.lat_recovery 50.0));
          (if Dgr_obs.Hist.count m.Metrics.lat_recovery = 0 then "-"
           else Table.cell_i (Dgr_obs.Hist.max_value m.Metrics.lat_recovery));
          Table.cell_i m.Metrics.crash_rehomed;
          Table.cell_i m.Metrics.crash_lost_tasks;
          Table.cell_i stats.cycles;
        ])
    [ 0.0; 0.001; 0.002; 0.005; 0.01 ];
  [ table ]

(* ------------------------------------------------------------------ *)

type info = { title : string; paper_ref : string }

(* The single registry every front end enumerates ([dgr experiment],
   [dgr experiment --list], bench/main.ml): adding E12 means adding one
   line here and nothing anywhere else. *)
let all =
  [
    ("e1", { title = "deadlock detection on x = x + 1"; paper_ref = "Fig 3-1" },
     fun () -> e1_deadlock ());
    ("e2", { title = "the four task types"; paper_ref = "Fig 3-2" },
     fun () -> e2_task_types ());
    ("e3", { title = "Venn regions on random graphs"; paper_ref = "Fig 3-3" },
     fun () -> e3_venn ());
    ("e4", { title = "GC comparison"; paper_ref = "§4" },
     fun () -> e4_gc_comparison ());
    ("e5", { title = "PE scaling"; paper_ref = "§1/§4" },
     fun () -> e5_scaling ());
    ("e6", { title = "cyclic garbage"; paper_ref = "§4" },
     fun () -> e6_cyclic_garbage ());
    ("e7", { title = "irrelevant-task deletion"; paper_ref = "§3.2" },
     fun () -> e7_irrelevant_tasks ());
    ("e8", { title = "priority ablation"; paper_ref = "§3.2" },
     fun () -> e8_priorities ());
    ("e9", { title = "marking-scheme ablation"; paper_ref = "§6" },
     fun () -> e9_marking_schemes ());
    ("e10", { title = "heap-bound sweep"; paper_ref = "§2.2" },
     fun () -> e10_heap_sweep ());
    ("e11", { title = "fault sweep (drop rate vs cycle length)"; paper_ref = "§2.1 relaxed" },
     fun () -> e11_fault_sweep ());
    ("e12", { title = "serial fraction and speedup vs domains (step-phase profiler)"; paper_ref = "§1" },
     fun () -> e12_serial_fraction ());
    ("e13", { title = "crash sweep (crash rate vs recovery latency)"; paper_ref = "§2.1 relaxed" },
     fun () -> e13_crash_sweep ());
  ]

let ids = List.map (fun (id, _, _) -> id) all

let describe id =
  match List.find_opt (fun (i, _, _) -> i = id) all with
  | Some (_, info, _) -> Some info
  | None -> None

let run ?trace_dir:dir id =
  let selected =
    if id = "all" then all
    else
      match List.find_opt (fun (i, _, _) -> i = id) all with
      | Some e -> [ e ]
      | None -> invalid_arg (Printf.sprintf "Experiments.run: unknown experiment %S" id)
  in
  trace_dir := dir;
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | Some _ | None -> ());
  List.iter
    (fun (eid, _, f) ->
      trace_label := eid;
      trace_counter := 0;
      List.iter Table.print (f ());
      print_newline ())
    selected;
  trace_dir := None
