open Dgr_graph
open Dgr_sim
open Dgr_lang

(* v5: rows gained the crash-plane columns "crashes", "recoveries" and
   "crash_rehomed" (whole-PE crashes with checkpointed re-homing; all
   zero for crash-free scenarios). v4 added the end-to-end latency
   percentiles "lat_p50".."lat_p999" (in steps, from the lineage
   histograms — deterministic) and the wall-measured "serial_fraction"
   (zeroed in deterministic mode). v3 added the transport columns
   "frames_sent", "acks_sent", "marks_coalesced" and "tasks_per_frame",
   and the document a top-level "batch" (whether frame batching was on).
   v2 added per-row "domains" and "speedup_vs_seq" and the top-level
   "domains". *)
let schema_version = 5

(* ------------------------------------------------------------------ *)
(* The macro suite.                                                    *)
(* ------------------------------------------------------------------ *)

type workload =
  | Program of string
      (** surface-language source; the root's value is demanded *)
  | Storm of Builder.random_spec
      (** a rooted random operator graph (no templates): demanding the
          root floods requests through it while the collector cycles
          over a large live set — the marking/network hot path with
          almost no useful reduction *)

type scenario = {
  s_name : string;
  s_smoke : bool;
  s_workload : workload;
  s_config : Engine.config;
  s_max_steps : int;
  s_endless : bool;
      (** ignore completion and run the full step budget (concurrent
          collectors cycle endlessly; other regimes still stop at
          quiescence) *)
}

let conc ?(deadlock_every = 1) ?(idle_gap = 30) () =
  Engine.Concurrent { deadlock_every; idle_gap }

let storm_spec n =
  {
    Builder.live = n;
    garbage = n / 4;
    free_pool = 64;
    avg_degree = 2.5;
    cycle_bias = 0.15;
  }

let storm ~name ~smoke ?(marking = Dgr_core.Cycle.Tree) ?(gc = conc ()) ~live
    ~max_steps () =
  {
    s_name = name;
    s_smoke = smoke;
    s_workload = Storm (storm_spec live);
    s_config =
      Engine.Config.make ~num_pes:8 ~gc ~heap_size:None ~marking ~seed:11 ();
    s_max_steps = max_steps;
    s_endless = true;
  }

let program ~name ~smoke ?(num_pes = 4) ?(gc = conc ~idle_gap:50 ())
    ?(jitter = 0.0) ?(seed = 0) ?(faults = Faults.none) ~max_steps source =
  {
    s_name = name;
    s_smoke = smoke;
    s_workload = Program source;
    s_config = Engine.Config.make ~num_pes ~gc ~jitter ~seed ~faults ();
    s_max_steps = max_steps;
    s_endless = false;
  }

let light_faults =
  {
    Faults.none with
    Faults.drop = 0.05;
    duplicate = 0.02;
    delay = 0.05;
    stall = 0.01;
    fault_seed = 7;
  }

(* Lossy channel plus whole-PE crashes: in-flight and pooled tasks die
   with a crashed PE, so completion is never expected — the scenario
   measures survival (recovery latency, re-homing volume, marking
   restarts), not the answer. *)
let crash_faults =
  {
    Faults.none with
    Faults.drop = 0.02;
    duplicate = 0.01;
    delay = 0.02;
    stall = 0.01;
    crash = 0.004;
    crash_down_max = 40;
    fault_seed = 13;
  }

(* The smoke subset (s_smoke = true) is the cheap half of the suite at
   the SAME sizes and configs — a subset, not a miniature — so smoke
   rates compare directly against a full-run baseline. *)
let suite =
  [
    storm ~name:"storm-tree-8k" ~smoke:true ~live:8_000 ~max_steps:2_000 ();
    storm ~name:"storm-flood-8k" ~smoke:true ~live:8_000 ~max_steps:2_000
      ~marking:Dgr_core.Cycle.Flood_counters ();
    storm ~name:"storm-tree-50k" ~smoke:false ~live:50_000 ~max_steps:3_000 ();
    storm ~name:"storm-stw-50k" ~smoke:false ~live:50_000 ~max_steps:3_000
      ~gc:(Engine.Stop_the_world { every = 200 }) ();
    program ~name:"fib-12-concurrent" ~smoke:true ~max_steps:200_000
      (Prelude.fib 12);
    program ~name:"fib-14-concurrent" ~smoke:false ~num_pes:8
      ~max_steps:400_000 (Prelude.fib 14);
    program ~name:"fib-12-stw" ~smoke:true
      ~gc:(Engine.Stop_the_world { every = 400 }) ~max_steps:200_000
      (Prelude.fib 12);
    program ~name:"fib-12-refcount" ~smoke:true ~gc:Engine.Refcount
      ~max_steps:200_000 (Prelude.fib 12);
    program ~name:"sumrange-18-concurrent" ~smoke:false ~max_steps:200_000
      (Prelude.sum_range 18);
    program ~name:"specdeep-concurrent" ~smoke:false
      ~gc:(conc ~idle_gap:20 ()) ~max_steps:60_000
      (Prelude.speculative_deep 600 10);
    program ~name:"fib-12-faults" ~smoke:true ~faults:light_faults
      ~max_steps:200_000 (Prelude.fib 12);
    program ~name:"fib-12-crash" ~smoke:true ~faults:crash_faults
      ~max_steps:20_000 (Prelude.fib 12);
    program ~name:"fib-12-jitter" ~smoke:false ~jitter:0.3 ~seed:3
      ~max_steps:200_000 (Prelude.fib 12);
  ]

let scenario_names ~smoke =
  List.filter_map
    (fun s -> if (not smoke) || s.s_smoke then Some s.s_name else None)
    suite

(* ------------------------------------------------------------------ *)
(* Running and measuring.                                              *)
(* ------------------------------------------------------------------ *)

type row = {
  name : string;
  seed : int;
  domains : int;  (** shard count the scenario ran at *)
  steps : int;
  tasks : int;
  messages : int;
  cycles : int;
  avg_cycle_len : float;
  live : int;
  completed : bool;
  frames_sent : int;  (** data frames flushed by the transport *)
  acks_sent : int;  (** standalone cumulative-ack frames *)
  marks_coalesced : int;  (** marks absorbed by a staged twin *)
  crashes : int;  (** whole-PE crashes begun *)
  recoveries : int;  (** crashed PEs that came back up *)
  crash_rehomed : int;  (** live vertices moved off crashed PEs *)
  tasks_per_frame : float;
      (** tasks carried / frames sent — the frame-count reduction
          batching bought over one-task-per-frame transport *)
  lat_p50 : int;  (** end-to-end task latency percentiles, in steps *)
  lat_p90 : int;
  lat_p99 : int;
  lat_p999 : int;
  serial_fraction : float;
      (** measured Amdahl serial fraction (wall-clock; 0.0 when
          deterministic) *)
  digest : string;
  wall_ns : int64;
  minor_words : float;
  speedup_vs_seq : float;
      (** steps/sec vs the same scenario at [domains = 1]; [0.0] when
          unknown (deterministic runs, or no sequential row to compare) *)
}

(* Everything a run's semantics determine, in one string: if two engines
   produce equal signatures they finished in the same state having done
   the same work. The digest of this is the row's [digest] field and what
   the CI determinism check compares. *)
let signature e =
  let m = Engine.metrics e in
  let live =
    String.concat "," (List.map Vid.to_string (Graph.live_vids (Engine.graph e)))
  in
  let deadlocked =
    match Engine.cycle e with
    | Some c ->
      String.concat ","
        (List.map Vid.to_string
           (Vid.Set.elements (Dgr_core.Cycle.deadlocked_ever c)))
    | None -> ""
  in
  let result =
    match Engine.result e with
    | Some v -> Format.asprintf "%a" Label.pp_value v
    | None -> "-"
  in
  Printf.sprintf "%d|%s|%s|%s|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d" (Engine.now e) live
    deadlocked result m.Metrics.reduction_executed m.Metrics.marking_executed
    m.Metrics.remote_messages m.Metrics.local_messages m.Metrics.tasks_purged
    m.Metrics.cycles_completed m.Metrics.stw_collections m.Metrics.msgs_dropped
    m.Metrics.retransmits m.Metrics.stalls

let build_engine ?(domains = 1) ?(batch = true) s =
  let config =
    s.s_config |> Engine.Config.with_domains domains |> Engine.Config.with_batch batch
  in
  let num_pes = Engine.Config.num_pes config in
  let g, templates =
    match s.s_workload with
    | Program source -> Compile.load_string ~num_pes source
    | Storm spec ->
      let rng = Dgr_util.Rng.create (Engine.Config.seed config) in
      (Builder.random ~num_pes rng spec, Dgr_reduction.Template.create_registry ())
  in
  Engine.create ~config g templates

(* Demand alone dies out quickly on a placeholder graph; spraying
   requests over every 8th live vertex keeps the pools busy (and a
   stop-the-world machine non-quiescent) while the collector works. *)
let prime e s =
  Engine.inject_root_demand e;
  match s.s_workload with
  | Storm _ ->
    List.iteri
      (fun i v ->
        if i mod 8 = 0 then Engine.inject e (Dgr_task.Task.request v Demand.Eager))
      (Graph.live_vids (Engine.graph e))
  | Program _ -> ()

let run_scenario ?(domains = 1) ?(batch = true) ~deterministic s =
  let e = build_engine ~domains ~batch s in
  prime e s;
  let mw0 = if deterministic then 0.0 else Gc.minor_words () in
  let t0 = if deterministic then 0.0 else Unix.gettimeofday () in
  let steps =
    if s.s_endless then Engine.run ~max_steps:s.s_max_steps ~stop:(fun _ -> false) e
    else Engine.run ~max_steps:s.s_max_steps e
  in
  let wall_ns =
    if deterministic then 0L
    else Int64.of_float ((Unix.gettimeofday () -. t0) *. 1e9)
  in
  let minor_words = if deterministic then 0.0 else Gc.minor_words () -. mw0 in
  let m = Engine.metrics e in
  let cycles = m.Metrics.cycles_completed in
  let row_result =
  {
    name = s.s_name;
    seed = Engine.Config.seed s.s_config;
    domains = Engine.Config.domains (Engine.config e);
    steps;
    tasks = m.Metrics.reduction_executed + m.Metrics.marking_executed;
    messages = m.Metrics.remote_messages + m.Metrics.local_messages;
    cycles;
    avg_cycle_len =
      (if cycles = 0 then 0.0 else float_of_int steps /. float_of_int cycles);
    live = Graph.live_count (Engine.graph e);
    completed = Engine.result e <> None;
    frames_sent = m.Metrics.frames_sent;
    acks_sent = m.Metrics.acks_sent;
    marks_coalesced = m.Metrics.marks_coalesced;
    crashes = m.Metrics.crashes;
    recoveries = m.Metrics.recoveries;
    crash_rehomed = m.Metrics.crash_rehomed;
    tasks_per_frame =
      (if m.Metrics.frames_sent = 0 then 0.0
       else float_of_int m.Metrics.tasks_sent /. float_of_int m.Metrics.frames_sent);
    lat_p50 = Dgr_obs.Hist.percentile m.Metrics.lat_e2e 50.0;
    lat_p90 = Dgr_obs.Hist.percentile m.Metrics.lat_e2e 90.0;
    lat_p99 = Dgr_obs.Hist.percentile m.Metrics.lat_e2e 99.0;
    lat_p999 = Dgr_obs.Hist.percentile m.Metrics.lat_e2e 99.9;
    serial_fraction =
      (if deterministic then 0.0
       else Dgr_sim.Profile.serial_fraction (Engine.profile e));
    digest = Digest.to_hex (Digest.string (signature e));
    wall_ns;
    minor_words;
    speedup_vs_seq = 0.0;
  }
  in
  Engine.dispose e;
  row_result

let steps_per_sec r =
  if r.wall_ns = 0L then 0.0
  else float_of_int r.steps /. (Int64.to_float r.wall_ns /. 1e9)

(* Fill [speedup_vs_seq] in [rows] from a matching sequential run of the
   same scenarios. The digests must agree — the determinism contract —
   so the speedup compares identical work. *)
let with_speedups ~seq rows =
  List.map
    (fun r ->
      match List.find_opt (fun s -> s.name = r.name) seq with
      | Some s when steps_per_sec s > 0.0 && s.digest = r.digest ->
        { r with speedup_vs_seq = steps_per_sec r /. steps_per_sec s }
      | Some _ | None -> r)
    rows

let speedup_table ~seq ~par =
  List.filter_map
    (fun r ->
      match List.find_opt (fun s -> s.name = r.name) seq with
      | Some s -> Some (r.name, steps_per_sec s, steps_per_sec r, r.digest = s.digest)
      | None -> None)
    (with_speedups ~seq par)

let run_suite ?(domains = 1) ?(batch = true) ?only ~smoke ~deterministic () =
  let selected =
    match only with
    | None -> List.filter (fun s -> (not smoke) || s.s_smoke) suite
    | Some names ->
      List.map
        (fun n ->
          match List.find_opt (fun s -> s.s_name = n) suite with
          | Some s -> s
          | None ->
            invalid_arg
              (Printf.sprintf "Bench.run_suite: unknown scenario %S (have: %s)" n
                 (String.concat ", " (scenario_names ~smoke:false))))
        names
  in
  List.map (run_scenario ~domains ~batch ~deterministic) selected

(* Build, prime and run one named suite scenario, returning the engine
   itself (not a row) so a post-run analyzer can walk its lineage store,
   histograms and profile. The caller owns the engine: dispose it. *)
let run_for_report ?(domains = 1) ?(batch = true) name =
  match List.find_opt (fun s -> s.s_name = name) suite with
  | None ->
    invalid_arg
      (Printf.sprintf "Bench.run_for_report: unknown scenario %S (have: %s)" name
         (String.concat ", " (scenario_names ~smoke:false)))
  | Some s ->
    let e = build_engine ~domains ~batch s in
    prime e s;
    let (_ : int) =
      if s.s_endless then Engine.run ~max_steps:s.s_max_steps ~stop:(fun _ -> false) e
      else Engine.run ~max_steps:s.s_max_steps e
    in
    e

(* ------------------------------------------------------------------ *)
(* BENCH.json.                                                         *)
(* ------------------------------------------------------------------ *)

let row_json r =
  let secs = Int64.to_float r.wall_ns /. 1e9 in
  let rate n = if r.wall_ns = 0L then 0.0 else float_of_int n /. secs in
  let mwps =
    if r.wall_ns = 0L || r.steps = 0 then 0.0
    else r.minor_words /. float_of_int r.steps
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"seed\":%d,\"domains\":%d,\"steps\":%d,\"tasks\":%d,\"messages\":%d,\"cycles\":%d,\"avg_cycle_len\":%.2f,\"live\":%d,\"completed\":%b,\"frames_sent\":%d,\"acks_sent\":%d,\"marks_coalesced\":%d,\"tasks_per_frame\":%.2f,\"crashes\":%d,\"recoveries\":%d,\"crash_rehomed\":%d,\"lat_p50\":%d,\"lat_p90\":%d,\"lat_p99\":%d,\"lat_p999\":%d,\"serial_fraction\":%.4f,\"digest\":\"%s\",\"wall_ns\":%Ld,\"steps_per_sec\":%.1f,\"tasks_per_sec\":%.1f,\"msgs_per_sec\":%.1f,\"minor_words_per_step\":%.2f,\"speedup_vs_seq\":%.2f}"
    r.name r.seed r.domains r.steps r.tasks r.messages r.cycles r.avg_cycle_len
    r.live r.completed r.frames_sent r.acks_sent r.marks_coalesced
    r.tasks_per_frame r.crashes r.recoveries r.crash_rehomed r.lat_p50 r.lat_p90
    r.lat_p99 r.lat_p999 r.serial_fraction
    r.digest r.wall_ns (rate r.steps) (rate r.tasks)
    (rate r.messages) mwps r.speedup_vs_seq

let to_json ?(batch = true) ~mode ~deterministic rows =
  let domains = List.fold_left (fun m r -> Int.max m r.domains) 1 rows in
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "{\"schema_version\":%d,\"bench\":\"dgr-macro\",\"mode\":\"%s\",\"deterministic\":%b,\"batch\":%b,\"domains\":%d,\"scenarios\":[\n"
    schema_version mode deterministic batch domains;
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (row_json r))
    rows;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Reading a baseline back.                                            *)
(*                                                                     *)
(* We only ever parse documents this module wrote (the committed        *)
(* baseline), so a targeted scanner beats a JSON dependency: pull out   *)
(* each scenario's "name" and "steps_per_sec" by key, ignore the rest.  *)
(* ------------------------------------------------------------------ *)

let find_from hay needle start =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    if i + n > h then None
    else if String.sub hay i n = needle then Some (i + n)
    else go (i + 1)
  in
  go start

(* [(name, value)] per scenario: after each "name" string, scan forward
   for [key] and read the number behind it. *)
let scenario_floats json ~key =
  let key = Printf.sprintf "\"%s\":" key in
  let rec collect acc pos =
    match find_from json "\"name\":\"" pos with
    | None -> List.rev acc
    | Some start -> (
      match String.index_from_opt json start '"' with
      | None -> List.rev acc
      | Some close -> (
        let name = String.sub json start (close - start) in
        match find_from json key close with
        | None -> List.rev acc
        | Some vstart ->
          let vend = ref vstart in
          let len = String.length json in
          while
            !vend < len
            && (match json.[!vend] with
               | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
               | _ -> false)
          do
            incr vend
          done;
          let v =
            try float_of_string (String.sub json vstart (!vend - vstart))
            with _ -> 0.0
          in
          collect ((name, v) :: acc) !vend))
  in
  collect [] 0

let scenario_rates json =
  (match find_from json "\"bench\":\"dgr-macro\"" 0 with
  | Some _ -> ()
  | None -> failwith "Bench.scenario_rates: not a dgr-macro BENCH.json");
  scenario_floats json ~key:"steps_per_sec"

let regressions ~threshold ~baseline rows =
  let base = scenario_rates baseline in
  List.filter_map
    (fun r ->
      match List.assoc_opt r.name base with
      | Some base_sps when base_sps > 0.0 ->
        let cur =
          if r.wall_ns = 0L then 0.0
          else float_of_int r.steps /. (Int64.to_float r.wall_ns /. 1e9)
        in
        if cur < (1.0 -. threshold) *. base_sps then Some (r.name, base_sps, cur)
        else None
      | Some _ | None -> None)
    rows

(* The allocation gate. Unlike steps/sec, minor words per step is
   near-deterministic — same binary, same workload, same allocation —
   so the budget file commits an absolute ceiling per scenario and the
   gate is a hard comparison, not a noise-tolerant ratio. *)

let scenario_alloc_budgets json =
  (match find_from json "\"bench\":\"dgr-alloc-budget\"" 0 with
  | Some _ -> ()
  | None ->
    failwith "Bench.scenario_alloc_budgets: not a dgr-alloc-budget file");
  scenario_floats json ~key:"budget_minor_words_per_step"

(* A/B diff of two committed BENCH.json files, one row per scenario:
   throughput, serial fraction, allocation rate, and the latency
   percentile shifts. Reuses the targeted scanner — both documents were
   written by [to_json] above. Scenarios present in only one file are
   listed with the side they're missing from. *)
let compare_table ~baseline ~candidate =
  let check json which =
    match find_from json "\"bench\":\"dgr-macro\"" 0 with
    | Some _ -> ()
    | None ->
      failwith (Printf.sprintf "Bench.compare_table: %s is not a dgr-macro BENCH.json" which)
  in
  check baseline "baseline";
  check candidate "candidate";
  let keyed json k = scenario_floats json ~key:k in
  let a_sps = keyed baseline "steps_per_sec" in
  let b_sps = keyed candidate "steps_per_sec" in
  let a_serial = keyed baseline "serial_fraction" in
  let b_serial = keyed candidate "serial_fraction" in
  let a_mw = keyed baseline "minor_words_per_step" in
  let b_mw = keyed candidate "minor_words_per_step" in
  let lat p json = keyed json (Printf.sprintf "lat_p%s" p) in
  let a_lat = List.map (fun p -> (p, lat p baseline)) [ "50"; "90"; "99"; "999" ] in
  let b_lat = List.map (fun p -> (p, lat p candidate)) [ "50"; "90"; "99"; "999" ] in
  let b_buf = Buffer.create 1024 in
  Printf.bprintf b_buf "%-24s %22s %15s %19s  %s\n" "scenario" "steps/sec"
    "serial" "minor words/step" "latency p50/p90/p99/p999";
  let get l name = List.assoc_opt name l in
  let names =
    List.map fst a_sps
    @ List.filter (fun n -> not (List.mem_assoc n a_sps)) (List.map fst b_sps)
  in
  List.iter
    (fun name ->
      match (get a_sps name, get b_sps name) with
      | Some _, None -> Printf.bprintf b_buf "%-24s (missing from candidate)\n" name
      | None, Some _ -> Printf.bprintf b_buf "%-24s (missing from baseline)\n" name
      | None, None -> ()
      | Some sa, Some sb ->
        let delta =
          if sa > 0.0 then Printf.sprintf "%+.1f%%" (100.0 *. (sb -. sa) /. sa)
          else "n/a"
        in
        let f l = Option.value (get l name) ~default:0.0 in
        let mwa = f a_mw and mwb = f b_mw in
        let mw_delta =
          if mwa > 0.0 then Printf.sprintf "%+.0f%%" (100.0 *. (mwb -. mwa) /. mwa)
          else "n/a"
        in
        let lat_cell =
          String.concat " "
            (List.map2
               (fun (p, la) (_, lb) ->
                 let va = int_of_float (Option.value (get la name) ~default:0.0) in
                 let vb = int_of_float (Option.value (get lb name) ~default:0.0) in
                 if va = vb then Printf.sprintf "p%s=%d" p va
                 else Printf.sprintf "p%s=%d->%d" p va vb)
               a_lat b_lat)
        in
        Printf.bprintf b_buf "%-24s %8.1f->%8.1f %s %6.3f->%.3f %8.0f->%5.0f %s  %s\n"
          name sa sb delta (f a_serial) (f b_serial) mwa mwb mw_delta lat_cell)
    names;
  Buffer.contents b_buf

let alloc_regressions ~budgets rows =
  List.filter_map
    (fun r ->
      match List.assoc_opt r.name budgets with
      | Some budget when budget > 0.0 && r.steps > 0 && r.wall_ns <> 0L ->
        let mw = r.minor_words /. float_of_int r.steps in
        if mw > budget then Some (r.name, budget, mw) else None
      | Some _ | None -> None)
    rows

(* ------------------------------------------------------------------ *)
(* The differential fixture: 20 mixed scenarios whose end states the    *)
(* pre-optimization engine wrote to test/golden_engine.txt. The         *)
(* differential test regenerates these lines and diffs byte-for-byte:   *)
(* any drift in scheduling, marking, fault handling or tracing shows    *)
(* up as a diff, which is how the hot-path rewrite is pinned to         *)
(* bit-identical semantics. Do not edit casually: any change here or    *)
(* to the fixture must regenerate the other.                            *)
(* ------------------------------------------------------------------ *)

let golden_workloads =
  [|
    ("fib11", Prelude.fib 11);
    ("sumrange16", Prelude.sum_range 16);
    ("spec25", Prelude.speculative 25);
    ("specdeep", Prelude.speculative_deep 600 10);
    ("deadlock", Prelude.deadlock);
  |]

let golden_gc_modes =
  [|
    ("conc-a", Engine.Concurrent { deadlock_every = 1; idle_gap = 20 });
    ("conc-b", Engine.Concurrent { deadlock_every = 2; idle_gap = 10 });
    ("stw", Engine.Stop_the_world { every = 300 });
    ("rc", Engine.Refcount);
    ("nogc", Engine.No_gc);
  |]

let golden_pes = [| 1; 2; 4; 8 |]
let golden_latencies = [| 2; 4; 8 |]
let golden_policies = [| Pool.Dynamic; Pool.Flat; Pool.By_demand |]

let golden_scenario i =
  let wname, source = golden_workloads.(i mod 5) in
  let gname, gc = golden_gc_modes.(3 * i mod 5) in
  let faults =
    if i mod 4 = 1 then
      {
        Faults.none with
        Faults.drop = 0.08;
        duplicate = 0.04;
        delay = 0.08;
        stall = 0.01;
        fault_seed = i;
      }
    else Faults.none
  in
  let config =
    Engine.Config.make
      ~num_pes:golden_pes.(i / 2 mod 4)
      ~latency:golden_latencies.(i mod 3)
      ~heap_size:(if i mod 2 = 0 then Some 12_000 else None)
      ~pool_policy:golden_policies.(i mod 3)
      ~speculate_if:(not (i = 7 || i = 14))
      ~gc
      ~marking:
        (if i mod 4 = 3 then Dgr_core.Cycle.Flood_counters
         else Dgr_core.Cycle.Tree)
      ~jitter:(if i mod 3 = 0 then 0.25 else 0.0)
      ~seed:(1000 + i) ~faults ()
  in
  (Printf.sprintf "%02d-%s-%s" i wname gname, config, source)

let golden_line ?(domains = 1) i =
  let name, config, source = golden_scenario i in
  let config = Engine.Config.with_domains domains config in
  let num_pes = Engine.Config.num_pes config in
  let g, templates = Compile.load_string ~num_pes source in
  let recorder =
    Dgr_obs.Recorder.create ~capacity:(1 lsl 18) ~sample_every:25 ~num_pes ()
  in
  let e = Engine.create ~recorder ~config g templates in
  Engine.inject_root_demand e;
  let (_ : int) = Engine.run ~max_steps:40_000 e in
  Engine.dispose e;
  let m = Engine.metrics e in
  let live =
    String.concat "," (List.map string_of_int (Graph.live_vids (Engine.graph e)))
  in
  let deadlocked =
    match Engine.cycle e with
    | Some c ->
      String.concat ","
        (List.map Vid.to_string
           (Vid.Set.elements (Dgr_core.Cycle.deadlocked_ever c)))
    | None -> ""
  in
  let result =
    match Engine.result e with
    | Some v -> Format.asprintf "%a" Label.pp_value v
    | None -> "-"
  in
  let trace_md5 =
    Digest.to_hex (Digest.string (Dgr_obs.Export.chrome_trace recorder))
  in
  Printf.sprintf
    "%s now=%d completion=%s result=%s live_md5=%s live_n=%d dl=[%s] red=%d mark=%d \
     remote=%d local=%d purged=%d cycles=%d stw=%d pause=%d peak=%d drops=%d dups=%d \
     retx=%d stalls=%d frames=%d acks=%d coalesced=%d trace_md5=%s"
    name (Engine.now e)
    (match m.Metrics.completion_step with Some s -> string_of_int s | None -> "-")
    result
    (Digest.to_hex (Digest.string live))
    (Graph.live_count (Engine.graph e))
    deadlocked m.Metrics.reduction_executed m.Metrics.marking_executed
    m.Metrics.remote_messages m.Metrics.local_messages m.Metrics.tasks_purged
    m.Metrics.cycles_completed m.Metrics.stw_collections m.Metrics.total_pause_steps
    m.Metrics.peak_live m.Metrics.msgs_dropped m.Metrics.msgs_duplicated
    m.Metrics.retransmits m.Metrics.stalls m.Metrics.frames_sent
    m.Metrics.acks_sent m.Metrics.marks_coalesced trace_md5

let golden_lines ?domains () = List.init 20 (fun i -> golden_line ?domains i)
