(** Post-run analyzer behind [dgr report]: renders a finished engine's
    causal-lineage and latency observability as text — the latency table
    (p50/p90/p99/p999 per component), the mean end-to-end decomposition
    (queue vs network vs retransmit vs execution), the top critical-path
    lineages, health-watchdog verdicts, transport efficiency, and the
    step-phase profile with the measured Amdahl serial fraction. *)

val render : ?deterministic:bool -> Dgr_sim.Engine.t -> string
(** [render e] formats the report for a run engine. All sections except
    the step-phase profile are derived from deterministic machine state
    and are byte-identical for a (config, seed) pair at every domain
    count; [~deterministic:true] (default false) omits the wall-clock
    profile section, making the whole report byte-reproducible. *)
