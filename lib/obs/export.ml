(* Chrome trace-event JSON ("JSON Array Format" with a traceEvents
   wrapper). Timestamps are simulation steps used directly as
   microseconds; viewers only care about relative scale. Track layout:

     tid 0..n-1      PE i: task instants (execute/send/deliver/purge)
     tid n           marking: phase spans + cycle verdicts
     tid n+1         controller: pauses, stalls, expansions, completion

   Counter tracks ride on their "name" field. Every field is an integer
   and every record is printed in a fixed order, so equal recorder states
   produce byte-identical output. *)

let bpf = Printf.bprintf

type ctx = {
  b : Buffer.t;
  mutable first : bool;
  (* currently open marking-phase span: (phase, begin step, cycle) *)
  mutable open_phase : (Event.phase * int * int) option;
}

let record ctx fmt =
  if ctx.first then ctx.first <- false else Buffer.add_string ctx.b ",\n";
  Buffer.add_string ctx.b "  ";
  bpf ctx.b fmt

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let instant ctx ~name ~tid ~ts ~args =
  record ctx "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"args\":{%s}}"
    (json_escape name) tid ts args

let span ctx ~name ~tid ~ts ~dur ~args =
  record ctx "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"args\":{%s}}"
    (json_escape name) tid ts dur args

let close_phase ctx ~mark_tid ~ts =
  match ctx.open_phase with
  | None -> ()
  | Some (phase, began, cycle) ->
    if phase <> Event.Idle then
      span ctx ~name:(Event.phase_name phase) ~tid:mark_tid ~ts:began
        ~dur:(Int.max 1 (ts - began))
        ~args:(Printf.sprintf "\"cycle\":%d" cycle);
    ctx.open_phase <- None

let chrome_trace r =
  let n = Recorder.num_pes r in
  let mark_tid = n and ctrl_tid = n + 1 in
  let ctx = { b = Buffer.create 65536; first = true; open_phase = None } in
  Buffer.add_string ctx.b "{\"traceEvents\":[\n";
  record ctx "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"dgr\"}}";
  for pe = 0 to n - 1 do
    record ctx
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"PE %d\"}}"
      pe pe
  done;
  record ctx
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"marking\"}}"
    mark_tid;
  record ctx
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"controller\"}}"
    ctrl_tid;
  let pe_tid pe = if pe >= 0 && pe < n then pe else ctrl_tid in
  List.iter
    (fun { Event.step = ts; seq; kind } ->
      let seq_arg = Printf.sprintf "\"seq\":%d" seq in
      match kind with
      | Event.Execute { kind; pe; vid; lin } ->
        instant ctx ~name:(Event.task_kind_name kind) ~tid:(pe_tid pe) ~ts
          ~args:(Printf.sprintf "\"vid\":%d,\"lin\":%d,%s" vid lin seq_arg)
      | Event.Send { kind; pe; vid; arrival; remote; lin } ->
        instant ctx
          ~name:("send:" ^ Event.task_kind_name kind)
          ~tid:(pe_tid pe) ~ts
          ~args:
            (Printf.sprintf "\"vid\":%d,\"arrival\":%d,\"remote\":%d,\"lin\":%d,%s" vid
               arrival
               (if remote then 1 else 0)
               lin seq_arg)
      | Event.Deliver { kind; pe; vid; lin } ->
        instant ctx
          ~name:("deliver:" ^ Event.task_kind_name kind)
          ~tid:(pe_tid pe) ~ts
          ~args:(Printf.sprintf "\"vid\":%d,\"lin\":%d,%s" vid lin seq_arg)
      | Event.Purge { pe; count } ->
        instant ctx ~name:"purge" ~tid:(pe_tid pe) ~ts
          ~args:(Printf.sprintf "\"count\":%d,%s" count seq_arg)
      | Event.Phase { phase; cycle; wave = _ } ->
        close_phase ctx ~mark_tid ~ts;
        ctx.open_phase <- Some (phase, ts, cycle)
      | Event.Pause { steps; reason } ->
        span ctx
          ~name:("pause:" ^ Event.pause_reason_name reason)
          ~tid:ctrl_tid ~ts ~dur:(Int.max 1 steps) ~args:seq_arg
      | Event.Heap_pressure { headroom } ->
        instant ctx ~name:"heap_pressure" ~tid:ctrl_tid ~ts
          ~args:(Printf.sprintf "\"headroom\":%d,%s" headroom seq_arg)
      | Event.Alloc_stall { vid } ->
        instant ctx ~name:"alloc_stall" ~tid:ctrl_tid ~ts
          ~args:(Printf.sprintf "\"vid\":%d,%s" vid seq_arg)
      | Event.Expand { vid; entry } ->
        instant ctx ~name:"expand" ~tid:ctrl_tid ~ts
          ~args:(Printf.sprintf "\"vid\":%d,\"entry\":%d,%s" vid entry seq_arg)
      | Event.Coop_spawn { pe; parent; child } ->
        instant ctx ~name:"coop_spawn" ~tid:(pe_tid pe) ~ts
          ~args:(Printf.sprintf "\"parent\":%d,\"child\":%d,%s" parent child seq_arg)
      | Event.Coop_closure { pe; from_; marked } ->
        instant ctx ~name:"coop_closure" ~tid:(pe_tid pe) ~ts
          ~args:(Printf.sprintf "\"from\":%d,\"marked\":%d,%s" from_ marked seq_arg)
      | Event.Deadlock { vids } ->
        instant ctx ~name:"deadlock" ~tid:mark_tid ~ts
          ~args:
            (Printf.sprintf "\"count\":%d,\"vids\":\"%s\",%s" (List.length vids)
               (String.concat " " (List.map string_of_int vids))
               seq_arg)
      | Event.Irrelevant { purged } ->
        instant ctx ~name:"irrelevant" ~tid:mark_tid ~ts
          ~args:(Printf.sprintf "\"purged\":%d,%s" purged seq_arg)
      | Event.Cycle_done { cycle; garbage } ->
        instant ctx ~name:"cycle_done" ~tid:mark_tid ~ts
          ~args:(Printf.sprintf "\"cycle\":%d,\"garbage\":%d,%s" cycle garbage seq_arg)
      | Event.Drop { kind; pe; vid } ->
        instant ctx
          ~name:("drop:" ^ Event.task_kind_name kind)
          ~tid:(pe_tid pe) ~ts
          ~args:(Printf.sprintf "\"vid\":%d,%s" vid seq_arg)
      | Event.Dup { kind; pe; vid } ->
        instant ctx
          ~name:("dup:" ^ Event.task_kind_name kind)
          ~tid:(pe_tid pe) ~ts
          ~args:(Printf.sprintf "\"vid\":%d,%s" vid seq_arg)
      | Event.Retransmit { kind; pe; vid; attempt } ->
        instant ctx
          ~name:("retransmit:" ^ Event.task_kind_name kind)
          ~tid:(pe_tid pe) ~ts
          ~args:(Printf.sprintf "\"vid\":%d,\"attempt\":%d,%s" vid attempt seq_arg)
      | Event.Stall { pe; steps } ->
        span ctx ~name:"stall" ~tid:(pe_tid pe) ~ts ~dur:(Int.max 1 steps) ~args:seq_arg
      | Event.Batch { src; dst; count } ->
        instant ctx ~name:"batch" ~tid:(pe_tid dst) ~ts
          ~args:(Printf.sprintf "\"src\":%d,\"tasks\":%d,%s" src count seq_arg)
      | Event.Cum_ack { src; dst; upto; piggyback } ->
        instant ctx ~name:"cum_ack" ~tid:(pe_tid dst) ~ts
          ~args:
            (Printf.sprintf "\"src\":%d,\"upto\":%d,\"piggyback\":%d,%s" src upto
               (if piggyback then 1 else 0)
               seq_arg)
      | Event.Coalesce { pe; vid } ->
        instant ctx ~name:"coalesce" ~tid:(pe_tid pe) ~ts
          ~args:(Printf.sprintf "\"vid\":%d,%s" vid seq_arg)
      | Event.Pe_crash { pe; lost; down } ->
        (* the downtime as a span on the PE's own track *)
        span ctx ~name:"pe_crash" ~tid:(pe_tid pe) ~ts ~dur:(Int.max 1 down)
          ~args:(Printf.sprintf "\"lost\":%d,\"down\":%d,%s" lost down seq_arg)
      | Event.Pe_recover { pe; down } ->
        instant ctx ~name:"pe_recover" ~tid:(pe_tid pe) ~ts
          ~args:(Printf.sprintf "\"down\":%d,%s" down seq_arg)
      | Event.Health { health; value } ->
        instant ctx
          ~name:("health:" ^ Event.health_name health)
          ~tid:ctrl_tid ~ts
          ~args:(Printf.sprintf "\"value\":%d,%s" value seq_arg)
      | Event.Finished -> instant ctx ~name:"finished" ~tid:ctrl_tid ~ts ~args:seq_arg)
    (Recorder.events r);
  close_phase ctx ~mark_tid ~ts:(Recorder.now r);
  let counter name ts args =
    record ctx "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"ts\":%d,\"args\":{%s}}" name ts args
  in
  let per_pe a =
    String.concat ","
      (List.init (Array.length a) (fun i -> Printf.sprintf "\"pe%d\":%d" i a.(i)))
  in
  List.iter
    (fun (s : Recorder.sample) ->
      counter "pool_depth" s.Recorder.s_step (per_pe s.Recorder.s_pool_depth);
      counter "exec_marking" s.Recorder.s_step (per_pe s.Recorder.s_marking);
      counter "exec_reduction" s.Recorder.s_step (per_pe s.Recorder.s_reduction);
      counter "heap" s.Recorder.s_step
        (Printf.sprintf "\"live\":%d,\"headroom\":%d" s.Recorder.s_live
           s.Recorder.s_headroom);
      counter "in_flight" s.Recorder.s_step
        (Printf.sprintf "\"msgs\":%d" s.Recorder.s_in_flight);
      counter "faults" s.Recorder.s_step
        (Printf.sprintf "\"drops\":%d,\"dups\":%d,\"retransmits\":%d,\"stalls\":%d"
           s.Recorder.s_drops s.Recorder.s_dups s.Recorder.s_retransmits
           s.Recorder.s_stalls);
      counter "transport" s.Recorder.s_step
        (Printf.sprintf
           "\"frames\":%d,\"batched_tasks\":%d,\"acks_piggybacked\":%d,\"coalesced\":%d"
           s.Recorder.s_frames s.Recorder.s_batched_tasks
           s.Recorder.s_acks_piggybacked s.Recorder.s_coalesced))
    (Recorder.samples r);
  Buffer.add_string ctx.b "\n]}\n";
  Buffer.contents ctx.b

let timeseries_csv r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "step,pe,pool_depth,marking,reduction,live,in_flight,headroom,drops,dups,retransmits,stalls,frames,batched_tasks,acks_piggybacked,coalesced\n";
  List.iter
    (fun (s : Recorder.sample) ->
      Array.iteri
        (fun pe depth ->
          bpf b "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n" s.Recorder.s_step
            pe depth s.Recorder.s_marking.(pe) s.Recorder.s_reduction.(pe)
            s.Recorder.s_live s.Recorder.s_in_flight s.Recorder.s_headroom
            s.Recorder.s_drops s.Recorder.s_dups s.Recorder.s_retransmits
            s.Recorder.s_stalls s.Recorder.s_frames s.Recorder.s_batched_tasks
            s.Recorder.s_acks_piggybacked s.Recorder.s_coalesced)
        s.Recorder.s_pool_depth)
    (Recorder.samples r);
  Buffer.contents b

let timeseries_json r =
  let b = Buffer.create 4096 in
  bpf b "{\"sample_every\":%d,\"num_pes\":%d,\"samples\":[\n" (Recorder.sample_every r)
    (Recorder.num_pes r);
  let ints a =
    String.concat "," (List.init (Array.length a) (fun i -> string_of_int a.(i)))
  in
  let first = ref true in
  List.iter
    (fun (s : Recorder.sample) ->
      if !first then first := false else Buffer.add_string b ",\n";
      bpf b
        "  {\"step\":%d,\"live\":%d,\"in_flight\":%d,\"headroom\":%d,\"pool_depth\":[%s],\"marking\":[%s],\"reduction\":[%s],\"drops\":%d,\"dups\":%d,\"retransmits\":%d,\"stalls\":%d,\"frames\":%d,\"batched_tasks\":%d,\"acks_piggybacked\":%d,\"coalesced\":%d}"
        s.Recorder.s_step s.Recorder.s_live s.Recorder.s_in_flight s.Recorder.s_headroom
        (ints s.Recorder.s_pool_depth) (ints s.Recorder.s_marking)
        (ints s.Recorder.s_reduction) s.Recorder.s_drops s.Recorder.s_dups
        s.Recorder.s_retransmits s.Recorder.s_stalls s.Recorder.s_frames
        s.Recorder.s_batched_tasks s.Recorder.s_acks_piggybacked
        s.Recorder.s_coalesced)
    (Recorder.samples r);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_file path contents =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)
