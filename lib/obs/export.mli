(** Trace exporters.

    All output is built from integers with a fixed field order, so a given
    recorder state always serializes to the same bytes — the determinism
    the trace tests and the bench harness rely on.

    {!chrome_trace} emits Chrome trace-event JSON (the format Perfetto and
    [chrome://tracing] load): one thread track per PE for task-level
    instants, one "marking" track carrying the M_T/M_R/restructure phase
    spans and cycle verdicts, one "controller" track for pauses,
    allocation events and watchdog verdicts, and counter tracks for the
    sampled time series (pool depth, live vertices, messages in flight,
    per-PE throughput, fault-plane activity, and transport batching:
    frames, batched tasks, piggybacked acks, coalesced marks). *)

val chrome_trace : Recorder.t -> string

val timeseries_csv : Recorder.t -> string
(** Long-form CSV: one row per (sample, PE), global columns repeated —
    [step,pe,pool_depth,marking,reduction,live,in_flight,headroom,
    drops,dups,retransmits,stalls,frames,batched_tasks,
    acks_piggybacked,coalesced]. *)

val timeseries_json : Recorder.t -> string

val write_file : string -> string -> unit
(** [write_file path contents] — tiny helper shared by the CLI and the
    harness. *)
