(** Causal task lineage: ticket store for per-task latency.

    A *lineage* is minted per injection and identifies the causal tree
    a task belongs to; a *ticket* (the [int] "stamp" threaded through
    {!Dgr_sim} — network batches, pools, execution) is a recycled slot
    recording that task's lineage, causal depth, and the send / ideal
    arrival / actual delivery steps. Only reduction tasks are
    ticketed; marking tasks travel with stamp [-1] (the transport may
    coalesce them away, which would leak tickets).

    Slots recycle LIFO, so ticket ids are a pure function of the
    open/close order — deterministic per (config, seed) and identical
    at any domain count. All reads are plain array loads and safe from
    worker domains; {!open_ticket}, {!close} and {!drop} mutate and
    must only run on the serial (barrier) side. *)

type t

val create : unit -> t

(** [new_lineage t ~now] mints a fresh lineage id, recording [now] as
    its injection step. Ids are dense from 0. *)
val new_lineage : t -> now:int -> int

(** [open_ticket t ~lin ~depth ~sent ~arrival] allocates a ticket for
    one in-flight task: lineage [lin] (or [-1] for untracked sends),
    causal [depth] in hops from injection, the step the task was
    [sent], and its ideal (fault-free) [arrival] step. *)
val open_ticket : t -> lin:int -> depth:int -> sent:int -> arrival:int -> int

(** Records the step the ticketed task was actually delivered into a
    pool — later than its ideal arrival when retransmits intervened. *)
val deliver : t -> int -> now:int -> unit

val lin_of : t -> int -> int
val depth_of : t -> int -> int
val sent_of : t -> int -> int
val arrival_of : t -> int -> int

(** Actual delivery step; falls back to the ideal arrival for tickets
    executed without an observed delivery. *)
val delivered_of : t -> int -> int

(** [close t stamp ~now] retires a ticket at execution: folds it into
    its lineage's aggregates (last execution step, task count, max
    depth) and recycles the slot. *)
val close : t -> int -> now:int -> unit

(** [close_many t slots ~len ~now] closes [slots.(0..len-1)] in order —
    one bulk call per shard at the step barrier, byte-equivalent to
    [len] successive {!close} calls (same aggregates, same LIFO slot
    recycling order). *)
val close_many : t -> int array -> len:int -> now:int -> unit

(** [drop t stamp] retires a ticket whose task was purged in flight,
    without touching lineage aggregates. *)
val drop : t -> int -> unit

val lineages : t -> int
val in_flight : t -> int
val closed : t -> int
val dropped : t -> int

(** Iterate per-lineage aggregates in lineage-id order: injection
    step, last execution step, tasks completed, max causal depth. *)
val iter_lineages :
  t ->
  (lin:int -> injected:int -> last:int -> tasks:int -> depth:int -> unit) ->
  unit
