(** Structured trace events.

    One event is one thing the machine did, stamped with the simulation
    step it happened at and a monotonically increasing sequence number
    (assigned by the {!Recorder}, which is also what disambiguates events
    within a step). Vertex and PE identities are carried as plain [int]s
    so this library depends on nothing — the simulator maps its own types
    down when emitting ({!Dgr_task.Task.obs_kind}). [-1] stands for "the
    controller" wherever a PE is expected and for "no vertex" wherever a
    vid is expected. *)

type task_kind = Request | Respond | Cancel | Mark | Return_mark

type phase = Idle | Mark_tasks | Mark_root | Restructure
(** Marking-cycle phases as the trace sees them: the controller's
    [Idle → M_T → M_R] state machine plus the synchronous restructure
    stop that closes a cycle. *)

type pause_reason = Restructure_pause | Stw_pause

type health = Mark_wave_stall | Quiescence_stall | Retransmit_storm
(** Watchdog verdicts: the mark wave stopped advancing while a cycle
    is active, the machine stopped retiring tasks while work remains,
    or retransmissions crossed the storm threshold within a window. *)

type kind =
  | Send of {
      kind : task_kind;
      pe : int;
      vid : int;
      arrival : int;
      remote : bool;
      lin : int;
    }
      (** a task entered the network, to arrive at [pe] at step
          [arrival]; [lin] is its causal lineage id ([-1]: untracked) *)
  | Deliver of { kind : task_kind; pe : int; vid : int; lin : int }
      (** the network handed a task to [pe]'s pool *)
  | Execute of { kind : task_kind; pe : int; vid : int; lin : int }
      (** [pe] executed a task addressed at [vid] *)
  | Purge of { pe : int; count : int }
      (** [count] tasks expunged from [pe]'s pool ([-1]: network/parked) *)
  | Phase of { phase : phase; cycle : int; wave : int }
      (** the marking controller entered [phase] of cycle number [cycle];
          [wave] is the graph's current wave counter (the epoch tag the
          phase's mark tasks carry), so overlapping-epoch debris in a
          trace can be attributed to the wave that spawned it *)
  | Pause of { steps : int; reason : pause_reason }
      (** the whole machine stops executing for [steps] steps *)
  | Heap_pressure of { headroom : int }
      (** a collection was triggered early by a low free list *)
  | Alloc_stall of { vid : int }
      (** an expansion of [vid] parked: the free list could not supply it *)
  | Expand of { vid : int; entry : int }
      (** [vid] was expanded by template instantiation rooted at [entry] *)
  | Coop_spawn of { pe : int; parent : int; child : int }
      (** the mutator charged a cooperation mark task to [parent] *)
  | Coop_closure of { pe : int; from_ : int; marked : int }
      (** the mutator synchronously marked [marked] vertices from [from_] *)
  | Deadlock of { vids : int list }  (** restructure's DL' verdict *)
  | Irrelevant of { purged : int }
      (** irrelevant tasks expunged by restructure *)
  | Cycle_done of { cycle : int; garbage : int }
  | Drop of { kind : task_kind; pe : int; vid : int }
      (** the fault plane lost a frame bound for [pe] in transit *)
  | Dup of { kind : task_kind; pe : int; vid : int }
      (** the fault plane duplicated a frame bound for [pe] *)
  | Retransmit of { kind : task_kind; pe : int; vid : int; attempt : int }
      (** an unacknowledged frame timed out and was sent again *)
  | Stall of { pe : int; steps : int }
      (** [pe] stops executing for [steps] steps (pool and heap survive) *)
  | Batch of { src : int; dst : int; count : int }
      (** a data frame carrying [count] tasks flushed onto link
          [src]→[dst] *)
  | Cum_ack of { src : int; dst : int; upto : int; piggyback : bool }
      (** the receiver on data link [src]→[dst] acknowledged every frame
          up to sequence [upto], riding a reverse data frame when
          [piggyback] *)
  | Coalesce of { pe : int; vid : int }
      (** a mark task bound for [vid] at [pe] was absorbed by an
          identical mark staged in the same batch *)
  | Pe_crash of { pe : int; lost : int; down : int }
      (** [pe] crashed: its pool, striped segment and in-flight frames
          are gone ([lost] tasks destroyed); it stays down [down] steps *)
  | Pe_recover of { pe : int; down : int }
      (** [pe] came back up empty-handed after [down] steps of downtime *)
  | Health of { health : health; value : int }
      (** a watchdog fired; [value] is the stalled-step count or the
          retransmit count inside the storm window *)
  | Finished  (** the root's value arrived *)

type t = { step : int; seq : int; kind : kind }

val task_kind_name : task_kind -> string

val phase_name : phase -> string

val pause_reason_name : pause_reason -> string

val health_name : health -> string

val pp : Format.formatter -> t -> unit
