(** Zero-allocation log-bucketed latency histogram (HDR-style).

    Integer samples land in a fixed 1024-slot bucket array: values
    0..15 are exact, and each power-of-two range above is split into
    16 sub-buckets, bounding relative error by 1/16 at any magnitude.
    [add] allocates nothing, so histograms can sit on the simulator
    hot path; [absorb] merges a shard's histogram into another (and
    clears the source), which is associative and order-independent, so
    per-domain histograms merge to the same totals at any shard
    count. *)

type t

val create : unit -> t

val clear : t -> unit

(** [add t v] records one sample. Negative values clamp to 0. *)
val add : t -> int -> unit

val count : t -> int

val max_value : t -> int

(** Mean of all recorded samples ([0.0] when empty). *)
val mean : t -> float

(** [percentile t p] is the nearest-rank percentile for [p] in
    [0..100]: the bucket lower bound of the sample at rank
    [ceil (p/100 * count)] — exact for values below 32, within 1/16
    above, and never exceeding [max_value t]. [0] when empty. *)
val percentile : t -> float -> int

(** [absorb ~into src] adds every nonzero bucket of [src] into [into]
    and clears [src] — O(buckets actually touched), not O(array size):
    both sides track their dirty bucket set, so per-shard sinks merge
    and re-zero at the step barrier in time proportional to the step's
    samples. Merging is associative: any grouping of shard histograms
    yields identical totals and percentiles. *)
val absorb : into:t -> t -> unit

(** One-line JSON object: count, mean and p50/p90/p99/p999/max.
    Byte-deterministic for identical contents. *)
val to_json : t -> string

(**/**)

(* Exposed for tests: the bucket mapping. *)
val index_of : int -> int
val value_of : int -> int
