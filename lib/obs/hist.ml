(* Zero-allocation log-bucketed histogram (HDR-style).

   Values 0..15 land in their own bucket, so small-sample percentiles
   are exact. From 16 up, each power-of-two range is split into 16
   sub-buckets: for v with most-significant bit k (k >= 4) the bucket
   index is [(k-4)*16 + (v lsr (k-4))], keeping relative error below
   1/16 at any magnitude. 62-bit values top out below index 960, so a
   fixed 1024-slot array covers the whole int range with no resizing
   and no allocation on the add path. *)

let buckets = 1024

(* [dirty] lists the indices of the nonzero buckets ([n_dirty] of them,
   unordered). A histogram used as a per-shard sink is filled with a
   handful of samples and drained at every step barrier, so [absorb] and
   [clear] walk the dirty list instead of all 1024 slots — the barrier
   pays for the buckets actually touched, not the array size. *)
type t = {
  counts : int array;
  dirty : int array;
  mutable n_dirty : int;
  mutable count : int;
  mutable total : int;
  mutable max : int;
}

let create () =
  {
    counts = Array.make buckets 0;
    dirty = Array.make buckets 0;
    n_dirty = 0;
    count = 0;
    total = 0;
    max = 0;
  }

let clear t =
  for k = 0 to t.n_dirty - 1 do
    t.counts.(t.dirty.(k)) <- 0
  done;
  t.n_dirty <- 0;
  t.count <- 0;
  t.total <- 0;
  t.max <- 0

(* Most-significant-bit position of [v > 0]. *)
let msb v =
  let rec go v k = if v <= 1 then k else go (v lsr 1) (k + 1) in
  go v 0

let index_of v =
  if v < 16 then v
  else
    let k = msb v in
    ((k - 4) * 16) + (v lsr (k - 4))

(* Lower bound of bucket [i] — the smallest value mapping to it. *)
let value_of i =
  if i < 16 then i
  else
    let shift = (i / 16) - 1 in
    (i - (shift * 16)) lsl shift

let add t v =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  if t.counts.(i) = 0 then begin
    t.dirty.(t.n_dirty) <- i;
    t.n_dirty <- t.n_dirty + 1
  end;
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.total <- t.total + v;
  if v > t.max then t.max <- v

let count t = t.count
let max_value t = t.max
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

(* Nearest-rank percentile: the bucket lower bound of the value at rank
   [ceil (p/100 * count)]. Exact below 32; within 1/16 above. *)
let percentile t p =
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else if rank > t.count then t.count else rank in
    let acc = ref 0 and hit = ref (-1) and i = ref 0 in
    while !hit < 0 && !i < buckets do
      acc := !acc + t.counts.(!i);
      if !acc >= rank then hit := !i;
      incr i
    done;
    let v = value_of (if !hit < 0 then buckets - 1 else !hit) in
    if v > t.max then t.max else v
  end

let absorb ~into src =
  (* O(dirty): only the buckets [src] actually touched are merged and
     re-zeroed, and [into]'s dirty list absorbs any index it did not
     already hold. Bucket totals are order-independent sums and the
     dirty list's order never feeds a percentile walk (those scan by
     index), so the merge stays associative. *)
  if src.count > 0 then begin
    for k = 0 to src.n_dirty - 1 do
      let i = src.dirty.(k) in
      if into.counts.(i) = 0 then begin
        into.dirty.(into.n_dirty) <- i;
        into.n_dirty <- into.n_dirty + 1
      end;
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done;
    into.count <- into.count + src.count;
    into.total <- into.total + src.total;
    if src.max > into.max then into.max <- src.max;
    clear src
  end

let to_json t =
  Printf.sprintf
    "{\"count\":%d,\"mean\":%.2f,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"p999\":%d,\"max\":%d}"
    t.count (mean t) (percentile t 50.0) (percentile t 90.0) (percentile t 99.0)
    (percentile t 99.9) t.max
