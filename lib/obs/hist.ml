(* Zero-allocation log-bucketed histogram (HDR-style).

   Values 0..15 land in their own bucket, so small-sample percentiles
   are exact. From 16 up, each power-of-two range is split into 16
   sub-buckets: for v with most-significant bit k (k >= 4) the bucket
   index is [(k-4)*16 + (v lsr (k-4))], keeping relative error below
   1/16 at any magnitude. 62-bit values top out below index 960, so a
   fixed 1024-slot array covers the whole int range with no resizing
   and no allocation on the add path. *)

let buckets = 1024

type t = {
  counts : int array;
  mutable count : int;
  mutable total : int;
  mutable max : int;
}

let create () = { counts = Array.make buckets 0; count = 0; total = 0; max = 0 }

let clear t =
  Array.fill t.counts 0 buckets 0;
  t.count <- 0;
  t.total <- 0;
  t.max <- 0

(* Most-significant-bit position of [v > 0]. *)
let msb v =
  let rec go v k = if v <= 1 then k else go (v lsr 1) (k + 1) in
  go v 0

let index_of v =
  if v < 16 then v
  else
    let k = msb v in
    ((k - 4) * 16) + (v lsr (k - 4))

(* Lower bound of bucket [i] — the smallest value mapping to it. *)
let value_of i =
  if i < 16 then i
  else
    let shift = (i / 16) - 1 in
    (i - (shift * 16)) lsl shift

let add t v =
  let v = if v < 0 then 0 else v in
  t.counts.(index_of v) <- t.counts.(index_of v) + 1;
  t.count <- t.count + 1;
  t.total <- t.total + v;
  if v > t.max then t.max <- v

let count t = t.count
let max_value t = t.max
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

(* Nearest-rank percentile: the bucket lower bound of the value at rank
   [ceil (p/100 * count)]. Exact below 32; within 1/16 above. *)
let percentile t p =
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else if rank > t.count then t.count else rank in
    let acc = ref 0 and hit = ref (-1) and i = ref 0 in
    while !hit < 0 && !i < buckets do
      acc := !acc + t.counts.(!i);
      if !acc >= rank then hit := !i;
      incr i
    done;
    let v = value_of (if !hit < 0 then buckets - 1 else !hit) in
    if v > t.max then t.max else v
  end

let absorb ~into src =
  (* [count = 0] implies every bucket is zero: skip the 2x1024-slot walk.
     The per-PE latency sinks are empty on most steps (only reduction
     tasks are ticketed), and the engine absorbs them at every barrier. *)
  if src.count > 0 then begin
    for i = 0 to buckets - 1 do
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done;
    into.count <- into.count + src.count;
    into.total <- into.total + src.total;
    if src.max > into.max then into.max <- src.max;
    clear src
  end

let to_json t =
  Printf.sprintf
    "{\"count\":%d,\"mean\":%.2f,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"p999\":%d,\"max\":%d}"
    t.count (mean t) (percentile t 50.0) (percentile t 90.0) (percentile t 99.0)
    (percentile t 99.9) t.max
