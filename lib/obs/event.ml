type task_kind = Request | Respond | Cancel | Mark | Return_mark

type phase = Idle | Mark_tasks | Mark_root | Restructure

type pause_reason = Restructure_pause | Stw_pause

type health = Mark_wave_stall | Quiescence_stall | Retransmit_storm

type kind =
  | Send of {
      kind : task_kind;
      pe : int;
      vid : int;
      arrival : int;
      remote : bool;
      lin : int;
    }
  | Deliver of { kind : task_kind; pe : int; vid : int; lin : int }
  | Execute of { kind : task_kind; pe : int; vid : int; lin : int }
  | Purge of { pe : int; count : int }
  | Phase of { phase : phase; cycle : int; wave : int }
  | Pause of { steps : int; reason : pause_reason }
  | Heap_pressure of { headroom : int }
  | Alloc_stall of { vid : int }
  | Expand of { vid : int; entry : int }
  | Coop_spawn of { pe : int; parent : int; child : int }
  | Coop_closure of { pe : int; from_ : int; marked : int }
  | Deadlock of { vids : int list }
  | Irrelevant of { purged : int }
  | Cycle_done of { cycle : int; garbage : int }
  | Drop of { kind : task_kind; pe : int; vid : int }
  | Dup of { kind : task_kind; pe : int; vid : int }
  | Retransmit of { kind : task_kind; pe : int; vid : int; attempt : int }
  | Stall of { pe : int; steps : int }
  | Batch of { src : int; dst : int; count : int }
  | Cum_ack of { src : int; dst : int; upto : int; piggyback : bool }
  | Coalesce of { pe : int; vid : int }
  | Pe_crash of { pe : int; lost : int; down : int }
  | Pe_recover of { pe : int; down : int }
  | Health of { health : health; value : int }
  | Finished

type t = { step : int; seq : int; kind : kind }

let task_kind_name = function
  | Request -> "request"
  | Respond -> "respond"
  | Cancel -> "cancel"
  | Mark -> "mark"
  | Return_mark -> "return"

let phase_name = function
  | Idle -> "idle"
  | Mark_tasks -> "M_T"
  | Mark_root -> "M_R"
  | Restructure -> "restructure"

let pause_reason_name = function
  | Restructure_pause -> "restructure"
  | Stw_pause -> "stw"

let health_name = function
  | Mark_wave_stall -> "mark_wave_stall"
  | Quiescence_stall -> "quiescence_stall"
  | Retransmit_storm -> "retransmit_storm"

let pp_kind fmt = function
  | Send { kind; pe; vid; arrival; remote; lin } ->
    Format.fprintf fmt "send %s pe=%d vid=%d arrival=%d lin=%d%s" (task_kind_name kind)
      pe vid arrival lin
      (if remote then " remote" else "")
  | Deliver { kind; pe; vid; lin } ->
    Format.fprintf fmt "deliver %s pe=%d vid=%d lin=%d" (task_kind_name kind) pe vid lin
  | Execute { kind; pe; vid; lin } ->
    Format.fprintf fmt "execute %s pe=%d vid=%d lin=%d" (task_kind_name kind) pe vid lin
  | Purge { pe; count } -> Format.fprintf fmt "purge pe=%d count=%d" pe count
  | Phase { phase; cycle; wave } ->
    Format.fprintf fmt "phase %s cycle=%d wave=%d" (phase_name phase) cycle wave
  | Pause { steps; reason } ->
    Format.fprintf fmt "pause %d (%s)" steps (pause_reason_name reason)
  | Heap_pressure { headroom } -> Format.fprintf fmt "heap-pressure headroom=%d" headroom
  | Alloc_stall { vid } -> Format.fprintf fmt "alloc-stall vid=%d" vid
  | Expand { vid; entry } -> Format.fprintf fmt "expand vid=%d entry=%d" vid entry
  | Coop_spawn { pe; parent; child } ->
    Format.fprintf fmt "coop-spawn pe=%d parent=%d child=%d" pe parent child
  | Coop_closure { pe; from_; marked } ->
    Format.fprintf fmt "coop-closure pe=%d from=%d marked=%d" pe from_ marked
  | Deadlock { vids } ->
    Format.fprintf fmt "deadlock [%s]" (String.concat " " (List.map string_of_int vids))
  | Irrelevant { purged } -> Format.fprintf fmt "irrelevant purged=%d" purged
  | Cycle_done { cycle; garbage } ->
    Format.fprintf fmt "cycle-done cycle=%d garbage=%d" cycle garbage
  | Drop { kind; pe; vid } ->
    Format.fprintf fmt "drop %s pe=%d vid=%d" (task_kind_name kind) pe vid
  | Dup { kind; pe; vid } ->
    Format.fprintf fmt "dup %s pe=%d vid=%d" (task_kind_name kind) pe vid
  | Retransmit { kind; pe; vid; attempt } ->
    Format.fprintf fmt "retransmit %s pe=%d vid=%d attempt=%d" (task_kind_name kind) pe vid
      attempt
  | Stall { pe; steps } -> Format.fprintf fmt "stall pe=%d steps=%d" pe steps
  | Batch { src; dst; count } ->
    Format.fprintf fmt "batch link=%d->%d tasks=%d" src dst count
  | Cum_ack { src; dst; upto; piggyback } ->
    Format.fprintf fmt "cum-ack link=%d->%d upto=%d%s" src dst upto
      (if piggyback then " piggyback" else "")
  | Coalesce { pe; vid } -> Format.fprintf fmt "coalesce pe=%d vid=%d" pe vid
  | Pe_crash { pe; lost; down } ->
    Format.fprintf fmt "pe-crash pe=%d lost=%d down=%d" pe lost down
  | Pe_recover { pe; down } -> Format.fprintf fmt "pe-recover pe=%d down=%d" pe down
  | Health { health; value } ->
    Format.fprintf fmt "health %s value=%d" (health_name health) value
  | Finished -> Format.pp_print_string fmt "finished"

let pp fmt t = Format.fprintf fmt "@[[%d.%d] %a@]" t.step t.seq pp_kind t.kind
