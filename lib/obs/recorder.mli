(** The event recorder: a fixed-capacity ring buffer plus a per-PE
    time-series sampler.

    The recorder is designed to be threaded through the machine as a
    nullable hook: every instrumentation site is
    [match recorder with None -> () | Some r -> Recorder.emit r ...], so
    the disabled path costs one branch. Emitting appends into a
    pre-allocated ring — when full, the oldest events are overwritten and
    counted in {!dropped} (the time series is never dropped).

    The recorder carries the simulation clock: the engine calls
    {!set_now} once per step and every emitter inherits that stamp, so
    deep modules (mutator, reducer, network) need no clock plumbing. All
    stamps and sequence numbers are deterministic functions of the
    machine's execution, which is what makes exports byte-reproducible
    for a fixed config + seed. *)

type sample = {
  s_step : int;
  s_live : int;  (** live vertices (global) *)
  s_in_flight : int;  (** messages in the network *)
  s_headroom : int;  (** free-list headroom; [-1] = unbounded heap *)
  s_pool_depth : int array;  (** per PE *)
  s_marking : int array;  (** marking tasks executed per PE since last sample *)
  s_reduction : int array;  (** reduction tasks executed per PE since last sample *)
  s_drops : int;  (** frames lost by the fault plane since last sample *)
  s_dups : int;  (** frames duplicated since last sample *)
  s_retransmits : int;  (** retransmissions fired since last sample *)
  s_stalls : int;  (** PE stalls begun since last sample *)
  s_frames : int;  (** data frames flushed onto links since last sample *)
  s_batched_tasks : int;  (** tasks carried by those frames *)
  s_acks_piggybacked : int;  (** cumulative acks that rode a data frame *)
  s_coalesced : int;  (** mark tasks absorbed in-batch since last sample *)
}

type t

val create : ?capacity:int -> ?sample_every:int -> num_pes:int -> unit -> t
(** [capacity] (default 65536, min 1) bounds the event ring;
    [sample_every] (default 0 = sampling off) is the time-series period in
    steps. *)

val set_now : t -> int -> unit

val now : t -> int

val num_pes : t -> int

val sample_every : t -> int

val emit : t -> Event.kind -> unit
(** Append an event stamped [(now, seq)]; [seq] increases by 1 per emit
    for the lifetime of the recorder (never resets on wraparound). *)

val length : t -> int
(** Events currently held (≤ capacity). *)

val capacity : t -> int

val emitted : t -> int
(** Total events ever emitted. *)

val dropped : t -> int
(** Events overwritten by ring wraparound ([emitted - length]). *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val tick : t -> live:int -> in_flight:int -> headroom:int -> pool_depth:int array -> unit
(** Called by the engine once per step (after execution); takes a sample
    when [now] lands on the sampling period. Per-PE throughput columns are
    the [Execute] events seen since the previous sample. *)

val samples : t -> sample list
(** Oldest first. *)

val drain_into : src:t -> dst:t -> unit
(** Re-emit every event buffered in [src] into [dst] (restamping with
    [dst]'s clock and sequence) and reset [src]. The sharded engine
    drains each PE's private sub-recorder at the step barrier in
    ascending PE order, which makes the merged event stream — and every
    export derived from it — independent of domain scheduling. Raises
    [Invalid_argument] if [src]'s ring has wrapped (events would be
    silently missing from the merge). *)

val absorb_chunks : src:t -> dst:t -> unit
(** {!drain_into} without the per-event re-emit: [src]'s buffered events
    are linked into [dst] as one chunk (sharing the event records), its
    emit-time time-series deltas are added in bulk, and [dst]'s sequence
    counter advances by the chunk length. The stable (step, seq) stamps
    each event would have received from {!emit} are recovered at export
    time from the chunk header, so {!events}, {!length}, {!dropped} and
    capacity retention are byte-identical to the {!drain_into} result.
    Raises [Invalid_argument] on a wrapped source or a PE-count
    mismatch. *)
