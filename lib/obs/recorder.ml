type sample = {
  s_step : int;
  s_live : int;
  s_in_flight : int;
  s_headroom : int;
  s_pool_depth : int array;
  s_marking : int array;
  s_reduction : int array;
  s_drops : int;
  s_dups : int;
  s_retransmits : int;
  s_stalls : int;
  s_frames : int;
  s_batched_tasks : int;
  s_acks_piggybacked : int;
  s_coalesced : int;
}

(* A chunk is one sub-recorder's events for one step, linked (not
   re-emitted) into the merged recorder at the barrier. The raw event
   records keep their stale source stamps; the chunk header carries the
   destination clock and the base sequence assigned at absorb time, and
   [events] restamps on the way out. [c_skip] is the evicted prefix, so
   capacity retention stays per-event even at chunk granularity. *)
type chunk = {
  c_step : int;  (* dst clock at absorb: every event's merged step stamp *)
  c_base : int;  (* dst seq of the chunk's first event *)
  c_buf : Event.t array;
  c_len : int;
  mutable c_skip : int;
}

type t = {
  cap : int;
  mutable buf : Event.t array;
  mutable start : int;  (* index of the oldest retained event *)
  mutable len : int;
  mutable seq : int;  (* total events ever emitted *)
  mutable clock : int;
  (* linked chunks, FIFO in [chunk_head, chunk_tail) *)
  mutable chunks : chunk array;
  mutable chunk_head : int;
  mutable chunk_tail : int;
  mutable chunk_events : int;  (* unskipped events across live chunks *)
  pes : int;
  period : int;
  mutable samples_rev : sample list;
  mark_delta : int array;
  red_delta : int array;
  mutable drop_delta : int;
  mutable dup_delta : int;
  mutable retransmit_delta : int;
  mutable stall_delta : int;
  mutable frame_delta : int;
  mutable batched_delta : int;
  mutable piggyback_delta : int;
  mutable coalesce_delta : int;
}

let dummy = { Event.step = 0; seq = -1; kind = Event.Finished }

(* Shared filler for dead chunk slots; never mutated (eviction only
   touches chunks inside [chunk_head, chunk_tail)). *)
let dummy_chunk = { c_step = 0; c_base = -1; c_buf = [||]; c_len = 0; c_skip = 0 }

let create ?(capacity = 65536) ?(sample_every = 0) ~num_pes () =
  let cap = Int.max 1 capacity in
  {
    cap;
    buf = Array.make cap dummy;
    start = 0;
    len = 0;
    seq = 0;
    clock = 0;
    chunks = [||];
    chunk_head = 0;
    chunk_tail = 0;
    chunk_events = 0;
    pes = Int.max 1 num_pes;
    period = sample_every;
    samples_rev = [];
    mark_delta = Array.make (Int.max 1 num_pes) 0;
    red_delta = Array.make (Int.max 1 num_pes) 0;
    drop_delta = 0;
    dup_delta = 0;
    retransmit_delta = 0;
    stall_delta = 0;
    frame_delta = 0;
    batched_delta = 0;
    piggyback_delta = 0;
    coalesce_delta = 0;
  }

let set_now t now = t.clock <- now

let now t = t.clock

let num_pes t = t.pes

let sample_every t = t.period

(* Evict the globally-oldest retained event — the smaller sequence
   number between the ring's head and the head chunk's next live event —
   so retention stays "the last [cap] events emitted" whether events
   live in the ring or in linked chunks. *)
let evict_oldest t =
  let chunk_seq =
    if t.chunk_head < t.chunk_tail then
      let ch = t.chunks.(t.chunk_head) in
      ch.c_base + ch.c_skip
    else max_int
  in
  let ring_seq = if t.len > 0 then t.buf.(t.start).Event.seq else max_int in
  if chunk_seq < ring_seq then begin
    let ch = t.chunks.(t.chunk_head) in
    ch.c_skip <- ch.c_skip + 1;
    t.chunk_events <- t.chunk_events - 1;
    if ch.c_skip = ch.c_len then begin
      t.chunks.(t.chunk_head) <- dummy_chunk;
      t.chunk_head <- t.chunk_head + 1;
      if t.chunk_head = t.chunk_tail then begin
        t.chunk_head <- 0;
        t.chunk_tail <- 0
      end
    end
  end
  else begin
    t.start <- (t.start + 1) mod t.cap;
    t.len <- t.len - 1
  end

let push_chunk t ch =
  if t.chunk_tail = Array.length t.chunks then begin
    let live = t.chunk_tail - t.chunk_head in
    if t.chunk_head > 0 then begin
      Array.blit t.chunks t.chunk_head t.chunks 0 live;
      Array.fill t.chunks live t.chunk_head dummy_chunk;
      t.chunk_head <- 0;
      t.chunk_tail <- live
    end;
    if t.chunk_tail = Array.length t.chunks then
      t.chunks <-
        Array.append t.chunks
          (Array.make (Int.max 16 (Array.length t.chunks)) dummy_chunk)
  end;
  t.chunks.(t.chunk_tail) <- ch;
  t.chunk_tail <- t.chunk_tail + 1

let emit t kind =
  (match kind with
  | Event.Execute { kind = k; pe; _ } when pe >= 0 && pe < t.pes -> (
    match k with
    | Event.Mark | Event.Return_mark -> t.mark_delta.(pe) <- t.mark_delta.(pe) + 1
    | Event.Request | Event.Respond | Event.Cancel ->
      t.red_delta.(pe) <- t.red_delta.(pe) + 1)
  | Event.Drop _ -> t.drop_delta <- t.drop_delta + 1
  | Event.Dup _ -> t.dup_delta <- t.dup_delta + 1
  | Event.Retransmit _ -> t.retransmit_delta <- t.retransmit_delta + 1
  | Event.Stall _ -> t.stall_delta <- t.stall_delta + 1
  | Event.Batch { count; _ } ->
    t.frame_delta <- t.frame_delta + 1;
    t.batched_delta <- t.batched_delta + count
  | Event.Cum_ack { piggyback = true; _ } ->
    t.piggyback_delta <- t.piggyback_delta + 1
  | Event.Coalesce _ -> t.coalesce_delta <- t.coalesce_delta + 1
  | _ -> ());
  let e = { Event.step = t.clock; seq = t.seq; kind } in
  t.seq <- t.seq + 1;
  if t.len + t.chunk_events >= t.cap then evict_oldest t;
  (* [len + chunk_events <= cap] implies the ring has a free slot here:
     if the eviction came out of a chunk, [len < cap] already held. *)
  t.buf.((t.start + t.len) mod t.cap) <- e;
  t.len <- t.len + 1

let length t = t.len + t.chunk_events

let capacity t = t.cap

let emitted t = t.seq

let dropped t = t.seq - length t

(* Merge the ring and the linked chunks by sequence number (both are
   internally ascending and mutually disjoint), restamping chunk events
   with their merged (step, seq) on the way out. *)
let events t =
  let out = ref [] in
  let ri = ref 0 in
  let ci = ref t.chunk_head in
  let coff = ref (if t.chunk_head < t.chunk_tail then t.chunks.(t.chunk_head).c_skip else 0) in
  for _ = 1 to length t do
    let ring_seq =
      if !ri < t.len then t.buf.((t.start + !ri) mod t.cap).Event.seq else max_int
    in
    let chunk_seq =
      if !ci < t.chunk_tail then t.chunks.(!ci).c_base + !coff else max_int
    in
    if chunk_seq < ring_seq then begin
      let ch = t.chunks.(!ci) in
      out :=
        { Event.step = ch.c_step; seq = chunk_seq; kind = ch.c_buf.(!coff).Event.kind }
        :: !out;
      incr coff;
      if !coff = ch.c_len then begin
        incr ci;
        coff := (if !ci < t.chunk_tail then t.chunks.(!ci).c_skip else 0)
      end
    end
    else begin
      out := t.buf.((t.start + !ri) mod t.cap) :: !out;
      incr ri
    end
  done;
  List.rev !out

let tick t ~live ~in_flight ~headroom ~pool_depth =
  if t.period > 0 && t.clock mod t.period = 0 then begin
    let s =
      {
        s_step = t.clock;
        s_live = live;
        s_in_flight = in_flight;
        s_headroom = headroom;
        s_pool_depth = Array.init t.pes (fun i -> if i < Array.length pool_depth then pool_depth.(i) else 0);
        s_marking = Array.copy t.mark_delta;
        s_reduction = Array.copy t.red_delta;
        s_drops = t.drop_delta;
        s_dups = t.dup_delta;
        s_retransmits = t.retransmit_delta;
        s_stalls = t.stall_delta;
        s_frames = t.frame_delta;
        s_batched_tasks = t.batched_delta;
        s_acks_piggybacked = t.piggyback_delta;
        s_coalesced = t.coalesce_delta;
      }
    in
    t.samples_rev <- s :: t.samples_rev;
    Array.fill t.mark_delta 0 t.pes 0;
    Array.fill t.red_delta 0 t.pes 0;
    t.drop_delta <- 0;
    t.dup_delta <- 0;
    t.retransmit_delta <- 0;
    t.stall_delta <- 0;
    t.frame_delta <- 0;
    t.batched_delta <- 0;
    t.piggyback_delta <- 0;
    t.coalesce_delta <- 0
  end

let samples t = List.rev t.samples_rev

(* Replay a sub-recorder's buffered events into [t] and reset it. The
   sharded engine gives each PE a private sub-recorder (so emitting never
   contends across domains) and drains them at the step barrier in
   ascending PE order; re-emitting through [emit] restamps each event
   with [t]'s clock and sequence, so the merged stream is identical to
   what a serial run would have recorded. Raises if [src] has wrapped —
   sub-recorders are sized for one step's events, drained every step. *)
let reset_src src =
  src.start <- 0;
  src.len <- 0;
  src.seq <- 0;
  Array.fill src.mark_delta 0 src.pes 0;
  Array.fill src.red_delta 0 src.pes 0;
  src.drop_delta <- 0;
  src.dup_delta <- 0;
  src.retransmit_delta <- 0;
  src.stall_delta <- 0;
  src.frame_delta <- 0;
  src.batched_delta <- 0;
  src.piggyback_delta <- 0;
  src.coalesce_delta <- 0

let drain_into ~src ~dst =
  if src.seq > src.len then
    invalid_arg "Recorder.drain_into: source ring wrapped; events lost";
  for i = 0 to src.len - 1 do
    emit dst src.buf.((src.start + i) mod src.cap).Event.kind
  done;
  reset_src src

(* The O(1)-per-shard drain: link [src]'s buffer into [dst] as one chunk
   instead of re-emitting event by event. The time-series deltas [src]
   accumulated at emit time are added in bulk (its emit ran the same
   classification the re-emit would have), [dst.seq] advances by the
   chunk length, and the stale per-event stamps are recovered at export
   by [events] from the chunk header — so the merged stream is
   byte-identical to [drain_into]'s. A nearly-full source donates its
   buffer outright and gets a fresh one; small drains (the common case)
   share the event records through [Array.sub], a pointer blit. *)
let absorb_chunks ~src ~dst =
  if src.seq > src.len then
    invalid_arg "Recorder.absorb_chunks: source ring wrapped; events lost";
  if src.pes <> dst.pes then
    invalid_arg "Recorder.absorb_chunks: PE count mismatch";
  let n = src.len in
  if n > 0 then begin
    for pe = 0 to src.pes - 1 do
      dst.mark_delta.(pe) <- dst.mark_delta.(pe) + src.mark_delta.(pe);
      dst.red_delta.(pe) <- dst.red_delta.(pe) + src.red_delta.(pe)
    done;
    dst.drop_delta <- dst.drop_delta + src.drop_delta;
    dst.dup_delta <- dst.dup_delta + src.dup_delta;
    dst.retransmit_delta <- dst.retransmit_delta + src.retransmit_delta;
    dst.stall_delta <- dst.stall_delta + src.stall_delta;
    dst.frame_delta <- dst.frame_delta + src.frame_delta;
    dst.batched_delta <- dst.batched_delta + src.batched_delta;
    dst.piggyback_delta <- dst.piggyback_delta + src.piggyback_delta;
    dst.coalesce_delta <- dst.coalesce_delta + src.coalesce_delta;
    let steal = n * 4 >= src.cap in
    let cbuf = if steal then src.buf else Array.sub src.buf 0 n in
    if steal then src.buf <- Array.make src.cap dummy;
    push_chunk dst { c_step = dst.clock; c_base = dst.seq; c_buf = cbuf; c_len = n; c_skip = 0 };
    dst.seq <- dst.seq + n;
    dst.chunk_events <- dst.chunk_events + n;
    while dst.len + dst.chunk_events > dst.cap do
      evict_oldest dst
    done
  end;
  reset_src src
