type sample = {
  s_step : int;
  s_live : int;
  s_in_flight : int;
  s_headroom : int;
  s_pool_depth : int array;
  s_marking : int array;
  s_reduction : int array;
  s_drops : int;
  s_dups : int;
  s_retransmits : int;
  s_stalls : int;
  s_frames : int;
  s_batched_tasks : int;
  s_acks_piggybacked : int;
  s_coalesced : int;
}

type t = {
  cap : int;
  buf : Event.t array;
  mutable start : int;  (* index of the oldest retained event *)
  mutable len : int;
  mutable seq : int;  (* total events ever emitted *)
  mutable clock : int;
  pes : int;
  period : int;
  mutable samples_rev : sample list;
  mark_delta : int array;
  red_delta : int array;
  mutable drop_delta : int;
  mutable dup_delta : int;
  mutable retransmit_delta : int;
  mutable stall_delta : int;
  mutable frame_delta : int;
  mutable batched_delta : int;
  mutable piggyback_delta : int;
  mutable coalesce_delta : int;
}

let dummy = { Event.step = 0; seq = -1; kind = Event.Finished }

let create ?(capacity = 65536) ?(sample_every = 0) ~num_pes () =
  let cap = Int.max 1 capacity in
  {
    cap;
    buf = Array.make cap dummy;
    start = 0;
    len = 0;
    seq = 0;
    clock = 0;
    pes = Int.max 1 num_pes;
    period = sample_every;
    samples_rev = [];
    mark_delta = Array.make (Int.max 1 num_pes) 0;
    red_delta = Array.make (Int.max 1 num_pes) 0;
    drop_delta = 0;
    dup_delta = 0;
    retransmit_delta = 0;
    stall_delta = 0;
    frame_delta = 0;
    batched_delta = 0;
    piggyback_delta = 0;
    coalesce_delta = 0;
  }

let set_now t now = t.clock <- now

let now t = t.clock

let num_pes t = t.pes

let sample_every t = t.period

let emit t kind =
  (match kind with
  | Event.Execute { kind = k; pe; _ } when pe >= 0 && pe < t.pes -> (
    match k with
    | Event.Mark | Event.Return_mark -> t.mark_delta.(pe) <- t.mark_delta.(pe) + 1
    | Event.Request | Event.Respond | Event.Cancel ->
      t.red_delta.(pe) <- t.red_delta.(pe) + 1)
  | Event.Drop _ -> t.drop_delta <- t.drop_delta + 1
  | Event.Dup _ -> t.dup_delta <- t.dup_delta + 1
  | Event.Retransmit _ -> t.retransmit_delta <- t.retransmit_delta + 1
  | Event.Stall _ -> t.stall_delta <- t.stall_delta + 1
  | Event.Batch { count; _ } ->
    t.frame_delta <- t.frame_delta + 1;
    t.batched_delta <- t.batched_delta + count
  | Event.Cum_ack { piggyback = true; _ } ->
    t.piggyback_delta <- t.piggyback_delta + 1
  | Event.Coalesce _ -> t.coalesce_delta <- t.coalesce_delta + 1
  | _ -> ());
  let e = { Event.step = t.clock; seq = t.seq; kind } in
  t.seq <- t.seq + 1;
  if t.len < t.cap then begin
    t.buf.((t.start + t.len) mod t.cap) <- e;
    t.len <- t.len + 1
  end
  else begin
    (* full: overwrite the oldest slot and advance the window *)
    t.buf.(t.start) <- e;
    t.start <- (t.start + 1) mod t.cap
  end

let length t = t.len

let capacity t = t.cap

let emitted t = t.seq

let dropped t = t.seq - t.len

let events t = List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap))

let tick t ~live ~in_flight ~headroom ~pool_depth =
  if t.period > 0 && t.clock mod t.period = 0 then begin
    let s =
      {
        s_step = t.clock;
        s_live = live;
        s_in_flight = in_flight;
        s_headroom = headroom;
        s_pool_depth = Array.init t.pes (fun i -> if i < Array.length pool_depth then pool_depth.(i) else 0);
        s_marking = Array.copy t.mark_delta;
        s_reduction = Array.copy t.red_delta;
        s_drops = t.drop_delta;
        s_dups = t.dup_delta;
        s_retransmits = t.retransmit_delta;
        s_stalls = t.stall_delta;
        s_frames = t.frame_delta;
        s_batched_tasks = t.batched_delta;
        s_acks_piggybacked = t.piggyback_delta;
        s_coalesced = t.coalesce_delta;
      }
    in
    t.samples_rev <- s :: t.samples_rev;
    Array.fill t.mark_delta 0 t.pes 0;
    Array.fill t.red_delta 0 t.pes 0;
    t.drop_delta <- 0;
    t.dup_delta <- 0;
    t.retransmit_delta <- 0;
    t.stall_delta <- 0;
    t.frame_delta <- 0;
    t.batched_delta <- 0;
    t.piggyback_delta <- 0;
    t.coalesce_delta <- 0
  end

let samples t = List.rev t.samples_rev

(* Replay a sub-recorder's buffered events into [t] and reset it. The
   sharded engine gives each PE a private sub-recorder (so emitting never
   contends across domains) and drains them at the step barrier in
   ascending PE order; re-emitting through [emit] restamps each event
   with [t]'s clock and sequence, so the merged stream is identical to
   what a serial run would have recorded. Raises if [src] has wrapped —
   sub-recorders are sized for one step's events, drained every step. *)
let drain_into ~src ~dst =
  if src.seq > src.len then
    invalid_arg "Recorder.drain_into: source ring wrapped; events lost";
  for i = 0 to src.len - 1 do
    emit dst src.buf.((src.start + i) mod src.cap).Event.kind
  done;
  src.start <- 0;
  src.len <- 0;
  src.seq <- 0;
  Array.fill src.mark_delta 0 src.pes 0;
  Array.fill src.red_delta 0 src.pes 0;
  src.drop_delta <- 0;
  src.dup_delta <- 0;
  src.retransmit_delta <- 0;
  src.stall_delta <- 0;
  src.frame_delta <- 0;
  src.batched_delta <- 0;
  src.piggyback_delta <- 0;
  src.coalesce_delta <- 0
