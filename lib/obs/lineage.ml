(* Causal task lineage: the side-car store behind per-task latency.

   Every injection mints a fresh *lineage id* (lin); every reduction
   task in flight holds a *ticket* — a recycled slot in parallel int
   arrays recording which lineage it belongs to, its causal depth
   (hops from the injected root), and the three timestamps the latency
   decomposition needs: when it was sent, when it would arrive on an
   ideal link, and when it was actually delivered into a pool. Marking
   tasks are never ticketed (they can be coalesced away in the
   transport, which would leak tickets); they carry stamp -1.

   Slots are recycled LIFO through an explicit stack, so ticket ids
   depend only on the (deterministic) open/close order — never on wall
   time or domain count. Per-lineage aggregates (injection step, last
   execution step, task count, max depth) survive ticket recycling and
   feed the critical-path section of [dgr report]. *)

type t = {
  (* per-ticket parallel arrays, indexed by slot *)
  mutable lin : int array;
  mutable depth : int array;
  mutable sent : int array;
  mutable arrival : int array;
  mutable delivered : int array;
  mutable free : int array;  (* LIFO stack of recycled slots *)
  mutable free_top : int;
  mutable next_slot : int;
  mutable in_flight : int;
  (* per-lineage aggregates, indexed by lin *)
  mutable l_injected : int array;
  mutable l_last : int array;
  mutable l_tasks : int array;
  mutable l_depth : int array;
  mutable num_lineages : int;
  mutable closed : int;  (* tickets retired at execution *)
  mutable dropped : int;  (* tickets retired by purge/drop *)
}

let create () =
  {
    lin = Array.make 64 0;
    depth = Array.make 64 0;
    sent = Array.make 64 0;
    arrival = Array.make 64 0;
    delivered = Array.make 64 0;
    free = Array.make 64 0;
    free_top = 0;
    next_slot = 0;
    in_flight = 0;
    l_injected = Array.make 16 0;
    l_last = Array.make 16 0;
    l_tasks = Array.make 16 0;
    l_depth = Array.make 16 0;
    num_lineages = 0;
    closed = 0;
    dropped = 0;
  }

let grow a fill = Array.append a (Array.make (Array.length a) fill)

let new_lineage t ~now =
  let lin = t.num_lineages in
  if lin = Array.length t.l_injected then begin
    t.l_injected <- grow t.l_injected 0;
    t.l_last <- grow t.l_last 0;
    t.l_tasks <- grow t.l_tasks 0;
    t.l_depth <- grow t.l_depth 0
  end;
  t.l_injected.(lin) <- now;
  t.l_last.(lin) <- now;
  t.l_tasks.(lin) <- 0;
  t.l_depth.(lin) <- 0;
  t.num_lineages <- lin + 1;
  lin

let open_ticket t ~lin ~depth ~sent ~arrival =
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      let s = t.next_slot in
      if s = Array.length t.lin then begin
        t.lin <- grow t.lin 0;
        t.depth <- grow t.depth 0;
        t.sent <- grow t.sent 0;
        t.arrival <- grow t.arrival 0;
        t.delivered <- grow t.delivered 0;
        t.free <- grow t.free 0
      end;
      t.next_slot <- s + 1;
      s
    end
  in
  t.lin.(slot) <- lin;
  t.depth.(slot) <- depth;
  t.sent.(slot) <- sent;
  t.arrival.(slot) <- arrival;
  t.delivered.(slot) <- -1;
  t.in_flight <- t.in_flight + 1;
  slot

let deliver t slot ~now = t.delivered.(slot) <- now

let lin_of t slot = t.lin.(slot)
let depth_of t slot = t.depth.(slot)
let sent_of t slot = t.sent.(slot)
let arrival_of t slot = t.arrival.(slot)

let delivered_of t slot =
  if t.delivered.(slot) < 0 then t.arrival.(slot) else t.delivered.(slot)

let release t slot =
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.in_flight <- t.in_flight - 1

let close t slot ~now =
  let lin = t.lin.(slot) in
  if lin >= 0 then begin
    if now > t.l_last.(lin) then t.l_last.(lin) <- now;
    t.l_tasks.(lin) <- t.l_tasks.(lin) + 1;
    if t.depth.(slot) > t.l_depth.(lin) then t.l_depth.(lin) <- t.depth.(slot)
  end;
  t.closed <- t.closed + 1;
  release t slot

(* Bulk close for the step barrier: one call per shard instead of one
   [close] per executed task. Reads [slots.(0..len-1)] in order, so the
   per-lineage aggregates and the LIFO free-stack order are exactly what
   the equivalent sequence of [close] calls would leave — slot recycling
   stays a pure function of the close order. *)
let close_many t slots ~len ~now =
  for k = 0 to len - 1 do
    let slot = slots.(k) in
    let lin = t.lin.(slot) in
    if lin >= 0 then begin
      if now > t.l_last.(lin) then t.l_last.(lin) <- now;
      t.l_tasks.(lin) <- t.l_tasks.(lin) + 1;
      if t.depth.(slot) > t.l_depth.(lin) then t.l_depth.(lin) <- t.depth.(slot)
    end;
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1
  done;
  t.closed <- t.closed + len;
  t.in_flight <- t.in_flight - len

let drop t slot =
  t.dropped <- t.dropped + 1;
  release t slot

let lineages t = t.num_lineages
let in_flight t = t.in_flight
let closed t = t.closed
let dropped t = t.dropped

let iter_lineages t f =
  for lin = 0 to t.num_lineages - 1 do
    f ~lin ~injected:t.l_injected.(lin) ~last:t.l_last.(lin)
      ~tasks:t.l_tasks.(lin) ~depth:t.l_depth.(lin)
  done
