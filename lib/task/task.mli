(* shared graph vocabulary *)
open Dgr_graph

(** Tasks — the smallest unit of work (§2.1).

    A task [<s,d>] is "a message from one vertex to another": it is spawned
    at a source vertex and executes atomically at its destination vertex.
    Two processes coexist (§4): the {e reduction process} (program
    execution) and the {e marking processes} (M_R and M_T). Their tasks
    share the same transport (PE task pools and the network) but are
    distinguished here so that pools can prioritize them and the marking
    controller can find "the set of all tasks" when seeding M_T.

    Besides the [<s,d>] pair, tasks carry "other information that does not
    concern us here" (§2.1 footnote 2); concretely our requests and
    responses carry a correlation [key] — the requester's own [args] child
    that the exchange resolves — so that demand forwarded through [Ind]
    chains can be matched up by the requester when the value comes back
    from a different vertex than the one it is adjacent to. *)

type reduction =
  | Request of { src : Vertex.requester; dst : Vid.t; demand : Demand.t; key : Vid.t }
      (** [<s,d>] in quest of [d]'s value. [src = None] only for the
          distinguished initial task [<-,root>]. [key] is the arg of [src]
          this request resolves (= the original destination before any
          forwarding). *)
  | Respond of {
      src : Vid.t;
      dst : Vertex.requester;
      value : Label.value;
      key : Vid.t;
      demand : Demand.t;  (** the demand of the request being answered *)
    }
      (** [d]'s value travelling back to a requester; [dst = None] delivers
          the overall result of the computation. *)
  | Cancel of { src : Vid.t; dst : Vid.t }
      (** [src] dereferences [dst] (§3.2): on execution [src] is removed
          from [requested(dst)]. Spawned when speculation is resolved
          against a branch. *)

(** Mark tasks carry the wave ([Graph.wave]) that spawned them ([ep]):
    with overlapping cycles a task can outlive its wave in a pool or in
    flight, and the executor drops any task whose [ep] is not the
    handler's current wave. Tasks from different waves are structurally
    unequal, so the transport's coalescing never merges them. *)
type mark =
  | Mark1 of { v : Vid.t; par : Plane.parent; ep : int }
      (** Fig 4-1 basic algorithm (runs on the M_R plane). *)
  | Mark2 of { v : Vid.t; par : Plane.parent; prior : int; ep : int }
      (** Fig 5-1, process M_R: priority-carrying marking from the root. *)
  | Mark3 of { v : Vid.t; par : Plane.parent; ep : int }
      (** Fig 5-3, process M_T: marking from tasks through
          [requested ∪ (args − req-args)]. *)
  | Return of { plane : Plane.id; par : Plane.parent; ep : int }
      (** Fig 4-1 [return1], shared by all three mark tasks; [par =
          Rootpar] signals termination to the controller. *)

type t = Reduction of reduction | Marking of mark

val exec_vertex : t -> Vid.t option
(** The vertex at which the task executes — determines the owning PE.
    [None] for tasks addressed to the controller ([Respond] to the
    external requester; [Return] to [Rootpar]). *)

val exec_vid : t -> int
(** [exec_vertex] without the option box, for per-send hot paths: the
    vid, or [-1] for controller-addressed tasks. *)

val reduction_endpoints : reduction -> Vid.t list
(** Source and destination vertices of a reduction task — the seeds
    contributed to [args(taskroot_i)] when M_T starts (§5.2). *)

val iter_reduction_endpoints : (Vid.t -> unit) -> reduction -> unit
(** [reduction_endpoints] without the list: applies [f] to each endpoint
    (source first). Hot path — M_T seeding visits every pending task. *)

val reduction_endpoint_exists : (Vid.t -> bool) -> reduction -> bool
(** Does any endpoint satisfy the predicate? Allocation-free; used by
    per-step task purges. *)

val plane_of_mark : mark -> Plane.id
(** The marking plane a mark task operates on: M_R for [Mark1]/[Mark2],
    M_T for [Mark3], the carried plane for [Return]. *)

val mark_ep : mark -> int
(** The wave that spawned the task (see the {!mark} doc). *)

val obs_kind : t -> Dgr_obs.Event.task_kind
(** The trace-event kind a task maps to (observability layer). *)

val is_marking : t -> bool

val is_reduction : t -> bool

val request : ?src:Vid.t -> ?key:Vid.t -> Vid.t -> Demand.t -> t
(** [request dst demand] with [key] defaulting to [dst]. *)

val respond : src:Vid.t -> key:Vid.t -> ?demand:Demand.t -> Vertex.requester -> Label.value -> t
(** [demand] defaults to [Vital]. *)

val pp : Format.formatter -> t -> unit

val pp_mark : Format.formatter -> mark -> unit

val pp_reduction : Format.formatter -> reduction -> unit

val to_string : t -> string
