(* shared graph vocabulary *)
open Dgr_graph

type reduction =
  | Request of { src : Vertex.requester; dst : Vid.t; demand : Demand.t; key : Vid.t }
  | Respond of {
      src : Vid.t;
      dst : Vertex.requester;
      value : Label.value;
      key : Vid.t;
      demand : Demand.t;
    }
  | Cancel of { src : Vid.t; dst : Vid.t }

(* Every mark task is tagged with the wave ([Graph.wave]) that spawned
   it. With overlapping cycles, a task from wave N can still be in a
   pool or in flight after wave N+1 opened its plane; the executor
   compares [ep] against the handler's wave and drops stale tasks
   instead of crediting them to the wrong marking process. The tag also
   keeps the transport's mark-coalescing honest: tasks from different
   waves are structurally unequal and never merge. *)
type mark =
  | Mark1 of { v : Vid.t; par : Plane.parent; ep : int }
  | Mark2 of { v : Vid.t; par : Plane.parent; prior : int; ep : int }
  | Mark3 of { v : Vid.t; par : Plane.parent; ep : int }
  | Return of { plane : Plane.id; par : Plane.parent; ep : int }

type t = Reduction of reduction | Marking of mark

let exec_vertex = function
  | Reduction (Request { dst; _ }) -> Some dst
  | Reduction (Respond { dst; _ }) -> dst
  | Reduction (Cancel { dst; _ }) -> Some dst
  | Marking (Mark1 { v; _ } | Mark2 { v; _ } | Mark3 { v; _ }) -> Some v
  | Marking (Return { par = Plane.Parent v; _ }) -> Some v
  | Marking (Return { par = Plane.Rootpar; _ }) -> None

(* [exec_vertex] without the option box, for the per-send hot path. *)
let exec_vid = function
  | Reduction (Request { dst; _ }) -> dst
  | Reduction (Respond { dst = Some d; _ }) -> d
  | Reduction (Respond { dst = None; _ }) -> -1
  | Reduction (Cancel { dst; _ }) -> dst
  | Marking (Mark1 { v; _ } | Mark2 { v; _ } | Mark3 { v; _ }) -> v
  | Marking (Return { par = Plane.Parent v; _ }) -> v
  | Marking (Return { par = Plane.Rootpar; _ }) -> -1

let reduction_endpoints = function
  | Request { src; dst; _ } -> ( match src with Some s -> [ s; dst ] | None -> [ dst ])
  | Respond { src; dst; _ } -> ( match dst with Some d -> [ src; d ] | None -> [ src ])
  | Cancel { src; dst } -> [ src; dst ]

(* Allocation-free variants of [reduction_endpoints] for the hot callers
   (M_T seeding visits every pending task; RC purges run per step). *)
let iter_reduction_endpoints f = function
  | Request { src; dst; _ } ->
    (match src with Some s -> f s | None -> ());
    f dst
  | Respond { src; dst; _ } -> (
    f src;
    match dst with Some d -> f d | None -> ())
  | Cancel { src; dst } ->
    f src;
    f dst

let reduction_endpoint_exists p = function
  | Request { src; dst; _ } ->
    (match src with Some s -> p s | None -> false) || p dst
  | Respond { src; dst; _ } ->
    p src || (match dst with Some d -> p d | None -> false)
  | Cancel { src; dst } -> p src || p dst

let plane_of_mark = function
  | Mark1 _ | Mark2 _ -> Plane.MR
  | Mark3 _ -> Plane.MT
  | Return { plane; _ } -> plane

let obs_kind = function
  | Reduction (Request _) -> Dgr_obs.Event.Request
  | Reduction (Respond _) -> Dgr_obs.Event.Respond
  | Reduction (Cancel _) -> Dgr_obs.Event.Cancel
  | Marking (Mark1 _ | Mark2 _ | Mark3 _) -> Dgr_obs.Event.Mark
  | Marking (Return _) -> Dgr_obs.Event.Return_mark

let is_marking = function Marking _ -> true | Reduction _ -> false

let is_reduction = function Reduction _ -> true | Marking _ -> false

let request ?src ?key dst demand =
  let key = match key with Some k -> k | None -> dst in
  Reduction (Request { src; dst; demand; key })

let respond ~src ~key ?(demand = Demand.Vital) dst value =
  Reduction (Respond { src; dst; value; key; demand })

let pp_requester fmt = function
  | Some v -> Vid.pp fmt v
  | None -> Format.pp_print_string fmt "-"

let pp_reduction fmt = function
  | Request { src; dst; demand; key } ->
    Format.fprintf fmt "request<%a,%a>%s[key=%a]" pp_requester src Vid.pp dst
      (match demand with Demand.Vital -> "!" | Demand.Eager -> "?")
      Vid.pp key
  | Respond { src; dst; value; key; demand } ->
    Format.fprintf fmt "respond<%a,%a>%s=%a[key=%a]" Vid.pp src pp_requester dst
      (match demand with Demand.Vital -> "!" | Demand.Eager -> "?")
      Label.pp_value value Vid.pp key
  | Cancel { src; dst } -> Format.fprintf fmt "cancel<%a,%a>" Vid.pp src Vid.pp dst

let mark_ep = function
  | Mark1 { ep; _ } | Mark2 { ep; _ } | Mark3 { ep; _ } | Return { ep; _ } -> ep

let pp_mark fmt = function
  | Mark1 { v; par; ep } ->
    Format.fprintf fmt "mark1<%a par=%a w%d>" Vid.pp v Plane.pp_parent par ep
  | Mark2 { v; par; prior; ep } ->
    Format.fprintf fmt "mark2<%a par=%a prio=%d w%d>" Vid.pp v Plane.pp_parent par prior ep
  | Mark3 { v; par; ep } ->
    Format.fprintf fmt "mark3<%a par=%a w%d>" Vid.pp v Plane.pp_parent par ep
  | Return { plane; par; ep } ->
    Format.fprintf fmt "return<%a to=%a w%d>" Plane.pp_id plane Plane.pp_parent par ep

let pp fmt = function
  | Reduction r -> pp_reduction fmt r
  | Marking m -> pp_mark fmt m

let to_string t = Format.asprintf "%a" pp t
