open Dgr_util

exception Out_of_vertices

(* A segment: append-only vertex storage with a fixed chunk directory.
   Chunk [j] holds [base_size * 2^j] slots and, once allocated, never
   moves — unlike a resizing array, a reader on another domain can never
   observe a half-copied backing store. The sharded engine's step barrier
   orders every push before any cross-domain read of the slot (fresh vids
   only escape their allocating PE via messages, which take a step), so
   reads of published slots are race-free. Single writer per segment.

   Each chunk owns a struct-of-arrays column set ([Vertex.cols]) holding
   the fixed-width per-vertex state; the handle directory is parallel to
   it. Columns obey the same no-move discipline as the handles. *)
module Seg = struct
  type t = {
    chunks : Vertex.t array array;
    cols : Vertex.cols array;
    mutable len : int;
  }

  let n_chunks = 40

  let base_size = 512

  let create () =
    {
      chunks = Array.make n_chunks [||];
      cols = Array.make n_chunks Vertex.empty_cols;
      len = 0;
    }

  (* chunk index and offset for slot [i]: chunk [j] starts at
     [base_size * (2^j - 1)]. *)
  let locate i =
    let j = ref 0 and lo = ref 0 and size = ref base_size in
    while i >= !lo + !size do
      lo := !lo + !size;
      size := !size * 2;
      incr j
    done;
    (!j, i - !lo)

  let length t = t.len

  let get t i =
    let j, off = locate i in
    Array.unsafe_get (Array.unsafe_get t.chunks j) off

  let dummy = lazy (Vertex.create (-1) ~pe:(-1) Label.Freed)

  (* Append a fresh slot, materializing the chunk (handles + columns) on
     first touch, and return its handle. *)
  let alloc t id ~pe label =
    let j, off = locate t.len in
    if Array.length t.chunks.(j) = 0 then begin
      t.cols.(j) <- Vertex.make_cols (base_size lsl j);
      t.chunks.(j) <- Array.make (base_size lsl j) (Lazy.force dummy)
    end;
    let v = Vertex.attach id ~off t.cols.(j) ~pe label in
    t.chunks.(j).(off) <- v;
    t.len <- t.len + 1;
    v

  let iter f t =
    let remaining = ref t.len and j = ref 0 in
    while !remaining > 0 do
      let chunk = t.chunks.(!j) in
      let n = Int.min !remaining (Array.length chunk) in
      for off = 0 to n - 1 do
        f (Array.unsafe_get chunk off)
      done;
      remaining := !remaining - n;
      incr j
    done

  (* Bulk plane reset, one column fill per materialized chunk. Slots past
     [len] are pristine already, so whole-chunk fills are equivalent to
     per-slot resets. *)
  let reset_plane t plane =
    let remaining = ref t.len and j = ref 0 in
    while !remaining > 0 do
      Vertex.reset_plane_cols t.cols.(!j) plane;
      remaining := !remaining - Int.min !remaining (Array.length t.chunks.(!j));
      incr j
    done
end

(* Partitioned storage, installed by [partition] once the graph stops
   growing densely (i.e. when an engine takes ownership). Each home PE
   gets its own free list, its own segment of fresh slots, and its own
   slice of the capacity budget, so PEs running on different domains can
   allocate without sharing any mutable structure. Fresh vids are striped
   — home [h]'s [k]-th fresh slot is [base + k*pes + h] — which keeps the
   vid space dense and makes vid-order iteration (the digest order)
   independent of which PE allocated what first. *)
type part = {
  pes : int;
  base : int;  (** dense-prefix length at partition time *)
  segs : Seg.t array;
  frees : Vid.t Vec.t array;
  shares : int array;  (** per-home slot budget; [max_int] = unbounded *)
  dense_counts : int array;  (** dense-prefix slots owned by each home *)
}

type t = {
  dense : Seg.t;
  free : Vid.t Vec.t;
  mutable num_pes : int;
  mutable root : Vid.t option;
  mutable next_pe : int;
  mutable releases : int;
  mutable capacity : int option;
  mutable part : part option;
  mutable epoch : int;
  mutable wave : int;
}

let create ?(num_pes = 1) () =
  if num_pes <= 0 then invalid_arg "Graph.create: num_pes must be positive";
  {
    dense = Seg.create ();
    free = Vec.create ();
    num_pes;
    root = None;
    next_pe = 0;
    releases = 0;
    capacity = None;
    part = None;
    epoch = 0;
    wave = 0;
  }

let vertex_count t =
  Seg.length t.dense
  + match t.part with
    | None -> 0
    | Some p -> Array.fold_left (fun acc s -> acc + Seg.length s) 0 p.segs

let share_of cap pes h = (cap / pes) + if h < cap mod pes then 1 else 0

let set_capacity t cap =
  (match cap with
  | Some c when c < vertex_count t ->
    invalid_arg "Graph.set_capacity: below current table size"
  | Some _ | None -> ());
  t.capacity <- cap;
  match t.part with
  | None -> ()
  | Some p ->
    Array.iteri
      (fun h _ ->
        p.shares.(h) <-
          (match cap with None -> max_int | Some c -> share_of c p.pes h))
      p.shares

let capacity t = t.capacity

let partitioned t = t.part <> None

let partition t ~pes =
  if pes <= 0 then invalid_arg "Graph.partition: pes must be positive";
  if t.part <> None then invalid_arg "Graph.partition: already partitioned";
  t.num_pes <- pes;
  let base = Seg.length t.dense in
  let dense_counts = Array.init pes (fun h -> share_of base pes h) in
  let shares =
    match t.capacity with
    | None -> Array.make pes max_int
    | Some c -> Array.init pes (fun h -> share_of c pes h)
  in
  let frees = Array.init pes (fun _ -> Vec.create ()) in
  Vec.iter (fun id -> Vec.push frees.(id mod pes) id) t.free;
  Vec.clear t.free;
  t.part <-
    Some
      {
        pes;
        base;
        segs = Array.init pes (fun _ -> Seg.create ());
        frees;
        shares;
        dense_counts;
      }

let home_of p v = if v < p.base then v mod p.pes else (v - p.base) mod p.pes

let used_of p h = p.dense_counts.(h) + Seg.length p.segs.(h)

let headroom_for t ~pe =
  match t.part with
  | None -> (
    match t.capacity with
    | None -> max_int
    | Some c -> Vec.length t.free + (c - Seg.length t.dense))
  | Some p ->
    let h = ((pe mod p.pes) + p.pes) mod p.pes in
    if p.shares.(h) = max_int then max_int
    else Vec.length p.frees.(h) + Int.max 0 (p.shares.(h) - used_of p h)

let headroom t =
  match t.part with
  | None -> (
    match t.capacity with
    | None -> max_int
    | Some c -> Vec.length t.free + (c - Seg.length t.dense))
  | Some p ->
    if t.capacity = None then max_int
    else
      let acc = ref 0 in
      for h = 0 to p.pes - 1 do
        acc := !acc + headroom_for t ~pe:h
      done;
      !acc

let num_pes t = t.num_pes

let epoch t = t.epoch

let bump_epoch t = t.epoch <- t.epoch + 1

let root t =
  match t.root with
  | Some r -> r
  | None -> invalid_arg "Graph.root: no root set"

let has_root t = t.root <> None

let set_root t r = t.root <- Some r

let mem t v =
  v >= 0
  &&
  if v < Seg.length t.dense then true
  else
    match t.part with
    | None -> false
    | Some p ->
      let off = v - p.base in
      off >= 0 && off / p.pes < Seg.length p.segs.(off mod p.pes)

let vertex t v =
  if v >= 0 && v < Seg.length t.dense then Seg.get t.dense v
  else
    match t.part with
    | Some p when v >= p.base && (v - p.base) / p.pes < Seg.length p.segs.((v - p.base) mod p.pes)
      ->
      Seg.get p.segs.((v - p.base) mod p.pes) ((v - p.base) / p.pes)
    | Some _ | None ->
      invalid_arg (Printf.sprintf "Graph.vertex: unknown vertex v%d" v)

(* Vid-keyed scalar accessors: one slot lookup, no allocation. *)
let label t v = Vertex.label (vertex t v)

let is_free t v = Vertex.free (vertex t v)

let sched_prior t v = Vertex.sched_prior (vertex t v)

let next_pe t =
  let pe = t.next_pe in
  t.next_pe <- (t.next_pe + 1) mod t.num_pes;
  pe

let fresh t ~pe label = Seg.alloc t.dense (Seg.length t.dense) ~pe label

let reuse t v ~pe label =
  let vx = vertex t v in
  Vertex.set_label vx label;
  Vertex.set_free vx false;
  Vertex.set_pe vx pe;
  Vertex.set_birth vx t.epoch;
  vx

let alloc ?pe ?from t label =
  match t.part with
  | None ->
    let pe = match pe with Some p -> p | None -> next_pe t in
    (match Vec.pop t.free with
    | Some id -> reuse t id ~pe label
    | None ->
      (match t.capacity with
      | Some c when Seg.length t.dense >= c -> raise Out_of_vertices
      | Some _ | None -> ());
      let v = fresh t ~pe label in
      Vertex.set_birth v t.epoch;
      v)
  | Some p ->
    (* Partitioned: every structure touched below belongs to [home], so
       concurrent allocations from distinct PEs never contend. *)
    let home =
      match (from, pe) with
      | Some f, _ -> ((f mod p.pes) + p.pes) mod p.pes
      | None, Some q -> ((q mod p.pes) + p.pes) mod p.pes
      | None, None -> 0
    in
    let pe = match pe with Some q -> q | None -> home in
    (match Vec.pop p.frees.(home) with
    | Some id -> reuse t id ~pe label
    | None ->
      if p.shares.(home) <> max_int && used_of p home >= p.shares.(home) then
        raise Out_of_vertices;
      let k = Seg.length p.segs.(home) in
      let id = p.base + (k * p.pes) + home in
      let v = Seg.alloc p.segs.(home) id ~pe label in
      Vertex.set_birth v t.epoch;
      v)

let release t id =
  let v = vertex t id in
  if Vertex.free v then invalid_arg (Printf.sprintf "Graph.release: v%d already free" id);
  t.releases <- t.releases + 1;
  Vertex.reset_for_free v;
  match t.part with
  | None -> Vec.push t.free id
  | Some p -> Vec.push p.frees.(home_of p id) id

let preallocate t n =
  if t.part <> None then invalid_arg "Graph.preallocate: graph is partitioned";
  for _ = 1 to n do
    let v = fresh t ~pe:(next_pe t) Label.Freed in
    Vertex.set_free v true;
    Vec.push t.free (Vertex.id v)
  done

let children t v = Vertex.args (vertex t v)

let iter_children t v f = Vertex.iter_args (vertex t v) f

let free_count t =
  Vec.length t.free
  + match t.part with
    | None -> 0
    | Some p -> Array.fold_left (fun acc f -> acc + Vec.length f) 0 p.frees

let live_count t = vertex_count t - free_count t

let free_list t =
  Vec.to_list t.free
  @ match t.part with
    | None -> []
    | Some p -> List.concat_map Vec.to_list (Array.to_list p.frees)

let home_of_vid t v =
  match t.part with
  | None -> ((v mod t.num_pes) + t.num_pes) mod t.num_pes
  | Some p -> home_of p v

(* Home-scoped views, used by the crash-recovery checkpoints: a PE's
   checkpoint covers exactly the slots homed at it (dense-prefix slots
   with [vid mod pes = home] plus its whole striped segment), live and
   free alike, in ascending vid order. *)
let iter_home t ~pe f =
  match t.part with
  | None ->
    let h = ((pe mod t.num_pes) + t.num_pes) mod t.num_pes in
    Seg.iter (fun v -> if Vertex.id v mod t.num_pes = h then f v) t.dense
  | Some p ->
    let h = ((pe mod p.pes) + p.pes) mod p.pes in
    Seg.iter (fun v -> if Vertex.id v mod p.pes = h then f v) t.dense;
    for k = 0 to Seg.length p.segs.(h) - 1 do
      f (Seg.get p.segs.(h) k)
    done

let home_free_list t ~pe =
  match t.part with
  | None ->
    let h = ((pe mod t.num_pes) + t.num_pes) mod t.num_pes in
    List.filter (fun v -> v mod t.num_pes = h) (Vec.to_list t.free)
  | Some p -> Vec.to_list p.frees.(((pe mod p.pes) + p.pes) mod p.pes)

let iter_home_free t ~pe f =
  match t.part with
  | None ->
    let h = ((pe mod t.num_pes) + t.num_pes) mod t.num_pes in
    Vec.iter (fun v -> if v mod t.num_pes = h then f v) t.free
  | Some p -> Vec.iter f p.frees.(((pe mod p.pes) + p.pes) mod p.pes)

let set_home_free_list t ~pe ids =
  match t.part with
  | None -> invalid_arg "Graph.set_home_free_list: graph is not partitioned"
  | Some p ->
    let h = ((pe mod p.pes) + p.pes) mod p.pes in
    let fl = p.frees.(h) in
    Vec.clear fl;
    List.iter (fun id -> Vec.push fl id) ids

let grow_home t ~pe =
  match t.part with
  | None -> invalid_arg "Graph.grow_home: graph is not partitioned"
  | Some p ->
    let h = ((pe mod p.pes) + p.pes) mod p.pes in
    let k = Seg.length p.segs.(h) in
    let id = p.base + (k * p.pes) + h in
    let v = Seg.alloc p.segs.(h) id ~pe:h Label.Freed in
    Vertex.set_free v true;
    Vertex.set_birth v t.epoch;
    id

(* Iteration is always in ascending vid order — dense prefix first, then
   the striped segments interleaved by stripe index — so digests and
   live-set listings cannot depend on which PE allocated a vertex. *)
let iter_all f t =
  Seg.iter f t.dense;
  match t.part with
  | None -> ()
  | Some p ->
    let maxk = Array.fold_left (fun m s -> Int.max m (Seg.length s)) 0 p.segs in
    for k = 0 to maxk - 1 do
      for h = 0 to p.pes - 1 do
        if k < Seg.length p.segs.(h) then f (Seg.get p.segs.(h) k)
      done
    done

let iter_live f t = iter_all (fun v -> if not (Vertex.free v) then f v) t

let live_vids t =
  let acc = ref [] in
  iter_live (fun v -> acc := Vertex.id v :: !acc) t;
  List.rev !acc

let fold_live f acc t =
  let acc = ref acc in
  iter_live (fun v -> acc := f !acc v) t;
  !acc

(* Resetting a plane is an O(chunks) epoch bump (see [Plane.reset_cols])
   and opens a new wave: the wave counter is shared by both planes, so
   it is globally unique across M_R and M_T — mark tasks, termination
   credits and seed stamps tagged with it can never collide between the
   two marking processes, or between overlapping cycles. *)
let reset_plane t plane =
  t.wave <- t.wave + 1;
  Seg.reset_plane t.dense plane;
  match t.part with
  | None -> ()
  | Some p -> Array.iter (fun s -> Seg.reset_plane s plane) p.segs

let wave t = t.wave

let releases t = t.releases
