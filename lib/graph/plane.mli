(** Per-vertex marking state for one marking process.

    Each vertex carries two independent planes — one for M_R (marking from
    the root) and one for M_T (marking from tasks) — because deadlock
    detection compares the two results (DL' = R'_v − T', §5.4) and the
    paper requires their bits to be distinct (§5.2).

    A plane holds the tri-state colour (unmarked / transient / marked,
    §4.1), the outstanding-mark-task counter [mt-cnt], the marking-tree
    parent [mt-par], and — for M_R only — the priority with which the
    vertex was traced (3 = vital, 2 = eager, 1 = reserve; §5.1).

    Plane state lives in struct-of-arrays columns owned by the graph's
    storage chunks; {!t} is a cheap handle (column set + slot offset) and
    all access goes through the functions below. *)

type color = Unmarked | Transient | Marked

type parent = Rootpar | Parent of Vid.t
(** [Rootpar] is the paper's dummy node used by [return1] to detect
    termination of the whole marking process. *)

type id = MR | MT

type cols
(** One plane's columns for a whole storage chunk: colour bytes plus
    cnt/par/prior cells, one slot each per vertex. *)

type t
(** A handle onto one slot of a column set. *)

val make_cols : int -> cols
(** Pristine (unmarked, zeroed) columns for [n] slots. *)

val reset_cols : cols -> unit
(** Reset every slot of the chunk to the pristine state — the column-wise
    bulk form of {!reset}, used by [Graph.reset_plane]. O(1): the chunk
    carries a per-slot epoch column and a current-epoch counter; the
    reset bumps the counter, stale slots read as pristine, and a slot is
    lazily re-zeroed the first time the new wave writes it. *)

val handle : cols -> int -> t

val create : unit -> t
(** A standalone single-slot plane (tests). *)

val color : t -> color

val set_color : t -> color -> unit

val cnt : t -> int
(** mt-cnt: spawned-but-unreturned mark tasks. *)

val set_cnt : t -> int -> unit

val par : t -> parent
(** mt-par: parent in the marking tree. *)

val set_par : t -> parent -> unit

val prior : t -> int
(** 0 when unmarked; 1..3 once traced (M_R). *)

val set_prior : t -> int -> unit

val reset : t -> unit
(** Return the plane to the pristine unmarked state (between cycles). *)

val unmarked : t -> bool

val transient : t -> bool

val marked : t -> bool

val touch : t -> unit
(** unmarked/marked -> transient (paper's [touch]). *)

val mark : t -> unit
(** -> marked (paper's [mark]). *)

val unmark : t -> unit
(** -> unmarked, clearing priority. *)

type shot = {
  mutable s_color : color;
  mutable s_cnt : int;
  mutable s_par : parent;
  mutable s_prior : int;
}
(** A boxed copy of one slot's plane state (checkpointing); mutable so
    incremental checkpoints can refresh shots in place. *)

val capture : t -> shot

val recapture : shot -> t -> unit
(** [recapture s t] overwrites [s] with [t]'s current plane state — the
    allocation-free refresh of an existing {!capture}. *)

val matches : shot -> t -> bool

val restore : shot -> t -> unit

val pp_parent : Format.formatter -> parent -> unit

val pp_id : Format.formatter -> id -> unit

val pp : Format.formatter -> t -> unit
