open Dgr_util

let add ?pe g label args =
  let v = Graph.alloc ?pe g label in
  List.iter (Vertex.connect v) args;
  (Vertex.id v)

let add_root ?pe g label args =
  let id = add ?pe g label args in
  Graph.set_root g id;
  id

let int_list g ints =
  let rec build = function
    | [] -> add g Label.Nil []
    | n :: rest ->
      let tl = build rest in
      let hd = add g (Label.Int n) [] in
      add g Label.Cons [ hd; tl ]
  in
  build ints

let chain g n =
  if n < 1 then invalid_arg "Builder.chain: n must be >= 1";
  let last = add g (Label.Int 0) [] in
  let rec extend v k = if k = 0 then v else extend (add g Label.Ind [ v ]) (k - 1) in
  extend last (n - 1)

let binary_tree g ~depth =
  let rec build d =
    if d = 0 then add g (Label.Int 1) []
    else
      let l = build (d - 1) in
      let r = build (d - 1) in
      add g (Label.Prim Label.Add) [ l; r ]
  in
  build depth

let cycle g n =
  if n < 1 then invalid_arg "Builder.cycle: n must be >= 1";
  let first = Graph.alloc g Label.Ind in
  let rec extend prev k =
    if k = 0 then prev
    else begin
      let v = Graph.alloc g Label.Ind in
      Vertex.connect v (Vertex.id prev);
      extend v (k - 1)
    end
  in
  let last = extend first (n - 1) in
  Vertex.connect first (Vertex.id last);
  (Vertex.id first)

type random_spec = {
  live : int;
  garbage : int;
  free_pool : int;
  avg_degree : float;
  cycle_bias : float;
}


let placeholder_labels = [| Label.If; Label.Prim Label.Add; Label.Apply "f"; Label.Ind |]

(* Build a weakly-connected rooted cluster over [ids]: ids.(0) is the
   entry; every other vertex gets an incoming edge from an
   earlier-indexed vertex (guaranteeing reachability from the entry), and
   extra random edges are sprinkled on top, optionally back-edges to form
   cycles. *)
let wire_cluster rng g ids ~avg_degree ~cycle_bias =
  let n = Array.length ids in
  for i = 1 to n - 1 do
    let parent = ids.(Rng.int rng i) in
    Vertex.connect (Graph.vertex g parent) ids.(i)
  done;
  (* Extra edges: each vertex already has on average ~1 outgoing edge from
     the spanning step (n-1 edges / n vertices), add the remainder. *)
  let extra = int_of_float (Float.max 0.0 ((avg_degree -. 1.0) *. float_of_int n)) in
  for _ = 1 to extra do
    let src_idx = Rng.int rng n in
    let dst_idx =
      if Rng.float rng 1.0 < cycle_bias && src_idx > 0 then Rng.int rng src_idx
        (* ancestor-ish: earlier index, may close a cycle *)
      else Rng.int rng n
    in
    Vertex.connect (Graph.vertex g ids.(src_idx)) ids.(dst_idx)
  done

let random ?(num_pes = 1) rng spec =
  if spec.live < 1 then invalid_arg "Builder.random: spec.live must be >= 1";
  let g = Graph.create ~num_pes () in
  let live_ids =
    Array.init spec.live (fun _ -> add g (Rng.choose rng placeholder_labels) [])
  in
  Graph.set_root g live_ids.(0);
  wire_cluster rng g live_ids ~avg_degree:spec.avg_degree ~cycle_bias:spec.cycle_bias;
  if spec.garbage > 0 then begin
    (* Garbage forms a handful of independent clusters. *)
    let remaining = ref spec.garbage in
    while !remaining > 0 do
      let size = Int.min !remaining (1 + Rng.int rng 8) in
      remaining := !remaining - size;
      let ids = Array.init size (fun _ -> add g (Rng.choose rng placeholder_labels) []) in
      wire_cluster rng g ids ~avg_degree:spec.avg_degree ~cycle_bias:spec.cycle_bias;
      (* Garbage clusters may also point into the live graph — that must
         not resurrect them. *)
      if Rng.bool rng then begin
        let src = ids.(Rng.int rng size) in
        let dst = live_ids.(Rng.int rng spec.live) in
        Vertex.connect (Graph.vertex g src) dst
      end
    done
  end;
  Graph.preallocate g spec.free_pool;
  g

let random_with_requests ?num_pes rng spec =
  let g = random ?num_pes rng spec in
  Graph.iter_live
    (fun v ->
      List.iter
        (fun c ->
          match Rng.int rng 4 with
          | 0 -> Vertex.request_arg v c Demand.Vital
          | 1 -> Vertex.request_arg v c Demand.Eager
          | _ -> ())
        (Vertex.args v))
    g;
  (* Install requested-edges consistent with req-args: if v requested c,
     then v is in requested(c) unless c already answered. *)
  Graph.iter_live
    (fun v ->
      List.iter
        (fun c ->
          let cv = Graph.vertex g c in
          if not (Vertex.free cv) then
            let demand =
              if List.exists (Vid.equal c) (Vertex.req_v v) then Demand.Vital else Demand.Eager
            in
            if Rng.int rng 4 <> 0 then
              Vertex.add_requester cv (Some (Vertex.id v)) ~demand ~key:c)
        (Vertex.req_args v))
    g;
  (* The root is being demanded by the external initial task <-,root>. *)
  let root = Graph.root g in
  Vertex.add_requester (Graph.vertex g root) None ~demand:Demand.Vital ~key:root;
  g
