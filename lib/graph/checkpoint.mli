(** Per-PE incremental checkpoints of the graph, for crash recovery.

    A crash (see {!Dgr_sim.Faults}) destroys a PE's home slice of the
    graph — every slot homed at it, live and free — along with its pool
    and in-flight frames. A checkpoint is the durable copy that slice is
    rebuilt from: an entry per slot capturing the full vertex state
    (label, args, req-args, requesters, received values, executing PE,
    free flag, birth epoch, scheduling priority, and both marking
    planes) plus the home free list.

    [sync] is incremental and step-tagged: it scans the slice but
    rewrites only entries whose vertex changed since the previous sync,
    stamping each rewritten entry with the capture step. The engine
    syncs at the top of every step while the crash plane is active, so
    the copy a PE recovers from is never stale. *)

type t

val create : Graph.t -> pe:int -> t
(** A checkpoint of [pe]'s home slice of the graph. Empty until the
    first {!sync}. *)

val sync : t -> now:int -> int
(** Bring the checkpoint up to date with the live graph, tagging every
    rewritten entry with step [now]. Returns the number of entries
    created or rewritten (0 on a quiet slice — the incremental case). *)

val restore : ?into:Graph.t -> t -> unit
(** Write the checkpoint back over the home slice — of the watched graph
    by default, or of [into] (a fresh graph partitioned the same way;
    missing striped slots are rebuilt with {!Graph.grow_home}). Slots
    born after the last sync are reset and appended to the free list:
    the crash lost them. Raises [Invalid_argument] if never synced, or
    if [into]'s partition shape cannot host the checkpointed vids. *)

val last_sync : t -> int
(** Step of the latest {!sync}; [-1] before the first. *)

val entry_count : t -> int

val step_of : t -> Vid.t -> int option
(** The step-tag of one slot's entry: when its captured state last
    changed. [None] if the slot has never been captured. *)
