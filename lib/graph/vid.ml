type t = int

let equal = Int.equal

let compare = Int.compare

let pp fmt v = Format.fprintf fmt "v%d" v

let to_string v = "v" ^ string_of_int v

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)
