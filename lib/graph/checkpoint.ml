(* Per-PE incremental checkpoint of a home slice of the graph, for crash
   recovery. One checkpoint watches one home PE: every slot homed there
   (dense-prefix vids with [vid mod pes = home] plus the whole striped
   segment), live and free alike, and the home free list. [sync] is
   incremental — it rewrites only the entries whose vertex changed since
   the last sync, tagging each rewritten entry with the step it was
   captured at — so steady-state cost is proportional to churn, not to
   segment size. [restore] writes the captured fields back, rebuilding
   missing striped slots when restoring into a fresh graph. *)

type plane_shot = {
  p_color : Plane.color;
  p_cnt : int;
  p_par : Plane.parent;
  p_prior : int;
}

type entry = {
  mutable e_step : int;  (* step the fields below were captured at *)
  mutable e_label : Label.t;
  mutable e_args : Vid.t list;
  mutable e_req_v : Vid.t list;
  mutable e_req_e : Vid.t list;
  mutable e_requested : Vertex.request_entry list;
  mutable e_recv : (Vid.t * Label.value) list;
  mutable e_pe : int;
  mutable e_free : bool;
  mutable e_birth : int;
  mutable e_prior : int;
  mutable e_mr : plane_shot;
  mutable e_mt : plane_shot;
}

type t = {
  g : Graph.t;
  home : int;
  entries : (Vid.t, entry) Hashtbl.t;
  mutable free : Vid.t list;  (* home free list, pop order *)
  mutable last_sync : int;  (* step of the latest sync; -1 = never *)
  mutable refreshed : int;  (* entries rewritten by the latest sync *)
}

let create g ~pe = { g; home = pe; entries = Hashtbl.create 64; free = []; last_sync = -1; refreshed = 0 }

let home t = t.home

let last_sync t = t.last_sync

let refreshed t = t.refreshed

let entry_count t = Hashtbl.length t.entries

let step_of t vid =
  match Hashtbl.find_opt t.entries vid with None -> None | Some e -> Some e.e_step

let shoot (p : Plane.t) =
  { p_color = p.Plane.color; p_cnt = p.Plane.cnt; p_par = p.Plane.par; p_prior = p.Plane.prior }

let same_shot s (p : Plane.t) =
  Plane.equal_color s.p_color p.Plane.color
  && s.p_cnt = p.Plane.cnt && s.p_par = p.Plane.par && s.p_prior = p.Plane.prior

let entry_of ~now (v : Vertex.t) =
  {
    e_step = now;
    e_label = v.Vertex.label;
    e_args = Vertex.args v;
    e_req_v = v.Vertex.req_v;
    e_req_e = v.Vertex.req_e;
    e_requested = v.Vertex.requested;
    e_recv = v.Vertex.recv;
    e_pe = v.Vertex.pe;
    e_free = v.Vertex.free;
    e_birth = v.Vertex.birth;
    e_prior = v.Vertex.sched_prior;
    e_mr = shoot v.Vertex.mr;
    e_mt = shoot v.Vertex.mt;
  }

let matches e (v : Vertex.t) =
  Label.equal e.e_label v.Vertex.label
  && e.e_pe = v.Vertex.pe && e.e_free = v.Vertex.free && e.e_birth = v.Vertex.birth
  && e.e_prior = v.Vertex.sched_prior
  && same_shot e.e_mr v.Vertex.mr && same_shot e.e_mt v.Vertex.mt
  && e.e_args = Vertex.args v && e.e_req_v = v.Vertex.req_v && e.e_req_e = v.Vertex.req_e
  && e.e_requested = v.Vertex.requested && e.e_recv = v.Vertex.recv

let rewrite ~now e (v : Vertex.t) =
  e.e_step <- now;
  e.e_label <- v.Vertex.label;
  e.e_args <- Vertex.args v;
  e.e_req_v <- v.Vertex.req_v;
  e.e_req_e <- v.Vertex.req_e;
  e.e_requested <- v.Vertex.requested;
  e.e_recv <- v.Vertex.recv;
  e.e_pe <- v.Vertex.pe;
  e.e_free <- v.Vertex.free;
  e.e_birth <- v.Vertex.birth;
  e.e_prior <- v.Vertex.sched_prior;
  e.e_mr <- shoot v.Vertex.mr;
  e.e_mt <- shoot v.Vertex.mt

let sync t ~now =
  let n = ref 0 in
  Graph.iter_home t.g ~pe:t.home (fun v ->
      match Hashtbl.find_opt t.entries v.Vertex.id with
      | None ->
        Hashtbl.replace t.entries v.Vertex.id (entry_of ~now v);
        incr n
      | Some e ->
        if not (matches e v) then begin
          rewrite ~now e v;
          incr n
        end);
  t.free <- Graph.home_free_list t.g ~pe:t.home;
  t.last_sync <- now;
  t.refreshed <- !n;
  !n

let restore_plane s (p : Plane.t) =
  p.Plane.color <- s.p_color;
  p.Plane.cnt <- s.p_cnt;
  p.Plane.par <- s.p_par;
  p.Plane.prior <- s.p_prior

let restore_vertex e (v : Vertex.t) =
  v.Vertex.label <- e.e_label;
  Vertex.set_args v e.e_args;
  v.Vertex.req_v <- e.e_req_v;
  v.Vertex.req_e <- e.e_req_e;
  v.Vertex.requested <- e.e_requested;
  v.Vertex.recv <- e.e_recv;
  v.Vertex.pe <- e.e_pe;
  v.Vertex.free <- e.e_free;
  v.Vertex.birth <- e.e_birth;
  v.Vertex.sched_prior <- e.e_prior;
  restore_plane e.e_mr v.Vertex.mr;
  restore_plane e.e_mt v.Vertex.mt

let restore ?into t =
  if t.last_sync < 0 then invalid_arg "Checkpoint.restore: never synced";
  let g = match into with Some g -> g | None -> t.g in
  (* Rebuild any checkpointed striped slot the target lacks (restoring
     into a fresh graph): grow_home appends slots in exactly the vid
     order alloc would have created them. *)
  let max_vid = Hashtbl.fold (fun vid _ m -> Int.max vid m) t.entries (-1) in
  while max_vid >= 0 && not (Graph.mem g max_vid) do
    let id = Graph.grow_home g ~pe:t.home in
    if id > max_vid then
      invalid_arg "Checkpoint.restore: target graph partition shape mismatch"
  done;
  (* Slots born after the last sync are unknown to the checkpoint: the
     crash loses them, so they come back as free slots appended (in vid
     order) behind the checkpointed free list. *)
  let extras = ref [] in
  Graph.iter_home g ~pe:t.home (fun v ->
      match Hashtbl.find_opt t.entries v.Vertex.id with
      | Some e -> restore_vertex e v
      | None ->
        Vertex.reset_for_free v;
        extras := v.Vertex.id :: !extras);
  Graph.set_home_free_list g ~pe:t.home (t.free @ List.rev !extras)
