(* Per-PE incremental checkpoint of a home slice of the graph, for crash
   recovery. One checkpoint watches one home PE: every slot homed there
   (dense-prefix vids with [vid mod pes = home] plus the whole striped
   segment), live and free alike, and the home free list. [sync] is
   incremental — it rewrites only the entries whose vertex changed since
   the last sync, tagging each rewritten entry with the step it was
   captured at — so steady-state cost is proportional to churn, not to
   segment size. [restore] writes the captured state back, rebuilding
   missing striped slots when restoring into a fresh graph.

   Entries hold [Vertex.Cells] shots: flat column-slice copies of one
   slot's state (scalar cells, plane cells, and the row prefixes), so
   capture/compare/restore are array blits and never traverse lists. *)

type entry = {
  mutable e_step : int;  (* step the shot below was captured at *)
  mutable e_shot : Vertex.Cells.shot;
}

type t = {
  g : Graph.t;
  home : int;
  entries : (Vid.t, entry) Hashtbl.t;
  free : Vid.t Dgr_util.Vec.t;  (* home free list, pop order *)
  mutable last_sync : int;  (* step of the latest sync; -1 = never *)
}

let create g ~pe =
  {
    g;
    home = pe;
    entries = Hashtbl.create 64;
    free = Dgr_util.Vec.create ();
    last_sync = -1;
  }

let last_sync t = t.last_sync

let entry_count t = Hashtbl.length t.entries

let step_of t vid =
  match Hashtbl.find_opt t.entries vid with None -> None | Some e -> Some e.e_step

(* Sync runs every step while the crash plane is active, so the quiet
   path must not allocate: entry lookups use [Hashtbl.find] (no option
   box), unchanged entries refresh in place via [Cells.recapture], and
   the free list is re-filled into a retained vector. *)
let sync t ~now =
  let n = ref 0 in
  Graph.iter_home t.g ~pe:t.home (fun v ->
      match Hashtbl.find t.entries (Vertex.id v) with
      | e ->
        if not (Vertex.Cells.matches e.e_shot v) then begin
          e.e_step <- now;
          Vertex.Cells.recapture e.e_shot v;
          incr n
        end
      | exception Not_found ->
        Hashtbl.replace t.entries (Vertex.id v)
          { e_step = now; e_shot = Vertex.Cells.capture v };
        incr n);
  Dgr_util.Vec.clear t.free;
  Graph.iter_home_free t.g ~pe:t.home (fun v -> Dgr_util.Vec.push t.free v);
  t.last_sync <- now;
  !n

let restore ?into t =
  if t.last_sync < 0 then invalid_arg "Checkpoint.restore: never synced";
  let g = match into with Some g -> g | None -> t.g in
  (* Rebuild any checkpointed striped slot the target lacks (restoring
     into a fresh graph): grow_home appends slots in exactly the vid
     order alloc would have created them. *)
  let max_vid = Hashtbl.fold (fun vid _ m -> Int.max vid m) t.entries (-1) in
  while max_vid >= 0 && not (Graph.mem g max_vid) do
    let id = Graph.grow_home g ~pe:t.home in
    if id > max_vid then
      invalid_arg "Checkpoint.restore: target graph partition shape mismatch"
  done;
  (* Slots born after the last sync are unknown to the checkpoint: the
     crash loses them, so they come back as free slots appended (in vid
     order) behind the checkpointed free list. *)
  let extras = ref [] in
  Graph.iter_home g ~pe:t.home (fun v ->
      match Hashtbl.find_opt t.entries (Vertex.id v) with
      | Some e -> Vertex.Cells.restore e.e_shot v
      | None ->
        Vertex.reset_for_free v;
        extras := Vertex.id v :: !extras);
  let base = Dgr_util.Vec.to_list t.free in
  Graph.set_home_free_list g ~pe:t.home (base @ List.rev !extras)
