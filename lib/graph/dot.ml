let vertex_attrs (v : Vertex.t) is_root =
  let shape = if is_root then "doublecircle" else "circle" in
  let fill =
    match Plane.color (Vertex.mr v) with
    | Plane.Marked -> "gray70"
    | Plane.Transient -> "gray90"
    | Plane.Unmarked -> "white"
  in
  Printf.sprintf "shape=%s style=filled fillcolor=%s label=\"v%d\\n%s\"" shape fill (Vertex.id v)
    (String.escaped (Label.to_string (Vertex.label v)))

let to_string ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  let root = if Graph.has_root g then Some (Graph.root g) else None in
  Graph.iter_live
    (fun v ->
      let is_root = match root with Some r -> Vid.equal r (Vertex.id v) | None -> false in
      Buffer.add_string buf (Printf.sprintf "  n%d [%s];\n" (Vertex.id v) (vertex_attrs v is_root));
      List.iter
        (fun c ->
          let annot =
            if List.exists (Vid.equal c) (Vertex.req_v v) then " [label=\"*v\"]"
            else if List.exists (Vid.equal c) (Vertex.req_e v) then " [label=\"*e\"]"
            else ""
          in
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" (Vertex.id v) c annot))
        (Vertex.args v);
      List.iter
        (fun (e : Vertex.request_entry) ->
          match e.Vertex.who with
          | Some r -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [style=dashed];\n" (Vertex.id v) r)
          | None -> ())
        (Vertex.requested v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?name g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name g))
