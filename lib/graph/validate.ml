type error = string

let check g =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let in_range v = Graph.mem g v in
  let subset name vid sub super =
    List.iter
      (fun c ->
        if not (List.exists (Vid.equal c) super) then
          err "v%d: %s contains v%d which is not in args" vid name c)
      sub
  in
  Graph.iter_all
    (fun v ->
      let id = (Vertex.id v) in
      let vargs = Vertex.args v in
      List.iter
        (fun c -> if not (in_range c) then err "v%d: arg v%d out of range" id c)
        vargs;
      List.iter
        (fun (e : Vertex.request_entry) ->
          match e.Vertex.who with
          | Some r when not (in_range r) -> err "v%d: requester v%d out of range" id r
          | Some _ | None -> ())
        (Vertex.requested v);
      subset "req_v" id (Vertex.req_v v) vargs;
      subset "req_e" id (Vertex.req_e v) vargs;
      List.iter
        (fun c ->
          if List.exists (Vid.equal c) (Vertex.req_e v) then
            err "v%d: v%d in both req_v and req_e" id c)
        (Vertex.req_v v);
      if (Vertex.free v) then begin
        if (Vertex.label v) <> Label.Freed then
          err "v%d: free vertex has label %s" id (Label.to_string (Vertex.label v));
        if vargs <> [] then err "v%d: free vertex has args" id;
        if (Vertex.requested v) <> [] then err "v%d: free vertex has requesters" id
      end
      else
        List.iter
          (fun c ->
            if in_range c && Graph.is_free g c then
              err "v%d: live vertex points to free vertex v%d" id c)
          vargs)
    g;
  (* Free list and flags agree. *)
  let on_list = Vid.Tbl.create 16 in
  List.iter
    (fun v ->
      if Vid.Tbl.mem on_list v then err "free list contains v%d twice" v;
      Vid.Tbl.replace on_list v ();
      if Graph.mem g v && not (Graph.is_free g v) then
        err "free list contains live vertex v%d" v)
    (Graph.free_list g);
  Graph.iter_all
    (fun v ->
      if (Vertex.free v) && not (Vid.Tbl.mem on_list (Vertex.id v)) then
        err "v%d flagged free but not on free list" (Vertex.id v))
    g;
  if Graph.has_root g then begin
    let r = Graph.root g in
    if not (Graph.mem g r) then err "root v%d out of range" r
    else if Graph.is_free g r then err "root v%d is free" r
  end;
  List.rev !errors

let check_exn g =
  match check g with
  | [] -> ()
  | errs -> failwith ("Validate.check failed:\n" ^ String.concat "\n" errs)
