type error = string

let check g =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let in_range v = Graph.mem g v in
  let subset name vid sub super =
    List.iter
      (fun c ->
        if not (List.exists (Vid.equal c) super) then
          err "v%d: %s contains v%d which is not in args" vid name c)
      sub
  in
  Graph.iter_all
    (fun v ->
      let id = v.Vertex.id in
      let vargs = Vertex.args v in
      List.iter
        (fun c -> if not (in_range c) then err "v%d: arg v%d out of range" id c)
        vargs;
      List.iter
        (fun (e : Vertex.request_entry) ->
          match e.Vertex.who with
          | Some r when not (in_range r) -> err "v%d: requester v%d out of range" id r
          | Some _ | None -> ())
        v.Vertex.requested;
      subset "req_v" id v.Vertex.req_v vargs;
      subset "req_e" id v.Vertex.req_e vargs;
      List.iter
        (fun c ->
          if List.exists (Vid.equal c) v.Vertex.req_e then
            err "v%d: v%d in both req_v and req_e" id c)
        v.Vertex.req_v;
      if v.Vertex.free then begin
        if v.Vertex.label <> Label.Freed then
          err "v%d: free vertex has label %s" id (Label.to_string v.Vertex.label);
        if vargs <> [] then err "v%d: free vertex has args" id;
        if v.Vertex.requested <> [] then err "v%d: free vertex has requesters" id
      end
      else
        List.iter
          (fun c ->
            if in_range c && (Graph.vertex g c).Vertex.free then
              err "v%d: live vertex points to free vertex v%d" id c)
          vargs)
    g;
  (* Free list and flags agree. *)
  let on_list = Vid.Tbl.create 16 in
  List.iter
    (fun v ->
      if Vid.Tbl.mem on_list v then err "free list contains v%d twice" v;
      Vid.Tbl.replace on_list v ();
      if Graph.mem g v && not (Graph.vertex g v).Vertex.free then
        err "free list contains live vertex v%d" v)
    (Graph.free_list g);
  Graph.iter_all
    (fun v ->
      if v.Vertex.free && not (Vid.Tbl.mem on_list v.Vertex.id) then
        err "v%d flagged free but not on free list" v.Vertex.id)
    g;
  if Graph.has_root g then begin
    let r = Graph.root g in
    if not (Graph.mem g r) then err "root v%d out of range" r
    else if (Graph.vertex g r).Vertex.free then err "root v%d is free" r
  end;
  List.rev !errors

let check_exn g =
  match check g with
  | [] -> ()
  | errs -> failwith ("Validate.check failed:\n" ^ String.concat "\n" errs)
