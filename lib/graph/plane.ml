type color = Unmarked | Transient | Marked

type parent = Rootpar | Parent of Vid.t

type id = MR | MT

(* One marking plane's state for a whole storage chunk, as parallel
   columns: colour packed one byte per slot, the counter/parent/priority
   words one cell per slot. Chunks never move once allocated (see
   [Graph]), so a handle caches the column arrays directly.

   The [c_epoch] column makes between-cycle resets O(1): a slot's state
   is valid only while its epoch equals the chunk's current epoch
   [cur]; a stale slot reads as pristine (unmarked, zero, rootpar) and
   is lazily re-zeroed the first time the new wave writes it. Bumping
   [cur] therefore resets the whole chunk without touching a slot —
   which is what lets cycle N+1's mark wave start while cycle N's
   restructuring is still draining, instead of a bulk wipe that has to
   wait for every outstanding reader. Epochs start at 0 with [cur] at 1,
   so a fresh chunk is wholly stale, i.e. wholly pristine. *)
type cols = {
  c_color : Bytes.t;
  c_cnt : int array;
  c_par : parent array;
  c_prior : int array;
  c_epoch : int array;
  mutable cur : int;
}

(* A handle onto one slot of a plane column set. Copying the handle is
   cheap and aliases the same state. *)
type t = { off : int; c : cols }

let make_cols n =
  {
    c_color = Bytes.make n '\000';
    c_cnt = Array.make n 0;
    c_par = Array.make n Rootpar;
    c_prior = Array.make n 0;
    c_epoch = Array.make n 0;
    cur = 1;
  }

let reset_cols c = c.cur <- c.cur + 1

let handle c off = { off; c }

let create () = handle (make_cols 1) 0

let live t = Array.unsafe_get t.c.c_epoch t.off = t.c.cur

(* Bring a stale slot into the current epoch, pristine. Every write goes
   through this first so a slot never mixes bits from two waves. *)
let materialize t =
  if not (live t) then begin
    Array.unsafe_set t.c.c_epoch t.off t.c.cur;
    Bytes.unsafe_set t.c.c_color t.off '\000';
    Array.unsafe_set t.c.c_cnt t.off 0;
    t.c.c_par.(t.off) <- Rootpar;
    Array.unsafe_set t.c.c_prior t.off 0
  end

let color t =
  if not (live t) then Unmarked
  else
    match Bytes.unsafe_get t.c.c_color t.off with
    | '\000' -> Unmarked
    | '\001' -> Transient
    | _ -> Marked

let set_color t col =
  materialize t;
  Bytes.unsafe_set t.c.c_color t.off
    (match col with Unmarked -> '\000' | Transient -> '\001' | Marked -> '\002')

let cnt t = if live t then Array.unsafe_get t.c.c_cnt t.off else 0

let set_cnt t n =
  materialize t;
  Array.unsafe_set t.c.c_cnt t.off n

let par t = if live t then t.c.c_par.(t.off) else Rootpar

let set_par t p =
  materialize t;
  t.c.c_par.(t.off) <- p

let prior t = if live t then Array.unsafe_get t.c.c_prior t.off else 0

let set_prior t p =
  materialize t;
  Array.unsafe_set t.c.c_prior t.off p

(* Per-slot reset: mark the slot stale, which IS the pristine state. *)
let reset t = Array.unsafe_set t.c.c_epoch t.off 0

let unmarked t = (not (live t)) || Bytes.unsafe_get t.c.c_color t.off = '\000'

let transient t = live t && Bytes.unsafe_get t.c.c_color t.off = '\001'

let marked t = live t && Bytes.unsafe_get t.c.c_color t.off = '\002'

let touch t = set_color t Transient

let mark t = set_color t Marked

let unmark t =
  set_color t Unmarked;
  set_prior t 0

let equal_color (a : color) b = a = b

(* A boxed copy of one slot's plane state (checkpointing). Fields are
   mutable so an incremental checkpoint can refresh a stale shot in
   place instead of allocating a new one per sync. *)
type shot = {
  mutable s_color : color;
  mutable s_cnt : int;
  mutable s_par : parent;
  mutable s_prior : int;
}

let capture t = { s_color = color t; s_cnt = cnt t; s_par = par t; s_prior = prior t }

let recapture s t =
  s.s_color <- color t;
  s.s_cnt <- cnt t;
  s.s_par <- par t;
  s.s_prior <- prior t

let matches s t =
  equal_color s.s_color (color t)
  && s.s_cnt = cnt t && s.s_par = par t && s.s_prior = prior t

let restore s t =
  set_color t s.s_color;
  set_cnt t s.s_cnt;
  set_par t s.s_par;
  set_prior t s.s_prior

let pp_color fmt = function
  | Unmarked -> Format.pp_print_string fmt "unmarked"
  | Transient -> Format.pp_print_string fmt "transient"
  | Marked -> Format.pp_print_string fmt "marked"

let pp_parent fmt = function
  | Rootpar -> Format.pp_print_string fmt "rootpar"
  | Parent v -> Vid.pp fmt v

let pp_id fmt = function
  | MR -> Format.pp_print_string fmt "M_R"
  | MT -> Format.pp_print_string fmt "M_T"

let pp fmt t =
  Format.fprintf fmt "{%a cnt=%d par=%a prior=%d}" pp_color (color t) (cnt t) pp_parent
    (par t) (prior t)
