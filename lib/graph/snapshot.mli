(** Immutable global snapshots of a graph.

    The reachability oracle ([Dgr_analysis]) and the correctness tests
    operate on snapshots so that the sets of Properties 1-6 can be
    evaluated "at time t" while the live graph keeps mutating. *)

type vertex = {
  id : Vid.t;
  label : Label.t;
  args : Vid.t list;
  req_v : Vid.t list;
  req_e : Vid.t list;
  requested : Vertex.request_entry list;
  free : bool;
  pe : int;
  mr_color : Plane.color;
  mr_prior : int;
  mt_color : Plane.color;
}

type t = {
  root : Vid.t option;
  verts : vertex array;  (** ascending vid order; vids may have gaps *)
  index : int array;  (** vid → position in [verts], [-1] for unknown vids *)
}

val take : Graph.t -> t

val vertex : t -> Vid.t -> vertex

val size : t -> int

val live : t -> vertex list

val free_set : t -> Vid.Set.t
(** The free list F as a set. *)
