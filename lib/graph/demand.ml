type t = Vital | Eager

let equal a b =
  match (a, b) with Vital, Vital | Eager, Eager -> true | Vital, Eager | Eager, Vital -> false

let to_string = function Vital -> "vital" | Eager -> "eager"

let pp fmt d = Format.pp_print_string fmt (to_string d)
