(** Vertex identifiers.

    A [Vid.t] is a dense non-negative integer index into the graph's vertex
    table; identifiers are never reused across the lifetime of a graph even
    when the vertex returns to the free list (the index is, the identity
    semantics are handled by the vertex's [free] flag). *)

type t = int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

module Tbl : Hashtbl.S with type key = t
