(** Demand kinds.

    A request for a vertex's value is either {e vital} (the value is known
    to be needed by the overall computation) or {e eager} (speculatively
    requested; §3.2 of the paper). The kind determines which [req-args]
    set the edge is recorded in and the priority of the spawned task. *)

type t = Vital | Eager

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
