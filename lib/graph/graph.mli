(** The distributed computation graph.

    A dense vertex table plus the free list [F] of §2.2. Vertices are
    assigned to processing elements (the partition of §2) at allocation
    time, round-robin by default. The graph itself is a passive store —
    task semantics live in [Dgr_core] and [Dgr_reduction]. *)

type t

exception Out_of_vertices
(** Raised by [alloc] when the free list is empty and the capacity is
    reached — §2.2's V is finite; new vertices come only from F. *)

val create : ?num_pes:int -> unit -> t
(** [create ~num_pes ()] is an empty graph partitioned over [num_pes]
    processing elements (default 1), with unbounded capacity. *)

val set_capacity : t -> int option -> unit
(** Bound (or unbound) the vertex-table size. Raises [Invalid_argument]
    if the bound is below the current table size. *)

val capacity : t -> int option

val headroom : t -> int
(** Vertices allocatable before [Out_of_vertices]: |F| plus remaining
    table growth. [max_int] when unbounded. On a partitioned graph this
    sums every home's headroom and is only meaningful serially. *)

val partition : t -> pes:int -> unit
(** Switch the graph to partitioned storage: each of the [pes] home PEs
    gets its own free list, its own striped segment of fresh vids
    ([base + k*pes + home]) and a [1/pes] share of the capacity budget,
    so allocations by distinct PEs touch disjoint mutable state (the
    local stores of the paper's autonomous PEs). The existing dense
    prefix keeps its vids; home of a dense vid is [vid mod pes]. Called
    once by the engine; growth-by-[preallocate] is dense-only and must
    happen before. Raises [Invalid_argument] if already partitioned. *)

val partitioned : t -> bool

val headroom_for : t -> pe:int -> int
(** Allocatable slots in [pe]'s home partition (= [headroom] before
    [partition]). Safe to read from [pe]'s own domain. *)

val epoch : t -> int
(** Allocation epoch, stamped into [Vertex.birth] by [alloc]. The engine
    bumps it every step so the ownership checker can recognize
    vertices born in the current step. *)

val bump_epoch : t -> unit

val wave : t -> int
(** The mark-wave counter: bumped by every {!reset_plane}, shared by
    both planes, never decreasing (crash restores do not rewind it). A
    wave number globally identifies one marking process across
    overlapping cycles — mark tasks, termination credits and seed
    stamps are tagged with it, and a task whose wave is not the plane's
    current one is stale and must be dropped. *)

val num_pes : t -> int

val root : t -> Vid.t
(** Raises [Invalid_argument] if no root has been set. *)

val has_root : t -> bool

val set_root : t -> Vid.t -> unit

val vertex : t -> Vid.t -> Vertex.t
(** Raises [Invalid_argument] on an out-of-range id. *)

val mem : t -> Vid.t -> bool

(** {2 Vid-keyed scalar accessors}

    One slot lookup, no allocation — the step loop reads vertex state
    through these instead of materializing intermediate structure. *)

val label : t -> Vid.t -> Label.t

val is_free : t -> Vid.t -> bool

val sched_prior : t -> Vid.t -> int

val alloc : ?pe:int -> ?from:int -> t -> Label.t -> Vertex.t
(** Acquire a vertex from the free list (or grow the table if [F] is
    empty), assign it to a PE and label it. The returned vertex has no
    edges. On a partitioned graph, [from] names the allocating PE and
    selects the home partition (fresh vertices default to [pe = from] —
    allocation is from the local store); before [partition], PEs are
    assigned round-robin and [from] is ignored. *)

val release : t -> Vid.t -> unit
(** Reset the vertex and return it to the free list (the restructuring
    phase's "add elements of GAR to F"). Raises [Invalid_argument] if the
    vertex is already free. *)

val preallocate : t -> int -> unit
(** Grow the table by [n] vertices placed directly on the free list. *)

val children : t -> Vid.t -> Vid.t list
(** [args] of the vertex, as a fresh list — cold paths only. *)

val iter_children : t -> Vid.t -> (Vid.t -> unit) -> unit
(** Visit [args] of the vertex in order. Does not allocate. *)

val vertex_count : t -> int
(** Total table size |V| (live + free). *)

val free_count : t -> int
(** |F|. *)

val live_count : t -> int

val free_list : t -> Vid.t list

val home_of_vid : t -> Vid.t -> int
(** The home PE of a vid: [vid mod pes] in the dense prefix, the stripe
    index past it. Defined for any vid shape, partitioned or not. *)

val iter_home : t -> pe:int -> (Vertex.t -> unit) -> unit
(** Visit every slot homed at [pe] — live and free alike — in ascending
    vid order. This is the slice a crash loses and a checkpoint covers. *)

val home_free_list : t -> pe:int -> Vid.t list
(** [pe]'s home free list, in pop order (LIFO: last element pops first on
    the partitioned path). *)

val iter_home_free : t -> pe:int -> (Vid.t -> unit) -> unit
(** Visit [pe]'s home free list in the same order as {!home_free_list},
    without allocating it — the per-step checkpoint-sync form. *)

val set_home_free_list : t -> pe:int -> Vid.t list -> unit
(** Overwrite [pe]'s home free list (crash-recovery restore). Partitioned
    graphs only; raises [Invalid_argument] otherwise. Vertex [free] flags
    are the caller's responsibility. *)

val grow_home : t -> pe:int -> Vid.t
(** Append one fresh free slot to [pe]'s striped segment (without putting
    it on the free list) and return its vid — the next vid [alloc] would
    have created for that home. Lets a checkpoint restore rebuild a
    segment inside a fresh graph. Partitioned graphs only. *)

val iter_live : (Vertex.t -> unit) -> t -> unit

val iter_all : (Vertex.t -> unit) -> t -> unit

val live_vids : t -> Vid.t list

val fold_live : ('a -> Vertex.t -> 'a) -> 'a -> t -> 'a

val reset_plane : t -> Plane.id -> unit
(** Unmark every vertex's plane (between marking cycles) and bump
    {!wave}. O(storage chunks), not O(vertices): the plane columns carry
    per-chunk epochs and stale slots read as pristine, so the reset is a
    counter bump and the old wave's bits become invisible instantly. *)

val releases : t -> int
(** Cumulative number of [release] calls. *)
