type vertex = {
  id : Vid.t;
  label : Label.t;
  args : Vid.t list;
  req_v : Vid.t list;
  req_e : Vid.t list;
  requested : Vertex.request_entry list;
  free : bool;
  pe : int;
  mr_color : Plane.color;
  mr_prior : int;
  mt_color : Plane.color;
}

(* [verts] holds every vertex in ascending vid order. Partitioned graphs
   stripe fresh vids across homes, so the vid space can have gaps;
   [index] maps a vid to its position (or -1). *)
type t = { root : Vid.t option; verts : vertex array; index : int array }

let snap_vertex (v : Vertex.t) =
  {
    id = (Vertex.id v);
    label = (Vertex.label v);
    args = Vertex.args v;
    req_v = (Vertex.req_v v);
    req_e = (Vertex.req_e v);
    requested = (Vertex.requested v);
    free = (Vertex.free v);
    pe = (Vertex.pe v);
    mr_color = Plane.color (Vertex.mr v);
    mr_prior = Plane.prior (Vertex.mr v);
    mt_color = Plane.color (Vertex.mt v);
  }

let take g =
  let acc = ref [] in
  Graph.iter_all (fun v -> acc := snap_vertex v :: !acc) g;
  let verts = Array.of_list (List.rev !acc) in
  let max_vid = Array.fold_left (fun m v -> Int.max m v.id) (-1) verts in
  let index = Array.make (max_vid + 1) (-1) in
  Array.iteri (fun i v -> index.(v.id) <- i) verts;
  let root = if Graph.has_root g then Some (Graph.root g) else None in
  { root; verts; index }

let vertex t v =
  if v < 0 || v >= Array.length t.index || t.index.(v) < 0 then
    invalid_arg (Printf.sprintf "Snapshot.vertex: unknown vertex v%d" v);
  t.verts.(t.index.(v))

let size t = Array.length t.verts

let live t = Array.to_list t.verts |> List.filter (fun v -> not v.free)

let free_set t =
  Array.fold_left (fun acc v -> if v.free then Vid.Set.add v.id acc else acc) Vid.Set.empty
    t.verts
