(** Programmatic and random graph construction.

    Builders bypass the cooperating mutator primitives (there is no marking
    in progress while a graph is being set up), wiring [args] directly.
    Random graphs are used by the marking unit tests, the property tests
    and experiment E3. *)

val add : ?pe:int -> Graph.t -> Label.t -> Vid.t list -> Vid.t
(** [add g label args] allocates a vertex, connects it to [args] in order
    and returns its id. *)

val add_root : ?pe:int -> Graph.t -> Label.t -> Vid.t list -> Vid.t
(** Like [add], then [Graph.set_root]. *)

val int_list : Graph.t -> int list -> Vid.t
(** Build a cons-list of integer vertices; returns the head vertex ([Nil]
    for the empty list). *)

val chain : Graph.t -> int -> Vid.t
(** [chain g n] builds a linear chain of [n] [Ind] vertices ending in an
    [Int 0]; returns the head. [n >= 1]. *)

val binary_tree : Graph.t -> depth:int -> Vid.t
(** Complete binary tree of [Prim Add] internal vertices with [Int] leaves. *)

val cycle : Graph.t -> int -> Vid.t
(** [cycle g n] builds a ring of [n] [Ind] vertices (self-referencing
    garbage candidate). Returns one member. *)

type random_spec = {
  live : int;  (** vertices reachable from the root *)
  garbage : int;  (** vertices in unreachable components *)
  free_pool : int;  (** extra vertices preallocated on the free list *)
  avg_degree : float;  (** mean out-degree of live vertices *)
  cycle_bias : float;  (** probability that an edge targets an ancestor *)
}

val random : ?num_pes:int -> Dgr_util.Rng.t -> random_spec -> Graph.t
(** A rooted random graph: [live] vertices reachable from the root (a
    spanning structure guarantees reachability, extra edges are random,
    possibly cyclic), plus [garbage] unreachable vertices forming random
    (possibly cyclic) clusters, plus a free pool. Labels are arbitrary
    non-WHNF placeholders; this generator feeds marking tests, which care
    only about connectivity. [num_pes] (default 1) spreads allocation
    round-robin across PEs, so distributed-machine tests exercise remote
    edges. *)

val random_with_requests : ?num_pes:int -> Dgr_util.Rng.t -> random_spec -> Graph.t
(** Like [random] but additionally promotes a random subset of edges to
    vital/eager request status and installs random [requested] back-edges,
    so that R_v / R_e / R_r / T are all non-trivial. *)
