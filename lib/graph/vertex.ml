type requester = Vid.t option

type request_entry = { who : requester; demand : Demand.t; key : Vid.t }

(* The argument list, as an immutable pair: the normalized prefix [fwd]
   plus a reversed tail of recent appends. [connect] prepends onto
   [rtail] in O(1); readers normalize ([fwd @ rev rtail]) lazily and
   cache the result back, so a burst of n appends costs O(n) total
   instead of the O(n²) of repeated [l @ [c]]. Both fields live in one
   immutable record behind a single mutable field: a concurrent reader
   racing a (re-)normalization can only ever observe a consistent pair,
   and re-normalizing twice writes structurally equal values. *)
type args_cell = { fwd : Vid.t list; rtail : Vid.t list }

type t = {
  id : Vid.t;
  mutable argc : args_cell;
  mutable label : Label.t;
  mutable req_v : Vid.t list;
  mutable req_e : Vid.t list;
  mutable requested : request_entry list;
  mutable recv : (Vid.t * Label.value) list;
  mutable pe : int;
  mutable free : bool;
  mutable birth : int;
  mutable sched_prior : int;
  mr : Plane.t;
  mt : Plane.t;
}

let create id ~pe label =
  {
    id;
    label;
    argc = { fwd = []; rtail = [] };
    req_v = [];
    req_e = [];
    requested = [];
    recv = [];
    pe;
    free = false;
    birth = 0;
    sched_prior = 0;
    mr = Plane.create ();
    mt = Plane.create ();
  }

let plane t = function Plane.MR -> t.mr | Plane.MT -> t.mt

let args t =
  match t.argc with
  | { fwd; rtail = [] } -> fwd
  | { fwd; rtail } ->
    let all = fwd @ List.rev rtail in
    t.argc <- { fwd = all; rtail = [] };
    all

let set_args t l = t.argc <- { fwd = l; rtail = [] }

let connect t c = t.argc <- { t.argc with rtail = c :: t.argc.rtail }

let has_arg t c =
  List.exists (Vid.equal c) t.argc.fwd || List.exists (Vid.equal c) t.argc.rtail

let arg_count t = List.length t.argc.fwd + List.length t.argc.rtail

let remove_one x l =
  let rec loop acc = function
    | [] -> List.rev acc
    | y :: rest -> if Vid.equal x y then List.rev_append acc rest else loop (y :: acc) rest
  in
  loop [] l

let remove_all x l = List.filter (fun y -> not (Vid.equal x y)) l

let disconnect t c =
  set_args t (remove_one c (args t));
  (* req-args must remain subsets of args: drop the request record only if
     no occurrence of [c] remains among the args. *)
  if not (has_arg t c) then begin
    t.req_v <- remove_all c t.req_v;
    t.req_e <- remove_all c t.req_e
  end

let req_args t = t.req_v @ t.req_e

let unrequested_args t =
  let requested = req_args t in
  List.filter (fun c -> not (List.exists (Vid.equal c) requested)) (args t)

let request_arg t c demand =
  let in_v = List.exists (Vid.equal c) t.req_v in
  let in_e = List.exists (Vid.equal c) t.req_e in
  match demand with
  | Demand.Vital ->
    if not in_v then begin
      t.req_v <- c :: t.req_v;
      if in_e then t.req_e <- remove_all c t.req_e
    end
  | Demand.Eager -> if (not in_v) && not in_e then t.req_e <- c :: t.req_e

let drop_request t c =
  t.req_v <- remove_all c t.req_v;
  t.req_e <- remove_all c t.req_e

let request_type t c =
  if List.exists (Vid.equal c) t.req_v then 3
  else if List.exists (Vid.equal c) t.req_e then 2
  else 1

let requester_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Vid.equal x y
  | None, Some _ | Some _, None -> false

let add_requester t r ~demand ~key =
  if
    List.exists
      (fun e -> requester_equal r e.who && Vid.equal key e.key)
      t.requested
  then begin
    let upgrade e =
      if
        requester_equal r e.who && Vid.equal key e.key
        && Demand.equal e.demand Demand.Eager
        && Demand.equal demand Demand.Vital
      then { e with demand = Demand.Vital }
      else e
    in
    t.requested <- List.map upgrade t.requested
  end
  else t.requested <- { who = r; demand; key } :: t.requested

let remove_requester t r =
  t.requested <- List.filter (fun e -> not (requester_equal r e.who)) t.requested

let has_requester t r = List.exists (fun e -> requester_equal r e.who) t.requested

let has_request_entry t r key =
  List.exists (fun e -> requester_equal r e.who && Vid.equal key e.key) t.requested

let record_value t ~from value =
  if not (List.exists (fun (c, _) -> Vid.equal c from) t.recv) then
    t.recv <- (from, value) :: t.recv

let value_from t c =
  List.find_map (fun (c', v) -> if Vid.equal c c' then Some v else None) t.recv

let clear_reduction_state t = t.recv <- []

let reset_for_free t =
  t.label <- Label.Freed;
  set_args t [];
  t.req_v <- [];
  t.req_e <- [];
  t.requested <- [];
  t.recv <- [];
  t.free <- true;
  t.sched_prior <- 0;
  Plane.reset t.mr;
  Plane.reset t.mt

let pp fmt t =
  let pp_vids = Fmt.(list ~sep:comma Vid.pp) in
  Format.fprintf fmt "@[<h>%a[%a] pe=%d args=[%a] req_v=[%a] req_e=[%a] requested=%d%s@]" Vid.pp
    t.id Label.pp t.label t.pe pp_vids (args t) pp_vids t.req_v pp_vids t.req_e
    (List.length t.requested)
    (if t.free then " FREE" else "")
