type requester = Vid.t option

type request_entry = { who : requester; demand : Demand.t; key : Vid.t }

(* Struct-of-arrays vertex storage. The fixed-width per-vertex state
   (label, pe, free, birth, sched_prior, and the two marking planes)
   lives in parallel columns, one column set per storage chunk; chunks
   never move once allocated (see [Graph.Seg]), so handles can cache the
   column arrays directly and a concurrent reader can never observe a
   half-copied backing store.

   The variable-width state — args, the two req-args sets, the requester
   table and the received-values table — is paged: each slot owns flat
   int rows that grow by doubling and are *recycled with the slot* (the
   free list returns the slot with its row capacity intact), so steady
   state churn allocates nothing.

   Row order conventions (these encode the exact semantics of the old
   list representation, which the golden traces depend on):
   - [args] rows are kept in append order — identical to the old
     normalized [fwd @ rev rtail] order; removal takes the *first*
     occurrence and compacts in place.
   - [req_v]/[req_e]/[requested]/[recv] rows are kept in append order
     but *viewed newest-first* (the old lists prepended), so list views
     and iterators walk the rows backwards. In-place filters compact
     without reordering, matching [List.filter] on the old lists. *)
type cols = {
  label : Label.t array;
  pe : int array;
  birth : int array;
  sprior : int array;
  (* seed-stamp: the Graph wave number that last added this vertex to an
     M_T seed set. Compared against the graph's current wave for O(1)
     per-wave dedup of the per-PE taskroot construction; deliberately
     excluded from checkpoints — the wave counter never decreases, so a
     stale stamp can only cause a harmless re-seed, never a miss. *)
  stamp : int array;
  free : Bytes.t;
  mrc : Plane.cols;
  mtc : Plane.cols;
}

type t = {
  id : Vid.t;
  c : cols;
  off : int;
  mr : Plane.t;
  mt : Plane.t;
  (* args: ordered data-dependency children, append order *)
  mutable args_a : int array;
  mutable args_n : int;
  (* req-args_v / req-args_e: disjoint subsets of args, append order *)
  mutable reqv_a : int array;
  mutable reqv_n : int;
  mutable reqe_a : int array;
  mutable reqe_n : int;
  (* requested: stride-3 triples [who; demand; key], who = -1 for the
     external requester, demand = 0 eager / 1 vital; rq_n counts entries *)
  mutable rq_a : int array;
  mutable rq_n : int;
  (* recv: from-vids with a parallel array of received values *)
  mutable recv_a : int array;
  mutable recv_n : int;
  mutable recv_v : Label.value array;
}

let make_cols n =
  {
    label = Array.make n Label.Freed;
    pe = Array.make n 0;
    birth = Array.make n 0;
    sprior = Array.make n 0;
    stamp = Array.make n 0;
    free = Bytes.make n '\000';
    mrc = Plane.make_cols n;
    mtc = Plane.make_cols n;
  }

let empty_cols = make_cols 0

let reset_plane_cols c = function
  | Plane.MR -> Plane.reset_cols c.mrc
  | Plane.MT -> Plane.reset_cols c.mtc

let empty_row = [||]

let attach id ~off c ~pe label =
  c.label.(off) <- label;
  c.pe.(off) <- pe;
  c.birth.(off) <- 0;
  c.sprior.(off) <- 0;
  c.stamp.(off) <- 0;
  Bytes.set c.free off '\000';
  {
    id;
    c;
    off;
    mr = Plane.handle c.mrc off;
    mt = Plane.handle c.mtc off;
    args_a = empty_row;
    args_n = 0;
    reqv_a = empty_row;
    reqv_n = 0;
    reqe_a = empty_row;
    reqe_n = 0;
    rq_a = empty_row;
    rq_n = 0;
    recv_a = empty_row;
    recv_n = 0;
    recv_v = [||];
  }

let create id ~pe label = attach id ~off:0 (make_cols 1) ~pe label

(* --- scalar columns --------------------------------------------------- *)

let id t = t.id

let label t = Array.unsafe_get t.c.label t.off

let set_label t l = Array.unsafe_set t.c.label t.off l

let pe t = Array.unsafe_get t.c.pe t.off

let set_pe t p = Array.unsafe_set t.c.pe t.off p

let birth t = Array.unsafe_get t.c.birth t.off

let set_birth t b = Array.unsafe_set t.c.birth t.off b

let free t = Bytes.unsafe_get t.c.free t.off <> '\000'

let set_free t b = Bytes.unsafe_set t.c.free t.off (if b then '\001' else '\000')

let sched_prior t = Array.unsafe_get t.c.sprior t.off

let set_sched_prior t p = Array.unsafe_set t.c.sprior t.off p

let seed_stamp t = Array.unsafe_get t.c.stamp t.off

let set_seed_stamp t s = Array.unsafe_set t.c.stamp t.off s

let mr t = t.mr

let mt t = t.mt

let plane t = function Plane.MR -> t.mr | Plane.MT -> t.mt

(* --- row plumbing ----------------------------------------------------- *)

(* Return a row with index [n] writable, doubling (and copying the live
   prefix) when the current capacity is exhausted. *)
let grown a n =
  let cap = Array.length a in
  if n < cap then a
  else begin
    let a' = Array.make (Int.max 4 (Int.max (n + 1) (2 * cap))) 0 in
    Array.blit a 0 a' 0 cap;
    a'
  end

let row_mem a n c =
  let rec scan i = i < n && (Vid.equal (Array.unsafe_get a i) c || scan (i + 1)) in
  scan 0

(* Drop every occurrence of [c], compacting in place; returns the new
   length. Preserves the order of the survivors. *)
let row_remove_all a n c =
  let j = ref 0 in
  for i = 0 to n - 1 do
    let x = Array.unsafe_get a i in
    if not (Vid.equal x c) then begin
      Array.unsafe_set a !j x;
      incr j
    end
  done;
  !j

(* --- args ------------------------------------------------------------- *)

let connect t c =
  t.args_a <- grown t.args_a t.args_n;
  Array.unsafe_set t.args_a t.args_n c;
  t.args_n <- t.args_n + 1

let has_arg t c = row_mem t.args_a t.args_n c

let arg_count t = t.args_n

let arg t i =
  if i < 0 || i >= t.args_n then invalid_arg "Vertex.arg: index out of bounds";
  t.args_a.(i)

let iter_args t f =
  for i = 0 to t.args_n - 1 do
    f (Array.unsafe_get t.args_a i)
  done

let args t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.args_a.(i) :: acc) in
  build (t.args_n - 1) []

let set_args t l =
  t.args_n <- 0;
  List.iter (connect t) l

let disconnect t c =
  (* remove the first occurrence of [c] *)
  let n = t.args_n in
  let i = ref 0 in
  while !i < n && not (Vid.equal t.args_a.(!i) c) do
    incr i
  done;
  if !i < n then begin
    Array.blit t.args_a (!i + 1) t.args_a !i (n - !i - 1);
    t.args_n <- n - 1
  end;
  (* req-args must remain subsets of args: drop the request record only if
     no occurrence of [c] remains among the args. *)
  if not (has_arg t c) then begin
    t.reqv_n <- row_remove_all t.reqv_a t.reqv_n c;
    t.reqe_n <- row_remove_all t.reqe_a t.reqe_n c
  end

(* --- req-args --------------------------------------------------------- *)

let req_v t =
  let acc = ref [] in
  for i = 0 to t.reqv_n - 1 do
    acc := t.reqv_a.(i) :: !acc
  done;
  !acc

let req_e t =
  let acc = ref [] in
  for i = 0 to t.reqe_n - 1 do
    acc := t.reqe_a.(i) :: !acc
  done;
  !acc

let req_args t = req_v t @ req_e t

let req_count t = t.reqv_n + t.reqe_n

let is_req_arg t c = row_mem t.reqv_a t.reqv_n c || row_mem t.reqe_a t.reqe_n c

let iter_unrequested_args t f =
  for i = 0 to t.args_n - 1 do
    let c = Array.unsafe_get t.args_a i in
    if not (is_req_arg t c) then f c
  done

let unrequested_args t =
  let acc = ref [] in
  for i = t.args_n - 1 downto 0 do
    let c = t.args_a.(i) in
    if not (is_req_arg t c) then acc := c :: !acc
  done;
  !acc

let request_arg t c demand =
  let in_v = row_mem t.reqv_a t.reqv_n c in
  let in_e = row_mem t.reqe_a t.reqe_n c in
  match demand with
  | Demand.Vital ->
    if not in_v then begin
      t.reqv_a <- grown t.reqv_a t.reqv_n;
      t.reqv_a.(t.reqv_n) <- c;
      t.reqv_n <- t.reqv_n + 1;
      if in_e then t.reqe_n <- row_remove_all t.reqe_a t.reqe_n c
    end
  | Demand.Eager ->
    if (not in_v) && not in_e then begin
      t.reqe_a <- grown t.reqe_a t.reqe_n;
      t.reqe_a.(t.reqe_n) <- c;
      t.reqe_n <- t.reqe_n + 1
    end

let drop_request t c =
  t.reqv_n <- row_remove_all t.reqv_a t.reqv_n c;
  t.reqe_n <- row_remove_all t.reqe_a t.reqe_n c

let request_type t c =
  if row_mem t.reqv_a t.reqv_n c then 3 else if row_mem t.reqe_a t.reqe_n c then 2 else 1

(* --- requested -------------------------------------------------------- *)

let who_code = function None -> -1 | Some v -> v

let who_of_code w = if w < 0 then None else Some w

let demand_code = function Demand.Eager -> 0 | Demand.Vital -> 1

let demand_of_code d = if d = 0 then Demand.Eager else Demand.Vital

let requested_count t = t.rq_n

let requested t =
  let acc = ref [] in
  for i = 0 to t.rq_n - 1 do
    acc :=
      {
        who = who_of_code t.rq_a.(3 * i);
        demand = demand_of_code t.rq_a.((3 * i) + 1);
        key = t.rq_a.((3 * i) + 2);
      }
      :: !acc
  done;
  !acc

let blit_requests t dst =
  Array.blit t.rq_a 0 dst 0 (3 * t.rq_n);
  t.rq_n

(* Newest-first, like the old list; external (None) entries are skipped. *)
let iter_requesters t f =
  for i = t.rq_n - 1 downto 0 do
    let w = Array.unsafe_get t.rq_a (3 * i) in
    if w >= 0 then f w
  done

let add_requester t r ~demand ~key =
  let w = who_code r in
  let found = ref false in
  for i = 0 to t.rq_n - 1 do
    if t.rq_a.(3 * i) = w && Vid.equal t.rq_a.((3 * i) + 2) key then begin
      found := true;
      (* a vital request upgrades an existing eager entry; never downgrades *)
      if demand_code demand = 1 then t.rq_a.((3 * i) + 1) <- 1
    end
  done;
  if not !found then begin
    t.rq_a <- grown t.rq_a ((3 * t.rq_n) + 2);
    t.rq_a.(3 * t.rq_n) <- w;
    t.rq_a.((3 * t.rq_n) + 1) <- demand_code demand;
    t.rq_a.((3 * t.rq_n) + 2) <- key;
    t.rq_n <- t.rq_n + 1
  end

let rq_filter t keep =
  let j = ref 0 in
  for i = 0 to t.rq_n - 1 do
    if keep t.rq_a.(3 * i) t.rq_a.((3 * i) + 1) t.rq_a.((3 * i) + 2) then begin
      if !j < i then begin
        t.rq_a.(3 * !j) <- t.rq_a.(3 * i);
        t.rq_a.((3 * !j) + 1) <- t.rq_a.((3 * i) + 1);
        t.rq_a.((3 * !j) + 2) <- t.rq_a.((3 * i) + 2)
      end;
      incr j
    end
  done;
  t.rq_n <- !j

let remove_requester t r =
  let w = who_code r in
  rq_filter t (fun w' _ _ -> w' <> w)

let retain_requesters t keep = rq_filter t (fun w _ _ -> w < 0 || keep w)

let has_requester t r =
  let w = who_code r in
  let rec scan i = i < t.rq_n && (t.rq_a.(3 * i) = w || scan (i + 1)) in
  scan 0

let has_request_entry t r key =
  let w = who_code r in
  let rec scan i =
    i < t.rq_n && ((t.rq_a.(3 * i) = w && Vid.equal t.rq_a.((3 * i) + 2) key) || scan (i + 1))
  in
  scan 0

let clear_requesters t = t.rq_n <- 0

let has_vital_requester t =
  let rec scan i = i < t.rq_n && (t.rq_a.((3 * i) + 1) = 1 || scan (i + 1)) in
  scan 0

(* --- recv ------------------------------------------------------------- *)

let record_value t ~from value =
  if not (row_mem t.recv_a t.recv_n from) then begin
    t.recv_a <- grown t.recv_a t.recv_n;
    (if Array.length t.recv_v < Array.length t.recv_a then begin
       let v' = Array.make (Array.length t.recv_a) Label.V_nil in
       Array.blit t.recv_v 0 v' 0 t.recv_n;
       t.recv_v <- v'
     end);
    t.recv_a.(t.recv_n) <- from;
    t.recv_v.(t.recv_n) <- value;
    t.recv_n <- t.recv_n + 1
  end

let value_from t c =
  let rec scan i =
    if i >= t.recv_n then None
    else if Vid.equal t.recv_a.(i) c then Some t.recv_v.(i)
    else scan (i + 1)
  in
  scan 0

let has_value t c = row_mem t.recv_a t.recv_n c

let recv t =
  let acc = ref [] in
  for i = 0 to t.recv_n - 1 do
    acc := (t.recv_a.(i), t.recv_v.(i)) :: !acc
  done;
  !acc

let clear_reduction_state t = t.recv_n <- 0

(* --- lifecycle -------------------------------------------------------- *)

let reset_for_free t =
  set_label t Label.Freed;
  t.args_n <- 0;
  t.reqv_n <- 0;
  t.reqe_n <- 0;
  t.rq_n <- 0;
  t.recv_n <- 0;
  set_free t true;
  set_sched_prior t 0;
  Plane.reset t.mr;
  Plane.reset t.mt

(* --- checkpointing ---------------------------------------------------- *)

(* A flat boxed copy of one slot's full state; the checkpoint layer
   compares and restores through this so it never sees the row layout. *)
module Cells = struct
  (* Row arrays are sized exactly to the captured prefix ([matches] and
     [restore] take Array.length as the row length), and fields are
     mutable so [recapture] can refresh a stale shot in place. *)
  type shot = {
    mutable s_label : Label.t;
    mutable s_pe : int;
    mutable s_free : bool;
    mutable s_birth : int;
    mutable s_sprior : int;
    mutable s_args : int array;
    mutable s_reqv : int array;
    mutable s_reqe : int array;
    mutable s_rq : int array;
    mutable s_recv : int array;
    mutable s_recv_v : Label.value array;
    s_mr : Plane.shot;
    s_mt : Plane.shot;
  }

  let capture t =
    {
      s_label = label t;
      s_pe = pe t;
      s_free = free t;
      s_birth = birth t;
      s_sprior = sched_prior t;
      s_args = Array.sub t.args_a 0 t.args_n;
      s_reqv = Array.sub t.reqv_a 0 t.reqv_n;
      s_reqe = Array.sub t.reqe_a 0 t.reqe_n;
      s_rq = Array.sub t.rq_a 0 (3 * t.rq_n);
      s_recv = Array.sub t.recv_a 0 t.recv_n;
      s_recv_v = Array.sub t.recv_v 0 t.recv_n;
      s_mr = Plane.capture t.mr;
      s_mt = Plane.capture t.mt;
    }

  (* Refresh one captured row: reuse the shot's array when the live
     prefix has the same length (the common case — most churn rewrites
     values, not arity), else size a fresh exact-length copy. *)
  let cap_row s a n =
    if Array.length s = n then begin
      Array.blit a 0 s 0 n;
      s
    end
    else Array.sub a 0 n

  let recapture s t =
    s.s_label <- label t;
    s.s_pe <- pe t;
    s.s_free <- free t;
    s.s_birth <- birth t;
    s.s_sprior <- sched_prior t;
    s.s_args <- cap_row s.s_args t.args_a t.args_n;
    s.s_reqv <- cap_row s.s_reqv t.reqv_a t.reqv_n;
    s.s_reqe <- cap_row s.s_reqe t.reqe_a t.reqe_n;
    s.s_rq <- cap_row s.s_rq t.rq_a (3 * t.rq_n);
    s.s_recv <- cap_row s.s_recv t.recv_a t.recv_n;
    (s.s_recv_v <-
       (if Array.length s.s_recv_v = t.recv_n then begin
          Array.blit t.recv_v 0 s.s_recv_v 0 t.recv_n;
          s.s_recv_v
        end
        else Array.sub t.recv_v 0 t.recv_n));
    Plane.recapture s.s_mr t.mr;
    Plane.recapture s.s_mt t.mt

  (* Loop-based row comparisons: [matches] runs for every checkpointed
     slot on every sync, so the scans are plain while-loops (a nested
     [let rec] would allocate its closure per row per call). *)
  let row_matches s a n =
    Array.length s = n
    &&
    begin
      let i = ref 0 in
      while !i < n && s.(!i) = Array.unsafe_get a !i do
        incr i
      done;
      !i >= n
    end

  let matches s t =
    Label.equal s.s_label (label t)
    && s.s_pe = pe t && s.s_free = free t && s.s_birth = birth t
    && s.s_sprior = sched_prior t
    && Plane.matches s.s_mr t.mr && Plane.matches s.s_mt t.mt
    && row_matches s.s_args t.args_a t.args_n
    && row_matches s.s_reqv t.reqv_a t.reqv_n
    && row_matches s.s_reqe t.reqe_a t.reqe_n
    && row_matches s.s_rq t.rq_a (3 * t.rq_n)
    && row_matches s.s_recv t.recv_a t.recv_n
    &&
    begin
      let i = ref 0 in
      while !i < t.recv_n && Label.equal_value s.s_recv_v.(!i) t.recv_v.(!i) do
        incr i
      done;
      !i >= t.recv_n
    end

  let restore_row t a n =
    let dst = if Array.length a >= n then a else Array.make (Int.max 4 n) 0 in
    Array.blit t 0 dst 0 n;
    dst

  let restore s t =
    set_label t s.s_label;
    set_pe t s.s_pe;
    set_free t s.s_free;
    set_birth t s.s_birth;
    set_sched_prior t s.s_sprior;
    t.args_a <- restore_row s.s_args t.args_a (Array.length s.s_args);
    t.args_n <- Array.length s.s_args;
    t.reqv_a <- restore_row s.s_reqv t.reqv_a (Array.length s.s_reqv);
    t.reqv_n <- Array.length s.s_reqv;
    t.reqe_a <- restore_row s.s_reqe t.reqe_a (Array.length s.s_reqe);
    t.reqe_n <- Array.length s.s_reqe;
    t.rq_a <- restore_row s.s_rq t.rq_a (Array.length s.s_rq);
    t.rq_n <- Array.length s.s_rq / 3;
    t.recv_a <- restore_row s.s_recv t.recv_a (Array.length s.s_recv);
    t.recv_n <- Array.length s.s_recv;
    (if Array.length t.recv_v < t.recv_n then t.recv_v <- Array.make (Int.max 4 t.recv_n) Label.V_nil);
    Array.blit s.s_recv_v 0 t.recv_v 0 t.recv_n;
    Plane.restore s.s_mr t.mr;
    Plane.restore s.s_mt t.mt
end

(* --- introspection (tests) -------------------------------------------- *)

let args_capacity t = Array.length t.args_a

let pp fmt t =
  let pp_vids = Fmt.(list ~sep:comma Vid.pp) in
  Format.fprintf fmt "@[<h>%a[%a] pe=%d args=[%a] req_v=[%a] req_e=[%a] requested=%d%s@]"
    Vid.pp t.id Label.pp (label t) (pe t) pp_vids (args t) pp_vids (req_v t) pp_vids
    (req_e t) t.rq_n
    (if free t then " FREE" else "")
