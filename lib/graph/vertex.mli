(** Vertices of the computation graph.

    Each vertex carries the edge sets of the paper's abstract model (§2.1):

    - [args v]: ordered data-dependency children;
    - [req-args_v v] / [req-args_e v]: the disjoint subsets of [args]
      whose values have been vitally / eagerly requested by [v];
    - [requested v]: the vertices that have requested [v]'s value and not
      yet been answered (each recorded with the demand kind, plus [None]
      for the distinguished initial task [<-,root>]).

    It also carries the reduction engine's per-vertex bookkeeping (values
    received so far) and the two marking planes. Mutations of [args] must
    go through the cooperating mutator primitives in [Dgr_core.Mutator];
    the raw [connect]/[disconnect] operations here are the paper's
    non-cooperating graph edits. *)

type requester = Vid.t option
(** [None] is the external origin of the initial task [<-,root>]. *)

type request_entry = {
  who : requester;
  demand : Demand.t;
  key : Vid.t;
      (** the requester's own arg this request resolves (tasks carry it as
          correlation state; see [Dgr_task.Task]) *)
}

type args_cell
(** The argument list behind one mutable field: a normalized prefix plus
    a reversed tail of recent O(1) appends, re-normalized lazily by
    {!args}. Abstract so every reader goes through the accessor. *)

type t = {
  id : Vid.t;
  mutable argc : args_cell;
      (** access through {!args}/{!has_arg}/{!arg_count} *)
  mutable label : Label.t;
  mutable req_v : Vid.t list;
  mutable req_e : Vid.t list;
  mutable requested : request_entry list;
  mutable recv : (Vid.t * Label.value) list;
      (** values already returned by requested children, keyed by child *)
  mutable pe : int;  (** owning processing element *)
  mutable free : bool;  (** true while the vertex sits on the free list *)
  mutable birth : int;
      (** the graph epoch (engine step) this slot was last allocated in;
          the ownership checker exempts same-epoch vertices, which only
          their allocating PE can reach *)
  mutable sched_prior : int;
      (** last priority assigned by a completed M_R cycle (3 = vital, 2 =
          eager, 1 = reserve); 0 until first classified. Survives plane
          resets so PE pools can order tasks between cycles (§3.2). *)
  mr : Plane.t;
  mt : Plane.t;
}

val create : Vid.t -> pe:int -> Label.t -> t

val plane : t -> Plane.id -> Plane.t

val args : t -> Vid.t list
(** The ordered data-dependency children. Amortized O(1): normalizes and
    caches pending appends on first read. *)

val set_args : t -> Vid.t list -> unit

val has_arg : t -> Vid.t -> bool
(** Membership in [args] without forcing normalization. *)

val arg_count : t -> int

val connect : t -> Vid.t -> unit
(** Append a child to [args] (paper's [connect(a,b)]); duplicates allowed —
    [args] is a multiset in the presence of e.g. [x + x]. O(1). *)

val disconnect : t -> Vid.t -> unit
(** Remove one occurrence of the child from [args] and from any [req-args]
    set it appears in (paper's [disconnect(a,b)]). No-op if absent. *)

val req_args : t -> Vid.t list
(** [req_v @ req_e] — the paper's req-args(v). *)

val unrequested_args : t -> Vid.t list
(** args(v) − req-args(v): children not yet demanded (reserve paths). *)

val request_arg : t -> Vid.t -> Demand.t -> unit
(** Record that [v] demanded a child with the given kind. Upgrades an
    eager record to vital when re-requested vitally; never downgrades. *)

val drop_request : t -> Vid.t -> unit
(** Remove a child from both req-args sets (dereference, §3.2) — the child
    stays in [args] unless also disconnected. *)

val request_type : t -> Vid.t -> int
(** The paper's [request-type(c,v)] (Fig 5-1): 3 if [c] is vitally
    requested by [v], 2 if eagerly requested, 1 otherwise. *)

val add_requester : t -> requester -> demand:Demand.t -> key:Vid.t -> unit
(** Add to [requested v]. Entries are identified by [(who, key)] — the
    same requester may legitimately await [v] through two different args.
    A vital request upgrades an existing eager entry. *)

val remove_requester : t -> requester -> unit
(** Remove every entry of this requester (it dereferenced [v], or was
    answered on all its keys). *)

val has_requester : t -> requester -> bool

val has_request_entry : t -> requester -> Vid.t -> bool
(** Entry-level membership (same [(who, key)] identity as
    [add_requester]). *)

val record_value : t -> from:Vid.t -> Label.value -> unit

val value_from : t -> Vid.t -> Label.value option

val clear_reduction_state : t -> unit
(** Reset [recv] (used when a vertex is re-expanded or freed). *)

val reset_for_free : t -> unit
(** Wipe every field for return to the free list. *)

val pp : Format.formatter -> t -> unit
