(** Vertices of the computation graph.

    Each vertex carries the edge sets of the paper's abstract model (§2.1):

    - [args v]: ordered data-dependency children;
    - [req-args_v v] / [req-args_e v]: the disjoint subsets of [args]
      whose values have been vitally / eagerly requested by [v];
    - [requested v]: the vertices that have requested [v]'s value and not
      yet been answered (each recorded with the demand kind, plus [None]
      for the distinguished initial task [<-,root>]).

    It also carries the reduction engine's per-vertex bookkeeping (values
    received so far) and the two marking planes.

    {!t} is an opaque handle into a struct-of-arrays store: fixed-width
    state (label, pe, free, birth, sched_prior, planes) lives in parallel
    columns owned by the graph's storage chunks; the variable-width edge
    sets live in flat per-slot rows that are recycled — capacity intact —
    when the slot returns to the free list. All access goes through the
    accessors and iterators below; the [iter_*] forms do not allocate.

    Mutations of [args] must go through the cooperating mutator
    primitives in [Dgr_core.Mutator]; the raw [connect]/[disconnect]
    operations here are the paper's non-cooperating graph edits. *)

type requester = Vid.t option
(** [None] is the external origin of the initial task [<-,root>]. *)

type request_entry = {
  who : requester;
  demand : Demand.t;
  key : Vid.t;
      (** the requester's own arg this request resolves (tasks carry it as
          correlation state; see [Dgr_task.Task]) *)
}

type t
(** An opaque vertex handle: column set + slot offset + the slot's rows.
    Handles are allocated once per slot and alias the store — copying one
    is cheap and never copies state. *)

(** {1 Store plumbing (used by [Graph])} *)

type cols
(** One storage chunk's fixed-width columns (including both plane column
    sets). *)

val make_cols : int -> cols
(** Pristine columns for [n] slots. *)

val empty_cols : cols

val reset_plane_cols : cols -> Plane.id -> unit
(** Column-wise bulk reset of one plane over a whole chunk. *)

val attach : Vid.t -> off:int -> cols -> pe:int -> Label.t -> t
(** Bind a fresh handle to slot [off] of a chunk, labelling it and
    assigning its PE. Rows start empty. *)

val create : Vid.t -> pe:int -> Label.t -> t
(** A standalone vertex backed by its own single-slot chunk (tests). *)

(** {1 Scalar state} *)

val id : t -> Vid.t

val label : t -> Label.t

val set_label : t -> Label.t -> unit

val pe : t -> int
(** Owning processing element. *)

val set_pe : t -> int -> unit

val free : t -> bool
(** True while the vertex sits on the free list. *)

val set_free : t -> bool -> unit

val birth : t -> int
(** The graph epoch (engine step) this slot was last allocated in; the
    ownership checker exempts same-epoch vertices, which only their
    allocating PE can reach. *)

val set_birth : t -> int -> unit

val sched_prior : t -> int
(** Last priority assigned by a completed M_R cycle (3 = vital, 2 =
    eager, 1 = reserve); 0 until first classified. Survives plane resets
    so PE pools can order tasks between cycles (§3.2). *)

val set_sched_prior : t -> int -> unit

val seed_stamp : t -> int
(** The graph wave number that last added this vertex to an M_T seed
    set; compared against [Graph.wave] for O(1) per-wave seed dedup.
    Not checkpointed — the wave counter never decreases, so a stale
    stamp can only cause a harmless duplicate seed check. *)

val set_seed_stamp : t -> int -> unit

val mr : t -> Plane.t

val mt : t -> Plane.t

val plane : t -> Plane.id -> Plane.t

(** {1 args} *)

val args : t -> Vid.t list
(** The ordered data-dependency children, as a freshly built list — cold
    paths only; hot paths use {!iter_args}/{!arg}. *)

val set_args : t -> Vid.t list -> unit

val iter_args : t -> (Vid.t -> unit) -> unit
(** Visit the args in order. Does not allocate. *)

val arg : t -> int -> Vid.t
(** The [i]-th arg. Raises [Invalid_argument] out of bounds. *)

val has_arg : t -> Vid.t -> bool

val arg_count : t -> int

val connect : t -> Vid.t -> unit
(** Append a child to [args] (paper's [connect(a,b)]); duplicates allowed —
    [args] is a multiset in the presence of e.g. [x + x]. Amortized O(1). *)

val disconnect : t -> Vid.t -> unit
(** Remove one occurrence of the child from [args] and from any [req-args]
    set it appears in (paper's [disconnect(a,b)]). No-op if absent. *)

(** {1 req-args} *)

val req_v : t -> Vid.t list

val req_e : t -> Vid.t list

val req_args : t -> Vid.t list
(** [req_v @ req_e] — the paper's req-args(v). *)

val req_count : t -> int
(** |req-args(v)|, without building the list. *)

val is_req_arg : t -> Vid.t -> bool
(** Membership in req-args(v). *)

val unrequested_args : t -> Vid.t list
(** args(v) − req-args(v): children not yet demanded (reserve paths). *)

val iter_unrequested_args : t -> (Vid.t -> unit) -> unit
(** Visit {!unrequested_args} in order. Does not allocate. *)

val request_arg : t -> Vid.t -> Demand.t -> unit
(** Record that [v] demanded a child with the given kind. Upgrades an
    eager record to vital when re-requested vitally; never downgrades. *)

val drop_request : t -> Vid.t -> unit
(** Remove a child from both req-args sets (dereference, §3.2) — the child
    stays in [args] unless also disconnected. *)

val request_type : t -> Vid.t -> int
(** The paper's [request-type(c,v)] (Fig 5-1): 3 if [c] is vitally
    requested by [v], 2 if eagerly requested, 1 otherwise. *)

(** {1 requested} *)

val requested : t -> request_entry list
(** The pending requesters as a freshly built list — cold paths only. *)

val requested_count : t -> int

val iter_requesters : t -> (Vid.t -> unit) -> unit
(** Visit the requesters in [requested] order, skipping the external
    ([None]) entries. Does not allocate. *)

val blit_requests : t -> int array -> int
(** Copy the raw request rows into [dst] — stride 3 per entry: requester
    vid ([-1] for the external entry), demand code (0 eager / 1 vital),
    key — in storage (oldest-first) order; {!requested} is this reversed.
    [dst] must hold [3 * requested_count t] cells. Returns the entry
    count. Lets hot callers snapshot the set into a reusable scratch
    buffer instead of building the entry list. *)

val add_requester : t -> requester -> demand:Demand.t -> key:Vid.t -> unit
(** Add to [requested v]. Entries are identified by [(who, key)] — the
    same requester may legitimately await [v] through two different args.
    A vital request upgrades an existing eager entry. *)

val remove_requester : t -> requester -> unit
(** Remove every entry of this requester (it dereferenced [v], or was
    answered on all its keys). *)

val retain_requesters : t -> (Vid.t -> bool) -> unit
(** Keep only entries whose requester satisfies the predicate; external
    ([None]) entries are always kept. In-place, order-preserving. *)

val clear_requesters : t -> unit

val has_requester : t -> requester -> bool

val has_request_entry : t -> requester -> Vid.t -> bool
(** Entry-level membership (same [(who, key)] identity as
    [add_requester]). *)

val has_vital_requester : t -> bool
(** True when some pending entry carries vital demand — the vertex is
    globally vital. Does not allocate. *)

(** {1 Received values} *)

val record_value : t -> from:Vid.t -> Label.value -> unit

val value_from : t -> Vid.t -> Label.value option

val has_value : t -> Vid.t -> bool
(** [value_from t c <> None] without the option box. *)

val recv : t -> (Vid.t * Label.value) list
(** Values received so far, newest first — cold paths only. *)

val clear_reduction_state : t -> unit
(** Reset the received values (used when a vertex is re-expanded or
    freed). *)

(** {1 Lifecycle} *)

val reset_for_free : t -> unit
(** Wipe every field for return to the free list. Row capacities are
    retained for the slot's next life. *)

(** {1 Checkpointing} *)

(** Flat boxed copies of one slot's full state: capture/compare/restore
    without exposing the row layout (used by [Checkpoint]). *)
module Cells : sig
  type shot

  val capture : t -> shot

  val recapture : shot -> t -> unit
  (** [recapture s v] refreshes [s] with [v]'s current state in place,
      reusing the shot's row arrays when lengths match — the
      low-allocation form of {!capture} for incremental re-syncs. *)

  val matches : shot -> t -> bool

  val restore : shot -> t -> unit
end

(** {1 Introspection} *)

val args_capacity : t -> int
(** Current capacity of the args row (tests observe recycling). *)

val pp : Format.formatter -> t -> unit
