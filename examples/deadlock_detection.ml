(* Deadlock detection (Fig 3-1, Property 2', Theorem 2).

   Two computations with undefined values: the paper's circular
   definition x = x + 1, and a division by zero. Neither can ever be
   answered; the M_T-then-M_R marking cycle identifies the deadlocked
   region while everything runs — no global halt, no timeout heuristics.

     dune exec examples/deadlock_detection.exe *)

open Dgr_graph
open Dgr_sim
module Cycle = Dgr_core.Cycle

let detect title source =
  Format.printf "--- %s ---@." title;
  let graph, templates = Dgr_lang.Compile.load_string ~num_pes:2 source in
  let config =
    Engine.Config.make ~num_pes:2
      ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 10 })
      ()
  in
  let engine = Engine.create ~config graph templates in
  Engine.inject_root_demand engine;
  let found t =
    match Engine.cycle t with
    | Some c -> not (Vid.Set.is_empty (Cycle.deadlocked_ever c))
    | None -> false
  in
  let (_ : int) = Engine.run ~max_steps:20_000 ~stop:found engine in
  (* give a few extra cycles so stray in-flight responses drain and the
     whole deadlocked region is classified *)
  let (_ : int) = Engine.run ~max_steps:500 engine in
  let c = Option.get (Engine.cycle engine) in
  let dl = Cycle.deadlocked_ever c in
  if Vid.Set.is_empty dl then
    Format.printf
      "no deadlock after %d steps — task activity never ceased (divergence is not ⊥-wait: \
       tasks keep the region in T)@.@."
      (Engine.now engine)
  else begin
    Format.printf "detected after %d steps (%d gc cycles)@." (Engine.now engine)
      (Cycle.cycles_completed c);
    Vid.Set.iter
      (fun v ->
        Format.printf "  deadlocked: %a labelled %a@." Vid.pp v Label.pp
          (Vertex.label (Graph.vertex graph v)))
      dl;
    (* cross-check against the global oracle *)
    let sets =
      Dgr_analysis.Classify.compute (Snapshot.take graph)
        ~tasks:(Engine.pending_reduction_tasks engine)
    in
    Format.printf "oracle agrees: %b@.@."
      (Vid.Set.subset dl sets.Dgr_analysis.Classify.deadlocked)
  end

let () =
  detect "bottom + 1 (the paper's Fig 3-1 shape)" Dgr_lang.Prelude.deadlock;
  detect "division by zero" "def main = 1 / 0;";
  detect "head of the empty list" "def main = head(nil) + 1;";
  (* contrast: an infinitely *expanding* computation is not deadlocked —
     its tasks never stop propagating *)
  detect "divergence (for contrast)"
    "def f x = g(x); def g x = f(x); def main = f(1) + 1;"

(* And footnote 5's recovery: with --recover-deadlock semantics enabled,
   the deadlocked region is rewritten to an error value that propagates
   to the requester — one user's ⊥ no longer hangs the machine. *)
let () =
  Format.printf "--- recovery (footnote 5's is-bottom) ---@.";
  let config =
    Engine.Config.make ~num_pes:2
      ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 10 })
      ~recover_deadlock:true ()
  in
  let graph, templates =
    Dgr_lang.Compile.load_string ~num_pes:2 "def main = (1 / 0) + head(nil);"
  in
  let engine = Engine.create ~config graph templates in
  Engine.inject_root_demand engine;
  let (_ : int) = Engine.run ~max_steps:20_000 engine in
  match Engine.result engine with
  | Some v ->
    Format.printf "result = %a (after %d vertices recovered)@." Label.pp_value v
      (Engine.metrics engine).Metrics.deadlocks_recovered
  | None -> Format.printf "no result@."
