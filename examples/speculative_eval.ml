(* Speculative evaluation and dynamic task priorities (§3.2).

   The program's conditional has a slow predicate; both branches are
   requested eagerly. The losing branch is a large computation whose
   tasks all become irrelevant the moment the predicate resolves — the
   marking cycle then classifies them, the restructuring phase deletes
   them, and pool priorities keep the vital chain ahead of the
   speculative noise meanwhile.

   The same workload is run under the three pool policies of E8 so the
   effect of marking-driven prioritization is visible directly.

     dune exec examples/speculative_eval.exe *)

open Dgr_sim

let source = Dgr_lang.Prelude.speculative 40

let run policy =
  let config =
    Engine.Config.make ~pool_policy:policy
      ~gc:(Engine.Concurrent { deadlock_every = 0; idle_gap = 20 })
      ~heap_size:(Some 20_000) ()
  in
  let graph, templates = Dgr_lang.Compile.load_string ~num_pes:4 source in
  let engine = Engine.create ~config graph templates in
  Engine.inject_root_demand engine;
  let (_ : int) = Engine.run ~max_steps:150_000 engine in
  (engine, Engine.metrics engine)

let () =
  Format.printf
    "workload: if slowly(40) == 0 then 42 else burn(18)   (burn explodes speculatively)@.@.";
  List.iter
    (fun (name, policy) ->
      let engine, m = run policy in
      let red = Engine.reducer engine in
      (match Engine.result engine with
      | Some v ->
        Format.printf "%-10s result %a after %6d steps" name Dgr_graph.Label.pp_value v
          (match m.Metrics.completion_step with Some s -> s | None -> Engine.now engine)
      | None -> Format.printf "%-10s DID NOT FINISH within the budget" name);
      Format.printf
        " | cancels=%d purged=%d alloc-stalls=%d peak-live=%d@."
        red.Dgr_reduction.Reducer.cancels_executed m.Metrics.tasks_purged
        red.Dgr_reduction.Reducer.alloc_stalls m.Metrics.peak_live)
    [ ("flat", Pool.Flat); ("by-demand", Pool.By_demand); ("dynamic", Pool.Dynamic) ];
  Format.printf
    "@.flat pools let the speculative explosion starve the vital chain; demand-aware and@.";
  Format.printf
    "marking-driven (dynamic) pools keep the 42 coming while speculation is contained.@."
