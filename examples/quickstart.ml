(* Quickstart: compile a small functional program onto the computation
   graph, run it on a simulated 4-PE machine with the paper's concurrent
   collector, and read the result.

     dune exec examples/quickstart.exe *)

open Dgr_sim

let program =
  {|
# Sum the doubled list [n, n-1, ..., 1].
def range n      = if n == 0 then nil else cons(n, range(n - 1));
def map_double l = if isnil(l) then nil else cons(2 * head(l), map_double(tail(l)));
def sum l        = if isnil(l) then 0 else head(l) + sum(tail(l));
def main         = sum(map_double(range(25)));
|}

let () =
  (* 1. Compile: every def becomes a template; main is instantiated as
     the initial computation graph. *)
  let graph, templates = Dgr_lang.Compile.load_string ~num_pes:4 program in

  (* 2. A machine: 4 PEs, message latency, task pools with marking-driven
     priorities, and the endless concurrent mark/restructure cycle
     (collecting every ~10 steps here so its work is visible below). *)
  let config =
    Engine.Config.make ~gc:(Engine.Concurrent { deadlock_every = 2; idle_gap = 10 }) ()
  in
  let engine = Engine.create ~config graph templates in

  (* 3. Demand the root — the distinguished initial task <-,root>. *)
  Engine.inject_root_demand engine;

  (* 4. Run to completion. *)
  let steps = Engine.run engine in

  (match Engine.result engine with
  | Some value -> Format.printf "result  = %a@." Dgr_graph.Label.pp_value value
  | None -> Format.printf "no result!@.");
  Format.printf "steps   = %d@." steps;
  let m = Engine.metrics engine in
  Format.printf "tasks   = %d reduction, %d marking@." m.Metrics.reduction_executed
    m.Metrics.marking_executed;

  (* 5. The mark/restructure cycle "is repeated endlessly": let the
     machine idle until the next cycle completes and watch the entire
     intermediate structure return to the free list. *)
  let live_before = Dgr_graph.Graph.live_count graph in
  (match Engine.cycle engine with
  | Some c ->
    let target = Dgr_core.Cycle.cycles_completed c + 2 in
    let (_ : int) =
      Engine.run ~max_steps:20_000
        ~stop:(fun _ -> Dgr_core.Cycle.cycles_completed c >= target)
        engine
    in
    Format.printf "gc      = %d cycles, %d vertices reclaimed (live %d -> %d)@."
      (Dgr_core.Cycle.cycles_completed c)
      (Dgr_core.Cycle.total_garbage_collected c)
      live_before
      (Dgr_graph.Graph.live_count graph)
  | None -> ())
