(* Distributed garbage collection of self-referencing structures (§4).

   A hub holds forty data clusters, half simple chains and half rings.
   The mutator drops them all. The paper's decentralized marking cycle
   reclaims everything while the machine keeps running; distributed
   reference counting — "unsuitable for our purposes" — reclaims the
   chains but leaks every ring.

     dune exec examples/distributed_gc.exe *)

open Dgr_graph
open Dgr_sim

let clusters = 40

let cluster_size = 8

let build () =
  let g = Graph.create ~num_pes:4 () in
  let hub = Builder.add g Label.If [] in
  let (_ : Vid.t) = Builder.add_root g Label.Ind [ hub ] in
  let entries = ref [] in
  for i = 0 to clusters - 1 do
    let entry =
      if i mod 2 = 0 then Builder.chain g cluster_size else Builder.cycle g cluster_size
    in
    Vertex.connect (Graph.vertex g hub) entry;
    entries := entry :: !entries
  done;
  (g, hub, !entries)

let run name gc =
  let g, hub, entries = build () in
  let config = Engine.Config.make ~gc ~heap_size:None () in
  let engine = Engine.create ~config g (Dgr_reduction.Template.create_registry ()) in
  (* settle *)
  for _ = 1 to 150 do
    Engine.step engine
  done;
  let before = Graph.live_count g in
  (* the mutation: the hub drops every cluster *)
  List.iter
    (fun entry -> Dgr_core.Mutator.delete_reference (Engine.mutator engine) ~a:hub ~b:entry)
    entries;
  for _ = 1 to 2_000 do
    Engine.step engine
  done;
  let reclaimed = before - Graph.live_count g in
  Format.printf "%-22s dropped %d vertices, reclaimed %d" name (clusters * cluster_size)
    reclaimed;
  (match Engine.refcount engine with
  | Some rc ->
    Format.printf ", leaked %d (all rings), %d count messages"
      (List.length (Dgr_baseline.Refcount.leaked rc))
      (Dgr_baseline.Refcount.messages rc)
  | None -> ());
  Format.printf "@."

let () =
  Format.printf "%d clusters of %d vertices each; half are rings (cycles).@.@." clusters
    cluster_size;
  run "concurrent marking" (Engine.Concurrent { deadlock_every = 0; idle_gap = 20 });
  run "stop-the-world" (Engine.Stop_the_world { every = 300 });
  run "reference counting" Engine.Refcount;
  Format.printf
    "@.Tracing collectors reclaim the rings; reference counts never reach zero on a cycle@.";
  Format.printf "(and pay per-edge count traffic besides) — §4's argument, reproduced.@."
