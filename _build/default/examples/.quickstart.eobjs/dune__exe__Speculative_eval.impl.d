examples/speculative_eval.ml: Dgr_graph Dgr_lang Dgr_reduction Dgr_sim Engine Format List Metrics Pool
