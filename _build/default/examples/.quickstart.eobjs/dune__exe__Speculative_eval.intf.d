examples/speculative_eval.mli:
