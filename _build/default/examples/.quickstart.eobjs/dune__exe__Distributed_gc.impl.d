examples/distributed_gc.ml: Builder Dgr_baseline Dgr_core Dgr_graph Dgr_reduction Dgr_sim Engine Format Graph Label List Vertex Vid
