examples/quickstart.ml: Dgr_core Dgr_graph Dgr_lang Dgr_sim Engine Format Metrics
