examples/distributed_gc.mli:
