examples/deadlock_detection.mli:
