examples/deadlock_detection.ml: Dgr_analysis Dgr_core Dgr_graph Dgr_lang Dgr_sim Engine Format Graph Label Metrics Option Snapshot Vertex Vid
