examples/quickstart.mli:
