(* Shared test utilities. *)
open Dgr_graph

let vid_set = Alcotest.testable (Fmt.Dump.list Fmt.int) (fun a b -> a = b)

let sorted_list_of_set s = Vid.Set.elements s

let check_vid_set msg expected actual =
  Alcotest.check vid_set msg (sorted_list_of_set expected) (sorted_list_of_set actual)

(* All vertices marked on a plane. *)
let marked_set g plane =
  Graph.fold_live
    (fun acc v ->
      if Plane.marked (Vertex.plane v plane) then Vid.Set.add v.Vertex.id acc else acc)
    Vid.Set.empty g

let marked_with_prior g prior =
  Graph.fold_live
    (fun acc v ->
      if Plane.marked v.Vertex.mr && v.Vertex.mr.Plane.prior = prior then
        Vid.Set.add v.Vertex.id acc
      else acc)
    Vid.Set.empty g

(* No vertex left transient, every count zero. *)
let check_quiescent g plane =
  Graph.iter_live
    (fun v ->
      let p = Vertex.plane v plane in
      if Plane.transient p then
        Alcotest.failf "v%d left transient after marking" v.Vertex.id;
      if p.Plane.cnt <> 0 then
        Alcotest.failf "v%d has residual mt-cnt=%d" v.Vertex.id p.Plane.cnt)
    g

let orders rng =
  [
    ("fifo", Dgr_core.Sync_engine.Fifo);
    ("lifo", Dgr_core.Sync_engine.Lifo);
    ("random", Dgr_core.Sync_engine.Random rng);
  ]
