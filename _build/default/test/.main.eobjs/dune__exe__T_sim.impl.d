test/t_sim.ml: Alcotest Builder Demand Dgr_core Dgr_graph Dgr_lang Dgr_reduction Dgr_sim Dgr_task Engine Format Graph Label List Metrics Network Plane Pool Printf String Task Validate Vertex Vid
