test/t_reduction.ml: Alcotest Compile Dgr_core Dgr_graph Dgr_lang Dgr_reduction Dgr_sim Engine Graph Label List Metrics Pool Prelude Validate Vertex Vid
