test/t_util.ml: Alcotest Dgr_util Float List Pqueue Rng Stats String Table Vec
