test/t_lang.ml: Alcotest Ast Builder Compile Dgr_core Dgr_graph Dgr_lang Dgr_reduction Graph Label Lexer List Parser Template Validate Vertex
