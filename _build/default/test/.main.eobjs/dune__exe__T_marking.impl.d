test/t_marking.ml: Alcotest Builder Demand Dgr_analysis Dgr_core Dgr_graph Dgr_task Dgr_util Graph Helpers Invariants Label List Marker Mutator Plane Printf Rng Run Snapshot Sync_engine Vertex Vid
