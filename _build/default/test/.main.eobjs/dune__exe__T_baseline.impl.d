test/t_baseline.ml: Alcotest Builder Demand Dgr_baseline Dgr_graph Dgr_task Graph Label List Refcount Stw Validate Vertex Vid
