test/helpers.ml: Alcotest Dgr_core Dgr_graph Fmt Graph Plane Vertex Vid
