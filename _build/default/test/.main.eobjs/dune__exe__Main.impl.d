test/main.ml: Alcotest T_analysis T_baseline T_cycle T_flood T_graph T_lang T_marking T_mutator T_properties T_reduction T_sim T_task T_theorems T_util
