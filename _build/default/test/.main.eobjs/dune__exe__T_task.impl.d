test/t_task.ml: Alcotest Demand Dgr_graph Dgr_task Label List Plane Task
