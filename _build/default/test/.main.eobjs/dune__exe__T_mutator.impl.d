test/t_mutator.ml: Alcotest Builder Demand Dgr_analysis Dgr_core Dgr_graph Dgr_util Graph Invariants Label List Mutator Plane Printf Rng Run Snapshot Sync_engine Vertex Vid
