test/t_analysis.ml: Alcotest Builder Classify Demand Dgr_analysis Dgr_graph Dgr_harness Dgr_task Graph Helpers Label List Reach Snapshot Task Vertex Vid
