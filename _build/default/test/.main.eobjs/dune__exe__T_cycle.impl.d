test/t_cycle.ml: Alcotest Builder Cycle Demand Dgr_core Dgr_graph Dgr_harness Dgr_reduction Dgr_sim Dgr_task Engine Graph Label List Metrics Mutator Option Plane Validate Vertex Vid
