test/t_graph.ml: Alcotest Builder Demand Dgr_graph Dgr_util Dot Graph Label List Plane Printf Rng Snapshot String Validate Vertex
