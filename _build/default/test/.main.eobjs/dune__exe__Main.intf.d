test/main.mli:
