(** Per-vertex marking state for one marking process.

    Each vertex carries two independent planes — one for M_R (marking from
    the root) and one for M_T (marking from tasks) — because deadlock
    detection compares the two results (DL' = R'_v − T', §5.4) and the
    paper requires their bits to be distinct (§5.2).

    A plane holds the tri-state colour (unmarked / transient / marked,
    §4.1), the outstanding-mark-task counter [mt-cnt], the marking-tree
    parent [mt-par], and — for M_R only — the priority with which the
    vertex was traced (3 = vital, 2 = eager, 1 = reserve; §5.1). *)

type color = Unmarked | Transient | Marked

type parent = Rootpar | Parent of Vid.t
(** [Rootpar] is the paper's dummy node used by [return1] to detect
    termination of the whole marking process. *)

type t = {
  mutable color : color;
  mutable cnt : int;  (** mt-cnt: spawned-but-unreturned mark tasks *)
  mutable par : parent;  (** mt-par: parent in the marking tree *)
  mutable prior : int;  (** 0 when unmarked; 1..3 once traced (M_R) *)
}

type id = MR | MT

val create : unit -> t

val reset : t -> unit
(** Return the plane to the pristine unmarked state (between cycles). *)

val unmarked : t -> bool

val transient : t -> bool

val marked : t -> bool

val touch : t -> unit
(** unmarked/marked -> transient (paper's [touch]). *)

val mark : t -> unit
(** -> marked (paper's [mark]). *)

val unmark : t -> unit
(** -> unmarked, clearing priority. *)

val equal_color : color -> color -> bool

val pp_color : Format.formatter -> color -> unit

val pp_parent : Format.formatter -> parent -> unit

val pp_id : Format.formatter -> id -> unit

val pp : Format.formatter -> t -> unit
