type vertex = {
  id : Vid.t;
  label : Label.t;
  args : Vid.t list;
  req_v : Vid.t list;
  req_e : Vid.t list;
  requested : Vertex.request_entry list;
  free : bool;
  pe : int;
  mr_color : Plane.color;
  mr_prior : int;
  mt_color : Plane.color;
}

type t = { root : Vid.t option; verts : vertex array }

let snap_vertex (v : Vertex.t) =
  {
    id = v.Vertex.id;
    label = v.Vertex.label;
    args = v.Vertex.args;
    req_v = v.Vertex.req_v;
    req_e = v.Vertex.req_e;
    requested = v.Vertex.requested;
    free = v.Vertex.free;
    pe = v.Vertex.pe;
    mr_color = v.Vertex.mr.Plane.color;
    mr_prior = v.Vertex.mr.Plane.prior;
    mt_color = v.Vertex.mt.Plane.color;
  }

let take g =
  let n = Graph.vertex_count g in
  let verts =
    Array.init n (fun i -> snap_vertex (Graph.vertex g i))
  in
  let root = if Graph.has_root g then Some (Graph.root g) else None in
  { root; verts }

let vertex t v =
  if v < 0 || v >= Array.length t.verts then
    invalid_arg (Printf.sprintf "Snapshot.vertex: unknown vertex v%d" v);
  t.verts.(v)

let size t = Array.length t.verts

let live t = Array.to_list t.verts |> List.filter (fun v -> not v.free)

let free_set t =
  Array.fold_left (fun acc v -> if v.free then Vid.Set.add v.id acc else acc) Vid.Set.empty
    t.verts
