(** Vertex labels and reduced values.

    The computation graph's vertices are labelled with "primitive operators
    and values" (§2). The label vocabulary here is the minimal set needed
    to drive the paper's model with real programs: scalar values, lazy
    [Cons] cells, strict primitive operators, a speculative conditional,
    function application by template expansion (the paper's [expand-node]),
    indirections (created by reductions overwriting a vertex), an explicit
    divergent operator for deadlock experiments, and template formal
    parameters (only valid inside function-body templates). *)

type prim =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Lt
  | Leq
  | And
  | Or
  | Not
  | Neg
  | Is_nil
  | Head
  | Tail

type t =
  | Int of int
  | Bool of bool
  | Nil
  | Cons  (** args = [hd; tl]; already in weak head normal form *)
  | Prim of prim  (** strict in every argument *)
  | If  (** args = [pred; then_; else_]; pred vital, branches speculated *)
  | Apply of string  (** named function; reduced by expand-node *)
  | Ind  (** args = [target]; demand is forwarded *)
  | Bottom  (** never produces a value (used to model divergence) *)
  | Err of string
      (** the value of a recovered deadlocked vertex (footnote 5's
          [is-bottom] pseudo-function): propagates through strict
          operators so the requester learns its input was ⊥ *)
  | Param of int  (** formal parameter slot, only inside templates *)
  | Freed  (** vertex currently on the free list *)

type value = V_int of int | V_bool of bool | V_nil | V_ref of Vid.t | V_err of string
(** The "ultimate value" returned by a response task. Structured data in
    weak head normal form is returned by reference ([V_ref] of a [Cons]
    vertex), everything else by copy. *)

val prim_arity : prim -> int

val prim_name : prim -> string

val is_whnf : t -> bool
(** True for labels that already denote a value ([Int], [Bool], [Nil],
    [Cons]). *)

val value_of_whnf : self:Vid.t -> t -> value option
(** The value a WHNF-labelled vertex responds with ([V_ref self] for
    [Cons]). [None] for non-WHNF labels. *)

val equal : t -> t -> bool

val equal_value : value -> value -> bool

val pp : Format.formatter -> t -> unit

val pp_value : Format.formatter -> value -> unit

val to_string : t -> string
