type color = Unmarked | Transient | Marked

type parent = Rootpar | Parent of Vid.t

type t = { mutable color : color; mutable cnt : int; mutable par : parent; mutable prior : int }

type id = MR | MT

let create () = { color = Unmarked; cnt = 0; par = Rootpar; prior = 0 }

let reset t =
  t.color <- Unmarked;
  t.cnt <- 0;
  t.par <- Rootpar;
  t.prior <- 0

let unmarked t = t.color = Unmarked

let transient t = t.color = Transient

let marked t = t.color = Marked

let touch t = t.color <- Transient

let mark t = t.color <- Marked

let unmark t =
  t.color <- Unmarked;
  t.prior <- 0

let equal_color (a : color) b = a = b

let pp_color fmt = function
  | Unmarked -> Format.pp_print_string fmt "unmarked"
  | Transient -> Format.pp_print_string fmt "transient"
  | Marked -> Format.pp_print_string fmt "marked"

let pp_parent fmt = function
  | Rootpar -> Format.pp_print_string fmt "rootpar"
  | Parent v -> Vid.pp fmt v

let pp_id fmt = function
  | MR -> Format.pp_print_string fmt "M_R"
  | MT -> Format.pp_print_string fmt "M_T"

let pp fmt t =
  Format.fprintf fmt "{%a cnt=%d par=%a prior=%d}" pp_color t.color t.cnt pp_parent t.par
    t.prior
