type prim =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Lt
  | Leq
  | And
  | Or
  | Not
  | Neg
  | Is_nil
  | Head
  | Tail

type t =
  | Int of int
  | Bool of bool
  | Nil
  | Cons
  | Prim of prim
  | If
  | Apply of string
  | Ind
  | Bottom
  | Err of string
  | Param of int
  | Freed

type value = V_int of int | V_bool of bool | V_nil | V_ref of Vid.t | V_err of string

let prim_arity = function
  | Add | Sub | Mul | Div | Mod | Eq | Lt | Leq | And | Or -> 2
  | Not | Neg | Is_nil | Head | Tail -> 1

let prim_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Eq -> "eq"
  | Lt -> "lt"
  | Leq -> "leq"
  | And -> "and"
  | Or -> "or"
  | Not -> "not"
  | Neg -> "neg"
  | Is_nil -> "isnil"
  | Head -> "head"
  | Tail -> "tail"

let is_whnf = function
  | Int _ | Bool _ | Nil | Cons | Err _ -> true
  | Prim _ | If | Apply _ | Ind | Bottom | Param _ | Freed -> false

let value_of_whnf ~self = function
  | Int n -> Some (V_int n)
  | Bool b -> Some (V_bool b)
  | Nil -> Some V_nil
  | Cons -> Some (V_ref self)
  | Err msg -> Some (V_err msg)
  | Prim _ | If | Apply _ | Ind | Bottom | Param _ | Freed -> None

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Nil, Nil | Cons, Cons | If, If | Ind, Ind | Bottom, Bottom | Freed, Freed -> true
  | Prim x, Prim y -> x = y
  | Apply x, Apply y -> String.equal x y
  | Param x, Param y -> x = y
  | Err x, Err y -> String.equal x y
  | ( (Int _ | Bool _ | Nil | Cons | Prim _ | If | Apply _ | Ind | Bottom | Err _ | Param _
      | Freed),
      _ ) ->
    false

let equal_value a b =
  match (a, b) with
  | V_int x, V_int y -> x = y
  | V_bool x, V_bool y -> x = y
  | V_nil, V_nil -> true
  | V_ref x, V_ref y -> Vid.equal x y
  | V_err x, V_err y -> String.equal x y
  | (V_int _ | V_bool _ | V_nil | V_ref _ | V_err _), _ -> false

let to_string = function
  | Int n -> string_of_int n
  | Bool b -> string_of_bool b
  | Nil -> "nil"
  | Cons -> "cons"
  | Prim p -> prim_name p
  | If -> "if"
  | Apply f -> "apply:" ^ f
  | Ind -> "ind"
  | Bottom -> "bottom"
  | Err msg -> "err:" ^ msg
  | Param i -> "param:" ^ string_of_int i
  | Freed -> "freed"

let pp fmt l = Format.pp_print_string fmt (to_string l)

let pp_value fmt = function
  | V_int n -> Format.pp_print_int fmt n
  | V_bool b -> Format.pp_print_bool fmt b
  | V_nil -> Format.pp_print_string fmt "nil"
  | V_ref v -> Format.fprintf fmt "ref(%a)" Vid.pp v
  | V_err msg -> Format.fprintf fmt "error(%s)" msg
