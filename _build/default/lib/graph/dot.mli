(** Graphviz (DOT) export, mirroring the paper's figure conventions:
    vertices are circles; a solid arc from [x] to [y] denotes [y ∈
    args(x)]; arcs for requested args are annotated ["*v"] / ["*e"]; a
    dashed arc from [x] to [y] denotes [y ∈ requested(x)]. Marked /
    transient vertices (M_R plane) are shaded. *)

val to_string : ?name:string -> Graph.t -> string

val to_file : ?name:string -> Graph.t -> string -> unit
(** [to_file g path] writes the DOT source to [path]. *)
