(** Structural well-formedness checks for graphs.

    Distinct from the {e marking} invariants (checked in
    [Dgr_core.Invariants]); these validate the mutator-level data
    structure itself and are asserted throughout the test suite. *)

type error = string

val check : Graph.t -> error list
(** Empty list when the graph is well-formed. Checked properties:
    - every [args]/[req-args]/[requested] edge targets an in-range vertex;
    - [req_v] and [req_e] are disjoint subsets of [args];
    - no live vertex points to a free vertex via [args];
    - free vertices carry label [Freed] and no edges;
    - the free list and the [free] flags agree;
    - the root (when set) is live. *)

val check_exn : Graph.t -> unit
(** Raises [Failure] with the concatenated errors. *)
