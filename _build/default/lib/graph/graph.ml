open Dgr_util

exception Out_of_vertices

type t = {
  verts : Vertex.t Vec.t;
  free : Vid.t Vec.t;
  num_pes : int;
  mutable root : Vid.t option;
  mutable next_pe : int;
  mutable allocations : int;
  mutable releases : int;
  mutable capacity : int option;
}

let create ?(num_pes = 1) () =
  if num_pes <= 0 then invalid_arg "Graph.create: num_pes must be positive";
  {
    verts = Vec.create ();
    free = Vec.create ();
    num_pes;
    root = None;
    next_pe = 0;
    allocations = 0;
    releases = 0;
    capacity = None;
  }

let set_capacity t cap =
  (match cap with
  | Some c when c < Vec.length t.verts ->
    invalid_arg "Graph.set_capacity: below current table size"
  | Some _ | None -> ());
  t.capacity <- cap

let capacity t = t.capacity

let headroom t =
  match t.capacity with
  | None -> max_int
  | Some c -> Vec.length t.free + (c - Vec.length t.verts)

let num_pes t = t.num_pes

let root t =
  match t.root with
  | Some r -> r
  | None -> invalid_arg "Graph.root: no root set"

let has_root t = t.root <> None

let set_root t r = t.root <- Some r

let mem t v = v >= 0 && v < Vec.length t.verts

let vertex t v =
  if not (mem t v) then invalid_arg (Printf.sprintf "Graph.vertex: unknown vertex v%d" v);
  Vec.get t.verts v

let next_pe t =
  let pe = t.next_pe in
  t.next_pe <- (t.next_pe + 1) mod t.num_pes;
  pe

let fresh t ~pe label =
  let id = Vec.length t.verts in
  let v = Vertex.create id ~pe label in
  Vec.push t.verts v;
  v

let alloc ?pe t label =
  let pe = match pe with Some p -> p | None -> next_pe t in
  match Vec.pop t.free with
  | Some id ->
    t.allocations <- t.allocations + 1;
    let v = Vec.get t.verts id in
    v.Vertex.label <- label;
    v.Vertex.free <- false;
    v.Vertex.pe <- pe;
    v
  | None ->
    (match t.capacity with
    | Some c when Vec.length t.verts >= c -> raise Out_of_vertices
    | Some _ | None -> ());
    t.allocations <- t.allocations + 1;
    fresh t ~pe label

let release t id =
  let v = vertex t id in
  if v.Vertex.free then invalid_arg (Printf.sprintf "Graph.release: v%d already free" id);
  t.releases <- t.releases + 1;
  Vertex.reset_for_free v;
  Vec.push t.free id

let preallocate t n =
  for _ = 1 to n do
    let v = fresh t ~pe:(next_pe t) Label.Freed in
    v.Vertex.free <- true;
    Vec.push t.free v.Vertex.id
  done

let children t v = (vertex t v).Vertex.args

let vertex_count t = Vec.length t.verts

let free_count t = Vec.length t.free

let live_count t = vertex_count t - free_count t

let free_list t = Vec.to_list t.free

let iter_all f t = Vec.iter f t.verts

let iter_live f t = Vec.iter (fun v -> if not v.Vertex.free then f v) t.verts

let live_vids t =
  Vec.fold_left (fun acc v -> if v.Vertex.free then acc else v.Vertex.id :: acc) [] t.verts
  |> List.rev

let fold_live f acc t =
  Vec.fold_left (fun acc v -> if v.Vertex.free then acc else f acc v) acc t.verts

let reset_plane t plane = iter_all (fun v -> Plane.reset (Vertex.plane v plane)) t

let allocations t = t.allocations

let releases t = t.releases
