lib/graph/demand.ml: Format
