lib/graph/label.ml: Format String Vid
