lib/graph/label.mli: Format Vid
