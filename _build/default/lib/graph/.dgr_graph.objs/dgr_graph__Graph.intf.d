lib/graph/graph.mli: Label Plane Vertex Vid
