lib/graph/vertex.mli: Demand Format Label Plane Vid
