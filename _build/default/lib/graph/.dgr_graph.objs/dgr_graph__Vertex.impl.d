lib/graph/vertex.ml: Demand Fmt Format Label List Plane Vid
