lib/graph/snapshot.ml: Array Graph Label List Plane Printf Vertex Vid
