lib/graph/builder.ml: Array Demand Dgr_util Float Graph Int Label List Rng Vertex Vid
