lib/graph/demand.mli: Format
