lib/graph/plane.mli: Format Vid
