lib/graph/graph.ml: Dgr_util Label List Plane Printf Vec Vertex Vid
