lib/graph/vid.mli: Format Hashtbl Map Set
