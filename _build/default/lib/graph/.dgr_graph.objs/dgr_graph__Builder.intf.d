lib/graph/builder.mli: Dgr_util Graph Label Vid
