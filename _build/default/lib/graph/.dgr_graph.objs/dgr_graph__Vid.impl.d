lib/graph/vid.ml: Format Hashtbl Int Map Set
