lib/graph/plane.ml: Format Vid
