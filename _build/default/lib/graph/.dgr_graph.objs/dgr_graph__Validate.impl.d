lib/graph/validate.ml: Graph Label List Printf String Vertex Vid
