lib/graph/validate.mli: Graph
