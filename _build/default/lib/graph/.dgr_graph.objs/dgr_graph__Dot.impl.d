lib/graph/dot.ml: Buffer Fun Graph Label List Plane Printf String Vertex Vid
