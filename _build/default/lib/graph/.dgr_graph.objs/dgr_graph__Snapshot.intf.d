lib/graph/snapshot.mli: Graph Label Plane Vertex Vid
