(** The distributed computation graph.

    A dense vertex table plus the free list [F] of §2.2. Vertices are
    assigned to processing elements (the partition of §2) at allocation
    time, round-robin by default. The graph itself is a passive store —
    task semantics live in [Dgr_core] and [Dgr_reduction]. *)

type t

exception Out_of_vertices
(** Raised by [alloc] when the free list is empty and the capacity is
    reached — §2.2's V is finite; new vertices come only from F. *)

val create : ?num_pes:int -> unit -> t
(** [create ~num_pes ()] is an empty graph partitioned over [num_pes]
    processing elements (default 1), with unbounded capacity. *)

val set_capacity : t -> int option -> unit
(** Bound (or unbound) the vertex-table size. Raises [Invalid_argument]
    if the bound is below the current table size. *)

val capacity : t -> int option

val headroom : t -> int
(** Vertices allocatable before [Out_of_vertices]: |F| plus remaining
    table growth. [max_int] when unbounded. *)

val num_pes : t -> int

val root : t -> Vid.t
(** Raises [Invalid_argument] if no root has been set. *)

val has_root : t -> bool

val set_root : t -> Vid.t -> unit

val vertex : t -> Vid.t -> Vertex.t
(** Raises [Invalid_argument] on an out-of-range id. *)

val mem : t -> Vid.t -> bool

val alloc : ?pe:int -> t -> Label.t -> Vertex.t
(** Acquire a vertex from the free list (or grow the table if [F] is
    empty), assign it to a PE and label it. The returned vertex has no
    edges. *)

val release : t -> Vid.t -> unit
(** Reset the vertex and return it to the free list (the restructuring
    phase's "add elements of GAR to F"). Raises [Invalid_argument] if the
    vertex is already free. *)

val preallocate : t -> int -> unit
(** Grow the table by [n] vertices placed directly on the free list. *)

val children : t -> Vid.t -> Vid.t list
(** [args] of the vertex. *)

val vertex_count : t -> int
(** Total table size |V| (live + free). *)

val free_count : t -> int
(** |F|. *)

val live_count : t -> int

val free_list : t -> Vid.t list

val iter_live : (Vertex.t -> unit) -> t -> unit

val iter_all : (Vertex.t -> unit) -> t -> unit

val live_vids : t -> Vid.t list

val fold_live : ('a -> Vertex.t -> 'a) -> 'a -> t -> 'a

val reset_plane : t -> Plane.id -> unit
(** Unmark every vertex's plane (between marking cycles). *)

val allocations : t -> int
(** Cumulative number of [alloc] calls. *)

val releases : t -> int
(** Cumulative number of [release] calls. *)
