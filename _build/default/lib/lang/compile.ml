open Dgr_graph
open Dgr_reduction

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* Emit [expr] into a slot buffer, returning the operand that denotes its
   value. [env] maps variables to operands (parameters or let slots). *)
let emit_expr ~arities ~fname buf =
  let slot instr =
    Dgr_util.Vec.push buf instr;
    Template.Slot (Dgr_util.Vec.length buf - 1)
  in
  let rec go env expr =
    match expr with
    | Ast.Int n -> slot { Template.label = Label.Int n; operands = [] }
    | Ast.Bool b -> slot { Template.label = Label.Bool b; operands = [] }
    | Ast.Nil -> slot { Template.label = Label.Nil; operands = [] }
    | Ast.Bottom -> slot { Template.label = Label.Bottom; operands = [] }
    | Ast.Var x -> (
      match List.assoc_opt x env with
      | Some op -> op
      | None -> fail "%s: unbound variable %s" fname x)
    | Ast.Let (x, e1, e2) ->
      let o1 = go env e1 in
      go ((x, o1) :: env) e2
    | Ast.If (p, t, e) ->
      let op = go env p in
      let ot = go env t in
      let oe = go env e in
      slot { Template.label = Label.If; operands = [ op; ot; oe ] }
    | Ast.Prim (p, args) ->
      if List.length args <> Label.prim_arity p then
        fail "%s: %s expects %d argument(s), got %d" fname (Label.prim_name p)
          (Label.prim_arity p) (List.length args);
      let ops = List.map (go env) args in
      slot { Template.label = Label.Prim p; operands = ops }
    | Ast.Cons (h, t) ->
      let oh = go env h in
      let ot = go env t in
      slot { Template.label = Label.Cons; operands = [ oh; ot ] }
    | Ast.Call (f, args) -> (
      match List.assoc_opt f arities with
      | None -> fail "%s: call to unknown function %s" fname f
      | Some arity ->
        if List.length args <> arity then
          fail "%s: %s expects %d argument(s), got %d" fname f arity (List.length args);
        let ops = List.map (go env) args in
        slot { Template.label = Label.Apply f; operands = ops })
  in
  go

let compile_def ~arities (d : Ast.def) =
  let buf = Dgr_util.Vec.create () in
  let env = List.mapi (fun i x -> (x, Template.Param i)) d.Ast.params in
  (match
     List.fold_left
       (fun seen x ->
         if List.mem x seen then fail "%s: duplicate parameter %s" d.Ast.name x else x :: seen)
       [] d.Ast.params
   with
  | _ -> ());
  let result = emit_expr ~arities ~fname:d.Ast.name buf env d.Ast.body in
  (* The entry must be the final slot; wrap parameter or shared-slot
     results in an indirection. *)
  (match result with
  | Template.Slot s when s = Dgr_util.Vec.length buf - 1 -> ()
  | op -> ignore (Dgr_util.Vec.push buf { Template.label = Label.Ind; operands = [ op ] }));
  Template.make ~name:d.Ast.name ~arity:(List.length d.Ast.params)
    (Dgr_util.Vec.to_list buf)

let compile_program (program : Ast.program) =
  let arities =
    List.fold_left
      (fun acc (d : Ast.def) ->
        if List.mem_assoc d.Ast.name acc then fail "duplicate definition of %s" d.Ast.name
        else (d.Ast.name, List.length d.Ast.params) :: acc)
      [] program
  in
  let reg = Template.create_registry () in
  List.iter (fun d -> Template.define reg (compile_def ~arities d)) program;
  reg

let null_mutator g = Dgr_core.Mutator.create ~spawn:(fun _ -> ()) g

let load ?(num_pes = 1) ?(free_pool = 0) program =
  let reg = compile_program program in
  match Template.find reg "main" with
  | None -> fail "program has no main"
  | Some tpl when tpl.Template.arity <> 0 -> fail "main must take no parameters"
  | Some tpl ->
    let g = Graph.create ~num_pes () in
    Graph.preallocate g (free_pool + Template.size tpl);
    let root = Template.instantiate tpl g (null_mutator g) ~actuals:[] in
    Graph.set_root g root;
    (g, reg)

let load_string ?num_pes ?free_pool source =
  load ?num_pes ?free_pool (Parser.parse_program source)

let graph_of_expr ?registry g expr =
  let arities =
    match registry with
    | None -> []
    | Some reg ->
      List.filter_map
        (fun name ->
          Option.map (fun t -> (name, t.Template.arity)) (Template.find reg name))
        (Template.names reg)
  in
  let buf = Dgr_util.Vec.create () in
  let result = emit_expr ~arities ~fname:"<expr>" buf [] expr in
  (match result with
  | Template.Slot s when s = Dgr_util.Vec.length buf - 1 -> ()
  | op -> ignore (Dgr_util.Vec.push buf { Template.label = Label.Ind; operands = [ op ] }));
  let tpl = Template.make ~name:"<expr>" ~arity:0 (Dgr_util.Vec.to_list buf) in
  Template.instantiate tpl g (null_mutator g) ~actuals:[]
