type token =
  | INT of int
  | NAME of string
  | KW_DEF
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_LET
  | KW_IN
  | KW_TRUE
  | KW_FALSE
  | KW_NIL
  | KW_BOTTOM
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQEQ
  | NEQ
  | LT
  | LEQ
  | GT
  | GEQ
  | ANDAND
  | OROR
  | BANG
  | EOF

exception Error of string * int

let keyword = function
  | "def" -> Some KW_DEF
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "let" -> Some KW_LET
  | "in" -> Some KW_IN
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "nil" -> Some KW_NIL
  | "bottom" -> Some KW_BOTTOM
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || is_digit c || c = '\''

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some input.[!i + k] else None in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      emit (INT (int_of_string (String.sub input start (!i - start))))
    end
    else if is_name_start c then begin
      let start = !i in
      while !i < n && is_name_char input.[!i] do
        incr i
      done;
      let name = String.sub input start (!i - start) in
      emit (match keyword name with Some kw -> kw | None -> NAME name)
    end
    else begin
      let two tok = emit tok; i := !i + 2 in
      let one tok = emit tok; incr i in
      match (c, peek 1) with
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NEQ
      | '<', Some '=' -> two LEQ
      | '>', Some '=' -> two GEQ
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '=', _ -> one EQUALS
      | '!', _ -> one BANG
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !i))
    end
  done;
  List.rev (EOF :: !tokens)

let token_to_string = function
  | INT n -> string_of_int n
  | NAME s -> s
  | KW_DEF -> "def"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_LET -> "let"
  | KW_IN -> "in"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NIL -> "nil"
  | KW_BOTTOM -> "bottom"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | EQUALS -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQEQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LEQ -> "<="
  | GT -> ">"
  | GEQ -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "<eof>"
