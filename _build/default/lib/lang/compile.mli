open Dgr_graph
open Dgr_reduction

(** Compiler from the surface language to graph templates.

    Each [def] becomes one {!Template.t}; [main] (which must take no
    parameters) is instantiated to form the initial computation graph.
    [Let]-bound expressions compile to a single shared slot — the shared
    subexpressions whose interaction with task types §3.2 dwells on. *)

exception Compile_error of string

val compile_program : Ast.program -> Template.registry
(** Validates: no duplicate definitions, all variables bound, all calls
    target known functions with matching arity. Raises {!Compile_error}. *)

val load : ?num_pes:int -> ?free_pool:int -> Ast.program -> Graph.t * Template.registry
(** Compile, then build a graph whose root is an instance of [main].
    [free_pool] extra vertices are preallocated on the free list first, so
    instantiation draws from [F] as the paper prescribes. *)

val load_string : ?num_pes:int -> ?free_pool:int -> string -> Graph.t * Template.registry
(** [load] ∘ {!Parser.parse_program}. *)

val graph_of_expr :
  ?registry:Template.registry -> Graph.t -> Ast.expr -> Vid.t
(** Build a closed expression directly into an existing graph and return
    its root vertex (not set as graph root). Calls must resolve in
    [registry] (empty by default). *)
