lib/lang/compile.ml: Ast Dgr_core Dgr_graph Dgr_reduction Dgr_util Graph Label List Option Parser Printf Template
