lib/lang/prelude.mli:
