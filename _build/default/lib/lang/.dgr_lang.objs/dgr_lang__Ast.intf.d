lib/lang/ast.mli: Dgr_graph Format Label
