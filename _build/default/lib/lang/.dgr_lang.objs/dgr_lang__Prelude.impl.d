lib/lang/prelude.ml: Printf
