lib/lang/lexer.mli:
