lib/lang/ast.ml: Dgr_graph Format Label List
