lib/lang/parser.ml: Ast Dgr_graph Label Lexer List Printf
