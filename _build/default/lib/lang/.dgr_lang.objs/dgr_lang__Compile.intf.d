lib/lang/compile.mli: Ast Dgr_graph Dgr_reduction Graph Template Vid
