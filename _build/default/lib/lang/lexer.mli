(** Tokenizer for the surface language. *)

type token =
  | INT of int
  | NAME of string
  | KW_DEF
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_LET
  | KW_IN
  | KW_TRUE
  | KW_FALSE
  | KW_NIL
  | KW_BOTTOM
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | EQUALS  (** = *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQEQ
  | NEQ
  | LT
  | LEQ
  | GT
  | GEQ
  | ANDAND
  | OROR
  | BANG
  | EOF

exception Error of string * int
(** message, character offset *)

val tokenize : string -> token list
(** Supports line comments ([# ... \n]). Raises {!Error} on unknown
    characters. *)

val token_to_string : token -> string
