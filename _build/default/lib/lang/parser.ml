open Dgr_graph
open Lexer

exception Parse_error of string

type state = { mutable tokens : token list }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.tokens with [] -> EOF | t :: _ -> t

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %s, found %s" (token_to_string tok) (token_to_string (peek st))

let builtin_prims =
  [
    ("head", (Label.Head, 1));
    ("tail", (Label.Tail, 1));
    ("isnil", (Label.Is_nil, 1));
    ("not", (Label.Not, 1));
    ("neg", (Label.Neg, 1));
  ]

let rec parse_expression st =
  match peek st with
  | KW_IF ->
    advance st;
    let p = parse_expression st in
    expect st KW_THEN;
    let t = parse_expression st in
    expect st KW_ELSE;
    let e = parse_expression st in
    Ast.If (p, t, e)
  | KW_LET ->
    advance st;
    let x =
      match peek st with
      | NAME x ->
        advance st;
        x
      | t -> fail "expected name after let, found %s" (token_to_string t)
    in
    expect st EQUALS;
    let e1 = parse_expression st in
    expect st KW_IN;
    let e2 = parse_expression st in
    Ast.Let (x, e1, e2)
  | _ -> parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = OROR then begin
    advance st;
    Ast.Prim (Label.Or, [ lhs; parse_or st ])
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = ANDAND then begin
    advance st;
    Ast.Prim (Label.And, [ lhs; parse_and st ])
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | EQEQ ->
    advance st;
    Ast.Prim (Label.Eq, [ lhs; parse_add st ])
  | NEQ ->
    advance st;
    Ast.Prim (Label.Not, [ Ast.Prim (Label.Eq, [ lhs; parse_add st ]) ])
  | LT ->
    advance st;
    Ast.Prim (Label.Lt, [ lhs; parse_add st ])
  | LEQ ->
    advance st;
    Ast.Prim (Label.Leq, [ lhs; parse_add st ])
  | GT ->
    advance st;
    let rhs = parse_add st in
    Ast.Prim (Label.Lt, [ rhs; lhs ])
  | GEQ ->
    advance st;
    let rhs = parse_add st in
    Ast.Prim (Label.Leq, [ rhs; lhs ])
  | _ -> lhs

and parse_add st =
  let rec loop lhs =
    match peek st with
    | PLUS ->
      advance st;
      loop (Ast.Prim (Label.Add, [ lhs; parse_mul st ]))
    | MINUS ->
      advance st;
      loop (Ast.Prim (Label.Sub, [ lhs; parse_mul st ]))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | STAR ->
      advance st;
      loop (Ast.Prim (Label.Mul, [ lhs; parse_unary st ]))
    | SLASH ->
      advance st;
      loop (Ast.Prim (Label.Div, [ lhs; parse_unary st ]))
    | PERCENT ->
      advance st;
      loop (Ast.Prim (Label.Mod, [ lhs; parse_unary st ]))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | MINUS ->
    advance st;
    Ast.Prim (Label.Neg, [ parse_unary st ])
  | BANG ->
    advance st;
    Ast.Prim (Label.Not, [ parse_unary st ])
  | _ -> parse_atom st

and parse_args st =
  expect st LPAREN;
  if peek st = RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let e = parse_expression st in
      match peek st with
      | COMMA ->
        advance st;
        loop (e :: acc)
      | RPAREN ->
        advance st;
        List.rev (e :: acc)
      | t -> fail "expected , or ) in argument list, found %s" (token_to_string t)
    in
    loop []
  end

and parse_atom st =
  match peek st with
  | INT n ->
    advance st;
    Ast.Int n
  | KW_TRUE ->
    advance st;
    Ast.Bool true
  | KW_FALSE ->
    advance st;
    Ast.Bool false
  | KW_NIL ->
    advance st;
    Ast.Nil
  | KW_BOTTOM ->
    advance st;
    Ast.Bottom
  | LPAREN ->
    advance st;
    let e = parse_expression st in
    expect st RPAREN;
    e
  | LBRACKET ->
    advance st;
    let rec elems acc =
      if peek st = RBRACKET then begin
        advance st;
        List.rev acc
      end
      else begin
        let e = parse_expression st in
        match peek st with
        | COMMA ->
          advance st;
          elems (e :: acc)
        | RBRACKET ->
          advance st;
          List.rev (e :: acc)
        | t -> fail "expected , or ] in list literal, found %s" (token_to_string t)
      end
    in
    let es = elems [] in
    List.fold_right (fun h t -> Ast.Cons (h, t)) es Ast.Nil
  | NAME x -> (
    advance st;
    if peek st <> LPAREN then Ast.Var x
    else
      let args = parse_args st in
      match (x, args) with
      | "cons", [ h; t ] -> Ast.Cons (h, t)
      | "cons", _ -> fail "cons expects 2 arguments"
      | _ -> (
        match List.assoc_opt x builtin_prims with
        | Some (p, arity) ->
          if List.length args <> arity then
            fail "%s expects %d argument(s), got %d" x arity (List.length args);
          Ast.Prim (p, args)
        | None -> Ast.Call (x, args)))
  | t -> fail "unexpected token %s" (token_to_string t)

let parse_def st =
  expect st KW_DEF;
  let name =
    match peek st with
    | NAME x ->
      advance st;
      x
    | t -> fail "expected function name after def, found %s" (token_to_string t)
  in
  let rec params acc =
    match peek st with
    | NAME x ->
      advance st;
      params (x :: acc)
    | _ -> List.rev acc
  in
  let ps = params [] in
  expect st EQUALS;
  let body = parse_expression st in
  expect st SEMI;
  { Ast.name; params = ps; body }

let parse_program input =
  let st = { tokens = tokenize input } in
  let rec loop acc =
    match peek st with
    | EOF -> List.rev acc
    | KW_DEF -> loop (parse_def st :: acc)
    | t -> fail "expected def, found %s" (token_to_string t)
  in
  loop []

let parse_expr input =
  let st = { tokens = tokenize input } in
  let e = parse_expression st in
  expect st EOF;
  e
