open Dgr_graph

type expr =
  | Int of int
  | Bool of bool
  | Nil
  | Var of string
  | Let of string * expr * expr
  | If of expr * expr * expr
  | Prim of Label.prim * expr list
  | Cons of expr * expr
  | Call of string * expr list
  | Bottom

type def = { name : string; params : string list; body : expr }

type program = def list

let rec pp_expr fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Bool b -> Format.pp_print_bool fmt b
  | Nil -> Format.pp_print_string fmt "nil"
  | Var x -> Format.pp_print_string fmt x
  | Let (x, e1, e2) ->
    Format.fprintf fmt "@[<hov 2>let %s =@ %a in@ %a@]" x pp_expr e1 pp_expr e2
  | If (p, t, e) ->
    Format.fprintf fmt "@[<hov 2>if %a@ then %a@ else %a@]" pp_expr p pp_expr t pp_expr e
  | Prim (p, args) ->
    Format.fprintf fmt "@[<hov 2>%s(%a)@]" (Label.prim_name p)
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") pp_expr)
      args
  | Cons (h, t) -> Format.fprintf fmt "@[<hov 2>cons(%a,@ %a)@]" pp_expr h pp_expr t
  | Call (f, args) ->
    Format.fprintf fmt "@[<hov 2>%s(%a)@]" f
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") pp_expr)
      args
  | Bottom -> Format.pp_print_string fmt "bottom"

let pp_def fmt d =
  Format.fprintf fmt "@[<hov 2>def %s %a =@ %a@]" d.name
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string)
    d.params pp_expr d.body

let free_vars expr =
  let seen = ref [] in
  let add x bound =
    if (not (List.mem x bound)) && not (List.mem x !seen) then seen := x :: !seen
  in
  let rec go bound = function
    | Int _ | Bool _ | Nil | Bottom -> ()
    | Var x -> add x bound
    | Let (x, e1, e2) ->
      go bound e1;
      go (x :: bound) e2
    | If (p, t, e) ->
      go bound p;
      go bound t;
      go bound e
    | Prim (_, args) | Call (_, args) -> List.iter (go bound) args
    | Cons (h, t) ->
      go bound h;
      go bound t
  in
  go [] expr;
  List.rev !seen
