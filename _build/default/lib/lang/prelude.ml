let fib n =
  Printf.sprintf
    {|
def fib n = if n < 2 then n else fib(n - 1) + fib(n - 2);
def main = fib(%d);
|}
    n

let fib_expected n =
  let rec f n = if n < 2 then n else f (n - 1) + f (n - 2) in
  f n

let sum_range n =
  Printf.sprintf
    {|
def range n = if n == 0 then nil else cons(n, range(n - 1));
def map_double xs = if isnil(xs) then nil else cons(2 * head(xs), map_double(tail(xs)));
def sum xs = if isnil(xs) then 0 else head(xs) + sum(tail(xs));
def main = sum(map_double(range(%d)));
|}
    n

let sum_range_expected n = n * (n + 1)

let mutual n =
  Printf.sprintf
    {|
def even n = if n == 0 then true else odd(n - 1);
def odd n = if n == 0 then false else even(n - 1);
def main = if even(%d) then 1 else 0;
|}
    n

let speculative n =
  Printf.sprintf
    {|
# The predicate takes a while to compute; both branches are eagerly
# requested meanwhile. The losing branch is a sizeable computation whose
# tasks all become irrelevant once the predicate resolves.
def slowly n = if n == 0 then 0 else slowly(n - 1);
def burn n = if n == 0 then 1 else burn(n - 1) + burn(n - 1);
def main = if slowly(%d) == 0 then 42 else burn(18);
|}
    n

let divergent_speculation =
  {|
def spin x = spin(x + 1);
def slowly n = if n == 0 then 0 else slowly(n - 1);
def main = if slowly(24) == 0 then 7 else spin(0);
|}

let deadlock = {|
def main = bottom + 1;
|}

let shared =
  {|
# d is shared: demanded vitally through one path and eagerly through the
# conditional's losing branch.
def main =
  let d = 21 + 21 in
  if 1 < 2 then d else d + head(nil);
|}

let speculative_deep n m =
  Printf.sprintf
    {|
# The vital side is a deep recursion whose frames exceed the machine's
# memory unless reclaimed; the losing branch is a large eager computation.
def slowly n = if n == 0 then 0 else slowly(n - 1);
def burn n = if n == 0 then 1 else burn(n - 1) + burn(n - 1);
def main = if slowly(%d) == 0 then 42 else burn(%d);
|}
    n m
