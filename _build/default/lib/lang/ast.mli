open Dgr_graph

(** Abstract syntax of the small functional language compiled onto the
    computation graph.

    The language is first-order (top-level function definitions only,
    applied saturated), call-by-need with speculative conditionals — just
    enough to write the workloads the paper motivates: recursive
    arithmetic, list processing, speculation, and deliberately divergent
    terms ([bottom]) for the deadlock experiments. *)

type expr =
  | Int of int
  | Bool of bool
  | Nil
  | Var of string
  | Let of string * expr * expr  (** shared subexpression (one graph vertex) *)
  | If of expr * expr * expr
  | Prim of Label.prim * expr list
  | Cons of expr * expr
  | Call of string * expr list
  | Bottom  (** an expression with value ⊥ *)

type def = { name : string; params : string list; body : expr }

type program = def list

val pp_expr : Format.formatter -> expr -> unit

val pp_def : Format.formatter -> def -> unit

val free_vars : expr -> string list
(** Variables not bound by enclosing [Let]s, in first-occurrence order. *)
