(** Canonical example programs used by tests, examples and benches. *)

val fib : int -> string
(** Naive doubly-recursive Fibonacci of [n]; heavy graph expansion. *)

val fib_expected : int -> int

val sum_range : int -> string
(** Builds the list [\[n, n-1, ..., 1\]], doubles it with [map], sums it:
    list-processing workload with cons cells, head/tail projections. *)

val sum_range_expected : int -> int

val mutual : int -> string
(** Mutually recursive even/odd — exercises cross-template recursion. *)

val speculative : int -> string
(** A conditional whose predicate is slow and whose losing branch is a
    large eager computation — generates eager tasks that turn irrelevant
    (§3.2). *)

val speculative_deep : int -> int -> string
(** [speculative_deep n m]: the vital side recurses [n] deep (allocating
    ~8n vertices over its lifetime) while the losing branch is
    [burn m] — on a bounded heap this only completes if garbage is
    recycled. *)

val divergent_speculation : string
(** The losing branch diverges (an infinitely expanding call): without
    irrelevant-task deletion this generates unbounded parallel workload —
    §3.2 item 3 verbatim. [main] still has a value. *)

val deadlock : string
(** [main = bottom + 1]: the Fig 3-1 shape — root vitally awaits a vertex
    no task can ever reach. *)

val shared : string
(** A let-shared subexpression demanded both vitally and eagerly, for the
    reserve-task scenarios of Fig 3-2. *)
