(** Recursive-descent parser for the surface language.

    Syntax (see README for a tour):
    {v
    def fib n = if n < 2 then n else fib(n - 1) + fib(n - 2);
    def main = fib(15);
    v}

    Functions are applied with parenthesized argument lists; [head],
    [tail], [isnil], [not] and [cons] are builtin names; [\[e1, e2, ...\]]
    is list-literal sugar; [#] starts a line comment. *)

exception Parse_error of string

val parse_program : string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Error}. *)

val parse_expr : string -> Ast.expr
(** A single expression (for tests and the CLI's [--expr]). *)
