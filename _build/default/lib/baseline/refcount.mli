open Dgr_graph

(** Distributed reference counting — the alternative the paper dismisses
    (§4): "reference counting has particular deficiencies that make it
    unsuitable for our purposes, such as the inability to reclaim
    self-referencing structures, and the inability to perform the tracing
    necessary to identify task types."

    Counts incoming [args] edges. Every increment/decrement that crosses a
    PE boundary is tallied as a message (the steady-state network overhead
    RC pays that tracing does not). When a non-root vertex's count drops
    to zero it is reclaimed immediately and its outgoing references are
    decremented in cascade. Cyclic structures never reach zero — which is
    exactly what experiment E6 demonstrates. *)

type t

val create : Graph.t -> t
(** Adopts edges already present in the graph. *)

val set_on_free : t -> (Vid.t -> unit) -> unit
(** Called with each vertex id just before it is reclaimed — the engine
    uses it to expunge in-flight tasks addressing the dead vertex before
    the slot can be recycled. *)

val on_connect : t -> Vid.t -> Vid.t -> unit
(** Hook for [Mutator.on_connect] (parent, child). *)

val on_disconnect : t -> Vid.t -> Vid.t -> unit
(** Hook for [Mutator.on_disconnect]. Frees on zero, cascading. *)

val count : t -> Vid.t -> int
(** Current reference count (0 for free or never-referenced vertices). *)

val pin : t -> Vid.t -> unit
(** Add an external reference (used for the root and for long-lived
    handles the engine must keep alive). *)

val unpin : t -> Vid.t -> unit

val reclaimed : t -> int
(** Total vertices freed by RC so far. *)

val messages : t -> int
(** Cross-PE inc/dec messages tallied. *)

val leaked : t -> Vid.t list
(** Live vertices with a positive count that are unreachable from the
    root — the cyclic garbage RC can never reclaim (computed against the
    oracle; diagnostic only). *)
