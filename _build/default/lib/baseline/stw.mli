open Dgr_graph
open Dgr_task

(** Stop-the-world mark & sweep — the "conventional" collector the paper's
    concurrent scheme is measured against (§4: a static marking algorithm
    "would require that the computation be halted while marking takes
    place").

    [collect] runs synchronously: BFS-mark everything reachable from the
    root through [args], sweep the rest to the free list, purge tasks whose
    endpoints died. The returned [work] (vertices traced + table swept) is
    the pause the engine charges to the mutator. *)

type report = {
  marked : int;
  reclaimed : int;
  purged_tasks : int;
  work : int;  (** abstract pause cost: |trace| + |sweep| *)
}

val collect : Graph.t -> purge_tasks:((Task.t -> bool) -> int) -> report
