lib/baseline/stw.mli: Dgr_graph Dgr_task Graph Task
