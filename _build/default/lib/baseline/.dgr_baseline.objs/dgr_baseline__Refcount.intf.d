lib/baseline/refcount.mli: Dgr_graph Graph Vid
