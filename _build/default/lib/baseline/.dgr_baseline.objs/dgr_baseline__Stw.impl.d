lib/baseline/stw.ml: Dgr_analysis Dgr_graph Dgr_task Graph List Snapshot Task Vertex Vid
