lib/baseline/refcount.ml: Dgr_analysis Dgr_graph Graph Hashtbl List Option Snapshot Vertex Vid
