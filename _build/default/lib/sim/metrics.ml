open Dgr_util

type t = {
  mutable steps : int;
  mutable reduction_executed : int;
  mutable marking_executed : int;
  mutable remote_messages : int;
  mutable local_messages : int;
  mutable tasks_purged : int;
  mutable cycles_completed : int;
  mutable stw_collections : int;
  pauses : Stats.t;
  mutable total_pause_steps : int;
  mutable completion_step : int option;
  pool_depth : Stats.t;
  mutable peak_live : int;
  mutable deadlocks_recovered : int;
}

let create () =
  {
    steps = 0;
    reduction_executed = 0;
    marking_executed = 0;
    remote_messages = 0;
    local_messages = 0;
    tasks_purged = 0;
    cycles_completed = 0;
    stw_collections = 0;
    pauses = Stats.create ();
    total_pause_steps = 0;
    completion_step = None;
    pool_depth = Stats.create ();
    peak_live = 0;
    deadlocks_recovered = 0;
  }

let record_pause t steps =
  Stats.add t.pauses (float_of_int steps);
  t.total_pause_steps <- t.total_pause_steps + steps

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>steps=%d reduction=%d marking=%d msgs(remote/local)=%d/%d purged=%d cycles=%d \
     stw=%d pause(total/max)=%d/%.0f completion=%s peak_live=%d@]"
    t.steps t.reduction_executed t.marking_executed t.remote_messages t.local_messages
    t.tasks_purged t.cycles_completed t.stw_collections t.total_pause_steps
    (if Stats.count t.pauses = 0 then 0.0 else Stats.max_value t.pauses)
    (match t.completion_step with Some s -> string_of_int s | None -> "-")
    t.peak_live
