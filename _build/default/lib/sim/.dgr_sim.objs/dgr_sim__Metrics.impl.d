lib/sim/metrics.ml: Dgr_util Format Stats
