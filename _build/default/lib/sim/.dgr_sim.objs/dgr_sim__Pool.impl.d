lib/sim/pool.ml: Demand Dgr_graph Dgr_task Dgr_util Graph Int List Option Pqueue Task Vertex
