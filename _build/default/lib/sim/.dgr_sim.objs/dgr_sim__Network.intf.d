lib/sim/network.mli: Dgr_task Task
