lib/sim/metrics.mli: Dgr_util Format Stats
