lib/sim/engine.mli: Dgr_baseline Dgr_core Dgr_graph Dgr_reduction Dgr_task Graph Label Metrics Pool Task
