lib/sim/engine.ml: Array Dgr_baseline Dgr_core Dgr_graph Dgr_reduction Dgr_task Dgr_util Graph Int Label List Metrics Network Pool Printf Rng Task Vertex Vid
