lib/sim/pool.mli: Dgr_graph Dgr_task Graph Task
