lib/sim/network.ml: Dgr_task Dgr_util List Pqueue Task
