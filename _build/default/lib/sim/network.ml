open Dgr_util
open Dgr_task

type t = { q : (int * Task.t) Pqueue.t }

let create () = { q = Pqueue.create () }

let send t ~arrival ~pe task = Pqueue.add t.q arrival (pe, task)

let deliver t ~now =
  let rec loop acc =
    match Pqueue.peek t.q with
    | Some (arrival, _) when arrival <= now -> (
      match Pqueue.pop t.q with
      | Some (_, entry) -> loop (entry :: acc)
      | None -> acc)
    | Some _ | None -> acc
  in
  List.rev (loop [])

let in_flight t = List.map (fun (_, (_, task)) -> task) (Pqueue.to_list t.q)

let purge t pred =
  let before = Pqueue.length t.q in
  Pqueue.filter_in_place (fun _ (_, task) -> not (pred task)) t.q;
  before - Pqueue.length t.q

let size t = Pqueue.length t.q

let entries t = List.map (fun (arr, (_, task)) -> (arr, task)) (Pqueue.to_list t.q)
