lib/analysis/classify.mli: Dgr_graph Dgr_task Format Reach Snapshot Task Vid
