lib/analysis/classify.ml: Array Dgr_graph Dgr_task Format List Reach Snapshot Task Vid
