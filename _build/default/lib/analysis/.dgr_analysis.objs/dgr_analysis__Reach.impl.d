lib/analysis/reach.ml: Array Dgr_graph Dgr_task Int List Queue Snapshot Task Vertex Vid
