lib/analysis/reach.mli: Dgr_graph Dgr_task Snapshot Task Vid
