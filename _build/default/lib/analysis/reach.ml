open Dgr_graph
open Dgr_task

type t = {
  root_reachable : Vid.Set.t;
  best_priority : int Vid.Map.t;
  r_v : Vid.Set.t;
  r_e : Vid.Set.t;
  r_r : Vid.Set.t;
  task_reachable : Vid.Set.t;
}

let request_type (v : Snapshot.vertex) c =
  if List.exists (Vid.equal c) v.Snapshot.req_v then 3
  else if List.exists (Vid.equal c) v.Snapshot.req_e then 2
  else 1

let bfs snap ~seeds ~children =
  let visited = ref Vid.Set.empty in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      if (not (Vid.Set.mem v !visited)) && not (Snapshot.vertex snap v).Snapshot.free then begin
        visited := Vid.Set.add v !visited;
        Queue.add v queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun c ->
        if (not (Vid.Set.mem c !visited)) && not (Snapshot.vertex snap c).Snapshot.free then begin
          visited := Vid.Set.add c !visited;
          Queue.add c queue
        end)
      (children (Snapshot.vertex snap v))
  done;
  !visited

let reachable_from snap seeds = bfs snap ~seeds ~children:(fun v -> v.Snapshot.args)

let mapsto_children (v : Snapshot.vertex) =
  let requesters =
    List.filter_map (fun (e : Vertex.request_entry) -> e.Vertex.who) v.Snapshot.requested
  in
  let requested_args = v.Snapshot.req_v @ v.Snapshot.req_e in
  let unreq =
    List.filter (fun c -> not (List.exists (Vid.equal c) requested_args)) v.Snapshot.args
  in
  requesters @ unreq

let task_reachable_from snap tasks =
  let seeds = List.concat_map Task.reduction_endpoints tasks in
  bfs snap ~seeds ~children:mapsto_children

(* Max-min priority fixpoint: prio(root) = 3,
   prio(c) >= min(prio(v), request-type(c, v)). Processing vertices in
   descending priority order (3 then 2 then 1) gives each vertex its final
   value the first time it is assigned, so a simple bucketed BFS
   suffices. *)
let best_priorities snap =
  match snap.Snapshot.root with
  | None -> Vid.Map.empty
  | Some root when (Snapshot.vertex snap root).Snapshot.free -> Vid.Map.empty
  | Some root ->
    let prio = ref Vid.Map.empty in
    let buckets = [| Queue.create (); Queue.create (); Queue.create () |] in
    (* bucket index = priority - 1 *)
    let assign v p =
      match Vid.Map.find_opt v !prio with
      | Some q when q >= p -> ()
      | Some _ | None ->
        prio := Vid.Map.add v p !prio;
        Queue.add v buckets.(p - 1)
    in
    assign root 3;
    for p = 3 downto 1 do
      let bucket = buckets.(p - 1) in
      while not (Queue.is_empty bucket) do
        let v = Queue.pop bucket in
        (* Skip entries superseded by a later, higher assignment. *)
        if Vid.Map.find_opt v !prio = Some p then begin
          let vx = Snapshot.vertex snap v in
          List.iter
            (fun c ->
              if not (Snapshot.vertex snap c).Snapshot.free then
                assign c (Int.min p (request_type vx c)))
            vx.Snapshot.args
        end
      done
    done;
    !prio

let compute snap ~tasks =
  let root_reachable =
    match snap.Snapshot.root with
    | None -> Vid.Set.empty
    | Some root -> reachable_from snap [ root ]
  in
  let best_priority = best_priorities snap in
  let set_of p =
    Vid.Map.fold (fun v q acc -> if q = p then Vid.Set.add v acc else acc) best_priority
      Vid.Set.empty
  in
  {
    root_reachable;
    best_priority;
    r_v = set_of 3;
    r_e = set_of 2;
    r_r = set_of 1;
    task_reachable = task_reachable_from snap tasks;
  }
