open Dgr_graph
open Dgr_task
open Task

type sets = {
  reach : Reach.t;
  free : Vid.Set.t;
  garbage : Vid.Set.t;
  deadlocked : Vid.Set.t;
  deadlocked_plain : Vid.Set.t;
}

let compute snap ~tasks =
  let reach = Reach.compute snap ~tasks in
  let free = Snapshot.free_set snap in
  let all =
    Array.fold_left (fun acc (v : Snapshot.vertex) -> Vid.Set.add v.Snapshot.id acc)
      Vid.Set.empty snap.Snapshot.verts
  in
  let garbage = Vid.Set.diff (Vid.Set.diff all reach.Reach.root_reachable) free in
  let deadlocked = Vid.Set.diff reach.Reach.r_v reach.Reach.task_reachable in
  let deadlocked_plain =
    Vid.Set.diff reach.Reach.root_reachable reach.Reach.task_reachable
  in
  { reach; free; garbage; deadlocked; deadlocked_plain }

type task_kind = Vital | Eager | Reserve | Irrelevant | Unclassified

let task_kind_to_string = function
  | Vital -> "vital"
  | Eager -> "eager"
  | Reserve -> "reserve"
  | Irrelevant -> "irrelevant"
  | Unclassified -> "unclassified"

let pp_task_kind fmt k = Format.pp_print_string fmt (task_kind_to_string k)

let destination = function
  | Request { dst; _ } -> Some dst
  | Respond { dst; _ } -> dst
  | Cancel { dst; _ } -> Some dst

let classify_task sets task =
  match destination task with
  | None -> Unclassified
  | Some d ->
    if Vid.Set.mem d sets.garbage then Irrelevant
    else if Vid.Set.mem d sets.reach.Reach.r_v then Vital
    else if Vid.Set.mem d sets.reach.Reach.r_e then Eager
    else if Vid.Set.mem d sets.reach.Reach.r_r then Reserve
    else Unclassified

let classify_tasks sets tasks = List.map (fun t -> (t, classify_task sets t)) tasks

type venn = {
  n_vital : int;
  n_eager : int;
  n_reserve : int;
  n_task_only : int;
  n_garbage : int;
  n_garbage_task : int;
  n_deadlocked : int;
  n_free : int;
  n_live : int;
}

let venn snap sets =
  let r = sets.reach in
  let t = r.Reach.task_reachable in
  {
    n_vital = Vid.Set.cardinal r.Reach.r_v;
    n_eager = Vid.Set.cardinal r.Reach.r_e;
    n_reserve = Vid.Set.cardinal r.Reach.r_r;
    n_task_only = Vid.Set.cardinal (Vid.Set.diff t r.Reach.root_reachable);
    n_garbage = Vid.Set.cardinal sets.garbage;
    n_garbage_task = Vid.Set.cardinal (Vid.Set.inter sets.garbage t);
    n_deadlocked = Vid.Set.cardinal sets.deadlocked;
    n_free = Vid.Set.cardinal sets.free;
    n_live = List.length (Snapshot.live snap);
  }

let pp_venn fmt v =
  Format.fprintf fmt
    "@[<v>R_v=%d R_e=%d R_r=%d T\\R=%d GAR=%d GAR∩T=%d DL_v=%d F=%d live=%d@]" v.n_vital
    v.n_eager v.n_reserve v.n_task_only v.n_garbage v.n_garbage_task v.n_deadlocked v.n_free
    v.n_live
