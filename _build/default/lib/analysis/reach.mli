open Dgr_graph
open Dgr_task

(** The reachability oracle — global, stop-the-world evaluation of the
    paper's set definitions (§2.2, §3.2) over an immutable snapshot.

    This module is the ground truth the decentralized algorithms are
    tested against: [Dgr_core] must compute the same sets while the graph
    mutates under it.

    Conventions: the paper's priority encoding is used throughout — the
    {e best priority} of a vertex is the maximum over all root paths of
    the minimum request-type along the path (3 all-vital path, 2 a path
    through requested args with at least one eager arc, 1 a path with an
    un-requested arc; 0 = unreachable). Then R_v / R_e / R_r are the
    vertices of best priority 3 / 2 / 1, which matches both §3.2's path
    formulations and what a completed M_R leaves in [prior]. *)

type t = {
  root_reachable : Vid.Set.t;  (** R: reachable from the root via args *)
  best_priority : int Vid.Map.t;  (** 3/2/1 for vertices in R, absent = 0 *)
  r_v : Vid.Set.t;  (** best priority 3 *)
  r_e : Vid.Set.t;  (** best priority 2 *)
  r_r : Vid.Set.t;  (** best priority 1 *)
  task_reachable : Vid.Set.t;
      (** T: reachable from some task's endpoints via
          requested ∪ (args − req-args) *)
}

val compute : Snapshot.t -> tasks:Task.reduction list -> t

val reachable_from : Snapshot.t -> Vid.t list -> Vid.Set.t
(** Plain args-reachability from a seed set (helper, also used by the
    stop-the-world baseline). *)

val task_reachable_from : Snapshot.t -> Task.reduction list -> Vid.Set.t
(** T-style reachability (the [↦*] relation) from task endpoints. *)
