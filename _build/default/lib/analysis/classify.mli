open Dgr_graph
open Dgr_task

(** Static characterization of vertices and tasks — Properties 1-6 (§3).

    Everything here is oracle-side (global snapshot), mirroring what the
    decentralized cycle discovers incrementally. *)

type sets = {
  reach : Reach.t;
  free : Vid.Set.t;  (** F *)
  garbage : Vid.Set.t;  (** Property 1: GAR = V − R − F *)
  deadlocked : Vid.Set.t;  (** Property 2': DL_v = R_v − T *)
  deadlocked_plain : Vid.Set.t;  (** Property 2: DL = R − T *)
}

val compute : Snapshot.t -> tasks:Task.reduction list -> sets

type task_kind = Vital | Eager | Reserve | Irrelevant | Unclassified

val task_kind_to_string : task_kind -> string

val pp_task_kind : Format.formatter -> task_kind -> unit

val classify_task : sets -> Task.reduction -> task_kind
(** Properties 3-6, dispatching on the task's destination [d]:
    - [Vital]: d ∈ R_v;
    - [Eager]: d ∈ R_e − R_v;
    - [Reserve]: d ∈ R_r − R_e − R_v;
    - [Irrelevant]: d ∈ GAR;
    - [Unclassified]: anything else (e.g. a response to the external
      requester, or a task into F — transient states not covered by the
      paper's taxonomy). *)

val classify_tasks : sets -> Task.reduction list -> (Task.reduction * task_kind) list

type venn = {
  n_vital : int;  (** |R_v| *)
  n_eager : int;  (** |R_e − R_v| — but R_e ∩ R_v may be nonempty; see note *)
  n_reserve : int;
  n_task_only : int;  (** |T − R| *)
  n_garbage : int;
  n_garbage_task : int;  (** |GAR ∩ T| — irrelevant-task territory (§3.1) *)
  n_deadlocked : int;
  n_free : int;
  n_live : int;
}

val venn : Snapshot.t -> sets -> venn
(** The region sizes of Fig 3-3. *)

val pp_venn : Format.formatter -> venn -> unit
