lib/task/task.ml: Demand Dgr_graph Format Label Plane Vertex Vid
