lib/task/task.mli: Demand Dgr_graph Format Label Plane Vertex Vid
