open Dgr_graph
open Dgr_task

(** In-process marking engine.

    Executes marking tasks from a single queue until quiescence — no PEs,
    no network. This is the harness for unit tests, property tests (which
    interleave adversarial mutations between task executions), and the
    algorithmic micro-benchmarks; the full distributed execution lives in
    [Dgr_sim].

    The dequeue [order] explores different legal schedules of the
    decentralized algorithm: results must be order-insensitive, which the
    property tests assert. *)

type order = Fifo | Lifo | Random of Dgr_util.Rng.t

type t

val create : ?order:order -> Graph.t -> t
(** Default order is [Fifo]. *)

val graph : t -> Graph.t

val mutator : t -> Mutator.t
(** A mutator whose [spawn] feeds this engine's queue. Its [active] list
    is maintained by [start]/[drain]. *)

val start : t -> Run.variant -> seeds:Vid.t list -> Run.t
(** Create a run, enqueue a seed task per vertex (parent [Rootpar]) and
    register the run with the mutator. A duplicate-free seed list is the
    caller's responsibility (duplicates are legal but wasteful). *)

val pending : t -> Task.mark list

val step : t -> bool
(** Execute one task; [false] when the queue is empty. Raises
    [Invalid_argument] if a task's run was never started. *)

val drain : ?interleave:(int -> unit) -> ?max_steps:int -> t -> int
(** Execute until the queue is empty; returns the number of tasks
    executed. [interleave n] is called before the [n]-th execution (the
    mutation adversary). Raises [Failure] after [max_steps] (default
    10_000_000) as a non-termination guard. *)

val mark : ?order:order -> Graph.t -> Run.variant -> seeds:Vid.t list -> Run.t
(** One-shot convenience: create an engine, [start], [drain], return the
    finished run. *)
