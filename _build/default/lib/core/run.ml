open Dgr_graph

type variant = Basic | Priority | Tasks

type t = {
  graph : Graph.t;
  plane : Plane.id;
  variant : variant;
  mutable outstanding_seeds : int;
  mutable finished : bool;
  mutable marks_executed : int;
  mutable returns_executed : int;
  mutable coop_spawns : int;
  mutable coop_closure : int;
}

let plane_of_variant = function Basic | Priority -> Plane.MR | Tasks -> Plane.MT

let create graph variant =
  {
    graph;
    plane = plane_of_variant variant;
    variant;
    outstanding_seeds = 0;
    finished = false;
    marks_executed = 0;
    returns_executed = 0;
    coop_spawns = 0;
    coop_closure = 0;
  }

let seed_added t = t.outstanding_seeds <- t.outstanding_seeds + 1

let seed_returned t =
  if t.outstanding_seeds <= 0 then invalid_arg "Run.seed_returned: no outstanding seeds";
  t.outstanding_seeds <- t.outstanding_seeds - 1;
  if t.outstanding_seeds = 0 then t.finished <- true

let check_trivially_finished t = if t.outstanding_seeds = 0 then t.finished <- true

let pp fmt t =
  let variant =
    match t.variant with Basic -> "basic" | Priority -> "M_R" | Tasks -> "M_T"
  in
  Format.fprintf fmt "%s[%a] seeds=%d finished=%b marks=%d returns=%d" variant Plane.pp_id
    t.plane t.outstanding_seeds t.finished t.marks_executed t.returns_executed
