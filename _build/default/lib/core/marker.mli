open Dgr_graph
open Dgr_task

(** Atomic execution of marking tasks (Figs 4-1, 5-1, 5-3).

    [execute run task] runs one marking task to completion against the
    run's plane and returns the mark tasks it spawns. Task execution is
    atomic with respect to the vertex it manipulates (§2.1); in the
    simulator the spawned tasks travel through the network, in the
    synchronous engine they are queued locally. A mark task addressed to a
    free vertex degenerates to an immediate return (its target was
    reclaimed by an earlier cycle's restructuring; the next cycle will see
    the truth). *)

val execute : Run.t -> Task.mark -> Task.mark list
(** Raises [Invalid_argument] if the task does not belong to the run
    (wrong plane / variant). *)

val seed_for : Run.t -> Vid.t -> Task.mark
(** The seed task of the run's variant for a given vertex, with parent
    [Rootpar] and (for M_R) initial priority 3 — "we assume that the value
    of the root is essential to the overall computation" (§5.1). *)
