open Dgr_graph

(** State of one marking process (an instance of M_R or M_T).

    The paper detects termination with a dummy [rootpar] vertex and a
    [done] flag; we generalize the flag to a count of outstanding seeds so
    that M_T can be started from every task endpoint at once (the paper's
    [troot] / [taskroot_i] construction collapses to "one seed per
    endpoint, all crediting rootpar"). *)

type variant = Basic | Priority | Tasks
(** Which mark task drives this run: [Basic] = mark1 (Fig 4-1),
    [Priority] = mark2 / M_R (Fig 5-1), [Tasks] = mark3 / M_T (Fig 5-3). *)

type t = {
  graph : Graph.t;
  plane : Plane.id;
  variant : variant;
  mutable outstanding_seeds : int;
  mutable finished : bool;
  mutable marks_executed : int;
  mutable returns_executed : int;
  mutable coop_spawns : int;  (** mark tasks spawned by cooperating mutators *)
  mutable coop_closure : int;  (** vertices marked synchronously by closure cooperation *)
}

val create : Graph.t -> variant -> t
(** A run with no seeds; [finished] is false until seeds are added and all
    have returned. The plane is implied by the variant ([Tasks] -> M_T,
    others -> M_R). *)

val plane_of_variant : variant -> Plane.id

val seed_added : t -> unit
(** Record that a seed mark task (with parent [Rootpar]) was spawned. *)

val seed_returned : t -> unit
(** A [Return] reached [Rootpar]; the run finishes when the count drops to
    zero. *)

val check_trivially_finished : t -> unit
(** A run seeded with zero seeds is immediately finished. *)

val pp : Format.formatter -> t -> unit
