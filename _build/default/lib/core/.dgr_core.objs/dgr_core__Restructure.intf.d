lib/core/restructure.mli: Dgr_graph Dgr_task Format Graph Task Vid
