lib/core/run.ml: Dgr_graph Format Graph Plane
