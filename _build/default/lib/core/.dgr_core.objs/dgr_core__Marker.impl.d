lib/core/marker.ml: Dgr_graph Dgr_task Format Graph List Plane Run Task Trace Vertex Vid
