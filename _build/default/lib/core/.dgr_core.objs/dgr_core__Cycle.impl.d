lib/core/cycle.ml: Dgr_graph Dgr_task Flood Graph List Marker Mutator Option Plane Restructure Run Task Termination Vertex Vid
