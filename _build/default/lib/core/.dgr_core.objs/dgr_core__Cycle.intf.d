lib/core/cycle.mli: Dgr_graph Dgr_task Flood Graph Mutator Plane Restructure Run Task Vid
