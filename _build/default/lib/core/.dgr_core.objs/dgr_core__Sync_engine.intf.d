lib/core/sync_engine.mli: Dgr_graph Dgr_task Dgr_util Graph Mutator Run Task Vid
