lib/core/run.mli: Dgr_graph Format Graph Plane
