lib/core/flood.mli: Dgr_graph Dgr_task Graph Plane Run Task Vid
