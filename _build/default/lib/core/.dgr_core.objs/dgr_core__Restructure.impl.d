lib/core/restructure.ml: Dgr_graph Dgr_task Format Graph List Plane Task Vertex Vid
