lib/core/invariants.mli: Dgr_task Run Task
