lib/core/trace.ml: Dgr_graph Graph Int List Plane Vertex
