lib/core/flood.ml: Array Dgr_graph Dgr_task Graph List Plane Run Task Trace Vertex
