lib/core/termination.ml:
