lib/core/marker.mli: Dgr_graph Dgr_task Run Task Vid
