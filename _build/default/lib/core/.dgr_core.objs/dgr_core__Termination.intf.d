lib/core/termination.mli:
