lib/core/mutator.ml: Dgr_graph Dgr_task Flood Graph Int List Marker Plane Printf Run Task Trace Vertex Vid
