lib/core/invariants.ml: Dgr_graph Dgr_task Graph List Plane Printf Run String Task Trace Vertex Vid
