lib/core/sync_engine.ml: Dgr_graph Dgr_task Dgr_util Fun Graph List Marker Mutator Plane Rng Run Task Vec
