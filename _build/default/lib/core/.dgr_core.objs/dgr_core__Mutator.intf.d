lib/core/mutator.mli: Demand Dgr_graph Dgr_task Flood Graph Run Task Vertex Vid
