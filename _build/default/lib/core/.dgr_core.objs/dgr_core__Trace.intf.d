lib/core/trace.mli: Dgr_graph Graph Plane Vid
