open Dgr_graph
open Dgr_task

(** The restructuring phase (§4).

    Runs after a marking cycle completes (M_T, if scheduled, then M_R) and
    performs the "appropriate action" for each identified set:

    - vertices in GAR' = V − R' − F are returned to the free list
      (Theorem 1 guarantees GAR(t_b) ⊆ GAR' ⊆ GAR(t_c));
    - tasks whose endpoints lie in GAR' are expunged — these are exactly
      the irrelevant tasks of Property 6 (plus stale responses/cancels
      to/from reclaimed vertices, which would otherwise dangle once vertex
      slots are recycled);
    - dangling [requested] entries naming reclaimed vertices are dropped;
    - deadlocked vertices DL'_v = R'_v − T' are reported (only when M_T ran
      this cycle; Theorem 2);
    - every live marked vertex's M_R priority is copied to its persistent
      [sched_prior] so PE pools can re-prioritize queued tasks (§3.2), and
      the pools are asked to re-sort;
    - both marking planes are reset for the next cycle.

    The paper leaves this phase "to be tailored to a particular system";
    this is the obvious instantiation for ours (see DESIGN.md §1). *)

type report = {
  garbage : Vid.t list;  (** vertices reclaimed this cycle *)
  deadlocked : Vid.t list;  (** DL'_v; empty when M_T did not run *)
  deadlock_checked : bool;
  irrelevant_purged : int;  (** reduction tasks expunged *)
  reprioritized : int;  (** pool tasks whose priority changed *)
}

val run :
  graph:Graph.t ->
  deadlock_checked:bool ->
  purge_tasks:((Task.t -> bool) -> int) ->
  reprioritize:(unit -> int) ->
  unit ->
  report
(** [purge_tasks pred] must delete every pending/in-flight task satisfying
    [pred] from pools and network and return how many were deleted;
    [reprioritize ()] re-sorts pool entries by current priorities and
    returns how many moved. Both are provided by the engine driving the
    system. *)

val pp_report : Format.formatter -> report -> unit
