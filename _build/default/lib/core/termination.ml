type t = {
  window : int;
  mutable first : (int * int) option;  (** (step, sent) of the first quiet wave *)
  mutable terminated : bool;
}

let create ~window = { window; first = None; terminated = false }

let observe t ~now ~sent ~executed =
  if not t.terminated then begin
    if sent <> executed then t.first <- None
    else
      match t.first with
      | None -> t.first <- Some (now, sent)
      | Some (step, sent0) ->
        if sent <> sent0 then t.first <- Some (now, sent)
        else if now - step >= t.window then t.terminated <- true
  end

let terminated t = t.terminated

let reset t =
  t.first <- None;
  t.terminated <- false
