lib/reduction/template.ml: Array Dgr_core Dgr_graph Graph Hashtbl Label List Printf String Vertex
