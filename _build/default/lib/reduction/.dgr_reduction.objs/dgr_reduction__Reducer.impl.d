lib/reduction/reducer.ml: Demand Dgr_core Dgr_graph Dgr_task Dgr_util Graph Int Label List Logs Option Printf Task Template Vertex Vid
