lib/reduction/reducer.mli: Dgr_core Dgr_graph Dgr_task Dgr_util Graph Label Task Template Vid
