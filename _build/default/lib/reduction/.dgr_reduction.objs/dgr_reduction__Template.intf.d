lib/reduction/template.mli: Dgr_core Dgr_graph Graph Label Vid
