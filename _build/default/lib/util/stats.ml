type t = {
  samples : float Vec.t;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sorted : float array option; (* cache invalidated on add *)
}

let create () =
  { samples = Vec.create (); mean = 0.0; m2 = 0.0; min_v = nan; max_v = nan; sorted = None }

let add t x =
  Vec.push t.samples x;
  t.sorted <- None;
  let n = float_of_int (Vec.length t.samples) in
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if Float.is_nan t.min_v || x < t.min_v then t.min_v <- x;
  if Float.is_nan t.max_v || x > t.max_v then t.max_v <- x

let count t = Vec.length t.samples

let total t = Vec.fold_left ( +. ) 0.0 t.samples

let mean t = if count t = 0 then 0.0 else t.mean

let stddev t =
  let n = count t in
  if n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (n - 1))

let min_value t = t.min_v

let max_value t = t.max_v

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Vec.to_array t.samples in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  let a = sorted t in
  let n = Array.length a in
  if n = 0 then nan
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(Int.max 0 (Int.min (n - 1) (rank - 1)))
  end

type histogram = (float * float * int) list

let histogram ?(buckets = 10) t =
  let n = count t in
  if n = 0 || buckets <= 0 then []
  else begin
    let lo = t.min_v and hi = t.max_v in
    let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
    let counts = Array.make buckets 0 in
    Vec.iter
      (fun x ->
        let i = int_of_float ((x -. lo) /. width) in
        let i = Int.max 0 (Int.min (buckets - 1) i) in
        counts.(i) <- counts.(i) + 1)
      t.samples;
    List.init buckets (fun i ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), counts.(i)))
  end

let histogram_buckets h = h

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f"
    (count t) (mean t) (stddev t) (min_value t) (percentile t 50.0) (percentile t 99.0)
    (max_value t)
