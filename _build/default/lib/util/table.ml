type align = Left | Right

type t = {
  title : string;
  headers : string array;
  aligns : align array;
  rows : string array Vec.t;
}

let create ~title ~columns =
  {
    title;
    headers = Array.of_list (List.map fst columns);
    aligns = Array.of_list (List.map snd columns);
    rows = Vec.create ();
  }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" (Array.length t.headers)
         (Array.length row));
  Vec.push t.rows row

let add_rows t rows = List.iter (add_row t) rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  Vec.iter
    (fun row ->
      Array.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) row)
    t.rows;
  let buf = Buffer.create 256 in
  let sep =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let emit_row align_for row =
    Buffer.add_char buf '|';
    for i = 0 to ncols - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad (align_for i) widths.(i) row.(i));
      Buffer.add_string buf " |"
    done;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (sep ^ "\n");
  emit_row (fun _ -> Left) t.headers;
  Buffer.add_string buf (sep ^ "\n");
  Vec.iter (fun row -> emit_row (fun i -> t.aligns.(i)) row) t.rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print t = print_endline (render t)

let cell_f x = Printf.sprintf "%.2f" x

let cell_i n = string_of_int n

let cell_pct x = Printf.sprintf "%.1f%%" x

let cell_ratio x = Printf.sprintf "%.2fx" x
