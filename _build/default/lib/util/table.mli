(** ASCII table rendering for the experiment harness.

    Every experiment in EXPERIMENTS.md prints its results through this
    module so that bench output is uniform and diffable. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width does not match the header. *)

val add_rows : t -> string list list -> unit

val render : t -> string

val print : t -> unit
(** [render] followed by a newline on stdout. *)

val cell_f : float -> string
(** Standard float formatting for table cells ("%.2f"). *)

val cell_i : int -> string

val cell_pct : float -> string
(** Percentage with one decimal, e.g. "12.5%". *)

val cell_ratio : float -> string
(** Multiplicative factor, e.g. "3.42x". *)
