lib/util/vec.mli:
