lib/util/pqueue.ml: List Vec
