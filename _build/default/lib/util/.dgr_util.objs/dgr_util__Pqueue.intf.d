lib/util/pqueue.mli:
