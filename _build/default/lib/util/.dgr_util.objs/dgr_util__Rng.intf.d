lib/util/rng.mli:
