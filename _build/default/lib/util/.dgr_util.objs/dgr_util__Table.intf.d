lib/util/table.mli:
