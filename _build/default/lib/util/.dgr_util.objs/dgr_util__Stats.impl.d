lib/util/stats.ml: Array Float Format Int List Vec
