(** Running statistics and simple histograms for experiment reporting. *)

type t
(** A running accumulator of float samples (Welford's algorithm for
    variance; all samples retained for percentiles). *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0.0 when empty. *)

val stddev : t -> float
(** Sample standard deviation; 0.0 with fewer than two samples. *)

val min_value : t -> float
(** [nan] when empty. *)

val max_value : t -> float
(** [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], nearest-rank on sorted
    samples; [nan] when empty. *)

type histogram

val histogram : ?buckets:int -> t -> histogram
(** Equal-width histogram over the observed range (default 10 buckets). *)

val histogram_buckets : histogram -> (float * float * int) list
(** [(lo, hi, count)] per bucket. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: n/mean/stddev/min/p50/p99/max. *)
