open Dgr_graph
open Dgr_task

(** The paper's worked figures as constructible graph states. *)

type fig_3_1 = {
  graph : Graph.t;
  x : Vid.t;  (** the self-referential [x = x + 1] vertex *)
  one : Vid.t;
}

val fig_3_1 : ?num_pes:int -> unit -> fig_3_1
(** Fig 3-1: a vertex whose value directly depends on itself. The root is
    an indirection onto [x]; demanding the root deadlocks. *)

type fig_3_2 = {
  graph : Graph.t;
  if0 : Vid.t;  (** outer conditional (the root) *)
  if1 : Vid.t;  (** the predicate [p = if true then (a+1) else (a+b+c)] *)
  a1 : Vid.t;  (** [a+1] — vitally reachable *)
  d : Vid.t;  (** then-branch of [if0] — eagerly requested *)
  c : Vid.t;  (** else-branch of [if0] — dereferenced but still an arg *)
  abc : Vid.t;  (** [a+b+c] — dereferenced and disconnected: garbage *)
  tasks : Task.reduction list;
      (** one in-flight task per vertex of interest, in the order
          [a1; d; c; abc] — classifying them must yield vital, eager,
          reserve, irrelevant (Properties 3-6) *)
}

val fig_3_2 : ?num_pes:int -> unit -> fig_3_2
(** Fig 3-2 frozen at the instant the paper depicts: the inner conditional
    has resolved its predicate to [true], upgrading [a+1] to vital and
    dereferencing [a+b+c]; the outer conditional still speculates on its
    branches, and [c] has been dereferenced but remains an argument. *)
