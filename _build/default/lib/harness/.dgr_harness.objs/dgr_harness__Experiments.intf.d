lib/harness/experiments.mli: Dgr_util Table
