lib/harness/scenarios.ml: Builder Demand Dgr_graph Dgr_task Graph Label Task Vertex Vid
