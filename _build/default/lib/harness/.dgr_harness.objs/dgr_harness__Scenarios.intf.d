lib/harness/scenarios.mli: Dgr_graph Dgr_task Graph Task Vid
