(* Regenerate the differential fixture: prints the 20 golden lines to
   stdout (redirect into test/golden_engine.txt). With an integer
   argument, runs the fixture at that shard count instead — diffing the
   output at different counts is the quickest cross-domain determinism
   check outside the test suite:

     dune exec tools/regen_golden.exe > test/golden_engine.txt
     dune exec tools/regen_golden.exe -- 4 | diff test/golden_engine.txt - *)
let () =
  let domains =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1
  in
  List.iter print_endline (Dgr_harness.Bench.golden_lines ~domains ())
