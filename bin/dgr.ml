(* dgr — run programs on the distributed graph-reduction machine.

   Subcommands:
     dgr run FILE       evaluate a program (or -e EXPR) on the simulator
     dgr trace FILE     evaluate with event tracing, write a Perfetto trace
     dgr check FILE     parse + compile only
     dgr experiment ID  regenerate an experiment table (e1..e12, all)
     dgr bench          run the macro-benchmark suite, write BENCH.json
     dgr report         run a program or bench scenario, print the post-run
                        lineage/latency/health/serial-fraction analysis

   See `dgr run --help` for the machine knobs. *)

open Cmdliner
open Dgr_sim

let setup_logs level =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level level

let read_source file expr =
  match (file, expr) with
  | Some f, None -> Ok (In_channel.with_open_text f In_channel.input_all)
  | None, Some e -> Ok ("def main = " ^ e ^ ";")
  | Some _, Some _ -> Error "pass either FILE or --expr, not both"
  | None, None -> Error "a FILE or --expr is required"

(* --- machine configuration (shared by run and trace) ----------------- *)

type machine_opts = {
  pes : int;
  domains : int;
  latency : int;
  tasks_per_step : int;
  gc_str : string;
  heap : int option;
  idle_gap : int;
  deadlock_every : int;
  stw_every : int;
  policy_str : string;
  marking_str : string;
  recover_deadlock : bool;
  jitter : float;
  seed : int;
  no_speculate : bool;
  fault_drop : float;
  fault_dup : float;
  fault_delay : float;
  fault_stall : float;
  fault_crash : float;
  fault_crash_down : int;
  fault_seed : int;
  no_batch : bool;
}

let gc_of_string s ~deadlock_every ~idle_gap ~stw_every =
  match s with
  | "concurrent" -> Ok (Engine.Concurrent { deadlock_every; idle_gap })
  | "stw" -> Ok (Engine.Stop_the_world { every = stw_every })
  | "refcount" | "rc" -> Ok Engine.Refcount
  | "none" -> Ok Engine.No_gc
  | s -> Error (Printf.sprintf "unknown collector %S (concurrent|stw|refcount|none)" s)

let policy_of_string = function
  | "flat" -> Ok Pool.Flat
  | "by-demand" -> Ok Pool.By_demand
  | "dynamic" -> Ok Pool.Dynamic
  | s -> Error (Printf.sprintf "unknown policy %S (flat|by-demand|dynamic)" s)

let config_of_opts o =
  let ( let* ) = Result.bind in
  let* gc =
    gc_of_string o.gc_str ~deadlock_every:o.deadlock_every ~idle_gap:o.idle_gap
      ~stw_every:o.stw_every
  in
  let* policy = policy_of_string o.policy_str in
  let* marking =
    match o.marking_str with
    | "tree" -> Ok Dgr_core.Cycle.Tree
    | "flood" -> Ok Dgr_core.Cycle.Flood_counters
    | s -> Error (Printf.sprintf "unknown marking scheme %S (tree|flood)" s)
  in
  Ok
    (Engine.Config.make ~num_pes:o.pes ~domains:o.domains ~latency:o.latency
       ~tasks_per_step:o.tasks_per_step ~heap_size:o.heap ~pool_policy:policy
       ~speculate_if:(not o.no_speculate) ~gc ~marking
       ~recover_deadlock:o.recover_deadlock ~jitter:o.jitter ~seed:o.seed
       ~batch:(not o.no_batch)
       ~faults:
         {
           Faults.none with
           Faults.drop = o.fault_drop;
           duplicate = o.fault_dup;
           delay = o.fault_delay;
           stall = o.fault_stall;
           crash = o.fault_crash;
           crash_down_max = o.fault_crash_down;
           fault_seed = o.fault_seed;
         }
       ())

(* What each invocation wants written out. *)
type outputs = {
  trace : string option;  (** Chrome trace-event JSON *)
  timeseries : string option;  (** sampled per-PE series as CSV *)
  stats_json : string option;  (** {!Metrics.to_json} *)
  sample_every : int;
  show_stats : bool;
  dot_out : string option;
}

let execute ~file ~expr ~opts ~max_steps ~out =
  let ( let* ) = Result.bind in
  let* source = read_source file expr in
  let* config = config_of_opts opts in
  let* g, templates =
    try Ok (Dgr_lang.Compile.load_string ~num_pes:opts.pes source) with
    | Dgr_lang.Compile.Compile_error msg -> Error ("compile error: " ^ msg)
    | Dgr_lang.Parser.Parse_error msg -> Error ("parse error: " ^ msg)
    | Dgr_lang.Lexer.Error (msg, pos) ->
      Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
  in
  let recorder =
    if out.trace <> None || out.timeseries <> None then
      Some
        (Dgr_obs.Recorder.create ~capacity:262_144 ~sample_every:out.sample_every
           ~num_pes:opts.pes ())
    else None
  in
  let e = Engine.create ?recorder ~config g templates in
  Engine.inject_root_demand e;
  let (_ : int) = Engine.run ~max_steps e in
  Engine.dispose e;
  (match Engine.result e with
  | Some v -> Format.printf "result: %a@." Dgr_graph.Label.pp_value v
  | None ->
    Format.printf "no result after %d steps%s@." (Engine.now e)
      (match Engine.cycle e with
      | Some c
        when not (Dgr_graph.Vid.Set.is_empty (Dgr_core.Cycle.deadlocked_ever c)) ->
        " — deadlock detected: "
        ^ String.concat ", "
            (List.map Dgr_graph.Vid.to_string
               (Dgr_graph.Vid.Set.elements (Dgr_core.Cycle.deadlocked_ever c)))
      | _ -> ""));
  if out.show_stats then begin
    Format.printf "%a@." Metrics.pp_summary (Engine.metrics e);
    let red = Engine.reducer e in
    Format.printf
      "reducer: requests=%d responds=%d cancels=%d expansions=%d rewrites=%d stale=%d \
       alloc-stalls=%d@."
      red.Dgr_reduction.Reducer.requests_executed red.Dgr_reduction.Reducer.responds_executed
      red.Dgr_reduction.Reducer.cancels_executed red.Dgr_reduction.Reducer.expansions
      red.Dgr_reduction.Reducer.rewrites red.Dgr_reduction.Reducer.stale_dropped
      red.Dgr_reduction.Reducer.alloc_stalls;
    (match Engine.cycle e with
    | Some c ->
      Format.printf "gc: cycles=%d collected=%d deadlocked=%d@."
        (Dgr_core.Cycle.cycles_completed c)
        (Dgr_core.Cycle.total_garbage_collected c)
        (Dgr_graph.Vid.Set.cardinal (Dgr_core.Cycle.deadlocked_ever c))
    | None -> ());
    match Engine.refcount e with
    | Some rc ->
      Format.printf "rc: reclaimed=%d messages=%d leaked=%d@."
        (Dgr_baseline.Refcount.reclaimed rc)
        (Dgr_baseline.Refcount.messages rc)
        (List.length (Dgr_baseline.Refcount.leaked rc))
    | None -> ()
  end;
  try
    (match (out.trace, recorder) with
    | Some path, Some r ->
      Dgr_obs.Export.write_file path (Dgr_obs.Export.chrome_trace r);
      Format.printf "trace written to %s (%d events%s)@." path
        (Dgr_obs.Recorder.length r)
        (let d = Dgr_obs.Recorder.dropped r in
         if d = 0 then "" else Printf.sprintf ", %d dropped" d)
    | _ -> ());
    (match (out.timeseries, recorder) with
    | Some path, Some r ->
      Dgr_obs.Export.write_file path (Dgr_obs.Export.timeseries_csv r);
      Format.printf "time series written to %s@." path
    | _ -> ());
    (match out.stats_json with
    | Some path ->
      Dgr_obs.Export.write_file path (Metrics.to_json (Engine.metrics e));
      Format.printf "metrics written to %s@." path
    | None -> ());
    (match out.dot_out with
    | Some path ->
      Dgr_graph.Dot.to_file g path;
      Format.printf "graph written to %s@." path
    | None -> ());
    Ok ()
  with Sys_error msg -> Error msg

let report = function
  | Ok () -> 0
  | Error msg ->
    Format.eprintf "dgr: %s@." msg;
    1

let run_cmd file expr opts trace timeseries stats_json sample_every max_steps show_stats
    dot_out log_level =
  setup_logs log_level;
  report
    (execute ~file ~expr ~opts ~max_steps
       ~out:{ trace; timeseries; stats_json; sample_every; show_stats; dot_out })

let trace_cmd file expr opts output timeseries sample_every max_steps log_level =
  setup_logs log_level;
  report
    (execute ~file ~expr ~opts ~max_steps
       ~out:
         {
           trace = Some output;
           timeseries;
           stats_json = None;
           sample_every;
           show_stats = false;
           dot_out = None;
         })

let check_cmd file =
  match
    try
      let source = In_channel.with_open_text file In_channel.input_all in
      let program = Dgr_lang.Parser.parse_program source in
      let (_ : Dgr_reduction.Template.registry) = Dgr_lang.Compile.compile_program program in
      Ok (List.length program)
    with
    | Dgr_lang.Compile.Compile_error msg -> Error ("compile error: " ^ msg)
    | Dgr_lang.Parser.Parse_error msg -> Error ("parse error: " ^ msg)
    | Dgr_lang.Lexer.Error (msg, pos) ->
      Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
    | Sys_error msg -> Error msg
  with
  | Ok n ->
    Format.printf "%s: ok (%d definitions)@." file n;
    0
  | Error msg ->
    Format.eprintf "dgr: %s@." msg;
    1

let experiment_cmd id trace_dir =
  match Dgr_harness.Experiments.run ?trace_dir id with
  | () -> 0
  | exception Invalid_argument msg ->
    Format.eprintf "dgr: %s@." msg;
    1

let bench_cmd smoke deterministic domains batch out baseline alloc_budget
    serial_ceiling list_only compare compare_to =
  let module B = Dgr_harness.Bench in
  if list_only then begin
    List.iter print_endline (B.scenario_names ~smoke);
    0
  end
  else
    match compare with
    | Some base_path -> (
      match compare_to with
      | None ->
        Format.eprintf
          "dgr: --compare needs a second BENCH.json (dgr bench --compare A.json B.json)@.";
        1
      | Some cand_path -> (
        try
          let read p = In_channel.with_open_text p In_channel.input_all in
          print_string
            (B.compare_table ~baseline:(read base_path) ~candidate:(read cand_path));
          0
        with
        | Sys_error msg | Failure msg ->
          Format.eprintf "dgr: %s@." msg;
          1))
    | None ->
  (* no diff requested: run the suite *)
    match
      let rows =
        List.map
          (fun name ->
            match
              B.run_suite ~domains ~batch ~only:[ name ] ~smoke ~deterministic ()
            with
            | [ row ] ->
              Format.printf "%-24s %8d steps %9d tasks%s%s%s@." name row.B.steps
                row.B.tasks
                (if row.B.frames_sent = 0 then ""
                 else
                   Printf.sprintf "  %.1f tasks/frame" row.B.tasks_per_frame)
                (if deterministic || row.B.wall_ns = 0L then ""
                 else
                   Printf.sprintf "  %.0f steps/sec"
                     (float_of_int row.B.steps
                     /. (Int64.to_float row.B.wall_ns /. 1e9)))
                (if deterministic || row.B.wall_ns = 0L then ""
                 else Printf.sprintf "  serial=%.2f" row.B.serial_fraction);
              row
            | _ -> assert false)
          (B.scenario_names ~smoke)
      in
      let rows =
        (* With shards and live clocks, take a sequential reference pass
           and report the comparison; any digest divergence is a
           determinism bug and outranks the numbers. *)
        if domains > 1 && not deterministic then begin
          let seq = B.run_suite ~domains:1 ~batch ~smoke ~deterministic () in
          Format.printf "@.%-24s %13s %13s %9s@." "scenario" "seq steps/s"
            (Printf.sprintf "%dd steps/s" domains)
            "speedup";
          List.iter
            (fun (name, seq_sps, par_sps, agree) ->
              Format.printf "%-24s %13.0f %13.0f %8.2fx%s@." name seq_sps
                par_sps
                (if seq_sps > 0.0 then par_sps /. seq_sps else 0.0)
                (if agree then "" else "  DIGEST MISMATCH"))
            (B.speedup_table ~seq ~par:rows);
          B.with_speedups ~seq rows
        end
        else rows
      in
      let mode = if smoke then "smoke" else "full" in
      let json = B.to_json ~batch ~mode ~deterministic rows in
      Dgr_obs.Export.write_file out json;
      Format.printf "wrote %s (%d scenarios, mode=%s%s)@." out (List.length rows)
        mode
        (if deterministic then ", deterministic" else "");
      let rate_check =
        match baseline with
        | None -> Ok ()
        | Some path -> (
          let base = In_channel.with_open_text path In_channel.input_all in
          match B.regressions ~threshold:0.2 ~baseline:base rows with
          | [] ->
            Format.printf "no steps/sec regression beyond 20%% vs %s@." path;
            Ok ()
          | regs ->
            Error
              (String.concat "; "
                 (List.map
                    (fun (n, b, c) ->
                      Printf.sprintf "%s regressed: %.0f -> %.0f steps/sec" n b
                        c)
                    regs)))
      in
      let alloc_check =
        match alloc_budget with
        | None -> Ok ()
        | Some path -> (
          let doc = In_channel.with_open_text path In_channel.input_all in
          let budgets = B.scenario_alloc_budgets doc in
          match B.alloc_regressions ~budgets rows with
          | [] ->
            Format.printf "allocation within budget for every scenario in %s@."
              path;
            Ok ()
          | regs ->
            Error
              (String.concat "; "
                 (List.map
                    (fun (n, b, c) ->
                      Printf.sprintf
                        "%s over allocation budget: %.0f > %.0f minor \
                         words/step"
                        n c b)
                    regs)))
      in
      let serial_check =
        (* The Amdahl gate: the decentralized-cycle work is only real if
           the measured serial fraction on the marking-heavy storm stays
           under its committed ceiling. Wall-clock derived, so it is
           skipped on deterministic passes (the profile is zeroed). *)
        match serial_ceiling with
        | None -> Ok ()
        | Some _ when deterministic -> Ok ()
        | Some ceil -> (
          match
            List.find_opt (fun r -> r.B.name = "storm-tree-8k") rows
          with
          | None -> Ok ()
          | Some row when row.B.serial_fraction <= ceil ->
            Format.printf "serial fraction %.2f within ceiling %.2f on storm-tree-8k@."
              row.B.serial_fraction ceil;
            Ok ()
          | Some row ->
            Error
              (Printf.sprintf
                 "storm-tree-8k serial fraction over ceiling: %.2f > %.2f"
                 row.B.serial_fraction ceil))
      in
      (match (rate_check, alloc_check, serial_check) with
      | Ok (), Ok (), Ok () -> Ok ()
      | a, b, c ->
        let errs =
          List.filter_map
            (function Error e -> Some e | Ok () -> None)
            [ a; b; c ]
        in
        Error (String.concat "; " errs))
    with
    | Ok () -> 0
    | Error msg | (exception Sys_error msg) | (exception Failure msg) ->
      Format.eprintf "dgr: %s@." msg;
      1

(* [dgr report]: run a workload to completion, then render the post-run
   analysis (latency decomposition, critical-path lineages, health,
   serial fraction) from the engine's always-on observability. *)
let report_run ~file ~expr ~opts ~scenario ~deterministic ~max_steps ~out =
  let ( let* ) = Result.bind in
  let* e =
    match scenario with
    | Some name -> (
      match (file, expr) with
      | None, None -> (
        try Ok (Dgr_harness.Bench.run_for_report ~domains:opts.domains name)
        with Invalid_argument msg -> Error msg)
      | _ -> Error "pass either --scenario or FILE/--expr, not both")
    | None ->
      let* source = read_source file expr in
      let* config = config_of_opts opts in
      let* g, templates =
        try Ok (Dgr_lang.Compile.load_string ~num_pes:opts.pes source) with
        | Dgr_lang.Compile.Compile_error msg -> Error ("compile error: " ^ msg)
        | Dgr_lang.Parser.Parse_error msg -> Error ("parse error: " ^ msg)
        | Dgr_lang.Lexer.Error (msg, pos) ->
          Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
      in
      let e = Engine.create ~config g templates in
      Engine.inject_root_demand e;
      let (_ : int) = Engine.run ~max_steps e in
      Ok e
  in
  let text = Dgr_harness.Report.render ~deterministic e in
  Engine.dispose e;
  try
    (match out with
    | Some path ->
      Dgr_obs.Export.write_file path text;
      Format.printf "report written to %s@." path
    | None -> print_string text);
    Ok ()
  with Sys_error msg -> Error msg

let report_cmd file expr opts scenario deterministic max_steps out =
  report (report_run ~file ~expr ~opts ~scenario ~deterministic ~max_steps ~out)

(* --- cmdliner plumbing ---------------------------------------------- *)

let file_pos = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE")

let expr_arg =
  Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"EXPR"
         ~doc:"Evaluate $(docv) instead of a file (becomes $(b,def main = EXPR;)).")

let pes_arg =
  Arg.(value & opt int 4 & info [ "p"; "pes" ] ~docv:"N" ~doc:"Number of processing elements.")

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
         ~doc:"OCaml domains to shard the PEs across (capped at the PE count). \
               The run is bit-identical at every value.")

let latency_arg =
  Arg.(value & opt int 4 & info [ "latency" ] ~docv:"STEPS" ~doc:"Cross-PE message latency.")

let tps_arg =
  Arg.(value & opt int 2 & info [ "tasks-per-step" ] ~docv:"N"
         ~doc:"Per-PE reduction bandwidth per step.")

let gc_arg =
  Arg.(value & opt string "concurrent" & info [ "gc" ] ~docv:"MODE"
         ~doc:"Memory management: $(b,concurrent) (the paper's), $(b,stw), $(b,refcount), \
               $(b,none).")

let heap_arg =
  Arg.(value & opt (some int) (Some 50_000) & info [ "heap" ] ~docv:"N"
         ~doc:"Vertex-table bound (finite V, §2.2); 0 or negative for unbounded.")

let idle_gap_arg =
  Arg.(value & opt int 50 & info [ "idle-gap" ] ~docv:"STEPS"
         ~doc:"Steps between concurrent GC cycles.")

let deadlock_every_arg =
  Arg.(value & opt int 1 & info [ "deadlock-every" ] ~docv:"K"
         ~doc:"Run M_T (deadlock detection) every K-th cycle; 0 disables it.")

let stw_every_arg =
  Arg.(value & opt int 400 & info [ "stw-every" ] ~docv:"STEPS"
         ~doc:"Stop-the-world collection period.")

let policy_arg =
  Arg.(value & opt string "dynamic" & info [ "policy" ] ~docv:"P"
         ~doc:"Task-pool policy: $(b,flat), $(b,by-demand), $(b,dynamic).")

let marking_arg =
  Arg.(value & opt string "tree" & info [ "marking" ] ~docv:"SCHEME"
         ~doc:"Marking bookkeeping: $(b,tree) (Figs 4-1/5-1) or $(b,flood) (the §6 \
               two-counters-per-PE optimization).")

let recover_arg =
  Arg.(value & flag & info [ "recover-deadlock" ]
         ~doc:"Rewrite detected deadlocked operators to an error value (footnote 5's \
               is-bottom pseudo-function) instead of only reporting them.")

let jitter_arg =
  Arg.(value & opt float 0.0 & info [ "jitter" ] ~docv:"P"
         ~doc:"Probability of extra (seeded) delay on remote messages.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Seed for the machine's randomness.")

let no_spec_arg =
  Arg.(value & flag & info [ "no-speculation" ]
         ~doc:"Disable eager evaluation of conditional branches (pure laziness).")

let fault_drop_arg =
  Arg.(value & opt float 0.0 & info [ "fault-drop" ] ~docv:"P"
         ~doc:"Probability that a network frame is lost in transit. Any positive fault \
               probability turns on the reliable-delivery layer (acks, retransmission, \
               dedup).")

let fault_dup_arg =
  Arg.(value & opt float 0.0 & info [ "fault-dup" ] ~docv:"P"
         ~doc:"Probability that a data frame is duplicated in transit (the duplicate is \
               suppressed by receiver-side dedup).")

let fault_delay_arg =
  Arg.(value & opt float 0.0 & info [ "fault-delay" ] ~docv:"P"
         ~doc:"Probability that a frame takes extra, seeded delay (reordering).")

let fault_stall_arg =
  Arg.(value & opt float 0.0 & info [ "fault-stall" ] ~docv:"P"
         ~doc:"Per-PE, per-step probability that a transient stall begins (the PE stops \
               executing for a few steps; its pool and heap survive).")

let fault_crash_arg =
  Arg.(value & opt float 0.0 & info [ "fault-crash" ] ~docv:"P"
         ~doc:"Per-PE, per-step probability that the PE crashes outright: its task \
               pool, in-flight frames and graph segment are lost; the segment is \
               restored from a per-step checkpoint, its vertices re-home onto the \
               surviving PEs, and an interrupted marking phase restarts. A crash \
               that would leave no survivor is suppressed.")

let fault_crash_down_arg =
  Arg.(value & opt int 32 & info [ "fault-crash-down" ] ~docv:"STEPS"
         ~doc:"Maximum downtime of a crashed PE, in steps (the actual downtime is \
               seeded-uniform in [1, $(docv)]; the PE then rejoins empty-handed).")

let fault_seed_arg =
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"Seed for the fault plane's randomness, independent of $(b,--seed): same \
               config, seed and fault-seed replay byte-identically.")

let no_batch_arg =
  Arg.(value & flag & info [ "no-batch" ]
         ~doc:"Disable per-link frame batching: every task rides its own frame, as in \
               the paper's one-task-per-message model. The escape hatch for isolating \
               transport effects; batching changes no task-level semantics, only \
               frame counts and delivery grouping.")

let max_steps_arg =
  Arg.(value & opt int 1_000_000 & info [ "max-steps" ] ~docv:"N"
         ~doc:"Simulation step budget.")

let stats_arg = Arg.(value & flag & info [ "stats" ] ~doc:"Print run metrics.")

let dot_arg =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PATH"
         ~doc:"Write the final graph as Graphviz DOT.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH"
         ~doc:"Record structured events and write Chrome trace-event JSON (open in \
               Perfetto or chrome://tracing). Deterministic: same program, config and \
               seed produce byte-identical output.")

let timeseries_arg =
  Arg.(value & opt (some string) None & info [ "timeseries" ] ~docv:"PATH"
         ~doc:"Write the sampled per-PE time series (pool depth, throughput, live \
               vertices, messages in flight) as CSV.")

let stats_json_arg =
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"PATH"
         ~doc:"Write run metrics as a JSON object (machine-readable $(b,--stats)).")

let sample_every_arg =
  Arg.(value & opt int 20 & info [ "sample-every" ] ~docv:"STEPS"
         ~doc:"Time-series sampling interval, in simulation steps (0 disables sampling).")

let heap_normalize = function Some n when n <= 0 -> None | h -> h

let machine_term =
  Term.(
    const
      (fun pes domains latency tasks_per_step gc_str heap idle_gap deadlock_every
           stw_every policy_str marking_str recover_deadlock jitter seed no_speculate
           fault_drop fault_dup fault_delay fault_stall fault_crash fault_crash_down
           fault_seed no_batch ->
        {
          pes;
          domains;
          latency;
          tasks_per_step;
          gc_str;
          heap = heap_normalize heap;
          idle_gap;
          deadlock_every;
          stw_every;
          policy_str;
          marking_str;
          recover_deadlock;
          jitter;
          seed;
          no_speculate;
          fault_drop;
          fault_dup;
          fault_delay;
          fault_stall;
          fault_crash;
          fault_crash_down;
          fault_seed;
          no_batch;
        })
    $ pes_arg $ domains_arg $ latency_arg $ tps_arg $ gc_arg $ heap_arg $ idle_gap_arg
    $ deadlock_every_arg $ stw_every_arg $ policy_arg $ marking_arg $ recover_arg
    $ jitter_arg $ seed_arg $ no_spec_arg $ fault_drop_arg $ fault_dup_arg
    $ fault_delay_arg $ fault_stall_arg $ fault_crash_arg $ fault_crash_down_arg
    $ fault_seed_arg $ no_batch_arg)

let run_term =
  Term.(
    const
      (fun file expr opts trace timeseries stats_json sample_every ms stats dot ->
        run_cmd file expr opts trace timeseries stats_json sample_every ms stats dot
          (Some Logs.Warning))
    $ file_pos $ expr_arg $ machine_term $ trace_arg $ timeseries_arg $ stats_json_arg
    $ sample_every_arg $ max_steps_arg $ stats_arg $ dot_arg)

let run_cmd_v =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Evaluate a program on the simulated distributed machine.")
    run_term

let trace_out_arg =
  Arg.(value & opt string "trace.json" & info [ "o"; "output" ] ~docv:"PATH"
         ~doc:"Where to write the Chrome trace-event JSON.")

let trace_term =
  Term.(
    const
      (fun file expr opts output timeseries sample_every ms ->
        trace_cmd file expr opts output timeseries sample_every ms (Some Logs.Warning))
    $ file_pos $ expr_arg $ machine_term $ trace_out_arg $ timeseries_arg
    $ sample_every_arg $ max_steps_arg)

let trace_cmd_v =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Evaluate a program with event tracing on and write a Perfetto-viewable \
             Chrome trace (shorthand for $(b,run --trace)). Tracks: one per PE \
             (task execution and message instants), one for the marking plane \
             (M_T/M_R/restructure phase spans, deadlock and irrelevance verdicts), \
             one for the controller (pauses, heap pressure), plus counter tracks \
             for the sampled time series.")
    trace_term

let check_term =
  Term.(
    const (fun file ->
        match file with
        | Some f -> check_cmd f
        | None ->
          Format.eprintf "dgr: a FILE is required@.";
          1)
    $ file_pos)

let check_cmd_v =
  Cmd.v (Cmd.info "check" ~doc:"Parse and compile a program without running it.") check_term

let trace_dir_arg =
  Arg.(value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR"
         ~doc:"Also write a Chrome trace per simulated run into $(docv) (created if \
               missing), numbered per experiment: e4-01.json, e4-02.json, ...")

let experiment_term =
  let doc =
    Printf.sprintf "Experiment id: %s or $(b,all)."
      (String.concat ", " (List.map (Printf.sprintf "$(b,%s)") Dgr_harness.Experiments.ids))
  in
  Term.(
    const experiment_cmd
    $ Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
    $ trace_dir_arg)

let experiment_cmd_v =
  let man =
    `S Manpage.s_description
    :: `P "The registered experiments (see EXPERIMENTS.md):"
    :: List.map
         (fun (id, { Dgr_harness.Experiments.title; paper_ref }, _) ->
           `P (Printf.sprintf "$(b,%s) — %s (%s)" id title paper_ref))
         Dgr_harness.Experiments.all
  in
  Cmd.v
    (Cmd.info "experiment" ~man
       ~doc:"Regenerate an experiment table (see EXPERIMENTS.md).")
    experiment_term

let bench_smoke_arg =
  Arg.(value & flag & info [ "smoke" ]
         ~doc:"Run only the smoke subset — the cheap half of the suite at the same \
               sizes (a subset, not a miniature), so its rates compare directly \
               against a full-run baseline (CI).")

let bench_det_arg =
  Arg.(value & flag & info [ "deterministic" ]
         ~doc:"Skip the wall-clock and allocation meters and zero their fields: the \
               output is then byte-reproducible across runs and machines (the \
               determinism check in CI diffs two such files).")

let bench_domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
         ~doc:"Shard each scenario's machine across $(docv) OCaml domains. \
               Simulation fields and digests are identical at every value; with \
               $(docv) > 1 (and without $(b,--deterministic)) an extra \
               sequential pass runs and a sequential-vs-parallel speedup table \
               is printed.")

let bench_out_arg =
  Arg.(value & opt string "BENCH.json" & info [ "o"; "output" ] ~docv:"PATH"
         ~doc:"Where to write the results (versioned JSON, schema_version 5).")

let bench_no_batch_arg =
  Arg.(value & flag & info [ "no-batch" ]
         ~doc:"Run every scenario with frame batching off (one task per frame): the \
               transport floor to compare frames_sent and steps/sec against.")

let bench_baseline_arg =
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"PATH"
         ~doc:"Compare steps/sec per scenario against a committed BENCH.json and exit \
               non-zero if any scenario regressed by more than 20%.")

let bench_alloc_budget_arg =
  Arg.(value & opt (some string) None & info [ "alloc-budget" ] ~docv:"PATH"
         ~doc:"Compare minor words allocated per step against a committed \
               per-scenario budget file and exit non-zero if any scenario \
               exceeds its ceiling. Allocation per step is near-deterministic, \
               so the budget is absolute — no noise tolerance. Ignored under \
               $(b,--deterministic) (the meters are zeroed).")

let bench_serial_ceiling_arg =
  Arg.(value & opt (some float) None & info [ "serial-ceiling" ] ~docv:"FRAC"
         ~doc:"Fail if the measured Amdahl serial fraction on the storm-tree-8k \
               scenario exceeds $(docv) (in [0,1]). Skipped under \
               $(b,--deterministic), which zeroes the wall-clock profile.")

let bench_list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List the scenario names and exit.")

let bench_compare_arg =
  Arg.(value & opt (some string) None & info [ "compare" ] ~docv:"BASELINE"
         ~doc:"Diff two committed BENCH.json files instead of running the suite: \
               $(b,dgr bench --compare A.json B.json) prints a per-scenario table \
               of steps/sec, serial fraction, minor words/step and latency \
               percentile deltas from $(docv) to the positional candidate file.")

let bench_compare_to_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"CANDIDATE"
         ~doc:"The candidate BENCH.json for $(b,--compare).")

let bench_term =
  Term.(
    const bench_cmd $ bench_smoke_arg $ bench_det_arg $ bench_domains_arg
    $ Term.app (const not) bench_no_batch_arg $ bench_out_arg $ bench_baseline_arg
    $ bench_alloc_budget_arg $ bench_serial_ceiling_arg $ bench_list_arg
    $ bench_compare_arg $ bench_compare_to_arg)

let bench_cmd_v =
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the macro-benchmark suite — seeded end-to-end machine scenarios \
             (demand storms over large random graphs, programs under each collector, \
             fault and jitter planes) — and write BENCH.json: throughput \
             (steps/tasks/messages per second), allocation per step, marking-cycle \
             length, and a digest of each run's deterministic end state. See the \
             README's Benchmarking section.")
    bench_term

let report_scenario_arg =
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME"
         ~doc:"Analyze a bench-suite scenario (see $(b,dgr bench --list)) instead of \
               a FILE/$(b,--expr) program. Only $(b,--domains) applies among the \
               machine knobs; the scenario fixes the rest.")

let report_det_arg =
  Arg.(value & flag & info [ "deterministic" ]
         ~doc:"Omit the wall-clock step-phase section, making the report \
               byte-reproducible across runs and machines (the CI smoke check \
               diffs two such reports).")

let report_out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
         ~doc:"Write the report to $(docv) instead of stdout.")

let report_term =
  Term.(
    const report_cmd
    $ file_pos $ expr_arg $ machine_term $ report_scenario_arg $ report_det_arg
    $ max_steps_arg $ report_out_arg)

let report_cmd_v =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run a program (FILE or $(b,--expr)) or a bench scenario \
             ($(b,--scenario)) to completion and print the post-run analysis: \
             per-task latency percentiles decomposed into queue / network / \
             retransmit / execution components (from the causal lineage \
             tickets), the top critical-path lineages, health-watchdog \
             verdicts, transport efficiency, and the step-phase profile with \
             the measured Amdahl serial fraction.")
    report_term

let main =
  Cmd.group
    (Cmd.info "dgr" ~version:"1.0.0"
       ~doc:"Distributed graph reduction with decentralized concurrent marking (Hudak, PODC \
             1983).")
    [ run_cmd_v; trace_cmd_v; check_cmd_v; experiment_cmd_v; bench_cmd_v; report_cmd_v ]

let () = exit (Cmd.eval' main)
