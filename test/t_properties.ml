(* Property-based tests (qcheck): data-structure models, marking vs the
   oracle on random graphs, and a reference interpreter cross-check of
   the whole distributed engine on randomly generated programs. *)
open Dgr_graph
open Dgr_util
open Dgr_lang

let qtest = QCheck_alcotest.to_alcotest

(* --- data-structure models ------------------------------------------ *)

let prop_pqueue_model =
  QCheck.Test.make ~name:"pqueue pops in (priority, insertion) order" ~count:200
    QCheck.(list (pair (int_bound 10) small_int))
    (fun entries ->
      let q = Pqueue.create () in
      List.iter (fun (p, x) -> Pqueue.add q p x) entries;
      let popped = List.init (List.length entries) (fun _ -> Option.get (Pqueue.pop q)) in
      (* model: stable sort by priority *)
      let model = List.stable_sort (fun (p1, _) (p2, _) -> compare p1 p2) entries in
      popped = model)

let prop_pqueue_filter =
  QCheck.Test.make ~name:"pqueue filter keeps order among survivors" ~count:200
    QCheck.(list (pair (int_bound 5) small_int))
    (fun entries ->
      let q = Pqueue.create () in
      List.iter (fun (p, x) -> Pqueue.add q p x) entries;
      Pqueue.filter_in_place (fun _ x -> x mod 2 = 0) q;
      let popped = List.init (Pqueue.length q) (fun _ -> Option.get (Pqueue.pop q)) in
      let model =
        List.stable_sort (fun (p1, _) (p2, _) -> compare p1 p2)
          (List.filter (fun (_, x) -> x mod 2 = 0) entries)
      in
      popped = model)

let prop_vec_model =
  QCheck.Test.make ~name:"vec behaves like a list" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && (match (Vec.pop v, List.rev xs) with
         | None, [] -> true
         | Some x, y :: _ -> x = y
         | _ -> false)
      ||
      (* popped version still matches the prefix *)
      Vec.to_list v = List.filteri (fun i _ -> i < List.length xs - 1) xs)

let prop_rng_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle preserves the multiset" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* --- marking vs the oracle on random static graphs ------------------- *)

let graph_spec_gen =
  QCheck.Gen.(
    map3
      (fun live garbage seed ->
        ( { Builder.live = 5 + live; garbage; free_pool = 5;
            avg_degree = 1.0 +. (float_of_int (seed land 7) /. 3.0);
            cycle_bias = float_of_int (seed land 3) /. 4.0 },
          seed ))
      (int_bound 80) (int_bound 40) (int_bound 10_000))

let arbitrary_spec = QCheck.make graph_spec_gen

let prop_basic_marking_equals_reachability =
  QCheck.Test.make ~name:"mark1 marks exactly R (any order)" ~count:60 arbitrary_spec
    (fun (spec, seed) ->
      let g = Builder.random (Rng.create seed) spec in
      let order =
        match seed mod 3 with
        | 0 -> Dgr_core.Sync_engine.Fifo
        | 1 -> Dgr_core.Sync_engine.Lifo
        | _ -> Dgr_core.Sync_engine.Random (Rng.create (seed + 1))
      in
      let (_ : Dgr_core.Run.t) =
        Dgr_core.Sync_engine.mark ~order g Dgr_core.Run.Basic ~seeds:[ Graph.root g ]
      in
      let marked = Helpers.marked_set g Plane.MR in
      let expected =
        Dgr_analysis.Reach.reachable_from (Snapshot.take g) [ Graph.root g ]
      in
      Vid.Set.equal marked expected)

let prop_priority_marking_equals_oracle =
  QCheck.Test.make ~name:"mark2 priorities equal oracle max-min" ~count:60 arbitrary_spec
    (fun (spec, seed) ->
      let g = Builder.random_with_requests (Rng.create seed) spec in
      let (_ : Dgr_core.Run.t) =
        Dgr_core.Sync_engine.mark g Dgr_core.Run.Priority ~seeds:[ Graph.root g ]
      in
      let reach = Dgr_analysis.Reach.compute (Snapshot.take g) ~tasks:[] in
      Vid.Set.equal (Helpers.marked_with_prior g 3) reach.Dgr_analysis.Reach.r_v
      && Vid.Set.equal (Helpers.marked_with_prior g 2) reach.Dgr_analysis.Reach.r_e
      && Vid.Set.equal (Helpers.marked_with_prior g 1) reach.Dgr_analysis.Reach.r_r)

let prop_mt_marking_equals_oracle =
  QCheck.Test.make ~name:"mark3 marks exactly T" ~count:60 arbitrary_spec
    (fun (spec, seed) ->
      let g = Builder.random_with_requests (Rng.create seed) spec in
      let rng = Rng.create (seed * 3) in
      (* synthesize tasks over random requested entries *)
      let tasks =
        Graph.fold_live
          (fun acc v ->
            List.fold_left
              (fun acc (e : Vertex.request_entry) ->
                if Rng.int rng 2 = 0 then
                  Dgr_task.Task.Request
                    { src = e.Vertex.who; dst = (Vertex.id v); demand = e.Vertex.demand;
                      key = e.Vertex.key }
                  :: acc
                else acc)
              acc (Vertex.requested v))
          [] g
      in
      let seeds =
        List.concat_map Dgr_task.Task.reduction_endpoints tasks |> List.sort_uniq compare
      in
      let (_ : Dgr_core.Run.t) = Dgr_core.Sync_engine.mark g Dgr_core.Run.Tasks ~seeds in
      let marked = Helpers.marked_set g Plane.MT in
      let expected = Dgr_analysis.Reach.task_reachable_from (Snapshot.take g) tasks in
      Vid.Set.equal marked expected)

(* --- reference interpreter cross-check ------------------------------- *)

(* Random closed, total programs: arithmetic, booleans, lets, calls to a
   tiny library of total functions, conditionals, small lists. *)
module Gen_prog = struct
  open Ast

  let lib =
    {|
def dbl x = x + x;
def max2 a b = if a < b then b else a;
def addsat a b = let s = a + b in if s > 99 then 99 else s;
def len xs = if isnil(xs) then 0 else 1 + len(tail(xs));
def suml xs = if isnil(xs) then 0 else head(xs) + suml(tail(xs));
|}

  let rec gen_int env rng depth =
    if depth = 0 then
      match (env, Rng.int rng 3) with
      | x :: _, 0 -> Var x
      | _ -> Int (Rng.int rng 20 - 10)
    else
      match Rng.int rng 9 with
      | 0 -> Int (Rng.int rng 20 - 10)
      | 1 -> Prim (Label.Add, [ gen_int env rng (depth - 1); gen_int env rng (depth - 1) ])
      | 2 -> Prim (Label.Sub, [ gen_int env rng (depth - 1); gen_int env rng (depth - 1) ])
      | 3 -> Prim (Label.Mul, [ gen_int env rng (depth - 1); Int (Rng.int rng 5) ])
      | 4 -> If (gen_bool env rng (depth - 1), gen_int env rng (depth - 1),
                 gen_int env rng (depth - 1))
      | 5 ->
        let x = Printf.sprintf "x%d" (List.length env) in
        Let (x, gen_int env rng (depth - 1), gen_int (x :: env) rng (depth - 1))
      | 6 -> Call ("dbl", [ gen_int env rng (depth - 1) ])
      | 7 -> Call ("max2", [ gen_int env rng (depth - 1); gen_int env rng (depth - 1) ])
      | _ -> Call ("suml", [ gen_list env rng (Rng.int rng 4) ])

  and gen_bool env rng depth =
    if depth = 0 then Bool (Rng.bool rng)
    else
      match Rng.int rng 4 with
      | 0 -> Bool (Rng.bool rng)
      | 1 -> Prim (Label.Lt, [ gen_int env rng (depth - 1); gen_int env rng (depth - 1) ])
      | 2 -> Prim (Label.Not, [ gen_bool env rng (depth - 1) ])
      | _ -> Prim (Label.Eq, [ gen_int env rng (depth - 1); gen_int env rng (depth - 1) ])

  and gen_list env rng n =
    if n = 0 then Nil else Cons (gen_int env rng 1, gen_list env rng (n - 1))

  (* Reference interpreter. *)
  type value = I of int | B of bool | L of value list

  let rec eval env (defs : (string * (string list * expr)) list) e =
    let int e = match eval env defs e with I n -> n | _ -> failwith "int expected" in
    let bool e = match eval env defs e with B b -> b | _ -> failwith "bool expected" in
    match e with
    | Int n -> I n
    | Bool b -> B b
    | Nil -> L []
    | Bottom -> failwith "bottom"
    | Var x -> List.assoc x env
    | Let (x, e1, e2) -> eval ((x, eval env defs e1) :: env) defs e2
    | If (p, t, f) -> if bool p then eval env defs t else eval env defs f
    | Cons (h, t) -> (
      match eval env defs t with
      | L vs -> L (eval env defs h :: vs)
      | _ -> failwith "list expected")
    | Prim (p, args) -> (
      match (p, args) with
      | Label.Add, [ a; b ] -> I (int a + int b)
      | Label.Sub, [ a; b ] -> I (int a - int b)
      | Label.Mul, [ a; b ] -> I (int a * int b)
      | Label.Lt, [ a; b ] -> B (int a < int b)
      | Label.Leq, [ a; b ] -> B (int a <= int b)
      | Label.Eq, [ a; b ] -> (
        match (eval env defs a, eval env defs b) with
        | I x, I y -> B (x = y)
        | B x, B y -> B (x = y)
        | _ -> failwith "eq")
      | Label.Not, [ a ] -> B (not (bool a))
      | Label.Neg, [ a ] -> I (-int a)
      | Label.Is_nil, [ a ] -> (
        match eval env defs a with L vs -> B (vs = []) | _ -> failwith "isnil")
      | Label.Head, [ a ] -> (
        match eval env defs a with L (v :: _) -> v | _ -> failwith "head")
      | Label.Tail, [ a ] -> (
        match eval env defs a with L (_ :: vs) -> L vs | _ -> failwith "tail")
      | _ -> failwith "unsupported prim")
    | Call (f, args) ->
      let params, body = List.assoc f defs in
      let vals = List.map (eval env defs) args in
      eval (List.combine params vals) defs body

  let defs_of_program p = List.map (fun d -> (d.Ast.name, (d.Ast.params, d.Ast.body))) p
end

let prop_engine_matches_interpreter =
  QCheck.Test.make ~name:"distributed engine = reference interpreter" ~count:60
    QCheck.(pair (int_bound 100_000) (int_bound 3))
    (fun (seed, gc_choice) ->
      let rng = Rng.create seed in
      let expr = Gen_prog.gen_int [] rng 4 in
      let lib = Parser.parse_program Gen_prog.lib in
      let program = lib @ [ { Ast.name = "main"; params = []; body = expr } ] in
      let expected =
        match Gen_prog.eval [] (Gen_prog.defs_of_program program) expr with
        | Gen_prog.I n -> n
        | _ -> QCheck.assume_fail ()
      in
      let gc =
        match gc_choice with
        | 0 -> Dgr_sim.Engine.No_gc
        | 1 -> Dgr_sim.Engine.Concurrent { deadlock_every = 2; idle_gap = 10 }
        | 2 -> Dgr_sim.Engine.Stop_the_world { every = 100 }
        | _ -> Dgr_sim.Engine.Refcount
      in
      let config =
        Dgr_sim.Engine.Config.make
          ~num_pes:(1 + (seed mod 7))
          ~gc
          ~speculate_if:(seed land 1 = 0)
          ()
      in
      let g, templates =
        Compile.load ~num_pes:(Dgr_sim.Engine.Config.num_pes config) program
      in
      let e = Dgr_sim.Engine.create ~config g templates in
      Dgr_sim.Engine.inject_root_demand e;
      let (_ : int) = Dgr_sim.Engine.run ~max_steps:400_000 e in
      match Dgr_sim.Engine.result e with
      | Some (Label.V_int n) -> n = expected
      | _ -> false)

let prop_random_graphs_validate =
  QCheck.Test.make ~name:"random builders always produce valid graphs" ~count:100
    arbitrary_spec
    (fun (spec, seed) ->
      Validate.check (Builder.random (Rng.create seed) spec) = []
      && Validate.check (Builder.random_with_requests (Rng.create seed) spec) = [])

let suite =
  [
    qtest prop_pqueue_model;
    qtest prop_pqueue_filter;
    qtest prop_vec_model;
    qtest prop_rng_shuffle_permutes;
    qtest prop_basic_marking_equals_reachability;
    qtest prop_priority_marking_equals_oracle;
    qtest prop_mt_marking_equals_oracle;
    qtest prop_engine_matches_interpreter;
    qtest prop_random_graphs_validate;
  ]
