(* The step barrier's merge machinery: dirty-set absorption, the
   destination-sharded mailbox flush, the empty-step fast path, and the
   chunk-linked recorder drain. Each test pins a byte-equivalence the
   sharded engine's determinism proof leans on. *)
open Dgr_util
open Dgr_obs
open Dgr_sim
open Dgr_task
open Dgr_graph

(* --- dirty-set absorption ------------------------------------------- *)

(* Per-PE histograms merged through different intermediate groupings —
   the shapes domains=1/2/4 produce — must yield byte-identical JSON:
   absorb is associative, and the dirty-set rewrite must not have
   changed that. *)
let test_absorb_associativity () =
  let pes = 8 in
  let fill seed =
    let rng = Rng.create seed in
    let hs = Array.init pes (fun _ -> Hist.create ()) in
    Array.iter
      (fun h ->
        for _ = 1 to Rng.int rng 200 do
          Hist.add h (Rng.int rng 5000)
        done)
      hs;
    hs
  in
  let merge_groups groups =
    (* absorb each PE group into a per-group sink, then the sinks into
       the main histogram in ascending group order *)
    let main = Hist.create () in
    List.iter
      (fun group ->
        let sink = Hist.create () in
        List.iter (fun h -> Hist.absorb ~into:sink h) group;
        Hist.absorb ~into:main sink)
      groups;
    main
  in
  let split n hs =
    let per = pes / n in
    List.init n (fun g -> List.init per (fun i -> hs.((g * per) + i)))
  in
  let j1 = Hist.to_json (merge_groups (split 1 (fill 42))) in
  let j2 = Hist.to_json (merge_groups (split 2 (fill 42))) in
  let j4 = Hist.to_json (merge_groups (split 4 (fill 42))) in
  Alcotest.(check string) "domains=2 grouping" j1 j2;
  Alcotest.(check string) "domains=4 grouping" j1 j4;
  (* absorbed sources are cleared, so a second merge finds nothing *)
  let hs = fill 7 in
  let first = Hist.to_json (merge_groups (split 4 hs)) in
  let again = merge_groups (split 4 hs) in
  Alcotest.(check bool) "non-empty merge" true (first <> Hist.to_json (Hist.create ()));
  Alcotest.(check int) "sources cleared" 0 (Hist.count again)

(* --- destination-sharded flush -------------------------------------- *)

(* One randomized post schedule, two mailbox sets, two networks: flushing
   serially (ascending PE, Mailbox.flush) and via the sharded
   plan/group/finalize path must leave byte-identical networks — same
   staged entries, same counters, same coalesce callbacks in the same
   order. Duplicated marks exercise in-batch coalescing. *)
let random_schedule ~pes ~posts seed =
  let rng = Rng.create seed in
  List.init posts (fun _ ->
      let src = Rng.int rng pes in
      let dst = Rng.int rng pes in
      let arrival = 4 + Rng.int rng 3 in
      let task =
        if Rng.int rng 3 = 0 then
          Task.Reduction
            (Task.Request
               {
                 src = Some (Rng.int rng 100);
                 dst = Rng.int rng 50;
                 demand = Demand.Vital;
                 key = Rng.int rng 50;
               })
        else
          (* small vid range forces duplicate marks into shared frames *)
          Task.Marking (Task.Mark1 { v = Rng.int rng 12; par = Plane.Rootpar; ep = 0 })
      in
      (src, dst, arrival, task))

let flush_pair ~shards schedule pes =
  let post_all mbs =
    List.iter
      (fun (src, dst, arrival, task) ->
        Network.Mailbox.post mbs.(src) ~src ~arrival ~pe:dst task)
      schedule
  in
  let fired = ref [] in
  let net = Network.create () in
  Network.set_on_coalesce net (fun ~pe m -> fired := (pe, m) :: !fired);
  let mbs = Array.init pes (fun _ -> Network.Mailbox.create ()) in
  post_all mbs;
  (match shards with
  | None -> Array.iter (fun mb -> Network.Mailbox.flush mb net) mbs
  | Some k ->
    Alcotest.(check bool) "plan accepted" true (Network.flush_shard_plan net mbs);
    for s = 0 to k - 1 do
      Network.flush_shard_group net mbs ~lo:(s * pes / k) ~hi:((s + 1) * pes / k)
    done;
    Network.flush_shard_finalize net mbs);
  (Network.entries net, Network.tasks_sent net, Network.marks_coalesced net, List.rev !fired)

let test_sharded_flush_equivalence () =
  let pes = 8 in
  List.iter
    (fun seed ->
      let schedule = random_schedule ~pes ~posts:300 seed in
      let serial = flush_pair ~shards:None schedule pes in
      List.iter
        (fun k ->
          let entries_s, sent_s, coal_s, fired_s = serial in
          let entries_p, sent_p, coal_p, fired_p = flush_pair ~shards:(Some k) schedule pes in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: staged entries equal at %d shards" seed k)
            true
            (entries_s = entries_p);
          Alcotest.(check int) "tasks_sent" sent_s sent_p;
          Alcotest.(check int) "marks_coalesced" coal_s coal_p;
          Alcotest.(check bool) "coalesce callbacks" true (fired_s = fired_p);
          Alcotest.(check bool) "coalescing exercised" true (coal_s > 0))
        [ 1; 2; 4 ])
    [ 3; 17; 29 ]

(* --- empty-step fast path ------------------------------------------- *)

(* An idle step's merge touches nothing: absorbing empty shard sinks and
   planning a flush over empty mailboxes must be allocation-free (after
   one warm-up call that sizes the plan arrays). *)
let test_empty_merge_alloc_free () =
  let pes = 8 in
  let main_h = Hist.create () and sub_h = Hist.create () in
  let main_m = Metrics.create () and sub_m = Metrics.create () in
  let net = Network.create () in
  let mbs = Array.init pes (fun _ -> Network.Mailbox.create ()) in
  let empty_merge () =
    Hist.absorb ~into:main_h sub_h;
    Metrics.absorb main_m sub_m;
    if Network.flush_shard_plan net mbs then begin
      Network.flush_shard_group net mbs ~lo:0 ~hi:pes;
      Network.flush_shard_finalize net mbs
    end
  in
  empty_merge ();
  (* warmed up *)
  let iters = 10_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    empty_merge ()
  done;
  let words = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f minor words over %d empty merges" words iters)
    true
    (words < 2.0 *. float_of_int iters)

(* --- chunk-linked recorder drain ------------------------------------ *)

let exec pe vid = Event.Execute { kind = Event.Mark; pe; vid; lin = -1 }

(* Drive two (main, subs) recorder pairs through the same multi-step
   emission schedule — sub events drained at each barrier, controller
   events emitted directly on the main recorder in between — one pair
   with the re-emitting drain, one with the chunk-linking drain. Events,
   stamps, lengths and drop counts must match byte for byte. A small
   main capacity pushes eviction across the ring/chunk boundary. *)
let drive ~capacity ~drain =
  let pes = 3 in
  let main = Recorder.create ~capacity ~num_pes:pes () in
  let subs = Array.init pes (fun _ -> Recorder.create ~capacity:256 ~num_pes:pes ()) in
  let rng = Rng.create 99 in
  for step = 0 to 29 do
    Recorder.set_now main step;
    Array.iter (fun s -> Recorder.set_now s step) subs;
    (* per-PE work, buffered in the sub-recorders *)
    Array.iteri
      (fun pe s ->
        for _ = 1 to Rng.int rng 8 do
          Recorder.emit s (exec pe (Rng.int rng 100))
        done)
      subs;
    (* the barrier: drain ascending, then controller-side events *)
    Array.iter (fun s -> drain ~src:s ~dst:main) subs;
    Recorder.emit main (Event.Phase { phase = Event.Mark_root; cycle = step; wave = step })
  done;
  main

let test_chunk_drain_order () =
  List.iter
    (fun capacity ->
      let copied = drive ~capacity ~drain:Recorder.drain_into in
      let linked = drive ~capacity ~drain:Recorder.absorb_chunks in
      Alcotest.(check int)
        (Printf.sprintf "cap %d: emitted" capacity)
        (Recorder.emitted copied) (Recorder.emitted linked);
      Alcotest.(check int) "length" (Recorder.length copied) (Recorder.length linked);
      Alcotest.(check int) "dropped" (Recorder.dropped copied) (Recorder.dropped linked);
      let evs r =
        List.map
          (fun (e : Event.t) -> (e.Event.step, e.Event.seq, Format.asprintf "%a" Event.pp e))
          (Recorder.events r)
      in
      Alcotest.(check bool) "event streams identical" true (evs copied = evs linked))
    (* never-wrapping, and wrapping mid-chunk *)
    [ 65536; 64; 17 ]

let suite =
  [
    Alcotest.test_case "hist absorb is associative across domain groupings" `Quick
      test_absorb_associativity;
    Alcotest.test_case "sharded flush = serial flush, byte for byte" `Quick
      test_sharded_flush_equivalence;
    Alcotest.test_case "empty-step merge allocates nothing" `Quick
      test_empty_merge_alloc_free;
    Alcotest.test_case "chunk-linked drain = copied drain" `Quick
      test_chunk_drain_order;
  ]
