(* The fault plane (drop / duplicate / delay / stall) and the reliable-
   delivery layer that re-earns exactly-once effect over it.

   Three layers of evidence:
   - unit tests of the network's ack/retransmit/dedup machinery;
   - differential fuzzing: a machine collecting concurrently under heavy
     faults must end with exactly the live set (and deadlock verdict) a
     fault-free stop-the-world oracle computes on an identical replica;
   - invariant-at-every-step: the marking-tree invariants hold after
     every single engine step while the channel misbehaves.

   The differential seed block is offset by [DGR_FAULT_SEED_BASE] so CI
   can matrix disjoint blocks without touching the code. *)
open Dgr_graph
open Dgr_util
open Dgr_sim
open Dgr_task

let registry () = Dgr_reduction.Template.create_registry ()

let seed_base () =
  match Sys.getenv_opt "DGR_FAULT_SEED_BASE" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

(* --- the reliable layer, in isolation -------------------------------- *)

(* Drive [deliver] step by step until nothing is undelivered; returns all
   (pe, task) handed up. The bound is generous: retransmission backoff
   caps, so every frame is eventually delivered with probability 1. *)
let drain net =
  let out = ref [] in
  let now = ref 0 in
  while Network.size net > 0 && !now < 100_000 do
    incr now;
    out := !out @ Network.deliver net ~now:!now
  done;
  Alcotest.(check int) "network drained" 0 (Network.size net);
  !out

let test_everything_duplicated () =
  let f =
    Faults.create { Faults.none with Faults.duplicate = 1.0; fault_seed = 3 }
  in
  let net = Network.create ~faults:f () in
  for i = 1 to 5 do
    Network.send ~src:0 net ~arrival:(i + 1) ~pe:(i mod 2) (Task.request i Demand.Vital)
  done;
  let delivered = drain net in
  Alcotest.(check int) "each task handed up exactly once" 5 (List.length delivered);
  Alcotest.(check bool) "channel duplicated frames" true (f.Faults.dups >= 5);
  Alcotest.(check bool) "dedup swallowed the copies" true (f.Faults.dup_suppressed >= 5)

let test_heavy_drop_still_delivers () =
  let f = Faults.create { Faults.none with Faults.drop = 0.5; fault_seed = 11 } in
  let net = Network.create ~faults:f () in
  let n = 30 in
  for i = 1 to n do
    Network.send ~src:(i mod 3) net ~arrival:(2 + (i mod 5)) ~pe:(i mod 4)
      (Task.request i Demand.Vital)
  done;
  let delivered = drain net in
  Alcotest.(check int) "every send delivered despite 50% loss" n (List.length delivered);
  let vids =
    List.filter_map
      (function
        | _, Task.Reduction (Task.Request { dst; _ }) -> Some dst
        | _ -> None)
      delivered
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "exactly once each" n (List.length vids);
  Alcotest.(check bool) "frames were lost" true (f.Faults.drops > 0);
  Alcotest.(check bool) "losses forced retransmits" true (f.Faults.retransmits > 0)

let test_faulted_purge_stops_retransmission () =
  let f = Faults.create { Faults.none with Faults.drop = 0.3; fault_seed = 5 } in
  let r = Dgr_obs.Recorder.create ~num_pes:4 () in
  let net = Network.create ~recorder:r ~faults:f () in
  Network.send ~src:0 net ~arrival:3 ~pe:2 (Task.request 7 Demand.Vital);
  Network.send ~src:0 net ~arrival:3 ~pe:3 (Task.request 8 Demand.Vital);
  Network.send ~src:1 net ~arrival:3 ~pe:3 (Task.request 9 Demand.Vital);
  let purged =
    Network.purge net (function
      | Task.Reduction (Task.Request { dst; _ }) -> dst <> 8
      | _ -> false)
  in
  Alcotest.(check int) "two purged" 2 purged;
  Alcotest.(check int) "one undelivered left" 1 (Network.size net);
  let purge_events =
    List.filter_map
      (function
        | { Dgr_obs.Event.kind = Dgr_obs.Event.Purge { pe; count }; _ } -> Some (pe, count)
        | _ -> None)
      (Dgr_obs.Recorder.events r)
  in
  Alcotest.(check (list (pair int int))) "purge events name the real PEs, ascending"
    [ (2, 1); (3, 1) ] purge_events;
  (* The survivor still arrives — purged frames never do, even via
     late retransmission. *)
  let delivered = drain net in
  Alcotest.(check bool) "only vid 8 delivered" true
    (List.for_all
       (function
         | _, Task.Reduction (Task.Request { dst; _ }) -> dst = 8
         | _ -> false)
       delivered
    && delivered <> [])

(* --- batched frames: purge, cumulative acks, sequence guard ----------- *)

(* Step [deliver] past [drain]'s stopping point until every data frame is
   cumulatively acked: acks can be lost, but every (re)delivery re-owes
   the watermark, so the pending set empties with probability 1. *)
let settle_acks net =
  let now = ref 100_000 in
  while Network.unacked net > 0 && !now < 300_000 do
    incr now;
    ignore (Network.deliver net ~now:!now)
  done;
  Alcotest.(check int) "every data frame cumulatively acked" 0 (Network.unacked net)

(* Purging tasks out of batched frames: survivors in a partially-purged
   batch still arrive exactly once, a fully-purged batch's queued copies
   and retransmit timer die with it, and the sequence hole it leaves is
   skipped by the cumulative acks — nothing is acked twice, nothing
   blocks behind the hole. *)
let test_purge_batched_frames () =
  let f = Faults.create { Faults.none with Faults.drop = 0.3; fault_seed = 21 } in
  let net = Network.create ~faults:f () in
  (* one three-task batch on link 0->1, one singleton batch on 0->2 *)
  Network.send ~src:0 net ~arrival:3 ~pe:1 (Task.request 1 Demand.Vital);
  Network.send ~src:0 net ~arrival:3 ~pe:1 (Task.request 2 Demand.Vital);
  Network.send ~src:0 net ~arrival:3 ~pe:1 (Task.request 3 Demand.Vital);
  Network.send ~src:0 net ~arrival:3 ~pe:2 (Task.request 4 Demand.Vital);
  (* tick once so the batches flush into the channel as frames *)
  Alcotest.(check int) "nothing due yet" 0 (List.length (Network.deliver net ~now:1));
  Alcotest.(check int) "two data frames flushed" 2 (Network.frames_sent net);
  let purged =
    Network.purge net (function
      | Task.Reduction (Task.Request { dst; _ }) -> dst = 1 || dst = 3 || dst = 4
      | _ -> false)
  in
  Alcotest.(check int) "three tasks purged out of the frames" 3 purged;
  Alcotest.(check int) "one survivor undelivered" 1 (Network.size net);
  let delivered = drain net in
  Alcotest.(check bool) "exactly the survivor arrived, once" true
    (match delivered with
    | [ (1, Task.Reduction (Task.Request { dst = 2; _ })) ] -> true
    | _ -> false);
  (* the fully-purged frame left a hole on link 0->2; the watermark must
     skip it so the link's pending set still empties *)
  settle_acks net

(* The cumulative ack piggybacks on the LAST reverse data frame of the
   flush, not the first: an earlier reverse frame leaves the sender's
   pending entry alone, and only the final frame's arrival clears it. *)
let test_piggyback_on_last_reverse_frame () =
  (* stall-only spec: the reliable layer is on, but no frame is ever
     dropped, duplicated or delayed — the schedule below is exact *)
  let f = Faults.create { Faults.none with Faults.stall = 0.9; fault_seed = 2 } in
  let r = Dgr_obs.Recorder.create ~num_pes:4 () in
  let net = Network.create ~recorder:r ~faults:f () in
  Network.send ~src:0 net ~arrival:2 ~pe:1 (Task.request 7 Demand.Vital);
  ignore (Network.deliver net ~now:1);
  Alcotest.(check int) "forward frame delivered" 1
    (List.length (Network.deliver net ~now:2));
  (* PE 1 now owes PE 0 an ack; it also has two reverse batches to send *)
  Network.send ~src:1 net ~arrival:4 ~pe:0 (Task.request 8 Demand.Vital);
  Network.send ~src:1 net ~arrival:5 ~pe:0 (Task.request 9 Demand.Vital);
  ignore (Network.deliver net ~now:3);
  Alcotest.(check int) "ack rode a reverse data frame" 1 (Network.acks_piggybacked net);
  Alcotest.(check int) "no standalone ack was spent on it" 0 (Network.acks_sent net);
  Alcotest.(check int) "three frames await acks" 3 (Network.unacked net);
  ignore (Network.deliver net ~now:4);
  (* the arrival-4 reverse frame carried no ack: the forward frame's
     pending entry must still be there *)
  Alcotest.(check int) "first reverse frame cleared nothing" 3 (Network.unacked net);
  ignore (Network.deliver net ~now:5);
  (* the arrival-5 frame (the last of that flush) carried the watermark *)
  Alcotest.(check int) "last reverse frame cleared the forward pending" 2
    (Network.unacked net);
  let piggybacks =
    List.filter_map
      (function
        | { Dgr_obs.Event.kind = Dgr_obs.Event.Cum_ack { src; dst; upto; piggyback }; _ }
          when piggyback -> Some (src, dst, upto)
        | _ -> None)
      (Dgr_obs.Recorder.events r)
  in
  Alcotest.(check (list (triple int int int))) "the one piggyback names the data link"
    [ (0, 1, 0) ] piggybacks;
  settle_acks net;
  Alcotest.(check bool) "reverse frames settled by standalone acks" true
    (Network.acks_sent net > 0);
  Alcotest.(check int) "still only one piggyback" 1 (Network.acks_piggybacked net)

(* Lost acks and reordered redeliveries: every task still arrives exactly
   once (out-of-order frames park in the receiver's backlog, redeliveries
   are suppressed), and because every receipt re-owes the watermark the
   sender's pending set still empties. *)
let test_ack_loss_out_of_order () =
  let f =
    Faults.create
      { Faults.none with
        Faults.drop = 0.4; duplicate = 0.1; delay = 0.5; fault_seed = 17 }
  in
  let net = Network.create ~faults:f () in
  let n = 60 in
  for i = 1 to n do
    Network.send ~src:0 net ~arrival:(2 + (i mod 13)) ~pe:1
      (Task.request i Demand.Vital)
  done;
  let delivered = drain net in
  Alcotest.(check int) "every task delivered despite ack loss" n (List.length delivered);
  let vids =
    List.filter_map
      (function
        | _, Task.Reduction (Task.Request { dst; _ }) -> Some dst
        | _ -> None)
      delivered
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "exactly once each" n (List.length vids);
  Alcotest.(check bool) "frames were dropped and retransmitted" true
    (f.Faults.drops > 0 && f.Faults.retransmits > 0);
  Alcotest.(check bool) "reordered redeliveries were suppressed" true
    (f.Faults.dup_suppressed > 0);
  settle_acks net

(* The per-link sequence space never wraps: at the guard the flush fails
   loudly instead of letting cumulative acks run backwards. *)
let test_seq_wraparound_guard () =
  let f = Faults.create { Faults.none with Faults.stall = 0.5; fault_seed = 1 } in
  let net = Network.create ~faults:f () in
  Network.set_link_seq net ~src:0 ~dst:1 (max_int / 2);
  Network.send ~src:0 net ~arrival:2 ~pe:1 (Task.request 1 Demand.Vital);
  Alcotest.check_raises "flush refuses to assign a wrapped sequence"
    (Invalid_argument "Network.send: per-link sequence space exhausted") (fun () ->
      ignore (Network.deliver net ~now:1));
  (* other links are unaffected by the exhausted one *)
  let net2 = Network.create ~faults:(Faults.create { Faults.none with Faults.fault_seed = 1 }) () in
  Network.set_link_seq net2 ~src:0 ~dst:1 ((max_int / 2) - 1);
  Network.send ~src:0 net2 ~arrival:2 ~pe:1 (Task.request 1 Demand.Vital);
  ignore (Network.deliver net2 ~now:1);
  Alcotest.(check int) "the last sequence number below the guard still flushes" 1
    (Network.frames_sent net2)

(* --- differential fuzz: faulted concurrent GC vs fault-free STW ------- *)

(* Build the machine's graph and an identical fault-free replica (same
   seed, same spec → same vids), generate an alloc-free mutation schedule
   against the replica, replay it on the machine while the fault plane
   mauls the channel, settle a few clean cycles, then demand the two
   worlds agree exactly. *)
let run_differential seed =
  let ctx = Printf.sprintf "seed %d" seed in
  let num_pes = 1 + (seed mod 4) in
  let spec = Helpers.fuzz_spec seed in
  let ga = Builder.random ~num_pes (Rng.create seed) spec in
  let gb = Builder.random ~num_pes (Rng.create seed) spec in
  let marking =
    if seed land 1 = 0 then Dgr_core.Cycle.Tree else Dgr_core.Cycle.Flood_counters
  in
  let config =
    Engine.Config.make ~num_pes ~seed ~marking
      ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 8 })
      ~faults:(Helpers.heavy_faults ~seed ())
      ()
  in
  let e = Engine.create ~config ga (registry ()) in
  let rng = Rng.create ((seed * 7) + 1) in
  let schedule = Helpers.gen_schedule rng gb ~ops:(10 + (seed mod 20)) in
  let mut = Engine.mutator e in
  List.iter
    (fun op ->
      Helpers.apply_mutation mut op;
      for _ = 1 to Rng.int rng 6 do
        Engine.step e
      done)
    schedule;
  (* Settle: enough post-mutation cycles for verdicts to stabilize. *)
  let c = Option.get (Engine.cycle e) in
  let target = Dgr_core.Cycle.cycles_completed c + 6 in
  let guard = ref 0 in
  while Dgr_core.Cycle.cycles_completed c < target && !guard < 400_000 do
    incr guard;
    Engine.step e
  done;
  Alcotest.(check bool) (ctx ^ ": cycles keep completing under faults") true
    (Dgr_core.Cycle.cycles_completed c >= target);
  (* Oracle: halt the fault-free replica and trace it. *)
  let (_ : Dgr_baseline.Stw.report) =
    Dgr_baseline.Stw.collect gb ~purge_tasks:(fun _ -> 0)
  in
  Helpers.check_vid_set (ctx ^ ": live set = fault-free STW live set")
    (Vid.Set.of_list (Graph.live_vids gb))
    (Vid.Set.of_list (Graph.live_vids ga));
  Alcotest.(check (list string)) (ctx ^ ": machine graph validates") []
    (Validate.check ga);
  (* Deadlock verdict: no reduction tasks exist, so DL' = R_v − T = R_v;
     the last settled cycle must flag exactly what the oracle computes on
     the replica. *)
  let oracle = Dgr_analysis.Classify.compute (Snapshot.take gb) ~tasks:[] in
  let report = Option.get (Dgr_core.Cycle.last_report c) in
  Alcotest.(check bool) (ctx ^ ": last cycle ran M_T") true
    report.Dgr_core.Restructure.deadlock_checked;
  Helpers.check_vid_set (ctx ^ ": deadlock verdict = oracle DL'")
    oracle.Dgr_analysis.Classify.deadlocked
    (Vid.Set.of_list report.Dgr_core.Restructure.deadlocked);
  (* The adversary actually showed up, and the reliable layer actually
     recovered: a duplicate's surviving twin can mask a dropped copy (and
     its ack), so runs whose graph mutated down to a sliver may see a
     handful of drops all covered for free — but any loss beyond that
     cover must have been re-earned by the timers. *)
  let f = Option.get (Engine.faults e) in
  Alcotest.(check bool) (ctx ^ ": frames dropped") true (f.Faults.drops > 0);
  Alcotest.(check bool) (ctx ^ ": losses beyond dup cover were retransmitted") true
    (f.Faults.retransmits > 0 || f.Faults.drops <= 2 * f.Faults.dups);
  (f.Faults.drops, f.Faults.retransmits, f.Faults.dup_suppressed)

let test_differential_block () =
  let base = seed_base () in
  let drops = ref 0 and retx = ref 0 and supp = ref 0 in
  for seed = base to base + 49 do
    let d, r, s = run_differential seed in
    drops := !drops + d;
    retx := !retx + r;
    supp := !supp + s
  done;
  Alcotest.(check bool) "block-wide: drops, retransmits and suppressed dups all nonzero"
    true
    (!drops > 0 && !retx > 0 && !supp > 0)

(* --- crash-schedule fuzz: whole-PE crashes vs fault-free STW ---------- *)

(* The differential harness again, with the crash plane switched on: the
   machine loses whole PEs — pool, in-flight frames, graph segment — on
   seeded schedules whose crash rate, recovery delay ([crash_down_max])
   and overlap (3-4 PE machines at the top rates multi-crash) are keyed
   on the seed, recovers each from its checkpoint, and must still
   converge on exactly the fault-free replica's live set and deadlock
   verdict. Completion-style properties are out of bounds by design:
   reduction tasks lost in a crash are honestly lost, and these
   workloads carry none. Any crash rate forces the deterministic serial
   execute path, so the whole fingerprint — clock, live set, crash and
   marking counters — must be bit-identical at 1, 2 and 4 domains. *)
let run_crash_differential ?(domains = 1) seed =
  let ctx = Printf.sprintf "crash seed %d (domains %d)" seed domains in
  let num_pes = 2 + (seed mod 3) in
  let spec = Helpers.fuzz_spec seed in
  let ga = Builder.random ~num_pes (Rng.create seed) spec in
  let gb = Builder.random ~num_pes (Rng.create seed) spec in
  let marking =
    if seed land 1 = 0 then Dgr_core.Cycle.Tree else Dgr_core.Cycle.Flood_counters
  in
  let config =
    Engine.Config.make ~num_pes ~seed ~marking ~domains
      ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 8 })
      ~faults:(Helpers.crash_faults ~seed ())
      ()
  in
  let e = Engine.create ~config ga (registry ()) in
  let rng = Rng.create ((seed * 11) + 5) in
  let schedule = Helpers.gen_schedule rng gb ~ops:(8 + (seed mod 16)) in
  let mut = Engine.mutator e in
  List.iter
    (fun op ->
      Helpers.apply_mutation mut op;
      for _ = 1 to Rng.int rng 6 do
        Engine.step e
      done)
    schedule;
  let c = Option.get (Engine.cycle e) in
  let target = Dgr_core.Cycle.cycles_completed c + 6 in
  let guard = ref 0 in
  while Dgr_core.Cycle.cycles_completed c < target && !guard < 400_000 do
    incr guard;
    Engine.step e
  done;
  Alcotest.(check bool) (ctx ^ ": cycles keep completing under crashes") true
    (Dgr_core.Cycle.cycles_completed c >= target);
  let (_ : Dgr_baseline.Stw.report) =
    Dgr_baseline.Stw.collect gb ~purge_tasks:(fun _ -> 0)
  in
  Helpers.check_vid_set (ctx ^ ": live set = fault-free STW live set")
    (Vid.Set.of_list (Graph.live_vids gb))
    (Vid.Set.of_list (Graph.live_vids ga));
  Alcotest.(check (list string)) (ctx ^ ": machine graph validates") []
    (Validate.check ga);
  let oracle = Dgr_analysis.Classify.compute (Snapshot.take gb) ~tasks:[] in
  let report = Option.get (Dgr_core.Cycle.last_report c) in
  Helpers.check_vid_set (ctx ^ ": deadlock verdict = oracle DL'")
    oracle.Dgr_analysis.Classify.deadlocked
    (Vid.Set.of_list report.Dgr_core.Restructure.deadlocked);
  let m = Engine.metrics e in
  let live_digest =
    Digest.to_hex
      (Digest.string
         (String.concat ","
            (List.map string_of_int (List.sort compare (Graph.live_vids ga)))))
  in
  let fp =
    ( Engine.now e, live_digest, m.Metrics.crashes, m.Metrics.recoveries,
      m.Metrics.crash_rehomed, m.Metrics.crash_lost_tasks,
      m.Metrics.marking_executed, m.Metrics.stale_marks_dropped,
      m.Metrics.cycles_completed )
  in
  Engine.dispose e;
  fp

let test_crash_differential_block () =
  let base = seed_base () in
  let crashes = ref 0 and recoveries = ref 0 and rehomed = ref 0 in
  for seed = base to base + 49 do
    let (_, _, c, r, h, _, _, _, _) as fp = run_crash_differential seed in
    crashes := !crashes + c;
    recoveries := !recoveries + r;
    rehomed := !rehomed + h;
    (* every 5th seed: the same crash schedule must replay bit-identically
       when the machine is sharded across 2 and 4 OCaml domains *)
    if seed mod 5 = 0 then begin
      Alcotest.(check bool)
        (Printf.sprintf "crash seed %d: bit-identical at 2 domains" seed)
        true
        (run_crash_differential ~domains:2 seed = fp);
      Alcotest.(check bool)
        (Printf.sprintf "crash seed %d: bit-identical at 4 domains" seed)
        true
        (run_crash_differential ~domains:4 seed = fp)
    end
  done;
  Alcotest.(check bool)
    "block-wide: crashes, recoveries and re-homings all occurred" true
    (!crashes > 0 && !recoveries > 0 && !rehomed > 0)

(* --- invariants after every step, while the channel misbehaves -------- *)

let check_invariants_now seed e =
  match Engine.cycle e with
  | None -> ()
  | Some c ->
    List.iter
      (fun plane ->
        match Dgr_core.Cycle.run_for_plane c plane with
        | None -> ()
        | Some run -> (
          let pending =
            List.filter_map
              (function
                | Task.Marking m when Task.plane_of_mark m = plane -> Some m
                | _ -> None)
              (Engine.pending_tasks e)
          in
          match Dgr_core.Invariants.check run ~pending with
          | [] -> ()
          | errs ->
            Alcotest.failf "seed %d, step %d, %s plane: %s" seed (Engine.now e)
              (match plane with Plane.MR -> "MR" | Plane.MT -> "MT")
              (String.concat "; " errs)))
      [ Plane.MR; Plane.MT ]

let run_invariant_seed seed =
  let num_pes = 1 + (seed mod 3) in
  let spec = Helpers.fuzz_spec seed in
  let ga = Builder.random ~num_pes (Rng.create seed) spec in
  let gb = Builder.random ~num_pes (Rng.create seed) spec in
  let config =
    Engine.Config.make ~num_pes ~seed ~marking:Dgr_core.Cycle.Tree
      ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 5 })
      ~faults:(Helpers.heavy_faults ~seed:(seed + 100) ())
      ()
  in
  let e = Engine.create ~config ga (registry ()) in
  (* Every edge-set mutation must come from the vertex's owner (or the
     controller) — checked per mutation, on top of the per-step marking
     invariants below. *)
  Engine.enable_ownership_checks e;
  let rng = Rng.create (seed lxor 0xabcd) in
  let schedule = Helpers.gen_schedule rng gb ~ops:8 in
  let mut = Engine.mutator e in
  List.iter
    (fun op ->
      Helpers.apply_mutation mut op;
      check_invariants_now seed e;
      for _ = 1 to Rng.int rng 5 do
        Engine.step e;
        check_invariants_now seed e
      done)
    schedule;
  let c = Option.get (Engine.cycle e) in
  let target = Dgr_core.Cycle.cycles_completed c + 3 in
  let guard = ref 0 in
  while Dgr_core.Cycle.cycles_completed c < target && !guard < 30_000 do
    incr guard;
    Engine.step e;
    check_invariants_now seed e
  done;
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: settled under per-step checking" seed)
    true
    (Dgr_core.Cycle.cycles_completed c >= target)

let test_invariants_every_step () =
  for seed = 0 to 11 do
    run_invariant_seed seed
  done

(* --- whole programs under heavy faults ------------------------------- *)

let run_program ?(num_pes = 4) ?(marking = Dgr_core.Cycle.Tree) ~fault_seed src =
  let config =
    Engine.Config.make ~num_pes ~marking
      ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 20 })
      ~faults:(Helpers.heavy_faults ~seed:fault_seed ())
      ()
  in
  let g, templates = Dgr_lang.Compile.load_string ~num_pes src in
  let e = Engine.create ~config g templates in
  Engine.inject_root_demand e;
  let (_ : int) = Engine.run ~max_steps:600_000 e in
  e

let test_programs_survive_faults () =
  List.iter
    (fun (fault_seed, marking) ->
      let e = Dgr_lang.(run_program ~marking ~fault_seed (Prelude.fib 10)) in
      Alcotest.(check bool)
        (Printf.sprintf "fib 10 correct (fault seed %d)" fault_seed)
        true
        (Engine.result e = Some (Label.V_int (Dgr_lang.Prelude.fib_expected 10)));
      Alcotest.(check (list string)) "graph valid" [] (Validate.check (Engine.graph e));
      let f = Option.get (Engine.faults e) in
      Alcotest.(check bool) "channel was actually lossy" true
        (f.Faults.drops > 0 && f.Faults.retransmits > 0))
    [ (1, Dgr_core.Cycle.Tree); (2, Dgr_core.Cycle.Flood_counters) ];
  let e = Dgr_lang.(run_program ~fault_seed:3 (Prelude.sum_range 8)) in
  Alcotest.(check bool) "sum_range 8 correct under faults" true
    (Engine.result e
    = Some (Label.V_int (Dgr_lang.Prelude.sum_range_expected 8)))

let test_deadlock_detected_under_faults () =
  let config =
    Engine.Config.make
      ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 10 })
      ~faults:(Helpers.heavy_faults ~seed:9 ())
      ()
  in
  let g, templates = Dgr_lang.Compile.load_string Dgr_lang.Prelude.deadlock in
  let e = Engine.create ~config g templates in
  Engine.inject_root_demand e;
  let found t =
    match Engine.cycle t with
    | Some c -> not (Vid.Set.is_empty (Dgr_core.Cycle.deadlocked_ever c))
    | None -> false
  in
  let (_ : int) = Engine.run ~max_steps:100_000 ~stop:found e in
  Alcotest.(check bool) "deadlock found despite drops and stalls" true (found e)

(* --- determinism: same fault seed, same machine ----------------------- *)

let test_fault_determinism () =
  let fingerprint e =
    let m = Engine.metrics e in
    let f = Option.get (Engine.faults e) in
    ( Engine.now e,
      m.Metrics.reduction_executed,
      ( f.Faults.drops, f.Faults.dups, f.Faults.retransmits,
        f.Faults.dup_suppressed, f.Faults.stalls ) )
  in
  let a = fingerprint (run_program ~fault_seed:42 (Dgr_lang.Prelude.fib 9)) in
  let b = fingerprint (run_program ~fault_seed:42 (Dgr_lang.Prelude.fib 9)) in
  let c = fingerprint (run_program ~fault_seed:43 (Dgr_lang.Prelude.fib 9)) in
  Alcotest.(check bool) "same fault seed: identical run" true (a = b);
  Alcotest.(check bool) "different fault seed: different faults" true (a <> c)

let suite =
  [
    Alcotest.test_case "dedup: duplicate everything" `Quick test_everything_duplicated;
    Alcotest.test_case "retransmit: 50% drop still delivers" `Quick
      test_heavy_drop_still_delivers;
    Alcotest.test_case "purge under faults stops retransmission" `Quick
      test_faulted_purge_stops_retransmission;
    Alcotest.test_case "purge prunes batched frames without double-acking" `Quick
      test_purge_batched_frames;
    Alcotest.test_case "cum ack piggybacks on the last reverse frame" `Quick
      test_piggyback_on_last_reverse_frame;
    Alcotest.test_case "ack loss and reordering still deliver exactly once" `Quick
      test_ack_loss_out_of_order;
    Alcotest.test_case "per-link sequence space cannot wrap" `Quick
      test_seq_wraparound_guard;
    Alcotest.test_case "differential fuzz vs STW oracle (50 seeds)" `Slow
      test_differential_block;
    Alcotest.test_case "crash-schedule fuzz vs STW oracle (50 seeds)" `Slow
      test_crash_differential_block;
    Alcotest.test_case "invariants hold after every step" `Slow
      test_invariants_every_step;
    Alcotest.test_case "programs compute correctly under faults" `Slow
      test_programs_survive_faults;
    Alcotest.test_case "deadlock detection survives faults" `Quick
      test_deadlock_detected_under_faults;
    Alcotest.test_case "fault plane is deterministic per seed" `Quick
      test_fault_determinism;
  ]
