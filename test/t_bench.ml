(* The macro-benchmark harness and the engine differential.

   [golden_engine.txt] holds 20 mixed scenarios — workloads x collectors
   x machine shapes x fault planes — each summarized as one line of end
   state plus the MD5 of the full event trace. The fixture was
   regenerated once when the engine became sharded (per-PE RNG streams,
   striped partitioned allocation, and barrier-deferred controller tasks
   moved every schedule); since then regenerating the lines and diffing
   byte-for-byte pins the engine to bit-identical semantics: same live
   sets, same deadlock verdicts, same metrics, same traces.

   The same fixture doubles as the cross-domain differential: the lines
   must come out byte-identical when the machine is sharded across 2 and
   4 OCaml domains — live sets, verdicts, digests and traces may never
   depend on how many domains stepped the PEs. *)

let read_lines path = String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all)

let check_golden ?domains () =
  let expected = List.filter (fun l -> l <> "") (read_lines "golden_engine.txt") in
  let actual = Dgr_harness.Bench.golden_lines ?domains () in
  Alcotest.(check int) "scenario count" (List.length expected) (List.length actual);
  List.iter2 (fun e a -> Alcotest.(check string) "golden line" e a) expected actual

let test_golden_differential () = check_golden ()

let test_golden_domains_2 () = check_golden ~domains:2 ()

let test_golden_domains_4 () = check_golden ~domains:4 ()

(* A deterministic BENCH.json is byte-reproducible: the simulation fields
   are replayed exactly and the wall-clock fields are zeroed. *)
let test_bench_json_deterministic () =
  let subset =
    [ "fib-12-concurrent"; "fib-12-faults"; "fib-12-crash"; "storm-tree-8k" ]
  in
  let run () =
    Dgr_harness.Bench.(
      to_json ~mode:"smoke" ~deterministic:true
        (run_suite ~only:subset ~smoke:true ~deterministic:true ()))
  in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-identical across runs" a b;
  Alcotest.(check bool) "carries schema_version" true
    (String.length a > 0
    && String.sub a 0 (String.length "{\"schema_version\":")
       = "{\"schema_version\":")

let test_rates_roundtrip () =
  let rows =
    Dgr_harness.Bench.run_suite ~only:[ "fib-12-concurrent" ] ~smoke:true
      ~deterministic:false ()
  in
  let json = Dgr_harness.Bench.to_json ~mode:"smoke" ~deterministic:false rows in
  match Dgr_harness.Bench.scenario_rates json with
  | [ ("fib-12-concurrent", sps) ] ->
    Alcotest.(check bool) "positive steps/sec parsed back" true (sps > 0.0);
    (* the fresh rows cannot regress against their own baseline *)
    Alcotest.(check int) "no self-regression" 0
      (List.length
         (Dgr_harness.Bench.regressions ~threshold:0.2 ~baseline:json rows))
  | other ->
    Alcotest.failf "expected one parsed scenario, got %d" (List.length other)

let suite =
  [
    Alcotest.test_case "hot-path rewrite is bit-identical (20 goldens)" `Slow
      test_golden_differential;
    Alcotest.test_case "sharded engine is bit-identical at 2 domains" `Slow
      test_golden_domains_2;
    Alcotest.test_case "sharded engine is bit-identical at 4 domains" `Slow
      test_golden_domains_4;
    Alcotest.test_case "deterministic BENCH.json is byte-reproducible" `Quick
      test_bench_json_deterministic;
    Alcotest.test_case "baseline rates round-trip through BENCH.json" `Quick
      test_rates_roundtrip;
  ]
