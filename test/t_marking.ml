(* Unit tests for the basic and priority marking algorithms on static
   graphs (no concurrent mutation): the marked set must equal the oracle's
   reachable set under every dequeue order. *)
open Dgr_graph
open Dgr_core
open Dgr_util

let mark_basic ?order g =
  Sync_engine.mark ?order g Run.Basic ~seeds:[ Graph.root g ]

let oracle_reachable g =
  let snap = Snapshot.take g in
  Dgr_analysis.Reach.reachable_from snap [ Graph.root g ]

let test_chain () =
  let g = Graph.create () in
  let head = Builder.chain g 10 in
  Graph.set_root g head;
  let run = mark_basic g in
  Alcotest.(check bool) "finished" true run.Run.finished;
  Helpers.check_vid_set "all 10 marked" (oracle_reachable g) (Helpers.marked_set g Plane.MR);
  Helpers.check_quiescent g Plane.MR;
  Alcotest.(check int) "10 mark executions" 10 (Run.marks_total run)

let test_tree () =
  let g = Graph.create () in
  let root = Builder.binary_tree g ~depth:5 in
  Graph.set_root g root;
  let run = mark_basic g in
  Alcotest.(check bool) "finished" true run.Run.finished;
  Alcotest.(check int) "marked |tree| = 63" 63 (Vid.Set.cardinal (Helpers.marked_set g Plane.MR));
  Helpers.check_quiescent g Plane.MR

let test_self_loop () =
  let g = Graph.create () in
  let v = Graph.alloc g Label.If in
  Vertex.connect v (Vertex.id v);
  Graph.set_root g (Vertex.id v);
  let run = mark_basic g in
  Alcotest.(check bool) "finished" true run.Run.finished;
  Alcotest.(check bool) "self-loop marked" true (Plane.marked (Vertex.mr v));
  Helpers.check_quiescent g Plane.MR

let test_cycle_ring () =
  let g = Graph.create () in
  let member = Builder.cycle g 7 in
  Graph.set_root g member;
  let run = mark_basic g in
  Alcotest.(check bool) "finished" true run.Run.finished;
  Alcotest.(check int) "ring fully marked" 7 (Vid.Set.cardinal (Helpers.marked_set g Plane.MR));
  Helpers.check_quiescent g Plane.MR

let test_garbage_not_marked () =
  let g = Graph.create () in
  let live = Builder.chain g 5 in
  Graph.set_root g live;
  let garbage = Builder.cycle g 4 in
  let (_ : Run.t) = mark_basic g in
  Alcotest.(check bool) "garbage unmarked" true
    (Plane.unmarked (Vertex.mr (Graph.vertex g garbage)))

let test_shared_subexpression () =
  let g = Graph.create () in
  let shared = Builder.chain g 3 in
  let l = Builder.add g Label.Ind [ shared ] in
  let r = Builder.add g Label.Ind [ shared ] in
  let root = Builder.add_root g (Label.Prim Label.Add) [ l; r ] in
  ignore root;
  let run = mark_basic g in
  Alcotest.(check bool) "finished" true run.Run.finished;
  Alcotest.(check int) "6 vertices marked once" 6
    (Vid.Set.cardinal (Helpers.marked_set g Plane.MR));
  Helpers.check_quiescent g Plane.MR

let test_orders_agree_random_graphs () =
  let rng = Rng.create 2024 in
  for seed = 0 to 19 do
    let spec =
      {
        Builder.live = 30 + Rng.int rng 100;
        garbage = Rng.int rng 40;
        free_pool = Rng.int rng 10;
        avg_degree = 1.5 +. Rng.float rng 2.0;
        cycle_bias = Rng.float rng 0.5;
      }
    in
    List.iter
      (fun (name, order) ->
        let g = Builder.random (Rng.create seed) spec in
        let expected = oracle_reachable g in
        let run = mark_basic ~order g in
        Alcotest.(check bool) (Printf.sprintf "finished (%s, seed %d)" name seed) true
          run.Run.finished;
        Helpers.check_vid_set
          (Printf.sprintf "marked = R (%s, seed %d)" name seed)
          expected
          (Helpers.marked_set g Plane.MR);
        Helpers.check_quiescent g Plane.MR)
      (Helpers.orders (Rng.split rng))
  done

let test_empty_seed_list_finishes () =
  let g = Graph.create () in
  let (_ : Vid.t) = Builder.add_root g Label.If [] in
  let run = Sync_engine.mark g Run.Tasks ~seeds:[] in
  Alcotest.(check bool) "trivially finished" true run.Run.finished

(* Priority marking: a diamond where one path is vital and the other
   eager; the paper's min-over-path/max-over-paths rule decides. *)
let test_priority_diamond () =
  let g = Graph.create () in
  let d = Builder.add g (Label.Int 1) [] in
  let l = Builder.add g Label.Ind [ d ] in
  let r = Builder.add g Label.Ind [ d ] in
  let root = Builder.add_root g Label.If [ l; r ] in
  let vroot = Graph.vertex g root in
  Vertex.request_arg vroot l Demand.Vital;
  Vertex.request_arg vroot r Demand.Eager;
  Vertex.request_arg (Graph.vertex g l) d Demand.Vital;
  Vertex.request_arg (Graph.vertex g r) d Demand.Vital;
  let run = Sync_engine.mark g Run.Priority ~seeds:[ root ] in
  Alcotest.(check bool) "finished" true run.Run.finished;
  let prior v = Plane.prior (Vertex.mr (Graph.vertex g v)) in
  Alcotest.(check int) "root vital" 3 (prior root);
  Alcotest.(check int) "left vital" 3 (prior l);
  Alcotest.(check int) "right eager" 2 (prior r);
  Alcotest.(check int) "shared d takes the max-min = vital" 3 (prior d);
  Helpers.check_quiescent g Plane.MR

let test_priority_eager_subtree_requests_vitally () =
  (* §3.2: an eagerly-requested vertex may vitally request w; globally w
     is still only eager. *)
  let g = Graph.create () in
  let w = Builder.add g (Label.Int 7) [] in
  let e = Builder.add g (Label.Prim Label.Neg) [ w ] in
  let root = Builder.add_root g Label.If [ e ] in
  Vertex.request_arg (Graph.vertex g root) e Demand.Eager;
  Vertex.request_arg (Graph.vertex g e) w Demand.Vital;
  let (_ : Run.t) = Sync_engine.mark g Run.Priority ~seeds:[ root ] in
  let prior v = Plane.prior (Vertex.mr (Graph.vertex g v)) in
  Alcotest.(check int) "e eager" 2 (prior e);
  Alcotest.(check int) "w capped at eager" 2 (prior w)

let test_priority_unrequested_is_reserve () =
  let g = Graph.create () in
  let x = Builder.add g (Label.Int 3) [] in
  let root = Builder.add_root g Label.If [ x ] in
  ignore root;
  let (_ : Run.t) = Sync_engine.mark g Run.Priority ~seeds:[ Graph.root g ] in
  Alcotest.(check int) "unrequested arg priority 1" 1
    (Plane.prior (Vertex.mr (Graph.vertex g x)))

let test_priority_matches_oracle_random () =
  let rng = Rng.create 99 in
  for seed = 0 to 19 do
    let spec =
      {
        Builder.live = 20 + Rng.int rng 80;
        garbage = Rng.int rng 30;
        free_pool = 5;
        avg_degree = 1.5 +. Rng.float rng 1.5;
        cycle_bias = Rng.float rng 0.4;
      }
    in
    let g = Builder.random_with_requests (Rng.create (seed * 77)) spec in
    let snap = Snapshot.take g in
    let reach = Dgr_analysis.Reach.compute snap ~tasks:[] in
    List.iter
      (fun (name, order) ->
        Graph.reset_plane g Plane.MR;
        let run = Sync_engine.mark ~order g Run.Priority ~seeds:[ Graph.root g ] in
        Alcotest.(check bool) (Printf.sprintf "finished %s/%d" name seed) true
          run.Run.finished;
        Helpers.check_vid_set
          (Printf.sprintf "R_v oracle vs marked (%s, seed %d)" name seed)
          reach.Dgr_analysis.Reach.r_v
          (Helpers.marked_with_prior g 3);
        Helpers.check_vid_set
          (Printf.sprintf "R_e oracle vs marked (%s, seed %d)" name seed)
          reach.Dgr_analysis.Reach.r_e
          (Helpers.marked_with_prior g 2);
        Helpers.check_vid_set
          (Printf.sprintf "R_r oracle vs marked (%s, seed %d)" name seed)
          reach.Dgr_analysis.Reach.r_r
          (Helpers.marked_with_prior g 1))
      (Helpers.orders (Rng.split rng))
  done

(* M_T marking: trace requested ∪ (args − req-args) from task endpoints. *)
let test_mark_tasks_traces_requested () =
  let g = Graph.create () in
  (* y requested by x; x has an unrequested arg z; task sits at y. *)
  let z = Builder.add g (Label.Int 1) [] in
  let y = Builder.add g (Label.Int 2) [] in
  let x = Builder.add_root g (Label.Prim Label.Add) [ y; z ] in
  Vertex.request_arg (Graph.vertex g x) y Demand.Vital;
  Vertex.add_requester (Graph.vertex g y) (Some x) ~demand:Demand.Vital ~key:y;
  let run = Sync_engine.mark g Run.Tasks ~seeds:[ y ] in
  Alcotest.(check bool) "finished" true run.Run.finished;
  let marked = Helpers.marked_set g Plane.MT in
  Alcotest.(check bool) "y marked (task dest)" true (Vid.Set.mem y marked);
  Alcotest.(check bool) "x marked (via requested)" true (Vid.Set.mem x marked);
  Alcotest.(check bool) "z marked (unrequested arg of x)" true (Vid.Set.mem z marked)

let test_mark_tasks_skips_req_args () =
  (* x vitally requested y: the edge x→y is NOT in ↦, so starting from a
     task at x must not mark y (this is what makes deadlock detectable). *)
  let g = Graph.create () in
  let y = Builder.add g Label.Bottom [] in
  let x = Builder.add_root g (Label.Prim Label.Add) [ y ] in
  Vertex.request_arg (Graph.vertex g x) y Demand.Vital;
  let run = Sync_engine.mark g Run.Tasks ~seeds:[ x ] in
  Alcotest.(check bool) "finished" true run.Run.finished;
  Alcotest.(check bool) "y not task-reachable" true
    (Plane.unmarked (Vertex.mt (Graph.vertex g y)));
  Alcotest.(check bool) "x marked" true (Plane.marked (Vertex.mt (Graph.vertex g x)))

let test_planes_independent () =
  let g = Graph.create () in
  let head = Builder.chain g 4 in
  Graph.set_root g head;
  let (_ : Run.t) = Sync_engine.mark g Run.Basic ~seeds:[ head ] in
  Alcotest.(check bool) "MR marked" true (Plane.marked (Vertex.mr (Graph.vertex g head)));
  Alcotest.(check bool) "MT untouched" true (Plane.unmarked (Vertex.mt (Graph.vertex g head)))

let suite =
  [
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "binary tree" `Quick test_tree;
    Alcotest.test_case "self loop" `Quick test_self_loop;
    Alcotest.test_case "ring cycle" `Quick test_cycle_ring;
    Alcotest.test_case "garbage not marked" `Quick test_garbage_not_marked;
    Alcotest.test_case "shared subexpression" `Quick test_shared_subexpression;
    Alcotest.test_case "orders agree on random graphs" `Quick test_orders_agree_random_graphs;
    Alcotest.test_case "empty seeds finish trivially" `Quick test_empty_seed_list_finishes;
    Alcotest.test_case "priority diamond (max-min)" `Quick test_priority_diamond;
    Alcotest.test_case "eager subtree capped" `Quick test_priority_eager_subtree_requests_vitally;
    Alcotest.test_case "unrequested arg is reserve" `Quick test_priority_unrequested_is_reserve;
    Alcotest.test_case "priority marking matches oracle" `Quick
      test_priority_matches_oracle_random;
    Alcotest.test_case "M_T traces requested and unrequested args" `Quick
      test_mark_tasks_traces_requested;
    Alcotest.test_case "M_T skips req-args edges" `Quick test_mark_tasks_skips_req_args;
    Alcotest.test_case "MR and MT planes independent" `Quick test_planes_independent;
  ]

(* Negative paths: misrouted tasks and corrupted states must be caught
   loudly, not absorbed. *)
let test_wrong_plane_rejected () =
  let g = Graph.create () in
  let v = Builder.add_root g (Label.Int 1) [] in
  let run = Run.create g Run.Priority in
  Run.seed_added run;
  (match
     Marker.execute run ~pe:0 ~emit:ignore
       (Dgr_task.Task.Mark3 { v; par = Plane.Rootpar; ep = run.Run.wave })
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mark3 accepted by an M_R run");
  let run_t = Run.create g Run.Tasks in
  Run.seed_added run_t;
  match
    Marker.execute run_t ~pe:0 ~emit:ignore
      (Dgr_task.Task.Mark2 { v; par = Plane.Rootpar; prior = 3; ep = run_t.Run.wave })
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mark2 accepted by an M_T run"

let test_return_without_credit_rejected () =
  let g = Graph.create () in
  let v = Builder.add_root g (Label.Int 1) [] in
  let run = Run.create g Run.Basic in
  match
    Marker.execute run ~pe:0 ~emit:ignore
      (Dgr_task.Task.Return { plane = Plane.MR; par = Plane.Parent v; ep = run.Run.wave })
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "return accepted with mt-cnt = 0"

let test_flood_rejects_returns () =
  let g = Graph.create () in
  let v = Builder.add_root g (Label.Int 1) [] in
  ignore v;
  let fl = Dgr_core.Flood.create g Run.Basic in
  match
    Dgr_core.Flood.execute fl ~pe:0 ~emit:ignore
      (Dgr_task.Task.Return { plane = Plane.MR; par = Plane.Rootpar; ep = fl.Dgr_core.Flood.wave })
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "flood accepted a return task"

let test_invariant_checker_catches_corruption () =
  let g = Graph.create () in
  let head = Builder.chain g 3 in
  Graph.set_root g head;
  let engine = Sync_engine.create g in
  let run = Sync_engine.start engine Run.Basic ~seeds:[ head ] in
  let (_ : bool) = Sync_engine.step engine in
  (* corrupt the count behind the algorithm's back *)
  Plane.set_cnt
    (Vertex.mr (Graph.vertex g head))
    (Plane.cnt (Vertex.mr (Graph.vertex g head)) + 5);
  Alcotest.(check bool) "invariant 3 violation reported" true
    (Invariants.check run ~pending:(Sync_engine.pending engine) <> [])

let test_drain_guard () =
  (* an adversary that re-seeds forever must hit the divergence guard *)
  let g = Graph.create () in
  let head = Builder.chain g 2 in
  Graph.set_root g head;
  let engine = Sync_engine.create g in
  let run = Sync_engine.start engine Run.Basic ~seeds:[ head ] in
  ignore run;
  let mut = Sync_engine.mutator engine in
  let feeder _ =
    (* each injected seed produces at least a return task, so the queue
       can never drain while the feeder keeps going *)
    Run.seed_added run;
    mut.Mutator.spawn (Marker.seed_for run head)
  in
  match Sync_engine.drain ~interleave:feeder ~max_steps:500 engine with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected the max_steps guard to fire"

let negative_suite =
  [
    Alcotest.test_case "wrong plane rejected" `Quick test_wrong_plane_rejected;
    Alcotest.test_case "uncredited return rejected" `Quick test_return_without_credit_rejected;
    Alcotest.test_case "flood rejects returns" `Quick test_flood_rejects_returns;
    Alcotest.test_case "invariant checker catches corruption" `Quick
      test_invariant_checker_catches_corruption;
    Alcotest.test_case "drain divergence guard" `Quick test_drain_guard;
  ]
