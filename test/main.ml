let () =
  Alcotest.run "dgr"
    [
      ("util", T_util.suite);
      ("graph", T_graph.suite);
      ("store", T_store.suite);
      ("task", T_task.suite);
      ("lang", T_lang.suite);
      ("marking", T_marking.suite);
      ("marking-negative", T_marking.negative_suite);
      ("mutator", T_mutator.suite);
      ("cycle", T_cycle.suite);
      ("epoch", T_epoch.suite);
      ("flood", T_flood.suite);
      ("analysis", T_analysis.suite);
      ("baseline", T_baseline.suite);
      ("sim", T_sim.suite);
      ("obs", T_obs.suite);
      ("hist", T_hist.suite);
      ("jitter", T_sim.jitter_suite);
      ("faults", T_faults.suite);
      ("checkpoint", T_checkpoint.suite);
      ("crash", T_crash.suite);
      ("reduction", T_reduction.suite);
      ("recovery", T_reduction.recovery_suite);
      ("properties", T_properties.suite);
      ("theorems", T_theorems.suite);
      ("merge", T_merge.suite);
      ("bench", T_bench.suite);
    ]
