(* The §6 space optimization: flood marking with per-PE counters and
   termination detection. Must compute exactly the same sets as the
   marking-tree scheme, statically and under concurrent mutation. *)
open Dgr_graph
open Dgr_core
open Dgr_util

let qtest = QCheck_alcotest.to_alcotest

(* A minimal single-queue driver for flood runs (the sync-engine
   equivalent; the full distributed execution is exercised through the
   simulator below). *)
let flood_drain ?mut fl seeds =
  let queue = Queue.create () in
  List.iter
    (fun v ->
      Flood.count_seed fl ~pe:0;
      Queue.add (Flood.seed_for fl v) queue)
    seeds;
  (match mut with
  | Some m -> m.Mutator.spawn <- (fun task -> Queue.add task queue)
  | None -> ());
  let executed = ref 0 in
  while not (Queue.is_empty queue) do
    let task = Queue.pop queue in
    Flood.execute fl ~pe:0 ~emit:(fun t -> Queue.add t queue) task;
    incr executed;
    if !executed > 10_000_000 then failwith "flood diverged"
  done;
  Alcotest.(check int) "counters balance" (Flood.sent_total fl) (Flood.executed_total fl);
  Alcotest.(check int) "outstanding zero" 0 (Flood.outstanding fl)

let test_termination_detector () =
  let t = Termination.create ~window:5 ~epoch:7 ~pes:2 in
  (* silence is not termination: every PE must have reported *)
  Termination.observe t ~now:0;
  Alcotest.(check bool) "no reports" false (Termination.terminated t);
  Termination.learn t ~pe:0 ~epoch:7 ~sent:3 ~executed:1;
  Termination.learn t ~pe:1 ~epoch:7 ~sent:0 ~executed:0;
  Termination.observe t ~now:0;
  Alcotest.(check bool) "busy" false (Termination.terminated t);
  (* a credit from a superseded wave must be ignored *)
  Termination.learn t ~pe:0 ~epoch:6 ~sent:90 ~executed:1;
  Termination.learn t ~pe:0 ~epoch:7 ~sent:3 ~executed:3;
  Termination.observe t ~now:1;
  Termination.observe t ~now:3;
  Alcotest.(check bool) "quiet but window not elapsed" false (Termination.terminated t);
  Termination.observe t ~now:6;
  Alcotest.(check bool) "two observations apart" true (Termination.terminated t);
  Alcotest.(check int) "stale credit never merged" 3 (Termination.learned_sent t);
  (* a racing task between observations resets the first observation *)
  let t2 = Termination.create ~window:5 ~epoch:1 ~pes:1 in
  Termination.learn t2 ~pe:0 ~epoch:1 ~sent:5 ~executed:5;
  Termination.observe t2 ~now:10;
  Termination.learn t2 ~pe:0 ~epoch:1 ~sent:6 ~executed:6;
  Termination.observe t2 ~now:16;
  Alcotest.(check bool) "sum moved between observations" false (Termination.terminated t2);
  Termination.observe t2 ~now:22;
  Alcotest.(check bool) "stable afterwards" true (Termination.terminated t2)

let test_flood_marks_reachable () =
  let g = Graph.create () in
  let root = Builder.binary_tree g ~depth:4 in
  Graph.set_root g root;
  let junk = Builder.cycle g 4 in
  let fl = Flood.create g Run.Basic in
  flood_drain fl [ root ];
  let marked = Helpers.marked_set g Plane.MR in
  let expected = Dgr_analysis.Reach.reachable_from (Snapshot.take g) [ root ] in
  Helpers.check_vid_set "flood = R" expected marked;
  Alcotest.(check bool) "junk untouched" true
    (Plane.unmarked (Vertex.mr (Graph.vertex g junk)));
  Alcotest.(check int) "2 words per PE" 2 (Flood.bookkeeping_words fl)

let spec_gen =
  QCheck.Gen.(
    map3
      (fun live garbage seed ->
        ( { Builder.live = 5 + live; garbage; free_pool = 30;
            avg_degree = 1.2 +. (float_of_int (seed land 7) /. 4.0);
            cycle_bias = float_of_int (seed land 3) /. 4.0 },
          seed ))
      (int_bound 80) (int_bound 40) (int_bound 50_000))

let arb_spec = QCheck.make spec_gen

let prop_flood_equals_tree_static =
  QCheck.Test.make ~name:"flood priorities = tree priorities (static)" ~count:60 arb_spec
    (fun (spec, seed) ->
      let g1 = Builder.random_with_requests (Rng.create seed) spec in
      let g2 = Builder.random_with_requests (Rng.create seed) spec in
      (* tree on g1 *)
      let (_ : Run.t) = Sync_engine.mark g1 Run.Priority ~seeds:[ Graph.root g1 ] in
      (* flood on g2 *)
      let fl = Flood.create g2 Run.Priority in
      flood_drain fl [ Graph.root g2 ];
      Graph.fold_live
        (fun ok v ->
          ok
          &&
          let w = Graph.vertex g2 (Vertex.id v) in
          Plane.marked (Vertex.mr v) = Plane.marked (Vertex.mr w)
          && Plane.prior (Vertex.mr v) = Plane.prior (Vertex.mr w))
        true g1)

let prop_flood_mt_equals_oracle =
  QCheck.Test.make ~name:"flood M_T = oracle T" ~count:40 arb_spec
    (fun (spec, seed) ->
      let g = Builder.random_with_requests (Rng.create seed) spec in
      let rng = Rng.create (seed * 5) in
      let tasks =
        Graph.fold_live
          (fun acc v ->
            List.fold_left
              (fun acc (e : Vertex.request_entry) ->
                if Rng.int rng 2 = 0 then
                  Dgr_task.Task.Request
                    { src = e.Vertex.who; dst = (Vertex.id v); demand = e.Vertex.demand;
                      key = e.Vertex.key }
                  :: acc
                else acc)
              acc (Vertex.requested v))
          [] g
      in
      let seeds =
        List.concat_map Dgr_task.Task.reduction_endpoints tasks |> List.sort_uniq compare
      in
      let fl = Flood.create g Run.Tasks in
      flood_drain fl seeds;
      Vid.Set.equal (Helpers.marked_set g Plane.MT)
        (Dgr_analysis.Reach.task_reachable_from (Snapshot.take g) tasks))

(* Under concurrent mutation: drive the flood through a queue while an
   axiom-safe adversary mutates between executions; everything reachable
   at the end must be marked, nothing garbage-at-start may be marked. *)
let prop_flood_safety_liveness_under_mutation =
  QCheck.Test.make ~name:"flood safety+liveness under mutation" ~count:40 arb_spec
    (fun (spec, seed) ->
      let rng = Rng.create (seed + 91) in
      let g = Builder.random (Rng.create seed) spec in
      let gar_tb =
        let snap = Snapshot.take g in
        let r = Dgr_analysis.Reach.reachable_from snap [ Graph.root g ] in
        Graph.fold_live
          (fun acc v ->
            if Vid.Set.mem (Vertex.id v) r then acc else Vid.Set.add (Vertex.id v) acc)
          Vid.Set.empty g
      in
      let fl = Flood.create g Run.Priority in
      let mut = Mutator.create ~spawn:(fun _ -> ()) g in
      Mutator.set_active_flood mut [ fl ];
      let queue = Queue.create () in
      mut.Mutator.spawn <- (fun task -> Queue.add task queue);
      Flood.count_seed fl ~pe:0;
      Queue.add (Flood.seed_for fl (Graph.root g)) queue;
      let adversary () =
        if Rng.int rng 3 = 0 then begin
          let live = Graph.live_vids g in
          let pick () = Rng.choose_list rng live in
          match Rng.int rng 3 with
          | 0 -> (
            let a = pick () in
            match Graph.children g a with
            | [] -> ()
            | bs -> (
              let b = Rng.choose_list rng bs in
              match Graph.children g b with
              | [] -> ()
              | cs -> Mutator.add_reference mut ~a ~b ~c:(Rng.choose_list rng cs)))
          | 1 -> (
            let a = pick () in
            match Graph.children g a with
            | [] -> ()
            | bs -> Mutator.delete_reference mut ~a ~b:(Rng.choose_list rng bs))
          | _ ->
            let a = pick () in
            if Graph.headroom g > 3 then begin
              let inner = Graph.alloc g Label.Ind in
              List.iter
                (fun old -> Mutator.connect_fresh mut ~parent:(Vertex.id inner) ~child:old)
                (Graph.children g a);
              Mutator.expand_node mut ~a ~entry:(Vertex.id inner)
            end
        end
      in
      let steps = ref 0 in
      while not (Queue.is_empty queue) do
        adversary ();
        (if not (Queue.is_empty queue) then
           let task = Queue.pop queue in
           Flood.execute fl ~pe:0 ~emit:(fun t -> Queue.add t queue) task);
        incr steps;
        if !steps > 5_000_000 then failwith "flood diverged under mutation"
      done;
      let reachable = Dgr_analysis.Reach.reachable_from (Snapshot.take g) [ Graph.root g ] in
      let liveness =
        Vid.Set.for_all
          (fun v -> Plane.marked (Vertex.mr (Graph.vertex g v)))
          reachable
      in
      let safety =
        Vid.Set.for_all
          (fun v -> Plane.unmarked (Vertex.mr (Graph.vertex g v)))
          gar_tb
      in
      liveness && safety && Flood.outstanding fl = 0)

(* End-to-end: the whole machine under the flood scheme computes the same
   results and still collects, detects deadlock, etc. *)
let engine_flood_config gc =
  Dgr_sim.Engine.Config.make ~gc ~marking:Cycle.Flood_counters ()

let test_engine_flood_programs () =
  List.iter
    (fun (src, expected) ->
      let config =
        engine_flood_config (Dgr_sim.Engine.Concurrent { deadlock_every = 2; idle_gap = 20 })
      in
      let g, templates = Dgr_lang.Compile.load_string ~num_pes:4 src in
      let e = Dgr_sim.Engine.create ~config g templates in
      Dgr_sim.Engine.inject_root_demand e;
      let (_ : int) = Dgr_sim.Engine.run ~max_steps:400_000 e in
      Alcotest.(check bool) "result" true
        (Dgr_sim.Engine.result e = Some (Label.V_int expected));
      Alcotest.(check (list string)) "valid" [] (Validate.check g))
    [
      (Dgr_lang.Prelude.fib 10, Dgr_lang.Prelude.fib_expected 10);
      (Dgr_lang.Prelude.sum_range 10, Dgr_lang.Prelude.sum_range_expected 10);
      (Dgr_lang.Prelude.speculative 30, 42);
    ]

let test_engine_flood_collects () =
  let config =
    engine_flood_config (Dgr_sim.Engine.Concurrent { deadlock_every = 0; idle_gap = 10 })
  in
  let g, templates = Dgr_lang.Compile.load_string ~num_pes:4 (Dgr_lang.Prelude.fib 11) in
  let e = Dgr_sim.Engine.create ~config g templates in
  Dgr_sim.Engine.inject_root_demand e;
  let (_ : int) = Dgr_sim.Engine.run ~max_steps:400_000 e in
  Alcotest.(check bool) "finished" true (Dgr_sim.Engine.finished e);
  match Dgr_sim.Engine.cycle e with
  | Some c ->
    Alcotest.(check bool) "collected concurrently" true
      (Cycle.total_garbage_collected c > 0)
  | None -> Alcotest.fail "no controller"

let test_engine_flood_deadlock () =
  let config =
    engine_flood_config (Dgr_sim.Engine.Concurrent { deadlock_every = 1; idle_gap = 10 })
  in
  let g, templates = Dgr_lang.Compile.load_string Dgr_lang.Prelude.deadlock in
  let e = Dgr_sim.Engine.create ~config g templates in
  Dgr_sim.Engine.inject_root_demand e;
  let found t =
    match Dgr_sim.Engine.cycle t with
    | Some c -> not (Vid.Set.is_empty (Cycle.deadlocked_ever c))
    | None -> false
  in
  let (_ : int) = Dgr_sim.Engine.run ~max_steps:50_000 ~stop:found e in
  Alcotest.(check bool) "deadlock detected under flood scheme" true (found e)

let suite =
  [
    Alcotest.test_case "termination detector" `Quick test_termination_detector;
    Alcotest.test_case "flood marks exactly R" `Quick test_flood_marks_reachable;
    qtest prop_flood_equals_tree_static;
    qtest prop_flood_mt_equals_oracle;
    qtest prop_flood_safety_liveness_under_mutation;
    Alcotest.test_case "engine end-to-end (flood)" `Quick test_engine_flood_programs;
    Alcotest.test_case "engine collects (flood)" `Quick test_engine_flood_collects;
    Alcotest.test_case "engine detects deadlock (flood)" `Quick test_engine_flood_deadlock;
  ]

(* The two bookkeeping schemes must be observationally equivalent on the
   full machine: same results on random programs. *)
let prop_schemes_agree_end_to_end =
  QCheck.Test.make ~name:"tree and flood engines compute the same results" ~count:20
    QCheck.(int_bound 1_000)
    (fun seed ->
      let source =
        match seed mod 3 with
        | 0 -> Dgr_lang.Prelude.fib (7 + (seed mod 4))
        | 1 -> Dgr_lang.Prelude.sum_range (4 + (seed mod 8))
        | _ -> Dgr_lang.Prelude.speculative (10 + (seed mod 25))
      in
      let run scheme =
        let config =
          Dgr_sim.Engine.Config.make
            ~num_pes:(1 + (seed mod 5))
            ~gc:
              (Dgr_sim.Engine.Concurrent
                 { deadlock_every = 2; idle_gap = 5 + (seed mod 20) })
            ~marking:scheme ()
        in
        let g, templates =
          Dgr_lang.Compile.load_string
            ~num_pes:(Dgr_sim.Engine.Config.num_pes config)
            source
        in
        let e = Dgr_sim.Engine.create ~config g templates in
        Dgr_sim.Engine.inject_root_demand e;
        let (_ : int) = Dgr_sim.Engine.run ~max_steps:300_000 e in
        Dgr_sim.Engine.result e
      in
      let a = run Cycle.Tree and b = run Cycle.Flood_counters in
      a <> None && a = b)

let suite = suite @ [ qtest prop_schemes_agree_end_to_end ]
