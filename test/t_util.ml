open Dgr_util

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" 99 (Vec.get v 99);
  Alcotest.(check (option int)) "pop" (Some 99) (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index 3 out of bounds [0,3)")
    (fun () -> ignore (Vec.get v 3))

let test_vec_filter_in_place () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5; 6 ] in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens kept in order" [ 2; 4; 6 ] (Vec.to_list v)

let test_vec_swap_remove () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  let x = Vec.swap_remove v 1 in
  Alcotest.(check int) "removed" 20 x;
  Alcotest.(check (list int)) "last moved in" [ 10; 40; 30 ] (Vec.to_list v)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independence () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 100) in
  let ys = List.init 20 (fun _ -> Rng.int b 100) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "Rng.int out of range: %d" x;
    let f = Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "Rng.float out of range: %f" f
  done

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  Pqueue.add q 3 "c";
  Pqueue.add q 1 "a";
  Pqueue.add q 2 "b";
  Pqueue.add q 1 "a2";
  let order = List.init 4 (fun _ -> match Pqueue.pop q with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "min first, fifo ties" [ "a"; "a2"; "b"; "c" ] order

let test_pqueue_filter () =
  let q = Pqueue.create () in
  List.iter (fun i -> Pqueue.add q i i) [ 5; 3; 8; 1; 9 ];
  Pqueue.filter_in_place (fun p _ -> p < 6) q;
  Alcotest.(check int) "filtered size" 3 (Pqueue.length q);
  Alcotest.(check (option (pair int int))) "min survives" (Some (1, 1)) (Pqueue.pop q)

let test_pqueue_map_priorities () =
  let q = Pqueue.create () in
  List.iter (fun i -> Pqueue.add q i (string_of_int i)) [ 1; 2; 3 ];
  Pqueue.map_priorities (fun p _ -> -p) q;
  Alcotest.(check (option (pair int string))) "reversed" (Some (-3, "3")) (Pqueue.pop q)

let test_pqueue_sorted_list_stable () =
  let q = Pqueue.create () in
  (* Many entries sharing priorities, interleaved across bands: the
     insertion index is the payload, so stability is directly visible. *)
  List.iteri (fun i p -> Pqueue.add q p i) [ 5; 1; 5; 3; 5; 1; 5; 3; 5 ];
  let sorted = Pqueue.to_sorted_list q in
  Alcotest.(check (list (pair int int))) "ascending priority, insertion order among equals"
    [ (1, 1); (1, 5); (3, 3); (3, 7); (5, 0); (5, 2); (5, 4); (5, 6); (5, 8) ]
    sorted;
  (* Building the view must not disturb the queue, and must predict pop
     order exactly. *)
  let popped = List.init (Pqueue.length q) (fun _ -> Option.get (Pqueue.pop q)) in
  Alcotest.(check (list (pair int int))) "to_sorted_list = pop order" sorted popped

let test_pqueue_map_priorities_keeps_ranks () =
  let q = Pqueue.create () in
  List.iteri (fun i p -> Pqueue.add q p i) [ 2; 2; 2; 7; 7 ];
  (* Collapse every band into one: the heap rebuild must keep FIFO ranks,
     so the pop order is exactly insertion order. *)
  Pqueue.map_priorities (fun _ _ -> 1) q;
  let popped = List.init (Pqueue.length q) (fun _ -> Option.get (Pqueue.pop q)) in
  Alcotest.(check (list (pair int int))) "fifo ranks survive the rebuild"
    [ (1, 0); (1, 1); (1, 2); (1, 3); (1, 4) ]
    popped

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_value s);
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944 (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Stats.percentile s 50.0)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean empty" 0.0 (Stats.mean s);
  Alcotest.(check bool) "p50 empty is nan" true (Float.is_nan (Stats.percentile s 50.0))

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 11 = "== demo ==\n");
  Alcotest.check_raises "row width"
    (Invalid_argument "Table.add_row: expected 2 cells, got 1") (fun () ->
      Table.add_row t [ "only-one" ])

let suite =
  [
    Alcotest.test_case "vec push/get/pop" `Quick test_vec_push_get;
    Alcotest.test_case "vec bounds checking" `Quick test_vec_bounds;
    Alcotest.test_case "vec filter_in_place" `Quick test_vec_filter_in_place;
    Alcotest.test_case "vec swap_remove" `Quick test_vec_swap_remove;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independence;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "pqueue ordering and ties" `Quick test_pqueue_ordering;
    Alcotest.test_case "pqueue filter" `Quick test_pqueue_filter;
    Alcotest.test_case "pqueue map_priorities" `Quick test_pqueue_map_priorities;
    Alcotest.test_case "pqueue to_sorted_list stability" `Quick
      test_pqueue_sorted_list_stable;
    Alcotest.test_case "pqueue map_priorities keeps ranks" `Quick
      test_pqueue_map_priorities_keeps_ranks;
    Alcotest.test_case "stats accumulation" `Quick test_stats_basic;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "table rendering" `Quick test_table_render;
  ]
