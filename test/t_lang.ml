(* Front-end: lexer, parser, compiler, templates. *)
open Dgr_graph
open Dgr_lang
open Dgr_reduction

let parse = Parser.parse_expr

let test_lexer_tokens () =
  let open Lexer in
  Alcotest.(check bool) "operators" true
    (tokenize "a <= b == c != d && e || !f"
    = [ NAME "a"; LEQ; NAME "b"; EQEQ; NAME "c"; NEQ; NAME "d"; ANDAND; NAME "e"; OROR;
        BANG; NAME "f"; EOF ]);
  Alcotest.(check bool) "comment skipped" true
    (tokenize "1 # comment to end of line\n2" = [ INT 1; INT 2; EOF ]);
  Alcotest.(check bool) "keywords vs names" true
    (tokenize "if iffy then thence" = [ KW_IF; NAME "iffy"; KW_THEN; NAME "thence"; EOF ])

let test_lexer_error () =
  Alcotest.check_raises "unknown char" (Lexer.Error ("unexpected character '@'", 2)) (fun () ->
      ignore (Lexer.tokenize "1 @"))

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  (match parse "1 + 2 * 3" with
  | Ast.Prim (Label.Add, [ Ast.Int 1; Ast.Prim (Label.Mul, [ Ast.Int 2; Ast.Int 3 ]) ]) -> ()
  | e -> Alcotest.failf "wrong tree: %a" Ast.pp_expr e);
  (* comparison binds looser than arithmetic, && looser still *)
  match parse "1 + 1 < 3 && true" with
  | Ast.Prim (Label.And, [ Ast.Prim (Label.Lt, _); Ast.Bool true ]) -> ()
  | e -> Alcotest.failf "wrong tree: %a" Ast.pp_expr e

let test_parser_desugar () =
  (match parse "a > b" with
  | Ast.Prim (Label.Lt, [ Ast.Var "b"; Ast.Var "a" ]) -> ()
  | e -> Alcotest.failf "> should swap to <: %a" Ast.pp_expr e);
  (match parse "a != b" with
  | Ast.Prim (Label.Not, [ Ast.Prim (Label.Eq, _) ]) -> ()
  | e -> Alcotest.failf "!= desugars: %a" Ast.pp_expr e);
  match parse "[1, 2]" with
  | Ast.Cons (Ast.Int 1, Ast.Cons (Ast.Int 2, Ast.Nil)) -> ()
  | e -> Alcotest.failf "list literal: %a" Ast.pp_expr e

let test_parser_builtins () =
  (match parse "head(xs)" with
  | Ast.Prim (Label.Head, [ Ast.Var "xs" ]) -> ()
  | e -> Alcotest.failf "head builtin: %a" Ast.pp_expr e);
  (match parse "cons(1, nil)" with
  | Ast.Cons (Ast.Int 1, Ast.Nil) -> ()
  | e -> Alcotest.failf "cons builtin: %a" Ast.pp_expr e);
  match parse "f(1, 2)" with
  | Ast.Call ("f", [ Ast.Int 1; Ast.Int 2 ]) -> ()
  | e -> Alcotest.failf "call: %a" Ast.pp_expr e

let test_parser_errors () =
  let expect_fail s =
    match Parser.parse_expr s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect_fail "if 1 then 2";
  expect_fail "let x 1 in x";
  expect_fail "head(1, 2)";
  expect_fail "(1 + 2";
  expect_fail "1 2"

let test_program_parse () =
  let p = Parser.parse_program "def f x y = x + y;\ndef main = f(1, 2);" in
  Alcotest.(check int) "two defs" 2 (List.length p);
  let f = List.hd p in
  Alcotest.(check string) "name" "f" f.Ast.name;
  Alcotest.(check (list string)) "params" [ "x"; "y" ] f.Ast.params

let test_free_vars () =
  let e = parse "let x = a + 1 in x + b" in
  Alcotest.(check (list string)) "free vars in order" [ "a"; "b" ] (Ast.free_vars e)

let test_compile_sharing () =
  (* let-bound expressions compile to one shared slot *)
  let reg = Compile.compile_program (Parser.parse_program "def main = let x = 1 + 2 in x * x;") in
  match Template.find reg "main" with
  | None -> Alcotest.fail "main missing"
  | Some tpl ->
    (* slots: 1, 2, add, mul -> 4 (no duplicate adds) *)
    Alcotest.(check int) "shared slot" 4 (Template.size tpl)

let test_compile_errors () =
  let expect_fail src =
    match Compile.compile_program (Parser.parse_program src) with
    | exception Compile.Compile_error _ -> ()
    | _ -> Alcotest.failf "expected compile error for %S" src
  in
  expect_fail "def main = x;";
  expect_fail "def f x = x; def main = f(1, 2);";
  expect_fail "def main = g(1);";
  expect_fail "def f = 1; def f = 2;";
  expect_fail "def f x x = x; def main = f(1, 1);";
  (match Compile.load (Parser.parse_program "def notmain = 1;") with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected missing-main error");
  match Compile.load (Parser.parse_program "def main x = x;") with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected main-arity error"

let test_template_validation () =
  Alcotest.check_raises "forward slot reference"
    (Invalid_argument "Template.make(bad): slot 0 references slot 0 (must be earlier)")
    (fun () ->
      ignore
        (Template.make ~name:"bad" ~arity:0
           [ { Template.label = Label.Ind; operands = [ Template.Slot 0 ] } ]));
  Alcotest.check_raises "parameter out of range"
    (Invalid_argument "Template.make(bad): slot 0 references parameter 1/1") (fun () ->
      ignore
        (Template.make ~name:"bad" ~arity:1
           [ { Template.label = Label.Ind; operands = [ Template.Param 1 ] } ]))

let test_template_instantiate () =
  let tpl =
    Template.make ~name:"pair-sum" ~arity:2
      [
        { Template.label = Label.Prim Label.Add;
          operands = [ Template.Param 0; Template.Param 1 ] };
        { Template.label = Label.Ind; operands = [ Template.Slot 0 ] };
      ]
  in
  let g = Graph.create () in
  let x = Builder.add g (Label.Int 1) [] in
  let y = Builder.add g (Label.Int 2) [] in
  let mut = Dgr_core.Mutator.create ~spawn:(fun _ -> ()) g in
  let entry = Template.instantiate tpl g mut ~actuals:[ x; y ] in
  Alcotest.(check bool) "entry is the indirection" true
    ((Vertex.label (Graph.vertex g entry)) = Label.Ind);
  let add = List.hd (Graph.children g entry) in
  Alcotest.(check (list int)) "params substituted" [ x; y ] (Graph.children g add);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Template.instantiate(pair-sum): expected 2 actuals, got 1") (fun () ->
      ignore (Template.instantiate tpl g mut ~actuals:[ x ]))

let test_registry () =
  let reg = Template.create_registry () in
  let tpl =
    Template.make ~name:"t" ~arity:0 [ { Template.label = Label.Int 1; operands = [] } ]
  in
  Template.define reg tpl;
  Alcotest.(check bool) "found" true (Template.find reg "t" <> None);
  Alcotest.(check (list string)) "names" [ "t" ] (Template.names reg);
  Alcotest.check_raises "duplicate" (Invalid_argument "Template.define: duplicate template t")
    (fun () -> Template.define reg tpl)

let test_graph_of_expr () =
  let g = Graph.create () in
  let v = Compile.graph_of_expr g (parse "1 + 2 * 3") in
  Alcotest.(check bool) "rooted at add" true
    ((Vertex.label (Graph.vertex g v)) = Label.Prim Label.Add);
  Alcotest.(check (list string)) "valid" [] (Validate.check g)

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser desugaring" `Quick test_parser_desugar;
    Alcotest.test_case "builtins" `Quick test_parser_builtins;
    Alcotest.test_case "parse errors" `Quick test_parser_errors;
    Alcotest.test_case "program parse" `Quick test_program_parse;
    Alcotest.test_case "free variables" `Quick test_free_vars;
    Alcotest.test_case "let compiles to shared slot" `Quick test_compile_sharing;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "template validation" `Quick test_template_validation;
    Alcotest.test_case "template instantiation" `Quick test_template_instantiate;
    Alcotest.test_case "template registry" `Quick test_registry;
    Alcotest.test_case "graph_of_expr" `Quick test_graph_of_expr;
  ]
