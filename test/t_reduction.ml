(* End-to-end reduction runs on the simulator, across GC regimes, PE
   counts, speculation settings and pool policies. *)
open Dgr_graph
open Dgr_sim
open Dgr_lang

let value = Alcotest.testable Label.pp_value Label.equal_value

let run_program ?(config = Engine.Config.default) ?(max_steps = 400_000) source =
  let g, templates =
    Compile.load_string ~num_pes:(Engine.Config.num_pes config) source
  in
  let e = Engine.create ~config g templates in
  Engine.inject_root_demand e;
  let (_ : int) = Engine.run ~max_steps e in
  e

let check_result ?config ?max_steps source expected =
  let e = run_program ?config ?max_steps source in
  Alcotest.check (Alcotest.option value) "result" (Some expected) (Engine.result e);
  e

let test_literal () =
  ignore (check_result "def main = 42;" (Label.V_int 42))

let test_arith () =
  ignore (check_result "def main = (1 + 2 * 3) - 10 / 2;" (Label.V_int 2));
  ignore (check_result "def main = 17 % 5;" (Label.V_int 2));
  ignore (check_result "def main = -(3 + 4);" (Label.V_int (-7)))

let test_comparison_and_logic () =
  ignore (check_result "def main = if 3 < 5 && !(2 == 3) then 1 else 0;" (Label.V_int 1));
  ignore (check_result "def main = if 5 <= 4 || false then 1 else 0;" (Label.V_int 0));
  ignore (check_result "def main = if 7 > 2 then if 2 >= 2 then 11 else 12 else 13;"
            (Label.V_int 11))

let test_let_sharing () =
  ignore (check_result "def main = let x = 6 * 7 in x - x / 2;" (Label.V_int 21))

let test_function_call () =
  ignore (check_result "def double x = x + x; def main = double(double(5));" (Label.V_int 20))

let test_fib () =
  ignore (check_result (Prelude.fib 10) (Label.V_int (Prelude.fib_expected 10)))

let test_mutual_recursion () =
  ignore (check_result (Prelude.mutual 10) (Label.V_int 1));
  ignore (check_result (Prelude.mutual 7) (Label.V_int 0))

let test_lists () =
  ignore (check_result "def main = head([4, 5, 6]);" (Label.V_int 4));
  ignore (check_result "def main = head(tail([4, 5, 6]));" (Label.V_int 5));
  ignore (check_result "def main = if isnil(tail([9])) then 1 else 0;" (Label.V_int 1));
  ignore (check_result "def main = if isnil(nil) then 1 else 0;" (Label.V_int 1))

let test_sum_range () =
  ignore
    (check_result (Prelude.sum_range 12) (Label.V_int (Prelude.sum_range_expected 12)))

let test_shared_speculation () =
  ignore (check_result Prelude.shared (Label.V_int 42))

let all_gc_modes =
  [
    ("no-gc", Engine.No_gc);
    ("concurrent", Engine.Concurrent { deadlock_every = 1; idle_gap = 5 });
    ("concurrent-nodl", Engine.Concurrent { deadlock_every = 0; idle_gap = 5 });
    ("stw", Engine.Stop_the_world { every = 200 });
    ("refcount", Engine.Refcount);
  ]

let test_gc_modes_agree () =
  List.iter
    (fun (name, gc) ->
      let config = Engine.Config.make ~gc () in
      let e = check_result ~config (Prelude.fib 9) (Label.V_int (Prelude.fib_expected 9)) in
      Alcotest.(check (list string)) (name ^ " graph valid") []
        (Validate.check (Engine.graph e)))
    all_gc_modes

let test_pe_counts_agree () =
  List.iter
    (fun num_pes ->
      let config = Engine.Config.make ~num_pes () in
      ignore
        (check_result ~config (Prelude.sum_range 8)
           (Label.V_int (Prelude.sum_range_expected 8))))
    [ 1; 2; 3; 8; 16 ]

let test_policies_agree () =
  List.iter
    (fun policy ->
      let config = Engine.Config.make ~pool_policy:policy () in
      ignore (check_result ~config (Prelude.fib 8) (Label.V_int (Prelude.fib_expected 8))))
    [ Pool.Flat; Pool.By_demand; Pool.Dynamic ]

let test_no_speculation () =
  let config = Engine.Config.make ~speculate_if:false () in
  ignore (check_result ~config (Prelude.fib 9) (Label.V_int (Prelude.fib_expected 9)));
  ignore (check_result ~config Prelude.shared (Label.V_int 42))

let test_speculation_cancels () =
  let e = check_result (Prelude.speculative 40) (Label.V_int 42) in
  let red = Engine.reducer e in
  Alcotest.(check bool) "some speculative work was cancelled or dropped" true
    (red.Dgr_reduction.Reducer.cancels_executed > 0
    || red.Dgr_reduction.Reducer.stale_dropped > 0)

let test_gc_collects_garbage_during_run () =
  let config =
    Engine.Config.make ~gc:(Engine.Concurrent { deadlock_every = 2; idle_gap = 2 }) ()
  in
  let e = check_result ~config (Prelude.fib 12) (Label.V_int (Prelude.fib_expected 12)) in
  match Engine.cycle e with
  | None -> Alcotest.fail "expected a cycle controller"
  | Some c ->
    Alcotest.(check bool) "completed at least one cycle" true
      (Dgr_core.Cycle.cycles_completed c > 0);
    Alcotest.(check bool) "collected garbage concurrently" true
      (Dgr_core.Cycle.total_garbage_collected c > 0);
    Alcotest.(check (list string)) "graph valid after run" []
      (Validate.check (Engine.graph e))

let test_divergent_speculation_still_completes () =
  let config =
    Engine.Config.make ~gc:(Engine.Concurrent { deadlock_every = 0; idle_gap = 5 }) ()
  in
  ignore (check_result ~config ~max_steps:500_000 Prelude.divergent_speculation
            (Label.V_int 7))

let test_deadlock_detected () =
  let config =
    Engine.Config.make ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 5 }) ()
  in
  let g, templates = Compile.load_string Prelude.deadlock in
  let e = Engine.create ~config g templates in
  Engine.inject_root_demand e;
  let deadlock_found t =
    match Engine.cycle t with
    | Some c -> not (Vid.Set.is_empty (Dgr_core.Cycle.deadlocked_ever c))
    | None -> false
  in
  let (_ : int) = Engine.run ~max_steps:50_000 ~stop:deadlock_found e in
  Alcotest.(check bool) "no result" true (Engine.result e = None);
  (* Let a few more cycles run after first detection: stray in-flight
     responses can keep a vertex task-reachable for one cycle. *)
  let (_ : int) = Engine.run ~max_steps:2_000 e in
  (match Engine.cycle e with
  | Some c ->
    let dl = Dgr_core.Cycle.deadlocked_ever c in
    Alcotest.(check bool) "deadlock detected" false (Vid.Set.is_empty dl);
    (* The deadlocked set must contain the vitally-awaited add vertex. *)
    let has_add =
      Vid.Set.exists
        (fun v -> (Vertex.label (Graph.vertex g v)) = Label.Prim Label.Add)
        dl
    in
    Alcotest.(check bool) "the strict + vertex is deadlocked" true has_add
  | None -> Alcotest.fail "no controller")

let test_division_by_zero_deadlocks () =
  let config =
    Engine.Config.make ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 5 }) ()
  in
  let g, templates = Compile.load_string "def main = 1 / 0;" in
  let e = Engine.create ~config g templates in
  Engine.inject_root_demand e;
  let deadlock_found t =
    match Engine.cycle t with
    | Some c -> not (Vid.Set.is_empty (Dgr_core.Cycle.deadlocked_ever c))
    | None -> false
  in
  let (_ : int) = Engine.run ~max_steps:50_000 ~stop:deadlock_found e in
  Alcotest.(check bool) "runtime error surfaces as deadlock" true
    (match Engine.cycle e with
    | Some c -> not (Vid.Set.is_empty (Dgr_core.Cycle.deadlocked_ever c))
    | None -> false)

(* The ownership guard under the sharded buffered path: with 4 domains
   stepping 8 PEs, every edge-set mutation a worker performs must target
   a vertex homed on the PE it is stepping (vertices born this step are
   exempt — they cannot be visible to anyone else yet). The heavy-fault
   invariant runs only ever take the direct path, so this is the test
   that runs the guard inside worker domains; the run must also agree
   with the sequential engine field-for-field. *)
let test_sharded_ownership () =
  let run domains =
    let config =
      Engine.Config.make ~num_pes:8 ~domains
        ~gc:(Engine.Concurrent { deadlock_every = 4; idle_gap = 5 })
        ()
    in
    let g, templates = Compile.load_string ~num_pes:8 (Prelude.fib 10) in
    let e = Engine.create ~config g templates in
    Engine.enable_ownership_checks e;
    Engine.inject_root_demand e;
    let (_ : int) = Engine.run ~max_steps:400_000 e in
    let m = Engine.metrics e in
    let signature =
      ( Engine.result e,
        Engine.now e,
        m.Metrics.reduction_executed,
        m.Metrics.remote_messages )
    in
    Engine.dispose e;
    signature
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check bool) "result delivered" true
    (match seq with Some (Label.V_int _), _, _, _ -> true | _ -> false);
  Alcotest.(check bool) "sharded run identical to sequential" true (seq = par)

let test_determinism () =
  let run () =
    let e = run_program (Prelude.fib 9) in
    let m = Engine.metrics e in
    (Engine.result e, Engine.now e, m.Metrics.reduction_executed, m.Metrics.remote_messages)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let suite =
  [
    Alcotest.test_case "literal" `Quick test_literal;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "comparisons and logic" `Quick test_comparison_and_logic;
    Alcotest.test_case "let sharing" `Quick test_let_sharing;
    Alcotest.test_case "function calls" `Quick test_function_call;
    Alcotest.test_case "fib" `Quick test_fib;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "lists" `Quick test_lists;
    Alcotest.test_case "sum over mapped range" `Quick test_sum_range;
    Alcotest.test_case "shared speculative subexpression" `Quick test_shared_speculation;
    Alcotest.test_case "all GC modes compute the same result" `Quick test_gc_modes_agree;
    Alcotest.test_case "PE counts agree" `Quick test_pe_counts_agree;
    Alcotest.test_case "pool policies agree" `Quick test_policies_agree;
    Alcotest.test_case "speculation off" `Quick test_no_speculation;
    Alcotest.test_case "speculation is cancelled" `Quick test_speculation_cancels;
    Alcotest.test_case "concurrent GC collects during run" `Quick
      test_gc_collects_garbage_during_run;
    Alcotest.test_case "divergent speculation still completes" `Slow
      test_divergent_speculation_still_completes;
    Alcotest.test_case "deadlock detected (fig 3-1)" `Quick test_deadlock_detected;
    Alcotest.test_case "division by zero deadlocks" `Quick test_division_by_zero_deadlocks;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "ownership discipline holds under 4 domains" `Quick
      test_sharded_ownership;
  ]

(* ⊥-recovery (footnote 5): deadlocked operators are rewritten to an
   error value that propagates like any other value. *)
let recover_config =
  Engine.Config.make
    ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 5 })
    ~recover_deadlock:true ()

let run_recovering source =
  let g, templates =
    Compile.load_string ~num_pes:(Engine.Config.num_pes recover_config) source
  in
  let e = Engine.create ~config:recover_config g templates in
  Engine.inject_root_demand e;
  let (_ : int) = Engine.run ~max_steps:50_000 e in
  e

let test_recovery_direct () =
  let e = run_recovering "def main = 1 / 0;" in
  Alcotest.(check bool) "error value delivered" true
    (match Engine.result e with Some (Label.V_err _) -> true | _ -> false);
  Alcotest.(check bool) "recovery counted" true
    ((Engine.metrics e).Metrics.deadlocks_recovered > 0)

let test_recovery_propagates () =
  let e = run_recovering "def main = (bottom + 1) * 3;" in
  Alcotest.(check bool) "error contagious through strict ops" true
    (match Engine.result e with Some (Label.V_err _) -> true | _ -> false)

let test_recovery_does_not_poison_winner () =
  let e = run_recovering "def main = if 1 < 2 then 5 else 1 / 0;" in
  Alcotest.(check bool) "losing ⊥ branch recovered without damage" true
    (Engine.result e = Some (Label.V_int 5))

let test_recovery_err_predicate () =
  let e = run_recovering "def main = if bottom then 1 else 2;" in
  Alcotest.(check bool) "undefined predicate poisons the conditional" true
    (match Engine.result e with Some (Label.V_err _) -> true | _ -> false)

let test_no_recovery_by_default () =
  let config =
    Engine.Config.make ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 5 }) ()
  in
  let g, templates = Compile.load_string Prelude.deadlock in
  let e = Engine.create ~config g templates in
  Engine.inject_root_demand e;
  let (_ : int) = Engine.run ~max_steps:5_000 ~stop:(fun _ -> false) e in
  Alcotest.(check bool) "detection only" true (Engine.result e = None)

let recovery_suite =
  [
    Alcotest.test_case "recovery delivers an error" `Quick test_recovery_direct;
    Alcotest.test_case "errors propagate" `Quick test_recovery_propagates;
    Alcotest.test_case "winner unaffected by recovered junk" `Quick
      test_recovery_does_not_poison_winner;
    Alcotest.test_case "undefined predicate" `Quick test_recovery_err_predicate;
    Alcotest.test_case "no recovery unless enabled" `Quick test_no_recovery_by_default;
  ]
