(* Whole-PE crashes: the fail-stop plane and its recovery machinery.

   Four layers:
   - the network's view of a crash ([Network.crash_pe]): in-flight
     frames on both link directions die — batched and staged frames
     included — retransmit timers are cancelled, and per-link sequence
     state resets without dedup false-positives;
   - the engine's view ([Engine.inject_crash]): pool and segment lost,
     checkpoint restore, re-homing onto survivors, a marking wave caught
     mid-phase is invalidated and restarted (tree and flood schemes),
     and the crash/recover pair lands in the typed event stream;
   - the guard rails: a crash may never leave the machine without a
     survivor;
   - the report: a run that crashed still renders byte-identically
     across repeats and across 1/2/4 domains. *)
open Dgr_graph
open Dgr_util
open Dgr_sim
open Dgr_task

let registry () = Dgr_reduction.Template.create_registry ()

(* --- the network under a crash --------------------------------------- *)

let drain ?(from = 0) net =
  let out = ref [] in
  let now = ref from in
  while Network.size net > 0 && !now < from + 100_000 do
    incr now;
    out := !out @ Network.deliver net ~now:!now
  done;
  Alcotest.(check int) "network drained" 0 (Network.size net);
  !out

let settle_acks ?(from = 100_000) net =
  let now = ref from in
  while Network.unacked net > 0 && !now < from + 200_000 do
    incr now;
    ignore (Network.deliver net ~now:!now)
  done;
  Alcotest.(check int) "every surviving data frame cumulatively acked" 0
    (Network.unacked net)

let vids_of delivered =
  List.filter_map
    (function
      | _, Task.Reduction (Task.Request { dst; _ }) -> Some dst
      | _ -> None)
    delivered
  |> List.sort compare

(* A crash discards every frame touching the PE in either direction —
   the three-task batch inbound, the outbound frame it had in flight —
   while traffic between survivors is untouched. Staged (not yet
   flushed) batches die too. *)
let test_crash_purges_in_flight () =
  (* stall-only spec: reliable layer on, no frame ever dropped,
     duplicated or delayed — the schedule below is exact *)
  let f = Faults.create { Faults.none with Faults.stall = 0.5; fault_seed = 21 } in
  let net = Network.create ~faults:f () in
  for i = 1 to 3 do
    Network.send ~src:0 net ~arrival:3 ~pe:1 (Task.request i Demand.Vital)
  done;
  Network.send ~src:0 net ~arrival:3 ~pe:2 (Task.request 4 Demand.Vital);
  Network.send ~src:0 net ~arrival:3 ~pe:2 (Task.request 5 Demand.Vital);
  Network.send ~src:1 net ~arrival:3 ~pe:2 (Task.request 6 Demand.Vital);
  Network.send ~src:2 net ~arrival:3 ~pe:0 (Task.request 7 Demand.Vital);
  (* tick once so the four (src, dst, arrival) batches flush as frames *)
  Alcotest.(check int) "nothing due yet" 0 (List.length (Network.deliver net ~now:1));
  Alcotest.(check int) "four data frames in flight" 4 (Network.frames_sent net);
  let lost = Network.crash_pe net ~pe:1 in
  Alcotest.(check int) "batched inbound + outbound tasks lost" 4 lost;
  Alcotest.(check int) "survivor traffic still queued" 3 (Network.size net);
  let delivered = drain ~from:1 net in
  Alcotest.(check (list int)) "exactly the survivor-link tasks arrive" [ 4; 5; 7 ]
    (vids_of delivered);
  settle_acks net;
  (* staged batches (never flushed into a frame) die with the PE too *)
  Network.send ~src:0 net ~arrival:300_500 ~pe:2 (Task.request 8 Demand.Vital);
  Network.send ~src:2 net ~arrival:300_500 ~pe:0 (Task.request 9 Demand.Vital);
  Alcotest.(check int) "two staged tasks lost with PE 2" 2
    (Network.crash_pe net ~pe:2);
  Alcotest.(check int) "nothing survives them" 0 (Network.size net)

(* After a crash the link restarts at sequence 0. The receiver saw seq 0
   before the crash — if the reset left any dedup state behind, the
   first post-recovery frame would be swallowed as a replay. *)
let test_seq_reset_no_false_positive () =
  let f = Faults.create { Faults.none with Faults.stall = 0.5; fault_seed = 4 } in
  let net = Network.create ~faults:f () in
  Network.send ~src:0 net ~arrival:2 ~pe:1 (Task.request 1 Demand.Vital);
  ignore (Network.deliver net ~now:1);
  Alcotest.(check (list int)) "pre-crash frame (seq 0) delivered" [ 1 ]
    (vids_of (Network.deliver net ~now:2));
  (* delivered but not yet acked: the crash loses only its bookkeeping *)
  Alcotest.(check bool) "frame awaited its ack" true (Network.unacked net > 0);
  Alcotest.(check int) "no undelivered task lost" 0 (Network.crash_pe net ~pe:1);
  Alcotest.(check int) "pending table cleared by the crash" 0 (Network.unacked net);
  (* post-recovery traffic reuses seq 0 on the same link *)
  Network.send ~src:0 net ~arrival:4 ~pe:1 (Task.request 2 Demand.Vital);
  ignore (Network.deliver net ~now:3);
  Alcotest.(check (list int)) "seq-0 reuse is delivered, not deduped" [ 2 ]
    (vids_of (Network.deliver net ~now:4));
  settle_acks net

(* Same property under a lossy, duplicating, reordering channel: every
   post-crash task arrives exactly once, every pre-crash in-flight task
   never arrives — even via a late retransmission. *)
let test_seq_reset_under_faults () =
  let f =
    Faults.create
      { Faults.none with
        Faults.drop = 0.3; duplicate = 0.3; delay = 0.3; fault_seed = 31 }
  in
  let net = Network.create ~faults:f () in
  for i = 1 to 20 do
    Network.send ~src:0 net ~arrival:(2 + (i mod 5)) ~pe:1 (Task.request i Demand.Vital)
  done;
  let early = ref [] in
  for now = 1 to 6 do
    early := !early @ Network.deliver net ~now
  done;
  let lost = Network.crash_pe net ~pe:1 in
  Alcotest.(check int) "crash lost exactly the undelivered tasks" 20
    (List.length !early + lost);
  Alcotest.(check int) "nothing left in flight" 0 (Network.size net);
  for i = 101 to 140 do
    Network.send ~src:0 net ~arrival:(8 + (i mod 7)) ~pe:1 (Task.request i Demand.Vital)
  done;
  let later = drain ~from:6 net in
  Alcotest.(check (list int)) "every post-crash task exactly once, no ghosts"
    (List.init 40 (fun i -> 101 + i))
    (vids_of later);
  settle_acks net

(* --- the engine under an injected crash ------------------------------ *)

let crash_events r =
  List.filter_map
    (function
      | { Dgr_obs.Event.kind = Dgr_obs.Event.Pe_crash { pe; lost; down }; step; _ } ->
        Some (`Crash (pe, lost, down, step))
      | { Dgr_obs.Event.kind = Dgr_obs.Event.Pe_recover { pe; down }; step; _ } ->
        Some (`Recover (pe, down, step))
      | _ -> None)
    (Dgr_obs.Recorder.events r)

(* Mutate a replica-backed machine into having garbage, step into the
   middle of a marking phase, crash a PE there, and settle: the partial
   wave is invalidated, the restarted cycles must still converge on
   exactly the fault-free STW oracle's live set and deadlock verdict. *)
let run_mid_phase_crash ~marking ~seed =
  let ctx = Printf.sprintf "seed %d" seed in
  let num_pes = 4 in
  let spec = Helpers.fuzz_spec seed in
  let ga = Builder.random ~num_pes (Rng.create seed) spec in
  let gb = Builder.random ~num_pes (Rng.create seed) spec in
  let r = Dgr_obs.Recorder.create ~num_pes () in
  let config =
    Engine.Config.make ~num_pes ~seed ~marking
      ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 8 })
      ()
  in
  let e = Engine.create ~recorder:r ~config ga (registry ()) in
  let rng = Rng.create (seed lxor 0x51ec) in
  let schedule = Helpers.gen_schedule rng gb ~ops:12 in
  let mut = Engine.mutator e in
  List.iter
    (fun op ->
      Helpers.apply_mutation mut op;
      for _ = 1 to Rng.int rng 4 do
        Engine.step e
      done)
    schedule;
  let c = Option.get (Engine.cycle e) in
  (* step into the cooperation phase — PEs mid-wave — then pull the plug *)
  let guard = ref 0 in
  while Dgr_core.Cycle.phase c <> Dgr_core.Cycle.Mark_tasks && !guard < 10_000 do
    incr guard;
    Engine.step e
  done;
  Alcotest.(check bool) (ctx ^ ": reached the cooperation phase") true
    (Dgr_core.Cycle.phase c = Dgr_core.Cycle.Mark_tasks);
  Engine.inject_crash e ~pe:1 ~down:6;
  Alcotest.(check bool) (ctx ^ ": PE 1 reports down") true (Engine.pe_down e 1);
  (* no live vertex may still be homed for execution at the corpse *)
  Graph.iter_live
    (fun v ->
      if (Vertex.pe v) = 1 then
        Alcotest.failf "%s: v%d still owned by the crashed PE" ctx (Vertex.id v))
    (Engine.graph e);
  let target = Dgr_core.Cycle.cycles_completed c + 6 in
  let guard = ref 0 in
  while Dgr_core.Cycle.cycles_completed c < target && !guard < 400_000 do
    incr guard;
    Engine.step e
  done;
  Alcotest.(check bool) (ctx ^ ": cycles keep completing after the crash") true
    (Dgr_core.Cycle.cycles_completed c >= target);
  Alcotest.(check bool) (ctx ^ ": PE 1 recovered") false (Engine.pe_down e 1);
  (* the restarted waves converge on the fault-free oracle *)
  let (_ : Dgr_baseline.Stw.report) =
    Dgr_baseline.Stw.collect gb ~purge_tasks:(fun _ -> 0)
  in
  Helpers.check_vid_set (ctx ^ ": live set = fault-free STW live set")
    (Vid.Set.of_list (Graph.live_vids gb))
    (Vid.Set.of_list (Graph.live_vids ga));
  Alcotest.(check (list string)) (ctx ^ ": machine graph validates") []
    (Validate.check ga);
  let oracle = Dgr_analysis.Classify.compute (Snapshot.take gb) ~tasks:[] in
  let report = Option.get (Dgr_core.Cycle.last_report c) in
  Helpers.check_vid_set (ctx ^ ": deadlock verdict = oracle DL'")
    oracle.Dgr_analysis.Classify.deadlocked
    (Vid.Set.of_list report.Dgr_core.Restructure.deadlocked);
  (* the crash and its recovery landed as typed events, downtime exact *)
  let m = Engine.metrics e in
  Alcotest.(check (pair int int)) (ctx ^ ": one crash, one recovery") (1, 1)
    (m.Metrics.crashes, m.Metrics.recoveries);
  (match crash_events r with
  | [ `Crash (1, _, 6, at_c); `Recover (1, 6, at_r) ] ->
    Alcotest.(check bool) (ctx ^ ": recovery fired after the crash") true (at_r > at_c)
  | evs -> Alcotest.failf "%s: expected crash/recover pair, got %d events" ctx
             (List.length evs));
  Alcotest.(check int) (ctx ^ ": downtime histogram recorded exactly 6 steps") 6
    (Dgr_obs.Hist.max_value m.Metrics.lat_recovery);
  Alcotest.(check int) (ctx ^ ": one downtime sample") 1
    (Dgr_obs.Hist.count m.Metrics.lat_recovery)

let test_crash_mid_wave_tree () = run_mid_phase_crash ~marking:Dgr_core.Cycle.Tree ~seed:3

(* Flood scheme: no return tasks — quiescence is re-derived by the
   termination detector, which must never be resumed across a crash. *)
let test_crash_mid_wave_flood () =
  run_mid_phase_crash ~marking:Dgr_core.Cycle.Flood_counters ~seed:5

let test_inject_crash_guards () =
  let g = Builder.random ~num_pes:2 (Rng.create 1) (Helpers.fuzz_spec 1) in
  let config = Engine.Config.make ~num_pes:2 () in
  let e = Engine.create ~config g (registry ()) in
  Alcotest.check_raises "out-of-range PE"
    (Invalid_argument "Engine.inject_crash: no such PE") (fun () ->
      Engine.inject_crash e ~pe:2 ~down:4);
  Alcotest.check_raises "zero downtime"
    (Invalid_argument "Engine.inject_crash: downtime must be >= 1") (fun () ->
      Engine.inject_crash e ~pe:0 ~down:0);
  Engine.inject_crash e ~pe:0 ~down:1000;
  Alcotest.check_raises "double crash"
    (Invalid_argument "Engine.inject_crash: PE already down") (fun () ->
      Engine.inject_crash e ~pe:0 ~down:4);
  Alcotest.check_raises "last survivor is protected"
    (Invalid_argument "Engine.inject_crash: would leave no survivor") (fun () ->
      Engine.inject_crash e ~pe:1 ~down:4)

(* --- the report after a crash ---------------------------------------- *)

(* A crashed run's deterministic report is byte-reproducible and domain
   independent: render it twice at 1 domain and once each at 2 and 4,
   all four strings must be equal — and must actually contain the crash
   section. *)
let test_crash_report_byte_identical () =
  let render domains =
    let config =
      Engine.Config.make ~num_pes:4 ~domains ~seed:2
        ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 20 })
        ~faults:
          { Faults.none with
            Faults.drop = 0.02; delay = 0.05; crash = 0.01; crash_down_max = 12;
            fault_seed = 7 }
        ()
    in
    let g, templates =
      Dgr_lang.Compile.load_string ~num_pes:4 (Dgr_lang.Prelude.fib 10)
    in
    let e = Engine.create ~config g templates in
    Engine.inject_root_demand e;
    let (_ : int) = Engine.run ~max_steps:6_000 e in
    let m = Engine.metrics e in
    Alcotest.(check bool) "the run actually crashed" true (m.Metrics.crashes > 0);
    let out = Dgr_harness.Report.render ~deterministic:true e in
    Engine.dispose e;
    out
  in
  let a = render 1 in
  Alcotest.(check bool) "report carries the crash section" true
    (let re = "-- crash recovery --" in
     let rec find i =
       i + String.length re <= String.length a
       && (String.sub a i (String.length re) = re || find (i + 1))
     in
     find 0);
  Alcotest.(check string) "byte-identical across repeats" a (render 1);
  Alcotest.(check string) "byte-identical at 2 domains" a (render 2);
  Alcotest.(check string) "byte-identical at 4 domains" a (render 4)

let suite =
  [
    Alcotest.test_case "crash purges in-flight and staged frames" `Quick
      test_crash_purges_in_flight;
    Alcotest.test_case "seq reset survives a delivered-unacked frame" `Quick
      test_seq_reset_no_false_positive;
    Alcotest.test_case "seq reset is dedup-safe under faults" `Quick
      test_seq_reset_under_faults;
    Alcotest.test_case "crash mid-wave: tree marking recovers" `Slow
      test_crash_mid_wave_tree;
    Alcotest.test_case "crash mid-wave: flood quiescence re-derived" `Slow
      test_crash_mid_wave_flood;
    Alcotest.test_case "inject_crash guard rails" `Quick test_inject_crash_guards;
    Alcotest.test_case "crashed report is byte-identical at 1/2/4 domains" `Slow
      test_crash_report_byte_identical;
  ]
