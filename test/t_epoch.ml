(* Epoch-tagged mark waves: decentralized cycle initiation lets cycle
   N+1's mark wave open — and execute — while cycle N's restructure
   pause is still draining, and epoch tags at the dispatch point keep
   debris from superseded waves from ever touching a newer wave's
   planes. These tests pin the overlap down with the event trace and
   exercise the stale-drop path directly. *)
open Dgr_graph
open Dgr_sim
open Dgr_core

let empty_registry = Dgr_reduction.Template.create_registry ()

(* A machine whose restructure pauses are long relative to [idle_gap],
   so every cycle's successor opens mid-drain: a live tree plus a batch
   of garbage rings to keep the collector busy. *)
let overlap_graph () =
  let g = Graph.create ~num_pes:4 () in
  let root = Builder.binary_tree g ~depth:5 in
  Graph.set_root g root;
  for _ = 1 to 40 do
    ignore (Builder.cycle g 25)
  done;
  g

(* [gc_work_factor = 1] stretches each restructure pause well past the
   network latency, so the next wave's seed marks arrive — and execute —
   while the pause is still draining. *)
let overlap_engine ?(domains = 1) ?recorder g =
  let config =
    Engine.Config.make ~num_pes:(Graph.num_pes g)
      ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 1 })
      ~gc_work_factor:1 ~heap_size:None ()
    |> Engine.Config.with_domains domains
  in
  Engine.create ?recorder ~config g empty_registry

let run_cycles e n =
  let target t =
    match Engine.cycle t with
    | Some c -> Cycle.cycles_completed c >= n
    | None -> true
  in
  let (_ : int) = Engine.run ~max_steps:100_000 ~stop:target e in
  Option.get (Engine.cycle e)

(* The overlap is real: inside at least one restructure-pause window the
   trace shows (a) the next wave's phase opening and (b) mark tasks
   executing — reduction stays stopped, marking does not. *)
let test_next_wave_marks_during_drain () =
  let r = Dgr_obs.Recorder.create ~capacity:100_000 ~num_pes:4 () in
  let g = overlap_graph () in
  let e = overlap_engine ~recorder:r g in
  let (_ : Cycle.t) = run_cycles e 4 in
  let evs = Dgr_obs.Recorder.events r in
  let pauses =
    List.filter_map
      (fun ev ->
        match ev.Dgr_obs.Event.kind with
        | Dgr_obs.Event.Pause
            { steps; reason = Dgr_obs.Event.Restructure_pause } ->
          Some (ev.Dgr_obs.Event.step, steps)
        | _ -> None)
      evs
  in
  Alcotest.(check bool) "restructure paused at least twice" true
    (List.length pauses >= 2);
  let inside (t0, len) t = t > t0 && t <= t0 + len in
  let phase_opened_mid_drain =
    List.exists
      (fun w ->
        List.exists
          (fun ev ->
            match ev.Dgr_obs.Event.kind with
            | Dgr_obs.Event.Phase
                { phase = Dgr_obs.Event.Mark_tasks | Dgr_obs.Event.Mark_root; _ }
              ->
              inside w ev.Dgr_obs.Event.step
            | _ -> false)
          evs)
      pauses
  in
  Alcotest.(check bool) "next wave's phase opens inside a pause window" true
    phase_opened_mid_drain;
  let marks_ran_mid_drain =
    List.exists
      (fun w ->
        List.exists
          (fun ev ->
            match ev.Dgr_obs.Event.kind with
            | Dgr_obs.Event.Execute { kind = Dgr_obs.Event.Mark; _ } ->
              inside w ev.Dgr_obs.Event.step
            | _ -> false)
          evs)
      pauses
  in
  Alcotest.(check bool) "mark tasks execute while the pause drains" true
    marks_ran_mid_drain;
  (* overlap must not compromise the verdicts: the live tree survives,
     the garbage rings are gone, the graph validates *)
  Alcotest.(check int) "live tree intact" 63 (Graph.live_count g);
  Alcotest.(check (list string)) "valid" [] (Validate.check g);
  Engine.dispose e

(* Waves are monotone: every phase the controller opens carries a
   strictly larger epoch than the one before it. *)
let test_waves_strictly_increase () =
  let r = Dgr_obs.Recorder.create ~capacity:100_000 ~num_pes:4 () in
  let e = overlap_engine ~recorder:r (overlap_graph ()) in
  let (_ : Cycle.t) = run_cycles e 4 in
  let waves =
    List.filter_map
      (fun ev ->
        match ev.Dgr_obs.Event.kind with
        | Dgr_obs.Event.Phase
            { phase = Dgr_obs.Event.Mark_tasks | Dgr_obs.Event.Mark_root; wave; _ }
          ->
          Some wave
        | _ -> None)
      (Dgr_obs.Recorder.events r)
  in
  Alcotest.(check bool) "several phases observed" true (List.length waves >= 4);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "phase epochs strictly increase" true (monotone waves);
  Engine.dispose e

(* A mark carrying a superseded epoch is dropped at dispatch — counted,
   never executed against the current wave's plane. Wave counters start
   at 1, so [ep = 0] can never be current. *)
let test_stale_epoch_mark_dropped () =
  let g = overlap_graph () in
  let e = overlap_engine g in
  let c = Option.get (Engine.cycle e) in
  (* catch the machine with an M_R run open *)
  let guard = ref 0 in
  while Cycle.phase c <> Cycle.Mark_root && !guard < 10_000 do
    incr guard;
    Engine.step e
  done;
  Alcotest.(check bool) "caught an M_R phase" true (Cycle.phase c = Cycle.Mark_root);
  let before = (Engine.metrics e).Metrics.stale_marks_dropped in
  Engine.inject e
    (Dgr_task.Task.Marking
       (Dgr_task.Task.Mark1 { v = Graph.root g; par = Plane.Rootpar; ep = 0 }));
  for _ = 1 to 50 do
    Engine.step e
  done;
  Alcotest.(check bool) "stale mark counted at dispatch" true
    ((Engine.metrics e).Metrics.stale_marks_dropped > before);
  (* and the machine shrugs it off: cycles keep completing, verdicts hold *)
  let done_before = Cycle.cycles_completed c in
  let (_ : Cycle.t) = run_cycles e (done_before + 2) in
  Alcotest.(check int) "live tree intact" 63 (Graph.live_count g);
  Alcotest.(check (list string)) "valid" [] (Validate.check g);
  Engine.dispose e

(* A crash mid-wave restarts the phase on a fresh epoch without purging
   the machine: the dead wave's surviving marks are dropped at dispatch
   by their stale tags, and the restarted wave still converges on the
   right verdict. *)
let test_crash_mid_wave_overlapping_epochs () =
  let g = overlap_graph () in
  let e = overlap_engine g in
  let c = Option.get (Engine.cycle e) in
  let guard = ref 0 in
  while
    (Cycle.phase c = Cycle.Idle
    || not
         (List.exists Dgr_task.Task.is_marking (Engine.pending_tasks e)))
    && !guard < 10_000
  do
    incr guard;
    Engine.step e
  done;
  Alcotest.(check bool) "caught a wave with marks in flight" true
    (Cycle.phase c <> Cycle.Idle);
  Engine.inject_crash e ~pe:1 ~down:8;
  let done_before = Cycle.cycles_completed c in
  let (_ : Cycle.t) = run_cycles e (done_before + 3) in
  let m = Engine.metrics e in
  Alcotest.(check bool) "dead wave's debris dropped by epoch" true
    (m.Metrics.stale_marks_dropped > 0);
  Alcotest.(check int) "crash recorded" 1 m.Metrics.crashes;
  Alcotest.(check int) "live tree intact" 63 (Graph.live_count g);
  Alcotest.(check (list string)) "valid" [] (Validate.check g);
  Engine.dispose e

(* The whole overlapping-epoch machine is bit-deterministic across
   domain counts: same clock, same live set, same stale-drop and
   marking counters at 1, 2 and 4 domains. *)
let test_overlap_bit_identical_across_domains () =
  let fingerprint domains =
    let g = overlap_graph () in
    let e = overlap_engine ~domains g in
    let (_ : Cycle.t) = run_cycles e 5 in
    let m = Engine.metrics e in
    let live = List.sort compare (Graph.live_vids g) in
    Engine.dispose e;
    ( Engine.now e, live, m.Metrics.marking_executed,
      m.Metrics.stale_marks_dropped, m.Metrics.cycles_completed,
      m.Metrics.marks_coalesced )
  in
  let fp1 = fingerprint 1 in
  Alcotest.(check bool) "2 domains = 1 domain" true (fingerprint 2 = fp1);
  Alcotest.(check bool) "4 domains = 1 domain" true (fingerprint 4 = fp1)

let suite =
  [
    Alcotest.test_case "next wave marks while the pause drains" `Quick
      test_next_wave_marks_during_drain;
    Alcotest.test_case "phase epochs strictly increase" `Quick
      test_waves_strictly_increase;
    Alcotest.test_case "stale-epoch mark dropped at dispatch" `Quick
      test_stale_epoch_mark_dropped;
    Alcotest.test_case "crash mid-wave: stale epochs drop, wave restarts" `Quick
      test_crash_mid_wave_overlapping_epochs;
    Alcotest.test_case "overlap bit-identical at 1/2/4 domains" `Quick
      test_overlap_bit_identical_across_domains;
  ]
