(* Shared test utilities. *)
open Dgr_graph

let vid_set = Alcotest.testable (Fmt.Dump.list Fmt.int) (fun a b -> a = b)

let sorted_list_of_set s = Vid.Set.elements s

let check_vid_set msg expected actual =
  Alcotest.check vid_set msg (sorted_list_of_set expected) (sorted_list_of_set actual)

(* All vertices marked on a plane. *)
let marked_set g plane =
  Graph.fold_live
    (fun acc v ->
      if Plane.marked (Vertex.plane v plane) then Vid.Set.add (Vertex.id v) acc else acc)
    Vid.Set.empty g

let marked_with_prior g prior =
  Graph.fold_live
    (fun acc v ->
      if Plane.marked (Vertex.mr v) && Plane.prior (Vertex.mr v) = prior then
        Vid.Set.add (Vertex.id v) acc
      else acc)
    Vid.Set.empty g

(* No vertex left transient, every count zero. *)
let check_quiescent g plane =
  Graph.iter_live
    (fun v ->
      let p = Vertex.plane v plane in
      if Plane.transient p then
        Alcotest.failf "v%d left transient after marking" (Vertex.id v);
      if (Plane.cnt p) <> 0 then
        Alcotest.failf "v%d has residual mt-cnt=%d" (Vertex.id v) (Plane.cnt p))
    g

let orders rng =
  [
    ("fifo", Dgr_core.Sync_engine.Fifo);
    ("lifo", Dgr_core.Sync_engine.Lifo);
    ("random", Dgr_core.Sync_engine.Random rng);
  ]

(* --- random distributed workloads (fault-plane fuzzing) -------------- *)

open Dgr_util

(* A heavy but survivable adversary: lossy, duplicating, reordering
   channel plus transient PE stalls. *)
let heavy_faults ?(seed = 0) () =
  {
    Dgr_sim.Faults.drop = 0.15;
    duplicate = 0.15;
    delay = 0.2;
    stall = 0.05;
    stall_max = 6;
    crash = 0.0;
    crash_down_max = 32;
    fault_seed = seed;
  }

(* The crash-schedule adversary: a moderately lossy channel plus
   whole-PE crashes. The crash rate and the maximum downtime (the
   recovery delay) are keyed on the seed so the 50-seed block covers
   rare long outages, frequent short ones, and — at rates toward the top
   of the range on 3-4 PE machines — overlapping multi-crashes. *)
let crash_faults ?(seed = 0) () =
  {
    Dgr_sim.Faults.drop = 0.05;
    duplicate = 0.05;
    delay = 0.1;
    stall = 0.02;
    stall_max = 4;
    crash = 0.003 +. (0.003 *. float_of_int (seed mod 4));
    crash_down_max = 1 + (seed mod 40);
    fault_seed = seed + 1000;
  }

(* Graph shapes keyed on the seed: a few to ~65 live vertices, some
   garbage clusters, varying fan-out and cyclicity. *)
let fuzz_spec seed =
  {
    Builder.live = 5 + (seed * 7 mod 60);
    garbage = seed * 3 mod 25;
    free_pool = 8;
    avg_degree = 1.0 +. (float_of_int (seed land 7) /. 3.0);
    cycle_bias = float_of_int (seed land 3) /. 4.0;
  }

(* Mutation schedules are alloc-free (witnessed add-reference and
   delete-reference only), so the same concrete vid schedule replays on
   any identically-built copy of the graph: reachability only shrinks,
   adds are witnessed by existing edges (a→b→c), and no free-list slot is
   ever recycled to alias a vid between the two copies. *)
type mutation =
  | Add_ref of { a : Vid.t; b : Vid.t; c : Vid.t }  (** add a→c, witness a→b→c *)
  | Del_ref of { a : Vid.t; b : Vid.t }

let apply_mutation mut = function
  | Add_ref { a; b; c } -> Dgr_core.Mutator.add_reference mut ~a ~b ~c
  | Del_ref { a; b } -> Dgr_core.Mutator.delete_reference mut ~a ~b

let root_reachable g =
  if not (Graph.has_root g) then Vid.Set.empty
  else begin
    let seen = ref Vid.Set.empty in
    let rec go v =
      if not (Vid.Set.mem v !seen) then begin
        seen := Vid.Set.add v !seen;
        List.iter go (Vertex.args (Graph.vertex g v))
      end
    in
    go (Graph.root g);
    !seen
  end

(* Generate a schedule by mutating [g] as we go: each op picks only
   vertices currently reachable in [g], so replaying the same ops (in the
   same order, interleaved with collections) on an identical copy never
   touches a vid the copy could have reclaimed. [g] ends up in the
   schedule's final state — ready to serve as the reference for a
   differential oracle. *)
let gen_schedule rng g ~ops =
  let mut = Dgr_core.Mutator.create ~spawn:(fun _ -> ()) g in
  let pick l = List.nth l (Rng.int rng (List.length l)) in
  let args v = Vertex.args (Graph.vertex g v) in
  let schedule = ref [] in
  for _ = 1 to ops do
    let reachable = Vid.Set.elements (root_reachable g) in
    let with_args = List.filter (fun v -> args v <> []) reachable in
    let attempt_add () =
      match
        List.filter (fun a -> List.exists (fun b -> args b <> []) (args a)) with_args
      with
      | [] -> None
      | cands ->
        let a = pick cands in
        let b = pick (List.filter (fun b -> args b <> []) (args a)) in
        let c = pick (args b) in
        Some (Add_ref { a; b; c })
    in
    let attempt_del () =
      match with_args with
      | [] -> None
      | _ ->
        let a = pick with_args in
        Some (Del_ref { a; b = pick (args a) })
    in
    let op =
      if Rng.int rng 10 < 6 then
        match attempt_add () with Some o -> Some o | None -> attempt_del ()
      else match attempt_del () with Some o -> Some o | None -> attempt_add ()
    in
    match op with
    | Some op ->
      apply_mutation mut op;
      schedule := op :: !schedule
    | None -> ()
  done;
  List.rev !schedule
