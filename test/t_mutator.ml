(* Cooperating mutator primitives (Fig 4-2): mutations concurrent with a
   marking run must preserve the marking invariants and never cause a
   reachable vertex to be missed. *)
open Dgr_graph
open Dgr_core
open Dgr_util

(* Build a chain a -> b -> c rooted at a, start basic marking, and stop
   after [steps] task executions so the graph is mid-mark. *)
let partial_mark g ~steps =
  let engine = Sync_engine.create g in
  let run = Sync_engine.start engine Run.Basic ~seeds:[ Graph.root g ] in
  let executed = ref 0 in
  while !executed < steps && Sync_engine.step engine do
    incr executed
  done;
  (engine, run)

let drain_and_check engine run =
  let (_ : int) = Sync_engine.drain engine in
  Alcotest.(check bool) "run finished" true run.Run.finished;
  let g = Sync_engine.graph engine in
  let snap = Snapshot.take g in
  let reachable = Dgr_analysis.Reach.reachable_from snap [ Graph.root g ] in
  Vid.Set.iter
    (fun v ->
      if not (Plane.marked (Vertex.mr (Graph.vertex g v))) then
        Alcotest.failf "reachable v%d missed by marking" v)
    reachable

let test_paper_race () =
  (* The §4.2 motivating race: a -> b -> c; marking has passed a; then
     add-reference(a,b,c) and delete-reference(b,c) leave c reachable only
     from a. Cooperation must still mark c. *)
  let g = Graph.create () in
  let c = Builder.add g (Label.Int 1) [] in
  let b = Builder.add g Label.Ind [ c ] in
  let a = Builder.add_root g Label.Ind [ b ] in
  let engine, run = partial_mark g ~steps:1 in
  (* After one step the root a is transient and a mark task for b is
     pending; c is untouched. *)
  Alcotest.(check bool) "a transient" true (Plane.transient (Vertex.mr (Graph.vertex g a)));
  let mut = Sync_engine.mutator engine in
  Mutator.add_reference mut ~a ~b ~c;
  Mutator.delete_reference mut ~a:b ~b:c;
  Invariants.check_exn run ~pending:(Sync_engine.pending engine);
  drain_and_check engine run

let test_paper_race_after_marked () =
  (* Same shape, but the mutation happens when a is already marked and b
     is transient: the witnessed "execute mark1(c,b)" branch. *)
  let g = Graph.create () in
  let c = Builder.add g (Label.Int 1) [] in
  let slow = Builder.chain g 6 in
  let b = Builder.add g Label.If [ c; slow ] in
  let a = Builder.add_root g Label.Ind [ b ] in
  let engine, run = partial_mark g ~steps:3 in
  ignore a;
  (* Drive until a is marked but b still transient (b waits on the slow
     chain). *)
  let steps = ref 0 in
  while
    (not (Plane.marked (Vertex.mr (Graph.vertex g a))))
    && !steps < 100
    && Sync_engine.step engine
  do
    incr steps
  done;
  if Plane.marked (Vertex.mr (Graph.vertex g a)) && Plane.transient (Vertex.mr (Graph.vertex g b))
  then begin
    let fresh = Builder.add g (Label.Int 9) [] in
    Vertex.connect (Graph.vertex g b) fresh;
    (* fresh is a child of b; now reference it from a *)
    let mut = Sync_engine.mutator engine in
    Mutator.add_reference mut ~a ~b ~c:fresh;
    Invariants.check_exn run ~pending:(Sync_engine.pending engine)
  end;
  drain_and_check engine run

let test_add_reference_validates_witness () =
  let g = Graph.create () in
  let c = Builder.add g (Label.Int 1) [] in
  let b = Builder.add g Label.Ind [ c ] in
  let a = Builder.add_root g Label.Ind [ b ] in
  let mut = Mutator.create ~spawn:(fun _ -> ()) g in
  Alcotest.check_raises "b must be a child of a"
    (Invalid_argument
       (Printf.sprintf "Mutator.add_reference: witness v%d is not a child of v%d" c a))
    (fun () -> Mutator.add_reference mut ~a ~b:c ~c:b);
  Alcotest.check_raises "c must be a child of b"
    (Invalid_argument
       (Printf.sprintf "Mutator.add_reference: v%d is not a child of witness v%d" a b))
    (fun () -> Mutator.add_reference mut ~a ~b ~c:a)

let test_expand_node_marked_parent () =
  (* Splicing a fresh subgraph below a marked vertex must mark the whole
     subgraph (paper: "if marked(a) then mark(g)"). *)
  let g = Graph.create () in
  let leaf = Builder.add g (Label.Int 5) [] in
  let a = Builder.add_root g Label.Ind [ leaf ] in
  let engine, run = partial_mark g ~steps:10_000 in
  Alcotest.(check bool) "fully marked" true run.Run.finished;
  (* a marked; now expand: fresh subgraph referencing the old child *)
  let mut = Sync_engine.mutator engine in
  Mutator.set_active mut [ run ];
  let inner = Graph.alloc g (Label.Prim Label.Neg) in
  Mutator.connect_fresh mut ~parent:(Vertex.id inner) ~child:leaf;
  Mutator.expand_node mut ~a ~entry:(Vertex.id inner);
  Alcotest.(check bool) "subgraph closure-marked" true (Plane.marked (Vertex.mr inner));
  Alcotest.(check (list int)) "a rewired" [ (Vertex.id inner) ] (Vertex.args (Graph.vertex g a));
  Invariants.check_exn run ~pending:(Sync_engine.pending engine)

let test_expand_node_unmarked_parent () =
  let g = Graph.create () in
  let leaf = Builder.add g (Label.Int 5) [] in
  let a = Builder.add_root g Label.Ind [ leaf ] in
  let mut = Mutator.create ~spawn:(fun _ -> ()) g in
  let inner = Graph.alloc g (Label.Prim Label.Neg) in
  Mutator.connect_fresh mut ~parent:(Vertex.id inner) ~child:leaf;
  Mutator.expand_node mut ~a ~entry:(Vertex.id inner);
  Alcotest.(check bool) "no marking without active runs" true (Plane.unmarked (Vertex.mr inner))

let test_record_request_cooperates_once () =
  (* Re-recording the same request entry must not charge the marking tree
     again (the M_T-termination regression). *)
  let g = Graph.create () in
  let y = Builder.add g (Label.Int 1) [] in
  let x = Builder.add_root g Label.Bottom [ y ] in
  let engine = Sync_engine.create g in
  let run = Sync_engine.start engine Run.Tasks ~seeds:[ x ] in
  let (_ : bool) = Sync_engine.step engine in
  (* x is now transient on the MT plane *)
  Alcotest.(check bool) "x transient (MT)" true (Plane.transient (Vertex.mt (Graph.vertex g x)));
  let mut = Sync_engine.mutator engine in
  let cnt_before = Plane.cnt (Vertex.mt (Graph.vertex g x)) in
  Mutator.record_request mut ~at:x ~requester:(Some y) ~demand:Demand.Vital ~key:x;
  let cnt_after_first = Plane.cnt (Vertex.mt (Graph.vertex g x)) in
  Alcotest.(check int) "first recording charges once" (cnt_before + 1) cnt_after_first;
  Mutator.record_request mut ~at:x ~requester:(Some y) ~demand:Demand.Vital ~key:x;
  Alcotest.(check int) "re-recording does not charge"
    cnt_after_first
    (Plane.cnt (Vertex.mt (Graph.vertex g x)));
  let (_ : int) = Sync_engine.drain engine in
  Alcotest.(check bool) "M_T terminates" true run.Run.finished

let test_drop_request_restores_mt_edge () =
  (* Dereferencing (drop req-args, keep the arg) re-adds the edge to M_T's
     relation; cooperation must cover it when the parent is marked. *)
  let g = Graph.create () in
  let y = Builder.add g (Label.Int 1) [] in
  let x = Builder.add_root g Label.If [ y ] in
  Vertex.request_arg (Graph.vertex g x) y Demand.Eager;
  let engine = Sync_engine.create g in
  let run = Sync_engine.start engine Run.Tasks ~seeds:[ x ] in
  let (_ : int) = Sync_engine.drain engine in
  Alcotest.(check bool) "x marked, y skipped (req-arg edge)" true
    (Plane.marked (Vertex.mt (Graph.vertex g x)) && Plane.unmarked (Vertex.mt (Graph.vertex g y)));
  let mut = Sync_engine.mutator engine in
  Mutator.set_active mut [ run ];
  Mutator.drop_request_child mut ~v:x ~c:y;
  Alcotest.(check bool) "y closure-marked on dereference" true
    (Plane.marked (Vertex.mt (Graph.vertex g y)))

let test_hooks_fire () =
  let g = Graph.create () in
  let b = Builder.add g (Label.Int 1) [] in
  let c = Builder.add g (Label.Int 2) [] in
  let a = Builder.add_root g Label.If [ b ] in
  Vertex.connect (Graph.vertex g b) c;
  let log = ref [] in
  let mut =
    Mutator.create
      ~on_connect:(fun p ch -> log := ("connect", p, ch) :: !log)
      ~on_disconnect:(fun p ch -> log := ("disconnect", p, ch) :: !log)
      ~spawn:(fun _ -> ()) g
  in
  Mutator.add_reference mut ~a ~b ~c;
  Mutator.delete_reference mut ~a ~b;
  Alcotest.(check bool) "hooks observed both edits" true
    (List.mem ("connect", a, c) !log && List.mem ("disconnect", a, b) !log)

let test_interleaved_random_mutations () =
  (* Random mutations interleaved with basic marking: invariants hold at
     every step, and everything reachable at the end is marked. *)
  let rng = Rng.create 4242 in
  for seed = 0 to 14 do
    let spec =
      {
        Builder.live = 25 + Rng.int rng 50;
        garbage = Rng.int rng 20;
        free_pool = 30;
        avg_degree = 1.5 +. Rng.float rng 1.5;
        cycle_bias = Rng.float rng 0.4;
      }
    in
    let g = Builder.random (Rng.create (seed * 131)) spec in
    let engine = Sync_engine.create ~order:(Sync_engine.Random (Rng.split rng)) g in
    let run = Sync_engine.start engine Run.Basic ~seeds:[ Graph.root g ] in
    let mut = Sync_engine.mutator engine in
    let mutate _ =
      if Rng.int rng 3 = 0 then begin
        (* pick random mutation on live vertices *)
        let live = Graph.live_vids g in
        let pick () = Rng.choose_list rng live in
        match Rng.int rng 3 with
        | 0 -> (
          (* add-reference via a random witness path a -> b -> c *)
          let a = pick () in
          match Graph.children g a with
          | [] -> ()
          | bs -> (
            let b = Rng.choose_list rng bs in
            match Graph.children g b with
            | [] -> ()
            | cs -> Mutator.add_reference mut ~a ~b ~c:(Rng.choose_list rng cs)))
        | 1 -> (
          let a = pick () in
          match Graph.children g a with
          | [] -> ()
          | bs -> Mutator.delete_reference mut ~a ~b:(Rng.choose_list rng bs))
        | _ ->
          (* expand-node with a one-vertex subgraph *)
          let a = pick () in
          if Graph.headroom g > 2 then begin
            let inner = Graph.alloc g Label.Ind in
            List.iter
              (fun old -> Mutator.connect_fresh mut ~parent:(Vertex.id inner) ~child:old)
              (Graph.children g a);
            Mutator.expand_node mut ~a ~entry:(Vertex.id inner)
          end
      end;
      Invariants.check_exn run ~pending:(Sync_engine.pending engine)
    in
    let (_ : int) = Sync_engine.drain ~interleave:mutate engine in
    Alcotest.(check bool) (Printf.sprintf "finished (seed %d)" seed) true run.Run.finished;
    (* Liveness: everything now reachable is marked (Lemma 2 under the
       cooperating mutator). *)
    let snap = Snapshot.take g in
    let reachable = Dgr_analysis.Reach.reachable_from snap [ Graph.root g ] in
    Vid.Set.iter
      (fun v ->
        if not (Plane.marked (Vertex.mr (Graph.vertex g v))) then
          Alcotest.failf "seed %d: reachable v%d missed" seed v)
      reachable
  done

let suite =
  [
    Alcotest.test_case "the §4.2 race is covered" `Quick test_paper_race;
    Alcotest.test_case "witnessed execute branch" `Quick test_paper_race_after_marked;
    Alcotest.test_case "add_reference validates adjacency" `Quick
      test_add_reference_validates_witness;
    Alcotest.test_case "expand-node under a marked parent" `Quick
      test_expand_node_marked_parent;
    Alcotest.test_case "expand-node with no active runs" `Quick
      test_expand_node_unmarked_parent;
    Alcotest.test_case "record_request charges once" `Quick test_record_request_cooperates_once;
    Alcotest.test_case "dereference restores the M_T edge" `Quick
      test_drop_request_restores_mt_edge;
    Alcotest.test_case "connect/disconnect hooks" `Quick test_hooks_fire;
    Alcotest.test_case "random mutations keep invariants" `Quick
      test_interleaved_random_mutations;
  ]
