(* The struct-of-arrays vertex store, tested differentially: a randomized
   mutation schedule runs against both the real column store and a plain
   record-and-list oracle, and the two must render identical snapshots.
   Plus units for the row-recycling free list (capacities survive a
   release/alloc round trip), headroom growth, and the normalized-prefix
   bounds contract of the flat arg rows. *)
open Dgr_graph

let qtest = QCheck_alcotest.to_alcotest

(* ---------------------------------------------------------------- *)
(* Record-store oracle: every edge set as an append-order list. The
   store's list views are newest-first, so renders reverse these. *)

type ovx = {
  mutable o_label : Label.t;
  mutable o_free : bool;
  mutable o_args : Vid.t list;
  mutable o_reqv : Vid.t list;
  mutable o_reqe : Vid.t list;
  mutable o_rq : (int * int * Vid.t) list;  (* who (-1 = None), demand code, key *)
  mutable o_recv : (Vid.t * Label.value) list;
}

let o_create label =
  {
    o_label = label;
    o_free = false;
    o_args = [];
    o_reqv = [];
    o_reqe = [];
    o_rq = [];
    o_recv = [];
  }

let rec remove_first xs c =
  match xs with
  | [] -> []
  | x :: rest -> if Vid.equal x c then rest else x :: remove_first rest c

let o_connect o c = o.o_args <- o.o_args @ [ c ]

let o_disconnect o c =
  o.o_args <- remove_first o.o_args c;
  (* req-args stay subsets of args: the request record dies with the
     last occurrence *)
  if not (List.mem c o.o_args) then begin
    o.o_reqv <- List.filter (fun x -> not (Vid.equal x c)) o.o_reqv;
    o.o_reqe <- List.filter (fun x -> not (Vid.equal x c)) o.o_reqe
  end

let o_request o c demand =
  let in_v = List.mem c o.o_reqv and in_e = List.mem c o.o_reqe in
  match demand with
  | Demand.Vital ->
    if not in_v then begin
      o.o_reqv <- o.o_reqv @ [ c ];
      if in_e then o.o_reqe <- List.filter (fun x -> not (Vid.equal x c)) o.o_reqe
    end
  | Demand.Eager -> if (not in_v) && not in_e then o.o_reqe <- o.o_reqe @ [ c ]

let o_drop_request o c =
  o.o_reqv <- List.filter (fun x -> not (Vid.equal x c)) o.o_reqv;
  o.o_reqe <- List.filter (fun x -> not (Vid.equal x c)) o.o_reqe

let o_add_requester o w d k =
  if List.exists (fun (w', _, k') -> w' = w && Vid.equal k' k) o.o_rq then
    o.o_rq <-
      List.map
        (fun (w', d', k') ->
          if w' = w && Vid.equal k' k && d = 1 then (w', 1, k') else (w', d', k'))
        o.o_rq
  else o.o_rq <- o.o_rq @ [ (w, d, k) ]

let o_remove_requester o w = o.o_rq <- List.filter (fun (w', _, _) -> w' <> w) o.o_rq

let o_record_value o from value =
  if not (List.mem_assoc from o.o_recv) then o.o_recv <- o.o_recv @ [ (from, value) ]

let o_release o =
  o.o_free <- true;
  o.o_args <- [];
  o.o_reqv <- [];
  o.o_reqe <- [];
  o.o_rq <- [];
  o.o_recv <- []

(* ---------------------------------------------------------------- *)
(* Rendering. Both sides print the same shape; free slots render as a
   bare marker (a released slot's residual label is representation
   detail, not semantics). *)

let render_list b xs pp =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ';';
      pp x)
    xs;
  Buffer.add_char b ']'

let render_side b ~vid ~free ~label ~args ~reqv ~reqe ~rq ~recv =
  if free then Printf.bprintf b "v%d free\n" vid
  else begin
    Printf.bprintf b "v%d %s args=" vid (Label.to_string label);
    render_list b args (Printf.bprintf b "%d");
    Buffer.add_string b " reqv=";
    render_list b reqv (Printf.bprintf b "%d");
    Buffer.add_string b " reqe=";
    render_list b reqe (Printf.bprintf b "%d");
    Buffer.add_string b " rq=";
    render_list b rq (fun (w, d, k) -> Printf.bprintf b "(%d,%d,%d)" w d k);
    Buffer.add_string b " recv=";
    render_list b recv (fun (f, v) ->
        Printf.bprintf b "(%d,%s)" f
          (match v with
          | Label.V_int n -> string_of_int n
          | Label.V_bool x -> string_of_bool x
          | Label.V_nil -> "nil"
          | Label.V_ref r -> Printf.sprintf "ref%d" r
          | Label.V_err e -> e));
    Buffer.add_char b '\n'
  end

(* The real side renders from a [Snapshot] (the tentpole's contract is
   snapshot-digest equality), except [recv], which snapshots don't
   carry and is read straight off the store. *)
let digest_graph g vids =
  let s = Snapshot.take g in
  let b = Buffer.create 256 in
  List.iter
    (fun vid ->
      let sv = Snapshot.vertex s vid in
      let vx = Graph.vertex g vid in
      render_side b ~vid ~free:sv.Snapshot.free ~label:sv.Snapshot.label
        ~args:sv.Snapshot.args ~reqv:sv.Snapshot.req_v ~reqe:sv.Snapshot.req_e
        ~rq:
          (List.map
             (fun e ->
               ( (match e.Vertex.who with None -> -1 | Some w -> w),
                 (match e.Vertex.demand with Demand.Eager -> 0 | Demand.Vital -> 1),
                 e.Vertex.key ))
             sv.Snapshot.requested)
        ~recv:(Vertex.recv vx))
    vids;
  Buffer.contents b

let digest_oracle tbl vids =
  let b = Buffer.create 256 in
  List.iter
    (fun vid ->
      let o = Hashtbl.find tbl vid in
      render_side b ~vid ~free:o.o_free ~label:o.o_label ~args:o.o_args
        ~reqv:(List.rev o.o_reqv) ~reqe:(List.rev o.o_reqe) ~rq:(List.rev o.o_rq)
        ~recv:(List.rev o.o_recv))
    vids;
  Buffer.contents b

(* ---------------------------------------------------------------- *)
(* The differential schedule. Partitioned two-home graph, so it also
   exercises striped vids and the per-home free lists. *)

let labels =
  [| Label.If; Label.Ind; Label.Bottom; Label.Nil; Label.Prim Label.Add; Label.Int 7 |]

let differential_schedule seed =
  let rng = Random.State.make [| seed; 0x5f0a |] in
  let g = Graph.create ~num_pes:2 () in
  let tbl : (Vid.t, ovx) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  (* all vids ever allocated, in first-allocation order *)
  let live () = Hashtbl.fold (fun vid o acc -> if o.o_free then acc else vid :: acc) tbl []
  in
  let pick_live () =
    match List.sort compare (live ()) with
    | [] -> None
    | l -> Some (List.nth l (Random.State.int rng (List.length l)))
  in
  for _ = 1 to 150 do
    match Random.State.int rng 10 with
    | 0 | 1 ->
      let label = labels.(Random.State.int rng (Array.length labels)) in
      let v = Graph.alloc ~from:(Random.State.int rng 2) g label in
      let vid = Vertex.id v in
      if not (Hashtbl.mem tbl vid) then order := vid :: !order;
      Hashtbl.replace tbl vid (o_create label)
    | 2 -> (
      match pick_live () with
      | Some vid when List.length (live ()) > 1 ->
        Graph.release g vid;
        o_release (Hashtbl.find tbl vid)
      | Some _ | None -> ())
    | 3 | 4 -> (
      match pick_live () with
      | None -> ()
      | Some vid ->
        let c = Random.State.int rng 24 in
        Vertex.connect (Graph.vertex g vid) c;
        o_connect (Hashtbl.find tbl vid) c)
    | 5 -> (
      match pick_live () with
      | None -> ()
      | Some vid ->
        let c = Random.State.int rng 24 in
        Vertex.disconnect (Graph.vertex g vid) c;
        o_disconnect (Hashtbl.find tbl vid) c)
    | 6 -> (
      match pick_live () with
      | None -> ()
      | Some vid ->
        let vx = Graph.vertex g vid in
        if Vertex.arg_count vx > 0 then begin
          let c = Vertex.arg vx (Random.State.int rng (Vertex.arg_count vx)) in
          let d = if Random.State.bool rng then Demand.Vital else Demand.Eager in
          Vertex.request_arg vx c d;
          o_request (Hashtbl.find tbl vid) c d
        end)
    | 7 -> (
      match pick_live () with
      | None -> ()
      | Some vid ->
        let c = Random.State.int rng 24 in
        Vertex.drop_request (Graph.vertex g vid) c;
        o_drop_request (Hashtbl.find tbl vid) c)
    | 8 -> (
      match pick_live () with
      | None -> ()
      | Some vid ->
        let w = if Random.State.int rng 8 = 0 then -1 else Random.State.int rng 24 in
        let d = Random.State.int rng 2 in
        let k = Random.State.int rng 24 in
        Vertex.add_requester (Graph.vertex g vid)
          (if w < 0 then None else Some w)
          ~demand:(if d = 1 then Demand.Vital else Demand.Eager)
          ~key:k;
        o_add_requester (Hashtbl.find tbl vid) w d k)
    | _ -> (
      match pick_live () with
      | None -> ()
      | Some vid ->
        if Random.State.bool rng then begin
          let w = if Random.State.int rng 8 = 0 then -1 else Random.State.int rng 24 in
          Vertex.remove_requester (Graph.vertex g vid)
            (if w < 0 then None else Some w);
          o_remove_requester (Hashtbl.find tbl vid) w
        end
        else begin
          let from = Random.State.int rng 24 in
          let value = Label.V_int (Random.State.int rng 100) in
          Vertex.record_value (Graph.vertex g vid) ~from value;
          o_record_value (Hashtbl.find tbl vid) from value
        end)
  done;
  let vids = List.rev !order in
  (digest_graph g vids, digest_oracle tbl vids)

let prop_store_matches_oracle =
  QCheck.Test.make ~name:"SoA store matches record-store oracle (snapshot digest)"
    ~count:100 QCheck.small_nat (fun seed ->
      let real, oracle = differential_schedule seed in
      if String.equal real oracle then true
      else QCheck.Test.fail_reportf "store/oracle digest mismatch@.--- store@.%s--- oracle@.%s" real oracle)

(* ---------------------------------------------------------------- *)
(* Free-list recycling: a released slot's grown rows come back capacity
   intact on the next alloc from the same home, reading empty. *)

let test_row_recycling () =
  let g = Graph.create ~num_pes:2 () in
  Graph.partition g ~pes:2;
  let v = Graph.alloc ~from:0 g Label.If in
  let vid = Vertex.id v in
  for i = 1 to 40 do
    Vertex.connect v i
  done;
  Vertex.add_requester v (Some 3) ~demand:Demand.Vital ~key:1;
  let cap = Vertex.args_capacity v in
  Alcotest.(check bool) "row grew past the base capacity" true (cap >= 40);
  Graph.release g vid;
  Alcotest.(check bool) "slot reads free" true (Vertex.free (Graph.vertex g vid));
  let v' = Graph.alloc ~from:0 g Label.Ind in
  Alcotest.(check int) "home free list recycles the slot (LIFO)" vid (Vertex.id v');
  Alcotest.(check int) "recycled row keeps its grown capacity" cap
    (Vertex.args_capacity v');
  Alcotest.(check int) "recycled slot reads zero args" 0 (Vertex.arg_count v');
  Alcotest.(check int) "recycled slot reads zero requesters" 0
    (Vertex.requested_count v');
  Alcotest.(check (list int)) "args view is empty" [] (Vertex.args v')

let test_homes_do_not_share_free_lists () =
  let g = Graph.create ~num_pes:2 () in
  Graph.partition g ~pes:2;
  let a = Graph.alloc ~from:0 g Label.If in
  let _b = Graph.alloc ~from:1 g Label.If in
  Graph.release g (Vertex.id a);
  (* home 1 must not serve home 0's freed slot *)
  let c = Graph.alloc ~from:1 g Label.Ind in
  Alcotest.(check bool) "other home allocates a fresh slot" true
    (Vertex.id c <> Vertex.id a);
  let d = Graph.alloc ~from:0 g Label.Ind in
  Alcotest.(check int) "own home recycles it" (Vertex.id a) (Vertex.id d)

let test_row_headroom_growth () =
  let v = Vertex.create 0 ~pe:0 Label.If in
  let prev = ref (Vertex.args_capacity v) in
  let grows = ref 0 in
  for i = 1 to 1000 do
    Vertex.connect v i;
    let c = Vertex.args_capacity v in
    if c <> !prev then begin
      Alcotest.(check bool) "capacity only grows" true (c > !prev);
      Alcotest.(check bool) "growth is geometric (at least doubling)" true
        (!prev = 0 || c >= 2 * !prev);
      incr grows;
      prev := c
    end;
    Alcotest.(check bool) "capacity covers the prefix" true (c >= i)
  done;
  Alcotest.(check bool) "amortized: O(log n) growths for 1000 appends" true (!grows <= 12);
  Alcotest.(check (list int)) "contents survive every growth"
    (List.init 1000 (fun i -> i + 1))
    (Vertex.args v)

(* ---------------------------------------------------------------- *)
(* Normalized-prefix bounds: the flat row stores args as a packed prefix
   of a larger capacity array; views must end exactly at the prefix and
   removals must re-pack, never exposing stale cells. *)

let test_args_bounds_and_normalization () =
  let v = Vertex.create 0 ~pe:0 Label.If in
  Vertex.connect v 10;
  Vertex.connect v 11;
  Vertex.connect v 12;
  Alcotest.(check int) "arg 0" 10 (Vertex.arg v 0);
  Alcotest.(check int) "arg 2" 12 (Vertex.arg v 2);
  Alcotest.check_raises "index = count is out of bounds"
    (Invalid_argument "Vertex.arg: index out of bounds") (fun () ->
      ignore (Vertex.arg v 3));
  Alcotest.check_raises "negative index is out of bounds"
    (Invalid_argument "Vertex.arg: index out of bounds") (fun () ->
      ignore (Vertex.arg v (-1)));
  Vertex.disconnect v 11;
  (* interior removal re-packs the prefix: the old tail cell holding 12
     moved left, and index 2 — still inside capacity — is now invalid *)
  Alcotest.(check int) "prefix re-packed" 12 (Vertex.arg v 1);
  Alcotest.check_raises "stale tail cell is not addressable"
    (Invalid_argument "Vertex.arg: index out of bounds") (fun () ->
      ignore (Vertex.arg v 2));
  Alcotest.(check bool) "membership respects the prefix" false (Vertex.has_arg v 11);
  let seen = ref [] in
  Vertex.iter_args v (fun c -> seen := c :: !seen);
  Alcotest.(check (list int)) "iteration covers exactly the prefix" [ 10; 12 ]
    (List.rev !seen);
  (* set_args renormalizes wholesale *)
  Vertex.set_args v [ 1; 2 ];
  Alcotest.(check int) "set_args pins the new count" 2 (Vertex.arg_count v);
  Alcotest.check_raises "old length is gone after set_args"
    (Invalid_argument "Vertex.arg: index out of bounds") (fun () ->
      ignore (Vertex.arg v 2))

let suite =
  [
    qtest prop_store_matches_oracle;
    Alcotest.test_case "free list recycles rows capacity-intact" `Quick
      test_row_recycling;
    Alcotest.test_case "per-home free lists are disjoint" `Quick
      test_homes_do_not_share_free_lists;
    Alcotest.test_case "arg rows grow geometrically" `Quick test_row_headroom_growth;
    Alcotest.test_case "args are a normalized prefix with hard bounds" `Quick
      test_args_bounds_and_normalization;
  ]
