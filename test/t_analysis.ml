(* The reachability oracle: Properties 1-6 on hand-built graphs. *)
open Dgr_graph
open Dgr_analysis
open Dgr_task
open Task

let compute g tasks =
  let snap = Snapshot.take g in
  Classify.compute snap ~tasks

let test_r_is_args_reachability () =
  let g = Graph.create () in
  let live = Builder.chain g 4 in
  Graph.set_root g live;
  let junk = Builder.cycle g 3 in
  let sets = compute g [] in
  Alcotest.(check int) "R has the chain" 4
    (Vid.Set.cardinal sets.Classify.reach.Reach.root_reachable);
  Alcotest.(check bool) "junk not in R" false
    (Vid.Set.mem junk sets.Classify.reach.Reach.root_reachable);
  Helpers.check_vid_set "Property 1: GAR = V − R − F"
    (Vid.Set.of_list [ junk; junk + 1; junk + 2 ])
    sets.Classify.garbage

let test_free_disjoint_from_gar () =
  let g = Graph.create () in
  let (_ : Vid.t) = Builder.add_root g (Label.Int 1) [] in
  Graph.preallocate g 6;
  let sets = compute g [] in
  Alcotest.(check int) "free counted" 6 (Vid.Set.cardinal sets.Classify.free);
  Alcotest.(check int) "free not garbage" 0 (Vid.Set.cardinal sets.Classify.garbage)

let test_priorities_max_min () =
  (* root --v--> m --e--> d and root --r--> d: d's best priority is the
     max over paths of the min along each: max(min(3,2), 1) = 2. *)
  let g = Graph.create () in
  let d = Builder.add g (Label.Int 9) [] in
  let m = Builder.add g Label.Ind [ d ] in
  let root = Builder.add_root g Label.If [ m; d ] in
  Vertex.request_arg (Graph.vertex g root) m Demand.Vital;
  Vertex.request_arg (Graph.vertex g m) d Demand.Eager;
  (* root -> d stays unrequested *)
  let sets = compute g [] in
  let r = sets.Classify.reach in
  Alcotest.(check bool) "d in R_e" true (Vid.Set.mem d r.Reach.r_e);
  Alcotest.(check bool) "d not in R_v" false (Vid.Set.mem d r.Reach.r_v);
  Alcotest.(check bool) "d not in R_r (eager path wins)" false (Vid.Set.mem d r.Reach.r_r);
  Alcotest.(check (option int)) "best_priority" (Some 2)
    (Vid.Map.find_opt d r.Reach.best_priority)

let test_t_reachability_via_requested () =
  (* T traces requested ∪ (args − req-args): a task at y reaches x through
     requested(y) ∋ x, and x's unrequested arg z, but not x's requested
     arg w. *)
  let g = Graph.create () in
  let w = Builder.add g (Label.Int 1) [] in
  let z = Builder.add g (Label.Int 2) [] in
  let y = Builder.add g (Label.Int 3) [] in
  let x = Builder.add_root g Label.If [ w; z; y ] in
  Vertex.request_arg (Graph.vertex g x) w Demand.Vital;
  Vertex.request_arg (Graph.vertex g x) y Demand.Vital;
  Vertex.add_requester (Graph.vertex g y) (Some x) ~demand:Demand.Vital ~key:y;
  let task = Request { src = Some x; dst = y; demand = Demand.Vital; key = y } in
  let sets = compute g [ task ] in
  let t = sets.Classify.reach.Reach.task_reachable in
  Alcotest.(check bool) "y in T (destination)" true (Vid.Set.mem y t);
  Alcotest.(check bool) "x in T (source / via requested)" true (Vid.Set.mem x t);
  Alcotest.(check bool) "z in T (unrequested arg)" true (Vid.Set.mem z t);
  Alcotest.(check bool) "w not in T (requested arg)" false (Vid.Set.mem w t)

let test_deadlock_properties () =
  let s = Dgr_harness.Scenarios.fig_3_1 () in
  let g = s.Dgr_harness.Scenarios.graph in
  let x = s.Dgr_harness.Scenarios.x in
  (* reflect the quiesced execution state: root demanded x, x demanded
     itself and the constant *)
  let root = Graph.root g in
  Vertex.add_requester (Graph.vertex g root) None ~demand:Demand.Vital ~key:root;
  Vertex.request_arg (Graph.vertex g root) x Demand.Vital;
  let vx = Graph.vertex g x in
  List.iter (fun c -> Vertex.request_arg vx c Demand.Vital) (Vertex.args vx);
  Vertex.add_requester vx (Some x) ~demand:Demand.Vital ~key:x;
  Vertex.add_requester vx (Some root) ~demand:Demand.Vital ~key:x;
  let sets = compute g [] in
  Alcotest.(check bool) "Property 2': x deadlocked" true
    (Vid.Set.mem x sets.Classify.deadlocked);
  Alcotest.(check bool) "DL_v ⊆ DL" true
    (Vid.Set.subset sets.Classify.deadlocked sets.Classify.deadlocked_plain)

let test_no_deadlock_with_live_task () =
  let s = Dgr_harness.Scenarios.fig_3_1 () in
  let g = s.Dgr_harness.Scenarios.graph in
  let x = s.Dgr_harness.Scenarios.x in
  let root = Graph.root g in
  Vertex.request_arg (Graph.vertex g root) x Demand.Vital;
  (* a request task still in flight toward x: not deadlocked yet *)
  let task = Request { src = Some root; dst = x; demand = Demand.Vital; key = x } in
  let sets = compute g [ task ] in
  Alcotest.(check bool) "x not deadlocked while a task can reach it" false
    (Vid.Set.mem x sets.Classify.deadlocked)

let test_task_classification () =
  let s = Dgr_harness.Scenarios.fig_3_2 () in
  let sets =
    Classify.compute (Snapshot.take s.Dgr_harness.Scenarios.graph)
      ~tasks:s.Dgr_harness.Scenarios.tasks
  in
  let kinds =
    List.map (Classify.classify_task sets) s.Dgr_harness.Scenarios.tasks
  in
  Alcotest.(check (list string)) "Properties 3-6 on Fig 3-2"
    [ "vital"; "eager"; "reserve"; "irrelevant" ]
    (List.map Classify.task_kind_to_string kinds)

let test_classify_final_respond () =
  let g = Graph.create () in
  let r = Builder.add_root g (Label.Int 1) [] in
  let sets = compute g [] in
  Alcotest.(check string) "respond to the external requester" "unclassified"
    (Classify.task_kind_to_string
       (Classify.classify_task sets
          (Respond { src = r; dst = None; value = Label.V_int 1; key = r;
                     demand = Demand.Vital })))

let test_venn_counts () =
  let s = Dgr_harness.Scenarios.fig_3_2 () in
  let g = s.Dgr_harness.Scenarios.graph in
  let sets = Classify.compute (Snapshot.take g) ~tasks:s.Dgr_harness.Scenarios.tasks in
  let venn = Classify.venn (Snapshot.take g) sets in
  (* vital: the all-vital chain if0 → if1 → a1 *)
  Alcotest.(check int) "vital region" 3 venn.Classify.n_vital;
  (* eager: d (speculated then-branch of if0) *)
  Alcotest.(check int) "eager region" 1 venn.Classify.n_eager;
  (* reserve: vertices held only through unrequested args — c (dereferenced
     branch), tt (if1's consumed predicate), and a1's unrequested leaves
     a and one *)
  Alcotest.(check int) "reserve region" 4 venn.Classify.n_reserve;
  (* garbage: the dereferenced-and-disconnected a+b+c with its private
     subexpressions ab and b *)
  Alcotest.(check int) "garbage region" 3 venn.Classify.n_garbage

let test_empty_graph () =
  let g = Graph.create () in
  let sets = compute g [] in
  Alcotest.(check int) "no garbage in the empty graph" 0
    (Vid.Set.cardinal sets.Classify.garbage);
  Alcotest.(check int) "nothing reachable" 0
    (Vid.Set.cardinal sets.Classify.reach.Reach.root_reachable)

let suite =
  [
    Alcotest.test_case "R and Property 1 (GAR)" `Quick test_r_is_args_reachability;
    Alcotest.test_case "F disjoint from GAR" `Quick test_free_disjoint_from_gar;
    Alcotest.test_case "max-min priorities" `Quick test_priorities_max_min;
    Alcotest.test_case "T-reachability (↦*)" `Quick test_t_reachability_via_requested;
    Alcotest.test_case "Property 2': deadlock" `Quick test_deadlock_properties;
    Alcotest.test_case "live task prevents deadlock verdict" `Quick
      test_no_deadlock_with_live_task;
    Alcotest.test_case "Properties 3-6: task kinds" `Quick test_task_classification;
    Alcotest.test_case "final respond unclassified" `Quick test_classify_final_respond;
    Alcotest.test_case "Fig 3-3 region counts" `Quick test_venn_counts;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
  ]
