(* The latency histogram (lib/obs/hist.ml) and the post-run report:
   exact small-sample percentiles, the bucket mapping at power-of-two
   boundaries, absorb associativity, and byte-determinism of
   [dgr report --deterministic] output. *)
open Dgr_obs

(* --- exact region ---------------------------------------------------- *)

let test_small_sample_percentiles () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 3; 1; 4; 1; 5; 9; 2; 6 ];
  Alcotest.(check int) "count" 8 (Hist.count h);
  Alcotest.(check int) "max" 9 (Hist.max_value h);
  (* nearest rank on the sorted sample [1;1;2;3;4;5;6;9] *)
  Alcotest.(check int) "p50 = 4th" 3 (Hist.percentile h 50.0);
  Alcotest.(check int) "p25 = 2nd" 1 (Hist.percentile h 25.0);
  Alcotest.(check int) "p90 = 8th" 9 (Hist.percentile h 90.0);
  Alcotest.(check int) "p100 = max" 9 (Hist.percentile h 100.0);
  Alcotest.(check (float 1e-9)) "mean" 3.875 (Hist.mean h)

let test_empty_and_clear () =
  let h = Hist.create () in
  Alcotest.(check int) "empty count" 0 (Hist.count h);
  Alcotest.(check int) "empty p99" 0 (Hist.percentile h 99.0);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Hist.mean h);
  Hist.add h 7;
  Hist.add h (-3);
  (* negatives clamp to 0 *)
  Alcotest.(check int) "clamped count" 2 (Hist.count h);
  Alcotest.(check int) "clamped p1" 0 (Hist.percentile h 1.0);
  Hist.clear h;
  Alcotest.(check int) "cleared" 0 (Hist.count h)

(* --- bucket mapping --------------------------------------------------- *)

let test_bucket_boundaries () =
  (* 0..15 are exact: index = value, value_of inverts. *)
  for v = 0 to 15 do
    Alcotest.(check int) (Printf.sprintf "exact idx %d" v) v (Hist.index_of v);
    Alcotest.(check int) (Printf.sprintf "exact val %d" v) v (Hist.value_of v)
  done;
  (* Above 15, each power-of-two range splits into 16 sub-buckets, so
     value_of (index_of v) is the bucket lower bound: <= v, and within
     a 1/16 relative error. *)
  List.iter
    (fun v ->
      let lb = Hist.value_of (Hist.index_of v) in
      if lb > v then Alcotest.failf "lower bound %d above sample %d" lb v;
      if (v - lb) * 16 > v then
        Alcotest.failf "bucket too wide at %d: lower bound %d" v lb)
    [ 16; 17; 31; 32; 33; 63; 64; 255; 256; 1000; 65535; 65536; 1_000_000 ];
  (* index_of is monotone across the boundaries where buckets change. *)
  let idxs = List.map Hist.index_of [ 15; 16; 31; 32; 64; 128; 1024 ] in
  let rec nondec = function
    | a :: b :: rest -> a <= b && nondec (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (nondec idxs);
  Alcotest.(check bool) "strict at 15->16" true
    (Hist.index_of 15 < Hist.index_of 16)

(* --- absorb ----------------------------------------------------------- *)

let fill seed n =
  let h = Hist.create () in
  let r = Dgr_util.Rng.create seed in
  for _ = 1 to n do
    Hist.add h (Dgr_util.Rng.int r 10_000)
  done;
  h

let test_absorb_associativity () =
  (* ((a + b) + c) and (a + (b + c)) must be byte-identical, and absorb
     must clear its source. *)
  let json_of_merge order =
    let a = fill 1 100 and b = fill 2 200 and c = fill 3 300 in
    (match order with
    | `Left ->
      Hist.absorb ~into:a b;
      Hist.absorb ~into:a c;
      Hist.to_json a
    | `Right ->
      Hist.absorb ~into:b c;
      Hist.absorb ~into:a b;
      Hist.to_json a)
  in
  Alcotest.(check string) "associative" (json_of_merge `Left) (json_of_merge `Right);
  let a = fill 1 100 and b = fill 2 200 in
  let na = Hist.count a and nb = Hist.count b in
  Hist.absorb ~into:a b;
  Alcotest.(check int) "counts sum" (na + nb) (Hist.count a);
  Alcotest.(check int) "source cleared" 0 (Hist.count b)

(* --- dgr report determinism ------------------------------------------ *)

let test_report_deterministic () =
  let render () =
    let e = Dgr_harness.Bench.run_for_report ~domains:1 "fib-12-concurrent" in
    let s = Dgr_harness.Report.render ~deterministic:true e in
    Dgr_sim.Engine.dispose e;
    s
  in
  let s1 = render () and s2 = render () in
  Alcotest.(check string) "report bytes" s1 s2;
  (* the deterministic report never includes the wall-clock section *)
  Alcotest.(check bool) "no wall-clock section" false
    (let needle = "step phases" in
     let nl = String.length needle and hl = String.length s1 in
     let rec go i =
       i + nl <= hl && (String.sub s1 i nl = needle || go (i + 1))
     in
     go 0)

let suite =
  [
    Alcotest.test_case "small-sample percentiles are exact" `Quick
      test_small_sample_percentiles;
    Alcotest.test_case "empty, clear and negative clamp" `Quick test_empty_and_clear;
    Alcotest.test_case "bucket boundaries map and invert" `Quick
      test_bucket_boundaries;
    Alcotest.test_case "absorb is associative and clears its source" `Quick
      test_absorb_associativity;
    Alcotest.test_case "deterministic report is byte-stable" `Quick
      test_report_deterministic;
  ]
