(* The observability layer: ring-buffer recorder, samplers, exporters,
   and the engine's trace determinism guarantee. *)
open Dgr_obs
open Dgr_sim

let exec pe vid = Event.Execute { kind = Event.Mark; pe; vid; lin = -1 }

(* --- recorder ------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Recorder.create ~capacity:4 ~num_pes:1 () in
  for i = 0 to 9 do
    Recorder.set_now r i;
    Recorder.emit r (exec 0 i)
  done;
  Alcotest.(check int) "length" 4 (Recorder.length r);
  Alcotest.(check int) "emitted" 10 (Recorder.emitted r);
  Alcotest.(check int) "dropped" 6 (Recorder.dropped r);
  (* The survivors are the newest four, oldest first, seq preserved. *)
  let evs = Recorder.events r in
  Alcotest.(check (list int)) "seqs" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Event.t) -> e.Event.seq) evs);
  Alcotest.(check (list int)) "steps" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Event.t) -> e.Event.step) evs)

let test_event_ordering () =
  let r = Recorder.create ~num_pes:2 () in
  Recorder.set_now r 5;
  Recorder.emit r (Event.Phase { phase = Event.Mark_root; cycle = 0; wave = 1 });
  Recorder.emit r (exec 0 1);
  Recorder.set_now r 6;
  Recorder.emit r (exec 1 2);
  let evs = Recorder.events r in
  Alcotest.(check (list int)) "seq monotonic" [ 0; 1; 2 ]
    (List.map (fun (e : Event.t) -> e.Event.seq) evs);
  Alcotest.(check (list int)) "stamped with now" [ 5; 5; 6 ]
    (List.map (fun (e : Event.t) -> e.Event.step) evs);
  Alcotest.(check int) "nothing dropped" 0 (Recorder.dropped r)

let test_sampler () =
  let r = Recorder.create ~sample_every:2 ~num_pes:2 () in
  for step = 0 to 5 do
    Recorder.set_now r step;
    (* one marking execution on PE 0 per step, reduction on PE 1 at step 3 *)
    Recorder.emit r (exec 0 step);
    if step = 3 then
      Recorder.emit r (Event.Execute { kind = Event.Request; pe = 1; vid = 9; lin = -1 });
    Recorder.tick r ~live:(100 + step) ~in_flight:step ~headroom:(-1)
      ~pool_depth:[| step; 2 * step |]
  done;
  let samples = Recorder.samples r in
  Alcotest.(check (list int)) "sampled on the period" [ 0; 2; 4 ]
    (List.map (fun (s : Recorder.sample) -> s.Recorder.s_step) samples);
  let s4 = List.nth samples 2 in
  Alcotest.(check int) "live" 104 s4.Recorder.s_live;
  Alcotest.(check (list int)) "pool depth" [ 4; 8 ]
    (Array.to_list s4.Recorder.s_pool_depth);
  (* steps 3 and 4 elapsed since the sample at step 2 *)
  Alcotest.(check (list int)) "marking delta" [ 2; 0 ]
    (Array.to_list s4.Recorder.s_marking);
  Alcotest.(check (list int)) "reduction delta resets" [ 0; 1 ]
    (Array.to_list s4.Recorder.s_reduction)

(* --- exporters ------------------------------------------------------ *)

let small_recorder () =
  let r = Recorder.create ~sample_every:1 ~num_pes:2 () in
  Recorder.set_now r 0;
  Recorder.emit r (Event.Phase { phase = Event.Mark_root; cycle = 0; wave = 1 });
  Recorder.emit r
    (Event.Send
       { kind = Event.Request; pe = 1; vid = 3; arrival = 4; remote = true; lin = 3 });
  Recorder.tick r ~live:2 ~in_flight:1 ~headroom:(-1) ~pool_depth:[| 1; 0 |];
  Recorder.set_now r 4;
  Recorder.emit r (Event.Deliver { kind = Event.Request; pe = 1; vid = 3; lin = 3 });
  Recorder.emit r (Event.Execute { kind = Event.Request; pe = 1; vid = 3; lin = 3 });
  Recorder.emit r (Event.Phase { phase = Event.Idle; cycle = 0; wave = 1 });
  Recorder.emit r Event.Finished;
  Recorder.tick r ~live:2 ~in_flight:0 ~headroom:(-1) ~pool_depth:[| 0; 0 |];
  r

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains what needle hay =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: expected to find %S" what needle

let test_chrome_trace_shape () =
  let s = Export.chrome_trace (small_recorder ()) in
  check_contains "header" "{\"traceEvents\":[" s;
  (* per-PE tracks + the marking plane track *)
  check_contains "pe track" "\"name\":\"PE 0\"" s;
  check_contains "marking track" "\"name\":\"marking\"" s;
  (* the phase pair becomes one complete span of duration 4 *)
  check_contains "phase span" "\"name\":\"M_R\",\"ph\":\"X\",\"pid\":0,\"tid\":2,\"ts\":0,\"dur\":4" s;
  check_contains "send instant" "\"name\":\"send:request\"" s;
  check_contains "counter" "\"name\":\"pool_depth\",\"ph\":\"C\"" s;
  Alcotest.(check string) "closed" "]}\n" (String.sub s (String.length s - 3) 3)

let test_timeseries_csv_shape () =
  let s = Export.timeseries_csv (small_recorder ()) in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "header + 2 samples x 2 PEs" 5 (List.length lines);
  Alcotest.(check string) "header"
    "step,pe,pool_depth,marking,reduction,live,in_flight,headroom,drops,dups,retransmits,stalls,frames,batched_tasks,acks_piggybacked,coalesced"
    (List.hd lines);
  Alcotest.(check string) "row" "4,1,0,0,1,2,0,-1,0,0,0,0,0,0,0,0" (List.nth lines 4)

(* --- end-to-end determinism ---------------------------------------- *)

let traced_run ?(seed = 11) () =
  let config =
    Engine.Config.make ~num_pes:4 ~heap_size:(Some 9_000) ~jitter:0.3 ~seed
      ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 20 })
      ()
  in
  let g, templates =
    Dgr_lang.Compile.load_string
      ~num_pes:(Engine.Config.num_pes config)
      (Dgr_lang.Prelude.fib 9)
  in
  let r =
    Recorder.create ~sample_every:10 ~num_pes:(Engine.Config.num_pes config) ()
  in
  let e = Engine.create ~recorder:r ~config g templates in
  Engine.inject_root_demand e;
  let (_ : int) = Engine.run ~max_steps:100_000 e in
  Alcotest.(check bool) "completed" true (Engine.finished e);
  (e, r)

let test_same_seed_same_trace () =
  let _, r1 = traced_run () in
  let _, r2 = traced_run () in
  Alcotest.(check string) "chrome trace bytes"
    (Export.chrome_trace r1) (Export.chrome_trace r2);
  Alcotest.(check string) "timeseries bytes"
    (Export.timeseries_csv r1) (Export.timeseries_csv r2);
  Alcotest.(check string) "timeseries json bytes"
    (Export.timeseries_json r1) (Export.timeseries_json r2)

let test_trace_covers_machine () =
  let e, r = traced_run () in
  let evs = Recorder.events r in
  let has p = List.exists (fun (ev : Event.t) -> p ev.Event.kind) evs in
  Alcotest.(check bool) "sends" true
    (has (function Event.Send _ -> true | _ -> false));
  Alcotest.(check bool) "delivers" true
    (has (function Event.Deliver _ -> true | _ -> false));
  Alcotest.(check bool) "executes" true
    (has (function Event.Execute _ -> true | _ -> false));
  Alcotest.(check bool) "phases" true
    (has (function Event.Phase _ -> true | _ -> false));
  Alcotest.(check bool) "finished" true
    (has (function Event.Finished -> true | _ -> false));
  (* event steps never exceed the clock, and seq is strictly increasing *)
  let rec monotonic = function
    | (a : Event.t) :: (b : Event.t) :: rest ->
      a.Event.seq < b.Event.seq && a.Event.step <= b.Event.step && monotonic (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "ordered" true (monotonic evs);
  List.iter
    (fun (ev : Event.t) ->
      if ev.Event.step > Engine.now e then
        Alcotest.failf "event stamped past the clock: %a" Event.pp ev)
    evs

let test_metrics_json () =
  let e, _ = traced_run () in
  let s = Metrics.to_json (Engine.metrics e) in
  check_contains "object"
    (Printf.sprintf "{\"schema_version\":%d,\"steps\":" Metrics.schema_version)
    s;
  check_contains "pauses stats" "\"pauses\":{\"count\":" s;
  check_contains "completion" "\"completion_step\":" s;
  let e2, _ = traced_run () in
  Alcotest.(check string) "byte-deterministic" s (Metrics.to_json (Engine.metrics e2))

let test_network_entries_sorted () =
  (* The heap's internal layout depends on insertion order (jittered
     arrivals insert out of order); the external view must still be
     (arrival, send-order)-sorted. *)
  let net = Network.create () in
  let g = Dgr_graph.Graph.create ~num_pes:2 () in
  let root = Dgr_graph.Builder.add_root g Dgr_graph.Label.Ind [] in
  let task =
    Dgr_task.Task.Reduction
      (Dgr_task.Task.Request { src = Some root; dst = root; demand = Dgr_graph.Demand.Vital; key = 0 })
  in
  let rng = Dgr_util.Rng.create 5 in
  for _ = 1 to 40 do
    Network.send net ~arrival:(Dgr_util.Rng.int rng 25) ~pe:0 task
  done;
  let arrivals = List.map fst (Network.entries net) in
  let rec sorted = function
    | a :: b :: rest -> a <= b && sorted (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "entries sorted by arrival" true (sorted arrivals);
  Alcotest.(check int) "all present" 40 (List.length arrivals)

let suite =
  [
    Alcotest.test_case "ring wraparound keeps the newest events" `Quick test_ring_wraparound;
    Alcotest.test_case "events are ordered and clock-stamped" `Quick test_event_ordering;
    Alcotest.test_case "sampler fires on the period and resets deltas" `Quick test_sampler;
    Alcotest.test_case "chrome trace has tracks, spans and counters" `Quick
      test_chrome_trace_shape;
    Alcotest.test_case "timeseries CSV is long-form per (sample, PE)" `Quick
      test_timeseries_csv_shape;
    Alcotest.test_case "same seed, same trace bytes" `Quick test_same_seed_same_trace;
    Alcotest.test_case "a traced run covers every event family" `Quick
      test_trace_covers_machine;
    Alcotest.test_case "metrics JSON is deterministic" `Quick test_metrics_json;
    Alcotest.test_case "network entries sorted under jitter" `Quick
      test_network_entries_sorted;
  ]
