(* Task model: routing, endpoints, plane selection, constructors. *)
open Dgr_graph
open Dgr_task
open Task

let test_exec_vertex () =
  Alcotest.(check (option int)) "request executes at dst" (Some 3)
    (exec_vertex (request ~src:1 3 Demand.Vital));
  Alcotest.(check (option int)) "respond executes at requester" (Some 1)
    (exec_vertex (respond ~src:3 ~key:3 (Some 1) (Label.V_int 7)));
  Alcotest.(check (option int)) "final respond goes to the controller" None
    (exec_vertex (respond ~src:3 ~key:3 None (Label.V_int 7)));
  Alcotest.(check (option int)) "cancel executes at dst" (Some 9)
    (exec_vertex (Reduction (Cancel { src = 2; dst = 9 })));
  Alcotest.(check (option int)) "mark executes at v" (Some 4)
    (exec_vertex (Marking (Mark1 { v = 4; par = Plane.Rootpar; ep = 0 })));
  Alcotest.(check (option int)) "return executes at the credited parent" (Some 6)
    (exec_vertex (Marking (Return { plane = Plane.MR; par = Plane.Parent 6; ep = 0 })));
  Alcotest.(check (option int)) "rootpar return goes to the controller" None
    (exec_vertex (Marking (Return { plane = Plane.MT; par = Plane.Rootpar; ep = 0 })))

let test_endpoints () =
  let sorted = List.sort compare in
  Alcotest.(check (list int)) "request endpoints" [ 1; 3 ]
    (sorted (reduction_endpoints (Request { src = Some 1; dst = 3; demand = Demand.Vital; key = 3 })));
  Alcotest.(check (list int)) "initial task endpoint" [ 3 ]
    (reduction_endpoints (Request { src = None; dst = 3; demand = Demand.Vital; key = 3 }));
  Alcotest.(check (list int)) "respond endpoints" [ 1; 3 ]
    (sorted
       (reduction_endpoints
          (Respond { src = 3; dst = Some 1; value = Label.V_nil; key = 3; demand = Demand.Vital })));
  Alcotest.(check (list int)) "final respond endpoint" [ 3 ]
    (reduction_endpoints
       (Respond { src = 3; dst = None; value = Label.V_nil; key = 3; demand = Demand.Vital }));
  Alcotest.(check (list int)) "cancel endpoints" [ 2; 9 ]
    (sorted (reduction_endpoints (Cancel { src = 2; dst = 9 })))

let test_planes () =
  Alcotest.(check bool) "mark1 -> MR" true
    (plane_of_mark (Mark1 { v = 0; par = Plane.Rootpar; ep = 0 }) = Plane.MR);
  Alcotest.(check bool) "mark2 -> MR" true
    (plane_of_mark (Mark2 { v = 0; par = Plane.Rootpar; prior = 3; ep = 0 }) = Plane.MR);
  Alcotest.(check bool) "mark3 -> MT" true
    (plane_of_mark (Mark3 { v = 0; par = Plane.Rootpar; ep = 0 }) = Plane.MT);
  Alcotest.(check bool) "return carries its plane" true
    (plane_of_mark (Return { plane = Plane.MT; par = Plane.Rootpar; ep = 0 }) = Plane.MT)

let test_predicates_and_pp () =
  let req = request 5 Demand.Eager in
  Alcotest.(check bool) "is_reduction" true (is_reduction req);
  Alcotest.(check bool) "not marking" false (is_marking req);
  Alcotest.(check string) "request pp" "request<-,v5>?[key=v5]" (to_string req);
  Alcotest.(check string) "respond pp" "respond<v5,v2>!=7[key=v5]"
    (to_string (respond ~src:5 ~key:5 (Some 2) (Label.V_int 7)));
  Alcotest.(check string) "mark2 pp" "mark2<v1 par=rootpar prio=3 w2>"
    (to_string (Marking (Mark2 { v = 1; par = Plane.Rootpar; prior = 3; ep = 2 })))

let test_request_default_key () =
  match request ~src:9 7 Demand.Vital with
  | Reduction (Request { key; src; _ }) ->
    Alcotest.(check int) "key defaults to dst" 7 key;
    Alcotest.(check (option int)) "src" (Some 9) src
  | _ -> Alcotest.fail "expected a request"

let suite =
  [
    Alcotest.test_case "exec_vertex routing" `Quick test_exec_vertex;
    Alcotest.test_case "reduction endpoints" `Quick test_endpoints;
    Alcotest.test_case "mark planes" `Quick test_planes;
    Alcotest.test_case "predicates and printing" `Quick test_predicates_and_pp;
    Alcotest.test_case "request default key" `Quick test_request_default_key;
  ]
