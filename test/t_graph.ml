(* Graph substrate: vertices, edge-set bookkeeping, allocation/free list,
   capacity, builders, snapshots, structural validation, DOT export. *)
open Dgr_graph
open Dgr_util

let test_vertex_connect_disconnect () =
  let v = Vertex.create 0 ~pe:0 (Label.Prim Label.Add) in
  Vertex.connect v 1;
  Vertex.connect v 2;
  Vertex.connect v 1;
  Alcotest.(check (list int)) "multiset args" [ 1; 2; 1 ] (Vertex.args v);
  Vertex.disconnect v 1;
  Alcotest.(check (list int)) "one occurrence removed" [ 2; 1 ] (Vertex.args v);
  Vertex.disconnect v 99;
  Alcotest.(check (list int)) "absent disconnect is a no-op" [ 2; 1 ] (Vertex.args v)

(* Bulk appends: [connect] must keep argument order stable however many
   edges pile up (the arg list is stored reversed internally, so this is
   the test that pins the normalization). *)
let test_vertex_bulk_connect_order () =
  let v = Vertex.create 0 ~pe:0 (Label.Prim Label.Add) in
  let expected = List.init 1000 (fun i -> i + 1) in
  List.iter (Vertex.connect v) expected;
  Alcotest.(check (list int)) "1000 appends in order" expected (Vertex.args v);
  Vertex.disconnect v 500;
  Alcotest.(check (list int)) "interior removal keeps order"
    (List.filter (fun i -> i <> 500) expected)
    (Vertex.args v)

let test_vertex_request_tracking () =
  let v = Vertex.create 0 ~pe:0 Label.If in
  Vertex.connect v 1;
  Vertex.connect v 2;
  Vertex.request_arg v 1 Demand.Eager;
  Alcotest.(check int) "eager request-type" 2 (Vertex.request_type v 1);
  Vertex.request_arg v 1 Demand.Vital;
  Alcotest.(check int) "upgraded to vital" 3 (Vertex.request_type v 1);
  Vertex.request_arg v 1 Demand.Eager;
  Alcotest.(check int) "never downgrades" 3 (Vertex.request_type v 1);
  Alcotest.(check int) "unrequested is reserve" 1 (Vertex.request_type v 2);
  Alcotest.(check (list int)) "unrequested args" [ 2 ] (Vertex.unrequested_args v);
  Vertex.drop_request v 1;
  Alcotest.(check int) "dereferenced back to reserve" 1 (Vertex.request_type v 1)

let test_vertex_disconnect_cleans_requests () =
  let v = Vertex.create 0 ~pe:0 Label.If in
  Vertex.connect v 1;
  Vertex.connect v 1;
  Vertex.request_arg v 1 Demand.Vital;
  Vertex.disconnect v 1;
  (* one occurrence remains: the request record must survive *)
  Alcotest.(check int) "still vital while an occurrence remains" 3 (Vertex.request_type v 1);
  Vertex.disconnect v 1;
  Alcotest.(check int) "request dropped with last occurrence" 1 (Vertex.request_type v 1)

let test_vertex_requesters () =
  let v = Vertex.create 5 ~pe:0 Label.Bottom in
  Vertex.add_requester v (Some 1) ~demand:Demand.Eager ~key:5;
  Vertex.add_requester v (Some 1) ~demand:Demand.Eager ~key:5;
  Alcotest.(check int) "deduplicated" 1 (List.length (Vertex.requested v));
  Vertex.add_requester v (Some 1) ~demand:Demand.Vital ~key:5;
  (match (Vertex.requested v) with
  | [ e ] -> Alcotest.(check bool) "upgraded" true (Demand.equal e.Vertex.demand Demand.Vital)
  | _ -> Alcotest.fail "expected a single entry");
  Vertex.add_requester v (Some 1) ~demand:Demand.Eager ~key:7;
  Alcotest.(check int) "same requester, second key" 2 (List.length (Vertex.requested v));
  Alcotest.(check bool) "has_request_entry" true (Vertex.has_request_entry v (Some 1) 7);
  Alcotest.(check bool) "missing entry" false (Vertex.has_request_entry v (Some 2) 7);
  Vertex.add_requester v None ~demand:Demand.Vital ~key:5;
  Alcotest.(check bool) "external requester" true (Vertex.has_requester v None);
  Vertex.remove_requester v (Some 1);
  Alcotest.(check int) "all entries of requester removed" 1 (List.length (Vertex.requested v))

let test_vertex_recv () =
  let v = Vertex.create 0 ~pe:0 (Label.Prim Label.Add) in
  Vertex.record_value v ~from:3 (Label.V_int 7);
  Vertex.record_value v ~from:3 (Label.V_int 9);
  Alcotest.(check bool) "first value wins (dedup)" true
    (Vertex.value_from v 3 = Some (Label.V_int 7));
  Alcotest.(check bool) "absent child" true (Vertex.value_from v 4 = None);
  Vertex.clear_reduction_state v;
  Alcotest.(check bool) "cleared" true (Vertex.value_from v 3 = None)

let test_graph_alloc_release_reuse () =
  let g = Graph.create ~num_pes:3 () in
  let a = Graph.alloc g (Label.Int 1) in
  let b = Graph.alloc g (Label.Int 2) in
  Alcotest.(check int) "round-robin pe 0" 0 (Vertex.pe a);
  Alcotest.(check int) "round-robin pe 1" 1 (Vertex.pe b);
  Graph.release g (Vertex.id a);
  Alcotest.(check int) "free count" 1 (Graph.free_count g);
  Alcotest.(check bool) "flagged free" true (Vertex.free (Graph.vertex g (Vertex.id a)));
  let c = Graph.alloc g (Label.Int 3) in
  Alcotest.(check int) "slot reused" (Vertex.id a) (Vertex.id c);
  Alcotest.(check bool) "live again" false (Vertex.free c);
  Alcotest.check_raises "double release"
    (Invalid_argument (Printf.sprintf "Graph.release: v%d already free" (Vertex.id b)))
    (fun () ->
      Graph.release g (Vertex.id b);
      Graph.release g (Vertex.id b))

let test_graph_capacity () =
  let g = Graph.create () in
  let a = Graph.alloc g (Label.Int 1) in
  Graph.set_capacity g (Some 2);
  let _b = Graph.alloc g (Label.Int 2) in
  Alcotest.(check int) "headroom exhausted" 0 (Graph.headroom g);
  Alcotest.check_raises "out of vertices" Graph.Out_of_vertices (fun () ->
      ignore (Graph.alloc g (Label.Int 3)));
  Graph.release g (Vertex.id a);
  Alcotest.(check int) "headroom via free list" 1 (Graph.headroom g);
  let c = Graph.alloc g (Label.Int 3) in
  Alcotest.(check int) "alloc from free list under cap" (Vertex.id a) (Vertex.id c);
  Alcotest.check_raises "cannot shrink below table"
    (Invalid_argument "Graph.set_capacity: below current table size") (fun () ->
      Graph.set_capacity g (Some 1))

let test_graph_preallocate () =
  let g = Graph.create () in
  Graph.preallocate g 5;
  Alcotest.(check int) "free pool" 5 (Graph.free_count g);
  Alcotest.(check int) "no live" 0 (Graph.live_count g);
  let v = Graph.alloc g Label.Nil in
  Alcotest.(check bool) "drawn from pool" true ((Vertex.id v) < 5);
  Alcotest.(check int) "pool shrank" 4 (Graph.free_count g)

let test_graph_root () =
  let g = Graph.create () in
  Alcotest.(check bool) "no root" false (Graph.has_root g);
  Alcotest.check_raises "root unset" (Invalid_argument "Graph.root: no root set") (fun () ->
      ignore (Graph.root g));
  let r = Builder.add_root g (Label.Int 1) [] in
  Alcotest.(check int) "root set" r (Graph.root g)

let test_builder_structures () =
  let g = Graph.create () in
  let head = Builder.chain g 5 in
  Alcotest.(check int) "chain size" 5 (Graph.live_count g);
  let rec depth v n = match Graph.children g v with [ c ] -> depth c (n + 1) | _ -> n in
  Alcotest.(check int) "chain depth" 4 (depth head 0);
  let lst = Builder.int_list g [ 1; 2; 3 ] in
  Alcotest.(check bool) "cons head" true ((Vertex.label (Graph.vertex g lst)) = Label.Cons);
  let ring = Builder.cycle g 4 in
  let rec follow v n = if n = 0 then v else follow (List.hd (Graph.children g v)) (n - 1) in
  Alcotest.(check int) "ring closes" ring (follow ring 4)

let test_builder_random_valid () =
  let rng = Rng.create 11 in
  for seed = 0 to 9 do
    let spec =
      {
        Builder.live = 20 + Rng.int rng 60;
        garbage = Rng.int rng 30;
        free_pool = Rng.int rng 8;
        avg_degree = 1.0 +. Rng.float rng 2.0;
        cycle_bias = Rng.float rng 0.5;
      }
    in
    let g = Builder.random (Rng.create seed) spec in
    Alcotest.(check (list string)) "random graph valid" [] (Validate.check g);
    let g2 = Builder.random_with_requests (Rng.create seed) spec in
    Alcotest.(check (list string)) "random request graph valid" [] (Validate.check g2)
  done

let test_validate_detects_corruption () =
  let g = Graph.create () in
  let a = Builder.add_root g Label.If [] in
  let b = Builder.add g (Label.Int 1) [] in
  Vertex.connect (Graph.vertex g a) b;
  Graph.release g b;
  (* live -> free edge *)
  Alcotest.(check bool) "corruption reported" true (Validate.check g <> []);
  Alcotest.check_raises "check_exn raises"
    (Failure
       (Printf.sprintf "Validate.check failed:\nv%d: live vertex points to free vertex v%d" a b))
    (fun () -> Validate.check_exn g)

let test_validate_req_subset () =
  let g = Graph.create () in
  let a = Builder.add_root g Label.If [] in
  Vertex.request_arg (Graph.vertex g a) 0 Demand.Vital;
  (* req_v not a subset of args: request_arg records the demand without
     checking args membership *)
  Vertex.request_arg (Graph.vertex g a) 42 Demand.Vital;
  Alcotest.(check bool) "req_v ⊄ args reported" true (Validate.check g <> [])

let test_snapshot_immutable () =
  let g = Graph.create () in
  let a = Builder.add_root g Label.If [] in
  let b = Builder.add g (Label.Int 1) [] in
  Vertex.connect (Graph.vertex g a) b;
  let snap = Snapshot.take g in
  Vertex.disconnect (Graph.vertex g a) b;
  Alcotest.(check (list int)) "snapshot keeps the old edge" [ b ]
    (Snapshot.vertex snap a).Snapshot.args;
  Alcotest.(check int) "size" 2 (Snapshot.size snap);
  Alcotest.(check int) "live" 2 (List.length (Snapshot.live snap))

let test_plane_lifecycle () =
  let p = Plane.create () in
  Alcotest.(check bool) "starts unmarked" true (Plane.unmarked p);
  Plane.touch p;
  Alcotest.(check bool) "transient" true (Plane.transient p);
  Plane.mark p;
  Alcotest.(check bool) "marked" true (Plane.marked p);
  Plane.set_prior p @@ 3;
  Plane.unmark p;
  Alcotest.(check bool) "unmark clears priority" true (Plane.unmarked p && (Plane.prior p) = 0);
  Plane.touch p;
  Plane.set_cnt p @@ 5;
  Plane.reset p;
  Alcotest.(check bool) "reset" true (Plane.unmarked p && (Plane.cnt p) = 0)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let test_dot_export () =
  let g = Graph.create () in
  let b = Builder.add g (Label.Int 1) [] in
  let a = Builder.add_root g Label.If [ b ] in
  Vertex.request_arg (Graph.vertex g a) b Demand.Vital;
  let dot = Dot.to_string g in
  Alcotest.(check bool) "digraph header" true (contains ~needle:"digraph " dot);
  Alcotest.(check bool) "has vital annotation" true (contains ~needle:"*v" dot);
  Alcotest.(check bool) "root doublecircle" true (contains ~needle:"doublecircle" dot)

let suite =
  [
    Alcotest.test_case "vertex connect/disconnect" `Quick test_vertex_connect_disconnect;
    Alcotest.test_case "bulk connect preserves order" `Quick
      test_vertex_bulk_connect_order;
    Alcotest.test_case "vertex request tracking" `Quick test_vertex_request_tracking;
    Alcotest.test_case "disconnect cleans requests" `Quick test_vertex_disconnect_cleans_requests;
    Alcotest.test_case "requester entries" `Quick test_vertex_requesters;
    Alcotest.test_case "received values" `Quick test_vertex_recv;
    Alcotest.test_case "alloc / release / slot reuse" `Quick test_graph_alloc_release_reuse;
    Alcotest.test_case "capacity and headroom" `Quick test_graph_capacity;
    Alcotest.test_case "preallocate" `Quick test_graph_preallocate;
    Alcotest.test_case "root management" `Quick test_graph_root;
    Alcotest.test_case "builder structures" `Quick test_builder_structures;
    Alcotest.test_case "random builders are valid" `Quick test_builder_random_valid;
    Alcotest.test_case "validate detects corruption" `Quick test_validate_detects_corruption;
    Alcotest.test_case "validate req subset" `Quick test_validate_req_subset;
    Alcotest.test_case "snapshots are immutable" `Quick test_snapshot_immutable;
    Alcotest.test_case "plane lifecycle" `Quick test_plane_lifecycle;
    Alcotest.test_case "dot export" `Quick test_dot_export;
  ]
