(* The paper's correctness theorems (§5.4) under adversarial concurrency:
   marking runs to completion while a mutation adversary (restricted to
   the reduction axioms) edits the graph between every task execution. *)
open Dgr_graph
open Dgr_core
open Dgr_util

let qtest = QCheck_alcotest.to_alcotest

(* An axiom-respecting adversary. Witness-based add-reference can never
   resurrect garbage (the new target was already reachable from the
   source); deletion only shrinks R; expand-node takes vertices from F.

   With [monotone_requests] set (Theorem 2), the adversary is restricted
   to mutations under which the paper's reduction axioms 2/5/6 hold
   literally: task-reachability must never grow except from F, and
   vitally-requested paths must persist. That leaves expand-node and
   demand upgrades (recording req-args only {e removes} edges from M_T's
   traced relation); adding plain references or fabricating [requested]
   entries could conjure task-reachability the real reduction process
   would have had to earn with an actual task. *)
let adversary ?(monotone_requests = false) rng mut g prob _step =
  if Rng.int rng prob = 0 then begin
    let live = Graph.live_vids g in
    if live <> [] then begin
      let pick () = Rng.choose_list rng live in
      match Rng.int rng 4 with
      | 0 when not monotone_requests -> (
        let a = pick () in
        match Graph.children g a with
        | [] -> ()
        | bs -> (
          let b = Rng.choose_list rng bs in
          match Graph.children g b with
          | [] -> ()
          | cs -> Mutator.add_reference mut ~a ~b ~c:(Rng.choose_list rng cs)))
      | 1 when not monotone_requests -> (
        let a = pick () in
        match Graph.children g a with
        | [] -> ()
        | bs -> Mutator.delete_reference mut ~a ~b:(Rng.choose_list rng bs))
      | 2 ->
        (* Expansion mirrors the real reducer: only Apply-like vertices
           with {e no} requested args are expanded (the reduction process
           never splices below a vertex that already vitally requested a
           child — doing so would break axiom 5's "the req-args_v chain
           remains intact"). *)
        let a = pick () in
        let va = Graph.vertex g a in
        if Graph.headroom g > 3 && Vertex.req_args va = [] then begin
          let inner = Graph.alloc g Label.Ind in
          List.iter
            (fun old -> Mutator.connect_fresh mut ~parent:(Vertex.id inner) ~child:old)
            (Graph.children g a);
          Mutator.expand_node mut ~a ~entry:(Vertex.id inner)
        end
      | 3 -> (
        (* demand an existing child: a pure upgrade *)
        let a = pick () in
        match Graph.children g a with
        | [] -> ()
        | bs ->
          let b = Rng.choose_list rng bs in
          let d = if Rng.bool rng then Demand.Vital else Demand.Eager in
          Mutator.request_child mut ~v:a ~c:b ~demand:d;
          if not monotone_requests then
            Mutator.record_request mut ~at:b ~requester:(Some a) ~demand:d ~key:b)
      | _ -> ()
    end
  end

let spec_gen =
  QCheck.Gen.(
    map3
      (fun live garbage seed ->
        ( { Builder.live = 10 + live; garbage = 5 + garbage; free_pool = 40;
            avg_degree = 1.2 +. (float_of_int (seed land 7) /. 4.0);
            cycle_bias = float_of_int (seed land 3) /. 4.0 },
          seed ))
      (int_bound 60) (int_bound 30) (int_bound 100_000))

let arb_spec = QCheck.make spec_gen

(* Theorem 1: GAR(t_b) ⊆ GAR'(t) ⊆ GAR(t).
   All garbage existing when M_R starts is identified, and nothing
   identified is live. *)
let prop_theorem_1 =
  QCheck.Test.make ~name:"Theorem 1: GAR(t_b) ⊆ GAR' ⊆ GAR(t_c) under mutation" ~count:50
    arb_spec
    (fun (spec, seed) ->
      let rng = Rng.create (seed + 17) in
      let g = Builder.random (Rng.create seed) spec in
      let gar_tb =
        let snap = Snapshot.take g in
        let r = Dgr_analysis.Reach.reachable_from snap [ Graph.root g ] in
        Graph.fold_live
          (fun acc v -> if Vid.Set.mem (Vertex.id v) r then acc else Vid.Set.add (Vertex.id v) acc)
          Vid.Set.empty g
      in
      let engine = Sync_engine.create ~order:(Sync_engine.Random (Rng.split rng)) g in
      let run = Sync_engine.start engine Run.Priority ~seeds:[ Graph.root g ] in
      let mut = Sync_engine.mutator engine in
      let (_ : int) =
        Sync_engine.drain ~interleave:(adversary rng mut g 3) engine
      in
      if not run.Run.finished then false
      else begin
        let gar' =
          Graph.fold_live
            (fun acc v ->
              if Plane.unmarked (Vertex.mr v) then Vid.Set.add (Vertex.id v) acc else acc)
            Vid.Set.empty g
        in
        let gar_tc =
          let snap = Snapshot.take g in
          let r = Dgr_analysis.Reach.reachable_from snap [ Graph.root g ] in
          Graph.fold_live
            (fun acc v ->
              if Vid.Set.mem (Vertex.id v) r then acc else Vid.Set.add (Vertex.id v) acc)
            Vid.Set.empty g
        in
        (* gar_tb restricted to vertices still live (expand-node never
           touches them, so they all remain) *)
        Vid.Set.subset gar_tb gar' && Vid.Set.subset gar' gar_tc
      end)

(* Theorem 2: DL_v(t_a) ⊆ DL' ⊆ DL_v(t_c), with M_T before M_R and a
   monotone adversary (requests are never dereferenced — axioms 5/6). *)
let prop_theorem_2 =
  QCheck.Test.make ~name:"Theorem 2: DL_v(t_a) ⊆ DL' ⊆ DL_v(t_c) under mutation" ~count:50
    arb_spec
    (fun (spec, seed) ->
      let rng = Rng.create (seed + 23) in
      let g = Builder.random_with_requests (Rng.create seed) spec in
      (* a modest static task population *)
      let tasks =
        Graph.fold_live
          (fun acc v ->
            List.fold_left
              (fun acc (e : Vertex.request_entry) ->
                if Rng.int rng 3 = 0 then
                  Dgr_task.Task.Request
                    { src = e.Vertex.who; dst = (Vertex.id v); demand = e.Vertex.demand;
                      key = e.Vertex.key }
                  :: acc
                else acc)
              acc (Vertex.requested v))
          [] g
      in
      let dl_of_snapshot () =
        let sets = Dgr_analysis.Classify.compute (Snapshot.take g) ~tasks in
        sets.Dgr_analysis.Classify.deadlocked
      in
      let dl_ta = dl_of_snapshot () in
      let engine = Sync_engine.create ~order:(Sync_engine.Random (Rng.split rng)) g in
      let mut = Sync_engine.mutator engine in
      (* M_T first (Theorem 2's required order) *)
      let seeds =
        List.concat_map Dgr_task.Task.reduction_endpoints tasks |> List.sort_uniq compare
      in
      let mt = Sync_engine.start engine Run.Tasks ~seeds in
      let (_ : int) =
        Sync_engine.drain ~interleave:(adversary ~monotone_requests:true rng mut g 4) engine
      in
      (* then M_R *)
      let mr = Sync_engine.start engine Run.Priority ~seeds:[ Graph.root g ] in
      let (_ : int) =
        Sync_engine.drain ~interleave:(adversary ~monotone_requests:true rng mut g 4) engine
      in
      if not (mt.Run.finished && mr.Run.finished) then false
      else begin
        let dl' =
          Graph.fold_live
            (fun acc v ->
              if
                Plane.marked (Vertex.mr v)
                && Plane.prior (Vertex.mr v) = 3
                && not (Plane.marked (Vertex.mt v))
              then Vid.Set.add (Vertex.id v) acc
              else acc)
            Vid.Set.empty g
        in
        let dl_tc = dl_of_snapshot () in
        Vid.Set.subset dl_ta dl' && Vid.Set.subset dl' dl_tc
      end)

(* Lemma 1 / safety: M_R never marks anything that was garbage at t_b. *)
let prop_mr_safety =
  QCheck.Test.make ~name:"Lemma 1: M_R never marks pre-existing garbage" ~count:50 arb_spec
    (fun (spec, seed) ->
      let rng = Rng.create (seed + 31) in
      let g = Builder.random (Rng.create seed) spec in
      let gar_tb =
        let snap = Snapshot.take g in
        let r = Dgr_analysis.Reach.reachable_from snap [ Graph.root g ] in
        Graph.fold_live
          (fun acc v -> if Vid.Set.mem (Vertex.id v) r then acc else Vid.Set.add (Vertex.id v) acc)
          Vid.Set.empty g
      in
      let engine = Sync_engine.create g in
      let run = Sync_engine.start engine Run.Priority ~seeds:[ Graph.root g ] in
      let mut = Sync_engine.mutator engine in
      let (_ : int) = Sync_engine.drain ~interleave:(adversary rng mut g 3) engine in
      run.Run.finished
      && Vid.Set.for_all
           (fun v -> Plane.unmarked (Vertex.mr (Graph.vertex g v)))
           gar_tb)

(* Invariants hold at every interleaving point of a mutated M_R run. *)
let prop_invariants_always_hold =
  QCheck.Test.make ~name:"marking invariants hold at every step" ~count:30 arb_spec
    (fun (spec, seed) ->
      let rng = Rng.create (seed + 41) in
      let g = Builder.random (Rng.create seed) spec in
      let engine = Sync_engine.create ~order:(Sync_engine.Random (Rng.split rng)) g in
      let run = Sync_engine.start engine Run.Priority ~seeds:[ Graph.root g ] in
      let mut = Sync_engine.mutator engine in
      let ok = ref true in
      let interleave step =
        adversary rng mut g 3 step;
        if Invariants.check run ~pending:(Sync_engine.pending engine) <> [] then ok := false
      in
      let (_ : int) = Sync_engine.drain ~interleave engine in
      !ok && run.Run.finished)

(* End-to-end safety on real programs: whatever interleaving the full
   machine produces, a cycle never reclaims a vertex that the oracle
   still sees as reachable. *)
let prop_cycle_never_collects_live =
  QCheck.Test.make ~name:"cycles never collect live vertices (end-to-end)" ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let source =
        match seed mod 3 with
        | 0 -> Dgr_lang.Prelude.fib (7 + (seed mod 4))
        | 1 -> Dgr_lang.Prelude.sum_range (5 + (seed mod 6))
        | _ -> Dgr_lang.Prelude.speculative (10 + (seed mod 20))
      in
      let config =
        Dgr_sim.Engine.Config.make
          ~num_pes:(1 + (seed mod 5))
          ~gc:
            (Dgr_sim.Engine.Concurrent
               { deadlock_every = 2; idle_gap = 1 + (seed mod 9) })
          ()
      in
      let g, templates =
        Dgr_lang.Compile.load_string
          ~num_pes:(Dgr_sim.Engine.Config.num_pes config)
          source
      in
      let e = Dgr_sim.Engine.create ~config g templates in
      Dgr_sim.Engine.inject_root_demand e;
      let (_ : int) = Dgr_sim.Engine.run ~max_steps:300_000 e in
      Dgr_sim.Engine.finished e && Validate.check g = [])

let suite =
  [
    qtest prop_theorem_1;
    qtest prop_theorem_2;
    qtest prop_mr_safety;
    qtest prop_invariants_always_hold;
    qtest prop_cycle_never_collects_live;
  ]
