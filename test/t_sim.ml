(* Simulator plumbing: pools, network, engine behaviour. *)
open Dgr_graph
open Dgr_sim
open Dgr_task

let mk_graph () =
  let g = Graph.create ~num_pes:2 () in
  let b = Builder.add g (Label.Int 1) [] in
  let a = Builder.add_root g Label.If [ b ] in
  (g, a, b)

let test_pool_policy_bands () =
  let g, a, b = mk_graph () in
  let vital = Task.request ~src:a b Demand.Vital in
  let eager = Task.request ~src:a b Demand.Eager in
  let mark = Task.Marking (Task.Mark1 { v = a; par = Plane.Rootpar; ep = 0 }) in
  Alcotest.(check int) "marking always first" 0 (Pool.priority_of Pool.Dynamic g mark);
  Alcotest.(check bool) "flat ignores demand" true
    (Pool.priority_of Pool.Flat g vital = Pool.priority_of Pool.Flat g eager);
  Alcotest.(check bool) "by-demand separates" true
    (Pool.priority_of Pool.By_demand g vital < Pool.priority_of Pool.By_demand g eager);
  Alcotest.(check bool) "dynamic separates" true
    (Pool.priority_of Pool.Dynamic g vital < Pool.priority_of Pool.Dynamic g eager)

let test_pool_dynamic_uses_classification () =
  let g, a, b = mk_graph () in
  let eager = Task.request ~src:a b Demand.Eager in
  let before = Pool.priority_of Pool.Dynamic g eager in
  Vertex.set_sched_prior (Graph.vertex g b) @@ 3;
  let after = Pool.priority_of Pool.Dynamic g eager in
  Alcotest.(check bool) "classification upgrades an eager task" true (after < before);
  Vertex.set_sched_prior (Graph.vertex g b) @@ 1;
  Alcotest.(check bool) "demotion to reserve" true
    (Pool.priority_of Pool.Dynamic g eager > before)

let test_pool_vital_overrides_stale () =
  let g, a, b = mk_graph () in
  Vertex.set_sched_prior (Graph.vertex g b) @@ 1;
  let vital = Task.request ~src:a b Demand.Vital in
  Alcotest.(check int) "vital task ignores a stale reserve verdict" 2
    (Pool.priority_of Pool.Dynamic g vital)

let test_pool_source_inheritance () =
  let g, a, b = mk_graph () in
  Vertex.set_sched_prior (Graph.vertex g a) @@ 2;
  (* eager-region source: a vital-flagged task is still vital (upgrades
     travel by task), but an eager task from an eager source stays eager *)
  let eager = Task.request ~src:a b Demand.Eager in
  Alcotest.(check int) "eager inherits source class" 4 (Pool.priority_of Pool.Dynamic g eager)

let test_pool_fifo_and_separate_queues () =
  let g, a, b = mk_graph () in
  let pool = Pool.create Pool.Flat g in
  let r1 = Task.request ~src:a b Demand.Vital in
  let r2 = Task.request ~src:b a Demand.Vital in
  let m = Task.Marking (Task.Mark1 { v = a; par = Plane.Rootpar; ep = 0 }) in
  Pool.push pool r1;
  Pool.push pool m;
  Pool.push pool r2;
  Alcotest.(check int) "length counts both queues" 3 (Pool.length pool);
  (match Pool.pop_marking pool with
  | Some (Task.Marking _) -> ()
  | _ -> Alcotest.fail "pop_marking should find the mark task");
  Alcotest.(check bool) "pop is FIFO among equals" true (Pool.pop pool = Some r1);
  Alcotest.(check bool) "then r2" true (Pool.pop pool = Some r2);
  Alcotest.(check bool) "empty" true (Pool.is_empty pool)

let test_pool_pop_lends_slot_to_marking () =
  let g, a, _ = mk_graph () in
  let pool = Pool.create Pool.Dynamic g in
  Pool.push pool (Task.Marking (Task.Mark1 { v = a; par = Plane.Rootpar; ep = 0 }));
  match Pool.pop pool with
  | Some (Task.Marking _) -> ()
  | _ -> Alcotest.fail "an idle reduction slot should take marking work"

let test_pool_purge_and_reprioritize () =
  let g, a, b = mk_graph () in
  let pool = Pool.create Pool.Dynamic g in
  Pool.push pool (Task.request ~src:a b Demand.Eager);
  Pool.push pool (Task.request ~src:b a Demand.Eager);
  let n =
    Pool.purge pool (function
      | Task.Reduction (Task.Request { dst; _ }) -> dst = b
      | _ -> false)
  in
  Alcotest.(check int) "purged one" 1 n;
  Vertex.set_sched_prior (Graph.vertex g a) @@ 3;
  Alcotest.(check int) "reprioritize reports changes" 1 (Pool.reprioritize pool)

(* Full pop orderings, policy by policy, over one mixed push set. *)
let test_pool_policy_pop_orders () =
  let g, a, b = mk_graph () in
  (* a sits in the vital region, b was classified reserve last cycle *)
  Vertex.set_sched_prior (Graph.vertex g a) @@ 3;
  Vertex.set_sched_prior (Graph.vertex g b) @@ 1;
  let e_b = Task.request ~src:a b Demand.Eager in
  let v_b = Task.request ~src:a b Demand.Vital in
  let e_a = Task.request ~src:b a Demand.Eager in
  let m = Task.Marking (Task.Mark1 { v = a; par = Plane.Rootpar; ep = 0 }) in
  let pop_all policy =
    let pool = Pool.create policy g in
    List.iter (Pool.push pool) [ e_b; v_b; e_a; m ];
    List.init 4 (fun _ -> Option.get (Pool.pop pool))
  in
  (* Flat: pure FIFO among reduction tasks; the marking task only gets
     the idle slot at the end. *)
  Alcotest.(check bool) "flat is FIFO" true (pop_all Pool.Flat = [ e_b; v_b; e_a; m ]);
  (* By_demand: static demand only — vital first, eager FIFO, verdicts
     ignored. *)
  Alcotest.(check bool) "by-demand orders by static demand" true
    (pop_all Pool.By_demand = [ v_b; e_b; e_a; m ]);
  (* Dynamic: the cycle's verdicts reorder the eager tasks — e_a rides
     its destination's vital class ahead of e_b, which b's reserve
     verdict demotes behind everything. *)
  Alcotest.(check bool) "dynamic applies cycle verdicts" true
    (pop_all Pool.Dynamic = [ v_b; e_a; e_b; m ])

let test_network_ordering () =
  let net = Network.create () in
  let t1 = Task.request 1 Demand.Vital in
  let t2 = Task.request 2 Demand.Vital in
  let t3 = Task.request 3 Demand.Vital in
  Network.send net ~arrival:5 ~pe:0 t1;
  Network.send net ~arrival:3 ~pe:1 t2;
  Network.send net ~arrival:5 ~pe:0 t3;
  Alcotest.(check int) "in flight" 3 (Network.size net);
  Alcotest.(check bool) "nothing before time" true (Network.deliver net ~now:2 = []);
  Alcotest.(check bool) "delivers by arrival then send order" true
    (Network.deliver net ~now:5 = [ (1, t2); (0, t1); (0, t3) ]);
  Alcotest.(check int) "drained" 0 (Network.size net)

let test_network_purge () =
  let net = Network.create () in
  Network.send net ~arrival:1 ~pe:0 (Task.request 7 Demand.Vital);
  Network.send net ~arrival:1 ~pe:0 (Task.request 8 Demand.Vital);
  let n =
    Network.purge net (function
      | Task.Reduction (Task.Request { dst; _ }) -> dst = 7
      | _ -> false)
  in
  Alcotest.(check int) "one purged" 1 n;
  Alcotest.(check int) "one left" 1 (Network.size net)

let test_network_purge_records_destination () =
  (* The purge trace must name the PE each expunged task was bound for
     (not a blanket -1), one event per destination, ascending. *)
  let r = Dgr_obs.Recorder.create ~num_pes:4 () in
  let net = Network.create ~recorder:r () in
  Network.send net ~arrival:1 ~pe:2 (Task.request 7 Demand.Vital);
  Network.send net ~arrival:1 ~pe:0 (Task.request 8 Demand.Vital);
  Network.send net ~arrival:2 ~pe:2 (Task.request 9 Demand.Vital);
  Network.send net ~arrival:2 ~pe:1 (Task.request 10 Demand.Vital);
  let n =
    Network.purge net (function
      | Task.Reduction (Task.Request { dst; _ }) -> dst <> 10
      | _ -> false)
  in
  Alcotest.(check int) "three purged" 3 n;
  let purge_events =
    List.filter_map
      (function
        | { Dgr_obs.Event.kind = Dgr_obs.Event.Purge { pe; count }; _ } -> Some (pe, count)
        | _ -> None)
      (Dgr_obs.Recorder.events r)
  in
  Alcotest.(check (list (pair int int))) "per-PE purge events, real destinations"
    [ (0, 1); (2, 2) ] purge_events

let test_engine_local_vs_remote_latency () =
  (* Two vertices on different PEs: the respond crosses the boundary. *)
  let g = Graph.create ~num_pes:2 () in
  let b = Graph.alloc ~pe:1 g (Label.Int 7) in
  let a = Graph.alloc ~pe:0 g Label.Ind in
  Vertex.connect a (Vertex.id b);
  Graph.set_root g (Vertex.id a);
  let config = Engine.Config.make ~num_pes:2 ~latency:9 ~gc:Engine.No_gc () in
  let e = Engine.create ~config g (Dgr_reduction.Template.create_registry ()) in
  Engine.inject_root_demand e;
  let (_ : int) = Engine.run ~max_steps:200 e in
  Alcotest.(check bool) "finished" true (Engine.finished e);
  Alcotest.(check bool) "remote messages counted" true
    ((Engine.metrics e).Metrics.remote_messages >= 1)

let test_engine_quiescence_no_gc () =
  let g = Graph.create () in
  let (_ : Vid.t) = Builder.add_root g (Label.Int 3) [] in
  let config = Engine.Config.make ~gc:Engine.No_gc () in
  let e = Engine.create ~config g (Dgr_reduction.Template.create_registry ()) in
  Engine.inject_root_demand e;
  let steps = Engine.run e in
  Alcotest.(check bool) "finished fast" true (Engine.finished e && steps < 20);
  Alcotest.(check bool) "quiescent" true (Engine.quiescent e)

let test_engine_inject_and_locate () =
  let g, a, b = mk_graph () in
  ignore b;
  let config = Engine.Config.make ~num_pes:2 ~gc:Engine.No_gc () in
  let e = Engine.create ~config g (Dgr_reduction.Template.create_registry ()) in
  Engine.inject e (Task.request a Demand.Eager);
  Alcotest.(check int) "one pending" 1 (List.length (Engine.pending_tasks e));
  Alcotest.(check int) "locatable" 1
    (List.length (Engine.locate_task e (fun _ -> true)))

let test_metrics_pp () =
  let m = Metrics.create () in
  Metrics.record_pause m 5;
  Metrics.record_pause m 9;
  Alcotest.(check int) "total pause" 14 m.Metrics.total_pause_steps;
  let s = Format.asprintf "%a" Metrics.pp_summary m in
  Alcotest.(check bool) "summary renders" true (String.length s > 10)

let suite =
  [
    Alcotest.test_case "pool priority bands" `Quick test_pool_policy_bands;
    Alcotest.test_case "dynamic uses marking classification" `Quick
      test_pool_dynamic_uses_classification;
    Alcotest.test_case "vital overrides stale verdicts" `Quick test_pool_vital_overrides_stale;
    Alcotest.test_case "eager inherits source class" `Quick test_pool_source_inheritance;
    Alcotest.test_case "fifo ties, separate queues" `Quick test_pool_fifo_and_separate_queues;
    Alcotest.test_case "idle slots lend to marking" `Quick test_pool_pop_lends_slot_to_marking;
    Alcotest.test_case "pool purge / reprioritize" `Quick test_pool_purge_and_reprioritize;
    Alcotest.test_case "policy pop orders" `Quick test_pool_policy_pop_orders;
    Alcotest.test_case "network ordering" `Quick test_network_ordering;
    Alcotest.test_case "network purge" `Quick test_network_purge;
    Alcotest.test_case "network purge records destination" `Quick
      test_network_purge_records_destination;
    Alcotest.test_case "remote latency accounting" `Quick test_engine_local_vs_remote_latency;
    Alcotest.test_case "quiescence without gc" `Quick test_engine_quiescence_no_gc;
    Alcotest.test_case "inject and locate" `Quick test_engine_inject_and_locate;
    Alcotest.test_case "metrics" `Quick test_metrics_pp;
  ]

(* Delivery jitter: deterministic per seed; results invariant. *)
let jitter_suite =
  let run ~jitter ~seed =
    let config =
      Engine.Config.make ~jitter ~seed
        ~gc:(Engine.Concurrent { deadlock_every = 2; idle_gap = 10 })
        ()
    in
    let g, templates =
      Dgr_lang.Compile.load_string ~num_pes:4 (Dgr_lang.Prelude.fib 9)
    in
    let e = Engine.create ~config g templates in
    Engine.inject_root_demand e;
    let (_ : int) = Engine.run ~max_steps:200_000 e in
    e
  in
  [
    Alcotest.test_case "jittered runs still compute the result" `Quick (fun () ->
        List.iter
          (fun seed ->
            let e = run ~jitter:0.3 ~seed in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d" seed)
              true
              (Engine.result e = Some (Label.V_int 34));
            Alcotest.(check (list string)) "valid" [] (Validate.check (Engine.graph e)))
          [ 1; 2; 3; 4; 5 ]);
    Alcotest.test_case "jitter is deterministic per seed" `Quick (fun () ->
        let fingerprint e =
          ( Engine.now e,
            (Engine.metrics e).Metrics.reduction_executed,
            (Engine.metrics e).Metrics.remote_messages )
        in
        let a = fingerprint (run ~jitter:0.5 ~seed:7) in
        let b = fingerprint (run ~jitter:0.5 ~seed:7) in
        let c = fingerprint (run ~jitter:0.5 ~seed:8) in
        Alcotest.(check bool) "same seed, same run" true (a = b);
        Alcotest.(check bool) "different seed, different schedule" true (a <> c));
    Alcotest.test_case "deadlock detected under jitter" `Quick (fun () ->
        let config =
          Engine.Config.make ~jitter:0.4 ~seed:11
            ~gc:(Engine.Concurrent { deadlock_every = 1; idle_gap = 10 })
            ()
        in
        let g, templates = Dgr_lang.Compile.load_string Dgr_lang.Prelude.deadlock in
        let e = Engine.create ~config g templates in
        Engine.inject_root_demand e;
        let found t =
          match Engine.cycle t with
          | Some c -> not (Vid.Set.is_empty (Dgr_core.Cycle.deadlocked_ever c))
          | None -> false
        in
        let (_ : int) = Engine.run ~max_steps:50_000 ~stop:found e in
        Alcotest.(check bool) "found" true (found e));
  ]
