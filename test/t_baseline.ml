(* GC baselines: distributed reference counting and stop-the-world. *)
open Dgr_graph
open Dgr_baseline

let test_rc_adopts_existing_edges () =
  let g = Graph.create () in
  let b = Builder.add g (Label.Int 1) [] in
  let a = Builder.add_root g Label.If [ b; b ] in
  ignore a;
  let rc = Refcount.create g in
  Alcotest.(check int) "both occurrences counted" 2 (Refcount.count rc b)

let test_rc_frees_on_zero_and_cascades () =
  let g = Graph.create () in
  let c = Builder.add g (Label.Int 1) [] in
  let b = Builder.add g Label.Ind [ c ] in
  let a = Builder.add_root g Label.Ind [ b ] in
  let rc = Refcount.create g in
  Refcount.pin rc a;
  Refcount.on_disconnect rc a b;
  Vertex.disconnect (Graph.vertex g a) b;
  Alcotest.(check bool) "b freed" true (Vertex.free (Graph.vertex g b));
  Alcotest.(check bool) "cascade freed c" true (Vertex.free (Graph.vertex g c));
  Alcotest.(check int) "reclaimed count" 2 (Refcount.reclaimed rc)

let test_rc_cannot_reclaim_cycles () =
  let g = Graph.create () in
  let (_ : Vid.t) = Builder.add_root g (Label.Int 0) [] in
  let ring = Builder.cycle g 4 in
  let holder = Builder.add g Label.Ind [ ring ] in
  let rc = Refcount.create g in
  Refcount.pin rc (Graph.root g);
  (* drop the only external reference into the ring *)
  Refcount.on_disconnect rc holder ring;
  Vertex.disconnect (Graph.vertex g holder) ring;
  Alcotest.(check bool) "ring member still live (leak)" false
    (Vertex.free (Graph.vertex g ring));
  (* the holder has count 0 (never referenced) so it is not part of the
     positive-count leak census; the four ring members are *)
  Alcotest.(check int) "leak reported" 4 (List.length (Refcount.leaked rc))

let test_rc_cycle_leak_exact () =
  let g = Graph.create () in
  let (_ : Vid.t) = Builder.add_root g (Label.Int 0) [] in
  let ring = Builder.cycle g 4 in
  let rc = Refcount.create g in
  ignore ring;
  Alcotest.(check int) "exactly the ring leaks" 4 (List.length (Refcount.leaked rc))

let test_rc_pin_unpin () =
  let g = Graph.create () in
  let v = Builder.add_root g (Label.Int 1) [] in
  let w = Builder.add g (Label.Int 2) [] in
  let rc = Refcount.create g in
  Refcount.pin rc w;
  Refcount.unpin rc w;
  Alcotest.(check bool) "unpin frees unreferenced vertex" true (Vertex.free (Graph.vertex g w));
  Refcount.pin rc v;
  Refcount.unpin rc v;
  Alcotest.(check bool) "the root is never freed" false (Vertex.free (Graph.vertex g v))

let test_rc_messages_cross_pe_only () =
  let g = Graph.create ~num_pes:2 () in
  let b = Graph.alloc ~pe:0 g (Label.Int 1) in
  let c = Graph.alloc ~pe:1 g (Label.Int 2) in
  let a = Graph.alloc ~pe:0 g Label.If in
  Graph.set_root g (Vertex.id a);
  let rc = Refcount.create g in
  Refcount.on_connect rc (Vertex.id a) (Vertex.id b);
  Vertex.connect a (Vertex.id b);
  Alcotest.(check int) "same-PE inc is local" 0 (Refcount.messages rc);
  Refcount.on_connect rc (Vertex.id a) (Vertex.id c);
  Vertex.connect a (Vertex.id c);
  Alcotest.(check int) "cross-PE inc is a message" 1 (Refcount.messages rc)

let test_rc_on_free_callback () =
  let g = Graph.create () in
  let b = Builder.add g (Label.Int 1) [] in
  let a = Builder.add_root g Label.Ind [ b ] in
  let rc = Refcount.create g in
  Refcount.pin rc a;
  let freed = ref [] in
  Refcount.set_on_free rc (fun v -> freed := v :: !freed);
  Refcount.on_disconnect rc a b;
  Vertex.disconnect (Graph.vertex g a) b;
  Alcotest.(check (list int)) "callback saw the free" [ b ] !freed

let test_stw_collects_and_purges () =
  let g = Graph.create () in
  let live = Builder.chain g 4 in
  Graph.set_root g live;
  let junk = Builder.cycle g 5 in
  let purged = ref 0 in
  let report =
    Stw.collect g ~purge_tasks:(fun pred ->
        (* one irrelevant task addressed into the junk, one live one *)
        let tasks =
          [ Dgr_task.Task.request junk Demand.Eager; Dgr_task.Task.request live Demand.Vital ]
        in
        purged := List.length (List.filter pred tasks);
        !purged)
  in
  Alcotest.(check int) "marked" 4 report.Stw.marked;
  Alcotest.(check int) "reclaimed" 5 report.Stw.reclaimed;
  Alcotest.(check int) "only the junk task purged" 1 !purged;
  Alcotest.(check bool) "junk freed" true (Vertex.free (Graph.vertex g junk));
  Alcotest.(check bool) "live kept" false (Vertex.free (Graph.vertex g live));
  Alcotest.(check (list string)) "graph valid after sweep" [] (Validate.check g)

let test_stw_cleans_dangling_requesters () =
  let g = Graph.create () in
  let live = Builder.add_root g Label.Bottom [] in
  let junk = Builder.add g Label.If [] in
  Vertex.add_requester (Graph.vertex g live) (Some junk) ~demand:Demand.Eager ~key:live;
  let (_ : Stw.report) = Stw.collect g ~purge_tasks:(fun _ -> 0) in
  Alcotest.(check bool) "junk reclaimed" true (Vertex.free (Graph.vertex g junk));
  Alcotest.(check int) "dangling requester dropped" 0
    (List.length (Vertex.requested (Graph.vertex g live)))

let suite =
  [
    Alcotest.test_case "rc adopts existing edges" `Quick test_rc_adopts_existing_edges;
    Alcotest.test_case "rc frees on zero, cascades" `Quick test_rc_frees_on_zero_and_cascades;
    Alcotest.test_case "rc cannot reclaim cycles (§4)" `Quick test_rc_cannot_reclaim_cycles;
    Alcotest.test_case "rc leak census" `Quick test_rc_cycle_leak_exact;
    Alcotest.test_case "rc pin/unpin" `Quick test_rc_pin_unpin;
    Alcotest.test_case "rc message accounting" `Quick test_rc_messages_cross_pe_only;
    Alcotest.test_case "rc on_free callback" `Quick test_rc_on_free_callback;
    Alcotest.test_case "stw collects and purges" `Quick test_stw_collects_and_purges;
    Alcotest.test_case "stw cleans dangling requesters" `Quick
      test_stw_cleans_dangling_requesters;
  ]
