(* Per-PE checkpoint round-trips ([Dgr_graph.Checkpoint]).

   The crash plane's correctness rests on one property: restoring a
   checkpoint synced at step [t] rebuilds the home slice exactly as it
   was at step [t] — not approximately, byte for byte. These tests pin
   that property directly: sync, maul the slice, restore, and demand the
   snapshot digest (a marshalled [Snapshot.take]) come back identical;
   restore into a *fresh* graph and demand the same; and check the two
   edge cases the engine relies on — slots born after the last sync are
   forfeited to the free list, and the free list itself round-trips in
   pop order with the forfeited slots appended behind it. *)
open Dgr_graph
open Dgr_util

let build seed ~num_pes =
  let g = Builder.random ~num_pes (Rng.create seed) (Helpers.fuzz_spec seed) in
  Graph.partition g ~pes:num_pes;
  g

let digest g = Digest.to_hex (Digest.string (Marshal.to_string (Snapshot.take g) []))

let ckpts_of g =
  Array.init (Graph.num_pes g) (fun pe -> Checkpoint.create g ~pe)

let sync_all ?(now = 0) cks = Array.iter (fun c -> ignore (Checkpoint.sync c ~now)) cks

let restore_all ?into cks = Array.iter (fun c -> Checkpoint.restore ?into c) cks

(* Scramble a few live vertices of [pe]'s slice the way a crash would:
   the slice's state after the crash is arbitrary garbage as far as the
   checkpoint is concerned. *)
let maul g ~pe =
  Graph.iter_home g ~pe (fun v ->
      if not (Vertex.free v) then begin
        Vertex.set_args v [];
        List.iter (Vertex.drop_request v) (Vertex.req_v v);
        Vertex.set_sched_prior v @@ (Vertex.sched_prior v) + 7;
        Plane.set_color (Vertex.mr v) Plane.Transient;
        Plane.set_cnt (Vertex.mr v) 42
      end)

(* How [Invariants.ownership_guard] answers for every live vertex, under
   the right owner, a wrong PE, and the controller. The restored graph
   must be indistinguishable from the original to the sharded engine's
   ownership discipline, so the answer vectors must match exactly. *)
let guard_fingerprint g =
  let num_pes = Graph.num_pes g in
  List.concat_map
    (fun vid ->
      let v = Graph.vertex g vid in
      List.map
        (fun probe ->
          let ok =
            try
              Dgr_core.Invariants.ownership_guard g ~current_pe:(fun () -> probe) vid;
              true
            with Failure _ -> false
          in
          (vid, probe, ok))
        [ (Vertex.pe v); ((Vertex.pe v) + 1) mod num_pes; -1 ])
    (List.sort compare (Graph.live_vids g))

let test_roundtrip_in_place () =
  List.iter
    (fun seed ->
      let g = build seed ~num_pes:4 in
      (* no vertex is epoch-exempt when the guard fingerprints run *)
      Graph.bump_epoch g;
      let reference = digest g in
      let guards = guard_fingerprint g in
      let cks = ckpts_of g in
      sync_all ~now:3 cks;
      for pe = 0 to 3 do
        maul g ~pe
      done;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: mauling moved the digest" seed)
        true (digest g <> reference);
      restore_all cks;
      Alcotest.(check string)
        (Printf.sprintf "seed %d: snapshot digest restored byte-identical" seed)
        reference (digest g);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: ownership_guard answers unchanged" seed)
        true
        (guard_fingerprint g = guards);
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: restored graph validates" seed)
        [] (Validate.check g))
    [ 1; 4; 9; 14 ]

let test_restore_into_fresh_graph () =
  List.iter
    (fun seed ->
      let num_pes = 1 + (seed mod 4) in
      let g = build seed ~num_pes in
      Graph.bump_epoch g;
      let cks = ckpts_of g in
      sync_all ~now:5 cks;
      let fresh = Graph.create ~num_pes () in
      Graph.partition fresh ~pes:num_pes;
      restore_all ~into:fresh cks;
      if Graph.has_root g then Graph.set_root fresh (Graph.root g);
      Graph.bump_epoch fresh;
      Alcotest.(check string)
        (Printf.sprintf "seed %d: fresh graph digest = original" seed)
        (digest g) (digest fresh);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: guard fingerprints agree" seed)
        true
        (guard_fingerprint fresh = guard_fingerprint g);
      (* the per-home free lists came across in pop order *)
      for pe = 0 to num_pes - 1 do
        Alcotest.(check (list int))
          (Printf.sprintf "seed %d: home %d free list round-tripped" seed pe)
          (Graph.home_free_list g ~pe)
          (Graph.home_free_list fresh ~pe)
      done)
    [ 0; 3; 7; 12 ]

(* [sync] is incremental: an untouched slice refreshes zero entries, a
   single mutation refreshes exactly its entry, and the step tags tell
   the two apart. *)
let test_incremental_sync () =
  let g = build 2 ~num_pes:2 in
  let c = Checkpoint.create g ~pe:0 in
  let first = Checkpoint.sync c ~now:1 in
  Alcotest.(check bool) "first sync captures the whole slice" true (first > 0);
  Alcotest.(check int) "entry per slot" first (Checkpoint.entry_count c);
  Alcotest.(check int) "quiet slice refreshes nothing" 0 (Checkpoint.sync c ~now:2);
  (match List.filter (fun v -> Graph.home_of_vid g v = 0) (Graph.live_vids g) with
  | [] -> Alcotest.fail "no live vertex homed at 0"
  | vid :: _ ->
    Vertex.set_sched_prior (Graph.vertex g vid) @@ 99;
    Alcotest.(check int) "one mutation, one rewrite" 1 (Checkpoint.sync c ~now:3);
    Alcotest.(check (option int)) "rewritten entry carries the sync step" (Some 3)
      (Checkpoint.step_of c vid);
    let untouched =
      List.find (fun v -> v <> vid && Graph.home_of_vid g v = 0) (Graph.live_vids g)
    in
    Alcotest.(check (option int)) "untouched entry keeps its original tag" (Some 1)
      (Checkpoint.step_of c untouched));
  Alcotest.(check int) "last_sync tracks the latest call" 3 (Checkpoint.last_sync c)

(* A slot born after the last sync — in the crash step itself — is
   unknown to the checkpoint: the crash loses it, so restore resets it
   and appends it behind the checkpointed free list. *)
let test_same_step_birth_forfeited () =
  let g = build 6 ~num_pes:2 in
  let cks = ckpts_of g in
  sync_all ~now:4 cks;
  let free_before = Graph.home_free_list g ~pe:0 in
  (* births that reuse checkpointed free slots are covered by their
     entries; drain them so the next birth grows a slot the checkpoint
     has never seen *)
  for _ = 1 to List.length free_before do
    ignore (Graph.alloc ~from:0 g Label.Nil)
  done;
  let fresh = Graph.alloc ~from:0 g Label.Nil in
  Alcotest.(check int) "allocation landed on home 0" 0
    (Graph.home_of_vid g (Vertex.id fresh));
  Alcotest.(check bool) "newborn is live pre-crash" false (Vertex.free fresh);
  restore_all cks;
  Alcotest.(check bool) "newborn forfeited to the free pool" true
    (Vertex.free (Graph.vertex g (Vertex.id fresh)));
  Alcotest.(check (list int)) "free list = checkpointed list, newborn appended"
    (free_before @ [ (Vertex.id fresh) ])
    (Graph.home_free_list g ~pe:0);
  Alcotest.(check (list string)) "graph validates after forfeiture" []
    (Validate.check g)

(* Free-list headroom: draining the home free list after the sync (and
   growing the stripe past it) must all roll back — the checkpointed
   pop order returns, with every post-sync slot appended in vid order. *)
let test_free_list_headroom () =
  let g = build 8 ~num_pes:2 in
  let cks = ckpts_of g in
  sync_all ~now:9 cks;
  let free_before = Graph.home_free_list g ~pe:1 in
  Alcotest.(check bool) "slice starts with free headroom" true
    (List.length free_before > 0);
  (* drain the checkpointed free list, then force stripe growth *)
  let born = ref [] in
  for _ = 1 to List.length free_before + 3 do
    let v = Graph.alloc ~from:1 g Label.Nil in
    if Graph.home_of_vid g (Vertex.id v) = 1 then born := (Vertex.id v) :: !born
  done;
  Alcotest.(check (list int)) "free list drained" []
    (Graph.home_free_list g ~pe:1);
  restore_all cks;
  let grown =
    List.sort compare (List.filter (fun v -> not (List.mem v free_before)) !born)
  in
  Alcotest.(check (list int)) "headroom restored: old pop order + grown slots"
    (free_before @ grown)
    (Graph.home_free_list g ~pe:1);
  List.iter
    (fun v ->
      Alcotest.(check bool) (Printf.sprintf "post-sync slot %d is free again" v) true
        (Vertex.free (Graph.vertex g v)))
    !born

let test_restore_before_sync_rejected () =
  let g = build 1 ~num_pes:2 in
  let c = Checkpoint.create g ~pe:0 in
  Alcotest.check_raises "restore without a sync is refused"
    (Invalid_argument "Checkpoint.restore: never synced") (fun () ->
      Checkpoint.restore c)

let suite =
  [
    Alcotest.test_case "round-trip restores the snapshot digest" `Quick
      test_roundtrip_in_place;
    Alcotest.test_case "restore into a fresh graph is byte-identical" `Quick
      test_restore_into_fresh_graph;
    Alcotest.test_case "sync is incremental and step-tagged" `Quick
      test_incremental_sync;
    Alcotest.test_case "same-step births are forfeited to the free list" `Quick
      test_same_step_birth_forfeited;
    Alcotest.test_case "free-list headroom round-trips" `Quick
      test_free_list_headroom;
    Alcotest.test_case "restore before first sync is refused" `Quick
      test_restore_before_sync_rejected;
  ]
